package repro_test

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/crn"
	"repro/internal/sfg"
	"repro/internal/sim"
	"repro/internal/sim/kernel"
	"repro/internal/synth"
)

// TestRingSolverEquivalence pins explicit-vs-stiff agreement on a real
// paper-class circuit: the 4-register clocked ring at default tolerances.
// The two integrators share nothing past the derivative evaluator — a
// 5th-order explicit pair vs a 2nd-order linearly-implicit Rosenbrock with
// analytic Jacobians and sparse LU — so final states within 10x RelTol of
// each other is end-to-end evidence that the whole stiff path (Jacobian,
// factorization, error control, auto handoff) integrates the same vector
// field.
func TestRingSolverEquivalence(t *testing.T) {
	n := buildRingNet(t, 4)
	finals := map[sim.Solver][]float64{}
	var names []string
	for _, s := range []sim.Solver{sim.SolverExplicit, sim.SolverStiff, sim.SolverAuto} {
		tr, err := sim.Run(context.Background(), n, sim.Config{
			Method: sim.ODE, Solver: s,
			Rates: sim.Rates{Fast: 300, Slow: 1}, TEnd: 10,
		})
		if err != nil {
			t.Fatalf("solver %v: %v", s, err)
		}
		finals[s] = tr.Rows[len(tr.Rows)-1]
		names = tr.Names
	}
	relTol := 1e-6 // ode.Options default, documented in internal/ode
	for _, s := range []sim.Solver{sim.SolverStiff, sim.SolverAuto} {
		for i := range finals[s] {
			ref := finals[sim.SolverExplicit][i]
			if diff := math.Abs(finals[s][i] - ref); diff > 10*relTol*(1+math.Abs(ref)) {
				t.Errorf("solver %v species %s: %g vs explicit %g (|Δ|=%g)",
					s, names[i], finals[s][i], ref, diff)
			}
		}
	}
}

// randomSFG draws a random feed-forward signal-flow graph: an input feeding
// a chain of delays, rational gains and adders, closed by an output. The
// gain denominators are chosen so synthesis emits the whole molecularity
// range — bimolecular halvings for powers of two, a general (≥3-molecular)
// stage for odd q.
func randomSFG(t testing.TB, rng *rand.Rand) *sfg.Graph {
	t.Helper()
	g := sfg.New()
	if err := g.Input("x"); err != nil {
		t.Fatal(err)
	}
	nodes := []string{"x"}
	pick := func() string { return nodes[rng.Intn(len(nodes))] }
	stages := 3 + rng.Intn(4)
	for i := 0; i < stages; i++ {
		name := fmt.Sprintf("n%d", i)
		var err error
		switch rng.Intn(3) {
		case 0:
			err = g.Delay(name, pick(), rng.Float64())
		case 1:
			q := []int{1, 2, 3, 4}[rng.Intn(4)]
			err = g.Gain(name, pick(), 1+rng.Intn(3), q)
		default:
			err = g.Add(name, pick(), pick())
		}
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, name)
	}
	if err := g.Output("y", nodes[len(nodes)-1]); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestSynthJacobianProperty is the integration-level Jacobian property test:
// networks are not hand-rolled but synthesized from randomized signal-flow
// graphs (the repo's real workload generator), then every dense Jacobian
// entry is checked against a central finite difference of the same compiled
// derivative evaluator. A zero-order inflow is appended to each network so
// the trials collectively exercise all five rate-law forms (const, uni, bi,
// dimer, general), which the test asserts.
func TestSynthJacobianProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rate := func(r crn.Reaction) float64 {
		base := 1.0
		if r.Cat == crn.Fast {
			base = 100
		}
		return base * r.Mult
	}
	formsSeen := map[int8]bool{}
	for trial := 0; trial < 12; trial++ {
		g := randomSFG(t, rng)
		cp, err := synth.Compile(g, fmt.Sprintf("t%d", trial))
		if err != nil {
			t.Fatalf("trial %d: synth.Compile: %v", trial, err)
		}
		net := cp.Circuit.Net
		// A zero-order source, which no synthesized construct emits.
		if err := net.AddReaction("inflow", nil,
			map[string]int{net.SpeciesName(rng.Intn(net.NumSpecies())): 1},
			crn.Slow, 0.5+rng.Float64()); err != nil {
			t.Fatalf("trial %d: inflow: %v", trial, err)
		}

		c := kernel.Compile(net, rate)
		for _, f := range c.Form {
			formsSeen[f] = true
		}
		jac := c.Jac()
		ns := c.NumSpecies
		y := make([]float64, ns)
		for i := range y {
			y[i] = 0.1 + rng.Float64()*2 // strictly positive, off the clamp
		}
		nz := make([]float64, jac.NNZ())
		jac.Fill(c, y, nz)
		dense := make([]float64, ns*ns)
		jac.Dense(nz, dense)

		fp := make([]float64, ns)
		fm := make([]float64, ns)
		yh := make([]float64, ns)
		for p := 0; p < ns; p++ {
			h := 1e-6 * math.Max(1, math.Abs(y[p]))
			copy(yh, y)
			yh[p] = y[p] + h
			c.Deriv(yh, fp)
			yh[p] = y[p] - h
			c.Deriv(yh, fm)
			for s := 0; s < ns; s++ {
				want := (fp[s] - fm[s]) / (2 * h)
				got := dense[s*ns+p]
				if diff := math.Abs(got - want); diff > 1e-5+1e-5*math.Abs(want) {
					t.Fatalf("trial %d: d f[%d]/d y[%d] = %g, central diff %g (|Δ|=%g)",
						trial, s, p, got, want, diff)
				}
			}
		}
	}
	for _, f := range []int8{kernel.FormConst, kernel.FormUni, kernel.FormBi,
		kernel.FormDimer, kernel.FormGeneral} {
		if !formsSeen[f] {
			t.Errorf("rate-law form %d never drawn; widen the generator", f)
		}
	}
}
