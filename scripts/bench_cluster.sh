#!/bin/sh
# Cluster scaling-curve benchmark: the same sweep load driven through a
# coordinator with 1 worker and with 3 workers, reported as aggregate sweep
# throughput (points/sec) in BENCH_CLUSTER.json.
#
# The benchmark is a SCALE MODEL, and the output says so. On this repo's
# 1-core CI box, real compute cannot parallelize, so each worker stalls
# -partition-delay before executing a partition — a stand-in for the
# per-partition network + compute latency a real multi-node deployment pays.
# Sleeping workers are genuinely idle, so the coordinator's pipelined
# dispatch (one in-flight chunk per worker) overlaps the stalls across
# workers exactly as it would overlap remote compute: the measured wall-clock
# scaling is the dispatcher's real concurrency, not a simulation artifact.
# On a multi-core host, set CLUSTER_DELAY=0 to measure compute scaling
# directly. -chunk-max pins the partition count independent of worker count
# so both topologies split the sweep into the same chunks.
#
#   scripts/bench_cluster.sh                 # writes BENCH_CLUSTER.json
#   CLUSTER_DELAY=0 scripts/bench_cluster.sh # multicore: real compute scaling
#   CLUSTER_OUT=/tmp/c.json scripts/bench_cluster.sh
#
# Gate: >= 2x points/sec at 3 workers vs 1 worker.
set -eu
cd "$(dirname "$0")/.."

DELAY="${CLUSTER_DELAY:-300ms}"
POINTS="${CLUSTER_POINTS:-96}"
JOBS="${CLUSTER_JOBS:-2}"
CHUNK_MAX="${CLUSTER_CHUNK_MAX:-8}"
OUT="${CLUSTER_OUT:-BENCH_CLUSTER.json}"
BASE_PORT="${CLUSTER_PORT:-18080}"

TMP="$(mktemp -d)"
PIDS=""
cleanup() {
    # shellcheck disable=SC2086
    [ -n "$PIDS" ] && kill $PIDS 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

go build -o "$TMP/crnserved" ./cmd/crnserved
go build -o "$TMP/loadgen" ./cmd/loadgen

# run_topology N REPORT: coordinator + N delayed workers on loopback, the
# loadgen sweep load against the coordinator, report JSON to $REPORT.
run_topology() {
    n="$1"; report="$2"
    coord="http://127.0.0.1:$BASE_PORT"
    "$TMP/crnserved" -addr "127.0.0.1:$BASE_PORT" -cluster \
        -chunk-max "$CHUNK_MAX" -heartbeat 100ms 2>"$TMP/coord-$n.log" &
    coord_pid=$!
    PIDS="$PIDS $coord_pid"

    i=0
    while [ "$i" -lt "$n" ]; do
        port=$((BASE_PORT + 1 + i))
        "$TMP/crnserved" -addr "127.0.0.1:$port" -join "$coord" \
            -node "bench-w$i" -heartbeat 100ms \
            -partition-delay "$DELAY" 2>"$TMP/worker-$n-$i.log" &
        PIDS="$PIDS $!"
        i=$((i + 1))
    done

    # Wait for the whole membership to be alive.
    tries=0
    while :; do
        alive="$(curl -sf "$coord/cluster/v1/workers" 2>/dev/null |
            jq '[.workers[] | select(.state == "alive")] | length' 2>/dev/null || echo 0)"
        [ "$alive" = "$n" ] && break
        tries=$((tries + 1))
        if [ "$tries" -gt 100 ]; then
            echo "bench_cluster.sh: only $alive/$n workers joined" >&2
            cat "$TMP"/*.log >&2
            exit 1
        fi
        sleep 0.1
    done

    "$TMP/loadgen" -target "$coord" -mix 1 -requests "$JOBS" -concurrency 1 \
        -sweep-points "$POINTS" -seed 7 -duration 10m -out "$report"

    # shellcheck disable=SC2086
    kill $PIDS 2>/dev/null || true
    wait 2>/dev/null || true
    PIDS=""
}

run_topology 1 "$TMP/r1.json"
run_topology 3 "$TMP/r3.json"

jq -n --slurpfile r1 "$TMP/r1.json" --slurpfile r3 "$TMP/r3.json" \
    --arg date "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    --arg go "$(go version)" \
    --arg delay "$DELAY" \
    --argjson points "$POINTS" --argjson jobs "$JOBS" --argjson chunk "$CHUNK_MAX" '
{
  note: ("cluster scaling curve from scripts/bench_cluster.sh: one coordinator vs 1 and 3 workers on loopback, aggregate sweep throughput via cmd/loadgen. SCALE MODEL: on a 1-core host each worker stalls partition-delay before executing, emulating per-partition network+compute latency; the sleep is genuinely idle, so the speedup measures the dispatch pipelines real overlap across workers. Set CLUSTER_DELAY=0 on a multicore host to measure compute scaling instead."),
  date: $date,
  go: $go,
  config: {partition_delay: $delay, sweep_points_per_job: $points, jobs: $jobs, chunk_max: $chunk},
  workers_1: {seconds: $r1[0].duration_seconds, sweep_points_per_sec: $r1[0].sweep_points_per_sec, sweep_errors: $r1[0].sweep.errors},
  workers_3: {seconds: $r3[0].duration_seconds, sweep_points_per_sec: $r3[0].sweep_points_per_sec, sweep_errors: $r3[0].sweep.errors},
  speedup_3v1: (if $r1[0].sweep_points_per_sec > 0 then ($r3[0].sweep_points_per_sec / $r1[0].sweep_points_per_sec) else 0 end)
}' >"$OUT"

SPEEDUP="$(jq -r '.speedup_3v1' "$OUT")"
ERRS="$(jq -r '.workers_1.sweep_errors + .workers_3.sweep_errors' "$OUT")"
echo "cluster scaling: ${SPEEDUP}x points/sec at 3 workers vs 1 (need >= 2x), $ERRS sweep errors"
[ "$ERRS" = 0 ] || { echo "bench_cluster.sh: sweep jobs failed" >&2; exit 1; }
jq -e '.speedup_3v1 >= 2' "$OUT" >/dev/null || exit 1
echo "wrote $OUT"
