#!/bin/sh
# Repository gate: static checks plus the full test suite under the race
# detector (the obs registry tests exercise concurrent metric writes). The
# FSM-machine tests multiply badly under -race, hence the generous timeout.
set -eux
cd "$(dirname "$0")/.."
go vet ./...

# The deprecated sequential entry points (sim.RunODE/RunSSA/RunTauLeap) are
# kept for external callers only; new internal and command code must go
# through the context-aware sim.Run. Tests and examples may keep exercising
# the wrappers.
if grep -rnE 'sim\.Run(ODE|SSA|TauLeap)\(' internal/ cmd/ \
    --include='*.go' --exclude='*_test.go' \
    | grep -v 'internal/sim/'; then
  echo 'check.sh: deprecated sim.Run* wrapper used in non-test internal/cmd code (use sim.Run)' >&2
  exit 1
fi

# The batch engine is the repo's concurrency hot spot: run it twice under the
# race detector before everything else so scheduling-order bugs surface fast.
go test -race -count=2 -timeout 10m ./internal/batch/
go test -race -timeout 45m ./...
