#!/bin/sh
# Repository gate: static checks plus the full test suite under the race
# detector (the obs registry tests exercise concurrent metric writes). The
# FSM-machine tests multiply badly under -race, hence the generous timeout.
set -eux
cd "$(dirname "$0")/.."
go vet ./...

# The old sequential entry points (the per-method Run wrappers) are gone:
# single runs go through the context-aware sim.Run, multi-run workloads
# through sim.RunMany. Nothing — tests and the sim package included — may
# reintroduce them.
if grep -rnE '\bRun(ODE|SSA|TauLeap)\(' internal/ cmd/ examples/ \
    --include='*.go'; then
  echo 'check.sh: removed per-method Run wrapper referenced (use sim.Run / sim.RunMany)' >&2
  exit 1
fi

# The batch engine, the HTTP server and the span tracer are the repo's
# concurrency hot spots: run them twice under the race detector before
# everything else so scheduling-order bugs surface fast. The kernel package
# joins them doubled because every simulator backend now leans on its
# compiled networks and Fenwick index — a latent bug there corrupts all
# three methods at once.
go test -race -count=2 -timeout 10m ./internal/sim/kernel/
# The Rosenbrock integrator owns mutable factor/workspace buffers reused
# across steps; doubled -race guards the stiff path the same way (its tests
# include the Jacobian-vs-finite-difference property sweep).
go test -race -count=2 -timeout 10m ./internal/ode/
# The SoA ensemble engine and its sim-layer front (RunMany) move lanes of
# shared state under worker pools; doubled -race over the block engine and
# the RunMany/bit-identity tests guards the lane bookkeeping.
go test -race -count=2 -timeout 10m ./internal/sim/ensemble/
go test -race -count=2 -timeout 15m -run 'Ensemble|RunMany' ./internal/sim/
go test -race -count=2 -timeout 10m ./internal/batch/
go test -race -count=2 -timeout 10m ./internal/server/
# The cluster coordinator moves one job's chunk pool between a scheduling
# loop, per-dispatch goroutines and heartbeat-driven membership expiry;
# doubled -race covers the work-stealing and retry interleavings.
go test -race -count=2 -timeout 10m ./internal/cluster/
go test -race -count=2 -timeout 10m ./internal/obs/span/
# The proc collector mixes an on-demand Sample path with a background ticker
# writing the same registry handles; doubled -race shakes out ordering bugs.
go test -race -count=2 -timeout 10m ./internal/obs/proc/
# The time-series store is written by a ticker goroutine and read by alert
# evaluation, the query endpoints and the statusz sparklines at once; the
# alert engine and flight recorder layer their own tickers and broker
# subscriptions on top. Doubled -race over all three.
go test -race -count=2 -timeout 10m ./internal/obs/tsdb/
go test -race -count=2 -timeout 10m ./internal/obs/alert/
go test -race -count=2 -timeout 10m ./internal/obs/flight/

# SSE end-to-end smoke: the live-streaming and tracing tests drive a real
# HTTP server, so scheduling races between publisher, broker and subscriber
# only show up here.
go test -race -timeout 10m -run 'SSE|Stream|Events|Tracez' ./internal/server/

# Debug-surface smoke: statusz and pprof against live listeners — the
# daemon-level end-to-end test binds both the API and the -debug-addr
# listener and asserts resource attribution lands in /metrics.
go test -race -timeout 10m -run 'Statusz|DebugHandler' ./internal/server/
go test -race -timeout 10m -run 'EndToEnd|Debug' ./cmd/crnserved/

# Cluster end-to-end smoke: a coordinator plus two real worker daemons on
# loopback run a sweep whose merged results must equal the single-node run
# byte for byte (TestClusterEndToEnd), and the golden topology matrix in the
# server package re-proves the contract with an injected worker death.
go test -race -timeout 10m -run 'TestClusterEndToEnd' ./cmd/crnserved/
go test -race -timeout 10m -run 'TestClusterGolden' ./internal/server/
# Loadgen smoke: the traffic generator against an in-process server.
go test -race -timeout 10m ./cmd/loadgen/

# Alert rules validate offline: the built-in defaults, a good file, and a
# bad file that must be rejected nonzero — the same subcommand deployments
# gate a rules push on.
go build -o /tmp/crnserved-check ./cmd/crnserved/
/tmp/crnserved-check -check-rules
RULES_TMP="$(mktemp -d)"
printf '{"rules":[{"name":"smoke","kind":"threshold","metric":"jobs_queued","op":">","value":5}]}' \
    > "$RULES_TMP/good.json"
/tmp/crnserved-check -check-rules -rules "$RULES_TMP/good.json"
printf '{"rules":[{"name":"smoke","op":"~","value":5}]}' > "$RULES_TMP/bad.json"
if /tmp/crnserved-check -check-rules -rules "$RULES_TMP/bad.json"; then
  echo 'check.sh: -check-rules accepted an invalid rules file' >&2
  exit 1
fi
rm -rf "$RULES_TMP" /tmp/crnserved-check

# Flight-recorder smoke: worker death mid-sweep must produce the firing
# worker-absent alert over SSE and a capsule holding the heartbeat series
# and the retry span tree — the whole observability chain in one test.
go test -race -timeout 10m -run 'TestWorkerDeathAlertAndFlightCapsule' ./internal/server/

# Benchmark smoke: one iteration of every benchmark. Catches bit-rot in the
# benchmark code (and in the scripts/bench.sh regression set) without paying
# full measurement time; real numbers come from scripts/bench.sh.
go test -run=NONE -bench=. -benchtime=1x -timeout 20m .
go test -run=NONE -bench=. -benchtime=1x -timeout 10m ./internal/sim/kernel/
# Ensemble bench smoke: one iteration of the multi-run engine benchmarks the
# BENCH_PR7.json gate is computed from, so the gate set itself cannot rot.
go test -run=NONE -bench 'EnsembleRing|SSARingSweepPerRun' -benchtime=1x -timeout 10m .
# Stiff-solver bench smoke: one iteration of the BENCH_PR10.json gate set
# (explicit vs stiff vs auto on the 458-reaction ring at fast/slow = 30000).
go test -run=NONE -bench 'ODERing' -benchtime=1x -timeout 10m .

# The rate-law, derivative and Jacobian hot paths raise concentrations by
# binary exponentiation (kernel.PowInt); a math.Pow call creeping into the
# kernel package would silently cost ~6x per general-law evaluation.
# (Comments may mention it; an actual call site always has the paren.)
if grep -rn 'math\.Pow(' internal/sim/kernel/ --include='*.go' \
    --exclude='*_test.go'; then
  echo 'check.sh: math.Pow call on a kernel hot path (use PowInt)' >&2
  exit 1
fi

go test -race -timeout 45m ./...
