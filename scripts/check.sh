#!/bin/sh
# Repository gate: static checks plus the full test suite under the race
# detector (the obs registry tests exercise concurrent metric writes). The
# FSM-machine tests multiply badly under -race, hence the generous timeout.
set -eux
cd "$(dirname "$0")/.."
go vet ./...
go test -race -timeout 45m ./...
