package repro_test

// Statistical-equivalence test for the PR5 SSA engine rework: on a clocked
// circuit with hundreds of reactions, the seed-averaged stochastic
// trajectory must track the deterministic (ODE) trajectory. This guards the
// whole rewired stochastic stack — compiled kernel propensities, the
// Fenwick selection index and the incremental total — against any bias a
// pure determinism test (fixed seed in, fixed trace out) cannot see.

import (
	"context"
	"math"
	"testing"

	"repro/internal/sim"
)

// TestSSARingMatchesODE averages SSA trajectories of the 4-register ring
// shifter over several seeds at a large system size and compares two
// register outputs against the ODE solution on a common time grid.
//
// Tolerances: with Ω molecules per unit the SSA mean deviates from the ODE
// by O(1/sqrt(Ω·seeds)) plus clock phase diffusion, which grows with t; the
// bound below was chosen with ~3x headroom over the observed error at these
// parameters. Wildly off propensities, a biased selector, or broken
// stoichiometry deltas overshoot it immediately.
func TestSSARingMatchesODE(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed SSA ensemble")
	}
	n := buildRingNet(t, 4)
	if nr := n.NumReactions(); nr < 100 {
		t.Fatalf("ring net has %d reactions, want >= 100", nr)
	}
	const (
		tEnd   = 20.0
		unit   = 800.0
		seeds  = 16
		grid   = 48
		maxMAE = 0.08 // mean |SSA mean - ODE| per species over the grid
	)
	rates := sim.Rates{Fast: 300, Slow: 1}
	// Species with sustained dynamics over [0, tEnd]: two legs of the
	// three-phase clock and the registers the circulating bit reaches. (The
	// register Q ports are transient — consumed within the red compute
	// phase — so they are ~0 at almost every sample and would make the test
	// vacuous.)
	names := []string{"ring.clk.CR", "ring.clk.CB", "ring.d1.G", "ring.d2.NS"}

	ode, err := sim.Run(context.Background(), n, sim.Config{
		Method: sim.ODE, Rates: rates, TEnd: tEnd,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]float64, len(names))
	for i, name := range names {
		if want[i], err = ode.Resample(name, 0, tEnd, grid); err != nil {
			t.Fatal(err)
		}
	}

	mean := make([][]float64, len(names))
	for i := range mean {
		mean[i] = make([]float64, grid)
	}
	for s := 1; s <= seeds; s++ {
		tr, err := sim.Run(context.Background(), n, sim.Config{
			Method: sim.SSA, Rates: rates, TEnd: tEnd, Unit: unit, Seed: int64(s),
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, name := range names {
			got, err := tr.Resample(name, 0, tEnd, grid)
			if err != nil {
				t.Fatal(err)
			}
			for k, v := range got {
				mean[i][k] += v / seeds
			}
		}
	}

	for i, name := range names {
		mae := 0.0
		for k := range want[i] {
			mae += math.Abs(mean[i][k] - want[i][k])
		}
		mae /= grid
		t.Logf("%s: mean abs error vs ODE = %.4f (budget %.2f)", name, mae, maxMAE)
		if mae > maxMAE {
			t.Errorf("%s: SSA ensemble mean deviates from ODE: MAE %.4f > %.2f",
				name, mae, maxMAE)
		}
	}
}
