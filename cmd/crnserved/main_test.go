package main

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestServeEndToEnd boots the daemon on an ephemeral port with the debug
// listener enabled, walks the API over a real TCP connection — simulate,
// job lifecycle, metrics, statusz, pprof, health — and then exercises
// graceful shutdown via context cancellation.
func TestServeEndToEnd(t *testing.T) {
	o := options{
		addr:         "127.0.0.1:0",
		debugAddr:    "127.0.0.1:0",
		maxBody:      1 << 20,
		maxSpecies:   4096,
		maxReactions: 16384,
		maxSweep:     4096,
		maxJobs:      64,
		cacheSize:    16,
		simTimeout:   30 * time.Second,
		drainTimeout: 5 * time.Second,
		retainJobs:   8,
	}
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan net.Addr, 1)
	debugReady := make(chan net.Addr, 1)
	serveErr := make(chan error, 1)
	go func() { serveErr <- serve(ctx, o, ready, debugReady) }()

	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr.String()
	case err := <-serveErr:
		t.Fatalf("serve exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	var debugBase string
	select {
	case addr := <-debugReady:
		debugBase = "http://" + addr.String()
	case <-time.After(10 * time.Second):
		t.Fatal("debug listener never became ready")
	}

	get := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	post := func(path string, body any) (int, string) {
		enc, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+path, "application/json", strings.NewReader(string(enc)))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q", code, body)
	}
	if code, _ := get("/readyz"); code != 200 {
		t.Fatalf("readyz: %d", code)
	}

	code, body := post("/v1/simulate", map[string]any{
		"crn": "init X = 1\nX -> Y : slow", "t_end": 5,
	})
	if code != 200 {
		t.Fatalf("simulate: %d %s", code, body)
	}
	var simResp struct {
		Final map[string]float64 `json:"final"`
	}
	if err := json.Unmarshal([]byte(body), &simResp); err != nil {
		t.Fatalf("simulate body: %v", err)
	}
	if simResp.Final["Y"] < 0.9 {
		t.Fatalf("X -> Y barely converted by t=5: %v", simResp.Final)
	}

	// A seeded stochastic sweep big enough that its CPU/alloc deltas are
	// reliably nonzero in the attribution counters below.
	code, body = post("/v1/jobs", map[string]any{
		"crn": "init X = 1\nX -> Y : slow", "t_end": 2,
		"method": "ssa", "unit": 2000, "seed": 3, "runs": 8,
	})
	if code != 202 {
		t.Fatalf("job submit: %d %s", code, body)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for st.State == "queued" || st.State == "running" {
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s", st.ID, st.State)
		}
		time.Sleep(10 * time.Millisecond)
		code, body = get("/v1/jobs/" + st.ID)
		if code != 200 {
			t.Fatalf("job status: %d %s", code, body)
		}
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatal(err)
		}
	}
	if st.State != "done" {
		t.Fatalf("job state %q, want done (%s)", st.State, body)
	}

	code, body = get("/metrics")
	if code != 200 ||
		!strings.Contains(body, "http_requests_total") ||
		!strings.Contains(body, "server_jobs_submitted_total 1") {
		t.Fatalf("metrics: %d\n%s", code, body)
	}
	// Resource attribution: the sweep must have recorded nonzero CPU time,
	// and the SSA kernel must have reported selector counters.
	if !metricPositive(body, `job_cpu_seconds{kind="batch"}`) {
		t.Fatalf("metrics missing nonzero batch job_cpu_seconds:\n%s", body)
	}
	if !strings.Contains(body, `kernel_selects_total{mode="`) {
		t.Fatalf("metrics missing kernel_selects_total:\n%s", body)
	}

	// The statusz dashboard and pprof live only on the debug listener.
	if code, _ := get("/debug/statusz"); code != 404 {
		t.Fatalf("statusz leaked onto the public listener: %d", code)
	}
	dget := func(path string) (int, string) {
		resp, err := http.Get(debugBase + path)
		if err != nil {
			t.Fatalf("GET debug %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	code, body = dget("/debug/statusz")
	if code != 200 {
		t.Fatalf("statusz: %d %s", code, body)
	}
	for _, section := range []string{
		"Health", "Caches", "Jobs", "Clock alerts", "Resource attribution", "Runtime",
	} {
		if !strings.Contains(body, section) {
			t.Fatalf("statusz missing %q section:\n%s", section, body)
		}
	}
	if code, body := dget("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("pprof cmdline: %d %s", code, body)
	}
	if code, body := dget("/metrics"); code != 200 || !strings.Contains(body, "proc_goroutines") {
		t.Fatalf("debug metrics: %d %s", code, body)
	}
	// The embedded history/alerting surface is on by default.
	if code, body := dget("/debug/tsdb"); code != 200 || !strings.Contains(body, "Alert rules") {
		t.Fatalf("tsdb page: %d %s", code, body)
	}
	code, body = dget("/debug/query?metric=http_requests_total{*}&func=last&agg=sum")
	if code != 200 || !strings.Contains(body, `"query"`) {
		t.Fatalf("tsdb query: %d %s", code, body)
	}
	if code, body := dget("/debug/flightz"); code != 200 || !strings.Contains(body, "capsules") {
		t.Fatalf("flightz: %d %s", code, body)
	}

	// Graceful shutdown: cancel the serve context and the call must return
	// cleanly within the drain budget.
	cancel()
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("serve returned %v on graceful shutdown", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not return after context cancellation")
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
	if _, err := http.Get(debugBase + "/debug/statusz"); err == nil {
		t.Fatal("debug listener still accepting after shutdown")
	}
}

// metricPositive reports whether the exposition text contains the exact
// series and its value parses as > 0.
func metricPositive(exposition, series string) bool {
	for _, line := range strings.Split(exposition, "\n") {
		rest, ok := strings.CutPrefix(line, series+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		return err == nil && v > 0
	}
	return false
}

// TestServeBadAddr: a listen failure surfaces as an error, not a hang.
func TestServeBadAddr(t *testing.T) {
	o := options{addr: "256.256.256.256:99999"}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := serve(ctx, o, nil, nil); err == nil {
		t.Fatal("serve succeeded on an unusable address")
	}
}

// TestServeBadDebugAddr: a debug listener failure is fatal at startup too —
// silently running without the requested pprof surface would be worse.
func TestServeBadDebugAddr(t *testing.T) {
	o := options{addr: "127.0.0.1:0", debugAddr: "256.256.256.256:99999"}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := serve(ctx, o, nil, nil); err == nil {
		t.Fatal("serve succeeded with an unusable debug address")
	}
}

// TestServeBadRulesFile: an unloadable -rules file is a startup error, not a
// silent fallback to defaults.
func TestServeBadRulesFile(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "rules.json")
	if err := os.WriteFile(bad, []byte(`{"rules":[{"name":"x","op":"~","value":1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	o := options{addr: "127.0.0.1:0", rulesFile: bad}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := serve(ctx, o, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "-rules") {
		t.Fatalf("serve with a broken rules file: %v", err)
	}
}

// TestRunCheckRules covers the offline validation subcommand's three paths:
// defaults, a valid file and an invalid file.
func TestRunCheckRules(t *testing.T) {
	var out, errOut strings.Builder
	if code := runCheckRules("", &out, &errOut); code != 0 {
		t.Fatalf("defaults: exit %d, stderr %q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "built-in defaults OK") {
		t.Fatalf("defaults output %q", out.String())
	}

	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, []byte(`{"rules":[
		{"name":"queue-deep","kind":"threshold","metric":"jobs_queued","op":">","value":5}
	]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := runCheckRules(good, &out, &errOut); code != 0 {
		t.Fatalf("good file: exit %d, stderr %q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "OK (1 rules)") {
		t.Fatalf("good output %q", out.String())
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"rules":[{"name":"dup","metric":"a","op":">","value":1},{"name":"dup","metric":"b","op":">","value":1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	errOut.Reset()
	if code := runCheckRules(bad, &out, &errOut); code != 1 {
		t.Fatalf("bad file: exit %d", code)
	}
	if !strings.Contains(errOut.String(), "dup") {
		t.Fatalf("bad stderr %q", errOut.String())
	}
	if code := runCheckRules(filepath.Join(dir, "missing.json"), &out, &errOut); code != 1 {
		t.Fatal("missing file: exit 0")
	}
}
