// Command crnserved serves the repository's simulation stack over JSON HTTP:
// synchronous CRN runs (POST /v1/simulate), asynchronous parameter-sweep
// jobs on the batch worker pool (POST /v1/jobs, GET/DELETE /v1/jobs/{id}),
// the registered reproduction experiments (GET /v1/experiments), and the
// server's own metrics in Prometheus text exposition (GET /metrics), with
// /healthz and /readyz for orchestration.
//
// Observability is built in: every request runs under a W3C traceparent-
// compatible span (browse recent and slow traces at GET /debug/tracez, or
// export one as OTLP/JSON with ?trace=<id>), job progress and clock
// telemetry stream live over Server-Sent Events (GET /v1/jobs/{id}/events
// for one job, GET /v1/stream for all), and sweep jobs can attach the
// clock-health analyzer ("clock_health" in the job request) whose alerts
// reach the stream, the trace and the clock_alerts_total metric. Access and
// lifecycle logs are structured JSON (log/slog) with trace/span
// correlation.
//
// Every metric family is also sampled into an embedded time-series store
// (-tsdb-step, -tsdb-retention) that backs the statusz sparklines, ad-hoc
// queries at GET /debug/query, and a continuously evaluated alert rule set
// (-rules, validated offline with -check-rules; built-in defaults cover
// cluster, serving and clock health). When a rule fires, the flight
// recorder freezes the recent past — SSE events, spans and the rule's
// input series — into a capsule at GET /debug/flightz/{id}, persisted
// under -flightdir when set.
//
// Multiple crnserved processes form a sweep-executing cluster: start one
// coordinator with -cluster and any number of workers with
// -join http://<coordinator>. Sweep jobs submitted to the coordinator are
// sharded into bounded partitions across the alive workers with work
// stealing and retry-on-failure, and the merged results are byte-identical
// to single-node execution (each point keeps its globally derived RNG seed).
// Worker metrics fold into the coordinator's /metrics under node="<id>"
// labels and the /debug/statusz cluster panel shows the worker table and
// live partition map.
//
// -debug-addr (off by default) opens a second, operator-only listener with
// the deep-introspection surface: continuous profiling via /debug/pprof/*,
// the human-readable /debug/statusz dashboard (health, caches, jobs, clock
// alerts, runtime sparklines, recent traces), /debug/tracez and /metrics.
// Bind it to loopback — it is intentionally never served on -addr.
//
// SIGINT/SIGTERM triggers graceful shutdown: readiness flips to 503, the
// listeners stop accepting, and in-flight jobs drain up to -drain-timeout
// before the stragglers are canceled.
//
// Usage:
//
//	crnserved [flags]
//
// Example:
//
//	crnserved -addr :8080 -debug-addr 127.0.0.1:8081 -access-log - &
//	curl -s localhost:8080/v1/simulate -d '{"crn":"init X = 1\nX -> Y : slow","t_end":5}'
//	open http://127.0.0.1:8081/debug/statusz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/obs/alert"
	"repro/internal/server"
)

// options collects the flag values; flags map onto it 1:1.
type options struct {
	addr         string
	debugAddr    string // "" = debug listener off
	maxBody      int64
	maxSpecies   int
	maxReactions int
	maxSweep     int
	maxJobs      int
	cacheSize    int
	maxSims      int
	workers      int
	simTimeout   time.Duration
	drainTimeout time.Duration
	retainJobs   int
	accessLog    string // "" = off, "-" = stderr, else a file path
	traceCap     int
	eventBuf     int
	procEvery    time.Duration

	tsdbStep      time.Duration // history sampling step (0 = 5s, negative = off)
	tsdbRetention time.Duration // history window per series (0 = 1h)
	rulesFile     string        // alert rules JSON ("" = built-in defaults)
	checkRules    bool          // validate -rules and exit
	flightDir     string        // flight capsules persisted here ("" = memory only)

	clusterMode      bool   // coordinator: accept workers, shard sweep jobs
	join             string // worker: coordinator base URL to join
	advertise        string // worker: own base URL ("" = http://127.0.0.1:<boundport>)
	node             string // worker identity ("" = worker-<boundaddr>)
	heartbeat        time.Duration
	heartbeatTimeout time.Duration
	chunkTarget      int
	chunkMax         int
	partitionDelay   time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8080", "listen address")
	flag.StringVar(&o.debugAddr, "debug-addr", "", "pprof/statusz listener address (empty = off; bind loopback)")
	flag.Int64Var(&o.maxBody, "max-body", 1<<20, "request body limit in bytes")
	flag.IntVar(&o.maxSpecies, "max-species", 4096, "species limit per submitted network")
	flag.IntVar(&o.maxReactions, "max-reactions", 16384, "reaction limit per submitted network")
	flag.IntVar(&o.maxSweep, "max-sweep-points", 4096, "sweep point limit per job")
	flag.IntVar(&o.maxJobs, "max-jobs", 64, "concurrently active job limit")
	flag.IntVar(&o.cacheSize, "cache", 128, "network/response cache entries (negative disables caching)")
	flag.IntVar(&o.maxSims, "max-sims", 0, "concurrent simulation bound (0 = NumCPU)")
	flag.IntVar(&o.workers, "workers", 0, "batch pool workers per job (0 = NumCPU)")
	flag.DurationVar(&o.simTimeout, "sim-timeout", 60*time.Second, "per-simulation deadline ceiling")
	flag.DurationVar(&o.drainTimeout, "drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight jobs")
	flag.IntVar(&o.retainJobs, "retain-jobs", 256, "finished jobs kept queryable")
	flag.StringVar(&o.accessLog, "access-log", "", "JSON access log: a file path, or - for stderr")
	flag.IntVar(&o.traceCap, "trace-capacity", 2048, "finished spans retained for /debug/tracez")
	flag.IntVar(&o.eventBuf, "event-buffer", 256, "per-SSE-subscriber event buffer (full buffers drop)")
	flag.DurationVar(&o.procEvery, "proc-every", 0, "runtime self-sampling interval (0 = default 5s, negative = off)")
	flag.DurationVar(&o.tsdbStep, "tsdb-step", 0, "metric history sampling step (0 = default 5s, negative = history/alerts off)")
	flag.DurationVar(&o.tsdbRetention, "tsdb-retention", 0, "metric history retained per series (0 = 1h)")
	flag.StringVar(&o.rulesFile, "rules", "", "alert rules JSON file (empty = built-in defaults)")
	flag.BoolVar(&o.checkRules, "check-rules", false, "validate the -rules file and exit")
	flag.StringVar(&o.flightDir, "flightdir", "", "directory for persisted flight capsules (empty = in-memory only)")
	flag.BoolVar(&o.clusterMode, "cluster", false, "coordinator mode: accept cluster workers and shard sweep jobs across them")
	flag.StringVar(&o.join, "join", "", "worker mode: coordinator base URL to join (e.g. http://10.0.0.1:8080)")
	flag.StringVar(&o.advertise, "advertise", "", "worker: own base URL dialed back by the coordinator (empty = http://127.0.0.1:<boundport>)")
	flag.StringVar(&o.node, "node", "", "worker identity, unique per cluster (empty = worker-<boundaddr>)")
	flag.DurationVar(&o.heartbeat, "heartbeat", 0, "cluster heartbeat interval (0 = 1s)")
	flag.DurationVar(&o.heartbeatTimeout, "heartbeat-timeout", 0, "age past which a silent worker is lost (0 = 3x heartbeat)")
	flag.IntVar(&o.chunkTarget, "chunk-target", 0, "coordinator: sweep chunks per alive worker (0 = 4)")
	flag.IntVar(&o.chunkMax, "chunk-max", 0, "coordinator: max sweep points per partition (0 = 256)")
	flag.DurationVar(&o.partitionDelay, "partition-delay", 0, "artificial pre-partition delay for scale-model benchmarking (leave 0 in production)")
	flag.Parse()

	if o.checkRules {
		os.Exit(runCheckRules(o.rulesFile, os.Stdout, os.Stderr))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := serve(ctx, o, nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, "crnserved:", err)
		os.Exit(1)
	}
}

// runCheckRules validates an alert rules file without starting the server,
// so deployments (and check.sh) can gate on a bad rules push. With no file
// it reports the built-in default rule set. Returns the process exit code.
func runCheckRules(path string, out, errOut io.Writer) int {
	if path == "" {
		rules := alert.DefaultRules()
		fmt.Fprintf(out, "no -rules file; built-in defaults OK (%d rules)\n", len(rules))
		return 0
	}
	rules, err := alert.Load(path)
	if err != nil {
		fmt.Fprintf(errOut, "crnserved: -check-rules: %v\n", err)
		return 1
	}
	fmt.Fprintf(out, "%s OK (%d rules)\n", path, len(rules))
	return 0
}

// serve builds the server, listens on o.addr (and, when set, the debug
// surface on o.debugAddr) and blocks until ctx is canceled, then shuts down
// gracefully. ready and debugReady, when non-nil, receive the respective
// bound addresses once the listeners are up (tests bind :0 and need the
// ports).
func serve(ctx context.Context, o options, ready, debugReady chan<- net.Addr) error {
	cfg := server.Config{
		Limits: server.Limits{
			MaxBodyBytes:   o.maxBody,
			MaxSpecies:     o.maxSpecies,
			MaxReactions:   o.maxReactions,
			MaxSweepPoints: o.maxSweep,
			MaxActiveJobs:  o.maxJobs,
		},
		CacheSize:         o.cacheSize,
		MaxConcurrentSims: o.maxSims,
		SimTimeout:        o.simTimeout,
		Workers:           o.workers,
		RetainJobs:        o.retainJobs,
		TraceCapacity:     o.traceCap,
		EventBuffer:       o.eventBuf,
		ProcSampleEvery:   o.procEvery,
		PartitionDelay:    o.partitionDelay,
		TSDBStep:          o.tsdbStep,
		TSDBRetention:     o.tsdbRetention,
		FlightDir:         o.flightDir,
	}
	if o.rulesFile != "" {
		rules, err := alert.Load(o.rulesFile)
		if err != nil {
			return fmt.Errorf("-rules: %w", err)
		}
		cfg.Rules = rules
	}
	if o.clusterMode {
		cfg.Cluster = &cluster.Options{
			HeartbeatEvery:   o.heartbeat,
			HeartbeatTimeout: o.heartbeatTimeout,
			ChunkTarget:      o.chunkTarget,
			MaxChunk:         o.chunkMax,
		}
	}
	switch o.accessLog {
	case "":
	case "-":
		cfg.AccessLog = os.Stderr
	default:
		f, err := os.Create(o.accessLog)
		if err != nil {
			return err
		}
		defer f.Close()
		cfg.AccessLog = f
	}
	s := server.New(cfg)
	// Lifecycle messages share the structured-log format of the access log
	// but always go to stderr, so a file-bound access log stays pure.
	logger := obs.NewLogger(os.Stderr, nil)

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- ln.Addr()
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	logger.Info("listening", "addr", ln.Addr().String())

	// Worker mode: join the coordinator once the listener is up, so the
	// advertised address is dialable the moment the membership exists. The
	// loop deregisters on shutdown; memberDone gates the final exit so the
	// best-effort leave gets its chance.
	var memberDone chan struct{}
	if o.join != "" {
		adv, id := o.advertise, o.node
		if adv == "" {
			adv = "http://" + loopbackAddr(ln.Addr())
		}
		if id == "" {
			id = "worker-" + ln.Addr().String()
		}
		memberDone = make(chan struct{})
		go func() {
			defer close(memberDone)
			if err := cluster.Join(ctx, cluster.JoinConfig{
				Coordinator: o.join, Advertise: adv, ID: id,
				Every: o.heartbeat, Logger: logger,
			}); err != nil {
				logger.Warn("cluster membership loop failed", "err", err.Error())
			}
		}()
	}

	var debugSrv *http.Server
	if o.debugAddr != "" {
		dln, err := net.Listen("tcp", o.debugAddr)
		if err != nil {
			httpSrv.Close()
			return fmt.Errorf("debug listener: %w", err)
		}
		if debugReady != nil {
			debugReady <- dln.Addr()
		}
		debugSrv = &http.Server{Handler: s.DebugHandler()}
		go func() {
			// The debug surface is best-effort: its listener failing must
			// not take the API down.
			if err := debugSrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Warn("debug listener failed", "err", err.Error())
			}
		}()
		logger.Info("debug listening", "addr", dln.Addr().String())
	}

	select {
	case err := <-serveErr:
		if debugSrv != nil {
			debugSrv.Close()
		}
		return err // listener failed before any shutdown signal
	case <-ctx.Done():
	}

	// Graceful shutdown: fail readiness first so load balancers stop routing,
	// then close the listeners and drain connections and jobs within budget.
	logger.Info("shutting down, draining jobs")
	s.StartDrain()
	drainCtx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(drainCtx)
	if debugSrv != nil {
		if err := debugSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Warn("debug shutdown", "err", err.Error())
		}
	}
	if forced := s.Drain(drainCtx); forced > 0 {
		logger.Warn("drain budget expired", "canceled_jobs", forced)
	}
	if shutdownErr != nil && !errors.Is(shutdownErr, http.ErrServerClosed) {
		return shutdownErr
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if memberDone != nil {
		// The membership loop sends a bounded best-effort leave on ctx
		// cancellation; give it that bound, never longer.
		select {
		case <-memberDone:
		case <-time.After(3 * time.Second):
		}
	}
	return nil
}

// loopbackAddr renders a bound listener address as a dialable host:port,
// substituting loopback for the unspecified host a ":8080"-style listen
// address produces.
func loopbackAddr(a net.Addr) string {
	host, port, err := net.SplitHostPort(a.String())
	if err != nil {
		return a.String()
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}
