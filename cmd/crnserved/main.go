// Command crnserved serves the repository's simulation stack over JSON HTTP:
// synchronous CRN runs (POST /v1/simulate), asynchronous parameter-sweep
// jobs on the batch worker pool (POST /v1/jobs, GET/DELETE /v1/jobs/{id}),
// the registered reproduction experiments (GET /v1/experiments), and the
// server's own metrics in Prometheus text exposition (GET /metrics), with
// /healthz and /readyz for orchestration.
//
// Observability is built in: every request runs under a W3C traceparent-
// compatible span (browse recent and slow traces at GET /debug/tracez, or
// export one as OTLP/JSON with ?trace=<id>), job progress and clock
// telemetry stream live over Server-Sent Events (GET /v1/jobs/{id}/events
// for one job, GET /v1/stream for all), and sweep jobs can attach the
// clock-health analyzer ("clock_health" in the job request) whose alerts
// reach the stream, the trace and the clock_alerts_total metric. Access and
// lifecycle logs are structured JSON (log/slog) with trace/span
// correlation.
//
// -debug-addr (off by default) opens a second, operator-only listener with
// the deep-introspection surface: continuous profiling via /debug/pprof/*,
// the human-readable /debug/statusz dashboard (health, caches, jobs, clock
// alerts, runtime sparklines, recent traces), /debug/tracez and /metrics.
// Bind it to loopback — it is intentionally never served on -addr.
//
// SIGINT/SIGTERM triggers graceful shutdown: readiness flips to 503, the
// listeners stop accepting, and in-flight jobs drain up to -drain-timeout
// before the stragglers are canceled.
//
// Usage:
//
//	crnserved [flags]
//
// Example:
//
//	crnserved -addr :8080 -debug-addr 127.0.0.1:8081 -access-log - &
//	curl -s localhost:8080/v1/simulate -d '{"crn":"init X = 1\nX -> Y : slow","t_end":5}'
//	open http://127.0.0.1:8081/debug/statusz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// options collects the flag values; flags map onto it 1:1.
type options struct {
	addr         string
	debugAddr    string // "" = debug listener off
	maxBody      int64
	maxSpecies   int
	maxReactions int
	maxSweep     int
	maxJobs      int
	cacheSize    int
	maxSims      int
	workers      int
	simTimeout   time.Duration
	drainTimeout time.Duration
	retainJobs   int
	accessLog    string // "" = off, "-" = stderr, else a file path
	traceCap     int
	eventBuf     int
	procEvery    time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8080", "listen address")
	flag.StringVar(&o.debugAddr, "debug-addr", "", "pprof/statusz listener address (empty = off; bind loopback)")
	flag.Int64Var(&o.maxBody, "max-body", 1<<20, "request body limit in bytes")
	flag.IntVar(&o.maxSpecies, "max-species", 4096, "species limit per submitted network")
	flag.IntVar(&o.maxReactions, "max-reactions", 16384, "reaction limit per submitted network")
	flag.IntVar(&o.maxSweep, "max-sweep-points", 4096, "sweep point limit per job")
	flag.IntVar(&o.maxJobs, "max-jobs", 64, "concurrently active job limit")
	flag.IntVar(&o.cacheSize, "cache", 128, "network/response cache entries (negative disables caching)")
	flag.IntVar(&o.maxSims, "max-sims", 0, "concurrent simulation bound (0 = NumCPU)")
	flag.IntVar(&o.workers, "workers", 0, "batch pool workers per job (0 = NumCPU)")
	flag.DurationVar(&o.simTimeout, "sim-timeout", 60*time.Second, "per-simulation deadline ceiling")
	flag.DurationVar(&o.drainTimeout, "drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight jobs")
	flag.IntVar(&o.retainJobs, "retain-jobs", 256, "finished jobs kept queryable")
	flag.StringVar(&o.accessLog, "access-log", "", "JSON access log: a file path, or - for stderr")
	flag.IntVar(&o.traceCap, "trace-capacity", 2048, "finished spans retained for /debug/tracez")
	flag.IntVar(&o.eventBuf, "event-buffer", 256, "per-SSE-subscriber event buffer (full buffers drop)")
	flag.DurationVar(&o.procEvery, "proc-every", 0, "runtime self-sampling interval (0 = default 5s, negative = off)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := serve(ctx, o, nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, "crnserved:", err)
		os.Exit(1)
	}
}

// serve builds the server, listens on o.addr (and, when set, the debug
// surface on o.debugAddr) and blocks until ctx is canceled, then shuts down
// gracefully. ready and debugReady, when non-nil, receive the respective
// bound addresses once the listeners are up (tests bind :0 and need the
// ports).
func serve(ctx context.Context, o options, ready, debugReady chan<- net.Addr) error {
	cfg := server.Config{
		Limits: server.Limits{
			MaxBodyBytes:   o.maxBody,
			MaxSpecies:     o.maxSpecies,
			MaxReactions:   o.maxReactions,
			MaxSweepPoints: o.maxSweep,
			MaxActiveJobs:  o.maxJobs,
		},
		CacheSize:         o.cacheSize,
		MaxConcurrentSims: o.maxSims,
		SimTimeout:        o.simTimeout,
		Workers:           o.workers,
		RetainJobs:        o.retainJobs,
		TraceCapacity:     o.traceCap,
		EventBuffer:       o.eventBuf,
		ProcSampleEvery:   o.procEvery,
	}
	switch o.accessLog {
	case "":
	case "-":
		cfg.AccessLog = os.Stderr
	default:
		f, err := os.Create(o.accessLog)
		if err != nil {
			return err
		}
		defer f.Close()
		cfg.AccessLog = f
	}
	s := server.New(cfg)
	// Lifecycle messages share the structured-log format of the access log
	// but always go to stderr, so a file-bound access log stays pure.
	logger := obs.NewLogger(os.Stderr, nil)

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- ln.Addr()
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	logger.Info("listening", "addr", ln.Addr().String())

	var debugSrv *http.Server
	if o.debugAddr != "" {
		dln, err := net.Listen("tcp", o.debugAddr)
		if err != nil {
			httpSrv.Close()
			return fmt.Errorf("debug listener: %w", err)
		}
		if debugReady != nil {
			debugReady <- dln.Addr()
		}
		debugSrv = &http.Server{Handler: s.DebugHandler()}
		go func() {
			// The debug surface is best-effort: its listener failing must
			// not take the API down.
			if err := debugSrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Warn("debug listener failed", "err", err.Error())
			}
		}()
		logger.Info("debug listening", "addr", dln.Addr().String())
	}

	select {
	case err := <-serveErr:
		if debugSrv != nil {
			debugSrv.Close()
		}
		return err // listener failed before any shutdown signal
	case <-ctx.Done():
	}

	// Graceful shutdown: fail readiness first so load balancers stop routing,
	// then close the listeners and drain connections and jobs within budget.
	logger.Info("shutting down, draining jobs")
	s.StartDrain()
	drainCtx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(drainCtx)
	if debugSrv != nil {
		if err := debugSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Warn("debug shutdown", "err", err.Error())
		}
	}
	if forced := s.Drain(drainCtx); forced > 0 {
		logger.Warn("drain budget expired", "canceled_jobs", forced)
	}
	if shutdownErr != nil && !errors.Is(shutdownErr, http.ErrServerClosed) {
		return shutdownErr
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
