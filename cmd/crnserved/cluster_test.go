package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// bootNode starts one crnserved instance and returns its base URL plus a
// shutdown func that blocks until the process loop exits.
func bootNode(t *testing.T, o options) (string, func()) {
	t.Helper()
	o.addr = "127.0.0.1:0"
	if o.maxBody == 0 {
		o.maxBody = 1 << 20
	}
	if o.maxSpecies == 0 {
		o.maxSpecies = 4096
	}
	if o.maxReactions == 0 {
		o.maxReactions = 16384
	}
	if o.maxSweep == 0 {
		o.maxSweep = 4096
	}
	if o.maxJobs == 0 {
		o.maxJobs = 64
	}
	if o.drainTimeout == 0 {
		o.drainTimeout = 5 * time.Second
	}
	if o.simTimeout == 0 {
		o.simTimeout = 30 * time.Second
	}
	if o.retainJobs == 0 {
		o.retainJobs = 8
	}
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan net.Addr, 1)
	serveErr := make(chan error, 1)
	go func() { serveErr <- serve(ctx, o, ready, nil) }()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr.String()
	case err := <-serveErr:
		t.Fatalf("node exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("node never became ready")
	}
	return base, func() {
		cancel()
		select {
		case err := <-serveErr:
			if err != nil {
				t.Errorf("node shutdown: %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Error("node never shut down")
		}
	}
}

func httpJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = strings.NewReader(string(b))
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if out != nil {
		if err := json.Unmarshal(b, out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, b, err)
		}
	}
	return resp.StatusCode
}

// TestClusterEndToEnd boots a coordinator and two workers as real daemon
// processes-in-goroutines wired over loopback TCP: the workers join via the
// -join membership loop, a sweep submitted to the coordinator is sharded
// across them, and the merged results equal a single-node run of the same
// sweep bit for bit. Shutdown deregisters the workers.
func TestClusterEndToEnd(t *testing.T) {
	hb := 25 * time.Millisecond
	coordBase, stopCoord := bootNode(t, options{clusterMode: true, heartbeat: hb})
	defer stopCoord()

	var stops []func()
	for i := 0; i < 2; i++ {
		_, stop := bootNode(t, options{join: coordBase, node: fmt.Sprintf("e2e-w%d", i), heartbeat: hb})
		stops = append(stops, stop)
	}

	// Wait until both workers are alive members.
	type workersResp struct {
		Workers []struct {
			ID    string `json:"id"`
			State string `json:"state"`
		} `json:"workers"`
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var wr workersResp
		httpJSON(t, "GET", coordBase+"/cluster/v1/workers", nil, &wr)
		alive := 0
		for _, w := range wr.Workers {
			if w.State == "alive" {
				alive++
			}
		}
		if alive == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("workers never joined: %+v", wr)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The same sweep, single-node for the golden reference.
	singleBase, stopSingle := bootNode(t, options{})
	defer stopSingle()

	sweep := map[string]any{
		"crn": "init X = 40\nX -> Y : slow", "t_end": 2,
		"method": "ssa", "unit": 500, "seed": 9, "runs": 6, "ratios": []float64{2, 8},
	}
	runSweep := func(base string) (state string, results json.RawMessage) {
		t.Helper()
		var st struct {
			ID      string          `json:"id"`
			State   string          `json:"state"`
			Results json.RawMessage `json:"results"`
		}
		if code := httpJSON(t, "POST", base+"/v1/jobs", sweep, &st); code != 202 {
			t.Fatalf("submit to %s: %d", base, code)
		}
		deadline := time.Now().Add(30 * time.Second)
		for st.State == "queued" || st.State == "running" {
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck %s", st.ID, st.State)
			}
			time.Sleep(10 * time.Millisecond)
			httpJSON(t, "GET", base+"/v1/jobs/"+st.ID, nil, &st)
		}
		return st.State, st.Results
	}

	wantState, want := runSweep(singleBase)
	gotState, got := runSweep(coordBase)
	if wantState != "done" || gotState != "done" {
		t.Fatalf("states: single=%q cluster=%q", wantState, gotState)
	}
	if string(got) != string(want) {
		t.Fatalf("cluster results differ from single-node:\n got: %s\nwant: %s", got, want)
	}

	// The dispatch telemetry reached the coordinator's exposition.
	resp, err := http.Get(coordBase + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "cluster_partitions_dispatched_total") ||
		!strings.Contains(string(metrics), `node="e2e-w0"`) {
		t.Fatalf("coordinator metrics lack cluster dispatch telemetry:\n%s", metrics)
	}

	// Worker shutdown deregisters: the leave makes them "left" members.
	for _, stop := range stops {
		stop()
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		var wr workersResp
		httpJSON(t, "GET", coordBase+"/cluster/v1/workers", nil, &wr)
		left := 0
		for _, w := range wr.Workers {
			if w.State == "left" {
				left++
			}
		}
		if left == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("workers never deregistered: %+v", wr)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
