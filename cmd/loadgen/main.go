// Command loadgen replays a representative traffic mix against a crnserved
// instance and reports latency and throughput per traffic class. Two classes
// model the server's real workload poles:
//
//   - simulate: a fixed, deterministic POST /v1/simulate request. Identical
//     bodies are response-cache hits after the first, so this class measures
//     the cache-hot fast path and the HTTP overhead floor.
//   - sweep: a seeded stochastic sweep job (POST /v1/jobs, polled to a
//     terminal state). This class measures end-to-end job throughput — on a
//     clustered coordinator, the scaling of the partition dispatcher.
//
// The generator issues requests at -qps (token bucket; 0 = as fast as the
// -concurrency workers allow) with -mix choosing the sweep fraction, stops
// after -duration or -requests (whichever comes first), and prints a JSON
// report: per-class request counts, error counts, p50/p90/p99/max latency,
// requests/sec, and aggregate sweep points/sec — the number bench_cluster.sh
// turns into a scaling curve.
//
// Usage:
//
//	loadgen -target http://127.0.0.1:8080 -duration 10s -qps 50 -mix 0.05
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"
)

// config collects the flag values; flags map onto it 1:1.
type config struct {
	target      string
	duration    time.Duration
	requests    int     // 0 = bounded by duration alone
	qps         float64 // 0 = unthrottled
	concurrency int
	mix         float64 // fraction of requests that are sweep jobs
	sweepPoints int
	seed        int64
	out         string // report path; "" = stdout
	timeout     time.Duration
}

func main() {
	var c config
	flag.StringVar(&c.target, "target", "http://127.0.0.1:8080", "crnserved base URL")
	flag.DurationVar(&c.duration, "duration", 10*time.Second, "how long to generate load")
	flag.IntVar(&c.requests, "requests", 0, "stop after this many requests (0 = duration-bounded)")
	flag.Float64Var(&c.qps, "qps", 0, "request rate (0 = as fast as -concurrency allows)")
	flag.IntVar(&c.concurrency, "concurrency", 4, "in-flight request cap")
	flag.Float64Var(&c.mix, "mix", 0.05, "fraction of requests that are sweep jobs")
	flag.IntVar(&c.sweepPoints, "sweep-points", 32, "points per sweep job")
	flag.Int64Var(&c.seed, "seed", 1, "RNG seed for the class sequence and sweep seeds")
	flag.StringVar(&c.out, "out", "", "write the JSON report here (empty = stdout)")
	flag.DurationVar(&c.timeout, "timeout", 5*time.Minute, "per-request deadline (sweep jobs: submit-to-terminal)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := run(ctx, c)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	b, _ := json.MarshalIndent(rep, "", "  ")
	b = append(b, '\n')
	if c.out == "" {
		os.Stdout.Write(b)
	} else if err := os.WriteFile(c.out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d requests in %.2fs — simulate p99 %.2fms, sweep %.1f points/s\n",
		rep.TotalRequests, rep.DurationSeconds, rep.Simulate.P99Ms, rep.SweepPointsPerSec)
}

// classStats summarizes one traffic class.
type classStats struct {
	Count  int     `json:"count"`
	Errors int     `json:"errors"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
	RPS    float64 `json:"rps"`
}

// report is the JSON output of one loadgen run.
type report struct {
	Target            string     `json:"target"`
	DurationSeconds   float64    `json:"duration_seconds"`
	TotalRequests     int        `json:"total_requests"`
	Simulate          classStats `json:"simulate"`
	Sweep             classStats `json:"sweep"`
	SweepPoints       int        `json:"sweep_points_total"`
	SweepPointsPerSec float64    `json:"sweep_points_per_sec"`
}

// ticket is one unit of work handed to a load worker.
type ticket struct {
	sweep bool
	seed  int64 // per-job sweep seed, varied so jobs are genuinely distinct
}

// run generates the load and assembles the report. It is the whole program
// minus flag parsing and output, so tests drive it directly.
func run(ctx context.Context, c config) (report, error) {
	if c.concurrency < 1 {
		c.concurrency = 1
	}
	client := &http.Client{Timeout: c.timeout}
	rng := rand.New(rand.NewSource(c.seed))

	tickets := make(chan ticket)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var simLat, sweepLat []time.Duration
	simErrs, sweepErrs, pointsDone := 0, 0, 0

	for w := 0; w < c.concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tk := range tickets {
				start := time.Now()
				var points int
				var err error
				if tk.sweep {
					points, err = doSweep(ctx, client, c, tk.seed)
				} else {
					err = doSimulate(ctx, client, c)
				}
				lat := time.Since(start)
				mu.Lock()
				if tk.sweep {
					sweepLat = append(sweepLat, lat)
					pointsDone += points
					if err != nil {
						sweepErrs++
					}
				} else {
					simLat = append(simLat, lat)
					if err != nil {
						simErrs++
					}
				}
				mu.Unlock()
			}
		}()
	}

	// Token bucket: one ticket per tick at -qps, or back-to-back when
	// unthrottled. The class sequence is drawn from the seeded RNG up front
	// in the generator, so a given (-seed, -mix) replays the same mix.
	began := time.Now()
	deadline := began.Add(c.duration)
	var tick <-chan time.Time
	if c.qps > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / c.qps))
		defer t.Stop()
		tick = t.C
	}
	issued := 0
gen:
	for (c.requests == 0 || issued < c.requests) && time.Now().Before(deadline) {
		if tick != nil {
			select {
			case <-tick:
			case <-ctx.Done():
				break gen
			}
		}
		tk := ticket{sweep: rng.Float64() < c.mix, seed: rng.Int63()}
		select {
		case tickets <- tk:
			issued++
		case <-ctx.Done():
			break gen
		}
	}
	close(tickets)
	wg.Wait()
	elapsed := time.Since(began)

	rep := report{
		Target:          c.target,
		DurationSeconds: elapsed.Seconds(),
		TotalRequests:   len(simLat) + len(sweepLat),
		Simulate:        summarize(simLat, simErrs, elapsed),
		Sweep:           summarize(sweepLat, sweepErrs, elapsed),
		SweepPoints:     pointsDone,
	}
	if elapsed > 0 {
		rep.SweepPointsPerSec = float64(pointsDone) / elapsed.Seconds()
	}
	if rep.TotalRequests == 0 {
		return rep, fmt.Errorf("no requests completed against %s", c.target)
	}
	return rep, nil
}

// summarize computes the latency percentiles of one class.
func summarize(lats []time.Duration, errs int, elapsed time.Duration) classStats {
	st := classStats{Count: len(lats), Errors: errs}
	if len(lats) == 0 {
		return st
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(lats)-1))
		return float64(lats[i]) / float64(time.Millisecond)
	}
	st.P50Ms, st.P90Ms, st.P99Ms = pct(0.50), pct(0.90), pct(0.99)
	st.MaxMs = float64(lats[len(lats)-1]) / float64(time.Millisecond)
	if elapsed > 0 {
		st.RPS = float64(len(lats)) / elapsed.Seconds()
	}
	return st
}

// loadCRN is the fixed network both classes simulate: the paper's fast/slow
// clocked setting on a trivial reaction, cheap enough that job latency is
// dominated by server machinery, which is what loadgen measures.
const loadCRN = "init X = 100\nX -> Y : slow"

// doSimulate issues the cache-hot simulate request: a byte-identical body
// every time, so all but the first are response-cache hits.
func doSimulate(ctx context.Context, client *http.Client, c config) error {
	body := `{"crn":"init X = 100\nX -> Y : slow","t_end":1,"method":"ode","seed":7}`
	var out struct {
		Error string `json:"error"`
	}
	return postJSON(ctx, client, c.target+"/v1/simulate", []byte(body), &out)
}

// doSweep submits one sweep job and polls it to a terminal state, returning
// how many points completed.
func doSweep(ctx context.Context, client *http.Client, c config, seed int64) (int, error) {
	req, _ := json.Marshal(map[string]any{
		"crn": loadCRN, "t_end": 1, "method": "ssa", "unit": 200,
		"runs": c.sweepPoints, "seed": seed,
	})
	var st struct {
		ID        string `json:"id"`
		State     string `json:"state"`
		Completed int    `json:"completed"`
		Failed    int    `json:"failed"`
	}
	if err := postJSON(ctx, client, c.target+"/v1/jobs", req, &st); err != nil {
		return 0, err
	}
	for st.State == "queued" || st.State == "running" {
		select {
		case <-ctx.Done():
			return st.Completed, ctx.Err()
		case <-time.After(10 * time.Millisecond):
		}
		if err := getJSON(ctx, client, c.target+"/v1/jobs/"+st.ID, &st); err != nil {
			return st.Completed, err
		}
	}
	if st.State != "done" {
		return st.Completed, fmt.Errorf("job %s ended %s (%d failed)", st.ID, st.State, st.Failed)
	}
	return st.Completed, nil
}

func postJSON(ctx context.Context, client *http.Client, url string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return doJSON(client, req, out)
}

func getJSON(ctx context.Context, client *http.Client, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	return doJSON(client, req, out)
}

func doJSON(client *http.Client, req *http.Request, out any) error {
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("%s %s: %s: %s", req.Method, req.URL.Path, resp.Status, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
