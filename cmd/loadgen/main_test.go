package main

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/obs/alert"
	"repro/internal/obs/tsdb"
	"repro/internal/server"
)

// TestRunAgainstInProcessServer drives the generator against a real handler:
// the request budget is honored, both classes appear at the configured mix,
// no request errors, and the sweep point accounting adds up.
func TestRunAgainstInProcessServer(t *testing.T) {
	srv := httptest.NewServer(server.New(server.Config{}).Handler())
	defer srv.Close()

	c := config{
		target:      srv.URL,
		duration:    time.Minute, // requests bound stops first
		requests:    24,
		concurrency: 3,
		mix:         0.25,
		sweepPoints: 6,
		seed:        7,
		timeout:     30 * time.Second,
	}
	rep, err := run(context.Background(), c)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.TotalRequests != 24 {
		t.Fatalf("TotalRequests = %d, want 24", rep.TotalRequests)
	}
	if rep.Simulate.Errors != 0 || rep.Sweep.Errors != 0 {
		t.Fatalf("errors: simulate=%d sweep=%d", rep.Simulate.Errors, rep.Sweep.Errors)
	}
	if rep.Simulate.Count == 0 || rep.Sweep.Count == 0 {
		t.Fatalf("mix produced no spread: simulate=%d sweep=%d", rep.Simulate.Count, rep.Sweep.Count)
	}
	if rep.SweepPoints != rep.Sweep.Count*c.sweepPoints {
		t.Fatalf("SweepPoints = %d, want %d sweeps x %d points",
			rep.SweepPoints, rep.Sweep.Count, c.sweepPoints)
	}
	for _, st := range []classStats{rep.Simulate, rep.Sweep} {
		if st.P50Ms > st.P90Ms || st.P90Ms > st.P99Ms || st.P99Ms > st.MaxMs {
			t.Fatalf("percentiles out of order: %+v", st)
		}
	}

	// The same seed replays the same class sequence.
	rep2, err := run(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Sweep.Count != rep.Sweep.Count {
		t.Fatalf("seeded mix not reproducible: %d vs %d sweeps", rep2.Sweep.Count, rep.Sweep.Count)
	}
}

// TestLoadLandsInHistoryAndRules drives the generator at a server with a
// fast-sampling embedded history store and one load-sensitive alert rule:
// the traffic must appear as a positive windowed request rate in the store
// and trip the rule — loadgen doubles as the smoke driver for the alerting
// surface.
func TestLoadLandsInHistoryAndRules(t *testing.T) {
	s := server.New(server.Config{
		TSDBStep:   20 * time.Millisecond,
		AlertEvery: 20 * time.Millisecond,
		Rules: []alert.Rule{{
			Name: "request-load", Kind: "threshold",
			Metric: "http_requests_total{*}", Func: "rate", Agg: "sum",
			Op: ">", Value: 0.1, WindowSeconds: 5,
		}},
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// The qps throttle stretches the run across many sampling steps — an
	// unthrottled burst fits inside one step, and a counter that is born
	// already at its final value has no in-window increase to rate over.
	c := config{
		target:      srv.URL,
		duration:    time.Minute,
		requests:    30,
		qps:         100,
		concurrency: 2,
		mix:         0, // pure simulate traffic keeps this fast
		seed:        3,
		timeout:     30 * time.Second,
	}
	if _, err := run(context.Background(), c); err != nil {
		t.Fatalf("run: %v", err)
	}

	// The burst outruns the 20ms sampler: wait for the history to catch up
	// (a rate needs two samples in the window) and the rule to evaluate.
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, ok := s.TSDB().Eval(tsdb.Query{
			Metric: "http_requests_total{*}", Func: "rate", Agg: "sum", Window: 5 * time.Second,
		})
		if ok && v > 0 && s.Alerts().FiringCount() > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("after load: rate=%g ok=%v firing=%d, want rate > 0 and request-load firing",
				v, ok, s.Alerts().FiringCount())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRunUnreachableTarget: a dead target yields an error, not a zero report.
func TestRunUnreachableTarget(t *testing.T) {
	c := config{
		target:      "http://127.0.0.1:1", // reserved port, nothing listens
		duration:    200 * time.Millisecond,
		requests:    3,
		concurrency: 1,
		timeout:     time.Second,
	}
	rep, err := run(context.Background(), c)
	if err == nil && rep.Simulate.Errors+rep.Sweep.Errors == 0 {
		t.Fatalf("unreachable target reported success: %+v", rep)
	}
}
