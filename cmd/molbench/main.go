// Command molbench runs the reproduction experiments E1–E10 (the paper's
// tables and figures; see DESIGN.md for the mapping) and prints their
// tables and text figures. EXPERIMENTS.md is generated from this tool's
// full-mode output.
//
// Usage:
//
//	molbench              # run everything, full parameters
//	molbench -quick       # shrunken grids (seconds instead of minutes)
//	molbench -run E3,E6   # a subset
//	molbench -metrics m.txt -quick   # also collect simulator metrics
//	molbench -cpuprofile cpu.pprof -run E6 -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/exper"
	"repro/internal/obs"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "use shrunken parameter grids")
		run     = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		seed    = flag.Int64("seed", 1, "seed for stochastic and jitter sweeps")
		metrics = flag.String("metrics", "", "write Prometheus-style simulator metrics to this file ('-' = stdout summary only)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	var exps []exper.Experiment
	if *run == "" {
		exps = exper.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, ok := exper.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "molbench: unknown experiment %q\n", id)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "molbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "molbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	cfg := exper.Config{Quick: *quick, Seed: *seed}
	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.NewRegistry()
		cfg.Obs = obs.NewRegistryObserver(reg)
	}

	failed := false
	for _, e := range exps {
		var before map[string]float64
		if reg != nil {
			before = reg.Snapshot()
		}
		start := time.Now()
		res, err := e.Run(cfg)
		elapsed := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "molbench: %s failed: %v\n", e.ID, err)
			failed = true
			continue
		}
		fmt.Print(res.Format())
		if reg != nil {
			runs, steps := countersDelta(before, reg.Snapshot())
			fmt.Printf("(%s in %s: %.0f sims, %.0f steps)\n\n", e.ID, elapsed.Round(time.Millisecond), runs, steps)
		} else {
			fmt.Printf("(%s in %s)\n\n", e.ID, elapsed.Round(time.Millisecond))
		}
	}

	if reg != nil {
		fmt.Fprint(os.Stderr, reg.Summary())
		if *metrics != "-" {
			f, err := os.Create(*metrics)
			if err != nil {
				fmt.Fprintln(os.Stderr, "molbench:", err)
				os.Exit(1)
			}
			if _, err := reg.WriteTo(f); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, "molbench:", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "molbench:", err)
				os.Exit(1)
			}
		}
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "molbench:", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "molbench:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "molbench:", err)
			os.Exit(1)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// countersDelta sums the growth of the per-simulator run and step counters
// between two registry snapshots, aggregating over the sim label.
func countersDelta(before, after map[string]float64) (runs, steps float64) {
	for k, v := range after {
		d := v - before[k]
		switch {
		case strings.HasPrefix(k, "sim_runs_total"):
			runs += d
		case strings.HasPrefix(k, "sim_steps_total"):
			steps += d
		}
	}
	return runs, steps
}
