// Command molbench runs the reproduction experiments E1–E14 (the paper's
// tables and figures; see DESIGN.md for the mapping) and prints their
// tables and text figures. EXPERIMENTS.md is generated from this tool's
// full-mode output.
//
// Grid experiments fan their sweep points across a worker pool
// (internal/batch); -parallel bounds the pool. Tables are bit-identical for
// any worker count. Ctrl-C cancels the running experiment promptly.
//
// Usage:
//
//	molbench              # run everything, full parameters
//	molbench -quick       # shrunken grids (seconds instead of minutes)
//	molbench -list        # print the experiment registry and exit
//	molbench -run E3,E6   # a subset by ID
//	molbench -run stoch   # a subset by tag (grid, scalar, stoch)
//	molbench -parallel 1  # force sequential execution
//	molbench -lanes 16 -run E8 -quick  # widen the SoA ensemble lane blocks
//	molbench -metrics m.txt -quick   # also collect simulator metrics
//	molbench -cpuprofile cpu.pprof -run E6 -quick
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro/internal/exper"
	"repro/internal/obs"
	"repro/internal/obs/proc"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "use shrunken parameter grids")
		list     = flag.Bool("list", false, "list the experiment registry and exit")
		run      = flag.String("run", "", "comma-separated experiment IDs or tags (default: all)")
		seed     = flag.Int64("seed", 1, "seed for stochastic and jitter sweeps")
		parallel = flag.Int("parallel", runtime.NumCPU(), "worker-pool size for grid experiments (1 = sequential)")
		lanes    = flag.Int("lanes", 0, "SoA ensemble lane width for multi-run experiments (0 = engine default)")
		metrics  = flag.String("metrics", "", "write Prometheus-style simulator metrics to this file ('-' = stdout summary only)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *list {
		printRegistry(os.Stdout)
		return
	}

	exps, err := selectExperiments(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, "molbench:", err)
		os.Exit(2)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "molbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "molbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := exper.Config{Quick: *quick, Seed: *seed, Workers: *parallel, Lanes: *lanes}
	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.NewRegistry()
		cfg.Metrics = reg
		// The registry observer is stateful per run, so it only feeds
		// sequential execution; parallel pools report through per-worker
		// shards merged into cfg.Metrics instead.
		if *parallel == 1 {
			cfg.Obs = obs.NewRegistryObserver(reg)
		}
	}

	failed := false
	for _, e := range exps {
		var before map[string]float64
		if reg != nil {
			before = reg.Snapshot()
		}
		u0 := proc.ReadUsage()
		start := time.Now()
		res, err := e.Run(ctx, cfg)
		elapsed := time.Since(start)
		du := proc.ReadUsage().Sub(u0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "molbench: %s failed: %v\n", e.ID, err)
			failed = true
			if ctx.Err() != nil {
				break
			}
			continue
		}
		fmt.Print(res.Format())
		if reg != nil {
			after := reg.Snapshot()
			runs, steps, selects := countersDelta(before, after)
			line := fmt.Sprintf("(%s in %s: %.0f sims, %.0f steps, %.0f selects, cpu %.2fs, %s allocated",
				e.ID, elapsed.Round(time.Millisecond), runs, steps, selects, du.CPUSeconds, fmtBytes(du.AllocBytes))
			if sr := solverReport(before, after); sr != "" {
				line += ", " + sr
			}
			fmt.Print(line + ")\n\n")
		} else {
			fmt.Printf("(%s in %s, cpu %.2fs)\n\n", e.ID, elapsed.Round(time.Millisecond), du.CPUSeconds)
		}
	}

	if reg != nil {
		fmt.Fprint(os.Stderr, reg.Summary())
		if *metrics != "-" {
			f, err := os.Create(*metrics)
			if err != nil {
				fmt.Fprintln(os.Stderr, "molbench:", err)
				os.Exit(1)
			}
			if _, err := reg.WriteTo(f); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, "molbench:", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "molbench:", err)
				os.Exit(1)
			}
		}
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "molbench:", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "molbench:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "molbench:", err)
			os.Exit(1)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// selectExperiments resolves the -run expression: each comma-separated token
// is an experiment ID or a tag; the selection is the union, in registry
// order, without duplicates. An empty expression selects everything.
func selectExperiments(expr string) ([]exper.Experiment, error) {
	if expr == "" {
		return exper.All(), nil
	}
	picked := make(map[string]bool)
	for _, tok := range strings.Split(expr, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if e, ok := exper.ByID(tok); ok {
			picked[e.ID] = true
			continue
		}
		matched := false
		for _, e := range exper.All() {
			if e.HasTag(strings.ToLower(tok)) {
				picked[e.ID] = true
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("unknown experiment or tag %q (try -list)", tok)
		}
	}
	var exps []exper.Experiment
	for _, e := range exper.All() {
		if picked[e.ID] {
			exps = append(exps, e)
		}
	}
	if len(exps) == 0 {
		return nil, fmt.Errorf("selection %q matched nothing (try -list)", expr)
	}
	return exps, nil
}

// printRegistry writes one line per registered experiment: ID, tags, title.
func printRegistry(w *os.File) {
	for _, d := range exper.Registry() {
		fmt.Fprintf(w, "%-4s [%s] %s\n", d.ID, strings.Join(d.Tags, ","), d.Title)
	}
}

// countersDelta sums the growth of the per-simulator run/step counters and
// the kernel selection counters between two registry snapshots, aggregating
// over their labels.
func countersDelta(before, after map[string]float64) (runs, steps, selects float64) {
	for k, v := range after {
		d := v - before[k]
		switch {
		case strings.HasPrefix(k, "sim_runs_total"):
			runs += d
		case strings.HasPrefix(k, "sim_steps_total"):
			steps += d
		case strings.HasPrefix(k, "kernel_selects_total"):
			selects += d
		}
	}
	return runs, steps, selects
}

// solverReport summarizes which ODE integrators an experiment's runs used,
// from the growth of the ode_solver_runs_total family between two registry
// snapshots: "solver explicit×3", "solver stiff×14", or — when auto runs
// handed off — "solver auto×5 switched×2@t=1.2" (the time being the last
// handoff's simulated time). Empty when the experiment ran no ODE sims.
func solverReport(before, after map[string]float64) string {
	var parts []string
	for _, s := range []string{"explicit", "stiff", "auto"} {
		k := obs.Label("ode_solver_runs_total", "solver", s)
		if d := after[k] - before[k]; d > 0 {
			parts = append(parts, fmt.Sprintf("%s×%.0f", s, d))
		}
	}
	if sw := after["ode_stiff_switches_total"] - before["ode_stiff_switches_total"]; sw > 0 {
		parts = append(parts, fmt.Sprintf("switched×%.0f@t=%.4g", sw, after["ode_stiff_switch_t"]))
	}
	if len(parts) == 0 {
		return ""
	}
	return "solver " + strings.Join(parts, " ")
}

// fmtBytes renders a byte volume in the nearest binary unit.
func fmtBytes(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.2f GiB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.2f MiB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.2f KiB", v/(1<<10))
	default:
		return fmt.Sprintf("%.0f B", v)
	}
}
