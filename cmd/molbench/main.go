// Command molbench runs the reproduction experiments E1–E10 (the paper's
// tables and figures; see DESIGN.md for the mapping) and prints their
// tables and text figures. EXPERIMENTS.md is generated from this tool's
// full-mode output.
//
// Usage:
//
//	molbench              # run everything, full parameters
//	molbench -quick       # shrunken grids (seconds instead of minutes)
//	molbench -run E3,E6   # a subset
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/exper"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "use shrunken parameter grids")
		run   = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		seed  = flag.Int64("seed", 1, "seed for stochastic and jitter sweeps")
	)
	flag.Parse()

	var exps []exper.Experiment
	if *run == "" {
		exps = exper.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, ok := exper.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "molbench: unknown experiment %q\n", id)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}
	cfg := exper.Config{Quick: *quick, Seed: *seed}
	failed := false
	for _, e := range exps {
		start := time.Now()
		res, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "molbench: %s failed: %v\n", e.ID, err)
			failed = true
			continue
		}
		fmt.Print(res.Format())
		fmt.Printf("(%s in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}
