package main

import (
	"strings"
	"testing"

	"repro/internal/exper"
)

func TestSelectExperimentsAll(t *testing.T) {
	exps, err := selectExperiments("")
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != len(exper.All()) {
		t.Fatalf("empty selection picked %d of %d", len(exps), len(exper.All()))
	}
}

func TestSelectExperimentsByID(t *testing.T) {
	exps, err := selectExperiments("E3, E6")
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 2 || exps[0].ID != "E3" || exps[1].ID != "E6" {
		t.Fatalf("got %v", ids(exps))
	}
}

func TestSelectExperimentsByTag(t *testing.T) {
	exps, err := selectExperiments(exper.TagStoch)
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) == 0 {
		t.Fatal("stoch tag matched nothing")
	}
	for _, e := range exps {
		if !e.HasTag(exper.TagStoch) {
			t.Errorf("%s selected without the tag", e.ID)
		}
	}
	// Tags and IDs mix; duplicates collapse; registry order is preserved.
	mixed, err := selectExperiments("E1," + exper.TagStoch + ",E1")
	if err != nil {
		t.Fatal(err)
	}
	if len(mixed) != len(exps)+1 || mixed[0].ID != "E1" {
		t.Fatalf("mixed selection %v", ids(mixed))
	}
	prev := ""
	for _, e := range mixed {
		if prev != "" && !beforeInRegistry(prev, e.ID) {
			t.Fatalf("selection out of registry order: %v", ids(mixed))
		}
		prev = e.ID
	}
}

func TestSelectExperimentsUnknown(t *testing.T) {
	if _, err := selectExperiments("E99"); err == nil || !strings.Contains(err.Error(), "E99") {
		t.Fatalf("unknown ID error = %v", err)
	}
	if _, err := selectExperiments("nonsense-tag"); err == nil {
		t.Fatal("unknown tag accepted")
	}
}

func ids(exps []exper.Experiment) []string {
	out := make([]string, len(exps))
	for i, e := range exps {
		out[i] = e.ID
	}
	return out
}

func beforeInRegistry(a, b string) bool {
	ia, ib := -1, -1
	for i, d := range exper.Registry() {
		if d.ID == a {
			ia = i
		}
		if d.ID == b {
			ib = i
		}
	}
	return ia >= 0 && ib >= 0 && ia < ib
}
