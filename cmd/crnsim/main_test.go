package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

const osc = "testdata/oscillator.crn"

// capture runs f with stdout redirected to a pipe and returns what it wrote.
// The pipe is drained concurrently: CSV output easily exceeds the kernel
// pipe buffer and a sequential read would deadlock.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	runErr := f()
	os.Stdout = old
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return <-done, runErr
}

func TestODERunCSV(t *testing.T) {
	out, err := capture(t, func() error {
		return run(context.Background(), osc, options{tEnd: 20, fast: 1000, slow: 1})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "t,") {
		t.Fatalf("no CSV header: %q", out[:40])
	}
	if !strings.Contains(out, "R") {
		t.Fatal("species column missing")
	}
}

func TestODERunPlot(t *testing.T) {
	out, err := capture(t, func() error {
		return run(context.Background(), osc, options{tEnd: 120, fast: 1000, slow: 1, plot: "R,G,B"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"a = R", "b = G", "c = B", "final R"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot missing %q", want)
		}
	}
}

func TestTauLeapRun(t *testing.T) {
	out, err := capture(t, func() error {
		return run(context.Background(), osc, options{tEnd: 10, fast: 500, slow: 1, method: "tauleap", unit: 200, seed: 7})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "t,") {
		t.Fatal("tau-leap CSV missing")
	}
}

func TestSSARun(t *testing.T) {
	out, err := capture(t, func() error {
		return run(context.Background(), osc, options{tEnd: 10, fast: 500, slow: 1, method: "ssa", unit: 200, seed: 7})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "t,") {
		t.Fatal("SSA CSV missing")
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := capture(t, func() error {
		return run(context.Background(), "testdata/missing.crn", options{tEnd: 10, fast: 100, slow: 1})
	}); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := capture(t, func() error {
		return run(context.Background(), osc, options{tEnd: 10, fast: 100, slow: 1, plot: "ghost"})
	}); err == nil {
		t.Fatal("unknown plot species accepted")
	}
	if _, err := capture(t, func() error {
		return run(context.Background(), osc, options{tEnd: 10, fast: 1, slow: 100}) // inverted rates
	}); err == nil {
		t.Fatal("inverted rates accepted")
	}
}

// TestUnusedSpeciesRejected is the regression test for .crn files declaring
// species no reaction uses: a clear error naming the species, not a panic or
// a silent constant-species trace.
func TestUnusedSpeciesRejected(t *testing.T) {
	_, err := capture(t, func() error {
		return run(context.Background(), "testdata/unused_species.crn", options{tEnd: 10, fast: 100, slow: 1})
	})
	if err == nil {
		t.Fatal("file with unused species accepted")
	}
	for _, want := range []string{"Xtra", "Orphan", "used by no reaction"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
	// The oscillator file must still pass the check.
	if _, err := loadNetwork(osc); err != nil {
		t.Fatalf("oscillator rejected: %v", err)
	}
}

// promLine matches Prometheus text-format sample and comment lines.
var promLine = regexp.MustCompile(`^(# (TYPE|HELP) .*|[A-Za-z_:][A-Za-z0-9_:]*(\{[^}]*\})? [-+0-9eE.infNa]+)$`)

// TestEventsAndMetrics exercises the full instrumentation path on the
// oscillator: the JSONL event log must be valid (one JSON object per line)
// and include clock_edge and phase_change events; the metrics file must
// parse as Prometheus text exposition.
func TestEventsAndMetrics(t *testing.T) {
	dir := t.TempDir()
	events := filepath.Join(dir, "events.jsonl")
	metrics := filepath.Join(dir, "metrics.txt")
	_, err := capture(t, func() error {
		return run(context.Background(), osc, options{tEnd: 120, fast: 1000, slow: 1, events: events, metrics: metrics})
	})
	if err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(events)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	kinds := map[string]int{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", sc.Text(), err)
		}
		kind, _ := rec["event"].(string)
		if kind == "" {
			t.Fatalf("line missing event discriminator: %q", sc.Text())
		}
		kinds[kind]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if kinds["sim_start"] != 1 || kinds["sim_end"] != 1 {
		t.Errorf("want exactly one sim_start and sim_end, got %v", kinds)
	}
	if kinds["clock_edge"] == 0 {
		t.Errorf("no clock_edge events in %v", kinds)
	}
	if kinds["phase_change"] == 0 {
		t.Errorf("no phase_change events in %v", kinds)
	}

	mb, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(mb), "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("metrics file suspiciously short: %q", string(mb))
	}
	for _, line := range lines {
		if !promLine.MatchString(line) {
			t.Errorf("line not Prometheus text format: %q", line)
		}
	}
	text := string(mb)
	for _, want := range []string{"ode_steps_accepted_total", "ode_step_size_bucket", `clock_edges_total{species="`, "sim_wall_seconds"} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestTraceJSON runs a short simulation with -trace-json and checks the
// exported file is OTLP-shaped: a root span named for the invocation with a
// child sim span parented under it, both carrying the same trace ID.
func TestTraceJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.json")
	_, err := capture(t, func() error {
		return run(context.Background(), osc, options{tEnd: 20, fast: 1000, slow: 1, traces: out})
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		ResourceSpans []struct {
			ScopeSpans []struct {
				Spans []struct {
					TraceID      string `json:"traceId"`
					SpanID       string `json:"spanId"`
					ParentSpanID string `json:"parentSpanId"`
					Name         string `json:"name"`
				} `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("trace file not valid JSON: %v", err)
	}
	if len(doc.ResourceSpans) != 1 {
		t.Fatalf("want one resourceSpans entry, got %d", len(doc.ResourceSpans))
	}
	type flat struct{ traceID, spanID, parent, name string }
	var spans []flat
	for _, ss := range doc.ResourceSpans[0].ScopeSpans {
		for _, s := range ss.Spans {
			spans = append(spans, flat{s.TraceID, s.SpanID, s.ParentSpanID, s.Name})
		}
	}
	if len(spans) < 2 {
		t.Fatalf("want root + sim span, got %d spans", len(spans))
	}
	var root, child *flat
	for i := range spans {
		if spans[i].name == "crnsim "+osc {
			root = &spans[i]
		}
		if strings.HasPrefix(spans[i].name, "sim.") {
			child = &spans[i]
		}
	}
	if root == nil || root.parent != "" {
		t.Fatalf("no parentless root span named %q in %+v", "crnsim "+osc, spans)
	}
	if child == nil {
		t.Fatalf("no sim span in %+v", spans)
	}
	if child.parent != root.spanID {
		t.Errorf("sim span parent = %s, want root %s", child.parent, root.spanID)
	}
	if child.traceID != root.traceID {
		t.Errorf("sim span trace %s != root trace %s", child.traceID, root.traceID)
	}
}

// TestResolveMethod covers the -method flag and its interaction with the
// deprecated -ssa/-tauleap alias booleans.
func TestResolveMethod(t *testing.T) {
	cases := []struct {
		o    options
		want sim.Method
		ok   bool
	}{
		{options{}, sim.ODE, true},
		{options{method: "ode"}, sim.ODE, true},
		{options{method: "SSA"}, sim.SSA, true},
		{options{method: "gillespie"}, sim.SSA, true},
		{options{method: "tau-leap"}, sim.TauLeap, true},
		{options{useSSA: true}, sim.SSA, true},
		{options{useTau: true}, sim.TauLeap, true},
		{options{method: "ode", useSSA: true}, sim.ODE, true}, // explicit -method wins
		{options{method: "euler"}, 0, false},
		{options{useSSA: true, useTau: true}, 0, false},
	}
	for _, c := range cases {
		got, err := c.o.resolveMethod()
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("resolveMethod(%+v) = %v, %v; want %v", c.o, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("resolveMethod(%+v) accepted", c.o)
		}
	}
}

// TestRunInvalidMethod: a bogus -method must fail before touching the file,
// with an error naming the valid simulators.
func TestRunInvalidMethod(t *testing.T) {
	_, err := capture(t, func() error {
		return run(context.Background(), osc, options{tEnd: 10, fast: 100, slow: 1, method: "euler"})
	})
	if err == nil {
		t.Fatal("invalid method accepted")
	}
	for _, want := range []string{"euler", "ode", "ssa", "tauleap"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

// TestRunCanceled: a pre-canceled context must abort the simulation with a
// context error instead of producing a full-horizon trace.
func TestRunCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := capture(t, func() error {
		return run(ctx, osc, options{tEnd: 120, fast: 1000, slow: 1})
	})
	if err == nil {
		t.Fatal("canceled context produced no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
}

// TestRunTimeout: -timeout bounds the run's wall-clock time; expiry aborts
// the simulation with a message naming the flag and wrapping
// context.DeadlineExceeded (main turns that into a non-zero exit).
func TestRunTimeout(t *testing.T) {
	_, err := capture(t, func() error {
		return run(context.Background(), osc, options{
			tEnd: 1e9, fast: 1000, slow: 1, timeout: 50 * time.Millisecond,
		})
	})
	if err == nil {
		t.Fatal("timeout produced no error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
	if !strings.Contains(err.Error(), "-timeout") {
		t.Fatalf("error %q does not mention the -timeout flag", err)
	}
}

// TestRunTimeoutAmple: a generous -timeout must not disturb a short run.
func TestRunTimeoutAmple(t *testing.T) {
	out, err := capture(t, func() error {
		return run(context.Background(), osc, options{
			tEnd: 10, fast: 100, slow: 1, timeout: time.Minute,
		})
	})
	if err != nil {
		t.Fatalf("run failed under an ample timeout: %v", err)
	}
	if !strings.Contains(out, "t,") {
		t.Fatalf("no CSV header in output: %q", out[:min(len(out), 80)])
	}
}
