package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

const osc = "testdata/oscillator.crn"

// capture runs f with stdout redirected to a pipe and returns what it wrote.
// The pipe is drained concurrently: CSV output easily exceeds the kernel
// pipe buffer and a sequential read would deadlock.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	runErr := f()
	os.Stdout = old
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return <-done, runErr
}

func TestRunODECSV(t *testing.T) {
	out, err := capture(t, func() error {
		return run(osc, 20, 1000, 1, false, false, 0, 0, "", 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "t,") {
		t.Fatalf("no CSV header: %q", out[:40])
	}
	if !strings.Contains(out, "R") {
		t.Fatal("species column missing")
	}
}

func TestRunODEPlot(t *testing.T) {
	out, err := capture(t, func() error {
		return run(osc, 120, 1000, 1, false, false, 0, 0, "R,G,B", 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"a = R", "b = G", "c = B", "final R"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot missing %q", want)
		}
	}
}

func TestRunTauLeap(t *testing.T) {
	out, err := capture(t, func() error {
		return run(osc, 10, 500, 1, false, true, 200, 7, "", 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "t,") {
		t.Fatal("tau-leap CSV missing")
	}
}

func TestRunSSA(t *testing.T) {
	out, err := capture(t, func() error {
		return run(osc, 10, 500, 1, true, false, 200, 7, "", 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "t,") {
		t.Fatal("SSA CSV missing")
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := capture(t, func() error {
		return run("testdata/missing.crn", 10, 100, 1, false, false, 0, 0, "", 0)
	}); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := capture(t, func() error {
		return run(osc, 10, 100, 1, false, false, 0, 0, "ghost", 0)
	}); err == nil {
		t.Fatal("unknown plot species accepted")
	}
	if _, err := capture(t, func() error {
		return run(osc, 10, 1, 100, false, false, 0, 0, "", 0) // inverted rates
	}); err == nil {
		t.Fatal("inverted rates accepted")
	}
}
