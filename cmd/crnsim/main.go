// Command crnsim simulates a chemical reaction network described in the
// repository's .crn text format, deterministically (mass-action ODE) or
// stochastically (Gillespie SSA or tau-leaping), and prints CSV or an ASCII
// plot. The instrumentation flags stream machine-readable telemetry while
// the simulation runs: -events writes a JSONL event log (run lifecycle,
// Schmitt-triggered clock edges, dominant-phase changes), -metrics writes a
// Prometheus-style text exposition of the run's counters and histograms,
// -trace-json exports an OTLP-compatible JSON trace of the run (a root span
// parenting the sim span, annotated with clock edges, phase changes and any
// health alerts), and -progress prints coarse progress lines to stderr.
//
// The simulator is selected with -method (ode, ssa, tauleap); Ctrl-C stops
// the run promptly with a partial-horizon error, and -timeout bounds the
// wall-clock time of the run the same way (non-zero exit when it expires).
//
// Usage:
//
//	crnsim [flags] network.crn
//
// Example:
//
//	crnsim -t 120 -plot R1,G1,B1 oscillator.crn
//	crnsim -method ssa -unit 100 -seed 7 -t 50 chain.crn > out.csv
//	crnsim -t 120 -events events.jsonl -metrics metrics.txt oscillator.crn
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/crn"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/sim"
)

// options collects everything the run needs; flags map onto it 1:1.
type options struct {
	tEnd    float64
	fast    float64
	slow    float64
	method  string // simulator name for sim.ParseMethod
	solver  string // ODE integrator for sim.ParseSolver
	useSSA  bool   // deprecated alias for -method ssa
	useTau  bool   // deprecated alias for -method tauleap
	unit    float64
	seed    int64
	plot    string
	sample  float64
	events  string // JSONL event log path ("" = off)
	metrics string // Prometheus text exposition path
	traces  string // OTLP/JSON trace export path ("" = off)
	steps   bool   // include per-step records in the event log
	prog    bool   // progress lines on stderr
	timeout time.Duration
}

// resolveMethod turns the -method string plus the legacy -ssa/-tauleap
// booleans into a sim.Method. The booleans are aliases kept for script
// compatibility; an explicit -method wins over them, and contradictory
// booleans are an error.
func (o options) resolveMethod() (sim.Method, error) {
	if o.method != "" {
		return sim.ParseMethod(o.method)
	}
	if o.useSSA && o.useTau {
		return 0, fmt.Errorf("-ssa and -tauleap are mutually exclusive (use -method)")
	}
	switch {
	case o.useTau:
		return sim.TauLeap, nil
	case o.useSSA:
		return sim.SSA, nil
	}
	return sim.ODE, nil
}

func main() {
	var o options
	flag.Float64Var(&o.tEnd, "t", 100, "simulation horizon (time units)")
	flag.Float64Var(&o.fast, "fast", 100, "fast-category rate constant")
	flag.Float64Var(&o.slow, "slow", 1, "slow-category rate constant")
	flag.StringVar(&o.method, "method", "", "simulator: ode, ssa, or tauleap (default ode)")
	flag.StringVar(&o.solver, "solver", "", "ODE integrator: auto, explicit, or stiff (default auto: explicit with stiffness handoff)")
	flag.BoolVar(&o.useSSA, "ssa", false, "deprecated: alias for -method ssa")
	flag.BoolVar(&o.useTau, "tauleap", false, "deprecated: alias for -method tauleap")
	flag.Float64Var(&o.unit, "unit", 100, "stochastic: molecules per concentration unit")
	flag.Int64Var(&o.seed, "seed", 1, "stochastic: random seed")
	flag.StringVar(&o.plot, "plot", "", "comma-separated species to plot as ASCII (default: CSV of all species)")
	flag.Float64Var(&o.sample, "sample", 0, "recording interval (0 = horizon/1000)")
	flag.StringVar(&o.events, "events", "", "write a JSONL event log (sim lifecycle, clock edges, phase changes) to this file")
	flag.StringVar(&o.metrics, "metrics", "", "write Prometheus-style metrics exposition to this file")
	flag.StringVar(&o.traces, "trace-json", "", "write an OTLP/JSON trace of the run (root + sim spans with clock events) to this file")
	flag.BoolVar(&o.steps, "trace-steps", false, "include per-step records in the -events log (large!)")
	flag.BoolVar(&o.prog, "progress", false, "print progress lines to stderr while simulating")
	flag.DurationVar(&o.timeout, "timeout", 0, "abort the simulation after this wall-clock duration (0 = none)")
	cons := flag.Bool("conserved", false, "print the network's conservation laws and exit")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: crnsim [flags] network.crn")
		flag.Usage()
		os.Exit(2)
	}
	if *cons {
		if err := printConserved(flag.Arg(0)); err != nil {
			fmt.Fprintln(os.Stderr, "crnsim:", err)
			os.Exit(1)
		}
		return
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, flag.Arg(0), o); err != nil {
		fmt.Fprintln(os.Stderr, "crnsim:", err)
		os.Exit(1)
	}
}

// printConserved prints one line per conservation law of the network.
func printConserved(path string) error {
	net, err := loadNetwork(path)
	if err != nil {
		return err
	}
	laws := net.ConservationLaws()
	if len(laws) == 0 {
		fmt.Println("no conservation laws (full-rank stoichiometry)")
		return nil
	}
	for _, l := range laws {
		fmt.Println(l)
	}
	return nil
}

// loadNetwork parses the .crn file and rejects networks with inert species:
// a declared species that no reaction touches can never change concentration
// and almost always indicates a typo in a reaction line.
func loadNetwork(path string) (*crn.Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	net, err := crn.Parse(f)
	if err != nil {
		return nil, err
	}
	if unused := net.UnusedSpecies(); len(unused) > 0 {
		return nil, fmt.Errorf("%s: species declared but used by no reaction: %s (typo in a reaction line?)",
			path, strings.Join(unused, ", "))
	}
	return net, nil
}

func run(ctx context.Context, path string, o options) (err error) {
	method, err := o.resolveMethod()
	if err != nil {
		return err
	}
	solver, err := sim.ParseSolver(o.solver)
	if err != nil {
		return err
	}
	if o.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.timeout)
		defer cancel()
		defer func() {
			if err != nil && errors.Is(err, context.DeadlineExceeded) {
				err = fmt.Errorf("simulation exceeded -timeout %v: %w", o.timeout, err)
			}
		}()
	}
	net, err := loadNetwork(path)
	if err != nil {
		return err
	}
	rates := sim.Rates{Fast: o.fast, Slow: o.slow}

	// Assemble the instrumentation stack.
	var sinks []obs.Observer
	var jsonl *obs.JSONL
	var reg *obs.Registry
	if o.events != "" {
		f, err := os.Create(o.events)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		jsonl = obs.NewJSONL(f)
		jsonl.LogSteps = o.steps
		jsonl.LogFirings = o.steps
		sinks = append(sinks, jsonl)
	}
	if o.metrics != "" {
		reg = obs.NewRegistry()
		sinks = append(sinks, obs.NewRegistryObserver(reg))
	}
	if o.prog {
		sinks = append(sinks, &obs.Progress{W: os.Stderr})
	}
	observer := obs.Multi(sinks...)
	var watchers []obs.Watcher
	if observer != nil || o.traces != "" {
		watchers = sim.AutoWatchers(net)
	}

	// Offline tracing: mint a root span covering the whole invocation and
	// put it in the context; sim.Run hangs its sim span (with clock edge /
	// phase change events) underneath.
	var tracer *span.Tracer
	var root *span.Span
	if o.traces != "" {
		tracer = span.NewTracer(0)
		root = tracer.Root("crnsim " + path)
		root.SetAttr("sim.file", path)
		ctx = span.NewContext(ctx, root)
	}

	tr, err := sim.Run(ctx, net, sim.Config{
		Method:      method,
		Solver:      solver,
		Rates:       rates,
		TEnd:        o.tEnd,
		Unit:        o.unit,
		Seed:        o.seed,
		SampleEvery: o.sample,
		Obs:         observer,
		Watchers:    watchers,
	})
	if root != nil {
		root.SetError(err)
		root.End()
		f, ferr := os.Create(o.traces)
		if ferr != nil {
			return ferr
		}
		spans := tracer.Store().Trace(root.TraceID())
		if werr := span.WriteOTLP(f, "crnsim", spans); werr != nil {
			f.Close()
			return werr
		}
		if cerr := f.Close(); cerr != nil {
			return cerr
		}
	}
	if err != nil {
		return err
	}
	if jsonl != nil {
		if jerr := jsonl.Err(); jerr != nil {
			return fmt.Errorf("event log: %w", jerr)
		}
	}
	if reg != nil {
		f, err := os.Create(o.metrics)
		if err != nil {
			return err
		}
		if _, werr := reg.WriteTo(f); werr != nil {
			f.Close()
			return werr
		}
		if cerr := f.Close(); cerr != nil {
			return cerr
		}
	}
	if o.plot != "" {
		names := strings.Split(o.plot, ",")
		plot, err := tr.ASCIIPlot(100, 16, names...)
		if err != nil {
			return err
		}
		fmt.Print(plot)
		for _, n := range names {
			fmt.Printf("final %s = %.4f\n", n, tr.Final(n))
		}
		return nil
	}
	return tr.WriteCSV(os.Stdout)
}
