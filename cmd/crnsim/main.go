// Command crnsim simulates a chemical reaction network described in the
// repository's .crn text format, deterministically (mass-action ODE) or
// stochastically (Gillespie SSA), and prints CSV or an ASCII plot.
//
// Usage:
//
//	crnsim [flags] network.crn
//
// Example:
//
//	crnsim -t 120 -plot R1,G1,B1 oscillator.crn
//	crnsim -ssa -unit 100 -seed 7 -t 50 -csv chain.crn > out.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/crn"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	var (
		tEnd   = flag.Float64("t", 100, "simulation horizon (time units)")
		fast   = flag.Float64("fast", 100, "fast-category rate constant")
		slow   = flag.Float64("slow", 1, "slow-category rate constant")
		useSSA = flag.Bool("ssa", false, "use the exact stochastic simulator instead of the ODE")
		useTau = flag.Bool("tauleap", false, "use the accelerated stochastic simulator (tau-leaping)")
		unit   = flag.Float64("unit", 100, "SSA: molecules per concentration unit")
		seed   = flag.Int64("seed", 1, "SSA: random seed")
		emit   = flag.String("plot", "", "comma-separated species to plot as ASCII (default: CSV of all species)")
		sample = flag.Float64("sample", 0, "recording interval (0 = horizon/1000)")
		cons   = flag.Bool("conserved", false, "print the network's conservation laws and exit")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: crnsim [flags] network.crn")
		flag.Usage()
		os.Exit(2)
	}
	if *cons {
		if err := printConserved(flag.Arg(0)); err != nil {
			fmt.Fprintln(os.Stderr, "crnsim:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(flag.Arg(0), *tEnd, *fast, *slow, *useSSA, *useTau, *unit, *seed, *emit, *sample); err != nil {
		fmt.Fprintln(os.Stderr, "crnsim:", err)
		os.Exit(1)
	}
}

// printConserved prints one line per conservation law of the network.
func printConserved(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	net, err := crn.Parse(f)
	if err != nil {
		return err
	}
	laws := net.ConservationLaws()
	if len(laws) == 0 {
		fmt.Println("no conservation laws (full-rank stoichiometry)")
		return nil
	}
	for _, l := range laws {
		fmt.Println(l)
	}
	return nil
}

func run(path string, tEnd, fast, slow float64, useSSA, useTau bool, unit float64, seed int64, emit string, sample float64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	net, err := crn.Parse(f)
	if err != nil {
		return err
	}
	rates := sim.Rates{Fast: fast, Slow: slow}
	var tr *trace.Trace
	switch {
	case useTau:
		tr, err = sim.RunTauLeap(net, sim.TauLeapConfig{Rates: rates, TEnd: tEnd, Unit: unit, Seed: seed, SampleEvery: sample})
	case useSSA:
		tr, err = sim.RunSSA(net, sim.SSAConfig{Rates: rates, TEnd: tEnd, Unit: unit, Seed: seed, SampleEvery: sample})
	default:
		tr, err = sim.RunODE(net, sim.Config{Rates: rates, TEnd: tEnd, SampleEvery: sample})
	}
	if err != nil {
		return err
	}
	if emit != "" {
		names := strings.Split(emit, ",")
		plot, err := tr.ASCIIPlot(100, 16, names...)
		if err != nil {
			return err
		}
		fmt.Print(plot)
		for _, n := range names {
			fmt.Printf("final %s = %.4f\n", n, tr.Final(n))
		}
		return nil
	}
	return tr.WriteCSV(os.Stdout)
}
