package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/crn"
	"repro/internal/sbml"
	"repro/internal/sim"
)

func TestBuildAllKinds(t *testing.T) {
	cases := []struct {
		kind string
	}{
		{"movavg"}, {"leaky"}, {"counter"}, {"lfsr"}, {"chain"},
	}
	for _, c := range cases {
		net, err := build(c.kind, 2, 1, 2, 3, 2)
		if err != nil {
			t.Fatalf("%s: %v", c.kind, err)
		}
		if net.NumReactions() == 0 {
			t.Fatalf("%s: empty network", c.kind)
		}
		if err := net.Validate(); err != nil {
			t.Fatalf("%s: invalid network: %v", c.kind, err)
		}
	}
}

func TestBuildUnknownKind(t *testing.T) {
	if _, err := build("nonsense", 2, 1, 2, 3, 2); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestBuildParameterErrors(t *testing.T) {
	if _, err := build("movavg", 1, 1, 2, 3, 2); err == nil {
		t.Fatal("1-tap movavg accepted")
	}
	if _, err := build("leaky", 2, 3, 2, 3, 2); err == nil {
		t.Fatal("gain > 1 leaky integrator accepted")
	}
	if _, err := build("counter", 2, 1, 2, 0, 2); err == nil {
		t.Fatal("0-bit counter accepted")
	}
	if _, err := build("chain", 2, 1, 2, 3, 0); err == nil {
		t.Fatal("0-element chain accepted")
	}
}

func TestBuiltNetworkRoundTripsThroughTextFormat(t *testing.T) {
	net, err := build("movavg", 2, 1, 2, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The emitted text must be parseable by the crn format (this is what
	// guarantees crncompile | crnsim pipelines work).
	if _, err := parseBack(net.String()); err != nil {
		t.Fatalf("emitted network does not re-parse: %v", err)
	}
}

// parseBack re-parses emitted network text.
func parseBack(s string) (interface{ NumReactions() int }, error) {
	return crn.ParseString(s)
}

func TestBuildSpecFilter(t *testing.T) {
	net, err := buildSpec("testdata/weighted.spec")
	if err != nil {
		t.Fatal(err)
	}
	if net.NumReactions() == 0 {
		t.Fatal("empty network from filter spec")
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildSpecFSM(t *testing.T) {
	net, err := buildSpec("testdata/gray2.spec")
	if err != nil {
		t.Fatal(err)
	}
	if net.NumReactions() == 0 {
		t.Fatal("empty network from fsm spec")
	}
}

func TestBuildSpecErrors(t *testing.T) {
	if _, err := buildSpec("testdata/missing.spec"); err == nil {
		t.Fatal("missing spec file accepted")
	}
}

func TestSBMLExportPath(t *testing.T) {
	net, err := build("chain", 2, 1, 2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sbml.Write(&buf, net, sim.Rates{Fast: 100, Slow: 1}, "chain"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<sbml ") {
		t.Fatal("SBML header missing")
	}
}
