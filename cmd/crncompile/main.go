// Command crncompile synthesizes molecular circuits — the DAC 2011 paper's
// clocked scheme or the companion abstract's self-timed scheme — and emits
// the resulting chemical reaction network in the .crn text format, ready for
// crnsim.
//
// Usage:
//
//	crncompile -kind movavg -taps 4            # clocked 4-tap filter
//	crncompile -kind leaky -p 1 -q 2           # clocked leaky integrator
//	crncompile -kind counter -bits 3           # clocked 3-bit counter
//	crncompile -kind lfsr -bits 4              # clocked 4-bit LFSR
//	crncompile -kind chain -n 2                # self-timed delay chain
//	crncompile -kind movavg -taps 2 -dsd 100   # ...then map to DNA strand
//	                                           # displacement at Cmax=100
//	crncompile -spec filter.spec               # compile a spec file (see
//	                                           # package internal/spec)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/crn"
	"repro/internal/dsd"
	"repro/internal/logic"
	"repro/internal/sbml"
	"repro/internal/sfg"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/synth"
	"repro/internal/verify"
)

func main() {
	var (
		specFile = flag.String("spec", "", "compile a circuit specification file instead of a built-in kind")
		kind     = flag.String("kind", "movavg", "circuit kind: movavg, leaky, counter, lfsr, chain")
		taps     = flag.Int("taps", 2, "movavg: tap count")
		p        = flag.Int("p", 1, "leaky: feedback gain numerator")
		q        = flag.Int("q", 2, "leaky: feedback gain denominator")
		bits     = flag.Int("bits", 3, "counter/lfsr: width")
		n        = flag.Int("n", 2, "chain: delay element count")
		dsdC     = flag.Float64("dsd", 0, "if > 0, compile the result to DNA strand displacement with this fuel excess")
		fast     = flag.Float64("fast", 100, "fast rate base (used for DSD rate binding)")
		sbmlOut  = flag.Bool("sbml", false, "emit SBML Level 3 instead of the .crn text format")
		check    = flag.Bool("check", false, "with -dsd: verify the compiled network is behaviourally equivalent to the ideal one before emitting")
		checkT   = flag.Float64("checkt", 20, "with -check: trajectory-comparison horizon")
		probes   = flag.String("probes", "", "with -check: comma-separated observable species (default: species with nonzero initial concentration)")
	)
	flag.Parse()
	var net *crn.Network
	var err error
	if *specFile != "" {
		net, err = buildSpec(*specFile)
	} else {
		net, err = build(*kind, *taps, *p, *q, *bits, *n)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "crncompile:", err)
		os.Exit(1)
	}
	if *dsdC > 0 {
		impl, st, err := dsd.Compile(net, dsd.Options{
			Rates: sim.Rates{Fast: *fast, Slow: 1}, Cmax: *dsdC,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "crncompile:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dsd: %d -> %d species, %d -> %d reactions, %d fuels\n",
			st.SpeciesBefore, st.SpeciesAfter, st.ReactionsBefore, st.ReactionsAfter, st.Fuels)
		if *check {
			// Default observables are the signal-carrying species; the
			// absence indicators and feedback dimers are implementation
			// bookkeeping whose absolute levels legitimately differ
			// between the ideal and DSD kinetics.
			var probeList []string
			if *probes != "" {
				probeList = strings.Split(*probes, ",")
			} else {
				for _, sp := range net.SpeciesNames() {
					if net.InitOf(sp) > 0 {
						probeList = append(probeList, sp)
					}
				}
			}
			fmt.Fprintf(os.Stderr, "check: probing %v\n", probeList)
			// Final-state comparison: the phase-gated circuits amplify
			// kinetic deviations into timing shifts, so pointwise
			// trajectory equivalence would reject correct compilations
			// (see package verify).
			rep, err := verify.Equivalent(net, impl, verify.Options{
				Rates: sim.Rates{Fast: *fast, Slow: 1}, TEnd: *checkT,
				Probes: probeList, Trials: 2, FinalOnly: true,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "crncompile: check:", err)
				os.Exit(1)
			}
			fmt.Fprintln(os.Stderr, "check:", rep)
			if !rep.Equivalent {
				os.Exit(1)
			}
		}
		net = impl
	}
	if *sbmlOut {
		if err := sbml.Write(os.Stdout, net, sim.Rates{Fast: *fast, Slow: 1}, *kind); err != nil {
			fmt.Fprintln(os.Stderr, "crncompile:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Print(net.String())
}

// buildSpec compiles a specification file (package internal/spec) to a
// molecular circuit network.
func buildSpec(path string) (*crn.Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sp, err := spec.Parse(f)
	if err != nil {
		return nil, err
	}
	switch sp.Kind {
	case spec.KindFilter:
		cp, err := synth.Compile(sp.Graph, "f")
		if err != nil {
			return nil, err
		}
		return cp.Circuit.Net, nil
	case spec.KindFSM:
		m, err := logic.Compile(sp.FSM, "fsm")
		if err != nil {
			return nil, err
		}
		return m.Circuit.Net, nil
	default:
		return nil, fmt.Errorf("unknown spec kind %d", sp.Kind)
	}
}

func build(kind string, taps, p, q, bits, n int) (*crn.Network, error) {
	switch kind {
	case "movavg":
		g, err := sfg.MovingAverage(taps)
		if err != nil {
			return nil, err
		}
		cp, err := synth.Compile(g, "f")
		if err != nil {
			return nil, err
		}
		return cp.Circuit.Net, nil
	case "leaky":
		g, err := sfg.LeakyIntegrator(p, q)
		if err != nil {
			return nil, err
		}
		cp, err := synth.Compile(g, "f")
		if err != nil {
			return nil, err
		}
		return cp.Circuit.Net, nil
	case "counter":
		f, err := logic.Counter(bits)
		if err != nil {
			return nil, err
		}
		m, err := logic.Compile(f, "cnt")
		if err != nil {
			return nil, err
		}
		return m.Circuit.Net, nil
	case "lfsr":
		f, err := logic.LFSR(bits, []int{bits, bits - 1})
		if err != nil {
			return nil, err
		}
		m, err := logic.Compile(f, "lfsr")
		if err != nil {
			return nil, err
		}
		return m.Circuit.Net, nil
	case "chain":
		g := sfg.New()
		if err := g.Input("x"); err != nil {
			return nil, err
		}
		prev := "x"
		for i := 1; i <= n; i++ {
			name := fmt.Sprintf("d%d", i)
			if err := g.Delay(name, prev, 0); err != nil {
				return nil, err
			}
			prev = name
		}
		if err := g.Output("y", prev); err != nil {
			return nil, err
		}
		net := crn.NewNetwork()
		ch, err := synth.CompileAsync(g, net, "a")
		if err != nil {
			return nil, err
		}
		if err := net.SetInit(ch.Input, 1); err != nil {
			return nil, err
		}
		return net, nil
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
}
