// Root benchmark harness: one BenchmarkE<n> per reproduction experiment
// (the paper's tables and figures; see DESIGN.md), each running the
// experiment's quick configuration, plus micro-benchmarks of the simulation
// substrates. EXPERIMENTS.md numbers come from cmd/molbench in full mode;
// these benchmarks track the cost of regenerating them.
package repro_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/crn"
	"repro/internal/exper"
	"repro/internal/obs"
	"repro/internal/obs/tsdb"
	"repro/internal/phases"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/sim/kernel"
)

func benchExperiment(b *testing.B, id string) {
	e, ok := exper.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := e.Run(context.Background(), exper.Config{Quick: true, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkE1Clock(b *testing.B)              { benchExperiment(b, "E1") }
func BenchmarkE2DelayChain(b *testing.B)         { benchExperiment(b, "E2") }
func BenchmarkE3MovAvg2(b *testing.B)            { benchExperiment(b, "E3") }
func BenchmarkE4MovAvg4(b *testing.B)            { benchExperiment(b, "E4") }
func BenchmarkE5Counter(b *testing.B)            { benchExperiment(b, "E5") }
func BenchmarkE6Robustness(b *testing.B)         { benchExperiment(b, "E6") }
func BenchmarkE7SyncVsAsync(b *testing.B)        { benchExperiment(b, "E7") }
func BenchmarkE8Stochastic(b *testing.B)         { benchExperiment(b, "E8") }
func BenchmarkE9DSD(b *testing.B)                { benchExperiment(b, "E9") }
func BenchmarkE10Scaling(b *testing.B)           { benchExperiment(b, "E10") }
func BenchmarkE11Ablations(b *testing.B)         { benchExperiment(b, "E11") }
func BenchmarkE12StochasticCounter(b *testing.B) { benchExperiment(b, "E12") }
func BenchmarkE13FreqResponse(b *testing.B)      { benchExperiment(b, "E13") }
func BenchmarkE14Modules(b *testing.B)           { benchExperiment(b, "E14") }

// buildClockNet constructs the standalone molecular clock network used by
// the substrate micro-benchmarks.
func buildClockNet(b *testing.B) *crn.Network {
	b.Helper()
	n := crn.NewNetwork()
	s := phases.NewScheme(n, "ph")
	if _, err := clock.Add(s, "clk", 1); err != nil {
		b.Fatal(err)
	}
	if err := s.Build(); err != nil {
		b.Fatal(err)
	}
	return n
}

// BenchmarkDerivEval measures one mass-action derivative evaluation of the
// clock network — the inner loop of every deterministic experiment.
func BenchmarkDerivEval(b *testing.B) {
	n := buildClockNet(b)
	f := sim.Deriv(n, sim.DefaultRates())
	y := n.Init()
	dydt := make([]float64, len(y))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(0, y, dydt)
	}
}

// BenchmarkODEClockCycle measures integrating the clock through roughly one
// oscillation period.
func BenchmarkODEClockCycle(b *testing.B) {
	n := buildClockNet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(context.Background(), n, sim.Config{Rates: sim.Rates{Fast: 300, Slow: 1}, TEnd: 20}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkODEClockCycleInstrumented is BenchmarkODEClockCycle with the full
// observability stack attached — a RegistryObserver plus the clock's edge and
// phase watchers. The delta against the nil-observer benchmark is the
// instrumentation overhead; the nil path itself must stay within a few
// percent of the pre-instrumentation baseline (the per-step cost of the nil
// check is one predictable branch).
func BenchmarkODEClockCycleInstrumented(b *testing.B) {
	n := crn.NewNetwork()
	s := phases.NewScheme(n, "ph")
	clk, err := clock.Add(s, "clk", 1)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Build(); err != nil {
		b.Fatal(err)
	}
	reg := obs.NewRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := sim.Config{
			Rates:    sim.Rates{Fast: 300, Slow: 1},
			TEnd:     20,
			Obs:      obs.NewRegistryObserver(reg),
			Watchers: []obs.Watcher{clk.Watch(), clk.WatchPhases()},
		}
		if _, err := sim.Run(context.Background(), n, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSSAClock measures the stochastic simulator on the clock at 100
// molecules per unit.
func BenchmarkSSAClock(b *testing.B) {
	n := buildClockNet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(context.Background(), n, sim.Config{Method: sim.SSA,
			Rates: sim.Rates{Fast: 300, Slow: 1}, TEnd: 20, Unit: 100, Seed: int64(i + 1),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// buildRingNet constructs a clocked k-register ring shifter with core's
// gated-transfer machinery. At k=8 the finalized network has 458 reactions —
// the circuit class the SSA propensity index is sized for (the paper's
// synchronous designs compile to CRNs with hundreds of reactions).
func buildRingNet(tb testing.TB, k int) *crn.Network {
	tb.Helper()
	c := core.New("ring")
	regs := make([]*core.Register, k)
	for i := range regs {
		init := 0.0
		if i == 0 {
			init = 1
		}
		r, err := c.NewRegister(fmt.Sprintf("d%d", i), init)
		if err != nil {
			tb.Fatal(err)
		}
		regs[i] = r
	}
	for i := range regs {
		if err := c.Gain(regs[i].Q, regs[(i+1)%k].NS, 1, 1); err != nil {
			tb.Fatal(err)
		}
	}
	if err := c.Finalize(); err != nil {
		tb.Fatal(err)
	}
	return c.Net
}

// BenchmarkSSARing measures the stochastic simulator on a 458-reaction
// clocked ring — the benchmark BENCH_PR5.json tracks for selection-index
// regressions. Keep the configuration stable across PRs so the numbers stay
// comparable.
func BenchmarkSSARing(b *testing.B) {
	n := buildRingNet(b, 8)
	if nr := n.NumReactions(); nr < 200 {
		b.Fatalf("ring net has %d reactions, want >= 200", nr)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(context.Background(), n, sim.Config{
			Method: sim.SSA, Rates: sim.Rates{Fast: 300, Slow: 1},
			TEnd: 10, Unit: 50, Seed: int64(i + 1),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEnsembleRing measures the SoA ensemble engine on the 458-reaction
// ring: one RunMany batch of 16 replicates per iteration, reported per run
// (the ns/run metric divides by the replicate count). The finals-only
// variant is the sweep configuration BENCH_PR7.json gates on; the trace
// variant keeps full trajectories for comparison with BenchmarkSSARing.
func benchEnsembleRing(b *testing.B, finalsOnly bool) {
	n := buildRingNet(b, 8)
	const runs = 16
	var stats kernel.Stats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ens, err := sim.RunMany(context.Background(), n, sim.BatchConfig{
			Base: sim.Config{
				Method: sim.SSA, Rates: sim.Rates{Fast: 300, Slow: 1},
				TEnd: 10, Unit: 50, Seed: int64(i + 1),
				Kernel: &stats,
			},
			Runs:       runs,
			FinalsOnly: finalsOnly,
		})
		if err != nil {
			b.Fatal(err)
		}
		if ens.OK() != runs {
			b.Fatal(ens.Err())
		}
	}
	b.StopTimer()
	if stats.LaneSlots > 0 {
		b.ReportMetric(stats.Occupancy(), "occupancy")
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/runs, "ns/run")
}

func BenchmarkEnsembleRing(b *testing.B)           { benchEnsembleRing(b, false) }
func BenchmarkEnsembleRingFinalsOnly(b *testing.B) { benchEnsembleRing(b, true) }

// benchObsRegistry builds a registry shaped like a live coordinator's:
// ~200 series across counters, gauges and histograms.
func benchObsRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	for i := 0; i < 40; i++ {
		reg.Counter(obs.Label("bench_requests_total", "route", fmt.Sprintf("r%d", i))).Add(float64(i))
		reg.Gauge(obs.Label("bench_inflight", "route", fmt.Sprintf("r%d", i))).Set(float64(i))
		h := reg.Histogram(obs.Label("bench_seconds", "route", fmt.Sprintf("r%d", i)),
			[]float64{0.001, 0.01, 0.1, 1, 10})
		h.Observe(float64(i) * 0.01)
	}
	return reg
}

// BenchmarkEnsembleRingFinalsOnlyTSDB re-runs the gated finals-only
// ensemble leg with an embedded history sampler ticking in the background
// over a server-sized registry (~200 series, 10ms step — 500x the default
// cadence). bench.sh reports its ns/run delta against the plain leg as the
// observed sampling overhead.
func BenchmarkEnsembleRingFinalsOnlyTSDB(b *testing.B) {
	db := tsdb.New(benchObsRegistry(), tsdb.Options{Step: 10 * time.Millisecond, Retention: time.Minute})
	db.Start()
	defer db.Stop()
	benchEnsembleRing(b, true)
}

// BenchmarkTSDBPoll prices one sampling pass over the same server-sized
// registry in isolation. ns/op here divided by the sampling step is the
// deterministic upper bound on the sampler's CPU share — the number
// bench.sh gates below 2% at the stress step, immune to the run-to-run
// noise an A/B of two long ensemble legs picks up on a shared box.
func BenchmarkTSDBPoll(b *testing.B) {
	db := tsdb.New(benchObsRegistry(), tsdb.Options{Step: 10 * time.Millisecond, Retention: time.Minute})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Poll()
	}
}

// BenchmarkSSARingSweepPerRun is the scalar reference for the ensemble gate:
// the same 16-run ring sweep executed as sequential scalar runs with the
// same derived seeds, reported per run like the ensemble benchmarks.
func BenchmarkSSARingSweepPerRun(b *testing.B) {
	n := buildRingNet(b, 8)
	const runs = 16
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < runs; j++ {
			if _, err := sim.Run(context.Background(), n, sim.Config{
				Method: sim.SSA, Rates: sim.Rates{Fast: 300, Slow: 1},
				TEnd: 10, Unit: 50, Seed: batch.DeriveSeed(int64(i+1), j),
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/runs, "ns/run")
}

// benchBatchEnsemble measures an SSA ensemble of the clock fanned over a
// batch pool with the given worker count; the 1-vs-NumCPU pair exposes the
// pool's speedup (or, on a single-core box, its overhead).
func benchBatchEnsemble(b *testing.B, workers int) {
	n := buildClockNet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := batch.Map(context.Background(), 8, func(ctx context.Context, p batch.Point) (float64, error) {
			tr, err := sim.Run(ctx, n, sim.Config{
				Method: sim.SSA, Rates: sim.Rates{Fast: 300, Slow: 1},
				TEnd: 20, Unit: 100, Seed: p.Seed,
			})
			if err != nil {
				return 0, err
			}
			return tr.Final("clk.CR"), nil
		}, batch.Options{Workers: workers, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatchEnsembleSeq(b *testing.B)      { benchBatchEnsemble(b, 1) }
func BenchmarkBatchEnsembleParallel(b *testing.B) { benchBatchEnsemble(b, 0) }

// benchServeSimulate measures one POST /v1/simulate of the clock network
// through the in-process server handler — decode, parse, simulate and encode
// with cacheSize entries of response cache (negative disables it, so every
// request pays the full path).
func benchServeSimulate(b *testing.B, cacheSize int) {
	s := server.New(server.Config{CacheSize: cacheSize})
	h := s.Handler()
	body, err := json.Marshal(server.SimulateRequest{
		CRN: buildClockNet(b).String(), TEnd: 20, Fast: 300, Slow: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/simulate", bytes.NewReader(body)))
		if rec.Code != 200 {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}

func BenchmarkServeSimulate(b *testing.B)       { benchServeSimulate(b, -1) }
func BenchmarkServeSimulateCached(b *testing.B) { benchServeSimulate(b, 128) }

// odeEndCapture records each run's closing SimEnd event (overwritten per
// iteration). It is attached to every leg of the solver comparison so the
// instrumentation cost is identical across them.
type odeEndCapture struct {
	obs.Base
	end obs.SimEnd
}

func (c *odeEndCapture) OnSimEnd(e obs.SimEnd) { c.end = e }

// benchODERing measures the deterministic simulation of the 458-reaction
// clocked ring under one solver at the default tolerances — the comparison
// BENCH_PR10.json gates on: the stiff leg must beat the explicit leg by
// >= 3x wall clock with >= 5x fewer derivative evaluations. Custom metrics
// report the per-run derivative evaluations (evals/op) and, where the stiff
// integrator ran, its accepted steps (stiffsteps/op).
//
// Fast/slow is 30000/1 — the stability-limited regime of the paper's rate
// dichotomy, where the explicit method's step is pinned at ~3/Fast while the
// solution only moves on the slow (clock-period) timescale. At the SSA ring's
// 300/1 the ODE leg is accuracy-limited and an explicit high-order method is
// the right tool; the solver comparison is only meaningful where stiffness,
// not accuracy, sets the step.
func benchODERing(b *testing.B, solver sim.Solver) {
	n := buildRingNet(b, 8)
	capt := &odeEndCapture{}
	cfg := sim.Config{
		Method: sim.ODE, Solver: solver,
		Rates: sim.Rates{Fast: 30000, Slow: 1}, TEnd: 10,
		Obs: capt,
	}
	b.ReportAllocs()
	b.ResetTimer()
	var evals, stiffSteps float64
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(context.Background(), n, cfg); err != nil {
			b.Fatal(err)
		}
		evals += float64(capt.end.ODE.Evals)
		stiffSteps += float64(capt.end.ODE.StiffSteps)
	}
	b.StopTimer()
	b.ReportMetric(evals/float64(b.N), "evals/op")
	if stiffSteps > 0 {
		b.ReportMetric(stiffSteps/float64(b.N), "stiffsteps/op")
	}
}

func BenchmarkODERingExplicit(b *testing.B) { benchODERing(b, sim.SolverExplicit) }
func BenchmarkODERingStiff(b *testing.B)    { benchODERing(b, sim.SolverStiff) }
func BenchmarkODERingAuto(b *testing.B)     { benchODERing(b, sim.SolverAuto) }

// BenchmarkParse measures the .crn text format round trip on the clock
// network.
func BenchmarkParse(b *testing.B) {
	src := buildClockNet(b).String()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := crn.ParseString(src); err != nil {
			b.Fatal(err)
		}
	}
}
