package sim

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/crn"
)

func decayNet(t *testing.T) *crn.Network {
	t.Helper()
	n := crn.NewNetwork()
	n.R("decay", map[string]int{"A": 1}, map[string]int{"B": 1}, crn.Slow)
	if err := n.SetInit("A", 1); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestRatesOf(t *testing.T) {
	r := Rates{Fast: 100, Slow: 2}
	n := crn.NewNetwork()
	n.MustAddReaction("f", map[string]int{"X": 1}, map[string]int{"Y": 1}, crn.Fast, 3)
	n.R("s", map[string]int{"X": 1}, map[string]int{"Y": 1}, crn.Slow)
	if got := r.Of(n.Reaction(0)); got != 300 {
		t.Fatalf("fast*3 = %g", got)
	}
	if got := r.Of(n.Reaction(1)); got != 2 {
		t.Fatalf("slow = %g", got)
	}
}

func TestRatesValidate(t *testing.T) {
	if err := (Rates{Fast: 10, Slow: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
	// The Fast == Slow boundary is degenerate (no timescale separation)
	// but numerically well-defined, so it is accepted.
	if err := (Rates{Fast: 5, Slow: 5}).Validate(); err != nil {
		t.Errorf("Fast == Slow rejected: %v", err)
	}
	for _, r := range []Rates{{0, 1}, {1, 0}, {1, 10}, {-1, -2}} {
		if err := r.Validate(); err == nil {
			t.Errorf("Rates %+v accepted", r)
		}
	}
	inf, nan := math.Inf(1), math.NaN()
	for _, r := range []Rates{
		{Fast: nan, Slow: 1}, {Fast: 10, Slow: nan},
		{Fast: inf, Slow: 1}, {Fast: 10, Slow: inf},
		{Fast: math.Inf(-1), Slow: 1}, {Fast: nan, Slow: nan},
	} {
		if err := r.Validate(); err == nil {
			t.Errorf("non-finite Rates %+v accepted", r)
		}
	}
}

func TestDerivUnimolecular(t *testing.T) {
	n := decayNet(t)
	f := Deriv(n, Rates{Fast: 100, Slow: 2})
	y := []float64{0.5, 0} // A, B
	dydt := make([]float64, 2)
	f(0, y, dydt)
	if math.Abs(dydt[0]+1) > 1e-12 || math.Abs(dydt[1]-1) > 1e-12 {
		t.Fatalf("dydt = %v, want [-1 1]", dydt)
	}
}

func TestDerivDimerization(t *testing.T) {
	n := crn.NewNetwork()
	n.R("dimer", map[string]int{"X": 2}, map[string]int{"D": 1}, crn.Slow)
	f := Deriv(n, Rates{Fast: 100, Slow: 3})
	y := []float64{2, 0}
	dydt := make([]float64, 2)
	f(0, y, dydt)
	// rate = 3 * 2^2 = 12; X loses 2 per firing, D gains 1.
	if math.Abs(dydt[0]+24) > 1e-12 || math.Abs(dydt[1]-12) > 1e-12 {
		t.Fatalf("dydt = %v, want [-24 12]", dydt)
	}
}

func TestDerivZeroOrderAndCatalytic(t *testing.T) {
	n := crn.NewNetwork()
	n.R("gen", nil, map[string]int{"r": 1}, crn.Slow)
	n.R("consume", map[string]int{"r": 1, "R": 1}, map[string]int{"R": 1}, crn.Fast)
	f := Deriv(n, Rates{Fast: 10, Slow: 2})
	ri := n.MustIndex("r")
	Ri := n.MustIndex("R")
	y := make([]float64, n.NumSpecies())
	y[ri], y[Ri] = 0.5, 2
	dydt := make([]float64, n.NumSpecies())
	f(0, y, dydt)
	// dr/dt = 2 - 10*0.5*2 = -8 ; R is catalytic: dR/dt = 0.
	if math.Abs(dydt[ri]+8) > 1e-12 {
		t.Fatalf("dr/dt = %g, want -8", dydt[ri])
	}
	if dydt[Ri] != 0 {
		t.Fatalf("dR/dt = %g, want 0 (catalyst)", dydt[Ri])
	}
}

func TestDerivClampsNegativeInput(t *testing.T) {
	n := decayNet(t)
	f := Deriv(n, DefaultRates())
	dydt := make([]float64, 2)
	f(0, []float64{-0.1, 0}, dydt)
	if dydt[0] != 0 || dydt[1] != 0 {
		t.Fatalf("negative concentration produced flux: %v", dydt)
	}
}

func TestODERunDecay(t *testing.T) {
	n := decayNet(t)
	tr, err := Run(context.Background(), n, Config{Rates: Rates{Fast: 100, Slow: 1}, TEnd: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-3)
	if got := tr.Final("A"); math.Abs(got-want) > 1e-5 {
		t.Fatalf("A(3) = %g, want %g", got, want)
	}
	if got := tr.Final("B"); math.Abs(got-(1-want)) > 1e-5 {
		t.Fatalf("B(3) = %g", got)
	}
	if tr.Len() < 500 {
		t.Fatalf("only %d samples recorded", tr.Len())
	}
}

func TestODERunConservation(t *testing.T) {
	n := crn.NewNetwork()
	n.R("fwd", map[string]int{"A": 1}, map[string]int{"B": 1}, crn.Fast)
	n.R("rev", map[string]int{"B": 1}, map[string]int{"A": 1}, crn.Slow)
	if err := n.SetInit("A", 2); err != nil {
		t.Fatal(err)
	}
	tr, err := Run(context.Background(), n, Config{TEnd: 1})
	if err != nil {
		t.Fatal(err)
	}
	for k := range tr.T {
		sum := tr.Rows[k][0] + tr.Rows[k][1]
		if math.Abs(sum-2) > 1e-6 {
			t.Fatalf("mass not conserved at sample %d: %g", k, sum)
		}
	}
	// Equilibrium: A/B = slow/fast.
	a, b := tr.Final("A"), tr.Final("B")
	if math.Abs(a/b-0.01) > 1e-3 {
		t.Fatalf("equilibrium ratio %g, want 0.01", a/b)
	}
}

func TestODERunConfigErrors(t *testing.T) {
	n := decayNet(t)
	if _, err := Run(context.Background(), n, Config{TEnd: 0}); err == nil {
		t.Fatal("TEnd=0 accepted")
	}
	if _, err := Run(context.Background(), n, Config{TEnd: 1, Rates: Rates{Fast: 1, Slow: 2}}); err == nil {
		t.Fatal("inverted rates accepted")
	}
	if _, err := Run(context.Background(), n, Config{TEnd: 1, Events: []*Event{{Probe: "nope", High: 1, Low: 0}}}); err == nil {
		t.Fatal("event with unknown probe accepted")
	}
	if _, err := Run(context.Background(), n, Config{TEnd: 1, Events: []*Event{{Probe: "A", High: 0, Low: 1}}}); err == nil {
		t.Fatal("event with Low >= High accepted")
	}
}

func TestODERunEventInjection(t *testing.T) {
	// A is produced at a constant slow rate; an event watches A and, on
	// each rise through 1.0, zeroes it and bumps a counter species. The
	// result is a relaxation oscillator driven by the event machinery.
	n := crn.NewNetwork()
	n.R("gen", nil, map[string]int{"A": 1}, crn.Slow)
	n.AddSpecies("count")
	fires := 0
	ev := &Event{
		Probe: "A", High: 1.0, Low: 0.5,
		Fire: func(_ float64, s *State) {
			fires++
			s.Set("A", 0)
			s.Add("count", 1)
		},
	}
	tr, err := Run(context.Background(), n, Config{Rates: Rates{Fast: 100, Slow: 1}, TEnd: 5.5, Events: []*Event{ev}})
	if err != nil {
		t.Fatal(err)
	}
	if fires != 5 {
		t.Fatalf("event fired %d times, want 5", fires)
	}
	if got := tr.Final("count"); got != 5 {
		t.Fatalf("count = %g", got)
	}
}

func TestEventSchmittNoRefireWithoutRearm(t *testing.T) {
	// A rises monotonically; the event must fire exactly once even though
	// A stays above High forever after.
	n := crn.NewNetwork()
	n.R("gen", nil, map[string]int{"A": 1}, crn.Slow)
	fires := 0
	ev := &Event{Probe: "A", High: 0.5, Low: 0.25, Fire: func(_ float64, _ *State) { fires++ }}
	if _, err := Run(context.Background(), n, Config{TEnd: 3, Events: []*Event{ev}}); err != nil {
		t.Fatal(err)
	}
	if fires != 1 {
		t.Fatalf("event fired %d times, want 1", fires)
	}
}

func TestStateAccessors(t *testing.T) {
	n := crn.NewNetwork()
	n.AddSpecies("X")
	st := &State{net: n, y: []float64{2}}
	if st.Get("X") != 2 || st.Get("missing") != 0 {
		t.Fatal("Get wrong")
	}
	st.Add("X", -5)
	if st.Get("X") != 0 {
		t.Fatalf("Add clamp failed: %g", st.Get("X"))
	}
	st.Set("X", -1)
	if st.Get("X") != 0 {
		t.Fatal("Set clamp failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Add on unknown species did not panic")
		}
	}()
	st.Add("missing", 1)
}

func TestSSARunDecayMean(t *testing.T) {
	n := decayNet(t)
	// Large counts: single trajectory should be close to the ODE.
	tr, err := Run(context.Background(), n, Config{Method: SSA, Rates: Rates{Fast: 100, Slow: 1}, TEnd: 2, Unit: 20000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-2)
	if got := tr.Final("A"); math.Abs(got-want) > 0.02 {
		t.Fatalf("SSA A(2) = %g, want ~%g", got, want)
	}
}

func TestSSARunConservesCounts(t *testing.T) {
	n := crn.NewNetwork()
	n.R("fwd", map[string]int{"A": 1}, map[string]int{"B": 1}, crn.Fast)
	n.R("rev", map[string]int{"B": 1}, map[string]int{"A": 1}, crn.Slow)
	if err := n.SetInit("A", 1); err != nil {
		t.Fatal(err)
	}
	tr, err := Run(context.Background(), n, Config{Method: SSA, TEnd: 1, Unit: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for k := range tr.T {
		sum := tr.Rows[k][0] + tr.Rows[k][1]
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("count not conserved at sample %d: %g", k, sum)
		}
	}
}

func TestSSARunDeterministicSeed(t *testing.T) {
	n := decayNet(t)
	run := func() []float64 {
		tr, err := Run(context.Background(), n, Config{Method: SSA, TEnd: 1, Unit: 50, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		return tr.MustSeries("A")
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at sample %d", i)
		}
	}
}

func TestSSARunDimerizationStops(t *testing.T) {
	// 2X -> D with an odd count: one X must remain.
	n := crn.NewNetwork()
	n.R("dimer", map[string]int{"X": 2}, map[string]int{"D": 1}, crn.Fast)
	if err := n.SetInit("X", 0.5); err != nil { // 5 molecules at Unit=10
		t.Fatal(err)
	}
	tr, err := Run(context.Background(), n, Config{Method: SSA, TEnd: 50, Unit: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Final("X"); math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("X final = %g, want 0.1 (one leftover molecule)", got)
	}
	if got := tr.Final("D"); math.Abs(got-0.2) > 1e-9 {
		t.Fatalf("D final = %g, want 0.2", got)
	}
}

func TestSSARunConfigErrors(t *testing.T) {
	n := decayNet(t)
	if _, err := Run(context.Background(), n, Config{Method: SSA, TEnd: 1}); err == nil {
		t.Fatal("Unit=0 accepted")
	}
	if _, err := Run(context.Background(), n, Config{Method: SSA, Unit: 10}); err == nil {
		t.Fatal("TEnd=0 accepted")
	}
}

func TestSSARunEvent(t *testing.T) {
	n := crn.NewNetwork()
	n.R("gen", nil, map[string]int{"A": 1}, crn.Slow)
	fires := 0
	ev := &Event{Probe: "A", High: 0.5, Low: 0.2, Fire: func(_ float64, s *State) {
		fires++
		s.Set("A", 0)
	}}
	if _, err := Run(context.Background(), n, Config{Method: SSA, TEnd: 4, Unit: 100, Seed: 5, Events: []*Event{ev}}); err != nil {
		t.Fatal(err)
	}
	if fires < 4 || fires > 12 {
		t.Fatalf("event fired %d times, want roughly 8", fires)
	}
}

// Property: for random slow rate constants, ODE decay matches the closed
// form (rate independence of the harness itself).
func TestQuickODEDecayClosedForm(t *testing.T) {
	prop := func(kRaw uint8) bool {
		k := 0.25 + float64(kRaw)/64
		n := crn.NewNetwork()
		n.MustAddReaction("d", map[string]int{"A": 1}, nil, crn.Slow, k)
		if err := n.SetInit("A", 1); err != nil {
			return false
		}
		tr, err := Run(context.Background(), n, Config{Rates: Rates{Fast: 10, Slow: 1}, TEnd: 2})
		if err != nil {
			return false
		}
		want := math.Exp(-k * 2)
		return math.Abs(tr.Final("A")-want) < 1e-4
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: SSA respects conservation for a random closed two-species loop
// regardless of seed.
func TestQuickSSAConservation(t *testing.T) {
	prop := func(seed int64) bool {
		n := crn.NewNetwork()
		n.R("fwd", map[string]int{"A": 1}, map[string]int{"B": 1}, crn.Fast)
		n.R("rev", map[string]int{"B": 1}, map[string]int{"A": 1}, crn.Slow)
		if err := n.SetInit("A", 0.5); err != nil {
			return false
		}
		tr, err := Run(context.Background(), n, Config{Method: SSA, TEnd: 0.5, Unit: 40, Seed: seed})
		if err != nil {
			return false
		}
		for k := range tr.T {
			if math.Abs(tr.Rows[k][0]+tr.Rows[k][1]-0.5) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
