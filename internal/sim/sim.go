// Package sim simulates chemical reaction networks under mass-action
// kinetics: deterministically (ODE integration, the validation method of the
// DAC 2011 paper) and stochastically (Gillespie's direct method, used to
// probe the small-count validity envelope of the deterministic results).
//
// Rate categories are bound to concrete constants here and only here: the
// constructs themselves (packages phases, clock, core, async, modules) carry
// only the fast/slow dichotomy.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/crn"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/ode"
	"repro/internal/sim/kernel"
	"repro/internal/trace"
)

// Rates assigns concrete rate constants to the two categories. The paper's
// claim — and experiment E6's subject — is that results do not depend on the
// specific values as long as Fast >> Slow.
type Rates struct {
	Fast float64
	Slow float64
}

// DefaultRates returns the assignment used throughout the tests:
// fast/slow = 100. The companion abstract's simulations use 1000.
func DefaultRates() Rates { return Rates{Fast: 100, Slow: 1} }

// Of returns the concrete rate constant of a reaction: the category base
// times the reaction's multiplier.
func (r Rates) Of(rx crn.Reaction) float64 {
	base := r.Slow
	if rx.Cat == crn.Fast {
		base = r.Fast
	}
	return base * rx.Mult
}

// Validate rejects non-finite, non-positive or inverted assignments.
// Fast == Slow is the degenerate boundary of the paper's dichotomy; it is
// accepted (robustness experiments sweep the ratio down to 1) but anything
// below it is not.
func (r Rates) Validate() error {
	if math.IsNaN(r.Fast) || math.IsNaN(r.Slow) || math.IsInf(r.Fast, 0) || math.IsInf(r.Slow, 0) {
		return fmt.Errorf("sim: rates must be finite, got fast=%g slow=%g", r.Fast, r.Slow)
	}
	if r.Fast <= 0 || r.Slow <= 0 {
		return fmt.Errorf("sim: rates must be positive, got fast=%g slow=%g", r.Fast, r.Slow)
	}
	if r.Fast < r.Slow {
		return fmt.Errorf("sim: fast rate %g below slow rate %g", r.Fast, r.Slow)
	}
	return nil
}

// Deriv returns the mass-action derivative function of the network under the
// given rate assignment. The rate of a reaction with reactant coefficients
// c_i is k * Π [S_i]^c_i, and one "firing" moves the full stoichiometry, so
// e.g. 2X -> Y contributes -2·k[X]² to d[X]/dt.
//
// The RHS is evaluated by the same compiled kernel the stochastic backends
// use (CSR stoichiometry, integer powers by repeated multiplication — no
// math.Pow), and one evaluation allocates nothing.
func Deriv(n *crn.Network, rates Rates) ode.Func {
	k := kernel.Compile(n, rates.Of)
	return func(_ float64, y, dydt []float64) {
		k.Deriv(y, dydt)
	}
}

// State is the mutable simulation state handed to event callbacks. All
// access is by species name; concentrations are clamped non-negative.
type State struct {
	net *crn.Network
	y   []float64
}

// Get returns the current concentration of the named species (0 if the
// species does not exist).
func (s *State) Get(name string) float64 {
	if i, ok := s.net.SpeciesIndex(name); ok {
		return s.y[i]
	}
	return 0
}

// Add adds delta (which may be negative) to the named species, clamping the
// result at zero. Unknown names panic: events reference construction-time
// species, so a miss is a programming error.
func (s *State) Add(name string, delta float64) {
	i := s.net.MustIndex(name)
	s.y[i] += delta
	if s.y[i] < 0 {
		s.y[i] = 0
	}
}

// Set assigns the named species' concentration, clamped at zero.
func (s *State) Set(name string, v float64) {
	i := s.net.MustIndex(name)
	if v < 0 {
		v = 0
	}
	s.y[i] = v
}

// Event is a Schmitt-triggered state-change hook: when the probe species
// rises through High (having previously been below Low), Fire is called once;
// the event re-arms when the probe falls back below Low. This is how
// streaming inputs (the paper's per-cycle filter samples) are injected — the
// probe is typically a clock-phase species.
type Event struct {
	Probe string  // watched species
	High  float64 // fire threshold
	Low   float64 // re-arm threshold, must be < High
	Fire  func(t float64, s *State)

	armed    bool
	resolved int
}

func (e *Event) prepare(n *crn.Network, y []float64) error {
	if e.Low >= e.High {
		return fmt.Errorf("sim: event on %q: Low (%g) must be < High (%g)", e.Probe, e.Low, e.High)
	}
	i, ok := n.SpeciesIndex(e.Probe)
	if !ok {
		return fmt.Errorf("sim: event probes unknown species %q", e.Probe)
	}
	e.resolved = i
	e.armed = y[i] < e.Low
	return nil
}

// step updates the trigger state machine and returns true if the event fired.
func (e *Event) step(t float64, st *State) bool {
	v := st.y[e.resolved]
	if e.armed && v >= e.High {
		e.armed = false
		if e.Fire != nil {
			e.Fire(t, st)
		}
		return true
	}
	if !e.armed && v < e.Low {
		e.armed = true
	}
	return false
}

// Config is the unified configuration of a simulation Run: the Method field
// selects the algorithm, the common fields apply to every method and the
// method-specific fields are ignored by the others. Its zero-value Method is
// ODE, so pre-redesign deterministic Config literals keep working unchanged.
type Config struct {
	Method      Method  // simulation algorithm; zero value -> ODE
	Rates       Rates   // rate assignment; zero value -> DefaultRates
	TEnd        float64 // simulation horizon, required
	SampleEvery float64 // recording interval; 0 -> TEnd/1000

	// ODE configures the integrator (Method == ODE only); zero values
	// select the documented defaults.
	ODE ode.Options
	// Solver selects the ODE integration strategy (Method == ODE only).
	// The zero value, SolverAuto, starts with the explicit Dormand–Prince
	// 5(4) method and hands off to the stiff Rosenbrock-W integrator when
	// the error controller detects stiffness.
	Solver Solver

	// Unit is the system size Ω in molecules per concentration unit;
	// required by the stochastic methods, ignored by ODE.
	Unit float64
	// Seed feeds the stochastic methods' RNG (deterministic for a given
	// seed). The batch engine derives a per-job seed when this is zero.
	Seed int64
	// MaxFirings caps SSA reaction firings; 0 -> 50 million.
	MaxFirings int
	// Epsilon is the tau-leap leap-condition parameter (Cao–Gillespie
	// style); 0 selects 0.03.
	Epsilon float64
	// MaxLeaps caps tau-leap steps; 0 -> 10 million.
	MaxLeaps int

	Events []*Event // optional injection events
	// Obs receives instrumentation events: run start/end and step/firing
	// telemetry. Nil disables instrumentation on the hot path.
	Obs obs.Observer
	// Watchers derive semantic events (clock edges, phase changes, duty
	// cycles) from the state at every accepted step or recording sample;
	// their events go to Obs.
	Watchers []obs.Watcher

	// Kernel, when non-nil, additionally receives the run's kernel
	// hot-path counters (selector choices, exact recomputes, loop-variant
	// entries, tau-leap rejections), incremented in place as the run
	// progresses — reusing one sink across runs accumulates a sweep total.
	// The same counters travel on obs.SimEnd.Kernel, but unlike Obs a
	// Kernel sink does not disqualify the run from the tight SSA loop, so
	// it is the only way to observe which loop an unobserved run entered.
	Kernel *kernel.Stats

	// selMode overrides the SSA reaction-selection strategy (selAuto,
	// the zero value, picks the Fenwick index for large networks and the
	// linear scan below the crossover size). The forced modes exist for
	// the engine-equivalence tests, which pin the Fenwick index against
	// the retained linear-scan reference selector (same seed,
	// byte-identical traces); unexported because that is their only use.
	selMode int

	// compiled, when non-nil, is a pre-bound kernel for this network and
	// rate assignment; the backends use it instead of compiling their own.
	// Set only by RunMany, which compiles the network structure once and
	// binds it per rate point, so a 100-run sweep walks the dependency
	// graph once. Unexported: correctness requires it to match (net,
	// Rates) exactly, which RunMany guarantees and arbitrary callers
	// cannot.
	compiled *kernel.Compiled
}

// SSA reaction-selection modes (Config.selMode).
const (
	selAuto    = iota // linear below ssaFenwickMinReactions, Fenwick above
	selFenwick        // force the O(log R) Fenwick index
	selLinear         // force the O(R) reference linear scan
)

// ssaFenwickMinReactions is the network size at which the O(log R) Fenwick
// descent overtakes the cache-friendly O(R) accumulation scan. Below it the
// scan's ~R/2 adds are cheaper than log R dependent-chasing loads; the
// crossover was measured with BenchmarkTreeSelect/BenchmarkTreeSelectLinear.
const ssaFenwickMinReactions = 64

// FieldError reports one invalid Config field: the Go field name (dotted
// for nested fields, e.g. "Rates.Fast") and what is wrong with it.
type FieldError struct {
	Field string
	Msg   string
}

func (e FieldError) Error() string { return e.Field + ": " + e.Msg }

// ConfigError aggregates every invalid field found by Config.Validate, so
// callers surfacing configuration mistakes (the HTTP server's error
// envelope, crnsim's flag diagnostics) can report all of them at once
// instead of one per round trip. Unwrap it with errors.As.
type ConfigError struct {
	Fields []FieldError
}

func (e *ConfigError) Error() string {
	msg := "sim: invalid config"
	sep := ": "
	for _, f := range e.Fields {
		msg += sep + f.Error()
		sep = "; "
	}
	return msg
}

// Validate checks the configuration without running it, reporting every
// invalid field in a *ConfigError. Zero values that select documented
// defaults (SampleEvery, MaxFirings, Epsilon, MaxLeaps, the zero Rates,
// the zero Method) are valid; explicit garbage — non-finite horizons,
// negative caps, inverted rates, events on methods that cannot honour
// them — is not. Run and RunMany validate internally; the method exists so
// config-assembling front ends (the HTTP server, crnsim) can share one
// check instead of duplicating limit logic.
func (c Config) Validate() error {
	var fields []FieldError
	add := func(field, format string, args ...any) {
		fields = append(fields, FieldError{Field: field, Msg: fmt.Sprintf(format, args...)})
	}
	switch c.Method {
	case ODE, SSA, TauLeap:
	default:
		add("Method", "unknown method %d (valid methods: %v)", c.Method, MethodNames())
	}
	if c.Rates != (Rates{}) {
		if err := c.Rates.Validate(); err != nil {
			add("Rates", "%v", err)
		}
	}
	if !(c.TEnd > 0) || math.IsInf(c.TEnd, 0) { // rejects NaN too
		add("TEnd", "must be positive and finite, got %g", c.TEnd)
	}
	if c.SampleEvery < 0 || math.IsNaN(c.SampleEvery) || math.IsInf(c.SampleEvery, 0) {
		add("SampleEvery", "must be non-negative and finite, got %g", c.SampleEvery)
	}
	switch c.Solver {
	case SolverAuto, SolverExplicit, SolverStiff:
	default:
		add("Solver", "unknown solver %d (valid solvers: %v)", c.Solver, SolverNames())
	}
	if c.Solver != SolverAuto && c.Method != ODE {
		add("Solver", "solver %q is only meaningful for method ode, not %q", c.Solver, c.Method)
	}
	// Tolerances: zero selects the documented default, explicit garbage is
	// rejected here rather than silently remapped to the default inside the
	// integrator.
	if c.ODE.RelTol < 0 || math.IsNaN(c.ODE.RelTol) || math.IsInf(c.ODE.RelTol, 0) {
		add("ODE.RelTol", "must be positive and finite (0 selects the default), got %g", c.ODE.RelTol)
	}
	if c.ODE.AbsTol < 0 || math.IsNaN(c.ODE.AbsTol) || math.IsInf(c.ODE.AbsTol, 0) {
		add("ODE.AbsTol", "must be positive and finite (0 selects the default), got %g", c.ODE.AbsTol)
	}
	if c.ODE.MinStep > 0 && c.ODE.MaxStep > 0 && c.ODE.MinStep > c.ODE.MaxStep {
		add("ODE.MinStep", "must not exceed ODE.MaxStep, got %g > %g", c.ODE.MinStep, c.ODE.MaxStep)
	}
	if c.Method == SSA || c.Method == TauLeap {
		if !(c.Unit > 0) || math.IsInf(c.Unit, 0) {
			add("Unit", "molecules per concentration unit must be positive and finite, got %g", c.Unit)
		}
	}
	if c.MaxFirings < 0 {
		add("MaxFirings", "must be non-negative, got %d", c.MaxFirings)
	}
	if c.Epsilon < 0 || c.Epsilon >= 1 || math.IsNaN(c.Epsilon) {
		add("Epsilon", "leap-condition parameter must be in [0, 1), got %g", c.Epsilon)
	}
	if c.MaxLeaps < 0 {
		add("MaxLeaps", "must be non-negative, got %d", c.MaxLeaps)
	}
	if c.Method == TauLeap && len(c.Events) > 0 {
		add("Events", "injection events are not supported by tau-leaping (use ssa or ode)")
	}
	if len(fields) == 0 {
		return nil
	}
	return &ConfigError{Fields: fields}
}

func (c Config) normalize() (Config, error) {
	if c.Rates == (Rates{}) {
		c.Rates = DefaultRates()
	}
	if err := c.Validate(); err != nil {
		return c, err
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = c.TEnd / 1000
	}
	switch c.Method {
	case ODE:
		if c.ODE.MaxStep <= 0 {
			// Never step across a whole sample interval: events and
			// sampling are checked at accepted steps.
			c.ODE.MaxStep = c.SampleEvery
		}
		c.ODE.NonNegative = true
	case SSA:
		if c.MaxFirings == 0 {
			c.MaxFirings = 50_000_000
		}
	case TauLeap:
		if c.Epsilon == 0 {
			c.Epsilon = 0.03
		}
		if c.MaxLeaps == 0 {
			c.MaxLeaps = 10_000_000
		}
	}
	return c, nil
}

// Run simulates the network with the algorithm named by cfg.Method and
// returns the sampled trace (all species, reported as concentrations for
// every method, so traces are directly comparable across methods).
//
// Run honours ctx: cancellation or deadline expiry interrupts the step loop
// (the ODE integrator polls every 256 steps, the SSA every 4096 firings,
// tau-leaping every 64 leaps) and the returned error wraps ctx.Err()
// together with the simulated time reached. A nil ctx behaves like
// context.Background().
//
// When ctx carries a span (span.FromContext), Run opens a child span named
// "sim.<method>" covering the whole run, attributed with the network size
// and horizon; the closing step/firing totals and any clock edges, phase
// changes and health alerts the watchers derive are recorded on it through
// an obs.SpanObserver, so an exported trace shows per-run sim timing without
// any configuration beyond tracing the caller.
func Run(ctx context.Context, n *crn.Network, cfg Config) (*trace.Trace, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if parent := span.FromContext(ctx); parent != nil {
		sp := parent.Child("sim." + cfg.Method.String())
		sp.SetAttr("sim.method", cfg.Method.String())
		sp.SetAttr("sim.t_end", cfg.TEnd)
		sp.SetAttr("sim.species", n.NumSpecies())
		sp.SetAttr("sim.reactions", n.NumReactions())
		if cfg.Method != ODE {
			sp.SetAttr("sim.seed", cfg.Seed)
		}
		cfg.Obs = obs.Multi(cfg.Obs, &obs.SpanObserver{S: sp})
		tr, err := runMethod(ctx, n, cfg)
		sp.SetError(err)
		sp.End()
		return tr, err
	}
	return runMethod(ctx, n, cfg)
}

// runMethod dispatches the normalized config to its backend.
func runMethod(ctx context.Context, n *crn.Network, cfg Config) (*trace.Trace, error) {
	switch cfg.Method {
	case SSA:
		return runSSA(ctx, n, cfg)
	case TauLeap:
		return runTauLeap(ctx, n, cfg)
	default:
		return runODE(ctx, n, cfg)
	}
}

// reactionNames returns display names for every reaction: the registered
// name where present, the rendered reaction text otherwise. Used to label
// instrumentation events and metrics.
func reactionNames(n *crn.Network) []string {
	names := make([]string, n.NumReactions())
	for i := range names {
		if name := n.Reaction(i).Name; name != "" {
			names[i] = name
		} else {
			names[i] = n.FormatReaction(i)
		}
	}
	return names
}

// startRun binds watchers and emits the SimStart event. It returns the
// watcher event sink (never nil when watchers exist) and the run's start
// time for wall-clock accounting.
func startRun(n *crn.Network, sim string, tEnd float64, o obs.Observer, watchers []obs.Watcher) (sink obs.Observer, start time.Time, err error) {
	if err := obs.BindAll(watchers, n.SpeciesNames()); err != nil {
		return nil, time.Time{}, err
	}
	sink = o
	if sink == nil {
		sink = obs.Nop
	}
	if o != nil {
		o.OnSimStart(obs.SimStart{Sim: sim, T0: 0, T1: tEnd,
			Species: n.SpeciesNames(), Reactions: reactionNames(n)})
	}
	return sink, time.Now(), nil
}

// endRun flushes watchers and emits the SimEnd event (with zero kernel
// counters; the stochastic backends report theirs through endRunStats).
func endRun(sim string, t float64, steps int, o obs.Observer, sink obs.Observer,
	watchers []obs.Watcher, start time.Time, runErr error) {
	endRunStats(sim, t, steps, o, sink, watchers, start, runErr, kernel.Stats{})
}

// endRunStats flushes watchers and emits the SimEnd event carrying the
// run's kernel hot-path counters.
func endRunStats(sim string, t float64, steps int, o obs.Observer, sink obs.Observer,
	watchers []obs.Watcher, start time.Time, runErr error, ks kernel.Stats) {
	obs.FinishAll(watchers, t, sink)
	if o == nil {
		return
	}
	e := obs.SimEnd{Sim: sim, T: t, Steps: steps,
		WallSeconds: time.Since(start).Seconds(), Kernel: kernelStats(ks)}
	if runErr != nil {
		e.Err = runErr.Error()
	}
	o.OnSimEnd(e)
}

// kernelStats converts the kernel package's counter struct into the obs
// mirror (obs stays free of sim-layer imports).
func kernelStats(ks kernel.Stats) obs.KernelStats {
	return obs.KernelStats{
		FenwickSelects:  ks.FenwickSelects,
		LinearSelects:   ks.LinearSelects,
		ExactRecomputes: ks.ExactRecomputes,
		TightLoops:      ks.TightLoops,
		FullLoops:       ks.FullLoops,
		LeapRejections:  ks.LeapRejections,
		EnsembleBlocks:  ks.EnsembleBlocks,
		EnsemblePasses:  ks.EnsemblePasses,
		LaneSteps:       ks.LaneSteps,
		LaneSlots:       ks.LaneSlots,
	}
}

// kernelJac adapts the compiled kernel's analytic sparse Jacobian to the
// ode.Jacobian interface (the ode package stays chemistry-free; time is
// ignored because mass-action kinetics is autonomous).
type kernelJac struct {
	k *kernel.Compiled
	j *kernel.Jacobian
}

func newKernelJac(k *kernel.Compiled) kernelJac { return kernelJac{k: k, j: k.Jac()} }

func (a kernelJac) Dim() int                          { return a.j.Dim() }
func (a kernelJac) Pattern() (colPtr, rowIdx []int32) { return a.j.Pattern() }
func (a kernelJac) Fill(_ float64, y, nz []float64)   { a.j.Fill(a.k, y, nz) }

// endRunODE flushes watchers and emits the SimEnd event carrying the ODE
// backend's solver decision and effort counters.
func endRunODE(t float64, steps int, o obs.Observer, sink obs.Observer,
	watchers []obs.Watcher, start time.Time, runErr error, os obs.ODEStats) {
	obs.FinishAll(watchers, t, sink)
	if o == nil {
		return
	}
	e := obs.SimEnd{Sim: "ode", T: t, Steps: steps,
		WallSeconds: time.Since(start).Seconds(), ODE: os}
	if runErr != nil {
		e.Err = runErr.Error()
	}
	o.OnSimEnd(e)
}

// runODE is the deterministic backend of Run; cfg has been normalized and
// the network validated. The Solver knob picks the integrator: explicit
// DP5(4), stiff Rosenbrock-W on the kernel's analytic sparse Jacobian, or —
// the default — explicit with automatic handoff to stiff when the error
// controller detects stiffness (ode.ErrStiff) or underflows its step size.
func runODE(ctx context.Context, n *crn.Network, cfg Config) (*trace.Trace, error) {
	y := n.Init()
	st := &State{net: n, y: y}
	for _, e := range cfg.Events {
		if err := e.prepare(n, y); err != nil {
			return nil, err
		}
	}
	sink, startWall, err := startRun(n, "ode", cfg.TEnd, cfg.Obs, cfg.Watchers)
	if err != nil {
		return nil, err
	}
	if cfg.ODE.Obs == nil {
		cfg.ODE.Obs = cfg.Obs
	}
	tr := trace.New(n.SpeciesNames())
	tr.Grow(int(cfg.TEnd/cfg.SampleEvery) + 2)
	if err := tr.Append(0, y); err != nil {
		return nil, err
	}
	nextSample := cfg.SampleEvery
	stepFn := func(t float64, yy []float64) (bool, bool) {
		modified := false
		for _, e := range cfg.Events {
			if e.step(t, st) {
				modified = true
			}
		}
		obs.ObserveAll(cfg.Watchers, t, yy, sink)
		if t >= nextSample {
			// The integrator caps steps at SampleEvery, so at most a few
			// samples are skipped under rounding; emit one row per step
			// past the boundary to keep rows strictly increasing.
			if err := tr.Append(t, yy); err == nil {
				for t >= nextSample {
					nextSample += cfg.SampleEvery
				}
			}
		}
		return modified, false
	}
	k := cfg.compiled
	if k == nil {
		k = kernel.Compile(n, cfg.Rates.Of)
	}
	deriv := func(_ float64, yy, dydt []float64) { k.Deriv(yy, dydt) }

	odeStats := obs.ODEStats{Solver: cfg.Solver.String()}
	var stats ode.Stats
	switch cfg.Solver {
	case SolverExplicit:
		stats, err = ode.Integrate(ctx, deriv, y, 0, cfg.TEnd, cfg.ODE, stepFn)
	case SolverStiff:
		stats, err = ode.IntegrateStiff(ctx, deriv, newKernelJac(k), y, 0, cfg.TEnd, cfg.ODE, stepFn)
		odeStats.StiffSteps = stats.Accepted
	default: // SolverAuto
		opts := cfg.ODE
		opts.StiffDetect = true
		stats, err = ode.Integrate(ctx, deriv, y, 0, cfg.TEnd, opts, stepFn)
		if err != nil && (errors.Is(err, ode.ErrStiff) || errors.Is(err, ode.ErrMinStep)) {
			// The explicit method left y at the integration front and
			// Stats.T at the time reached: resume from there with the
			// stiff integrator. The step callback's sampling and event
			// state carry over untouched.
			odeStats.Switched = true
			odeStats.SwitchT = stats.T
			var rest ode.Stats
			rest, err = ode.IntegrateStiff(ctx, deriv, newKernelJac(k), y, stats.T, cfg.TEnd, cfg.ODE, stepFn)
			odeStats.StiffSteps = rest.Accepted
			stats.Add(rest)
		}
	}
	odeStats.JacEvals = stats.JacEvals
	odeStats.Factorizations = stats.Factorizations
	odeStats.Solves = stats.Solves
	odeStats.Rejected = stats.Rejected
	odeStats.Evals = stats.Evals
	if err != nil {
		endRunODE(tr.End(), stats.Accepted, cfg.Obs, sink, cfg.Watchers, startWall, err, odeStats)
		return nil, err
	}
	if tr.End() < cfg.TEnd {
		if err := tr.Append(cfg.TEnd, y); err != nil {
			return nil, err
		}
	}
	endRunODE(cfg.TEnd, stats.Accepted, cfg.Obs, sink, cfg.Watchers, startWall, nil, odeStats)
	return tr, nil
}
