package sim_test

import (
	"context"
	"fmt"

	"repro/internal/crn"
	"repro/internal/sim"
)

// Simulate a unimolecular decay deterministically. Rate categories are
// bound to concrete constants only here, at simulation time.
func ExampleRun() {
	n := crn.NewNetwork()
	n.R("decay", map[string]int{"A": 1}, map[string]int{"B": 1}, crn.Slow)
	if err := n.SetInit("A", 1); err != nil {
		panic(err)
	}
	tr, err := sim.Run(context.Background(), n, sim.Config{Rates: sim.Rates{Fast: 100, Slow: 1}, TEnd: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("A(1) = %.3f, B(1) = %.3f\n", tr.Final("A"), tr.Final("B"))
	// Output:
	// A(1) = 0.368, B(1) = 0.632
}

// The same network stochastically: at 10000 molecules per unit a single
// trajectory is already close to the deterministic limit.
func ExampleRun_stochastic() {
	n := crn.NewNetwork()
	n.R("decay", map[string]int{"A": 1}, map[string]int{"B": 1}, crn.Slow)
	if err := n.SetInit("A", 1); err != nil {
		panic(err)
	}
	tr, err := sim.Run(context.Background(), n, sim.Config{Method: sim.SSA, TEnd: 1, Unit: 10000, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("A(1) within 2%% of e^-1: %v\n", tr.Final("A") > 0.35 && tr.Final("A") < 0.39)
	// Output:
	// A(1) within 2% of e^-1: true
}
