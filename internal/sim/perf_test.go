package sim

// Tests for the PR5 performance work: selector equivalence between the
// Fenwick index and the retained linear-scan reference, and the
// allocation budgets of the hot paths (zero allocations per Deriv
// evaluation and per SSA firing).

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/crn"
	"repro/internal/sim/kernel"
	"repro/internal/trace"
)

// chainNet builds a reversible reaction chain S0 <-> S1 <-> ... <-> Sm with
// mixed rate classes and a catalytic side tap every few links — enough
// reactions (2m+) to exercise the Fenwick descent over several tree levels,
// with propensities that never die out (the chain is mass-conserving).
func chainNet(tb testing.TB, m int) *crn.Network {
	tb.Helper()
	n := crn.NewNetwork()
	for i := 0; i < m; i++ {
		a, b := fmt.Sprintf("S%d", i), fmt.Sprintf("S%d", i+1)
		cls := crn.Slow
		if i%3 == 0 {
			cls = crn.Fast
		}
		n.R(fmt.Sprintf("f%d", i), map[string]int{a: 1}, map[string]int{b: 1}, cls)
		n.R(fmt.Sprintf("b%d", i), map[string]int{b: 1}, map[string]int{a: 1}, crn.Slow)
		if i%4 == 0 {
			// Catalytic bimolecular tap: non-unit order and fan-out.
			n.R(fmt.Sprintf("c%d", i),
				map[string]int{a: 1, b: 1},
				map[string]int{a: 1, b: 1, "W": 1}, crn.Slow)
		}
	}
	if err := n.SetInit("S0", 5); err != nil {
		tb.Fatal(err)
	}
	if err := n.SetInit(fmt.Sprintf("S%d", m/2), 3); err != nil {
		tb.Fatal(err)
	}
	return n
}

func runSSAWithMode(t *testing.T, n *crn.Network, seed int64, mode int) *trace.Trace {
	t.Helper()
	tr, err := Run(context.Background(), n, Config{
		Method: SSA, Rates: Rates{Fast: 50, Slow: 1},
		TEnd: 5, Unit: 40, Seed: seed, selMode: mode,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestSSASelectorByteIdentical pins the Fenwick selection index against the
// retained linear-scan reference: same seed, same network, the two selector
// modes must produce bit-for-bit identical traces. Both modes share every
// piece of floating-point bookkeeping (propensities, running total, drift
// recomputes) by construction, so any divergence here means the index
// changed the stochastic process rather than just the selection cost.
func TestSSASelectorByteIdentical(t *testing.T) {
	n := chainNet(t, 40) // ~90 reactions: above the auto crossover
	for _, seed := range []int64{1, 7, 42} {
		trF := runSSAWithMode(t, n, seed, selFenwick)
		trL := runSSAWithMode(t, n, seed, selLinear)
		if len(trF.T) != len(trL.T) {
			t.Fatalf("seed %d: %d vs %d samples", seed, len(trF.T), len(trL.T))
		}
		for i := range trF.T {
			if math.Float64bits(trF.T[i]) != math.Float64bits(trL.T[i]) {
				t.Fatalf("seed %d: sample %d time %v vs %v", seed, i, trF.T[i], trL.T[i])
			}
			for j := range trF.Rows[i] {
				fb, lb := math.Float64bits(trF.Rows[i][j]), math.Float64bits(trL.Rows[i][j])
				if fb != lb {
					t.Fatalf("seed %d: sample %d species %s: %v (%#x) vs %v (%#x)",
						seed, i, trF.Names[j], trF.Rows[i][j], fb, trL.Rows[i][j], lb)
				}
			}
		}
	}
}

// TestSSAFiringAllocs asserts the zero-allocation budget of the SSA inner
// loop: once the engine is built, drawing waiting times and firing
// reactions allocates nothing, in both selector modes.
func TestSSAFiringAllocs(t *testing.T) {
	n := chainNet(t, 40)
	for _, mode := range []int{selFenwick, selLinear} {
		cfg := Config{Rates: Rates{Fast: 50, Slow: 1}, Unit: 1000, Seed: 3, selMode: mode}
		counts := make([]float64, n.NumSpecies())
		for i, c := range n.Init() {
			counts[i] = math.Round(c * cfg.Unit)
		}
		var ks kernel.Stats
		eng := newSSAEngine(n, cfg, counts, &ks)
		allocs := testing.AllocsPerRun(200, func() {
			if dt := eng.nextDT(); math.IsInf(dt, 1) {
				t.Fatal("network exhausted mid-test")
			}
			eng.fire()
		})
		if allocs != 0 {
			t.Errorf("mode %d: %.1f allocs per firing, want 0", mode, allocs)
		}
		// Counter bookkeeping must not cost allocations either, and every
		// firing must have been tallied against exactly one selector mode.
		if got := ks.Selects(); got < 200 {
			t.Errorf("mode %d: %d selects counted, want >= 200", mode, got)
		}
		if mode == selFenwick && ks.LinearSelects != 0 {
			t.Errorf("fenwick mode tallied %d linear selects", ks.LinearSelects)
		}
		if mode == selLinear && ks.FenwickSelects != 0 {
			t.Errorf("linear mode tallied %d fenwick selects", ks.FenwickSelects)
		}
	}
}

// TestDerivAllocs asserts that evaluating the compiled ODE right-hand side
// allocates nothing after the one-time Compile.
func TestDerivAllocs(t *testing.T) {
	n := chainNet(t, 40)
	f := Deriv(n, Rates{Fast: 50, Slow: 1})
	y := make([]float64, n.NumSpecies())
	rng := rand.New(rand.NewSource(1))
	for i := range y {
		y[i] = rng.Float64()
	}
	dydt := make([]float64, len(y))
	if allocs := testing.AllocsPerRun(200, func() { f(0, y, dydt) }); allocs != 0 {
		t.Errorf("%.1f allocs per Deriv evaluation, want 0", allocs)
	}
}
