package sim

import (
	"repro/internal/crn"
	"repro/internal/obs"
)

// AutoWatchers builds the default semantic watchers for a parsed network: a
// Schmitt-triggered edge watcher and a dominant-species phase watcher over
// every species, with thresholds at half (edge) and a quarter (phase,
// re-arm) of the largest initial concentration. For the paper's clock and
// transfer constructs — where a fixed heartbeat quantity circulates — this
// reports exactly the clock_edge / phase_change events of the DAC figures.
// Networks with no initial mass get no watchers (nil).
func AutoWatchers(net *crn.Network) []obs.Watcher {
	maxInit := 0.0
	for _, v := range net.Init() {
		if v > maxInit {
			maxInit = v
		}
	}
	if maxInit <= 0 {
		return nil
	}
	names := net.SpeciesNames()
	groups := make([]obs.PhaseGroup, len(names))
	for i, n := range names {
		groups[i] = obs.PhaseGroup{Name: n, Species: []string{n}}
	}
	watchers := []obs.Watcher{
		&obs.EdgeWatcher{High: maxInit / 2, Low: maxInit / 4},
	}
	if len(names) >= 2 {
		watchers = append(watchers, &obs.PhaseWatcher{Groups: groups, Eps: maxInit / 4})
	}
	return watchers
}
