package ensemble

// White-box tests of the SoA block: the zero-allocation budget of the
// per-lane inner loop (the finals-only sweep fast path must not touch the
// allocator once the block is laid out) and the block-construction checks.
// The scalar-vs-lane bit-identity contract is pinned one layer up, in
// internal/sim's TestEnsembleBitIdentical, where the scalar reference
// lives.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/crn"
	"repro/internal/sim/kernel"
)

// testRate binds Fast reactions to 50 and Slow to 1, like the sim-layer
// perf tests (the ensemble package itself is policy-free and never sees
// sim.Rates).
func testRate(rx crn.Reaction) float64 {
	if rx.Cat == crn.Fast {
		return 50 * rx.Mult
	}
	return rx.Mult
}

// chainNet mirrors the sim package's perf fixture: a mass-conserving
// reversible chain whose propensities never die out, so lanes can be
// advanced indefinitely inside an allocation probe.
func chainNet(tb testing.TB, m int) *crn.Network {
	tb.Helper()
	n := crn.NewNetwork()
	for i := 0; i < m; i++ {
		a, b := fmt.Sprintf("S%d", i), fmt.Sprintf("S%d", i+1)
		cls := crn.Slow
		if i%3 == 0 {
			cls = crn.Fast
		}
		n.R(fmt.Sprintf("f%d", i), map[string]int{a: 1}, map[string]int{b: 1}, cls)
		n.R(fmt.Sprintf("b%d", i), map[string]int{b: 1}, map[string]int{a: 1}, crn.Slow)
	}
	if err := n.SetInit("S0", 5); err != nil {
		tb.Fatal(err)
	}
	return n
}

func testConfig(tb testing.TB, n *crn.Network, lanes int, finalsOnly bool) Config {
	tb.Helper()
	seeds := make([]int64, lanes)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return Config{
		K:           kernel.Compile(n, testRate),
		Names:       n.SpeciesNames(),
		Init:        n.Init(),
		Unit:        1000,
		TEnd:        1e9, // far horizon: lanes never retire inside the probe
		SampleEvery: 1e9 / 1000,
		MaxFirings:  1 << 30,
		Seeds:       seeds,
		FinalsOnly:  finalsOnly,
	}
}

// TestEnsembleAdvanceAllocs pins the zero-allocation budget of the
// finals-only inner loop: once newBlock has laid the SoA state out,
// advancing lanes allocates nothing, in both selector modes.
func TestEnsembleAdvanceAllocs(t *testing.T) {
	for _, sel := range []int{SelFenwick, SelLinear} {
		cfg := testConfig(t, chainNet(t, 40), 4, true)
		cfg.Sel = sel
		b, err := newBlock(cfg)
		if err != nil {
			t.Fatal(err)
		}
		lane := 0
		allocs := testing.AllocsPerRun(200, func() {
			if !b.advance(lane, 8) {
				t.Fatal("lane retired mid-probe")
			}
			lane = (lane + 1) % b.width
		})
		if allocs != 0 {
			t.Errorf("sel %d: %.1f allocs per advance, want 0", sel, allocs)
		}
	}
}

// TestEnsembleRunCounters checks the pass/occupancy accounting on a block
// that runs to completion.
func TestEnsembleRunCounters(t *testing.T) {
	n := chainNet(t, 10)
	var stats kernel.Stats
	cfg := testConfig(t, n, 3, true)
	cfg.TEnd = 5
	cfg.SampleEvery = 0.5
	cfg.Unit = 50
	cfg.Stats = &stats
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range res.Errs {
		if e != nil {
			t.Fatalf("lane %d: %v", i, e)
		}
		if res.Firings[i] == 0 {
			t.Fatalf("lane %d fired nothing", i)
		}
		if res.Finals[i] == nil {
			t.Fatalf("lane %d has no finals", i)
		}
	}
	if res.Traces != nil {
		t.Fatal("finals-only run materialized traces")
	}
	if stats.EnsembleBlocks != 1 || stats.EnsemblePasses == 0 {
		t.Fatalf("counters: %+v", stats)
	}
	if stats.LaneSteps > stats.LaneSlots {
		t.Fatalf("lane steps %d exceed slots %d", stats.LaneSteps, stats.LaneSlots)
	}
	if occ := stats.Occupancy(); occ <= 0 || occ > 1 {
		t.Fatalf("occupancy %v out of (0, 1]", occ)
	}
}

// TestEnsembleConfigChecks covers newBlock's validation.
func TestEnsembleConfigChecks(t *testing.T) {
	n := chainNet(t, 4)
	good := testConfig(t, n, 2, true)
	bad := good
	bad.K = nil
	if _, err := Run(context.Background(), bad); err == nil {
		t.Fatal("nil kernel accepted")
	}
	bad = good
	bad.Seeds = nil
	if _, err := Run(context.Background(), bad); err == nil {
		t.Fatal("empty seed list accepted")
	}
	bad = good
	bad.Init = bad.Init[:1]
	if _, err := Run(context.Background(), bad); err == nil {
		t.Fatal("short init vector accepted")
	}
	bad = good
	bad.Unit = 0
	if _, err := Run(context.Background(), bad); err == nil {
		t.Fatal("zero unit accepted")
	}
}

// TestEnsembleCancellation checks that cancelling mid-block keeps retired
// lanes' results and marks still-active lanes with wrapped context errors.
func TestEnsembleCancellation(t *testing.T) {
	cfg := testConfig(t, chainNet(t, 10), 3, true)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, cfg)
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	for i, e := range res.Errs {
		if e == nil {
			t.Fatalf("lane %d missing interruption error", i)
		}
		if res.Finals[i] != nil {
			t.Fatalf("interrupted lane %d reported finals", i)
		}
	}
}
