// Package ensemble is the structure-of-arrays multi-run SSA engine: it
// advances a block of independent stochastic runs ("lanes") of the same
// network through the shared compiled kernel together, amortizing
// compilation, allocation and dependency-graph metadata across the block.
//
// State is laid out species × lanes (counts[sp*L+lane]) and reaction ×
// lanes (props[rx*L+lane]), so a block of 8 lanes packs each species row
// into one cache line: lanes of an ensemble trace similar trajectories
// through the network, and a round-robin macro-pass schedule keeps the rows
// the block is touching hot across all lanes of a pass. Each lane owns an
// independent SplitMix64 RNG stream seeded with its run seed, and the
// per-lane inner loop replays the scalar backend's arithmetic operation for
// operation — same draws, same propensity updates in the same order, same
// drift guards — so a lane's trajectory is bit-identical with a scalar
// sim.Run of the same seed (pinned by TestEnsembleBitIdentical). Lanes
// whose runs end early (exhausted networks, horizon reached after few
// events) retire independently without stalling the block; the pass loop
// compacts them away, and kernel.Stats lane-occupancy counters record how
// much of the block's width did useful work.
//
// The package is deliberately free of sim-layer policy: sim.RunMany decides
// which runs may share a block, compiles and binds the kernel, derives
// seeds, and routes non-laneable runs (ODE, tau-leap, observed or evented
// runs) through the scalar backends instead.
package ensemble

import (
	"context"
	"fmt"
	"math"

	"repro/internal/sim/kernel"
	"repro/internal/trace"
)

// Reaction-selection modes, mirroring the scalar backend: SelAuto picks the
// Fenwick index at FenwickMinReactions and the linear scan below it, and
// the forced modes exist for the equivalence tests.
const (
	SelAuto = iota
	SelFenwick
	SelLinear
)

// FenwickMinReactions is the auto-mode crossover size; it must equal the
// scalar backend's crossover so same-seed scalar and ensemble runs pick the
// same selector (bit-identity).
const FenwickMinReactions = 64

// passQuantum is how many firings a lane advances per macro pass. Large
// enough that pass scheduling is noise, small enough that lanes stay
// roughly synchronized in simulated time (shared species rows stay hot) and
// context cancellation is felt quickly.
const passQuantum = 2048

// driftGuardEvery mirrors the scalar backend's periodic exact propensity
// recompute cadence (in firings, per lane).
const driftGuardEvery = 65536

// Config describes one SoA block: a bound kernel shared by every lane, the
// common run parameters, and one seed per lane. All lanes share TEnd,
// SampleEvery, Unit and MaxFirings — runs that differ in any of these
// cannot share a block (sim.RunMany groups accordingly).
type Config struct {
	K           *kernel.Compiled
	Names       []string  // species display names (trace headers)
	Init        []float64 // initial concentrations, len NumSpecies
	Unit        float64   // molecules per concentration unit (Ω)
	TEnd        float64
	SampleEvery float64
	MaxFirings  int     // per-lane firing cap
	Seeds       []int64 // one RNG stream seed per lane; len = block width
	// FinalsOnly skips trajectory materialization: no per-lane traces are
	// allocated and no sample rows are emitted, only final states are
	// returned. The firing sequence is unchanged (sampling never touches
	// counts or the RNG), so finals match trace-mode runs exactly. This is
	// the sweep fast path: workloads that only read final concentrations
	// skip the dominant per-run trace and sampling cost.
	FinalsOnly bool
	Sel        int           // selection mode; SelAuto mirrors the scalar rule
	Stats      *kernel.Stats // hot-path counters; may be nil
}

// Result holds one block's outcomes, indexed by lane.
type Result struct {
	Traces  []*trace.Trace // nil in finals-only mode
	Finals  [][]float64    // final concentrations; nil for interrupted lanes
	Firings []int          // reaction firings executed per lane
	Errs    []error        // per-lane errors (context interruption)
}

// lane is the per-run slice of the block state that is not lane-strided:
// the RNG stream, simulated-time cursors and the selection index.
type lane struct {
	rng        kernel.RNG
	total      float64 // running propensity sum, drift-guarded
	t          float64
	nextSample float64
	fired      int
	nextGuard  int          // fired value of the next scheduled exact recompute
	fen        *kernel.Tree // nil in linear-scan mode
	tr         *trace.Trace // nil in finals-only mode
	err        error
	done       bool
}

// block is the executing SoA state.
type block struct {
	cfg     Config
	k       *kernel.Compiled
	kscaled []float64
	width   int       // number of lanes L
	counts  []float64 // species-major: counts[sp*L+lane]
	props   []float64 // reaction-major: props[rx*L+lane]
	lanes   []lane
	conc    []float64 // shared emission scratch, len NumSpecies
	stats   *kernel.Stats
}

// Run executes the block to completion (or cancellation) and returns the
// per-lane results. On context cancellation the already-retired lanes keep
// their results, the still-active lanes get wrapped ctx errors, and the
// ctx error is also returned.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	b, err := newBlock(cfg)
	if err != nil {
		return nil, err
	}
	if b.stats != nil {
		b.stats.EnsembleBlocks++
	}

	active := make([]int, b.width)
	for i := range active {
		active[i] = i
	}
	var ctxErr error
	for len(active) > 0 {
		if err := ctx.Err(); err != nil {
			for _, ln := range active {
				l := &b.lanes[ln]
				l.err = fmt.Errorf("ensemble: lane %d interrupted at t=%g of %g (%d firings): %w",
					ln, l.t, cfg.TEnd, l.fired, err)
			}
			ctxErr = err
			break
		}
		if b.stats != nil {
			b.stats.EnsemblePasses++
			b.stats.LaneSteps += uint64(len(active))
			b.stats.LaneSlots += uint64(b.width)
		}
		w := 0
		for _, ln := range active {
			if b.advance(ln, passQuantum) {
				active[w] = ln
				w++
			}
		}
		active = active[:w]
	}

	res := &Result{
		Finals:  make([][]float64, b.width),
		Firings: make([]int, b.width),
		Errs:    make([]error, b.width),
	}
	if !cfg.FinalsOnly {
		res.Traces = make([]*trace.Trace, b.width)
	}
	for i := range b.lanes {
		l := &b.lanes[i]
		res.Firings[i] = l.fired
		res.Errs[i] = l.err
		if l.err != nil {
			continue
		}
		f := make([]float64, b.k.NumSpecies)
		for sp := range f {
			f[sp] = b.counts[sp*b.width+i] / cfg.Unit
		}
		res.Finals[i] = f
		if !cfg.FinalsOnly {
			res.Traces[i] = l.tr
		}
	}
	return res, ctxErr
}

// newBlock lays out the SoA state and initializes every lane exactly as the
// scalar backend initializes a run: counts rounded from concentrations, one
// exact propensity recompute, the t=0 trace row.
func newBlock(cfg Config) (*block, error) {
	k := cfg.K
	if k == nil {
		return nil, fmt.Errorf("ensemble: nil kernel")
	}
	L := len(cfg.Seeds)
	if L == 0 {
		return nil, fmt.Errorf("ensemble: no lanes (empty seed list)")
	}
	if len(cfg.Init) != k.NumSpecies {
		return nil, fmt.Errorf("ensemble: init vector has %d species, kernel has %d", len(cfg.Init), k.NumSpecies)
	}
	if cfg.Unit <= 0 || cfg.TEnd <= 0 || cfg.SampleEvery <= 0 || cfg.MaxFirings <= 0 {
		return nil, fmt.Errorf("ensemble: Unit, TEnd, SampleEvery and MaxFirings must be positive")
	}
	b := &block{
		cfg:     cfg,
		k:       k,
		kscaled: k.StochRates(cfg.Unit),
		width:   L,
		counts:  make([]float64, k.NumSpecies*L),
		props:   make([]float64, k.NumReactions*L),
		lanes:   make([]lane, L),
		conc:    make([]float64, k.NumSpecies),
		stats:   cfg.Stats,
	}
	useFen := cfg.Sel == SelFenwick || (cfg.Sel == SelAuto && k.NumReactions >= FenwickMinReactions)
	for i := range b.lanes {
		l := &b.lanes[i]
		l.rng.Seed(cfg.Seeds[i])
		l.nextSample = cfg.SampleEvery
		l.nextGuard = driftGuardEvery - 1
		for sp, c := range cfg.Init {
			b.counts[sp*L+i] = math.Round(c * cfg.Unit)
		}
		if useFen {
			l.fen = kernel.NewTree(k.NumReactions)
		}
		b.recomputeLane(i)
		if !cfg.FinalsOnly {
			l.tr = trace.New(cfg.Names)
			l.tr.Grow(int(cfg.TEnd/cfg.SampleEvery) + 2)
			b.syncConc(i)
			if err := l.tr.Append(0, b.conc); err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

// recomputeLane refreshes every propensity of one lane from its counts and
// the exact total — the scalar backend's drift guard, applied per lane.
func (b *block) recomputeLane(ln int) {
	if b.stats != nil {
		b.stats.ExactRecomputes++
	}
	l := &b.lanes[ln]
	L := b.width
	total := 0.0
	for i := 0; i < b.k.NumReactions; i++ {
		p := b.k.PropensityStrided(i, b.kscaled, b.counts, L, ln)
		b.props[i*L+ln] = p
		total += p
	}
	l.total = total
	if l.fen != nil {
		l.fen.RebuildStrided(b.props, L, ln)
	}
}

// syncConc fills the shared scratch with one lane's concentration view.
func (b *block) syncConc(ln int) {
	L := b.width
	for sp := range b.conc {
		b.conc[sp] = b.counts[sp*L+ln] / b.cfg.Unit
	}
}

// advance runs one lane for up to quantum firings; it is the scalar tight
// loop verbatim (drift guard, waiting-time draw, sample emission, horizon
// check, fire) against lane-strided state, and allocates nothing
// (TestEnsembleAdvanceAllocs). Returns false once the lane retires.
//
// The per-firing state (clock, firing count, running total) lives in locals
// for the whole quantum and is stored back to the lane at every exit, so
// the loop body touches the lane struct only on the rare paths (drift
// guard, sampling, retirement); selection counters are batched per call.
// None of this reorders a float operation or an RNG draw — the firing
// sequence stays bit-identical to the scalar backend.
func (b *block) advance(ln int, quantum int) bool {
	l := &b.lanes[ln]
	k := b.k
	L := b.width
	kscaled, counts, props := b.kscaled, b.counts, b.props
	fen := l.fen
	rng := &l.rng
	tEnd := b.cfg.TEnd
	maxFirings := b.cfg.MaxFirings
	total := l.total
	t := l.t
	fired := l.fired
	start := fired

	for q := 0; q < quantum; q++ {
		if fired >= maxFirings {
			l.total, l.t, l.fired = total, t, fired
			b.tallySelects(l, fired-start)
			return b.finish(ln)
		}
		if fired == l.nextGuard {
			l.nextGuard += driftGuardEvery
			l.total = total
			b.recomputeLane(ln)
			total = l.total
		}
		dt := math.Inf(1)
		if total > 0 {
			dt = rng.ExpFloat64() / total
		}
		if l.tr != nil && l.nextSample <= tEnd && t+dt >= l.nextSample {
			l.t = t
			if err := b.emitSamples(ln, dt); err != nil {
				l.err = err
				l.total, l.t, l.fired = total, t, fired
				b.tallySelects(l, fired-start)
				return b.finish(ln)
			}
		}
		if t+dt >= tEnd || math.IsInf(dt, 1) {
			l.total, l.t, l.fired = total, t, fired
			b.tallySelects(l, fired-start)
			return b.finish(ln)
		}
		t += dt

		// Fire: inverse-CDF selection, the stoichiometry delta, and the
		// dependent-propensity refresh streaming the chosen reaction's
		// update program — the scalar engine's fire against lane-strided
		// arrays, arithmetic in the same order so floats agree bit for bit.
		u := rng.Float64() * total
		var chosen int
		if fen != nil {
			chosen = fen.Select(u)
		} else {
			chosen = b.selectLinear(ln, u)
		}
		k.ApplyDeltaStrided(chosen, counts, L, ln)
		for _, up := range k.Updates(chosen) {
			di := int(up.Dep)
			var newp float64
			switch up.Form {
			case kernel.FormConst:
				newp = kscaled[di]
			case kernel.FormUni:
				newp = kscaled[di] * counts[int(up.Op1)*L+ln]
			case kernel.FormBi:
				newp = kscaled[di] * counts[int(up.Op1)*L+ln] * counts[int(up.Op2)*L+ln]
			case kernel.FormDimer:
				nn := counts[int(up.Op1)*L+ln]
				newp = kscaled[di] * nn * (nn - 1)
			default:
				newp = k.PropensityStrided(di, kscaled, counts, L, ln)
			}
			at := di*L + ln
			old := props[at]
			if newp == old {
				continue
			}
			props[at] = newp
			d := newp - old
			total += d
			if fen != nil {
				// Delta-only update: props is the leaf source of truth and
				// the drift guard rebuilds the mirror, so the tree skips it.
				fen.AddDelta(di, d)
			}
		}
		if total < 0 {
			// Accumulated float drift went negative: resync exactly.
			l.total = total
			b.recomputeLane(ln)
			total = l.total
		}
		fired++
	}
	l.total, l.t, l.fired = total, t, fired
	b.tallySelects(l, fired-start)
	return true
}

// tallySelects batches the per-selection counters for n firings of one lane
// (every firing performs exactly one selection, so the totals match the
// scalar backend's per-firing increments exactly).
func (b *block) tallySelects(l *lane, n int) {
	if b.stats == nil || n <= 0 {
		return
	}
	if l.fen != nil {
		b.stats.FenwickSelects += uint64(n)
	} else {
		b.stats.LinearSelects += uint64(n)
	}
}

// emitSamples records every sample boundary the waiting interval [t, t+dt)
// crosses, like the scalar backend's emission loop (no observers or
// watchers: laned runs have none by construction).
func (b *block) emitSamples(ln int, dt float64) error {
	l := &b.lanes[ln]
	for l.nextSample <= b.cfg.TEnd && l.t+dt >= l.nextSample {
		b.syncConc(ln)
		if err := l.tr.Append(l.nextSample, b.conc); err != nil {
			return err
		}
		l.nextSample += b.cfg.SampleEvery
	}
	return nil
}

// finish retires a lane: the trailing horizon row (trace mode) and the
// done flag. Always returns false for use as advance's tail call.
func (b *block) finish(ln int) bool {
	l := &b.lanes[ln]
	l.done = true
	if l.tr != nil && l.err == nil && l.tr.End() < b.cfg.TEnd {
		b.syncConc(ln)
		if err := l.tr.Append(b.cfg.TEnd, b.conc); err != nil {
			l.err = err
		}
	}
	return false
}

// selectLinear is the reference selector over one lane's strided propensity
// column, matching the scalar backend's accumulation scan (including the
// right-edge clamp).
func (b *block) selectLinear(ln int, u float64) int {
	L := b.width
	acc := 0.0
	for i := 0; i < b.k.NumReactions; i++ {
		acc += b.props[i*L+ln]
		if u < acc {
			return i
		}
	}
	return b.k.NumReactions - 1
}
