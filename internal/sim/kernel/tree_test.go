package kernel

import (
	"math"
	"math/rand"
	"testing"
)

// refPrefix computes the exact prefix-sum selection the tree approximates.
func refSelect(vals []float64, u float64) int {
	acc := 0.0
	for i, v := range vals {
		acc += v
		if u < acc {
			return i
		}
	}
	return len(vals) - 1
}

func TestTreeSelectMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 7, 8, 9, 64, 100, 457} {
		tr := NewTree(n)
		vals := make([]float64, n)
		for i := range vals {
			if rng.Float64() < 0.6 { // most propensities are gated off
				vals[i] = 0
			} else {
				vals[i] = rng.Float64() * 10
			}
		}
		tr.Rebuild(vals)
		total := 0.0
		for _, v := range vals {
			total += v
		}
		if got := tr.Total(); math.Abs(got-total) > 1e-9*math.Max(1, total) {
			t.Fatalf("n=%d: Total = %g, want %g", n, got, total)
		}
		if total == 0 {
			// Degenerate: the simulator never selects from an exhausted
			// network (dt is infinite), so selection is unspecified.
			continue
		}
		for trial := 0; trial < 2000; trial++ {
			u := rng.Float64() * tr.Total()
			got, want := tr.Select(u), tr.SelectLinear(u)
			if got != want {
				t.Fatalf("n=%d u=%g: Select = %d, SelectLinear = %d (vals %v)", n, u, got, want, vals)
			}
			if vals[got] == 0 {
				t.Fatalf("n=%d u=%g: selected zero-propensity leaf %d", n, u, got)
			}
		}
	}
}

func TestTreeSetUpdates(t *testing.T) {
	const n = 37
	rng := rand.New(rand.NewSource(3))
	tr := NewTree(n)
	shadow := make([]float64, n)
	for step := 0; step < 5000; step++ {
		i := rng.Intn(n)
		v := 0.0
		if rng.Float64() < 0.7 {
			v = rng.Float64() * 5
		}
		tr.Set(i, v)
		shadow[i] = v
		if step%250 == 0 {
			total := 0.0
			for _, s := range shadow {
				total += s
			}
			if math.Abs(tr.Total()-total) > 1e-9*math.Max(1, total) {
				t.Fatalf("step %d: Total = %g, want %g", step, tr.Total(), total)
			}
			u := rng.Float64() * total
			if total > 0 && tr.Select(u) != refSelect(shadow, u) {
				t.Fatalf("step %d: Select(%g) = %d, want %d", step, u, tr.Select(u), refSelect(shadow, u))
			}
		}
	}
	// Rebuild must agree with incremental updates.
	before := tr.Total()
	tr.Rebuild(shadow)
	if math.Abs(tr.Total()-before) > 1e-9*math.Max(1, before) {
		t.Fatalf("Rebuild changed total: %g -> %g", before, tr.Total())
	}
}

func TestTreeEdgeCases(t *testing.T) {
	tr := NewTree(1)
	tr.Set(0, 2.5)
	if tr.Total() != 2.5 || tr.Select(1.0) != 0 {
		t.Fatalf("single-leaf tree broken: total %g select %d", tr.Total(), tr.Select(1.0))
	}
	// u at or past the total clamps to the last leaf, like the linear
	// selector's fallback.
	tr4 := NewTree(4)
	tr4.Rebuild([]float64{1, 0, 0, 1})
	if got := tr4.Select(2.0); got != 3 {
		t.Fatalf("Select(total) = %d, want clamp to 3", got)
	}
	if got := tr4.Select(0.5); got != 0 {
		t.Fatalf("Select(0.5) = %d, want 0", got)
	}
	if got := tr4.Select(1.5); got != 3 {
		t.Fatalf("Select(1.5) = %d, want 3 (skip zero leaves)", got)
	}
}

func BenchmarkTreeSelect(b *testing.B) {
	const n = 458
	rng := rand.New(rand.NewSource(1))
	tr := NewTree(n)
	vals := make([]float64, n)
	for i := range vals {
		if rng.Float64() < 0.4 {
			vals[i] = rng.Float64() * 10
		}
	}
	tr.Rebuild(vals)
	total := tr.Total()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Select(float64(i%997) / 997 * total)
	}
}

func BenchmarkTreeSelectLinear(b *testing.B) {
	const n = 458
	rng := rand.New(rand.NewSource(1))
	tr := NewTree(n)
	vals := make([]float64, n)
	for i := range vals {
		if rng.Float64() < 0.4 {
			vals[i] = rng.Float64() * 10
		}
	}
	tr.Rebuild(vals)
	total := tr.Total()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.SelectLinear(float64(i%997) / 997 * total)
	}
}
