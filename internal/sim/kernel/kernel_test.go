package kernel

import (
	"math"
	"testing"

	"repro/internal/crn"
)

// testRate maps Fast to 100, Slow to 1, times the multiplier — the same
// shape as sim.DefaultRates without importing sim (which imports kernel).
func testRate(r crn.Reaction) float64 {
	if r.Cat == crn.Fast {
		return 100 * r.Mult
	}
	return r.Mult
}

func buildNet(t testing.TB) *crn.Network {
	n := crn.NewNetwork()
	// A + B -> C (fast), 2C -> A (slow), 0 -> B (slow source), C -> 0 (sink).
	n.R("bind", map[string]int{"A": 1, "B": 1}, map[string]int{"C": 1}, crn.Fast)
	n.R("dimer", map[string]int{"C": 2}, map[string]int{"A": 1}, crn.Slow)
	n.R("src", nil, map[string]int{"B": 1}, crn.Slow)
	n.R("sink", map[string]int{"C": 1}, nil, crn.Slow)
	// Catalyst: D + A -> D + A + C, net delta only on C.
	n.R("cat", map[string]int{"D": 1, "A": 1}, map[string]int{"D": 1, "A": 1, "C": 1}, crn.Fast)
	return n
}

func TestCompileShapes(t *testing.T) {
	n := buildNet(t)
	c := Compile(n, testRate)
	if c.NumReactions != 5 || c.NumSpecies != n.NumSpecies() {
		t.Fatalf("compiled %d reactions / %d species", c.NumReactions, c.NumSpecies)
	}
	wantOrder := []int32{2, 2, 0, 1, 2}
	for i, w := range wantOrder {
		if c.Order[i] != w {
			t.Fatalf("reaction %d order = %d, want %d", i, c.Order[i], w)
		}
	}
	if c.K[0] != 100 || c.K[1] != 1 {
		t.Fatalf("rates = %v", c.K[:2])
	}
	// Catalyst net delta: only C, +1.
	spec, val := c.Deltas(4)
	if len(spec) != 1 || n.SpeciesName(int(spec[0])) != "C" || val[0] != 1 {
		t.Fatalf("catalyst deltas = %v %v", spec, val)
	}
	// Zero-order source has no reactant terms.
	rs, _ := c.Reactants(2)
	if len(rs) != 0 {
		t.Fatalf("source has reactant terms %v", rs)
	}
}

func TestCompileDependents(t *testing.T) {
	n := buildNet(t)
	c := Compile(n, testRate)
	// Reference dependency graph via the straightforward map construction.
	nrx := n.NumReactions()
	readers := map[int]map[int]bool{}
	for i := 0; i < nrx; i++ {
		for _, tm := range n.Reaction(i).Reactants {
			if readers[tm.Species] == nil {
				readers[tm.Species] = map[int]bool{}
			}
			readers[tm.Species][i] = true
		}
	}
	for i := 0; i < nrx; i++ {
		want := map[int]bool{}
		sv := n.StoichVector(i)
		for sp, d := range sv {
			if d == 0 {
				continue
			}
			for k := range readers[sp] {
				want[k] = true
			}
		}
		got := map[int]bool{}
		for _, k := range c.Dependents(i) {
			got[int(k)] = true
		}
		if len(got) != len(want) {
			t.Fatalf("reaction %d dependents = %v, want %v", i, got, want)
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("reaction %d missing dependent %d", i, k)
			}
		}
	}
}

func TestPropensityMatchesReference(t *testing.T) {
	n := buildNet(t)
	c := Compile(n, testRate)
	const omega = 50.0
	kscaled := c.StochRates(omega)
	counts := []float64{7, 3, 5, 2} // A B C D
	// Reference: k·Ω·Π falling(n,c)/Ω^c, the pre-kernel formula.
	for i := 0; i < c.NumReactions; i++ {
		a := c.K[i] * omega
		for _, tm := range n.Reaction(i).Reactants {
			nm := counts[tm.Species]
			for k := 0; k < tm.Coeff; k++ {
				a *= (nm - float64(k)) / omega
			}
		}
		got := c.Propensity(i, kscaled, counts)
		if math.Abs(got-a) > 1e-9*math.Max(1, a) {
			t.Fatalf("reaction %d propensity = %g, want %g", i, got, a)
		}
	}
	// Depleted bimolecular pair: falling(1,2) = 0.
	counts[2] = 1
	if got := c.Propensity(1, kscaled, counts); got != 0 {
		t.Fatalf("falling(1,2) propensity = %g, want 0", got)
	}
}

func TestDerivMatchesReference(t *testing.T) {
	n := buildNet(t)
	c := Compile(n, testRate)
	y := []float64{0.5, 0.25, 0.125, 1}
	dydt := make([]float64, len(y))
	c.Deriv(y, dydt)
	want := make([]float64, len(y))
	for i := 0; i < n.NumReactions(); i++ {
		rate := c.K[i]
		for _, tm := range n.Reaction(i).Reactants {
			rate *= math.Pow(y[tm.Species], float64(tm.Coeff))
		}
		for sp, d := range n.StoichVector(i) {
			want[sp] += rate * d
		}
	}
	for i := range want {
		if math.Abs(dydt[i]-want[i]) > 1e-9*math.Max(1, math.Abs(want[i])) {
			t.Fatalf("dydt[%d] = %g, want %g", i, dydt[i], want[i])
		}
	}
}

func TestPowInt(t *testing.T) {
	for n := 0; n <= 8; n++ {
		for _, x := range []float64{0, 0.5, 1, 2, 3.25} {
			got, want := PowInt(x, n), math.Pow(x, float64(n))
			if math.Abs(got-want) > 1e-9*math.Max(1, want) {
				t.Fatalf("PowInt(%g, %d) = %g, want %g", x, n, got, want)
			}
		}
	}
}

// BenchmarkPowInt / BenchmarkMathPow quantify the win of repeated
// multiplication over math.Pow for small integer stoichiometric
// coefficients — the satellite fix this PR makes on every rate-law path.
func BenchmarkPowInt(b *testing.B) {
	x, s := 1.7, 0.0
	for i := 0; i < b.N; i++ {
		s += PowInt(x, 3)
	}
	benchSink = s
}

func BenchmarkMathPow(b *testing.B) {
	x, s := 1.7, 0.0
	for i := 0; i < b.N; i++ {
		s += math.Pow(x, 3)
	}
	benchSink = s
}

var benchSink float64
