package kernel

// Tree is a Fenwick (binary indexed) sum tree over non-negative reaction
// propensities. It supports the three operations Gillespie's direct method
// needs per firing — point update, total, and inverse-CDF selection — in
// O(log R), O(1) and O(log R) respectively, replacing the O(R) linear
// accumulation scan that dominated per-firing cost on networks with
// hundreds of reactions.
//
// Updates accumulate float deltas into internal nodes, so a long run drifts
// from the exact partial sums; callers keep the existing periodic
// full-recompute as the drift guard and call Rebuild with fresh values.
type Tree struct {
	n    int       // number of leaves in use
	cap  int       // power-of-two capacity
	node []float64 // 1-indexed BIT array, len cap+1
	vals []float64 // current leaf values, len n
}

// NewTree returns a tree over n leaves, all zero.
func NewTree(n int) *Tree {
	c := 1
	for c < n {
		c <<= 1
	}
	if n == 0 {
		c = 1
	}
	return &Tree{n: n, cap: c, node: make([]float64, c+1), vals: make([]float64, n)}
}

// Len returns the number of leaves.
func (t *Tree) Len() int { return t.n }

// Get returns the current value of leaf i.
func (t *Tree) Get(i int) float64 { return t.vals[i] }

// Set assigns leaf i to v, updating O(log R) internal nodes. Setting a leaf
// to its current value is free — the common case when a dependent reaction's
// propensity is zero both before and after a firing (gated reactions outside
// their phase), which is what keeps the per-firing update cost proportional
// to the *changed* fan-out rather than the full dependency fan-out.
func (t *Tree) Set(i int, v float64) {
	d := v - t.vals[i]
	if d == 0 {
		return
	}
	t.vals[i] = v
	for j := i + 1; j <= t.cap; j += j & (-j) {
		t.node[j] += d
	}
}

// AddDelta folds a caller-computed delta into leaf i's O(log R) internal
// nodes without touching the leaf mirror. Callers that keep the leaf values
// themselves (the ensemble engine's lane-strided propensity matrix) already
// hold new-old in a register; going through Set would re-read the mirror
// only to recompute the same delta. The mirror goes stale until the next
// Rebuild/RebuildStrided, so AddDelta must not be mixed with Set/Get/
// SelectLinear between rebuilds.
func (t *Tree) AddDelta(i int, d float64) {
	for j := i + 1; j <= t.cap; j += j & (-j) {
		t.node[j] += d
	}
}

// Total returns the sum of all leaves in O(1): with a power-of-two
// capacity, the root node covers every leaf.
func (t *Tree) Total() float64 { return t.node[t.cap] }

// Select returns the smallest leaf index whose inclusive prefix sum exceeds
// u, i.e. the reaction picked by inverse-CDF sampling with u drawn uniform
// in [0, Total). Zero-propensity leaves can never be selected for u inside
// the valid range; floating-point edge cases at the extreme right clamp to
// the last leaf, matching the linear reference selector's fallback.
func (t *Tree) Select(u float64) int {
	// Descend from the half-range node: pos accumulates only bits larger
	// than the current one, so pos+bit never exceeds cap and needs no
	// bound check. u >= Total degenerates to the all-right path, which the
	// final clamp maps to the last leaf.
	pos := 0
	node := t.node
	for bit := t.cap >> 1; bit > 0; bit >>= 1 {
		next := pos + bit
		if node[next] <= u {
			u -= node[next]
			pos = next
		}
	}
	if pos >= t.n {
		pos = t.n - 1
	}
	return pos
}

// SelectLinear is the retained reference selector: the pre-index O(R)
// accumulation scan over the leaf values, kept verbatim so equivalence
// tests can pin the Fenwick descent against it (same-seed runs must agree)
// and so profiling can quantify the index's win.
func (t *Tree) SelectLinear(u float64) int {
	acc := 0.0
	for i, v := range t.vals {
		acc += v
		if u < acc {
			return i
		}
	}
	return t.n - 1
}

// Rebuild reloads every leaf from vals (len must equal Len) and recomputes
// all internal nodes exactly in O(R). The simulators call this from their
// periodic drift guard and after event injections rewrite the state.
func (t *Tree) Rebuild(vals []float64) {
	copy(t.vals, vals)
	t.rebuild()
}

// RebuildStrided is Rebuild over a lane-strided propensity matrix: leaf i
// is loaded from vals[i*stride+lane]. The ensemble engine stores its
// propensities reaction-major across lanes (SoA), so each lane's tree
// reloads through this view; the resulting tree state is identical to
// Rebuild over a contiguous copy.
func (t *Tree) RebuildStrided(vals []float64, stride, lane int) {
	for i := 0; i < t.n; i++ {
		t.vals[i] = vals[i*stride+lane]
	}
	t.rebuild()
}

// rebuild recomputes the internal nodes from t.vals with the bottom-up
// O(R) construction: seed each node with its leaf, then fold every node
// into its BIT parent.
func (t *Tree) rebuild() {
	for i := range t.node {
		t.node[i] = 0
	}
	for i, v := range t.vals {
		t.node[i+1] = v
	}
	for j := 1; j <= t.cap; j++ {
		if p := j + j&(-j); p <= t.cap {
			t.node[p] += t.node[j]
		}
	}
}
