// Package kernel holds the compiled, allocation-free evaluation substrate
// shared by all three simulation backends (ODE derivative, exact SSA,
// tau-leaping). A crn.Network is an object graph built for construction
// convenience; NewStructure flattens it once into CSR-style index arrays so
// the per-step inner loops touch only dense slices — no maps, no nested
// slice headers, no math.Pow — and every backend evaluates the *same*
// kernel, so rate laws cannot drift apart between methods.
//
// Compilation is split in two phases so multi-run workloads pay the
// expensive part once. NewStructure builds the rate-independent Structure
// (stoichiometry, rate-law forms, dependency graph, update program) — the
// O(species+terms) walk over the network. Bind attaches a concrete
// rate-constant vector to a Structure, which is all that distinguishes the
// points of a rate-ratio sweep; it is O(reactions) and shares every
// structural array, so a 100-point sweep walks the dependency graph once
// instead of 100 times.
//
// The package also provides the Fenwick-tree propensity index (see tree.go)
// that turns Gillespie reaction selection from an O(R) scan into an
// O(log R) descent, and the SplitMix64 RNG (see rng.go) whose per-lane
// streams make the ensemble engine's traces bit-identical with the scalar
// backends'.
package kernel

import (
	"sync"

	"repro/internal/crn"
)

// Structure is the rate-independent compiled view of a reaction network.
// All per-reaction variable-length data (reactant terms, net stoichiometry
// deltas, dependency edges, update records) is stored in CSR form: row i of
// array X spans X[XStart[i]:XStart[i+1]].
//
// A Structure is immutable after NewStructure and safe for concurrent use;
// any number of Compiled bindings may share one Structure.
type Structure struct {
	NumSpecies   int
	NumReactions int

	// Order is the total molecularity (sum of reactant coefficients).
	Order []int32

	// Reactant terms: species index and stoichiometric coefficient.
	ReactStart []int32
	ReactSpec  []int32
	ReactCoeff []int32

	// Form classifies each reaction's rate law so the propensity and rate
	// kernels evaluate the overwhelmingly common shapes (the paper's
	// constructs are ≤ bimolecular) with straight-line code — no inner
	// term loop, no coefficient switch. Op1/Op2 are the operand species of
	// the specialized forms (unused entries are -1).
	Form []int8
	Op1  []int32
	Op2  []int32

	// Net stoichiometry change per firing: species index and signed delta.
	DeltaStart []int32
	DeltaSpec  []int32
	DeltaVal   []float64

	// Dependency graph: DepList rows hold, for each reaction, the reactions
	// whose propensity may change after it fires (the readers of any
	// species it changes).
	DepStart []int32
	DepList  []int32

	// Upd is the flattened update program: one record per dependency edge,
	// aligned 1:1 with DepList (row i spans Upd[DepStart[i]:DepStart[i+1]]).
	// Each record packs everything the post-firing propensity refresh needs
	// — dependent index, rate-law form, operand species — into 16
	// contiguous bytes, so the SSA's dominant inner loop streams one dense
	// array instead of gathering from four parallel ones.
	Upd []UpdRecord

	// net backs Bind: rate assignment needs the original reaction records.
	net *crn.Network

	// jacOnce/jac back Jac: the sparse Jacobian assembler is
	// rate-independent, built on first use and shared by every binding.
	jacOnce sync.Once
	jac     *Jacobian
}

// UpdRecord is one step of a reaction's update program: after the owning
// reaction fires, the propensity of reaction Dep must be refreshed, and
// Form/Op1/Op2 are Dep's rate-law classification copied inline so the
// refresh needs no indexed loads from the Form/Op1/Op2 arrays.
type UpdRecord struct {
	Dep  int32
	Op1  int32
	Op2  int32
	Form int8
}

// Compiled is a Structure bound to a concrete rate-constant assignment.
// The Structure is embedded by pointer, so bindings of the same network
// share all structural arrays and a Compiled is as cheap to pass by value
// as two words. A Compiled is immutable after Bind and safe for concurrent
// use by any number of simulations.
type Compiled struct {
	*Structure
	// K is the concrete rate constant of each reaction.
	K []float64
}

// Rate-law forms. FormGeneral is the fallback for rational-gain stages and
// other higher-order constructs; everything the DAC 2011 designs emit is
// one of the specialized shapes.
const (
	FormConst   int8 = iota // no reactants (zero-order source)
	FormUni                 // A ->          a = k'·n(A)
	FormBi                  // A + B ->      a = k'·n(A)·n(B)
	FormDimer               // 2A ->         a = k'·n(A)·(n(A)-1)
	FormGeneral             // anything else
)

// Compile flattens the network under the given rate assignment: shorthand
// for NewStructure(n).Bind(rate), the single-run path. Sweeps and ensembles
// should compile the Structure once and Bind per rate point.
func Compile(n *crn.Network, rate func(crn.Reaction) float64) *Compiled {
	return NewStructure(n).Bind(rate)
}

// NewStructure builds the rate-independent compiled view of the network:
// reactant/delta CSR arrays, rate-law classification, the dependency graph
// and its update program. This is the expensive compilation phase; the
// result is shared by every Bind.
func NewStructure(n *crn.Network) *Structure {
	nsp := n.NumSpecies()
	nrx := n.NumReactions()
	s := &Structure{
		NumSpecies:   nsp,
		NumReactions: nrx,
		Order:        make([]int32, nrx),
		ReactStart:   make([]int32, nrx+1),
		DeltaStart:   make([]int32, nrx+1),
		DepStart:     make([]int32, nrx+1),
		Form:         make([]int8, nrx),
		Op1:          make([]int32, nrx),
		Op2:          make([]int32, nrx),
		net:          n,
	}

	// Pass 1: reactant terms and net deltas. The delta accumulator is a
	// dense per-species scratch plus a touched list, so compilation itself
	// is map-free and O(terms).
	acc := make([]float64, nsp)
	touched := make([]int32, 0, 8)
	for i := 0; i < nrx; i++ {
		r := n.Reaction(i)
		order := int32(0)
		for _, t := range r.Reactants {
			s.ReactSpec = append(s.ReactSpec, int32(t.Species))
			s.ReactCoeff = append(s.ReactCoeff, int32(t.Coeff))
			order += int32(t.Coeff)
			if acc[t.Species] == 0 {
				touched = append(touched, int32(t.Species))
			}
			acc[t.Species] -= float64(t.Coeff)
		}
		s.Order[i] = order
		s.ReactStart[i+1] = int32(len(s.ReactSpec))
		s.Form[i], s.Op1[i], s.Op2[i] = classify(r.Reactants)
		for _, t := range r.Products {
			if acc[t.Species] == 0 {
				touched = append(touched, int32(t.Species))
			}
			acc[t.Species] += float64(t.Coeff)
		}
		for _, sp := range touched {
			if d := acc[sp]; d != 0 {
				s.DeltaSpec = append(s.DeltaSpec, sp)
				s.DeltaVal = append(s.DeltaVal, d)
			}
			acc[sp] = 0
		}
		touched = touched[:0]
		s.DeltaStart[i+1] = int32(len(s.DeltaSpec))
	}

	// Pass 2: species -> reader reactions (CSR), then reaction -> affected
	// reactions, deduplicated with an epoch-stamped mark array instead of a
	// per-reaction map.
	readerCount := make([]int32, nsp+1)
	for _, sp := range s.ReactSpec {
		readerCount[sp+1]++
	}
	for sp := 0; sp < nsp; sp++ {
		readerCount[sp+1] += readerCount[sp]
	}
	readers := make([]int32, len(s.ReactSpec))
	fill := make([]int32, nsp)
	for i := 0; i < nrx; i++ {
		for j := s.ReactStart[i]; j < s.ReactStart[i+1]; j++ {
			sp := s.ReactSpec[j]
			readers[readerCount[sp]+fill[sp]] = int32(i)
			fill[sp]++
		}
	}

	mark := make([]int32, nrx)
	for i := range mark {
		mark[i] = -1
	}
	for i := 0; i < nrx; i++ {
		for j := s.DeltaStart[i]; j < s.DeltaStart[i+1]; j++ {
			sp := s.DeltaSpec[j]
			for r := readerCount[sp]; r < readerCount[sp+1]; r++ {
				k := readers[r]
				if mark[k] != int32(i) {
					mark[k] = int32(i)
					s.DepList = append(s.DepList, k)
				}
			}
		}
		s.DepStart[i+1] = int32(len(s.DepList))
	}

	// Pass 3: flatten the update program — DepList annotated with each
	// dependent's rate-law classification, one dense record per edge.
	s.Upd = make([]UpdRecord, len(s.DepList))
	for j, d := range s.DepList {
		s.Upd[j] = UpdRecord{Dep: d, Op1: s.Op1[d], Op2: s.Op2[d], Form: s.Form[d]}
	}
	return s
}

// Bind attaches a concrete rate assignment to the structure. rate maps a
// reaction to its rate constant (e.g. sim.Rates.Of); it is called once per
// reaction at bind time, never on the hot path. The returned Compiled
// shares all structural arrays with every other binding of this Structure.
func (s *Structure) Bind(rate func(crn.Reaction) float64) *Compiled {
	k := make([]float64, s.NumReactions)
	for i := range k {
		k[i] = rate(s.net.Reaction(i))
	}
	return &Compiled{Structure: s, K: k}
}

// Reactants returns the reactant term views (species, coefficients) of
// reaction i. The slices alias the compiled arrays; callers must not modify
// them.
func (s *Structure) Reactants(i int) (spec []int32, coeff []int32) {
	return s.ReactSpec[s.ReactStart[i]:s.ReactStart[i+1]],
		s.ReactCoeff[s.ReactStart[i]:s.ReactStart[i+1]]
}

// Deltas returns the net stoichiometry views (species, signed change) of
// reaction i. The slices alias the compiled arrays; callers must not modify
// them.
func (s *Structure) Deltas(i int) (spec []int32, val []float64) {
	return s.DeltaSpec[s.DeltaStart[i]:s.DeltaStart[i+1]],
		s.DeltaVal[s.DeltaStart[i]:s.DeltaStart[i+1]]
}

// Dependents returns the reactions whose propensity may change after
// reaction i fires. The slice aliases the compiled arrays; callers must not
// modify it.
func (s *Structure) Dependents(i int) []int32 {
	return s.DepList[s.DepStart[i]:s.DepStart[i+1]]
}

// Updates returns reaction i's update program: one record per dependency
// edge, aligned with Dependents(i). The slice aliases the compiled arrays;
// callers must not modify it.
func (s *Structure) Updates(i int) []UpdRecord {
	return s.Upd[s.DepStart[i]:s.DepStart[i+1]]
}

// StochRates returns the Ω-scaled stochastic rate constants
// k_i · Ω^(1-order_i), the constant prefactor of the propensity
//
//	a_i = k_i · Ω · Π falling(n_s, c_s) / Ω^c_s
//	    = k_i · Ω^(1-order_i) · Π falling(n_s, c_s).
//
// Folding the Ω powers in at compile time removes every division from the
// per-firing propensity evaluation.
func (c *Compiled) StochRates(omega float64) []float64 {
	out := make([]float64, c.NumReactions)
	for i := range out {
		scale := omega
		for o := int32(0); o < c.Order[i]; o++ {
			scale /= omega
		}
		out[i] = c.K[i] * scale
	}
	return out
}

// classify maps a reactant term list to its rate-law form and operands.
func classify(terms []crn.Term) (form int8, op1, op2 int32) {
	switch {
	case len(terms) == 0:
		return FormConst, -1, -1
	case len(terms) == 1 && terms[0].Coeff == 1:
		return FormUni, int32(terms[0].Species), -1
	case len(terms) == 1 && terms[0].Coeff == 2:
		return FormDimer, int32(terms[0].Species), -1
	case len(terms) == 2 && terms[0].Coeff == 1 && terms[1].Coeff == 1:
		return FormBi, int32(terms[0].Species), int32(terms[1].Species)
	default:
		return FormGeneral, -1, -1
	}
}

// Propensity evaluates the stochastic propensity of reaction i given
// molecule counts and the scaled rate table from StochRates. The
// specialized forms rely on counts being non-negative integers (the
// simulators clamp at zero), so no result clamp is needed; the general
// fallback expands falling factorials by repeated multiplication — no
// math.Pow, no division — and clamps defensively.
func (c *Compiled) Propensity(i int, kscaled, counts []float64) float64 {
	switch c.Form[i] {
	case FormConst:
		return kscaled[i]
	case FormUni:
		return kscaled[i] * counts[c.Op1[i]]
	case FormBi:
		return kscaled[i] * counts[c.Op1[i]] * counts[c.Op2[i]]
	case FormDimer:
		n := counts[c.Op1[i]]
		return kscaled[i] * n * (n - 1)
	}
	return c.PropensityStrided(i, kscaled, counts, 1, 0)
}

// PropensityStrided is Propensity over lane-strided counts: species sp of
// the lane lives at counts[sp*stride+lane]. The arithmetic is identical to
// Propensity's — same operations in the same order — which is what keeps
// ensemble lanes bit-identical with scalar runs. stride=1, lane=0 recovers
// the scalar layout.
func (c *Compiled) PropensityStrided(i int, kscaled, counts []float64, stride, lane int) float64 {
	switch c.Form[i] {
	case FormConst:
		return kscaled[i]
	case FormUni:
		return kscaled[i] * counts[int(c.Op1[i])*stride+lane]
	case FormBi:
		return kscaled[i] * counts[int(c.Op1[i])*stride+lane] * counts[int(c.Op2[i])*stride+lane]
	case FormDimer:
		n := counts[int(c.Op1[i])*stride+lane]
		return kscaled[i] * n * (n - 1)
	}
	a := kscaled[i]
	for j := c.ReactStart[i]; j < c.ReactStart[i+1]; j++ {
		n := counts[int(c.ReactSpec[j])*stride+lane]
		for k := int32(0); k < c.ReactCoeff[j]; k++ {
			a *= n - float64(k)
		}
	}
	if a < 0 {
		return 0
	}
	return a
}

// Rate evaluates the deterministic mass-action rate k · Π [S]^c of reaction
// i at concentrations y, clamping negative concentrations to zero (roundoff
// guards: RK stage evaluations may probe slightly negative states before
// the integrator's non-negative projection). Integer powers are expanded by
// repeated multiplication.
func (c *Compiled) Rate(i int, y []float64) float64 {
	switch c.Form[i] {
	case FormConst:
		return c.K[i]
	case FormUni:
		conc := y[c.Op1[i]]
		if conc < 0 {
			return 0
		}
		return c.K[i] * conc
	case FormBi:
		a, b := y[c.Op1[i]], y[c.Op2[i]]
		if a < 0 || b < 0 {
			return 0
		}
		return c.K[i] * a * b
	case FormDimer:
		conc := y[c.Op1[i]]
		if conc < 0 {
			return 0
		}
		return c.K[i] * conc * conc
	}
	rate := c.K[i]
	for j := c.ReactStart[i]; j < c.ReactStart[i+1]; j++ {
		conc := y[c.ReactSpec[j]]
		if conc < 0 {
			conc = 0
		}
		rate *= PowInt(conc, int(c.ReactCoeff[j]))
	}
	return rate
}

// Deriv accumulates the mass-action derivative into dydt (which is zeroed
// first). It is the shared RHS kernel of the ODE backend and allocates
// nothing. The rate-law switch is inlined here — with hoisted slice
// headers — because this is the inner loop of every deterministic
// experiment.
func (c *Compiled) Deriv(y, dydt []float64) {
	for i := range dydt {
		dydt[i] = 0
	}
	form, op1, op2, ks := c.Form, c.Op1, c.Op2, c.K
	dstart, dspec, dval := c.DeltaStart, c.DeltaSpec, c.DeltaVal
	for i := 0; i < c.NumReactions; i++ {
		var rate float64
		switch form[i] {
		case FormConst:
			rate = ks[i]
		case FormUni:
			conc := y[op1[i]]
			if conc < 0 {
				continue
			}
			rate = ks[i] * conc
		case FormBi:
			a, b := y[op1[i]], y[op2[i]]
			if a < 0 || b < 0 {
				continue
			}
			rate = ks[i] * a * b
		case FormDimer:
			conc := y[op1[i]]
			if conc < 0 {
				continue
			}
			rate = ks[i] * conc * conc
		default:
			rate = c.Rate(i, y)
		}
		if rate == 0 {
			continue
		}
		for j := dstart[i]; j < dstart[i+1]; j++ {
			dydt[dspec[j]] += rate * dval[j]
		}
	}
}

// ApplyDelta applies one firing of reaction i to the molecule-count vector,
// clamping counts at zero (which cannot trigger with correct propensities;
// it guards event-injected states).
func (s *Structure) ApplyDelta(i int, counts []float64) {
	for j := s.DeltaStart[i]; j < s.DeltaStart[i+1]; j++ {
		sp := s.DeltaSpec[j]
		counts[sp] += s.DeltaVal[j]
		if counts[sp] < 0 {
			counts[sp] = 0
		}
	}
}

// ApplyDeltaStrided is ApplyDelta over lane-strided counts (see
// PropensityStrided); same arithmetic, lane layout addressed as
// counts[sp*stride+lane].
func (s *Structure) ApplyDeltaStrided(i int, counts []float64, stride, lane int) {
	for j := s.DeltaStart[i]; j < s.DeltaStart[i+1]; j++ {
		at := int(s.DeltaSpec[j])*stride + lane
		counts[at] += s.DeltaVal[j]
		if counts[at] < 0 {
			counts[at] = 0
		}
	}
}

// PowInt returns x^n for n >= 0 by binary exponentiation. Stoichiometric
// coefficients are small integers, so this is both faster and exacter than
// math.Pow on the rate-law hot path.
func PowInt(x float64, n int) float64 {
	r := 1.0
	for n > 0 {
		if n&1 == 1 {
			r *= x
		}
		x *= x
		n >>= 1
	}
	return r
}
