package kernel

// This file assembles the analytic sparse Jacobian of the mass-action rate
// laws directly from the compiled CSR arrays. The Jacobian of the ODE
// right-hand side f_s(y) = Σ_i Δ_{s,i}·r_i(y) is
//
//	∂f_s/∂y_p = Σ_i Δ_{s,i} · ∂r_i/∂y_p,
//
// so its sparsity pattern is fixed by the structure alone: entry (s, p) is
// nonzero exactly when some reaction i both changes species s (a delta term)
// and reads species p (a reactant term). Like the rest of the kernel the
// assembly is split in two phases: NewJacobian compiles the rate-independent
// pattern and refill program once per Structure (cached — see Structure.Jac),
// and Fill streams concrete values into a caller-owned nonzero array with
// zero allocations (pinned by TestJacobianFillAllocs), one refill per
// integrator Jacobian refresh.
//
// Per-form partial derivatives, matching Compiled.Rate term for term:
//
//	const   r = k            ∂r/∂y = 0 (no program entry)
//	uni     r = k·a          ∂r/∂a = k
//	bi      r = k·a·b        ∂r/∂a = k·b, ∂r/∂b = k·a
//	dimer   r = k·a²         ∂r/∂a = 2k·a
//	general r = k·Π y_j^c_j  ∂r/∂y_p = k·c_p·y_p^(c_p−1)·Π_{j≠p} y_j^c_j
//
// The clamping of negative concentrations in Rate is deliberately not
// differentiated: the clamp region is a roundoff guard, and the stiff
// integrator is a W-method that tolerates an approximate Jacobian there.

// Partial-derivative kinds of the refill program (jacPartial.kind).
const (
	jacUni     int8 = iota // ∂(k·a)/∂a         = k
	jacBi                  // ∂(k·a·b)/∂a       = k·y[op]   (op = the other operand)
	jacDimer               // ∂(k·a²)/∂a        = 2k·y[op]  (op = a)
	jacGeneral             // general form, product rule over the reactant terms
)

// jacPartial is one ∂r_i/∂y_p evaluation of the refill program. The rate
// constant is looked up through the bound Compiled at fill time (rx), so one
// compiled program serves every rate binding of its Structure.
type jacPartial struct {
	rx   int32 // owning reaction, for the K lookup
	op   int32 // operand species whose value feeds the partial (-1 for jacUni)
	wrt  int32 // differentiation species (jacGeneral only; -1 otherwise)
	kind int8
}

// Jacobian is the compiled sparse ∂f/∂y assembler of one Structure: a CSC
// sparsity pattern (column p spans RowIdx[ColPtr[p]:ColPtr[p+1]], rows
// ascending) plus the flattened refill program. It is immutable after
// NewJacobian and safe for concurrent use; each concurrent consumer owns its
// nonzero value array (len NNZ()).
type Jacobian struct {
	n      int
	colPtr []int32
	rowIdx []int32

	// Refill program: partials[j] evaluates one ∂r/∂y_p; its scatter rows
	// scatter[scStart[j]:scStart[j+1]] add coeff·partial into nz[slot].
	partials []jacPartial
	scStart  []int32
	scSlot   []int32
	scCoeff  []float64
}

// Dim returns the Jacobian dimension (the species count).
func (j *Jacobian) Dim() int { return j.n }

// NNZ returns the number of structurally nonzero entries; Fill targets must
// have exactly this length.
func (j *Jacobian) NNZ() int { return len(j.rowIdx) }

// Pattern returns the CSC sparsity pattern: column p's row indices are
// RowIdx[ColPtr[p]:ColPtr[p+1]], ascending. The slices alias the compiled
// arrays; callers must not modify them.
func (j *Jacobian) Pattern() (colPtr, rowIdx []int32) { return j.colPtr, j.rowIdx }

// Jac returns the structure's compiled Jacobian assembler, building it on
// first use and sharing it afterwards (the pattern and program are
// rate-independent, so every Bind of this Structure uses the same one).
func (s *Structure) Jac() *Jacobian {
	s.jacOnce.Do(func() { s.jac = NewJacobian(s) })
	return s.jac
}

// NewJacobian compiles the Jacobian pattern and refill program of the
// structure. Prefer Structure.Jac, which caches the result.
func NewJacobian(s *Structure) *Jacobian {
	j := &Jacobian{n: s.NumSpecies}

	// Pass 1: emit the partial list — one entry per (reaction, distinct
	// differentiation species) — and record each partial's (row, col) targets
	// as flat coordinate triples (partial, row, col, coeff).
	type coord struct {
		row, col int32
		partial  int32
		coeff    float64
	}
	var coords []coord
	emit := func(p jacPartial, i int, col int32) {
		pi := int32(len(j.partials))
		j.partials = append(j.partials, p)
		for d := s.DeltaStart[i]; d < s.DeltaStart[i+1]; d++ {
			coords = append(coords, coord{
				row: s.DeltaSpec[d], col: col, partial: pi, coeff: s.DeltaVal[d],
			})
		}
	}
	for i := 0; i < s.NumReactions; i++ {
		if s.DeltaStart[i] == s.DeltaStart[i+1] {
			continue // pure catalysis: the reaction moves nothing
		}
		switch s.Form[i] {
		case FormConst:
			// no state dependence
		case FormUni:
			emit(jacPartial{rx: int32(i), op: -1, wrt: -1, kind: jacUni}, i, s.Op1[i])
		case FormBi:
			emit(jacPartial{rx: int32(i), op: s.Op2[i], wrt: -1, kind: jacBi}, i, s.Op1[i])
			emit(jacPartial{rx: int32(i), op: s.Op1[i], wrt: -1, kind: jacBi}, i, s.Op2[i])
		case FormDimer:
			emit(jacPartial{rx: int32(i), op: s.Op1[i], wrt: -1, kind: jacDimer}, i, s.Op1[i])
		default:
			for t := s.ReactStart[i]; t < s.ReactStart[i+1]; t++ {
				sp := s.ReactSpec[t]
				emit(jacPartial{rx: int32(i), op: -1, wrt: sp, kind: jacGeneral}, i, sp)
			}
		}
	}

	// Pass 2: build the CSC pattern from the distinct (row, col) pairs.
	// Columns hold a handful of rows each, so a linear dedupe scan per
	// coordinate beats maintaining mark arrays.
	colCount := make([]int32, j.n+1)
	byCol := make([][]int32, j.n) // distinct rows of each column
	for _, c := range coords {
		found := false
		for _, r := range byCol[c.col] {
			if r == c.row {
				found = true
				break
			}
		}
		if !found {
			byCol[c.col] = append(byCol[c.col], c.row)
		}
	}
	nnz := int32(0)
	for p := 0; p < j.n; p++ {
		insertionSortInt32(byCol[p])
		colCount[p] = nnz
		nnz += int32(len(byCol[p]))
	}
	colCount[j.n] = nnz
	j.colPtr = colCount
	j.rowIdx = make([]int32, nnz)
	for p := 0; p < j.n; p++ {
		copy(j.rowIdx[j.colPtr[p]:j.colPtr[p+1]], byCol[p])
	}

	// Pass 3: resolve each coordinate to its nz slot and flatten the scatter
	// program in partial order (CSR over partials).
	slotOf := func(row, col int32) int32 {
		lo, hi := j.colPtr[col], j.colPtr[col+1]
		for lo < hi {
			mid := (lo + hi) / 2
			if j.rowIdx[mid] < row {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	j.scStart = make([]int32, len(j.partials)+1)
	for _, c := range coords {
		j.scStart[c.partial+1]++
	}
	for p := 0; p < len(j.partials); p++ {
		j.scStart[p+1] += j.scStart[p]
	}
	j.scSlot = make([]int32, len(coords))
	j.scCoeff = make([]float64, len(coords))
	fill := make([]int32, len(j.partials))
	for _, c := range coords {
		at := j.scStart[c.partial] + fill[c.partial]
		j.scSlot[at] = slotOf(c.row, c.col)
		j.scCoeff[at] = c.coeff
		fill[c.partial]++
	}
	return j
}

// insertionSortInt32 sorts a short row-index slice in place (columns have a
// handful of entries; no need for sort.Slice's allocation).
func insertionSortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		k := i - 1
		for k >= 0 && a[k] > v {
			a[k+1] = a[k]
			k--
		}
		a[k+1] = v
	}
}

// Fill evaluates the Jacobian at state y under the binding c and stores the
// structurally nonzero values into nz (len NNZ(), pattern order). It
// allocates nothing — the integrator calls it on every Jacobian refresh.
// c must be a binding of the same Structure this Jacobian was compiled from.
func (j *Jacobian) Fill(c *Compiled, y, nz []float64) {
	for i := range nz {
		nz[i] = 0
	}
	ks := c.K
	for p := range j.partials {
		pp := &j.partials[p]
		var v float64
		switch pp.kind {
		case jacUni:
			v = ks[pp.rx]
		case jacBi:
			v = ks[pp.rx] * y[pp.op]
		case jacDimer:
			v = 2 * ks[pp.rx] * y[pp.op]
		default:
			v = c.dRateGeneral(int(pp.rx), int(pp.wrt), y)
		}
		if v == 0 {
			continue
		}
		for e := j.scStart[p]; e < j.scStart[p+1]; e++ {
			nz[j.scSlot[e]] += j.scCoeff[e] * v
		}
	}
}

// dRateGeneral is the product-rule fallback for general-form reactions:
// ∂(k·Π y_j^c_j)/∂y_wrt = k · c_wrt · y_wrt^(c_wrt−1) · Π_{j≠wrt} y_j^c_j.
// Integer powers expand by repeated multiplication — no math.Pow.
func (c *Compiled) dRateGeneral(i, wrt int, y []float64) float64 {
	d := c.K[i]
	for t := c.ReactStart[i]; t < c.ReactStart[i+1]; t++ {
		sp := int(c.ReactSpec[t])
		coeff := int(c.ReactCoeff[t])
		if sp == wrt {
			d *= float64(coeff) * PowInt(y[sp], coeff-1)
		} else {
			d *= PowInt(y[sp], coeff)
		}
	}
	return d
}

// Dense scatters a filled nonzero array into the dense row-major n×n matrix
// m (len n·n, zeroed first). For tests and small-system cross-checks; the
// integrator consumes the sparse form directly.
func (j *Jacobian) Dense(nz, m []float64) {
	for i := range m {
		m[i] = 0
	}
	for p := 0; p < j.n; p++ {
		for e := j.colPtr[p]; e < j.colPtr[p+1]; e++ {
			m[int(j.rowIdx[e])*j.n+p] = nz[e]
		}
	}
}
