package kernel

import "math"

// RNG is the simulator's random stream: a SplitMix64 generator with the
// derived draws the stochastic backends need (uniforms, exponential waiting
// times, normals for the tau-leap Poisson approximation).
//
// It replaces math/rand on the hot paths for two reasons. First, state is a
// single uint64 and a step is three xor-shift-multiply lines, so an ensemble
// block can hold one independent stream per lane by value — no pointer
// chasing, no heap allocation, trivially copyable. Second, and decisively
// for the ensemble engine: the scalar backends and the lane engine draw from
// byte-identical streams, which is what makes same-seed scalar-vs-ensemble
// traces bit-identical (pinned by TestEnsembleBitIdentical). math/rand's
// generator state could not be embedded per lane without an allocation and
// an interface call per draw.
//
// The zero value is a valid stream (the seed-0 stream); NewRNG(s) and
// RNG{}.Seed(s) are equivalent.
type RNG struct {
	s uint64

	// Cached second variate of the last Box–Muller pair (NormFloat64).
	norm    float64
	hasNorm bool
}

// NewRNG returns the stream for the given seed. Distinct seeds — including
// adjacent ones — give statistically independent streams: SplitMix64's
// output function is a bijective avalanche over the counter, which is
// exactly why batch.DeriveSeed uses the same finalizer.
func NewRNG(seed int64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the stream to the given seed, discarding any cached normal.
func (r *RNG) Seed(seed int64) {
	r.s = uint64(seed)
	r.norm, r.hasNorm = 0, false
}

// Uint64 advances the stream: the SplitMix64 step (Steele, Lea & Flood),
// a Weyl-sequence increment followed by a 64-bit finalizer.
func (r *RNG) Uint64() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0, 1) with 53 random bits.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an Exp(1) draw by exact inversion, -ln(1-U). Inversion
// costs one log where a ziggurat costs a table lookup, but it consumes
// exactly one uniform per draw unconditionally — a fixed consumption
// schedule is what lets the ensemble engine's per-lane streams replay the
// scalar backend's draws bit for bit.
func (r *RNG) ExpFloat64() float64 {
	return -math.Log(1 - r.Float64())
}

// NormFloat64 returns a standard normal draw (Box–Muller, pair-cached).
// Only the tau-leap large-mean Poisson approximation uses normals, so the
// transcendental cost is off the SSA hot path.
func (r *RNG) NormFloat64() float64 {
	if r.hasNorm {
		r.hasNorm = false
		return r.norm
	}
	u1 := 1 - r.Float64() // (0, 1]: keeps the log finite
	u2 := r.Float64()
	rad := math.Sqrt(-2 * math.Log(u1))
	r.norm = rad * math.Sin(2*math.Pi*u2)
	r.hasNorm = true
	return rad * math.Cos(2*math.Pi*u2)
}
