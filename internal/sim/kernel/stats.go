package kernel

// Stats counts kernel hot-path decisions during one simulation run: which
// selector the SSA used and how often, how many exact propensity recomputes
// the drift guard and event injections forced, which SSA loop variant ran,
// and how many tau-leap steps were rejected and retried. The fields are
// plain uint64s incremented by a single owner goroutine — a field increment
// is the entire hot-path cost, so counting stays 0-alloc and branch-free
// (asserted by TestSSAFiringAllocs).
//
// A run's Stats are deterministic for a given seed: both SSA selectors
// share every piece of floating-point bookkeeping, so a Fenwick run and a
// linear run of the same seed perform the same number of selections and
// recomputes (pinned by TestKernelStatsSelectorInvariant).
type Stats struct {
	FenwickSelects  uint64 // SSA firings selected via the O(log R) Fenwick descent
	LinearSelects   uint64 // SSA firings selected via the O(R) accumulation scan
	ExactRecomputes uint64 // full propensity rebuilds (drift guard, events, resyncs)
	TightLoops      uint64 // SSA runs that entered the branch-free tight loop
	FullLoops       uint64 // SSA runs that entered the event/observer-aware full loop
	LeapRejections  uint64 // tau-leap steps rolled back for driving counts negative
}

// IsZero reports whether no counter has fired (e.g. an ODE run).
func (s Stats) IsZero() bool { return s == Stats{} }

// Add accumulates o into s, for aggregating per-run stats across a sweep.
func (s *Stats) Add(o Stats) {
	s.FenwickSelects += o.FenwickSelects
	s.LinearSelects += o.LinearSelects
	s.ExactRecomputes += o.ExactRecomputes
	s.TightLoops += o.TightLoops
	s.FullLoops += o.FullLoops
	s.LeapRejections += o.LeapRejections
}

// Selects returns the total number of reaction selections, i.e. SSA
// firings, regardless of selector.
func (s Stats) Selects() uint64 { return s.FenwickSelects + s.LinearSelects }
