package kernel

// Stats counts kernel hot-path decisions during one simulation run: which
// selector the SSA used and how often, how many exact propensity recomputes
// the drift guard and event injections forced, which SSA loop variant ran,
// and how many tau-leap steps were rejected and retried. The fields are
// plain uint64s incremented by a single owner goroutine — a field increment
// is the entire hot-path cost, so counting stays 0-alloc and branch-free
// (asserted by TestSSAFiringAllocs).
//
// A run's Stats are deterministic for a given seed: both SSA selectors
// share every piece of floating-point bookkeeping, so a Fenwick run and a
// linear run of the same seed perform the same number of selections and
// recomputes (pinned by TestKernelStatsSelectorInvariant).
type Stats struct {
	FenwickSelects  uint64 // SSA firings selected via the O(log R) Fenwick descent
	LinearSelects   uint64 // SSA firings selected via the O(R) accumulation scan
	ExactRecomputes uint64 // full propensity rebuilds (drift guard, events, resyncs)
	TightLoops      uint64 // SSA runs that entered the branch-free tight loop
	FullLoops       uint64 // SSA runs that entered the event/observer-aware full loop
	LeapRejections  uint64 // tau-leap steps rolled back for driving counts negative

	// Ensemble lane-occupancy counters, incremented by the SoA lane engine
	// (internal/sim/ensemble). A block runs its lanes in round-robin macro
	// passes; lanes retire independently as they reach their horizon, so
	// late passes run below full width. LaneSteps/LaneSlots is the mean
	// occupancy — how much of the block's width did useful work.
	EnsembleBlocks uint64 // SoA blocks executed
	EnsemblePasses uint64 // macro passes over a block's lanes
	LaneSteps      uint64 // lane advances executed (active lanes summed over passes)
	LaneSlots      uint64 // lane slots available (block width summed over passes)
}

// IsZero reports whether no counter has fired (e.g. an ODE run).
func (s Stats) IsZero() bool { return s == Stats{} }

// Add accumulates o into s, for aggregating per-run stats across a sweep.
func (s *Stats) Add(o Stats) {
	s.FenwickSelects += o.FenwickSelects
	s.LinearSelects += o.LinearSelects
	s.ExactRecomputes += o.ExactRecomputes
	s.TightLoops += o.TightLoops
	s.FullLoops += o.FullLoops
	s.LeapRejections += o.LeapRejections
	s.EnsembleBlocks += o.EnsembleBlocks
	s.EnsemblePasses += o.EnsemblePasses
	s.LaneSteps += o.LaneSteps
	s.LaneSlots += o.LaneSlots
}

// Occupancy returns the mean fraction of ensemble lane slots that did
// useful work (0 when no ensemble block ran). 1.0 means every lane of
// every pass was still live; ragged retirement pulls it below 1.
func (s Stats) Occupancy() float64 {
	if s.LaneSlots == 0 {
		return 0
	}
	return float64(s.LaneSteps) / float64(s.LaneSlots)
}

// Selects returns the total number of reaction selections, i.e. SSA
// firings, regardless of selector.
func (s Stats) Selects() uint64 { return s.FenwickSelects + s.LinearSelects }
