package kernel

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/crn"
)

// randomNet builds a random mass-action network exercising every rate-law
// form: zero-order sources (const), unimolecular, hetero-bimolecular,
// dimerization, and general (order ≥ 3 or coefficient > 2) reactions.
func randomNet(t testing.TB, rng *rand.Rand, nSpecies, nReactions int) *crn.Network {
	t.Helper()
	n := crn.NewNetwork()
	names := make([]string, nSpecies)
	for i := range names {
		names[i] = fmt.Sprintf("S%d", i)
	}
	pick := func() string { return names[rng.Intn(len(names))] }
	products := func() map[string]int {
		p := map[string]int{}
		for k := 0; k < 1+rng.Intn(2); k++ {
			p[pick()] += 1 + rng.Intn(2)
		}
		return p
	}
	for i := 0; i < nReactions; i++ {
		cat := crn.Slow
		if rng.Intn(2) == 0 {
			cat = crn.Fast
		}
		name := fmt.Sprintf("r%d", i)
		var reactants map[string]int
		switch i % 5 {
		case 0: // const: zero-order source
			reactants = nil
		case 1: // uni
			reactants = map[string]int{pick(): 1}
		case 2: // bi: two distinct species
			a := rng.Intn(len(names))
			b := (a + 1 + rng.Intn(len(names)-1)) % len(names)
			reactants = map[string]int{names[a]: 1, names[b]: 1}
		case 3: // dimer
			reactants = map[string]int{pick(): 2}
		default: // general: trimolecular or a cubic term
			a := rng.Intn(len(names))
			b := (a + 1 + rng.Intn(len(names)-1)) % len(names)
			if rng.Intn(2) == 0 {
				reactants = map[string]int{names[a]: 2, names[b]: 1}
			} else {
				reactants = map[string]int{names[a]: 3}
			}
		}
		mult := 0.5 + rng.Float64()*2
		if err := n.AddReaction(name, reactants, products(), cat, mult); err != nil {
			t.Fatalf("AddReaction %s: %v", name, err)
		}
	}
	return n
}

// TestJacobianMatchesFiniteDifference is the property test of the analytic
// Jacobian: on randomized networks covering all five rate-law forms and
// strictly positive random states, every dense entry must match a central
// finite difference of Deriv to mixed relative/absolute tolerance, and every
// entry outside the compiled sparsity pattern must be exactly zero.
func TestJacobianMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		nSpecies := 3 + rng.Intn(6)
		nReactions := 5 + rng.Intn(10)
		net := randomNet(t, rng, nSpecies, nReactions)
		c := Compile(net, testRate)
		jac := c.Jac()
		ns := c.NumSpecies

		y := make([]float64, ns)
		for i := range y {
			y[i] = 0.1 + rng.Float64()*3 // strictly positive: away from the clamp
		}

		nz := make([]float64, jac.NNZ())
		jac.Fill(c, y, nz)
		dense := make([]float64, ns*ns)
		jac.Dense(nz, dense)

		// Central differences, one column per species.
		fp := make([]float64, ns)
		fm := make([]float64, ns)
		yh := make([]float64, ns)
		for p := 0; p < ns; p++ {
			h := 1e-6 * math.Max(1, math.Abs(y[p]))
			copy(yh, y)
			yh[p] = y[p] + h
			c.Deriv(yh, fp)
			yh[p] = y[p] - h
			c.Deriv(yh, fm)
			for s := 0; s < ns; s++ {
				want := (fp[s] - fm[s]) / (2 * h)
				got := dense[s*ns+p]
				if diff := math.Abs(got - want); diff > 1e-5+1e-5*math.Abs(want) {
					t.Fatalf("trial %d: d f[%d]/d y[%d] = %g, central diff %g (|Δ|=%g)",
						trial, s, p, got, want, diff)
				}
			}
		}

		// Structural zeros really are zero: pattern covers every nonzero.
		inPat := make(map[int]bool, jac.NNZ())
		colPtr, rowIdx := jac.Pattern()
		for p := 0; p < ns; p++ {
			for e := colPtr[p]; e < colPtr[p+1]; e++ {
				inPat[int(rowIdx[e])*ns+p] = true
			}
		}
		for idx, v := range dense {
			if v != 0 && !inPat[idx] {
				t.Fatalf("trial %d: dense[%d] = %g outside the sparsity pattern", trial, idx, v)
			}
		}
	}
}

// TestJacobianPatternWellFormed checks CSC invariants: monotone column
// pointers and strictly ascending row indices within each column.
func TestJacobianPatternWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := randomNet(t, rng, 6, 12)
	c := Compile(net, testRate)
	jac := c.Jac()
	colPtr, rowIdx := jac.Pattern()
	if len(colPtr) != jac.Dim()+1 || int(colPtr[jac.Dim()]) != jac.NNZ() {
		t.Fatalf("colPtr shape: len %d, last %d, nnz %d", len(colPtr), colPtr[jac.Dim()], jac.NNZ())
	}
	for p := 0; p < jac.Dim(); p++ {
		if colPtr[p] > colPtr[p+1] {
			t.Fatalf("colPtr not monotone at %d", p)
		}
		for e := colPtr[p] + 1; e < colPtr[p+1]; e++ {
			if rowIdx[e-1] >= rowIdx[e] {
				t.Fatalf("column %d rows not strictly ascending: %v", p, rowIdx[colPtr[p]:colPtr[p+1]])
			}
		}
	}
}

// TestJacobianSharedAcrossBindings pins the caching contract: Jac is built
// once per Structure and every binding sees the same assembler.
func TestJacobianSharedAcrossBindings(t *testing.T) {
	s := NewStructure(buildNet(t))
	c1 := s.Bind(testRate)
	c2 := s.Bind(func(r crn.Reaction) float64 { return 2 * testRate(r) })
	if c1.Jac() != c2.Jac() {
		t.Fatal("bindings of one Structure returned different Jacobian assemblers")
	}
	// Different K must produce different values through the shared program.
	y := []float64{1, 2, 3, 4}[:s.NumSpecies]
	nz1 := make([]float64, c1.Jac().NNZ())
	nz2 := make([]float64, c1.Jac().NNZ())
	c1.Jac().Fill(c1, y, nz1)
	c1.Jac().Fill(c2, y, nz2)
	for i := range nz1 {
		if math.Abs(nz2[i]-2*nz1[i]) > 1e-12*math.Abs(nz1[i]) {
			t.Fatalf("nz[%d]: doubled rates gave %g, want %g", i, nz2[i], 2*nz1[i])
		}
	}
}

// TestJacobianFillAllocs pins the hot-path contract: refilling the Jacobian
// allocates nothing.
func TestJacobianFillAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	net := randomNet(t, rng, 8, 15)
	c := Compile(net, testRate)
	jac := c.Jac()
	y := make([]float64, c.NumSpecies)
	for i := range y {
		y[i] = 1 + float64(i)
	}
	nz := make([]float64, jac.NNZ())
	if n := testing.AllocsPerRun(200, func() { jac.Fill(c, y, nz) }); n != 0 {
		t.Fatalf("Jacobian.Fill allocates %v per run, want 0", n)
	}
}
