package sim

import (
	"context"
	"math"
	"testing"

	"repro/internal/crn"
	"repro/internal/sim/kernel"
)

func TestTauLeapDecayMean(t *testing.T) {
	n := crn.NewNetwork()
	n.R("decay", map[string]int{"A": 1}, map[string]int{"B": 1}, crn.Slow)
	if err := n.SetInit("A", 1); err != nil {
		t.Fatal(err)
	}
	tr, err := Run(context.Background(), n, Config{Method: TauLeap, Rates: Rates{Fast: 100, Slow: 1}, TEnd: 2, Unit: 50000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-2)
	if got := tr.Final("A"); math.Abs(got-want) > 0.02 {
		t.Fatalf("tau-leap A(2) = %g, want ~%g", got, want)
	}
}

func TestTauLeapConservesCounts(t *testing.T) {
	n := crn.NewNetwork()
	n.R("fwd", map[string]int{"A": 1}, map[string]int{"B": 1}, crn.Fast)
	n.R("rev", map[string]int{"B": 1}, map[string]int{"A": 1}, crn.Slow)
	if err := n.SetInit("A", 2); err != nil {
		t.Fatal(err)
	}
	tr, err := Run(context.Background(), n, Config{Method: TauLeap, TEnd: 1, Unit: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for k := range tr.T {
		if math.Abs(tr.Rows[k][0]+tr.Rows[k][1]-2) > 1e-9 {
			t.Fatalf("mass not conserved at sample %d", k)
		}
	}
}

func TestTauLeapNeverNegative(t *testing.T) {
	// Annihilation drives species hard towards zero; the retry logic must
	// keep counts non-negative throughout.
	n := crn.NewNetwork()
	n.R("annihilate", map[string]int{"A": 1, "B": 1}, nil, crn.Fast)
	if err := n.SetInit("A", 1); err != nil {
		t.Fatal(err)
	}
	if err := n.SetInit("B", 0.995); err != nil {
		t.Fatal(err)
	}
	tr, err := Run(context.Background(), n, Config{Method: TauLeap, TEnd: 5, Unit: 200, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for k := range tr.T {
		for i := range tr.Rows[k] {
			if tr.Rows[k][i] < 0 {
				t.Fatalf("negative concentration at sample %d", k)
			}
		}
	}
	// One unpaired molecule of A must survive.
	if got := tr.Final("A"); math.Abs(got-0.005) > 1e-9 {
		t.Fatalf("A residue = %g, want 0.005", got)
	}
}

func TestTauLeapMatchesSSADistributionally(t *testing.T) {
	// Compare the mean of several short runs against the exact SSA: the
	// two stochastic methods should agree on a bimolecular equilibrium.
	n := crn.NewNetwork()
	n.R("bind", map[string]int{"A": 2}, map[string]int{"D": 1}, crn.Slow)
	n.R("unbind", map[string]int{"D": 1}, map[string]int{"A": 2}, crn.Slow)
	if err := n.SetInit("A", 2); err != nil {
		t.Fatal(err)
	}
	mean := func(run func(seed int64) float64) float64 {
		s := 0.0
		for seed := int64(1); seed <= 5; seed++ {
			s += run(seed)
		}
		return s / 5
	}
	ssa := mean(func(seed int64) float64 {
		tr, err := Run(context.Background(), n, Config{Method: SSA, TEnd: 3, Unit: 500, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return tr.Final("D")
	})
	leap := mean(func(seed int64) float64 {
		tr, err := Run(context.Background(), n, Config{Method: TauLeap, TEnd: 3, Unit: 500, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return tr.Final("D")
	})
	if math.Abs(ssa-leap) > 0.1*math.Max(ssa, leap) {
		t.Fatalf("SSA mean %g vs tau-leap mean %g", ssa, leap)
	}
}

func TestTauLeapConfigErrors(t *testing.T) {
	n := crn.NewNetwork()
	n.R("d", map[string]int{"A": 1}, nil, crn.Slow)
	if _, err := Run(context.Background(), n, Config{Method: TauLeap, TEnd: 1}); err == nil {
		t.Fatal("Unit=0 accepted")
	}
	if _, err := Run(context.Background(), n, Config{Method: TauLeap, Unit: 10}); err == nil {
		t.Fatal("TEnd=0 accepted")
	}
	if _, err := Run(context.Background(), n, Config{Method: TauLeap, TEnd: 1, Unit: 10, Rates: Rates{Fast: 1, Slow: 5}}); err == nil {
		t.Fatal("inverted rates accepted")
	}
}

func TestPoissonMoments(t *testing.T) {
	rng := kernel.NewRNG(42)
	for _, mean := range []float64{0.5, 5, 80} {
		n := 20000
		sum, sum2 := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := poisson(rng, mean)
			sum += v
			sum2 += v * v
		}
		m := sum / float64(n)
		variance := sum2/float64(n) - m*m
		if math.Abs(m-mean) > 0.05*mean+0.05 {
			t.Fatalf("poisson(%g) mean = %g", mean, m)
		}
		if math.Abs(variance-mean) > 0.15*mean+0.1 {
			t.Fatalf("poisson(%g) variance = %g", mean, variance)
		}
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Fatal("poisson of non-positive mean must be 0")
	}
}
