package sim

import (
	"fmt"
	"strings"
)

// Solver selects the ODE integration strategy of a Method == ODE run. The
// zero value is SolverAuto: start with the explicit Dormand–Prince 5(4)
// method and hand off to the stiff Rosenbrock-W integrator if the error
// controller shows the stiffness signature — which is exactly the regime the
// paper's fast ≫ slow rate dichotomy produces. Runs that never trip the
// detector integrate identically to SolverExplicit.
type Solver uint8

const (
	// SolverAuto starts explicit and switches to the stiff integrator on
	// detected stiffness (repeated error-control rejections at h ≪ span, or
	// explicit step-size underflow).
	SolverAuto Solver = iota
	// SolverExplicit forces adaptive Dormand–Prince 5(4) — the pre-solver
	// behaviour — and fails with ode.ErrMinStep where the problem is too
	// stiff for it.
	SolverExplicit
	// SolverStiff forces the Rosenbrock-W (ode23s) integrator with the
	// analytic sparse Jacobian from the compiled kernel.
	SolverStiff
)

var solverNames = [...]string{SolverAuto: "auto", SolverExplicit: "explicit", SolverStiff: "stiff"}

// String returns the canonical lower-case name ("auto", "explicit", "stiff").
func (s Solver) String() string {
	if int(s) < len(solverNames) {
		return solverNames[s]
	}
	return fmt.Sprintf("solver(%d)", uint8(s))
}

// Solvers returns every valid solver in declaration order.
func Solvers() []Solver { return []Solver{SolverAuto, SolverExplicit, SolverStiff} }

// SolverNames returns the canonical solver names in declaration order —
// ready for CLI usage strings.
func SolverNames() []string {
	out := make([]string, 0, len(solverNames))
	for _, s := range Solvers() {
		out = append(out, s.String())
	}
	return out
}

// ParseSolver maps a user-facing solver name (case-insensitive, with the
// aliases "dp5"/"rk45" for explicit and "rosenbrock"/"ros23"/"implicit" for
// stiff; the empty string selects auto) to its Solver. Unknown names produce
// an error listing the valid choices, so CLIs can surface it verbatim.
func ParseSolver(s string) (Solver, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return SolverAuto, nil
	case "explicit", "dp5", "rk45":
		return SolverExplicit, nil
	case "stiff", "rosenbrock", "ros23", "implicit":
		return SolverStiff, nil
	}
	return SolverAuto, fmt.Errorf("sim: unknown solver %q (valid solvers: %s)",
		s, strings.Join(SolverNames(), ", "))
}
