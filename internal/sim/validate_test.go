package sim

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
)

// fieldsOf returns the invalid field names reported by Validate.
func fieldsOf(t *testing.T, err error) []string {
	t.Helper()
	var ce *ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v (%T), want *ConfigError", err, err)
	}
	var names []string
	for _, f := range ce.Fields {
		names = append(names, f.Field)
	}
	return names
}

func TestConfigValidate(t *testing.T) {
	// The canonical zero-default configs of each method are valid.
	for _, cfg := range []Config{
		{TEnd: 10},
		{Method: SSA, TEnd: 10, Unit: 100},
		{Method: TauLeap, TEnd: 10, Unit: 100},
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", cfg, err)
		}
	}

	cases := []struct {
		name   string
		cfg    Config
		fields []string
	}{
		{"unknown method", Config{Method: Method(99), TEnd: 1}, []string{"Method"}},
		{"zero tend", Config{}, []string{"TEnd"}},
		{"nan tend", Config{TEnd: math.NaN()}, []string{"TEnd"}},
		{"inf tend", Config{TEnd: math.Inf(1)}, []string{"TEnd"}},
		{"inverted rates", Config{TEnd: 1, Rates: Rates{Fast: 1, Slow: 5}}, []string{"Rates"}},
		{"negative sampling", Config{TEnd: 1, SampleEvery: -1}, []string{"SampleEvery"}},
		{"ssa without unit", Config{Method: SSA, TEnd: 1}, []string{"Unit"}},
		{"negative firings cap", Config{TEnd: 1, MaxFirings: -1}, []string{"MaxFirings"}},
		{"epsilon out of range", Config{TEnd: 1, Epsilon: 1.5}, []string{"Epsilon"}},
		{"tauleap events", Config{Method: TauLeap, TEnd: 1, Unit: 10, Events: []*Event{{}}}, []string{"Events"}},
		{"several at once", Config{Method: SSA, TEnd: -3, MaxFirings: -1}, []string{"TEnd", "Unit", "MaxFirings"}},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		got := fieldsOf(t, err)
		if len(got) != len(tc.fields) {
			t.Errorf("%s: fields %v, want %v", tc.name, got, tc.fields)
			continue
		}
		for i := range got {
			if got[i] != tc.fields[i] {
				t.Errorf("%s: fields %v, want %v", tc.name, got, tc.fields)
				break
			}
		}
	}
}

// TestConfigErrorMessage pins the aggregate rendering: every invalid field
// appears in one message, semicolon-separated.
func TestConfigErrorMessage(t *testing.T) {
	err := Config{Method: SSA, TEnd: -3, MaxFirings: -1}.Validate()
	msg := err.Error()
	for _, want := range []string{"sim: invalid config", "TEnd:", "Unit:", "MaxFirings:"} {
		if !strings.Contains(msg, want) {
			t.Errorf("message %q missing %q", msg, want)
		}
	}
	if strings.Count(msg, ";") != 2 {
		t.Errorf("message %q: want 2 separators", msg)
	}
}

// TestRunRejectsInvalidConfig asserts Run routes through Validate and
// surfaces the structured error.
func TestRunRejectsInvalidConfig(t *testing.T) {
	n := chainNet(t, 4)
	var ce *ConfigError
	_, err := Run(context.Background(), n, Config{Method: SSA, TEnd: 1})
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *ConfigError", err)
	}
	if len(ce.Fields) != 1 || ce.Fields[0].Field != "Unit" {
		t.Fatalf("fields = %+v, want one Unit error", ce.Fields)
	}
}
