package sim

import (
	"fmt"
	"strings"
)

// Method selects the simulation algorithm of a Run. The zero value is ODE,
// so existing deterministic Config literals keep working unchanged.
type Method uint8

const (
	// ODE is deterministic mass-action integration (adaptive
	// Dormand–Prince 5(4)) — the validation method of the DAC 2011 paper.
	ODE Method = iota
	// SSA is Gillespie's exact stochastic simulation (direct method).
	SSA
	// TauLeap is accelerated stochastic simulation (explicit tau-leaping).
	TauLeap
)

var methodNames = [...]string{ODE: "ode", SSA: "ssa", TauLeap: "tauleap"}

// String returns the canonical lower-case name ("ode", "ssa", "tauleap").
func (m Method) String() string {
	if int(m) < len(methodNames) {
		return methodNames[m]
	}
	return fmt.Sprintf("method(%d)", uint8(m))
}

// Methods returns every valid method in declaration order.
func Methods() []Method { return []Method{ODE, SSA, TauLeap} }

// MethodNames returns the canonical method names in declaration order —
// ready for CLI usage strings.
func MethodNames() []string {
	out := make([]string, 0, len(methodNames))
	for _, m := range Methods() {
		out = append(out, m.String())
	}
	return out
}

// ParseMethod maps a user-facing method name (case-insensitive, with the
// common aliases "gillespie" for ssa and "tau"/"tau-leap" for tauleap; the
// empty string selects ode) to its Method. Unknown names produce an error
// listing the valid choices, so CLIs can surface it verbatim.
func ParseMethod(s string) (Method, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "ode":
		return ODE, nil
	case "ssa", "gillespie":
		return SSA, nil
	case "tauleap", "tau-leap", "tau":
		return TauLeap, nil
	}
	return ODE, fmt.Errorf("sim: unknown method %q (valid methods: %s)",
		s, strings.Join(MethodNames(), ", "))
}
