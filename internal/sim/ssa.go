package sim

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/crn"
	"repro/internal/obs"
	"repro/internal/trace"
)

// SSAConfig is the pre-redesign configuration of RunSSA; its fields map 1:1
// onto the stochastic fields of the unified Config.
//
// Deprecated: use Config with Method: SSA and Run.
type SSAConfig struct {
	Rates       Rates   // rate assignment; zero value -> DefaultRates
	TEnd        float64 // simulation horizon, required
	Unit        float64 // molecules per concentration unit (system size Ω), required
	SampleEvery float64 // recording interval; 0 -> TEnd/1000
	Seed        int64   // RNG seed (deterministic for a given seed)
	MaxFirings  int     // cap on reaction firings; 0 -> 50 million
	Events      []*Event
	// Obs receives instrumentation events: run start/end, one
	// ReactionFiring per firing, and one Step per recording sample carrying
	// the total propensity. Nil disables instrumentation on the hot path.
	Obs obs.Observer
	// Watchers derive semantic events from the state at every recording
	// sample; their events go to Obs.
	Watchers []obs.Watcher
}

// RunSSA simulates the network with Gillespie's direct method.
//
// Deprecated: use Run with Config.Method = SSA, which adds context
// cancellation.
func RunSSA(n *crn.Network, cfg SSAConfig) (*trace.Trace, error) {
	return Run(context.Background(), n, Config{
		Method: SSA, Rates: cfg.Rates, TEnd: cfg.TEnd, Unit: cfg.Unit,
		SampleEvery: cfg.SampleEvery, Seed: cfg.Seed, MaxFirings: cfg.MaxFirings,
		Events: cfg.Events, Obs: cfg.Obs, Watchers: cfg.Watchers,
	})
}

// ssaCtxCheckEvery is how often (in reaction firings) the SSA loop polls its
// context: every 4096 firings, i.e. sub-millisecond cancellation latency at
// the simulator's typical firing rate while keeping the poll far off the
// per-firing hot path.
const ssaCtxCheckEvery = 4096

// runSSA is the exact stochastic backend of Run; cfg has been normalized and
// the network validated. Initial concentrations are rounded to molecule
// counts at Unit molecules per concentration unit, and the returned trace
// reports concentrations (counts / Unit) so it is directly comparable with
// ODE output.
//
// Propensity convention: a reaction with deterministic rate law
// k·Π[S_i]^c_i has propensity k·Ω·Π( falling(n_i, c_i) / Ω^c_i ), which
// makes the SSA mean converge to the ODE of Deriv as Ω grows.
func runSSA(ctx context.Context, n *crn.Network, cfg Config) (*trace.Trace, error) {
	omega := cfg.Unit
	nsp := n.NumSpecies()
	counts := make([]float64, nsp) // integral values, kept as float64
	for i, c := range n.Init() {
		counts[i] = math.Round(c * omega)
	}
	// Concentration view shared with events.
	conc := make([]float64, nsp)
	syncConc := func() {
		for i := range conc {
			conc[i] = counts[i] / omega
		}
	}
	syncConc()
	st := &State{net: n, y: conc}
	for _, e := range cfg.Events {
		if err := e.prepare(n, conc); err != nil {
			return nil, err
		}
	}
	applyEventChanges := func() {
		// Events mutate the concentration view; fold changes back into
		// counts by re-rounding.
		for i := range counts {
			counts[i] = math.Round(conc[i] * omega)
		}
		syncConc()
	}

	nrx := n.NumReactions()
	type deltaEntry struct {
		idx int
		d   float64
	}
	ks := make([]float64, nrx)
	deltas := make([][]deltaEntry, nrx)
	reactants := make([][]crn.Term, nrx)
	for i := 0; i < nrx; i++ {
		r := n.Reaction(i)
		ks[i] = cfg.Rates.Of(r)
		reactants[i] = r.Reactants
		net := map[int]float64{}
		for _, t := range r.Reactants {
			net[t.Species] -= float64(t.Coeff)
		}
		for _, t := range r.Products {
			net[t.Species] += float64(t.Coeff)
		}
		for sp, d := range net {
			if d != 0 {
				deltas[i] = append(deltas[i], deltaEntry{sp, d})
			}
		}
	}
	propensity := func(i int) float64 {
		a := ks[i] * omega
		for _, t := range reactants[i] {
			nmol := counts[t.Species]
			for c := 0; c < t.Coeff; c++ {
				a *= (nmol - float64(c)) / omega
			}
		}
		if a < 0 {
			return 0
		}
		return a
	}

	// Dependency graph: after reaction j fires, only reactions consuming a
	// species j changed need their propensity recomputed. This turns the
	// per-firing cost from O(reactions) into O(local fan-out), which is
	// what makes SSA runs of the larger circuits (hundreds of reactions)
	// tractable.
	dependents := make(map[int][]int, nsp) // species -> reactions reading it
	for i := 0; i < nrx; i++ {
		for _, t := range reactants[i] {
			dependents[t.Species] = append(dependents[t.Species], i)
		}
	}
	affected := make([][]int, nrx) // reaction -> reactions to refresh
	for i := 0; i < nrx; i++ {
		seen := map[int]bool{}
		for _, de := range deltas[i] {
			for _, k := range dependents[de.idx] {
				seen[k] = true
			}
		}
		for k := range seen {
			affected[i] = append(affected[i], k)
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := trace.New(n.SpeciesNames())
	if err := tr.Append(0, conc); err != nil {
		return nil, err
	}
	sink, startWall, err := startRun(n, "ssa", cfg.TEnd, cfg.Obs, cfg.Watchers)
	if err != nil {
		return nil, err
	}

	t := 0.0
	nextSample := cfg.SampleEvery
	props := make([]float64, nrx)
	total := 0.0
	recomputeAll := func() {
		total = 0
		for i := 0; i < nrx; i++ {
			props[i] = propensity(i)
			total += props[i]
		}
	}
	recomputeAll()
	fired := 0
	for ; fired < cfg.MaxFirings; fired++ {
		if fired%ssaCtxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				err = fmt.Errorf("sim: ssa interrupted at t=%g of %g (%d firings): %w",
					t, cfg.TEnd, fired, err)
				endRun("ssa", t, fired, cfg.Obs, sink, cfg.Watchers, startWall, err)
				return nil, err
			}
		}
		// Guard against floating-point drift of the running total.
		if fired%65536 == 65535 {
			recomputeAll()
		}
		var dt float64
		if total <= 0 {
			dt = math.Inf(1)
		} else {
			dt = rng.ExpFloat64() / total
		}
		// Emit samples crossing into the waiting interval.
		for nextSample <= cfg.TEnd && t+dt >= nextSample {
			syncConc()
			if err := tr.Append(nextSample, conc); err != nil {
				return nil, err
			}
			obs.ObserveAll(cfg.Watchers, nextSample, conc, sink)
			if cfg.Obs != nil {
				cfg.Obs.OnStep(obs.Step{T: nextSample, H: dt, Accepted: true, Propensity: total})
			}
			nextSample += cfg.SampleEvery
		}
		if t+dt >= cfg.TEnd || math.IsInf(dt, 1) {
			break
		}
		t += dt
		// Choose the reaction.
		u := rng.Float64() * total
		acc := 0.0
		chosen := nrx - 1
		for i := 0; i < nrx; i++ {
			acc += props[i]
			if u < acc {
				chosen = i
				break
			}
		}
		if cfg.Obs != nil {
			cfg.Obs.OnReactionFiring(obs.ReactionFiring{T: t, Reaction: chosen, Count: 1})
		}
		for _, de := range deltas[chosen] {
			counts[de.idx] += de.d
			if counts[de.idx] < 0 {
				counts[de.idx] = 0 // cannot happen with correct propensities
			}
			conc[de.idx] = counts[de.idx] / omega
		}
		for _, k := range affected[chosen] {
			total -= props[k]
			props[k] = propensity(k)
			total += props[k]
		}
		if total < 0 {
			recomputeAll()
		}
		firedEvent := false
		for _, e := range cfg.Events {
			if e.step(t, st) {
				firedEvent = true
			}
		}
		if firedEvent {
			applyEventChanges()
			recomputeAll()
		}
	}
	syncConc()
	if tr.End() < cfg.TEnd {
		if err := tr.Append(cfg.TEnd, conc); err != nil {
			return nil, err
		}
	}
	endRun("ssa", cfg.TEnd, fired, cfg.Obs, sink, cfg.Watchers, startWall, nil)
	return tr, nil
}
