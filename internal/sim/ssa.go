package sim

import (
	"context"
	"fmt"
	"math"

	"repro/internal/crn"
	"repro/internal/obs"
	"repro/internal/sim/kernel"
	"repro/internal/trace"
)

// ssaCtxCheckEvery is how often (in reaction firings) the SSA loop polls its
// context: every 4096 firings, i.e. sub-millisecond cancellation latency at
// the simulator's typical firing rate while keeping the poll far off the
// per-firing hot path.
const ssaCtxCheckEvery = 4096

// ssaDriftGuardEvery is how often (in firings) the running propensity index
// is recomputed exactly from the molecule counts. Fenwick updates accumulate
// float deltas into internal nodes, so without the guard a very long run
// would slowly drift from the exact sums.
const ssaDriftGuardEvery = 65536

// ssaEngine is the per-run state of the exact stochastic backend: the
// shared compiled kernel, the propensity vector with its running total,
// and — on networks large enough to repay it — the Fenwick selection index.
// Its two hot methods, nextDT and fire, allocate nothing (asserted by
// TestSSAFiringAllocs).
//
// Both selection modes share every piece of floating-point bookkeeping
// (props, total, drift-guard recomputes); the Fenwick tree is an overlay
// consulted only for selection. That is what makes same-seed runs
// byte-identical across selectors: the only divergence point would be a
// draw landing within one ulp of a reaction boundary. The ensemble lane
// engine (internal/sim/ensemble) replays the same arithmetic against
// lane-strided state, extending the bit-identity guarantee to
// scalar-vs-ensemble runs of the same seed.
type ssaEngine struct {
	k       *kernel.Compiled
	fen     *kernel.Tree // nil in linear-scan mode
	kscaled []float64    // Ω-scaled rate constants (division-free propensities)
	props   []float64    // current propensity of every reaction
	total   float64      // running sum of props, drift-guarded
	counts  []float64    // molecule counts, shared with the run loop
	rng     *kernel.RNG
	stats   *kernel.Stats // hot-path counters, never nil
}

func newSSAEngine(n *crn.Network, cfg Config, counts []float64, stats *kernel.Stats) *ssaEngine {
	if stats == nil {
		stats = &kernel.Stats{}
	}
	k := cfg.compiled
	if k == nil {
		k = kernel.Compile(n, cfg.Rates.Of)
	}
	e := &ssaEngine{
		k:       k,
		kscaled: k.StochRates(cfg.Unit),
		props:   make([]float64, k.NumReactions),
		counts:  counts,
		rng:     kernel.NewRNG(cfg.Seed),
		stats:   stats,
	}
	if cfg.selMode == selFenwick ||
		(cfg.selMode == selAuto && k.NumReactions >= ssaFenwickMinReactions) {
		e.fen = kernel.NewTree(k.NumReactions)
	}
	e.recomputeAll()
	return e
}

// recomputeAll refreshes every propensity from the current counts and the
// exact total — the float-drift guard, also run after event injections
// rewrite the state wholesale.
func (e *ssaEngine) recomputeAll() {
	e.stats.ExactRecomputes++
	total := 0.0
	for i := range e.props {
		e.props[i] = e.k.Propensity(i, e.kscaled, e.counts)
		total += e.props[i]
	}
	e.total = total
	if e.fen != nil {
		e.fen.Rebuild(e.props)
	}
}

// nextDT draws the exponential waiting time to the next firing; +Inf when
// the network is exhausted.
func (e *ssaEngine) nextDT() float64 {
	if e.total <= 0 {
		return math.Inf(1)
	}
	return e.rng.ExpFloat64() / e.total
}

// fire selects the next reaction by inverse-CDF sampling — O(log R) Fenwick
// descent on indexed networks, O(R) accumulation scan otherwise — applies
// its stoichiometry to the counts and refreshes the propensities of the
// affected fan-out by streaming the reaction's update program (dependent
// index, rate-law form and operands packed per record — see
// kernel.UpdRecord). Dependents whose propensity is unchanged (typically
// gated reactions outside their phase, zero before and after) cost one
// comparison.
func (e *ssaEngine) fire() int {
	u := e.rng.Float64() * e.total
	var chosen int
	if e.fen != nil {
		chosen = e.fen.Select(u)
		e.stats.FenwickSelects++
	} else {
		chosen = selectLinear(e.props, u)
		e.stats.LinearSelects++
	}
	e.k.ApplyDelta(chosen, e.counts)
	kscaled, counts := e.kscaled, e.counts
	for _, up := range e.k.Updates(chosen) {
		di := int(up.Dep)
		var newp float64
		switch up.Form {
		case kernel.FormConst:
			newp = kscaled[di]
		case kernel.FormUni:
			newp = kscaled[di] * counts[up.Op1]
		case kernel.FormBi:
			newp = kscaled[di] * counts[up.Op1] * counts[up.Op2]
		case kernel.FormDimer:
			nn := counts[up.Op1]
			newp = kscaled[di] * nn * (nn - 1)
		default:
			newp = e.k.Propensity(di, kscaled, counts)
		}
		old := e.props[di]
		if newp == old {
			continue
		}
		e.props[di] = newp
		e.total += newp - old
		if e.fen != nil {
			e.fen.Set(di, newp)
		}
	}
	if e.total < 0 {
		// Accumulated float drift went negative: resync exactly.
		e.recomputeAll()
	}
	return chosen
}

// selectLinear is the retained reference selector: the pre-index O(R)
// accumulation scan, also the faster choice below the Fenwick crossover
// size. Falls back to the last reaction if u reaches the accumulated total
// (float roundoff at the extreme right edge).
func selectLinear(props []float64, u float64) int {
	acc := 0.0
	for i, p := range props {
		acc += p
		if u < acc {
			return i
		}
	}
	return len(props) - 1
}

// runSSA is the exact stochastic backend of Run; cfg has been normalized and
// the network validated. Initial concentrations are rounded to molecule
// counts at Unit molecules per concentration unit, and the returned trace
// reports concentrations (counts / Unit) so it is directly comparable with
// ODE output.
//
// Propensity convention: a reaction with deterministic rate law
// k·Π[S_i]^c_i has propensity k·Ω·Π( falling(n_i, c_i) / Ω^c_i ), which
// makes the SSA mean converge to the ODE of Deriv as Ω grows.
//
// The loop comes in two variants with identical stochastic behaviour (same
// RNG consumption, same trajectories for a given seed): a tight loop used
// when the run has no injection events and no observer, whose per-firing
// body carries no event/observer branches and no concentration syncing, and
// a full loop paying for those features only when they are requested.
func runSSA(ctx context.Context, n *crn.Network, cfg Config) (*trace.Trace, error) {
	omega := cfg.Unit
	nsp := n.NumSpecies()
	counts := make([]float64, nsp) // integral values, kept as float64
	for i, c := range n.Init() {
		counts[i] = math.Round(c * omega)
	}
	// Concentration view shared with events; synced from counts at samples
	// (and, in the full loop, per firing for the changed species).
	conc := make([]float64, nsp)
	syncConc := func() {
		for i := range conc {
			conc[i] = counts[i] / omega
		}
	}
	syncConc()
	st := &State{net: n, y: conc}
	for _, e := range cfg.Events {
		if err := e.prepare(n, conc); err != nil {
			return nil, err
		}
	}
	eng := newSSAEngine(n, cfg, counts, cfg.Kernel)

	tr := trace.New(n.SpeciesNames())
	tr.Grow(int(cfg.TEnd/cfg.SampleEvery) + 2)
	if err := tr.Append(0, conc); err != nil {
		return nil, err
	}
	sink, startWall, err := startRun(n, "ssa", cfg.TEnd, cfg.Obs, cfg.Watchers)
	if err != nil {
		return nil, err
	}

	t := 0.0
	nextSample := cfg.SampleEvery
	fired := 0
	// emitSamples records every sample boundary the waiting interval [t,
	// t+dt) crosses. Call sites guard with the cheap crossing test so the
	// per-firing cost is one comparison.
	emitSamples := func(dt float64) error {
		for nextSample <= cfg.TEnd && t+dt >= nextSample {
			syncConc()
			if err := tr.Append(nextSample, conc); err != nil {
				return err
			}
			obs.ObserveAll(cfg.Watchers, nextSample, conc, sink)
			if cfg.Obs != nil {
				cfg.Obs.OnStep(obs.Step{T: nextSample, H: dt, Accepted: true, Propensity: eng.total})
			}
			nextSample += cfg.SampleEvery
		}
		return nil
	}
	interrupted := func(err error) error {
		err = fmt.Errorf("sim: ssa interrupted at t=%g of %g (%d firings): %w",
			t, cfg.TEnd, fired, err)
		endRunStats("ssa", t, fired, cfg.Obs, sink, cfg.Watchers, startWall, err, *eng.stats)
		return err
	}

	if len(cfg.Events) == 0 && cfg.Obs == nil {
		// Tight loop: no per-firing event or observer branches at all.
		eng.stats.TightLoops++
		for ; fired < cfg.MaxFirings; fired++ {
			if fired%ssaCtxCheckEvery == 0 {
				if err := ctx.Err(); err != nil {
					return nil, interrupted(err)
				}
			}
			if fired%ssaDriftGuardEvery == ssaDriftGuardEvery-1 {
				eng.recomputeAll()
			}
			dt := eng.nextDT()
			if nextSample <= cfg.TEnd && t+dt >= nextSample {
				if err := emitSamples(dt); err != nil {
					return nil, err
				}
			}
			if t+dt >= cfg.TEnd || math.IsInf(dt, 1) {
				break
			}
			t += dt
			eng.fire()
		}
	} else {
		eng.stats.FullLoops++
		applyEventChanges := func() {
			// Events mutate the concentration view; fold changes back into
			// counts by re-rounding.
			for i := range counts {
				counts[i] = math.Round(conc[i] * omega)
			}
			syncConc()
		}
		for ; fired < cfg.MaxFirings; fired++ {
			if fired%ssaCtxCheckEvery == 0 {
				if err := ctx.Err(); err != nil {
					return nil, interrupted(err)
				}
			}
			if fired%ssaDriftGuardEvery == ssaDriftGuardEvery-1 {
				eng.recomputeAll()
			}
			dt := eng.nextDT()
			if nextSample <= cfg.TEnd && t+dt >= nextSample {
				if err := emitSamples(dt); err != nil {
					return nil, err
				}
			}
			if t+dt >= cfg.TEnd || math.IsInf(dt, 1) {
				break
			}
			t += dt
			chosen := eng.fire()
			if cfg.Obs != nil {
				cfg.Obs.OnReactionFiring(obs.ReactionFiring{T: t, Reaction: chosen, Count: 1})
			}
			// Keep the concentration view of the changed species current
			// for the event probes.
			spec, _ := eng.k.Deltas(chosen)
			for _, sp := range spec {
				conc[sp] = counts[sp] / omega
			}
			firedEvent := false
			for _, e := range cfg.Events {
				if e.step(t, st) {
					firedEvent = true
				}
			}
			if firedEvent {
				applyEventChanges()
				eng.recomputeAll()
			}
		}
	}
	syncConc()
	if tr.End() < cfg.TEnd {
		if err := tr.Append(cfg.TEnd, conc); err != nil {
			return nil, err
		}
	}
	endRunStats("ssa", cfg.TEnd, fired, cfg.Obs, sink, cfg.Watchers, startWall, nil, *eng.stats)
	return tr, nil
}
