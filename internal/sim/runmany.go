package sim

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/batch"
	"repro/internal/crn"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/sim/ensemble"
	"repro/internal/sim/kernel"
	"repro/internal/trace"
)

// defaultLaneWidth is the SoA block width RunMany picks when BatchConfig
// leaves Lanes zero: 8 lanes pack each species row into one 64-byte cache
// line, and wider blocks showed no further gain on the ring benchmarks.
const defaultLaneWidth = 8

// BatchConfig describes a multi-run simulation: N runs of one network,
// sharing a compiled kernel, executed through the SoA ensemble engine
// wherever the runs qualify and through the scalar backends otherwise.
type BatchConfig struct {
	// Base is the per-run configuration template. Its Seed is the ensemble
	// base seed (per-run seeds derive from it unless Seeds is given); its
	// Kernel sink, when non-nil, accumulates the whole batch's hot-path
	// counters after completion.
	Base Config

	// Runs is the number of runs. Zero with a non-empty Seeds list means
	// len(Seeds).
	Runs int

	// Seeds optionally pins each run's RNG stream seed; when nil, run i
	// uses batch.DeriveSeed(Base.Seed, i) — the same SplitMix64 derivation
	// the batch engine applies to sweep points, so RunMany reproduces the
	// per-point seeds of the hand-rolled loops it replaces.
	Seeds []int64

	// Configure, when non-nil, customizes run i's config after the seed is
	// assigned (sweep points override Rates, jobs attach watchers, ...).
	// Runs whose configs end up identical — and which carry no events,
	// observer or watchers — share SoA blocks; anything else falls back to
	// a scalar sim.Run with the shared kernel.
	Configure func(i int, cfg *Config)

	// Lanes is the SoA block width; 0 picks the default (8), 1 degenerates
	// to one-lane blocks (the bit-identity reference).
	Lanes int

	// Workers fans blocks and scalar runs out over a batch worker pool
	// (per-job spans, queue-wait metrics, resource attribution). 0 runs
	// everything inline on the calling goroutine.
	Workers int

	// FinalsOnly skips trajectory materialization: Ensemble.Traces stays
	// nil and only final states are recorded. Firing sequences are
	// unchanged — finals match trace-mode runs exactly — but sweep
	// workloads that never read trajectories skip their dominant per-run
	// cost (trace allocation and sample emission).
	FinalsOnly bool

	// OnResult, when non-nil, is called once per run as it completes, with
	// the run's trace (nil in finals-only mode or on error). When Workers
	// fans runs out, calls may come from worker goroutines concurrently.
	OnResult func(i int, tr *trace.Trace, err error)

	// Gate, when non-nil, is acquired around each unit of simulation work
	// (one SoA block or one scalar run) — the server wraps its global sim
	// semaphore here. The returned release func is called when the unit
	// finishes; a Gate error fails the unit's runs.
	Gate func(ctx context.Context) (release func(), err error)

	// Metrics, when non-nil, receives batch execution metrics (queue wait,
	// job durations, worker shards) and per-run sim_runs/sim_steps
	// families. Laned runs report run-level totals only; per-step
	// histograms require a scalar run with an Observer.
	Metrics *obs.Registry

	// JobTimeout bounds each unit of work when Workers > 0 (batch
	// per-job timeout semantics); zero means no per-unit timeout.
	JobTimeout time.Duration
}

// runGroupKey identifies configs that may share an SoA block: everything
// the ensemble engine holds block-wide. Seed is per-lane and excluded.
type runGroupKey struct {
	rates       Rates
	tEnd        float64
	sampleEvery float64
	unit        float64
	maxFirings  int
	selMode     int
}

// runItem is one unit of execution: a laned SoA block (len(runs) > 1 or
// laned true) or a single scalar run.
type runItem struct {
	runs  []int    // global run indices, in order
	cfgs  []Config // normalized configs, parallel to runs
	laned bool
}

// RunMany simulates Runs instances of the network and returns their
// results as a trace.Ensemble. It is the single multi-run entry point:
// rate-ratio sweeps, stochastic ensembles and grid experiments all route
// through it instead of looping over Run.
//
// The network structure is compiled once and bound once per distinct rate
// assignment, so a sweep walks the dependency graph once instead of once
// per run. Runs that qualify for the SoA engine — SSA, no events, no
// observer, no watchers — are grouped by identical parameters and advanced
// in lane blocks through internal/sim/ensemble, with per-lane SplitMix64
// streams keeping every lane bit-identical to a scalar Run of the same
// seed. Everything else (ODE, tau-leap, observed/watched/evented runs)
// runs through the scalar backends with the shared kernel.
//
// Per-run failures are recorded in the ensemble's Errs slots (and reported
// through OnResult); the returned error is non-nil only for configuration
// errors, network validation failures, and context cancellation.
func RunMany(ctx context.Context, n *crn.Network, bc BatchConfig) (*trace.Ensemble, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	runs := bc.Runs
	if runs == 0 {
		runs = len(bc.Seeds)
	}
	if runs <= 0 {
		return nil, fmt.Errorf("sim: RunMany needs Runs > 0 or explicit Seeds")
	}
	if len(bc.Seeds) > 0 && len(bc.Seeds) != runs {
		return nil, fmt.Errorf("sim: RunMany got %d seeds for %d runs", len(bc.Seeds), runs)
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	lanes := bc.Lanes
	if lanes <= 0 {
		lanes = defaultLaneWidth
	}

	// Materialize and normalize every run's config up front; configuration
	// errors fail the whole batch before any simulation starts.
	cfgs := make([]Config, runs)
	for i := 0; i < runs; i++ {
		cfg := bc.Base
		if len(bc.Seeds) > 0 {
			cfg.Seed = bc.Seeds[i]
		} else if cfg.Method != ODE {
			cfg.Seed = batch.DeriveSeed(bc.Base.Seed, i)
		}
		if bc.Configure != nil {
			bc.Configure(i, &cfg)
		}
		nc, err := cfg.normalize()
		if err != nil {
			return nil, fmt.Errorf("sim: RunMany run %d: %w", i, err)
		}
		cfgs[i] = nc
	}

	// Compile the structure once; bind once per distinct rate assignment.
	structure := kernel.NewStructure(n)
	bindings := map[Rates]*kernel.Compiled{}
	bind := func(r Rates) *kernel.Compiled {
		if k, ok := bindings[r]; ok {
			return k
		}
		k := structure.Bind(r.Of)
		bindings[r] = k
		return k
	}
	for i := range cfgs {
		cfgs[i].compiled = bind(cfgs[i].Rates)
	}

	items := groupRuns(cfgs, lanes)

	ens := trace.NewEnsemble(n.SpeciesNames(), runs)
	var (
		mu    sync.Mutex
		agg   kernel.Stats
		names = n.SpeciesNames()
	)
	record := func(i int, tr *trace.Trace, finals []float64, err error) {
		mu.Lock()
		ens.Errs[i] = err
		ens.Finals[i] = finals
		if !bc.FinalsOnly {
			ens.Traces[i] = tr
		}
		mu.Unlock()
		if bc.OnResult != nil {
			if bc.FinalsOnly {
				tr = nil
			}
			bc.OnResult(i, tr, err)
		}
	}

	exec := func(ctx context.Context, it *runItem, pointObs obs.Observer) error {
		if bc.Gate != nil {
			release, err := bc.Gate(ctx)
			if err != nil {
				for _, i := range it.runs {
					record(i, nil, nil, err)
				}
				return err
			}
			defer release()
		}
		var stats kernel.Stats
		var firstErr error
		if it.laned {
			firstErr = runLanedItem(ctx, it, n, names, bc.FinalsOnly, &stats, pointObs, record)
		} else {
			i := it.runs[0]
			cfg := it.cfgs[0]
			cfg.Kernel = &stats
			if pointObs != nil {
				cfg.Obs = obs.Multi(cfg.Obs, pointObs)
			}
			tr, err := Run(ctx, n, cfg)
			var finals []float64
			if err == nil {
				finals = finalRow(tr, names)
			}
			record(i, tr, finals, err)
			firstErr = err
		}
		mu.Lock()
		agg.Add(stats)
		mu.Unlock()
		return firstErr
	}

	var runErr error
	if bc.Workers <= 0 {
		var seqObs obs.Observer
		if bc.Metrics != nil {
			seqObs = obs.NewRegistryObserver(bc.Metrics)
		}
		for idx := range items {
			if err := ctx.Err(); err != nil {
				for _, i := range items[idx].runs {
					record(i, nil, nil, err)
				}
				runErr = err
				continue
			}
			exec(ctx, &items[idx], seqObs)
		}
	} else {
		// Per-run failures are recorded in the ensemble, not escalated;
		// only cancellation fails the batch as a whole.
		batch.Run(ctx, len(items), func(ctx context.Context, p batch.Point) error {
			return exec(ctx, &items[p.Index], p.Obs)
		}, batch.Options{
			Workers:    bc.Workers,
			Seed:       bc.Base.Seed,
			Policy:     batch.CollectAll,
			Metrics:    bc.Metrics,
			JobTimeout: bc.JobTimeout,
		})
		if err := ctx.Err(); err != nil {
			runErr = err
			// Items skipped by the cancelled pool never reported; mark
			// their runs interrupted instead of leaving empty slots.
			for i := range ens.Errs {
				if ens.Errs[i] == nil && ens.Finals[i] == nil {
					ens.Errs[i] = err
				}
			}
		}
	}

	if bc.Base.Kernel != nil {
		bc.Base.Kernel.Add(agg)
	}
	if sp := span.FromContext(ctx); sp != nil {
		sp.SetAttr("ensemble.runs", runs)
		sp.SetAttr("ensemble.lanes", lanes)
		sp.SetAttr("ensemble.blocks", agg.EnsembleBlocks)
		if agg.LaneSlots > 0 {
			sp.SetAttr("ensemble.occupancy", agg.Occupancy())
		}
	}
	if runErr != nil {
		return ens, fmt.Errorf("sim: RunMany interrupted: %w", runErr)
	}
	return ens, nil
}

// runLanedItem executes one SoA block and records per-lane results. When
// pointObs is non-nil it receives synthetic per-lane SimStart/SimEnd events
// (run-level totals; the lane engine emits no per-firing telemetry), with
// the block's kernel counters attached to the last lane's SimEnd so metric
// totals stay exact.
func runLanedItem(ctx context.Context, it *runItem, n *crn.Network, names []string,
	finalsOnly bool, stats *kernel.Stats, pointObs obs.Observer,
	record func(int, *trace.Trace, []float64, error)) error {

	cfg := it.cfgs[0]
	seeds := make([]int64, len(it.runs))
	for j := range it.cfgs {
		seeds[j] = it.cfgs[j].Seed
	}
	var sp *span.Span
	if parent := span.FromContext(ctx); parent != nil {
		sp = parent.Child("sim.ensemble")
		sp.SetAttr("sim.method", "ssa")
		sp.SetAttr("sim.t_end", cfg.TEnd)
		sp.SetAttr("sim.species", n.NumSpecies())
		sp.SetAttr("sim.reactions", n.NumReactions())
		sp.SetAttr("ensemble.lanes", len(seeds))
		sp.SetAttr("ensemble.first_run", it.runs[0])
	}
	if pointObs != nil {
		for range it.runs {
			pointObs.OnSimStart(obs.SimStart{Sim: "ssa", T0: 0, T1: cfg.TEnd,
				Species: names, Reactions: reactionNames(n)})
		}
	}
	startWall := time.Now()
	res, err := ensemble.Run(ctx, ensemble.Config{
		K:           cfg.compiled,
		Names:       names,
		Init:        n.Init(),
		Unit:        cfg.Unit,
		TEnd:        cfg.TEnd,
		SampleEvery: cfg.SampleEvery,
		MaxFirings:  cfg.MaxFirings,
		Seeds:       seeds,
		FinalsOnly:  finalsOnly,
		Sel:         cfg.selMode, // sel constants mirror ensemble.Sel*
		Stats:       stats,
	})
	wall := time.Since(startWall).Seconds()
	if err != nil && res == nil {
		for _, i := range it.runs {
			record(i, nil, nil, err)
		}
		if sp != nil {
			sp.SetError(err)
			sp.End()
		}
		return err
	}
	var firstErr error
	for j, i := range it.runs {
		var tr *trace.Trace
		if res.Traces != nil {
			tr = res.Traces[j]
		}
		if res.Errs[j] != nil && firstErr == nil {
			firstErr = res.Errs[j]
		}
		record(i, tr, res.Finals[j], res.Errs[j])
		if pointObs != nil {
			e := obs.SimEnd{Sim: "ssa", T: cfg.TEnd, Steps: res.Firings[j], WallSeconds: wall}
			if res.Errs[j] != nil {
				e.Err = res.Errs[j].Error()
			}
			if j == len(it.runs)-1 {
				e.Kernel = kernelStats(*stats)
			}
			pointObs.OnSimEnd(e)
		}
	}
	if sp != nil {
		sp.SetAttr("ensemble.occupancy", stats.Occupancy())
		sp.SetError(firstErr)
		sp.End()
	}
	return firstErr
}

// laneable reports whether a run may execute on the SoA lane engine: exact
// SSA with no per-firing feature hooks. Everything else needs the scalar
// backends (which still share the batch's compiled kernel).
func laneable(cfg Config) bool {
	return cfg.Method == SSA && len(cfg.Events) == 0 && cfg.Obs == nil && len(cfg.Watchers) == 0
}

// groupRuns partitions runs into execution items: maximal groups of
// consecutive laneable runs with identical block-wide parameters, chunked
// into width-lanes blocks, and single-run scalar items for the rest.
// Consecutive grouping preserves run ordering in the common sweep layouts
// (runs-major within a sweep point), where it loses nothing against global
// grouping.
func groupRuns(cfgs []Config, lanes int) []runItem {
	var items []runItem
	flush := func(group []int) {
		for len(group) > 0 {
			w := lanes
			if w > len(group) {
				w = len(group)
			}
			it := runItem{laned: true}
			for _, i := range group[:w] {
				it.runs = append(it.runs, i)
				it.cfgs = append(it.cfgs, cfgs[i])
			}
			items = append(items, it)
			group = group[w:]
		}
	}
	var group []int
	var key runGroupKey
	for i := range cfgs {
		if !laneable(cfgs[i]) {
			flush(group)
			group = nil
			items = append(items, runItem{runs: []int{i}, cfgs: []Config{cfgs[i]}})
			continue
		}
		k := runGroupKey{
			rates:       cfgs[i].Rates,
			tEnd:        cfgs[i].TEnd,
			sampleEvery: cfgs[i].SampleEvery,
			unit:        cfgs[i].Unit,
			maxFirings:  cfgs[i].MaxFirings,
			selMode:     cfgs[i].selMode,
		}
		if len(group) > 0 && k != key {
			flush(group)
			group = nil
		}
		key = k
		group = append(group, i)
	}
	flush(group)
	return items
}

// finalRow extracts a trace's final state in species order.
func finalRow(tr *trace.Trace, names []string) []float64 {
	f := make([]float64, len(names))
	for j, name := range names {
		f[j] = tr.Final(name)
	}
	return f
}
