package sim

// Tests for the kernel hot-path counters (Config.Kernel): the selector
// invariant that both selection modes perform identical stochastic work,
// the tight-vs-full SSA loop accounting, and the surfacing of counters
// through the observer pipeline into a metrics registry.

import (
	"context"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim/kernel"
)

// runSSAStats runs the chain network under SSA with a caller-owned stats
// block and returns it.
func runSSAStats(t *testing.T, seed int64, mode int, o obs.Observer) kernel.Stats {
	t.Helper()
	n := chainNet(t, 40)
	var ks kernel.Stats
	_, err := Run(context.Background(), n, Config{
		Method: SSA, Rates: Rates{Fast: 50, Slow: 1},
		TEnd: 5, Unit: 40, Seed: seed, selMode: mode,
		Obs: o, Kernel: &ks,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ks
}

// TestKernelStatsSelectorInvariant pins that the Fenwick and linear
// selectors do the same stochastic work on the same seed: every firing is
// one selection, the two modes select the same number of times, and the
// exact-recompute drift schedule is identical. This is the counter-level
// companion to TestSSASelectorByteIdentical.
func TestKernelStatsSelectorInvariant(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		f := runSSAStats(t, seed, selFenwick, nil)
		l := runSSAStats(t, seed, selLinear, nil)
		if f.FenwickSelects == 0 {
			t.Fatalf("seed %d: fenwick run counted no selections", seed)
		}
		if f.LinearSelects != 0 || l.FenwickSelects != 0 {
			t.Fatalf("seed %d: modes cross-tallied: fenwick=%+v linear=%+v", seed, f, l)
		}
		if f.FenwickSelects != l.LinearSelects {
			t.Errorf("seed %d: %d fenwick vs %d linear selections", seed, f.FenwickSelects, l.LinearSelects)
		}
		if f.ExactRecomputes != l.ExactRecomputes {
			t.Errorf("seed %d: %d vs %d exact recomputes", seed, f.ExactRecomputes, l.ExactRecomputes)
		}
		if f.ExactRecomputes == 0 {
			t.Errorf("seed %d: no exact recomputes counted (initial build should count)", seed)
		}
	}
}

// TestKernelStatsLoopAccounting pins which SSA loop each configuration
// takes: no observer and no watchers means the tight loop, an observer
// forces the full loop. Config.Kernel itself must not disqualify the tight
// loop — it is the only way to observe tight-loop runs.
func TestKernelStatsLoopAccounting(t *testing.T) {
	tight := runSSAStats(t, 1, selFenwick, nil)
	if tight.TightLoops != 1 || tight.FullLoops != 0 {
		t.Errorf("unobserved run: tight=%d full=%d, want 1/0", tight.TightLoops, tight.FullLoops)
	}
	reg := obs.NewRegistry()
	full := runSSAStats(t, 1, selFenwick, obs.NewRegistryObserver(reg))
	if full.TightLoops != 0 || full.FullLoops != 1 {
		t.Errorf("observed run: tight=%d full=%d, want 0/1", full.TightLoops, full.FullLoops)
	}
	// Same seed, same stochastic process: the loops differ only in
	// bookkeeping, never in selections.
	if tight.FenwickSelects != full.FenwickSelects {
		t.Errorf("tight loop selected %d times, full loop %d", tight.FenwickSelects, full.FenwickSelects)
	}
}

// TestKernelStatsSweepAccumulation: reusing one stats block across runs
// accumulates, which is how batch sweeps total their kernel work.
func TestKernelStatsSweepAccumulation(t *testing.T) {
	n := chainNet(t, 40)
	var ks kernel.Stats
	var perRun uint64
	for i := 0; i < 3; i++ {
		before := ks.Selects()
		_, err := Run(context.Background(), n, Config{
			Method: SSA, Rates: Rates{Fast: 50, Slow: 1},
			TEnd: 5, Unit: 40, Seed: 9, selMode: selFenwick, Kernel: &ks,
		})
		if err != nil {
			t.Fatal(err)
		}
		d := ks.Selects() - before
		if d == 0 {
			t.Fatalf("run %d added no selections", i)
		}
		if i == 0 {
			perRun = d
		} else if d != perRun {
			t.Fatalf("run %d added %d selections, first run added %d (determinism broken)", i, d, perRun)
		}
	}
	if ks.TightLoops != 3 {
		t.Fatalf("3 runs entered the tight loop %d times", ks.TightLoops)
	}
}

// TestKernelStatsReachRegistry runs an observed simulation and checks the
// kernel counters come out the far end of the pipeline as kernel_* metric
// families in Prometheus exposition.
func TestKernelStatsReachRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	runSSAStats(t, 5, selFenwick, obs.NewRegistryObserver(reg))
	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`kernel_selects_total{mode="fenwick"}`,
		"kernel_exact_recomputes_total",
		`kernel_ssa_loops_total{loop="full"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %s:\n%s", want, text)
		}
	}
	if strings.Contains(text, `mode="linear"`) {
		t.Errorf("linear selector counter emitted for a fenwick-only run:\n%s", text)
	}
}
