package sim

import (
	"context"
	"fmt"
	"math"

	"repro/internal/crn"
	"repro/internal/obs"
	"repro/internal/sim/kernel"
	"repro/internal/trace"
)

// tauCtxCheckEvery is how often (in leap steps) the tau-leap loop polls its
// context. A leap is orders of magnitude more work than an SSA firing
// (propensities, leap condition and Poisson draws over every reaction), so
// polling every 64 leaps keeps cancellation latency low at negligible cost.
const tauCtxCheckEvery = 64

// runTauLeap is the accelerated stochastic backend of Run; cfg has been
// normalized and the network validated. Steps whose Poisson draws would
// drive a population negative are retried with half the leap, degenerating
// towards exact behaviour; the returned trace reports concentrations like
// the SSA backend.
//
// Propensities, stoichiometry and rates come from the same compiled kernel
// as the SSA and ODE backends, and the leap-condition moment sweep skips
// zero-propensity reactions (gated reactions outside their phase), which on
// the paper's clocked circuits is most of the network at any instant.
func runTauLeap(ctx context.Context, n *crn.Network, cfg Config) (*trace.Trace, error) {
	omega := cfg.Unit
	nsp := n.NumSpecies()
	nrx := n.NumReactions()
	counts := make([]float64, nsp)
	for i, c := range n.Init() {
		counts[i] = math.Round(c * omega)
	}
	k := cfg.compiled
	if k == nil {
		k = kernel.Compile(n, cfg.Rates.Of)
	}
	kscaled := k.StochRates(omega)
	stats := cfg.Kernel
	if stats == nil {
		stats = &kernel.Stats{}
	}

	rng := kernel.NewRNG(cfg.Seed)
	tr := trace.New(n.SpeciesNames())
	tr.Grow(int(cfg.TEnd/cfg.SampleEvery) + 2)
	conc := make([]float64, nsp)
	emit := func(at float64) error {
		for i := range conc {
			conc[i] = counts[i] / omega
		}
		return tr.Append(at, conc)
	}
	if err := emit(0); err != nil {
		return nil, err
	}
	sink, startWall, err := startRun(n, "tauleap", cfg.TEnd, cfg.Obs, cfg.Watchers)
	if err != nil {
		return nil, err
	}

	props := make([]float64, nrx)
	mu := make([]float64, nsp)
	sigma2 := make([]float64, nsp)
	fires := make([]float64, nrx)
	t := 0.0
	nextSample := cfg.SampleEvery
	leaps := 0
	for leap := 0; leap < cfg.MaxLeaps && t < cfg.TEnd; leap++ {
		if leap%tauCtxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				err = fmt.Errorf("sim: tauleap interrupted at t=%g of %g (%d leaps): %w",
					t, cfg.TEnd, leap, err)
				endRunStats("tauleap", t, leap, cfg.Obs, sink, cfg.Watchers, startWall, err, *stats)
				return nil, err
			}
		}
		leaps = leap + 1
		total := 0.0
		for i := 0; i < nrx; i++ {
			props[i] = k.Propensity(i, kscaled, counts)
			total += props[i]
		}
		if total <= 0 {
			break
		}
		// Leap condition: expected and variance of per-species change.
		// Zero-propensity reactions contribute nothing and are skipped.
		for i := range mu {
			mu[i], sigma2[i] = 0, 0
		}
		for j := 0; j < nrx; j++ {
			p := props[j]
			if p == 0 {
				continue
			}
			spec, val := k.Deltas(j)
			for x, sp := range spec {
				mu[sp] += val[x] * p
				sigma2[sp] += val[x] * val[x] * p
			}
		}
		tau := cfg.TEnd - t
		for i := 0; i < nsp; i++ {
			bound := math.Max(cfg.Epsilon*counts[i], 1)
			if m := math.Abs(mu[i]); m > 0 {
				tau = math.Min(tau, bound/m)
			}
			if sigma2[i] > 0 {
				tau = math.Min(tau, bound*bound/sigma2[i])
			}
		}
		// A leap shorter than a few exact steps is pointless; take it
		// anyway as a short leap (the Poisson draws then mostly produce
		// 0/1 counts, recovering near-exact behaviour).
		if tau <= 0 {
			tau = 1 / total
		}
		for retry := 0; ; retry++ {
			for j := 0; j < nrx; j++ {
				fires[j] = poisson(rng, props[j]*tau)
			}
			for j := 0; j < nrx; j++ {
				if fires[j] == 0 {
					continue
				}
				spec, val := k.Deltas(j)
				for x, sp := range spec {
					counts[sp] += val[x] * fires[j]
				}
			}
			neg := false
			for i := 0; i < nsp; i++ {
				if counts[i] < 0 {
					neg = true
					break
				}
			}
			if !neg {
				break
			}
			// Roll back and retry with half the leap.
			for j := 0; j < nrx; j++ {
				if fires[j] == 0 {
					continue
				}
				spec, val := k.Deltas(j)
				for x, sp := range spec {
					counts[sp] -= val[x] * fires[j]
				}
			}
			stats.LeapRejections++
			if cfg.Obs != nil {
				cfg.Obs.OnStep(obs.Step{T: t, H: tau, Accepted: false, Propensity: total})
			}
			tau /= 2
			if retry > 60 {
				err := fmt.Errorf("sim: tau-leap failed to find a feasible step at t=%g", t)
				endRunStats("tauleap", t, leaps, cfg.Obs, sink, cfg.Watchers, startWall, err, *stats)
				return nil, err
			}
		}
		t += tau
		if cfg.Obs != nil {
			cfg.Obs.OnStep(obs.Step{T: t, H: tau, Accepted: true, Propensity: total})
			for j := 0; j < nrx; j++ {
				if fires[j] > 0 {
					cfg.Obs.OnReactionFiring(obs.ReactionFiring{T: t, Reaction: j, Count: fires[j]})
				}
			}
		}
		for nextSample <= cfg.TEnd && t >= nextSample {
			if err := emit(nextSample); err != nil {
				return nil, err
			}
			obs.ObserveAll(cfg.Watchers, nextSample, conc, sink)
			nextSample += cfg.SampleEvery
		}
	}
	if tr.End() < cfg.TEnd {
		if err := emit(cfg.TEnd); err != nil {
			return nil, err
		}
	}
	endRunStats("tauleap", cfg.TEnd, leaps, cfg.Obs, sink, cfg.Watchers, startWall, nil, *stats)
	return tr, nil
}

// poisson draws a Poisson variate with the given mean: Knuth's product
// method for small means, a clamped normal approximation for large ones.
func poisson(rng *kernel.RNG, mean float64) float64 {
	switch {
	case mean <= 0:
		return 0
	case mean < 30:
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= rng.Float64()
			if p <= l {
				return float64(k)
			}
			k++
		}
	default:
		v := math.Round(mean + math.Sqrt(mean)*rng.NormFloat64())
		if v < 0 {
			return 0
		}
		return v
	}
}
