package sim

// Tests for the PR7 multi-run engine: bit-identity between the SoA lane
// engine and the scalar backend, ragged lane retirement, worker-count
// invariance, and the RunMany routing rules (laneable grouping, scalar
// fallback, per-run error recording).

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/batch"
	"repro/internal/crn"
	"repro/internal/obs"
	"repro/internal/sim/kernel"
	"repro/internal/trace"
)

// tracesBitEqual fails the test unless the two traces agree bit for bit in
// every sample time and every concentration.
func tracesBitEqual(t *testing.T, label string, want, got *trace.Trace) {
	t.Helper()
	if want == nil || got == nil {
		t.Fatalf("%s: nil trace (want %v, got %v)", label, want != nil, got != nil)
	}
	if len(want.T) != len(got.T) {
		t.Fatalf("%s: %d vs %d samples", label, len(want.T), len(got.T))
	}
	for i := range want.T {
		if math.Float64bits(want.T[i]) != math.Float64bits(got.T[i]) {
			t.Fatalf("%s: sample %d time %v vs %v", label, i, want.T[i], got.T[i])
		}
		for j := range want.Rows[i] {
			wb, gb := math.Float64bits(want.Rows[i][j]), math.Float64bits(got.Rows[i][j])
			if wb != gb {
				t.Fatalf("%s: sample %d species %s: %v (%#x) vs %v (%#x)",
					label, i, want.Names[j], want.Rows[i][j], wb, got.Rows[i][j], gb)
			}
		}
	}
}

// TestEnsembleBitIdentical pins the central contract of the SoA engine:
// every lane of a RunMany ensemble is bit-for-bit identical to a scalar
// sim.Run of the same seed, at every lane width, including width 1 (the
// degenerate block) and widths that leave a ragged final block.
func TestEnsembleBitIdentical(t *testing.T) {
	n := chainNet(t, 40) // ~90 reactions: above the Fenwick auto crossover
	base := Config{Method: SSA, Rates: Rates{Fast: 50, Slow: 1}, TEnd: 5, Unit: 40, Seed: 99}
	const runs = 6

	scalar := make([]*trace.Trace, runs)
	for i := 0; i < runs; i++ {
		cfg := base
		cfg.Seed = batch.DeriveSeed(base.Seed, i)
		tr, err := Run(context.Background(), n, cfg)
		if err != nil {
			t.Fatal(err)
		}
		scalar[i] = tr
	}

	for _, lanes := range []int{1, 4, 16} {
		ens, err := RunMany(context.Background(), n, BatchConfig{Base: base, Runs: runs, Lanes: lanes})
		if err != nil {
			t.Fatalf("lanes=%d: %v", lanes, err)
		}
		if err := ens.Err(); err != nil {
			t.Fatalf("lanes=%d: %v", lanes, err)
		}
		for i := 0; i < runs; i++ {
			tracesBitEqual(t, "lanes="+string(rune('0'+lanes))+" run", scalar[i], ens.Traces[i])
		}
	}
}

// TestEnsembleFinalsOnlyMatchesTraceMode asserts that the finals-only fast
// path changes no arithmetic: final states agree bit for bit with the
// trace-mode ensemble, which in turn agrees with scalar runs.
func TestEnsembleFinalsOnlyMatchesTraceMode(t *testing.T) {
	n := chainNet(t, 40)
	bc := BatchConfig{
		Base: Config{Method: SSA, Rates: Rates{Fast: 50, Slow: 1}, TEnd: 5, Unit: 40, Seed: 7},
		Runs: 5, Lanes: 4,
	}
	full, err := RunMany(context.Background(), n, bc)
	if err != nil {
		t.Fatal(err)
	}
	bc.FinalsOnly = true
	fin, err := RunMany(context.Background(), n, bc)
	if err != nil {
		t.Fatal(err)
	}
	if fin.Traces != nil {
		for _, tr := range fin.Traces {
			if tr != nil {
				t.Fatal("finals-only ensemble materialized a trace")
			}
		}
	}
	for i := range full.Finals {
		for j := range full.Finals[i] {
			fb, gb := math.Float64bits(full.Finals[i][j]), math.Float64bits(fin.Finals[i][j])
			if fb != gb {
				t.Fatalf("run %d species %s: trace-mode %v vs finals-only %v",
					i, full.Names[j], full.Finals[i][j], fin.Finals[i][j])
			}
		}
	}
}

// branchingNet is a supercritical birth-death process started from a single
// molecule: about half of all runs go extinct after a handful of firings
// while the survivors grow exponentially and fire tens of thousands of
// times. That spread is what makes it the ragged-retirement fixture: lanes
// of one block retire many macro passes apart.
func branchingNet(tb testing.TB) *crn.Network {
	tb.Helper()
	n := crn.NewNetwork()
	n.R("birth", map[string]int{"X": 1}, map[string]int{"X": 2}, crn.Fast)
	n.R("death", map[string]int{"X": 1}, nil, crn.Slow)
	if err := n.SetInit("X", 1); err != nil {
		tb.Fatal(err)
	}
	return n
}

// TestEnsembleRaggedRetirement runs a block whose lanes finish at wildly
// different firing counts and asserts (a) every lane still bit-matches its
// scalar reference and (b) the occupancy counters actually recorded partial
// passes (retired lanes stop consuming slots).
func TestEnsembleRaggedRetirement(t *testing.T) {
	n := branchingNet(t)
	var stats kernel.Stats
	base := Config{Method: SSA, Rates: Rates{Fast: 2, Slow: 1}, TEnd: 9, Unit: 1,
		SampleEvery: 1, Seed: 4, Kernel: &stats}
	const runs = 8
	ens, err := RunMany(context.Background(), n, BatchConfig{Base: base, Runs: runs, Lanes: runs})
	if err != nil {
		t.Fatal(err)
	}
	if err := ens.Err(); err != nil {
		t.Fatal(err)
	}
	extinct, survived := 0, 0
	xcol, _ := ens.Index("X")
	for i := 0; i < runs; i++ {
		cfg := base
		cfg.Kernel = nil
		cfg.Seed = batch.DeriveSeed(base.Seed, i)
		ref, err := Run(context.Background(), n, cfg)
		if err != nil {
			t.Fatal(err)
		}
		tracesBitEqual(t, "ragged run", ref, ens.Traces[i])
		if ens.Finals[i][xcol] == 0 {
			extinct++
		} else {
			survived++
		}
	}
	if extinct == 0 || survived == 0 {
		t.Fatalf("fixture lost its raggedness: %d extinct, %d survived (retune seeds)", extinct, survived)
	}
	if stats.EnsembleBlocks == 0 || stats.EnsemblePasses == 0 {
		t.Fatalf("ensemble counters not recorded: %+v", stats)
	}
	if stats.LaneSteps >= stats.LaneSlots {
		t.Fatalf("occupancy %.3f not < 1: lanes retired together (LaneSteps=%d LaneSlots=%d)",
			stats.Occupancy(), stats.LaneSteps, stats.LaneSlots)
	}
}

// TestRunManyWorkerInvariance asserts the worker pool changes scheduling
// only: the ensemble's results are bit-identical whether blocks run inline
// or fanned out over workers.
func TestRunManyWorkerInvariance(t *testing.T) {
	n := chainNet(t, 40)
	bc := BatchConfig{
		Base: Config{Method: SSA, Rates: Rates{Fast: 50, Slow: 1}, TEnd: 5, Unit: 40, Seed: 11},
		Runs: 6, Lanes: 2,
	}
	inline, err := RunMany(context.Background(), n, bc)
	if err != nil {
		t.Fatal(err)
	}
	bc.Workers = 3
	pooled, err := RunMany(context.Background(), n, bc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range inline.Traces {
		tracesBitEqual(t, "worker invariance", inline.Traces[i], pooled.Traces[i])
	}
}

// TestRunManyScalarFallback routes non-laneable runs (ODE, observed runs)
// through the scalar backends and checks they share the batch correctly.
func TestRunManyScalarFallback(t *testing.T) {
	n := chainNet(t, 12)
	base := Config{Rates: Rates{Fast: 50, Slow: 1}, TEnd: 2}
	ens, err := RunMany(context.Background(), n, BatchConfig{Base: base, Runs: 3})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Run(context.Background(), n, base)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		tracesBitEqual(t, "ode fallback", ref, ens.Traces[i])
	}

	// An observer disqualifies laning but the run must still execute, with
	// the observer attached.
	var col countingObserver
	calls := 0
	ens, err = RunMany(context.Background(), n, BatchConfig{
		Base: Config{Method: SSA, Rates: Rates{Fast: 50, Slow: 1}, TEnd: 2, Unit: 20, Obs: &col},
		Runs: 2,
		OnResult: func(i int, tr *trace.Trace, err error) {
			calls++
			if err != nil {
				t.Errorf("run %d: %v", i, err)
			}
			if tr == nil {
				t.Errorf("run %d: nil trace", i)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ens.Err(); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("OnResult called %d times, want 2", calls)
	}
	if col.starts != 2 || col.ends != 2 {
		t.Fatalf("observer saw %d starts / %d ends, want 2/2", col.starts, col.ends)
	}
}

// countingObserver tallies run boundaries; any observer disqualifies a run
// from the lane engine, so this also exercises the scalar fallback.
type countingObserver struct {
	obs.Base
	starts, ends int
}

func (c *countingObserver) OnSimStart(obs.SimStart) { c.starts++ }
func (c *countingObserver) OnSimEnd(obs.SimEnd)     { c.ends++ }

// TestRunManyExplicitSeeds pins the seed-selection rule: explicit Seeds win
// over derivation, and each lane uses exactly its listed seed.
func TestRunManyExplicitSeeds(t *testing.T) {
	n := chainNet(t, 40)
	base := Config{Method: SSA, Rates: Rates{Fast: 50, Slow: 1}, TEnd: 5, Unit: 40}
	seeds := []int64{3, 1, 3} // duplicates allowed: identical streams
	ens, err := RunMany(context.Background(), n, BatchConfig{Base: base, Seeds: seeds, Lanes: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range seeds {
		cfg := base
		cfg.Seed = s
		ref, err := Run(context.Background(), n, cfg)
		if err != nil {
			t.Fatal(err)
		}
		tracesBitEqual(t, "explicit seed", ref, ens.Traces[i])
	}
	tracesBitEqual(t, "duplicate seeds", ens.Traces[0], ens.Traces[2])
}

// TestRunManyCancellation asserts a cancelled context fails the batch with
// a wrapped context error and marks every unfinished run's slot.
func TestRunManyCancellation(t *testing.T) {
	n := chainNet(t, 40)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ens, err := RunMany(ctx, n, BatchConfig{
		Base: Config{Method: SSA, Rates: Rates{Fast: 50, Slow: 1}, TEnd: 5, Unit: 40},
		Runs: 4,
	})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i := 0; i < 4; i++ {
		if ens.Errs[i] == nil {
			t.Fatalf("run %d has no error after cancellation", i)
		}
	}
	if ens.OK() != 0 {
		t.Fatalf("%d runs reported OK after pre-cancelled start", ens.OK())
	}
}

// TestRunManyValidation covers the batch-level argument checks.
func TestRunManyValidation(t *testing.T) {
	n := chainNet(t, 12)
	if _, err := RunMany(context.Background(), n, BatchConfig{Base: Config{TEnd: 1}}); err == nil {
		t.Fatal("zero runs accepted")
	}
	if _, err := RunMany(context.Background(), n, BatchConfig{
		Base: Config{TEnd: 1}, Runs: 3, Seeds: []int64{1, 2},
	}); err == nil {
		t.Fatal("mismatched seed count accepted")
	}
	var cfgErr *ConfigError
	_, err := RunMany(context.Background(), n, BatchConfig{Base: Config{TEnd: -1}, Runs: 2})
	if !errors.As(err, &cfgErr) {
		t.Fatalf("err = %v, want *ConfigError", err)
	}
}

// TestRunManyMetrics checks the run-level metric families laned execution
// reports: one sim_runs_total increment per run even when runs share a
// block, plus the ensemble lane-occupancy counters.
func TestRunManyMetrics(t *testing.T) {
	n := chainNet(t, 40)
	reg := obs.NewRegistry()
	_, err := RunMany(context.Background(), n, BatchConfig{
		Base:    Config{Method: SSA, Rates: Rates{Fast: 50, Slow: 1}, TEnd: 5, Unit: 40, Seed: 5},
		Runs:    5,
		Lanes:   4,
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	sumPrefix := func(prefix string) float64 {
		total := 0.0
		for name, v := range snap {
			if name == prefix || strings.HasPrefix(name, prefix+"{") {
				total += v
			}
		}
		return total
	}
	if got := sumPrefix("sim_runs_total"); got != 5 {
		t.Fatalf("sim_runs_total = %v, want 5", got)
	}
	if got := sumPrefix("kernel_ensemble_blocks_total"); got < 2 {
		t.Fatalf("kernel_ensemble_blocks_total = %v, want >= 2 (5 runs over 4 lanes)", got)
	}
	if sumPrefix("kernel_ensemble_lane_slots_total") < sumPrefix("kernel_ensemble_lane_steps_total") {
		t.Fatalf("lane slots %v < lane steps %v", sumPrefix("kernel_ensemble_lane_slots_total"),
			sumPrefix("kernel_ensemble_lane_steps_total"))
	}
}
