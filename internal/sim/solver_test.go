package sim

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/crn"
	"repro/internal/obs"
)

// stiffNet builds a fast equilibrium A <-> B drained slowly into C — the
// textbook fast/slow structure of the paper's constructs. With the default
// Fast=100 it is mildly stiff; driving Fast up makes the explicit method's
// stability limit arbitrarily punishing while the solution stays smooth.
func stiffNet(t testing.TB) *crn.Network {
	t.Helper()
	n := crn.NewNetwork()
	n.R("fwd", map[string]int{"A": 1}, map[string]int{"B": 1}, crn.Fast)
	n.R("rev", map[string]int{"B": 1}, map[string]int{"A": 1}, crn.Fast)
	n.R("drain", map[string]int{"B": 1}, map[string]int{"C": 1}, crn.Slow)
	if err := n.SetInit("A", 1); err != nil {
		t.Fatal(err)
	}
	return n
}

// simEndCapture records the run's closing SimEnd event.
type simEndCapture struct {
	obs.Base
	end obs.SimEnd
}

func (c *simEndCapture) OnSimEnd(e obs.SimEnd) { c.end = e }

func TestParseSolver(t *testing.T) {
	cases := map[string]Solver{
		"": SolverAuto, "auto": SolverAuto, "AUTO": SolverAuto,
		"explicit": SolverExplicit, "dp5": SolverExplicit, "rk45": SolverExplicit,
		"stiff": SolverStiff, "Rosenbrock": SolverStiff, "ros23": SolverStiff, "implicit": SolverStiff,
	}
	for in, want := range cases {
		got, err := ParseSolver(in)
		if err != nil || got != want {
			t.Errorf("ParseSolver(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseSolver("bogus"); err == nil || !strings.Contains(err.Error(), "auto, explicit, stiff") {
		t.Errorf("ParseSolver(bogus) error = %v, want list of valid solvers", err)
	}
	for _, s := range Solvers() {
		back, err := ParseSolver(s.String())
		if err != nil || back != s {
			t.Errorf("round trip %v -> %q -> %v, %v", s, s.String(), back, err)
		}
	}
}

func TestConfigValidateSolver(t *testing.T) {
	fieldOf := func(err error) []string {
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Fatalf("error %v is not a *ConfigError", err)
		}
		var fs []string
		for _, f := range ce.Fields {
			fs = append(fs, f.Field)
		}
		return fs
	}
	// A forced solver on a stochastic method is a config error.
	err := Config{Method: SSA, Solver: SolverStiff, TEnd: 1, Unit: 100}.Validate()
	if err == nil {
		t.Fatal("stiff solver on SSA validated")
	}
	if fs := fieldOf(err); len(fs) != 1 || fs[0] != "Solver" {
		t.Fatalf("fields = %v, want [Solver]", fs)
	}
	// Garbage tolerances are rejected, not silently remapped to defaults.
	cfg := Config{TEnd: 1}
	cfg.ODE.RelTol = -1
	cfg.ODE.AbsTol = math.NaN()
	err = cfg.Validate()
	if err == nil {
		t.Fatal("negative RelTol validated")
	}
	got := fieldOf(err)
	want := map[string]bool{"ODE.RelTol": true, "ODE.AbsTol": true}
	for _, f := range got {
		if !want[f] {
			t.Fatalf("unexpected invalid field %q (all: %v)", f, got)
		}
		delete(want, f)
	}
	if len(want) != 0 {
		t.Fatalf("missing invalid fields %v", want)
	}
	// MinStep above MaxStep is inconsistent.
	cfg = Config{TEnd: 1}
	cfg.ODE.MinStep = 1
	cfg.ODE.MaxStep = 0.5
	if err := cfg.Validate(); err == nil {
		t.Fatal("MinStep > MaxStep validated")
	}
	// Unknown numeric solver.
	if err := (Config{TEnd: 1, Solver: Solver(17)}).Validate(); err == nil {
		t.Fatal("unknown solver validated")
	}
	// The happy path still validates.
	if err := (Config{TEnd: 1, Solver: SolverStiff}).Validate(); err != nil {
		t.Fatalf("stiff ODE config rejected: %v", err)
	}
}

// TestSolverEquivalence pins explicit-vs-stiff agreement on the fast/slow
// network at default tolerances: same final state within 10x RelTol.
func TestSolverEquivalence(t *testing.T) {
	n := stiffNet(t)
	finals := map[Solver][]float64{}
	for _, s := range []Solver{SolverExplicit, SolverStiff, SolverAuto} {
		tr, err := Run(context.Background(), n, Config{
			Method: ODE, Solver: s, TEnd: 20, Rates: Rates{Fast: 1000, Slow: 1},
		})
		if err != nil {
			t.Fatalf("solver %v: %v", s, err)
		}
		finals[s] = tr.Rows[len(tr.Rows)-1]
	}
	relTol := 1e-6 // the documented default
	for _, s := range []Solver{SolverStiff, SolverAuto} {
		for i := range finals[s] {
			ref := finals[SolverExplicit][i]
			if diff := math.Abs(finals[s][i] - ref); diff > 10*relTol*(1+math.Abs(ref)) {
				t.Errorf("solver %v species %d: %g vs explicit %g (|Δ|=%g)",
					s, i, finals[s][i], ref, diff)
			}
		}
	}
}

// TestSolverStiffStats checks the ODEStats transport: a forced stiff run
// reports its solver and nonzero Jacobian/factorization effort on SimEnd.
func TestSolverStiffStats(t *testing.T) {
	n := stiffNet(t)
	var capt simEndCapture
	_, err := Run(context.Background(), n, Config{
		Method: ODE, Solver: SolverStiff, TEnd: 20,
		Rates: Rates{Fast: 1000, Slow: 1}, Obs: &capt,
	})
	if err != nil {
		t.Fatal(err)
	}
	od := capt.end.ODE
	if od.Solver != "stiff" || od.Switched || od.StiffSteps == 0 ||
		od.JacEvals == 0 || od.Factorizations == 0 || od.Solves == 0 {
		t.Fatalf("stiff ODEStats = %+v", od)
	}
	if capt.end.Sim != "ode" || capt.end.T != 20 {
		t.Fatalf("SimEnd = %+v", capt.end)
	}
}

// TestSolverAutoSwitches drives the auto path into its stiffness handoff on
// a harshly stiff network and checks the decision is observable.
func TestSolverAutoSwitches(t *testing.T) {
	n := stiffNet(t)
	var capt simEndCapture
	tr, err := Run(context.Background(), n, Config{
		Method: ODE, TEnd: 50, Rates: Rates{Fast: 2e5, Slow: 1}, Obs: &capt,
	})
	if err != nil {
		t.Fatal(err)
	}
	od := capt.end.ODE
	if od.Solver != "auto" {
		t.Fatalf("solver = %q, want auto", od.Solver)
	}
	if !od.Switched {
		t.Fatalf("auto run never switched on Fast=2e5: %+v", od)
	}
	if od.SwitchT <= 0 || od.SwitchT >= 50 {
		t.Fatalf("switch at t=%g, want inside (0, 50)", od.SwitchT)
	}
	if od.StiffSteps == 0 || od.JacEvals == 0 {
		t.Fatalf("stiff effort not recorded: %+v", od)
	}
	if got := tr.End(); got != 50 {
		t.Fatalf("trace ends at %g, want 50", got)
	}
	// Conservation: A+B+C is invariant; the handoff must not leak mass.
	last := tr.Rows[len(tr.Rows)-1]
	if total := last[0] + last[1] + last[2]; math.Abs(total-1) > 1e-4 {
		t.Fatalf("mass not conserved across handoff: %g", total)
	}
	// Everything should have drained to C by t=50.
	if last[2] < 0.99 {
		t.Fatalf("C(50) = %g, want ~1", last[2])
	}
}

// TestSolverExplicitUnchanged pins that a forced explicit run reports no
// stiff machinery: the pre-solver behaviour is fully preserved.
func TestSolverExplicitUnchanged(t *testing.T) {
	n := stiffNet(t)
	var capt simEndCapture
	_, err := Run(context.Background(), n, Config{
		Method: ODE, Solver: SolverExplicit, TEnd: 5, Obs: &capt,
	})
	if err != nil {
		t.Fatal(err)
	}
	od := capt.end.ODE
	if od.Solver != "explicit" || od.Switched || od.StiffSteps != 0 ||
		od.JacEvals != 0 || od.Factorizations != 0 || od.Solves != 0 {
		t.Fatalf("explicit ODEStats = %+v", od)
	}
}
