package modules

import (
	"context"
	"math"
	"testing"

	"repro/internal/crn"
	"repro/internal/sim"
)

func TestMaxEqualInputs(t *testing.T) {
	n := crn.NewNetwork()
	if err := n.SetInit("A", 0.9); err != nil {
		t.Fatal(err)
	}
	if err := n.SetInit("B", 0.9); err != nil {
		t.Fatal(err)
	}
	if err := Max(n, "mx", "A", "B", "MX"); err != nil {
		t.Fatal(err)
	}
	final := runToCompletion(t, n, 60)
	if got := final("MX"); math.Abs(got-0.9) > 0.02 {
		t.Fatalf("max of equal inputs = %g, want 0.9", got)
	}
}

func TestMinEqualInputs(t *testing.T) {
	n := crn.NewNetwork()
	if err := n.SetInit("A", 0.4); err != nil {
		t.Fatal(err)
	}
	if err := n.SetInit("B", 0.4); err != nil {
		t.Fatal(err)
	}
	if err := Min(n, "A", "B", "MN"); err != nil {
		t.Fatal(err)
	}
	final := runToCompletion(t, n, 60)
	if got := final("MN"); math.Abs(got-0.4) > 0.02 {
		t.Fatalf("min of equal inputs = %g, want 0.4", got)
	}
}

func TestSubtractZeroInputs(t *testing.T) {
	n := crn.NewNetwork()
	if err := Subtract(n, "sub", "A", "B", "D"); err != nil {
		t.Fatal(err)
	}
	final := runToCompletion(t, n, 10)
	if got := final("D"); got != 0 {
		t.Fatalf("0-0 = %g", got)
	}
}

func TestMultiplyByOne(t *testing.T) {
	n := crn.NewNetwork()
	if err := n.SetInit("X", 0.6); err != nil {
		t.Fatal(err)
	}
	if err := n.SetInit("Y", 1); err != nil {
		t.Fatal(err)
	}
	m, err := Multiply(n, "mul", "X", "Y", "Z")
	if err != nil {
		t.Fatal(err)
	}
	final := runToCompletion(t, n, 150)
	if got := final("Z"); math.Abs(got-0.6) > 0.04 {
		t.Fatalf("X*1 = %g, want 0.6", got)
	}
	if got := final(m.Done); got < 0.9 {
		t.Fatalf("Done = %g", got)
	}
}

func TestMultiplyZeroX(t *testing.T) {
	n := crn.NewNetwork()
	if err := n.SetInit("Y", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := Multiply(n, "mul", "X", "Y", "Z"); err != nil {
		t.Fatal(err)
	}
	final := runToCompletion(t, n, 300)
	if got := final("Z"); got > 0.01 {
		t.Fatalf("0*3 = %g", got)
	}
	// Y is still consumed by the idle loop.
	if got := final("Y"); got > 0.05 {
		t.Fatalf("Y residue = %g", got)
	}
}

func TestMultiplyRateIndependence(t *testing.T) {
	// Same product at two very different fast rates.
	results := make([]float64, 0, 2)
	for _, fast := range []float64{300, 3000} {
		n := crn.NewNetwork()
		if err := n.SetInit("X", 1.2); err != nil {
			t.Fatal(err)
		}
		if err := n.SetInit("Y", 2); err != nil {
			t.Fatal(err)
		}
		if _, err := Multiply(n, "mul", "X", "Y", "Z"); err != nil {
			t.Fatal(err)
		}
		tr, err := sim.Run(context.Background(), n, sim.Config{Rates: sim.Rates{Fast: fast, Slow: 1}, TEnd: 200})
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, tr.Final("Z"))
	}
	if math.Abs(results[0]-results[1]) > 0.05 {
		t.Fatalf("product depends on rates: %v", results)
	}
	if math.Abs(results[1]-2.4) > 0.08 {
		t.Fatalf("Z = %g, want 2.4", results[1])
	}
}

func TestCompareSSA(t *testing.T) {
	// The comparator also works stochastically at modest counts.
	n := crn.NewNetwork()
	if err := n.SetInit("A", 2); err != nil {
		t.Fatal(err)
	}
	if err := n.SetInit("B", 0.5); err != nil {
		t.Fatal(err)
	}
	c, err := Compare(n, "cmp", "A", "B")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(context.Background(), n, sim.Config{Method: sim.SSA,
		Rates: sim.Rates{Fast: 1000, Slow: 1}, TEnd: 60, Unit: 40, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Final(c.GT); got < 0.8 {
		t.Fatalf("SSA GT = %g, want ~1", got)
	}
}

func TestScaleChainedHalvings(t *testing.T) {
	// 1/8 via three exact halvings (what the synthesizer emits for q=8).
	n := crn.NewNetwork()
	if err := n.SetInit("X", 2); err != nil {
		t.Fatal(err)
	}
	if err := Scale(n, "X", "H1", 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := Scale(n, "H1", "H2", 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := Scale(n, "H2", "Y", 1, 2); err != nil {
		t.Fatal(err)
	}
	final := runToCompletion(t, n, 300)
	if got := final("Y"); math.Abs(got-0.25) > 0.02 {
		t.Fatalf("2/8 = %g, want 0.25", got)
	}
}
