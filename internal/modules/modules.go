// Package modules provides the rate-independent combinational ("memoryless")
// arithmetic constructs the DAC 2011 paper builds its datapaths from,
// following the style of the group's prior work (Jiang/Kharam/Riedel/Parhi
// ICCAD'10; Senum/Riedel PSB'11): every module computes an exact function of
// the *quantities* of its input species using only the fast/slow rate
// dichotomy.
//
// Modules are one-shot: inputs are consumed and the result appears in the
// output species once the reactions run to completion. Inside a clocked
// circuit (package core) the simple linear modules (add, scale, fanout) are
// expressed directly as compute reactions; the standalone forms here exist
// for composing free-running computations and for testing the constructs in
// isolation. The iterative multiplier carries its own phases.Scheme, the
// same machinery that sequences the paper's delay elements.
package modules

import (
	"fmt"

	"repro/internal/crn"
	"repro/internal/phases"
)

// AddInto wires each input species to the output: out receives the sum of
// all input quantities (A → out, B → out, ...).
func AddInto(n *crn.Network, out string, inputs ...string) error {
	if len(inputs) == 0 {
		return fmt.Errorf("modules: add needs at least one input")
	}
	n.AddSpecies(out)
	for _, in := range inputs {
		if err := n.AddReaction("add."+in+"."+out,
			map[string]int{in: 1}, map[string]int{out: 1}, crn.Fast, 1); err != nil {
			return err
		}
	}
	return nil
}

// Scale computes out = (p/q)·X by the order-q reaction qX → p·out. Exact on
// quantities: every q units of X become p units of out.
func Scale(n *crn.Network, x, out string, p, q int) error {
	if p < 1 || q < 1 {
		return fmt.Errorf("modules: scale %d/%d must have positive terms", p, q)
	}
	n.AddSpecies(out)
	return n.AddReaction(fmt.Sprintf("scale.%s.%d_%d", x, p, q),
		map[string]int{x: q}, map[string]int{out: p}, crn.Fast, 1)
}

// Duplicate fans the quantity of X out to every destination: X → d1 + d2 + ...
// (each destination receives the full value).
func Duplicate(n *crn.Network, x string, dsts ...string) error {
	if len(dsts) == 0 {
		return fmt.Errorf("modules: duplicate needs at least one destination")
	}
	prods := map[string]int{}
	for _, d := range dsts {
		n.AddSpecies(d)
		prods[d]++
	}
	return n.AddReaction("dup."+x, map[string]int{x: 1}, prods, crn.Fast, 1)
}

// Subtract computes out = max(0, A − B): A transfers into out while B arms
// an annihilator that cancels out one-for-one. If B > A the excess remains
// in the internal species ns.neg.
func Subtract(n *crn.Network, ns, a, b, out string) error {
	neg := ns + ".neg"
	n.AddSpecies(out)
	n.AddSpecies(neg)
	if err := n.AddReaction(ns+".pos", map[string]int{a: 1}, map[string]int{out: 1}, crn.Fast, 1); err != nil {
		return err
	}
	if err := n.AddReaction(ns+".arm", map[string]int{b: 1}, map[string]int{neg: 1}, crn.Fast, 1); err != nil {
		return err
	}
	return n.AddReaction(ns+".cancel", map[string]int{out: 1, neg: 1}, nil, crn.Fast, 1)
}

// Min computes out = min(A, B) by direct pairing: A + B → out. The excess of
// the larger input remains in its input species.
func Min(n *crn.Network, a, b, out string) error {
	n.AddSpecies(out)
	return n.AddReaction("min."+a+"."+b,
		map[string]int{a: 1, b: 1}, map[string]int{out: 1}, crn.Fast, 1)
}

// Max computes out = max(A, B): both inputs pour into out while shadow
// copies pair up to remove min(A, B) again (max = A + B − min).
func Max(n *crn.Network, ns, a, b, out string) error {
	sa, sb, pair := ns+".sa", ns+".sb", ns+".pair"
	n.AddSpecies(out)
	for _, sp := range []string{sa, sb, pair} {
		n.AddSpecies(sp)
	}
	if err := n.AddReaction(ns+".a", map[string]int{a: 1}, map[string]int{out: 1, sa: 1}, crn.Fast, 1); err != nil {
		return err
	}
	if err := n.AddReaction(ns+".b", map[string]int{b: 1}, map[string]int{out: 1, sb: 1}, crn.Fast, 1); err != nil {
		return err
	}
	if err := n.AddReaction(ns+".pairup", map[string]int{sa: 1, sb: 1}, map[string]int{pair: 1}, crn.Fast, 1); err != nil {
		return err
	}
	return n.AddReaction(ns+".cancel", map[string]int{pair: 1, out: 1}, nil, crn.Fast, 1)
}

// Comparator is the species triple produced by Compare. After the reactions
// settle, GT holds (approximately) the fraction of the decision token that
// observed A > B, LT the fraction for B > A; for equal inputs the token
// remains in Rem.
type Comparator struct {
	GT  string
	LT  string
	Rem string
}

// Compare builds a comparator for the quantities of A and B. The two inputs
// annihilate pairwise at fast rate; the surviving excess then steers a
// one-unit decision token at slow rate (slow so that the annihilation
// transient, which has both species present, steals only O(kslow/kfast) of
// the token). Near-equal inputs split the token — the module reports a
// confidence, not a clean bit, which is inherent to rate-independent
// comparison of analog quantities.
func Compare(n *crn.Network, ns, a, b string) (Comparator, error) {
	c := Comparator{GT: ns + ".gt", LT: ns + ".lt", Rem: ns + ".tok"}
	for _, sp := range []string{c.GT, c.LT, c.Rem} {
		n.AddSpecies(sp)
	}
	if err := n.SetInit(c.Rem, 1); err != nil {
		return c, err
	}
	if err := n.AddReaction(ns+".annihilate", map[string]int{a: 1, b: 1}, nil, crn.Fast, 1); err != nil {
		return c, err
	}
	if err := n.AddReaction(ns+".decideA",
		map[string]int{a: 1, c.Rem: 1}, map[string]int{a: 1, c.GT: 1}, crn.Slow, 1); err != nil {
		return c, err
	}
	if err := n.AddReaction(ns+".decideB",
		map[string]int{b: 1, c.Rem: 1}, map[string]int{b: 1, c.LT: 1}, crn.Slow, 1); err != nil {
		return c, err
	}
	return c, nil
}

// Multiplier is the handle returned by Multiply.
type Multiplier struct {
	X    string // multiplicand input (any non-negative quantity)
	Y    string // multiplier input (integer number of units)
	Z    string // product accumulator: Z → X·Y
	Done string // termination flag (≈1 unit when the loop has exited)
}

// Multiply builds the iterative rate-independent multiplier Z = X·Y in the
// spirit of the Senum–Riedel looping constructs: a one-unit token cycles
// through the tri-phase discipline; each cycle it pairs with — and thereby
// removes — exactly one unit of Y, and its passage through the green phase
// catalyses a full transfer of X to the next colour that deposits one copy
// of X into Z. When Y is exhausted, the Y-absence indicator diverts the
// token to Done, which parks X and halts the loop. Y must be a non-negative
// integer number of units for an exact product; the loop runs Y cycles, so
// completion time is proportional to Y.
func Multiply(n *crn.Network, ns, x, y, z string) (Multiplier, error) {
	m := Multiplier{X: x, Y: y, Z: z, Done: ns + ".done"}
	s := phases.NewScheme(n, ns+".ph")

	tr, tg, tb := ns+".Tr", ns+".Tg", ns+".Tb"
	xr, xg, xb := ns+".Xr", ns+".Xg", ns+".Xb"
	xoff := ns + ".Xoff"
	yab := ns + ".yab"
	for _, sp := range []string{z, xoff, yab, m.Done} {
		n.AddSpecies(sp)
	}
	if err := s.AddMember(phases.Red, tr); err != nil {
		return m, err
	}
	if err := s.AddMember(phases.Green, tg); err != nil {
		return m, err
	}
	if err := s.AddMember(phases.Blue, tb); err != nil {
		return m, err
	}
	if err := s.AddMember(phases.Red, xr); err != nil {
		return m, err
	}
	if err := s.AddMember(phases.Green, xg); err != nil {
		return m, err
	}
	if err := s.AddMember(phases.Blue, xb); err != nil {
		return m, err
	}
	// Gated hand-offs for green→blue and blue→red; the red→green step is
	// the decision/duplication logic below.
	if err := s.AddTransfer(ns+".tgb", tg, map[string]int{tb: 1}); err != nil {
		return m, err
	}
	if err := s.AddTransfer(ns+".tbr", tb, map[string]int{tr: 1}); err != nil {
		return m, err
	}
	if err := s.AddTransfer(ns+".xgb", xg, map[string]int{xb: 1}); err != nil {
		return m, err
	}
	if err := s.AddTransfer(ns+".xbr", xb, map[string]int{xr: 1}); err != nil {
		return m, err
	}
	if err := s.Build(); err != nil {
		return m, err
	}

	// Y-absence indicator: accumulates only while Y is exhausted.
	if err := n.AddReaction(ns+".yab.gen", nil, map[string]int{yab: 1}, crn.Slow, 1); err != nil {
		return m, err
	}
	if err := n.AddReaction(ns+".yab.absorb",
		map[string]int{yab: 1, y: 1}, map[string]int{y: 1}, crn.Fast, 1); err != nil {
		return m, err
	}
	// Decision: the red token either pairs with one unit of Y (hit, moving
	// to green) or, if Y is absent, is diverted to Done.
	if err := n.AddReaction(ns+".hit",
		map[string]int{tr: 1, y: 1}, map[string]int{tg: 1}, crn.Fast, 1); err != nil {
		return m, err
	}
	// The miss reaction is in the slow category: while Y is present the
	// indicator sits at its tiny quasi-steady level kslow/(kfast·Y) and a
	// fast miss reaction would bleed a few percent of the token into Done
	// every cycle. Slow, the bleed is second order in kslow/kfast; after Y
	// runs out the indicator grows to order 1 and the miss still completes
	// within a few slow time units.
	if err := n.AddReaction(ns+".miss",
		map[string]int{tr: 1, yab: 1}, map[string]int{m.Done: 1}, crn.Slow, 1); err != nil {
		return m, err
	}
	// Duplication: a green token catalyses the transfer of the red X into
	// the green X while depositing one copy into Z.
	if err := n.AddReaction(ns+".dup",
		map[string]int{xr: 1, tg: 1}, map[string]int{xg: 1, z: 1, tg: 1}, crn.Fast, 1); err != nil {
		return m, err
	}
	// Termination: Done parks the remaining X out of the colour system so
	// the phases can drain and the construct goes quiescent.
	if err := n.AddReaction(ns+".park",
		map[string]int{xr: 1, m.Done: 1}, map[string]int{xoff: 1, m.Done: 1}, crn.Fast, 1); err != nil {
		return m, err
	}

	// Inputs: the loop starts with the token red and X red.
	if err := n.AddReaction(ns+".loadx", map[string]int{x: 1}, map[string]int{xr: 1}, crn.Fast, 1); err != nil {
		return m, err
	}
	if err := n.SetInit(tr, 1); err != nil {
		return m, err
	}
	return m, nil
}
