package modules

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/crn"
	"repro/internal/sim"
)

// runToCompletion simulates a one-shot module network deterministically.
func runToCompletion(t *testing.T, n *crn.Network, tEnd float64) func(name string) float64 {
	t.Helper()
	tr, err := sim.Run(context.Background(), n, sim.Config{Rates: sim.Rates{Fast: 1000, Slow: 1}, TEnd: tEnd})
	if err != nil {
		t.Fatal(err)
	}
	return tr.Final
}

func TestAddInto(t *testing.T) {
	n := crn.NewNetwork()
	if err := n.SetInit("A", 0.7); err != nil {
		t.Fatal(err)
	}
	if err := n.SetInit("B", 0.55); err != nil {
		t.Fatal(err)
	}
	if err := n.SetInit("C", 0.25); err != nil {
		t.Fatal(err)
	}
	if err := AddInto(n, "S", "A", "B", "C"); err != nil {
		t.Fatal(err)
	}
	final := runToCompletion(t, n, 1)
	if got := final("S"); math.Abs(got-1.5) > 1e-3 {
		t.Fatalf("S = %g, want 1.5", got)
	}
	if err := AddInto(n, "S"); err == nil {
		t.Fatal("empty add accepted")
	}
}

func TestScale(t *testing.T) {
	cases := []struct {
		p, q int
		x    float64
		want float64
	}{
		{1, 2, 1.0, 0.5},
		{3, 2, 1.0, 1.5},
		{2, 1, 0.7, 1.4},
		{1, 4, 2.0, 0.5},
	}
	for _, c := range cases {
		n := crn.NewNetwork()
		if err := n.SetInit("X", c.x); err != nil {
			t.Fatal(err)
		}
		if err := Scale(n, "X", "Y", c.p, c.q); err != nil {
			t.Fatal(err)
		}
		// High-order tails converge slowly (the last fraction of X decays
		// algebraically), so allow more time for q > 1.
		final := runToCompletion(t, n, 50*float64(c.q))
		if got := final("Y"); math.Abs(got-c.want) > 0.02 {
			t.Fatalf("scale %d/%d of %g = %g, want %g", c.p, c.q, c.x, got, c.want)
		}
	}
	n := crn.NewNetwork()
	if err := Scale(n, "X", "Y", 0, 1); err == nil {
		t.Fatal("zero numerator accepted")
	}
}

func TestDuplicate(t *testing.T) {
	n := crn.NewNetwork()
	if err := n.SetInit("X", 0.8); err != nil {
		t.Fatal(err)
	}
	if err := Duplicate(n, "X", "C1", "C2", "C3"); err != nil {
		t.Fatal(err)
	}
	final := runToCompletion(t, n, 1)
	for _, sp := range []string{"C1", "C2", "C3"} {
		if got := final(sp); math.Abs(got-0.8) > 1e-3 {
			t.Fatalf("%s = %g, want 0.8", sp, got)
		}
	}
	if err := Duplicate(n, "X"); err == nil {
		t.Fatal("empty duplicate accepted")
	}
}

func TestSubtract(t *testing.T) {
	n := crn.NewNetwork()
	if err := n.SetInit("A", 1.5); err != nil {
		t.Fatal(err)
	}
	if err := n.SetInit("B", 0.6); err != nil {
		t.Fatal(err)
	}
	if err := Subtract(n, "sub", "A", "B", "D"); err != nil {
		t.Fatal(err)
	}
	final := runToCompletion(t, n, 30)
	if got := final("D"); math.Abs(got-0.9) > 0.01 {
		t.Fatalf("A-B = %g, want 0.9", got)
	}
}

func TestSubtractClampsAtZero(t *testing.T) {
	n := crn.NewNetwork()
	if err := n.SetInit("A", 0.4); err != nil {
		t.Fatal(err)
	}
	if err := n.SetInit("B", 1.0); err != nil {
		t.Fatal(err)
	}
	if err := Subtract(n, "sub", "A", "B", "D"); err != nil {
		t.Fatal(err)
	}
	final := runToCompletion(t, n, 30)
	if got := final("D"); got > 0.02 {
		t.Fatalf("A-B = %g, want ~0 (clamped)", got)
	}
	if got := final("sub.neg"); math.Abs(got-0.6) > 0.02 {
		t.Fatalf("excess = %g, want 0.6", got)
	}
}

func TestMinMax(t *testing.T) {
	n := crn.NewNetwork()
	if err := n.SetInit("A", 1.2); err != nil {
		t.Fatal(err)
	}
	if err := n.SetInit("B", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := Min(n, "A", "B", "MN"); err != nil {
		t.Fatal(err)
	}
	final := runToCompletion(t, n, 30)
	if got := final("MN"); math.Abs(got-0.5) > 0.01 {
		t.Fatalf("min = %g, want 0.5", got)
	}

	n2 := crn.NewNetwork()
	if err := n2.SetInit("A", 1.2); err != nil {
		t.Fatal(err)
	}
	if err := n2.SetInit("B", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := Max(n2, "mx", "A", "B", "MX"); err != nil {
		t.Fatal(err)
	}
	final2 := runToCompletion(t, n2, 60)
	if got := final2("MX"); math.Abs(got-1.2) > 0.02 {
		t.Fatalf("max = %g, want 1.2", got)
	}
}

func TestCompareGreater(t *testing.T) {
	n := crn.NewNetwork()
	if err := n.SetInit("A", 1.5); err != nil {
		t.Fatal(err)
	}
	if err := n.SetInit("B", 0.5); err != nil {
		t.Fatal(err)
	}
	c, err := Compare(n, "cmp", "A", "B")
	if err != nil {
		t.Fatal(err)
	}
	final := runToCompletion(t, n, 60)
	if got := final(c.GT); got < 0.95 {
		t.Fatalf("GT = %g, want ~1", got)
	}
	if got := final(c.LT); got > 0.05 {
		t.Fatalf("LT = %g, want ~0", got)
	}
}

func TestCompareLess(t *testing.T) {
	n := crn.NewNetwork()
	if err := n.SetInit("A", 0.3); err != nil {
		t.Fatal(err)
	}
	if err := n.SetInit("B", 1.1); err != nil {
		t.Fatal(err)
	}
	c, err := Compare(n, "cmp", "A", "B")
	if err != nil {
		t.Fatal(err)
	}
	final := runToCompletion(t, n, 60)
	if got := final(c.LT); got < 0.95 {
		t.Fatalf("LT = %g, want ~1", got)
	}
}

func TestCompareEqualKeepsToken(t *testing.T) {
	n := crn.NewNetwork()
	if err := n.SetInit("A", 0.8); err != nil {
		t.Fatal(err)
	}
	if err := n.SetInit("B", 0.8); err != nil {
		t.Fatal(err)
	}
	c, err := Compare(n, "cmp", "A", "B")
	if err != nil {
		t.Fatal(err)
	}
	final := runToCompletion(t, n, 60)
	if got := final(c.Rem); got < 0.9 {
		t.Fatalf("Rem = %g, want ~1 (equal inputs leave the token)", got)
	}
}

func TestMultiplyBasic(t *testing.T) {
	n := crn.NewNetwork()
	if err := n.SetInit("X", 0.8); err != nil {
		t.Fatal(err)
	}
	if err := n.SetInit("Y", 3); err != nil {
		t.Fatal(err)
	}
	m, err := Multiply(n, "mul", "X", "Y", "Z")
	if err != nil {
		t.Fatal(err)
	}
	final := runToCompletion(t, n, 250)
	if got := final("Z"); math.Abs(got-2.4) > 0.1 {
		t.Fatalf("Z = %g, want 2.4", got)
	}
	if got := final(m.Done); got < 0.9 {
		t.Fatalf("Done = %g, want ~1", got)
	}
	if got := final("Y"); got > 0.05 {
		t.Fatalf("Y residue = %g", got)
	}
}

func TestMultiplyByZero(t *testing.T) {
	n := crn.NewNetwork()
	if err := n.SetInit("X", 1.3); err != nil {
		t.Fatal(err)
	}
	m, err := Multiply(n, "mul", "X", "Y", "Z")
	if err != nil {
		t.Fatal(err)
	}
	final := runToCompletion(t, n, 60)
	if got := final("Z"); got > 0.05 {
		t.Fatalf("Z = %g, want 0", got)
	}
	if got := final(m.Done); got < 0.9 {
		t.Fatalf("Done = %g, want ~1", got)
	}
	// X parked, not lost.
	if got := final("mul.Xoff"); math.Abs(got-1.3) > 0.05 {
		t.Fatalf("parked X = %g, want 1.3", got)
	}
}

func TestMultiplyLarger(t *testing.T) {
	n := crn.NewNetwork()
	if err := n.SetInit("X", 1.5); err != nil {
		t.Fatal(err)
	}
	if err := n.SetInit("Y", 5); err != nil {
		t.Fatal(err)
	}
	if _, err := Multiply(n, "mul", "X", "Y", "Z"); err != nil {
		t.Fatal(err)
	}
	final := runToCompletion(t, n, 400)
	if got := final("Z"); math.Abs(got-7.5) > 0.3 {
		t.Fatalf("Z = %g, want 7.5", got)
	}
}

// Property: the multiplier is exact (within tolerance) for random integer
// multipliers and random multiplicands — and independent of the fast rate.
func TestQuickMultiply(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy property test")
	}
	prop := func(xRaw, yRaw, rRaw uint8) bool {
		x := 0.5 + float64(xRaw)/256 // 0.5 .. 1.5
		y := float64(1 + int(yRaw)%3)
		ratio := 600 + float64(rRaw)*3
		n := crn.NewNetwork()
		if err := n.SetInit("X", x); err != nil {
			return false
		}
		if err := n.SetInit("Y", y); err != nil {
			return false
		}
		if _, err := Multiply(n, "mul", "X", "Y", "Z"); err != nil {
			return false
		}
		tr, err := sim.Run(context.Background(), n, sim.Config{Rates: sim.Rates{Fast: ratio, Slow: 1}, TEnd: 100 + 90*y})
		if err != nil {
			return false
		}
		got := tr.Final("Z")
		return math.Abs(got-x*y) < 0.05*(1+x*y)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}
