package batch_test

import (
	"context"
	"errors"
	"repro/internal/batch"
	"sync"
	"testing"
	"time"
)

// TestGoCompletes: a batch.Handle over a trivial job set drains, reports full
// progress and yields the same batch.Report shape as a synchronous batch.Run.
func TestGoCompletes(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	h := batch.Go(context.Background(), 16, func(ctx context.Context, p batch.Point) error {
		mu.Lock()
		seen[p.Index] = true
		mu.Unlock()
		return nil
	}, batch.Options{Workers: 4})
	rep, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 16 || len(seen) != 16 {
		t.Fatalf("completed %d, seen %d; want 16", rep.Completed, len(seen))
	}
	c, f, total := h.Progress()
	if c != 16 || f != 0 || total != 16 {
		t.Fatalf("progress = %d/%d/%d, want 16/0/16", c, f, total)
	}
	if _, _, ok := h.Poll(); !ok {
		t.Fatal("Poll not ready after Wait")
	}
}

// TestGoCancel: Cancel interrupts in-flight jobs through their context and
// the cause surfaces in the pool error.
func TestGoCancel(t *testing.T) {
	cause := errors.New("operator said stop")
	started := make(chan struct{})
	var once sync.Once
	h := batch.Go(context.Background(), 64, func(ctx context.Context, p batch.Point) error {
		once.Do(func() { close(started) })
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(30 * time.Second):
			return errors.New("job outlived the test")
		}
	}, batch.Options{Workers: 2})
	<-started
	if _, _, ok := h.Poll(); ok {
		t.Fatal("Poll ready while jobs still blocked")
	}
	h.Cancel(cause)
	rep, err := h.Wait()
	if err == nil {
		t.Fatal("canceled batch reported success")
	}
	if !errors.Is(err, cause) {
		t.Fatalf("error %v does not wrap the cancellation cause", err)
	}
	if rep.Completed+rep.Skipped+len(rep.Errors) != 64 {
		t.Fatalf("report does not account for all jobs: %+v", rep)
	}
}

// TestGoProgressCountsFailures: failed jobs land in the failed counter, not
// the completed one.
func TestGoProgressCountsFailures(t *testing.T) {
	h := batch.Go(context.Background(), 10, func(ctx context.Context, p batch.Point) error {
		if p.Index%2 == 1 {
			return errors.New("odd job fails")
		}
		return nil
	}, batch.Options{Workers: 2, Policy: batch.CollectAll})
	rep, err := h.Wait()
	if err == nil {
		t.Fatal("failures not reported")
	}
	c, f, total := h.Progress()
	if c != 5 || f != 5 || total != 10 {
		t.Fatalf("progress = %d/%d/%d, want 5/5/10", c, f, total)
	}
	if rep.Completed != 5 || len(rep.Errors) != 5 {
		t.Fatalf("report %+v inconsistent with progress", rep)
	}
}
