package batch

import (
	"context"
	"sync/atomic"
)

// Handle tracks a batch launched asynchronously with Go: live progress from
// atomic counters, cooperative cancellation, and the final Report once the
// pool drains. It is the reuse point for callers that keep a batch running
// while serving other work — cmd/crnserved's job store holds one Handle per
// accepted sweep job and answers status polls from it without blocking.
//
// All methods are safe for concurrent use.
type Handle struct {
	total     int
	completed atomic.Int64
	failed    atomic.Int64

	cancel context.CancelCauseFunc
	done   chan struct{}

	// rep and err are written exactly once, before done is closed, and read
	// only after Done() fires (Wait/Poll enforce this ordering).
	rep *Report
	err error
}

// Go launches Run(ctx, jobs, fn, opts) on a new goroutine and returns a
// Handle immediately. The pool observes cancellation from both ctx and
// Handle.Cancel; completed/failed counts are maintained around fn, so
// Progress is accurate even while workers are mid-job.
func Go(ctx context.Context, jobs int, fn Func, opts Options) *Handle {
	if ctx == nil {
		ctx = context.Background()
	}
	runCtx, cancel := context.WithCancelCause(ctx)
	h := &Handle{total: jobs, cancel: cancel, done: make(chan struct{})}
	counted := func(ctx context.Context, p Point) error {
		err := fn(ctx, p)
		if err != nil {
			h.failed.Add(1)
		} else {
			h.completed.Add(1)
		}
		return err
	}
	go func() {
		defer close(h.done)
		h.rep, h.err = Run(runCtx, jobs, counted, opts)
		cancel(nil)
	}()
	return h
}

// Progress returns the jobs finished so far (successes and failures
// separately) and the total submitted. Skipped jobs — never started because
// the pool was canceled — count toward neither until the Report is available.
func (h *Handle) Progress() (completed, failed, total int) {
	return int(h.completed.Load()), int(h.failed.Load()), h.total
}

// Cancel asks the pool to stop: in-flight jobs are interrupted through their
// context and queued jobs are skipped. cause (may be nil) becomes the
// cancellation cause reported by the pool error. Cancel does not block; use
// Wait or Done to observe the drain.
func (h *Handle) Cancel(cause error) { h.cancel(cause) }

// Done returns a channel closed once the pool has drained and the Report is
// available.
func (h *Handle) Done() <-chan struct{} { return h.done }

// Wait blocks until the pool drains and returns the final Report and error,
// exactly as Run would have.
func (h *Handle) Wait() (*Report, error) {
	<-h.done
	return h.rep, h.err
}

// Poll returns the final Report and error if the batch has drained, or
// (nil, nil, false) while it is still running.
func (h *Handle) Poll() (*Report, error, bool) {
	select {
	case <-h.done:
		return h.rep, h.err, true
	default:
		return nil, nil, false
	}
}
