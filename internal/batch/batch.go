// Package batch is a worker-pool execution engine for simulation sweeps and
// ensembles. It fans a fixed-size job set — typically one simulation per
// (network, rates, seed, method, horizon) grid point — across a bounded pool
// of goroutines while keeping the results bit-identical to a sequential run:
//
//   - per-job seeds come from DeriveSeed, a pure function of (base seed, job
//     index), so they do not depend on worker count or scheduling;
//   - Map stores each result at its job index, so output order is the
//     submission order no matter which worker finished first;
//   - instrumentation goes to per-worker registry shards that are merged
//     after the pool drains, so the observer hot path never contends on a
//     shared registry.
//
// Cancellation is cooperative through context.Context: the pool context is
// checked before every job, per-job deadlines come from Options.JobTimeout,
// and the simulators poll their context inside their step loops, so a
// canceled batch drains promptly instead of finishing in-flight horizons.
package batch

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/proc"
	"repro/internal/obs/span"
)

// Point identifies one job handed to a Func: its index in the job set, the
// worker executing it, the seed derived for it, and the per-job observer
// (nil unless Options.Metrics is set). Obs is freshly created for every job
// and writes to the executing worker's registry shard, so the Func may pass
// it straight into a simulator config without any locking concerns.
type Point struct {
	Index  int
	Worker int
	Seed   int64
	Obs    obs.Observer
}

// Func executes one job. The context carries pool cancellation and the
// per-job deadline; implementations should hand it to Run/Integrate so a
// canceled batch stops mid-simulation. A panic in a Func is recovered and
// reported as that job's error; the worker survives.
type Func func(ctx context.Context, p Point) error

// Policy selects how the pool reacts to a failing job.
type Policy int

const (
	// FailFast cancels the pool on the first job error: in-flight jobs are
	// interrupted through their context and queued jobs are skipped. This is
	// the zero value because sweeps are usually all-or-nothing.
	FailFast Policy = iota
	// CollectAll keeps executing every job and reports all failures joined.
	CollectAll
)

// Options configures a batch run. The zero value runs with runtime.NumCPU()
// workers, base seed 0, no per-job timeout, FailFast, and no metrics.
type Options struct {
	// Workers bounds pool size; 0 selects runtime.NumCPU(). The pool never
	// starts more workers than there are jobs.
	Workers int
	// Seed is the base for DeriveSeed; job i receives DeriveSeed(Seed, i).
	Seed int64
	// JobTimeout, when positive, bounds each job's wall-clock time through a
	// per-job context deadline.
	JobTimeout time.Duration
	// Policy selects FailFast (default) or CollectAll error handling.
	Policy Policy
	// Metrics, when non-nil, receives the engine's own metrics
	// (batch_jobs_total{worker=}, batch_failures_total,
	// batch_queue_wait_seconds, batch_job_seconds, batch_workers), the
	// per-job resource attribution counters
	// (job_cpu_seconds{kind="batch"}, job_allocs_total{kind="batch"},
	// job_alloc_bytes_total{kind="batch"} — process-global deltas bracketed
	// around each job, approximate under concurrency; see DESIGN.md) plus
	// whatever the per-job observers record, all merged from the worker
	// shards after the pool drains.
	Metrics *obs.Registry
}

func (o Options) workers(jobs int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > jobs {
		w = jobs
	}
	return w
}

// JobError ties a job failure to its index in the job set.
type JobError struct {
	Index int
	Err   error
}

func (e *JobError) Error() string { return fmt.Sprintf("batch: job %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying error to errors.Is / errors.As.
func (e *JobError) Unwrap() error { return e.Err }

// Report summarises a batch run.
type Report struct {
	Jobs      int           // jobs submitted
	Completed int           // jobs that ran to success
	Skipped   int           // jobs never started because the pool was canceled
	Workers   int           // workers actually started
	Wall      time.Duration // wall-clock time of the whole batch
	Errors    []*JobError   // failed jobs, sorted by index
}

// Run executes jobs 0..jobs-1 through fn on a worker pool and blocks until
// the pool drains. The returned Report is always non-nil. The error is nil
// only if every job completed: under FailFast it is the lowest-indexed
// observed failure, under CollectAll all failures joined, and if ctx itself
// was canceled the cancellation cause wrapped with progress so far.
//
// When ctx carries a span, every job runs under its own child span
// (batch.job[i], span ID derived deterministically from the parent span and
// the job index) recording the worker, derived seed, queue wait, job
// duration and attributed resource cost (job.cpu_seconds, job.alloc_bytes,
// job.allocs); the job's context carries that span, so simulators started
// by fn parent their sim spans under it.
func Run(ctx context.Context, jobs int, fn Func, opts Options) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	rep := &Report{Jobs: jobs}
	if jobs <= 0 {
		return rep, nil
	}
	nw := opts.workers(jobs)
	rep.Workers = nw
	start := time.Now()

	poolCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	type queued struct {
		idx int
		enq time.Time
	}
	queue := make(chan queued, jobs)
	for i := 0; i < jobs; i++ {
		queue <- queued{i, start}
	}
	close(queue)

	shards := make([]*obs.Registry, nw)
	var (
		mu   sync.Mutex
		errs []*JobError
	)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		if opts.Metrics != nil {
			shards[w] = obs.NewRegistry()
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shard := shards[w]
			var (
				jobsC   *obs.Counter
				waitH   *obs.Histogram
				runH    *obs.Histogram
				cpuC    *obs.Counter
				nallocC *obs.Counter
				ballocC *obs.Counter
			)
			if shard != nil {
				jobsC = shard.Counter(obs.Label("batch_jobs_total", "worker", fmt.Sprintf("w%d", w)))
				waitH = shard.Histogram("batch_queue_wait_seconds", timeBuckets())
				runH = shard.Histogram("batch_job_seconds", timeBuckets())
				cpuC = shard.Counter(obs.Label("job_cpu_seconds", "kind", "batch"))
				nallocC = shard.Counter(obs.Label("job_allocs_total", "kind", "batch"))
				ballocC = shard.Counter(obs.Label("job_alloc_bytes_total", "kind", "batch"))
			}
			for q := range queue {
				if poolCtx.Err() != nil {
					mu.Lock()
					rep.Skipped++
					mu.Unlock()
					continue
				}
				wait := time.Since(q.enq).Seconds()
				if waitH != nil {
					waitH.Observe(wait)
				}
				p := Point{Index: q.idx, Worker: w, Seed: DeriveSeed(opts.Seed, q.idx)}
				if shard != nil {
					// One observer per job: RegistryObserver keeps per-run
					// state and must not be shared across simulations.
					p.Obs = obs.NewRegistryObserver(shard)
				}
				jobCtx := poolCtx
				var jobSpan *span.Span
				if parent := span.FromContext(ctx); parent != nil {
					// The span ID is derived from (parent, index) with the
					// same SplitMix64 finalizer as the job seed, so a job's
					// identity in an exported trace — like its RNG stream —
					// is a pure function of the submission, not of which
					// worker picked it up.
					jobSpan = parent.ChildAt(q.idx, fmt.Sprintf("batch.job[%d]", q.idx))
					jobSpan.SetAttr("job.index", q.idx)
					jobSpan.SetAttr("job.worker", w)
					jobSpan.SetAttr("job.seed", p.Seed)
					jobSpan.SetAttr("job.queue_wait_seconds", wait)
					jobCtx = span.NewContext(poolCtx, jobSpan)
				}
				// Resource attribution: bracket the job with process-global
				// usage readings. The delta charges the job with the CPU and
				// allocation volume consumed in its window — exact when this
				// worker is the only load, approximate (over-attributed)
				// under concurrency, but the sum across jobs still bounds
				// the true batch total. Only measured when someone is
				// looking (a metrics shard or a job span).
				measure := shard != nil || span.FromContext(ctx) != nil
				var u0 proc.Usage
				if measure {
					u0 = proc.ReadUsage()
				}
				t0 := time.Now()
				err := runOne(jobCtx, fn, p, opts.JobTimeout)
				el := time.Since(t0).Seconds()
				var du proc.Usage
				if measure {
					du = proc.ReadUsage().Sub(u0)
				}
				if jobSpan != nil {
					jobSpan.SetAttr("job.seconds", el)
					jobSpan.SetAttr("job.cpu_seconds", du.CPUSeconds)
					jobSpan.SetAttr("job.alloc_bytes", int64(du.AllocBytes))
					jobSpan.SetAttr("job.allocs", int64(du.AllocObjects))
					jobSpan.SetError(err)
					jobSpan.End()
				}
				if shard != nil {
					cpuC.Add(du.CPUSeconds)
					nallocC.Add(du.AllocObjects)
					ballocC.Add(du.AllocBytes)
				}
				if runH != nil {
					runH.Observe(el)
				}
				if jobsC != nil {
					jobsC.Inc()
				}
				mu.Lock()
				if err != nil {
					errs = append(errs, &JobError{Index: q.idx, Err: err})
					if shard != nil {
						shard.Counter("batch_failures_total").Inc()
					}
					if opts.Policy == FailFast {
						cancel(fmt.Errorf("batch: job %d failed: %w", q.idx, err))
					}
				} else {
					rep.Completed++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	rep.Wall = time.Since(start)
	sort.Slice(errs, func(i, j int) bool { return errs[i].Index < errs[j].Index })
	rep.Errors = errs

	if opts.Metrics != nil {
		opts.Metrics.Gauge("batch_workers").Set(float64(nw))
		for _, s := range shards {
			opts.Metrics.Merge(s)
		}
	}

	if err := ctx.Err(); err != nil {
		return rep, fmt.Errorf("batch: canceled after %d of %d jobs (%d skipped): %w",
			rep.Completed, jobs, rep.Skipped, context.Cause(ctx))
	}
	if len(errs) > 0 {
		if opts.Policy == FailFast {
			return rep, errs[0]
		}
		joined := make([]error, len(errs))
		for i, e := range errs {
			joined[i] = e
		}
		return rep, errors.Join(joined...)
	}
	return rep, nil
}

// Map runs fn over jobs 0..jobs-1 like Run and collects the results in job
// order: out[i] is job i's value regardless of which worker produced it or
// when, which is what makes a parallel sweep's table identical to the
// sequential one. Failed or skipped jobs leave the zero value at their index;
// the Report tells them apart from legitimate zeros.
func Map[T any](ctx context.Context, jobs int, fn func(ctx context.Context, p Point) (T, error), opts Options) ([]T, *Report, error) {
	out := make([]T, max(jobs, 0))
	rep, err := Run(ctx, jobs, func(ctx context.Context, p Point) error {
		v, ferr := fn(ctx, p)
		if ferr != nil {
			return ferr
		}
		out[p.Index] = v
		return nil
	}, opts)
	return out, rep, err
}

// runOne executes a single job with panic recovery and the per-job deadline.
func runOne(ctx context.Context, fn Func, p Point, timeout time.Duration) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("batch: job %d panicked: %v\n%s", p.Index, r, debug.Stack())
		}
	}()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	return fn(ctx, p)
}

// DeriveSeed maps (base, index) to a per-job RNG seed with the SplitMix64
// finalizer. It is a pure function — independent of worker count, scheduling
// and wall clock — so a sweep's stochastic results are reproducible from the
// base seed alone, and index-adjacent jobs get statistically independent
// streams even though their inputs differ by one bit.
func DeriveSeed(base int64, index int) int64 {
	z := uint64(base) + uint64(index+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// timeBuckets spans queue waits and job durations: decades from 1µs to 100s
// with a 1-2-5 subdivision.
func timeBuckets() []float64 {
	var b []float64
	for e := -6; e <= 2; e++ {
		p := math.Pow(10, float64(e))
		b = append(b, p, 2*p, 5*p)
	}
	return b
}
