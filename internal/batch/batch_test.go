package batch_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/crn"
	"repro/internal/obs"
	"repro/internal/sim"
)

func TestRunZeroJobs(t *testing.T) {
	called := false
	rep, err := batch.Run(context.Background(), 0, func(context.Context, batch.Point) error {
		called = true
		return nil
	}, batch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called for an empty job set")
	}
	if rep.Jobs != 0 || rep.Completed != 0 || rep.Workers != 0 {
		t.Fatalf("report = %+v, want all-zero", rep)
	}
}

func TestRunNilContext(t *testing.T) {
	rep, err := batch.Run(nil, 3, func(ctx context.Context, p batch.Point) error {
		if ctx == nil {
			return errors.New("nil ctx reached fn")
		}
		return nil
	}, batch.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 3 {
		t.Fatalf("Completed = %d, want 3", rep.Completed)
	}
}

// TestMapDeterministic is the engine's core guarantee: result order and
// per-job seeds must not depend on the worker count.
func TestMapDeterministic(t *testing.T) {
	fn := func(_ context.Context, p batch.Point) (string, error) {
		return fmt.Sprintf("job%d:seed%d", p.Index, p.Seed), nil
	}
	seq, _, err := batch.Map(context.Background(), 50, fn, batch.Options{Workers: 1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := batch.Map(context.Background(), 50, fn, batch.Options{Workers: 8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("row %d differs: sequential %q vs parallel %q", i, seq[i], par[i])
		}
	}
}

func TestDeriveSeed(t *testing.T) {
	if batch.DeriveSeed(7, 3) != batch.DeriveSeed(7, 3) {
		t.Fatal("DeriveSeed is not deterministic")
	}
	seen := map[int64]int{}
	for i := 0; i < 1000; i++ {
		s := batch.DeriveSeed(0, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between jobs %d and %d", prev, i)
		}
		seen[s] = i
	}
	if batch.DeriveSeed(1, 0) == batch.DeriveSeed(2, 0) {
		t.Fatal("different bases produced the same seed for job 0")
	}
}

// TestPanicRecovery: a panicking job must surface as that job's error with a
// stack trace while its worker keeps draining the queue.
func TestPanicRecovery(t *testing.T) {
	var completed atomic.Int32
	rep, err := batch.Run(context.Background(), 8, func(_ context.Context, p batch.Point) error {
		if p.Index == 3 {
			panic("boom")
		}
		completed.Add(1)
		return nil
	}, batch.Options{Workers: 2, Policy: batch.CollectAll})
	if err == nil {
		t.Fatal("panicking job reported no error")
	}
	if !strings.Contains(err.Error(), "panicked: boom") {
		t.Fatalf("error does not mention the panic: %v", err)
	}
	if !strings.Contains(err.Error(), "batch_test.go") {
		t.Fatalf("error lacks a stack trace: %v", err)
	}
	if completed.Load() != 7 || rep.Completed != 7 {
		t.Fatalf("completed = %d (report %d), want 7", completed.Load(), rep.Completed)
	}
	if len(rep.Errors) != 1 || rep.Errors[0].Index != 3 {
		t.Fatalf("Errors = %+v, want exactly job 3", rep.Errors)
	}
}

// TestFailFastSkipsQueue: after the first failure the queued remainder must
// be skipped, not executed.
func TestFailFastSkipsQueue(t *testing.T) {
	var ran atomic.Int32
	sentinel := errors.New("first job broke")
	rep, err := batch.Run(context.Background(), 64, func(_ context.Context, p batch.Point) error {
		ran.Add(1)
		if p.Index == 0 {
			return sentinel
		}
		time.Sleep(time.Millisecond)
		return nil
	}, batch.Options{Workers: 2})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the job-0 failure", err)
	}
	var je *batch.JobError
	if !errors.As(err, &je) || je.Index != 0 {
		t.Fatalf("err = %v, want a *batch.JobError for job 0", err)
	}
	if rep.Skipped == 0 {
		t.Fatalf("no jobs skipped after batch.FailFast failure (ran %d)", ran.Load())
	}
	if rep.Completed+rep.Skipped+len(rep.Errors) != rep.Jobs {
		t.Fatalf("report does not account for every job: %+v", rep)
	}
}

// TestCollectAllRunsEverything: batch.CollectAll must execute all jobs and join all
// failures.
func TestCollectAllRunsEverything(t *testing.T) {
	var ran atomic.Int32
	rep, err := batch.Run(context.Background(), 20, func(_ context.Context, p batch.Point) error {
		ran.Add(1)
		if p.Index%5 == 0 {
			return fmt.Errorf("job %d failed", p.Index)
		}
		return nil
	}, batch.Options{Workers: 4, Policy: batch.CollectAll})
	if ran.Load() != 20 {
		t.Fatalf("ran %d jobs, want all 20", ran.Load())
	}
	if len(rep.Errors) != 4 {
		t.Fatalf("Errors = %d, want 4", len(rep.Errors))
	}
	for i, je := range rep.Errors {
		if je.Index != i*5 {
			t.Fatalf("Errors not sorted by index: %+v", rep.Errors)
		}
	}
	for i := 0; i < 20; i += 5 {
		if !strings.Contains(err.Error(), fmt.Sprintf("job %d", i)) {
			t.Fatalf("joined error missing job %d: %v", i, err)
		}
	}
}

// TestExternalCancellation: canceling the caller's context mid-queue must
// drain the pool promptly and report the cancellation cause.
func TestExternalCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	rep, errCh := (*batch.Report)(nil), make(chan error, 1)
	var repCh = make(chan *batch.Report, 1)
	go func() {
		r, err := batch.Run(ctx, 100, func(jctx context.Context, p batch.Point) error {
			select {
			case started <- struct{}{}:
			default:
			}
			select {
			case <-jctx.Done():
				return jctx.Err()
			case <-time.After(10 * time.Second):
				return errors.New("job outlived the cancellation")
			}
		}, batch.Options{Workers: 2, Policy: batch.CollectAll})
		repCh <- r
		errCh <- err
	}()
	<-started
	cancel()
	select {
	case rep = <-repCh:
	case <-time.After(5 * time.Second):
		t.Fatal("pool did not drain within 5s of cancellation")
	}
	err := <-errCh
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep.Skipped == 0 {
		t.Fatalf("expected queued jobs to be skipped, report %+v", rep)
	}
}

// TestJobTimeout bounds a single runaway job without touching its siblings.
func TestJobTimeout(t *testing.T) {
	rep, err := batch.Run(context.Background(), 4, func(ctx context.Context, p batch.Point) error {
		if p.Index == 1 {
			<-ctx.Done() // runaway job, stopped only by its deadline
			return ctx.Err()
		}
		return nil
	}, batch.Options{Workers: 2, JobTimeout: 20 * time.Millisecond, Policy: batch.CollectAll})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if rep.Completed != 3 || len(rep.Errors) != 1 || rep.Errors[0].Index != 1 {
		t.Fatalf("report = %+v, want 3 completed and job 1 failed", rep)
	}
}

// TestMetricsMerged: engine metrics from every worker shard must land in the
// target registry.
func TestMetricsMerged(t *testing.T) {
	reg := obs.NewRegistry()
	const jobs = 12
	_, err := batch.Run(context.Background(), jobs, func(_ context.Context, p batch.Point) error {
		if p.Obs == nil {
			return errors.New("Metrics set but batch.Point.Obs is nil")
		}
		return nil
	}, batch.Options{Workers: 3, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap["batch_workers"]; got != 3 {
		t.Fatalf("batch_workers = %g, want 3", got)
	}
	if got := snap["batch_queue_wait_seconds_count"]; got != jobs {
		t.Fatalf("queue-wait observations = %g, want %d", got, jobs)
	}
	if got := snap["batch_job_seconds_count"]; got != jobs {
		t.Fatalf("job-duration observations = %g, want %d", got, jobs)
	}
	total := 0.0
	for name, v := range snap {
		if strings.HasPrefix(name, "batch_jobs_total{") {
			total += v
		}
	}
	if total != jobs {
		t.Fatalf("summed per-worker batch_jobs_total = %g, want %d", total, jobs)
	}
}

// flipNet is a fast two-state loop whose SSA run at a huge horizon fires
// essentially forever — the e2e workload for cancellation tests.
func flipNet(t *testing.T) *crn.Network {
	t.Helper()
	n := crn.NewNetwork()
	n.R("ab", map[string]int{"A": 1}, map[string]int{"B": 1}, crn.Fast)
	n.R("ba", map[string]int{"B": 1}, map[string]int{"A": 1}, crn.Fast)
	if err := n.SetInit("A", 1); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestSimJobTimeout runs real SSA simulations through the engine and checks
// the per-job deadline actually interrupts the firing loop.
func TestSimJobTimeout(t *testing.T) {
	n := flipNet(t)
	_, err := batch.Run(context.Background(), 2, func(ctx context.Context, p batch.Point) error {
		_, serr := sim.Run(ctx, n, sim.Config{
			Method: sim.SSA, TEnd: 1e12, Unit: 1000, SampleEvery: 1e9, Seed: p.Seed,
		})
		return serr
	}, batch.Options{Workers: 2, JobTimeout: 50 * time.Millisecond, Policy: batch.CollectAll})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded from inside the SSA loop", err)
	}
	if !strings.Contains(err.Error(), "ssa interrupted") {
		t.Fatalf("error does not come from the SSA context poll: %v", err)
	}
}

// TestSimParallelDeterminism: identical seed grids through 1 and 4 workers
// must produce identical traces.
func TestSimParallelDeterminism(t *testing.T) {
	n := flipNet(t)
	runGrid := func(workers int) [][]float64 {
		finals, _, err := batch.Map(context.Background(), 6, func(ctx context.Context, p batch.Point) ([]float64, error) {
			tr, serr := sim.Run(ctx, n, sim.Config{
				Method: sim.SSA, TEnd: 1, Unit: 200, SampleEvery: 0.1, Seed: p.Seed,
			})
			if serr != nil {
				return nil, serr
			}
			return []float64{tr.Final("A"), tr.Final("B")}, nil
		}, batch.Options{Workers: workers, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		return finals
	}
	seq := runGrid(1)
	par := runGrid(4)
	for i := range seq {
		for j := range seq[i] {
			if seq[i][j] != par[i][j] {
				t.Fatalf("job %d species %d: sequential %g vs parallel %g",
					i, j, seq[i][j], par[i][j])
			}
		}
	}
}
