package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/sim"
)

func TestConstructionValidation(t *testing.T) {
	c := New("m")
	if _, err := c.NewRegister("d", 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Gain("nope", "also-nope", 1, 1); err == nil {
		t.Fatal("unknown operand accepted")
	}
	r, _ := c.NewRegister("e", 0)
	if err := c.Gain(r.Q, "bogus-dest", 1, 1); err == nil {
		t.Fatal("unknown destination accepted")
	}
	if err := c.Gain(r.Q, r.NS, 0, 1); err == nil {
		t.Fatal("zero gain accepted")
	}
	if err := c.Fanout(r.Q); err == nil {
		t.Fatal("empty fanout accepted")
	}
	if err := c.Pair(r.Q, r.Q, nil); err == nil {
		t.Fatal("self-pair accepted")
	}
	// Q is not a valid destination (it is written by the register's own
	// blue→red transfer, not by compute reactions).
	sig, err := c.NewSignal("tmp")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Gain(sig, r.Q, 1, 1); err == nil {
		t.Fatal("register Q accepted as compute destination")
	}
}

func TestFinalizeDiscardsUnusedOperands(t *testing.T) {
	c := New("m")
	r, err := c.NewRegister("d", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	disc := c.Discarded()
	if len(disc) != 1 || disc[0] != r.Q {
		t.Fatalf("Discarded = %v, want [%s]", disc, r.Q)
	}
	if err := c.Finalize(); err == nil {
		t.Fatal("double Finalize accepted")
	}
	if _, err := c.NewRegister("late", 0); err == nil {
		t.Fatal("NewRegister after Finalize accepted")
	}
}

// buildDelayLine constructs y[n] = x[n-1]: input → register → sink.
func buildDelayLine(t *testing.T) (*Circuit, *Input, *Register, string) {
	t.Helper()
	c := New("m")
	in, err := c.NewInput("x")
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.NewRegister("d", 0)
	if err != nil {
		t.Fatal(err)
	}
	y, err := c.NewSink("y")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Gain(in.Q, r.NS, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Gain(r.Q, y, 1, 1); err != nil {
		t.Fatal(err)
	}
	return c, in, r, y
}

func TestDelayLineShiftsStream(t *testing.T) {
	c, in, _, y := buildDelayLine(t)
	samples := []float64{1.0, 0.5, 1.5, 0.25, 1.0, 0.75}
	if err := c.SetFirstSample(in, samples[0]); err != nil {
		t.Fatal(err)
	}
	ev := c.InjectionEvent(in, func(k int) float64 {
		if k < len(samples) {
			return samples[k]
		}
		return 0
	})
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	if len(c.Discarded()) != 0 {
		t.Fatalf("unexpected discards: %v", c.Discarded())
	}
	tr, err := sim.Run(context.Background(), c.Net, sim.Config{
		Rates: sim.Rates{Fast: 1000, Slow: 1}, TEnd: 220, Events: []*sim.Event{ev},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.SinkPerCycle(tr, y)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) < len(samples) {
		t.Fatalf("only %d cycles decoded, want >= %d", len(got), len(samples))
	}
	// y[0] = 0 (register starts empty), then y[k] = x[k-1].
	if math.Abs(got[0]) > 0.05 {
		t.Fatalf("y[0] = %g, want 0", got[0])
	}
	for k := 1; k < len(samples); k++ {
		if math.Abs(got[k]-samples[k-1]) > 0.06 {
			t.Fatalf("y[%d] = %g, want %g (all: %v)", k, got[k], samples[k-1], got)
		}
	}
}

func TestRegisterPerCycleReadout(t *testing.T) {
	c, in, r, _ := buildDelayLine(t)
	if err := c.SetFirstSample(in, 1.0); err != nil {
		t.Fatal(err)
	}
	ev := c.InjectionEvent(in, func(k int) float64 {
		if k == 1 {
			return 0.5
		}
		return 0
	})
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(context.Background(), c.Net, sim.Config{
		Rates: sim.Rates{Fast: 1000, Slow: 1}, TEnd: 150, Events: []*sim.Event{ev},
	})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := c.RegisterPerCycle(tr, r)
	if err != nil {
		t.Fatal(err)
	}
	// Cycle 0: init 0; cycle 1: 1.0; cycle 2: 0.5; cycle 3+: 0.
	if len(vals) < 4 {
		t.Fatalf("only %d register readings", len(vals))
	}
	want := []float64{0, 1.0, 0.5, 0}
	for k, w := range want {
		if math.Abs(vals[k]-w) > 0.06 {
			t.Fatalf("register cycle %d = %g, want %g (all: %v)", k, vals[k], w, vals)
		}
	}
}

func TestTwoStageShiftRegister(t *testing.T) {
	c := New("m")
	in, _ := c.NewInput("x")
	r1, _ := c.NewRegister("d1", 0)
	r2, _ := c.NewRegister("d2", 0)
	y, _ := c.NewSink("y")
	if err := c.Gain(in.Q, r1.NS, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Gain(r1.Q, r2.NS, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Gain(r2.Q, y, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.SetFirstSample(in, 1.0); err != nil {
		t.Fatal(err)
	}
	ev := c.InjectionEvent(in, func(int) float64 { return 0 })
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(context.Background(), c.Net, sim.Config{
		Rates: sim.Rates{Fast: 1000, Slow: 1}, TEnd: 180, Events: []*sim.Event{ev},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.SinkPerCycle(tr, y)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) < 4 {
		t.Fatalf("only %d cycles", len(got))
	}
	want := []float64{0, 0, 1.0, 0}
	for k, w := range want {
		if math.Abs(got[k]-w) > 0.07 {
			t.Fatalf("y[%d] = %g, want %g (all: %v)", k, got[k], w, got)
		}
	}
}

func TestGainScalesValue(t *testing.T) {
	// y[n] = x[n-1]/2 via a rational gain on the register input.
	c := New("m")
	in, _ := c.NewInput("x")
	r, _ := c.NewRegister("d", 0)
	y, _ := c.NewSink("y")
	if err := c.Gain(in.Q, r.NS, 1, 2); err != nil { // 2x -> NS
		t.Fatal(err)
	}
	if err := c.Gain(r.Q, y, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.SetFirstSample(in, 1.0); err != nil {
		t.Fatal(err)
	}
	ev := c.InjectionEvent(in, func(int) float64 { return 0 })
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(context.Background(), c.Net, sim.Config{
		Rates: sim.Rates{Fast: 1000, Slow: 1}, TEnd: 120, Events: []*sim.Event{ev},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.SinkPerCycle(tr, y)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) < 2 {
		t.Fatalf("only %d cycles", len(got))
	}
	if math.Abs(got[1]-0.5) > 0.05 {
		t.Fatalf("y[1] = %g, want 0.5", got[1])
	}
}

func TestFanoutDuplicatesValue(t *testing.T) {
	// One input value lands in two registers simultaneously.
	c := New("m")
	in, _ := c.NewInput("x")
	r1, _ := c.NewRegister("a", 0)
	r2, _ := c.NewRegister("b", 0)
	if err := c.Fanout(in.Q, r1.NS, r2.NS); err != nil {
		t.Fatal(err)
	}
	if err := c.SetFirstSample(in, 0.75); err != nil {
		t.Fatal(err)
	}
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(context.Background(), c.Net, sim.Config{
		Rates: sim.Rates{Fast: 1000, Slow: 1}, TEnd: 80,
	})
	if err != nil {
		t.Fatal(err)
	}
	v1, err := c.RegisterPerCycle(tr, r1)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := c.RegisterPerCycle(tr, r2)
	if err != nil {
		t.Fatal(err)
	}
	if len(v1) < 2 || len(v2) < 2 {
		t.Fatalf("too few readings: %v %v", v1, v2)
	}
	if math.Abs(v1[1]-0.75) > 0.05 || math.Abs(v2[1]-0.75) > 0.05 {
		t.Fatalf("registers got %g and %g, want 0.75 each", v1[1], v2[1])
	}
}

func TestClockKeepsTickingWithZeroSignal(t *testing.T) {
	// A circuit whose registers all hold zero must still cycle: the clock
	// heartbeat keeps the phases well defined (this is the reason the DAC
	// scheme has an explicit clock at all).
	c, in, _, _ := buildDelayLine(t)
	_ = in // no samples at all
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(context.Background(), c.Net, sim.Config{
		Rates: sim.Rates{Fast: 1000, Slow: 1}, TEnd: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	starts, err := c.CycleStarts(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(starts) < 5 {
		t.Fatalf("only %d cycles with zero signal", len(starts))
	}
}
