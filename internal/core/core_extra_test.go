package core

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/crn"
	"repro/internal/sim"
)

func TestPairValidation(t *testing.T) {
	c := New("m")
	a, err := c.NewSignal("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.NewSignal("b")
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.NewSignal("d")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Pair(a, "ghost", nil); err == nil {
		t.Fatal("unknown pair operand accepted")
	}
	if err := c.Pair(a, b, map[string]int{"ghost": 1}); err == nil {
		t.Fatal("unknown pair product accepted")
	}
	if err := c.Pair(a, b, map[string]int{d: 0}); err == nil {
		t.Fatal("zero product coefficient accepted")
	}
	if err := c.Pair(a, b, map[string]int{d: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestPairDynamics(t *testing.T) {
	// A one-shot dual-rail AND: inputs arrive as register initials, the
	// pair reaction consumes them during the first compute phase.
	c := New("m")
	ra, err := c.NewRegister("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := c.NewRegister("b", 1)
	if err != nil {
		t.Fatal(err)
	}
	y, err := c.NewSink("y")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Pair(ra.Q, rb.Q, map[string]int{y: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(context.Background(), c.Net, sim.Config{Rates: sim.Rates{Fast: 500, Slow: 1}, TEnd: 40})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Final(y); math.Abs(got-1) > 0.02 {
		t.Fatalf("pair output %g, want 1", got)
	}
}

func TestDrainSlow(t *testing.T) {
	c := New("m")
	sig, err := c.NewSignal("s")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DrainSlow("ghost"); err == nil {
		t.Fatal("unknown drain source accepted")
	}
	if err := c.DrainSlow(sig); err != nil {
		t.Fatal(err)
	}
	// Drained signals count as consumed: no discard should be added.
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	for _, d := range c.Discarded() {
		if d == sig {
			t.Fatal("drained signal was also discarded")
		}
	}
	if err := c.DrainSlow(sig); err == nil {
		t.Fatal("DrainSlow after Finalize accepted")
	}
}

func TestAccessors(t *testing.T) {
	c := New("m")
	r, err := c.NewRegister("d", 0)
	if err != nil {
		t.Fatal(err)
	}
	in, err := c.NewInput("x")
	if err != nil {
		t.Fatal(err)
	}
	regs := c.Registers()
	if len(regs) != 1 || regs[0] != r {
		t.Fatalf("Registers = %v", regs)
	}
	ins := c.Inputs()
	if len(ins) != 1 || ins[0] != in {
		t.Fatalf("Inputs = %v", ins)
	}
	// Returned slices are copies.
	regs[0] = nil
	if c.Registers()[0] == nil {
		t.Fatal("Registers aliases internal state")
	}
}

func TestDuplicateNamesRejected(t *testing.T) {
	c := New("m")
	if _, err := c.NewRegister("d", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.NewRegister("d", 0); err == nil {
		t.Fatal("duplicate register name accepted")
	}
	if _, err := c.NewInput("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.NewInput("x"); err == nil {
		t.Fatal("duplicate input name accepted")
	}
}

func TestCycleBoundariesErrorOnShortTrace(t *testing.T) {
	c := New("m")
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(context.Background(), c.Net, sim.Config{TEnd: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SinkPerCycle(tr, c.ns+".trash"); err == nil {
		t.Fatal("boundaries on too-short trace accepted")
	}
}

func TestNamespaceIsolation(t *testing.T) {
	// Two circuits in different namespaces never share species names.
	a := New("a")
	b := New("b")
	if _, err := a.NewRegister("d", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.NewRegister("d", 0); err != nil {
		t.Fatal(err)
	}
	for _, name := range a.Net.SpeciesNames() {
		if !strings.HasPrefix(name, "a.") {
			t.Fatalf("species %q outside namespace a", name)
		}
	}
	_ = crn.Fast // keep the import for the package's reaction categories
}
