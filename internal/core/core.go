// Package core implements the primary contribution of the DAC 2011 paper:
// synchronous sequential computation with molecular reactions. A Circuit is
// a clocked molecular machine built from
//
//   - one molecular clock (package clock) providing the heartbeat,
//   - registers (delay elements) whose contents march through the
//     red → green → blue → red colour stages once per clock cycle, and
//   - a combinational compute stage of fast, ungated reactions that runs
//     while the machine is in the red phase.
//
// # Phase anatomy of one computation cycle
//
// Colour membership does the synchronizing: the clock and every register
// stage share one phases.Scheme, hence one set of absence indicators, so no
// phase can end until every transfer assigned to it has completed.
//
//	red phase    operands (register outputs d.Q and input samples x.Q,
//	             both red) are consumed by the fast compute reactions,
//	             which cascade through red intermediates and deposit each
//	             register's next value into its red staging species d.NS;
//	             observation sinks accumulate output values.
//	red→green    gated transfers move every d.NS into d.G while the clock
//	             hands CR to CG.
//	green→blue   gated transfers move every d.G into d.B (master latch)
//	             while the clock hands CG to CB. Fresh input samples are
//	             injected into x.B as blue fills (see InjectionEvent).
//	blue→red     gated transfers release every d.B into d.Q (slave
//	             release) and x.B into x.Q while the clock hands CB back
//	             to CR — and the next cycle's compute begins.
//
// Compute reactions are in the fast category and ungated; they are confined
// to the red phase simply because their reactants only exist then. Keeping
// the compute *products* red (the d.NS staging species) until the gated
// red→green hand-off is what prevents freshly computed values from
// interfering with the blue→red release gate — the molecular version of
// master–slave edge triggering.
package core

import (
	"fmt"
	"sort"

	"repro/internal/clock"
	"repro/internal/crn"
	"repro/internal/phases"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Register is one molecular delay element (D flip-flop for quantities).
type Register struct {
	Name string
	NS   string // red staging species: compute writes the next value here
	G    string // green stage (after red→green hand-off)
	B    string // blue stage (master latch)
	Q    string // red output: the operand the compute stage consumes
}

// Input is an external streaming input port.
type Input struct {
	Name string
	B    string // blue landing species: samples are injected here
	Q    string // red operand released to the compute stage
}

// Circuit accumulates a synchronous molecular circuit and finalizes it into
// a crn.Network.
type Circuit struct {
	Net    *crn.Network
	Scheme *phases.Scheme
	Clock  clock.Clock

	ns        string
	registers []*Register
	inputs    []*Input
	sinks     []string
	// consumable tracks red species that must be consumed during the red
	// phase (operands and intermediates); value=true once some compute
	// reaction consumes them.
	consumable map[string]bool
	// writable tracks red species that compute reactions may produce into
	// (intermediates and register NS ports).
	writable  map[string]bool
	names     map[string]bool
	discarded []string
	finalized bool
}

// New creates an empty circuit with a fresh network, scheme and clock. The
// clock heartbeat is 1 concentration unit, the signal scale all constructs
// in this repository are calibrated to.
func New(ns string) *Circuit {
	net := crn.NewNetwork()
	s := phases.NewScheme(net, ns+".ph")
	ck := clock.MustAdd(s, ns+".clk", 1)
	return &Circuit{
		Net:        net,
		Scheme:     s,
		Clock:      ck,
		ns:         ns,
		consumable: make(map[string]bool),
		writable:   make(map[string]bool),
		names:      make(map[string]bool),
	}
}

func (c *Circuit) checkOpen() error {
	if c.finalized {
		return fmt.Errorf("core: circuit %q already finalized", c.ns)
	}
	return nil
}

// claimName reserves an element name within the circuit (registers, inputs,
// signals and sinks share one namespace so a collision would silently
// double reactions).
func (c *Circuit) claimName(kind, name string) error {
	key := kind + "/" + name
	if c.names[key] {
		return fmt.Errorf("core: duplicate %s name %q", kind, name)
	}
	c.names[key] = true
	return nil
}

// NewRegister creates a delay element with the given initial value (placed
// in the Q stage, i.e. available to the very first compute phase).
func (c *Circuit) NewRegister(name string, init float64) (*Register, error) {
	if err := c.checkOpen(); err != nil {
		return nil, err
	}
	if err := c.claimName("element", name); err != nil {
		return nil, err
	}
	r := &Register{
		Name: name,
		NS:   c.ns + "." + name + ".NS",
		G:    c.ns + "." + name + ".G",
		B:    c.ns + "." + name + ".B",
		Q:    c.ns + "." + name + ".Q",
	}
	if err := c.Scheme.AddMember(phases.Red, r.NS); err != nil {
		return nil, err
	}
	if err := c.Scheme.AddMember(phases.Green, r.G); err != nil {
		return nil, err
	}
	if err := c.Scheme.AddMember(phases.Blue, r.B); err != nil {
		return nil, err
	}
	if err := c.Scheme.AddMember(phases.Red, r.Q); err != nil {
		return nil, err
	}
	if err := c.Scheme.AddTransfer(name+".nsg", r.NS, map[string]int{r.G: 1}); err != nil {
		return nil, err
	}
	if err := c.Scheme.AddTransfer(name+".gb", r.G, map[string]int{r.B: 1}); err != nil {
		return nil, err
	}
	if err := c.Scheme.AddTransfer(name+".bq", r.B, map[string]int{r.Q: 1}); err != nil {
		return nil, err
	}
	if init != 0 {
		if err := c.Net.SetInit(r.Q, init); err != nil {
			return nil, err
		}
	}
	c.consumable[r.Q] = false
	c.writable[r.NS] = true
	c.registers = append(c.registers, r)
	return r, nil
}

// NewInput creates a streaming input port. The first sample should be placed
// with SetFirstSample; later samples arrive through the event returned by
// InjectionEvent.
func (c *Circuit) NewInput(name string) (*Input, error) {
	if err := c.checkOpen(); err != nil {
		return nil, err
	}
	if err := c.claimName("element", name); err != nil {
		return nil, err
	}
	in := &Input{
		Name: name,
		B:    c.ns + "." + name + ".B",
		Q:    c.ns + "." + name + ".Q",
	}
	if err := c.Scheme.AddMember(phases.Blue, in.B); err != nil {
		return nil, err
	}
	if err := c.Scheme.AddMember(phases.Red, in.Q); err != nil {
		return nil, err
	}
	if err := c.Scheme.AddTransfer(name+".bq", in.B, map[string]int{in.Q: 1}); err != nil {
		return nil, err
	}
	c.consumable[in.Q] = false
	c.inputs = append(c.inputs, in)
	return in, nil
}

// SetFirstSample places the sample consumed by the very first compute phase.
func (c *Circuit) SetFirstSample(in *Input, x float64) error {
	return c.Net.SetInit(in.Q, x)
}

// NewSignal creates a red intermediate species for multi-level compute
// cascades. It must be both produced and consumed by compute reactions.
func (c *Circuit) NewSignal(name string) (string, error) {
	if err := c.checkOpen(); err != nil {
		return "", err
	}
	if err := c.claimName("signal", name); err != nil {
		return "", err
	}
	sp := c.ns + ".sig." + name
	if err := c.Scheme.AddMember(phases.Red, sp); err != nil {
		return "", err
	}
	c.consumable[sp] = false
	c.writable[sp] = true
	return sp, nil
}

// NewSink creates an uncoloured accumulator species for circuit outputs.
// Per-cycle output values are recovered by differencing the accumulator at
// cycle boundaries (see SinkPerCycle).
func (c *Circuit) NewSink(name string) (string, error) {
	if err := c.checkOpen(); err != nil {
		return "", err
	}
	if err := c.claimName("sink", name); err != nil {
		return "", err
	}
	sp := c.ns + ".out." + name
	c.Net.AddSpecies(sp)
	c.sinks = append(c.sinks, sp)
	return sp, nil
}

// checkOperand verifies src is a known red consumable and marks it used.
func (c *Circuit) checkOperand(src string) error {
	if _, ok := c.consumable[src]; !ok {
		return fmt.Errorf("core: %q is not a compute operand (register output, input, or signal)", src)
	}
	c.consumable[src] = true
	return nil
}

// checkDest verifies a compute product: red writable species or sink.
func (c *Circuit) checkDest(dst string) error {
	if c.writable[dst] {
		return nil
	}
	for _, s := range c.sinks {
		if s == dst {
			return nil
		}
	}
	return fmt.Errorf("core: %q is not a compute destination (signal, register NS port, or sink)", dst)
}

// Gain adds the compute reaction q·src → p·dst (fast): dst += (p/q)·src.
// With p == q == 1 it is a plain wire. Multiple Gain calls into the same
// destination implement addition.
func (c *Circuit) Gain(src, dst string, p, q int) error {
	if err := c.checkOpen(); err != nil {
		return err
	}
	if p < 1 || q < 1 {
		return fmt.Errorf("core: gain %d/%d must have positive terms", p, q)
	}
	if err := c.checkOperand(src); err != nil {
		return err
	}
	if err := c.checkDest(dst); err != nil {
		return err
	}
	return c.Net.AddReaction(fmt.Sprintf("gain.%s.%s", src, dst),
		map[string]int{src: q}, map[string]int{dst: p}, crn.Fast, 1)
}

// Fanout adds src → dst1 + dst2 + ... (fast): every destination receives the
// full value of src.
func (c *Circuit) Fanout(src string, dsts ...string) error {
	if err := c.checkOpen(); err != nil {
		return err
	}
	if len(dsts) == 0 {
		return fmt.Errorf("core: fanout of %q needs at least one destination", src)
	}
	if err := c.checkOperand(src); err != nil {
		return err
	}
	prods := map[string]int{}
	for _, d := range dsts {
		if err := c.checkDest(d); err != nil {
			return err
		}
		prods[d]++
	}
	return c.Net.AddReaction("fanout."+src, map[string]int{src: 1}, prods, crn.Fast, 1)
}

// Pair adds the compute reaction a + b → products (fast), the primitive
// behind dual-rail Boolean gates: the two operands are consumed jointly.
func (c *Circuit) Pair(a, b string, products map[string]int) error {
	if err := c.checkOpen(); err != nil {
		return err
	}
	if a == b {
		return fmt.Errorf("core: pair operands must differ, got %q twice", a)
	}
	if err := c.checkOperand(a); err != nil {
		return err
	}
	if err := c.checkOperand(b); err != nil {
		return err
	}
	prods := map[string]int{}
	for d, n := range products {
		if err := c.checkDest(d); err != nil {
			return err
		}
		if n < 1 {
			return fmt.Errorf("core: pair product %q coefficient %d < 1", d, n)
		}
		prods[d] = n
	}
	return c.Net.AddReaction(fmt.Sprintf("pair.%s.%s", a, b),
		map[string]int{a: 1, b: 1}, prods, crn.Fast, 1)
}

// DrainSlow adds a slow-category discard reaction src → ns.trash. It exists
// for operands that serve as catalysts earlier in the red phase (e.g. the
// steering outputs of dual-rail signal restoration): a fast discard would
// race the catalysis they drive, while a slow one lets them finish their job
// and then clears them so the red phase can end.
func (c *Circuit) DrainSlow(src string) error {
	if err := c.checkOpen(); err != nil {
		return err
	}
	if err := c.checkOperand(src); err != nil {
		return err
	}
	trash := c.ns + ".trash"
	c.Net.AddSpecies(trash)
	return c.Net.AddReaction("drain."+src,
		map[string]int{src: 1}, map[string]int{trash: 1}, crn.Slow, 1)
}

// Finalize completes construction: every red consumable that no compute
// reaction consumes gets a fast discard reaction into ns.trash (the red
// phase could otherwise never end), and the phase scheme is built. The
// circuit is then ready to simulate.
func (c *Circuit) Finalize() error {
	if err := c.checkOpen(); err != nil {
		return err
	}
	c.finalized = true
	trash := c.ns + ".trash"
	names := make([]string, 0, len(c.consumable))
	for sp := range c.consumable {
		names = append(names, sp)
	}
	sort.Strings(names)
	for _, sp := range names {
		if c.consumable[sp] {
			continue
		}
		c.Net.AddSpecies(trash)
		if err := c.Net.AddReaction("discard."+sp,
			map[string]int{sp: 1}, map[string]int{trash: 1}, crn.Fast, 1); err != nil {
			return err
		}
		c.discarded = append(c.discarded, sp)
	}
	if err := c.Scheme.Build(); err != nil {
		return err
	}
	return c.Net.Validate()
}

// Discarded returns the red operands that Finalize had to auto-discard —
// useful for catching synthesis bugs where a signal was meant to be used.
func (c *Circuit) Discarded() []string {
	return append([]string(nil), c.discarded...)
}

// Registers returns the circuit's registers in creation order.
func (c *Circuit) Registers() []*Register { return append([]*Register(nil), c.registers...) }

// Inputs returns the circuit's input ports in creation order.
func (c *Circuit) Inputs() []*Input { return append([]*Input(nil), c.inputs...) }

// InjectionEvent returns a simulation event that injects successive samples
// into the input's blue landing species, one per clock cycle, as the blue
// phase fills (clock CB rising): blue is being occupied by the green→blue
// hand-off at that moment anyway, so the arriving sample cannot disturb any
// gate, and it joins the next blue→red release. (Injecting while the *green*
// phase rises would occupy blue during the red→green hand-off and stall its
// absence-indicator gate.) Sample 0 of the stream is expected to be placed
// with SetFirstSample; next(k) is called with k = 1, 2, ... and returns the
// sample for compute cycle k.
func (c *Circuit) InjectionEvent(in *Input, next func(cycle int) float64) *sim.Event {
	// The Schmitt band is intentionally narrow and centred: under heavy
	// rate jitter the gates leak more and a clock phase can keep a
	// standing residue of a quarter-heartbeat or so between its active
	// windows; the re-arm threshold must stay above that residue while the
	// fire threshold stays below the (possibly depressed) peak.
	cycle := 0
	return &sim.Event{
		Probe: c.Clock.B,
		High:  c.Clock.Amount * 0.55,
		Low:   c.Clock.Amount * 0.40,
		Fire: func(_ float64, s *sim.State) {
			cycle++
			if x := next(cycle); x > 0 {
				s.Add(in.B, x)
			}
		},
	}
}

// CycleStarts returns the times at which compute (red) phases begin.
func (c *Circuit) CycleStarts(tr *trace.Trace) ([]float64, error) {
	return clock.CycleStarts(tr, c.Clock)
}

// cycleBoundaries returns the falling edges of the clock's red phase. The
// blue→red release and the compute burst that consumes it happen around the
// red *rising* edge, so rising edges would split each output between two
// windows; by the falling edge of red, compute cycle k is always complete.
// The returned slice's element k is the end of compute cycle k.
func (c *Circuit) cycleBoundaries(tr *trace.Trace) ([]float64, error) {
	falls, err := tr.Crossings(c.Clock.R, c.Clock.Amount/2, false)
	if err != nil {
		return nil, err
	}
	if len(falls) == 0 {
		return nil, fmt.Errorf("core: clock red phase never ended; horizon too short?")
	}
	return falls, nil
}

// SinkPerCycle recovers the per-cycle values delivered to a sink: element k
// is the amount accumulated by the end of compute cycle k (the falling edge
// of the k-th red phase) since the end of cycle k-1.
func (c *Circuit) SinkPerCycle(tr *trace.Trace, sink string) ([]float64, error) {
	falls, err := c.cycleBoundaries(tr)
	if err != nil {
		return nil, err
	}
	prev := 0.0
	out := make([]float64, 0, len(falls))
	for _, f := range falls {
		v, err := tr.At(sink, f)
		if err != nil {
			return nil, err
		}
		out = append(out, v-prev)
		prev = v
	}
	return out, nil
}

// RegisterPerCycle recovers the register's value stream: element k is the
// value the register delivered to compute cycle k. Values are read from the
// blue (master latch) stage, where each value parks stably between the
// green→blue and blue→red hand-offs: the value delivered to cycle k parked
// in d.B between the red falling edges k-1 and k. Cycle 0 reports the
// register's initial value.
func (c *Circuit) RegisterPerCycle(tr *trace.Trace, r *Register) ([]float64, error) {
	falls, err := c.cycleBoundaries(tr)
	if err != nil {
		return nil, err
	}
	series, err := tr.Series(r.B)
	if err != nil {
		return nil, err
	}
	out := []float64{c.Net.InitOf(r.Q)}
	for k := 1; k < len(falls); k++ {
		lo, hi := falls[k-1], falls[k]
		peak := 0.0
		for i, t := range tr.T {
			if t < lo || t > hi {
				continue
			}
			if series[i] > peak {
				peak = series[i]
			}
		}
		out = append(out, peak)
	}
	return out, nil
}
