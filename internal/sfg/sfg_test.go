package sfg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGraphConstructionErrors(t *testing.T) {
	g := New()
	if err := g.Input("x"); err != nil {
		t.Fatal(err)
	}
	if err := g.Input("x"); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if err := g.Input(""); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := g.Gain("g", "x", 0, 1); err == nil {
		t.Fatal("zero gain accepted")
	}
	if err := g.Add("a", "x"); err == nil {
		t.Fatal("unary add accepted")
	}
	if err := g.Delay("d", "x", -1); err == nil {
		t.Fatal("negative delay init accepted")
	}
}

func TestValidateReferences(t *testing.T) {
	g := New()
	if err := g.Input("x"); err != nil {
		t.Fatal(err)
	}
	if err := g.Output("y", "ghost"); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err == nil {
		t.Fatal("dangling reference accepted")
	}

	g2 := New()
	if err := g2.Input("x"); err != nil {
		t.Fatal(err)
	}
	if err := g2.Output("y", "x"); err != nil {
		t.Fatal(err)
	}
	if err := g2.Gain("g", "y", 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g2.Validate(); err == nil {
		t.Fatal("consuming an output accepted")
	}
}

func TestValidateCombinationalCycle(t *testing.T) {
	g := New()
	if err := g.Input("x"); err != nil {
		t.Fatal(err)
	}
	if err := g.Add("a", "x", "b"); err != nil {
		t.Fatal(err)
	}
	if err := g.Gain("b", "a", 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err == nil {
		t.Fatal("combinational cycle accepted")
	}
	// The same loop through a delay is legal.
	g2 := New()
	if err := g2.Input("x"); err != nil {
		t.Fatal(err)
	}
	if err := g2.Add("a", "x", "b"); err != nil {
		t.Fatal(err)
	}
	if err := g2.Delay("d", "a", 0); err != nil {
		t.Fatal(err)
	}
	if err := g2.Gain("b", "d", 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g2.Output("y", "a"); err != nil {
		t.Fatal(err)
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunDelayLine(t *testing.T) {
	g := New()
	for _, err := range []error{
		g.Input("x"),
		g.Delay("d1", "x", 0),
		g.Delay("d2", "d1", 0),
		g.Output("y", "d2"),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	out, err := g.Run(map[string][]float64{"x": {1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0, 1, 2}
	for i, w := range want {
		if out["y"][i] != w {
			t.Fatalf("y = %v, want %v", out["y"], want)
		}
	}
}

func TestRunDelayInitialValue(t *testing.T) {
	g := New()
	for _, err := range []error{
		g.Input("x"),
		g.Delay("d", "x", 7),
		g.Output("y", "d"),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	out, err := g.Run(map[string][]float64{"x": {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if out["y"][0] != 7 || out["y"][1] != 1 {
		t.Fatalf("y = %v", out["y"])
	}
}

func TestRunInputValidation(t *testing.T) {
	g, err := MovingAverage(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(nil); err == nil {
		t.Fatal("missing input samples accepted")
	}
	empty := New()
	if err := empty.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := empty.Run(nil); err == nil {
		t.Fatal("graph without inputs accepted")
	}
}

func TestMovingAverage2(t *testing.T) {
	g, err := MovingAverage(2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.Run(map[string][]float64{"x": {1, 1, 0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 1, 0.5, 1}
	for i, w := range want {
		if math.Abs(out["y"][i]-w) > 1e-12 {
			t.Fatalf("y = %v, want %v", out["y"], want)
		}
	}
	if _, err := MovingAverage(1); err == nil {
		t.Fatal("1-tap average accepted")
	}
}

func TestMovingAverage4StepResponse(t *testing.T) {
	g, err := MovingAverage(4)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 1, 1, 1, 1, 1}
	out, err := g.Run(map[string][]float64{"x": x})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.25, 0.5, 0.75, 1, 1, 1}
	for i, w := range want {
		if math.Abs(out["y"][i]-w) > 1e-12 {
			t.Fatalf("y = %v, want %v", out["y"], want)
		}
	}
}

func TestLeakyIntegrator(t *testing.T) {
	g, err := LeakyIntegrator(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.Run(map[string][]float64{"x": {1, 0, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 0.5, 0.25, 0.125}
	for i, w := range want {
		if math.Abs(out["y"][i]-w) > 1e-12 {
			t.Fatalf("y = %v, want %v", out["y"], want)
		}
	}
	if _, err := LeakyIntegrator(2, 2); err == nil {
		t.Fatal("unit-gain feedback accepted")
	}
}

func TestConsumers(t *testing.T) {
	g, err := MovingAverage(3)
	if err != nil {
		t.Fatal(err)
	}
	cons := g.Consumers()
	// x feeds d1 and the adder.
	if cons["x"] != 2 {
		t.Fatalf("consumers of x = %d, want 2", cons["x"])
	}
	// the last delay feeds only the adder.
	if cons["d2"] != 1 {
		t.Fatalf("consumers of d2 = %d, want 1", cons["d2"])
	}
}

// Property: the moving average of a constant signal converges to that
// constant, for random tap counts and levels.
func TestQuickMovingAverageDC(t *testing.T) {
	prop := func(tapsRaw, levelRaw uint8) bool {
		taps := 2 + int(tapsRaw)%6
		level := float64(levelRaw) / 32
		g, err := MovingAverage(taps)
		if err != nil {
			return false
		}
		x := make([]float64, taps+3)
		for i := range x {
			x[i] = level
		}
		out, err := g.Run(map[string][]float64{"x": x})
		if err != nil {
			return false
		}
		final := out["y"][len(x)-1]
		return math.Abs(final-level) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: linearity — scaling the input scales the output.
func TestQuickLinearity(t *testing.T) {
	prop := func(seedRaw [6]uint8, scaleRaw uint8) bool {
		scale := 1 + float64(scaleRaw)/64
		g, err := MovingAverage(3)
		if err != nil {
			return false
		}
		x := make([]float64, 6)
		sx := make([]float64, 6)
		for i := range x {
			x[i] = float64(seedRaw[i]) / 51
			sx[i] = x[i] * scale
		}
		o1, err := g.Run(map[string][]float64{"x": x})
		if err != nil {
			return false
		}
		o2, err := g.Run(map[string][]float64{"x": sx})
		if err != nil {
			return false
		}
		for i := range o1["y"] {
			if math.Abs(o2["y"][i]-scale*o1["y"][i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFIRMatchesConvolution(t *testing.T) {
	// y[k] = x[k]/2 + x[k-2]/4 (tap 1 has zero weight).
	g, err := FIR([]Coeff{{1, 2}, {0, 1}, {1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.Run(map[string][]float64{"x": {4, 0, 0, 8}})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 0, 1, 4}
	for i, w := range want {
		if math.Abs(out["y"][i]-w) > 1e-12 {
			t.Fatalf("y = %v, want %v", out["y"], want)
		}
	}
}

func TestFIRSingleTap(t *testing.T) {
	g, err := FIR([]Coeff{{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.Run(map[string][]float64{"x": {3, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if out["y"][0] != 3 || out["y"][1] != 5 {
		t.Fatalf("identity FIR: %v", out["y"])
	}
}

func TestFIRValidation(t *testing.T) {
	if _, err := FIR(nil); err == nil {
		t.Fatal("empty FIR accepted")
	}
	if _, err := FIR([]Coeff{{0, 1}, {0, 1}}); err == nil {
		t.Fatal("all-zero FIR accepted")
	}
}

func TestFIRMovingAverageEquivalence(t *testing.T) {
	// A 2-tap moving average is FIR [1/2, 1/2].
	ma, err := MovingAverage(2)
	if err != nil {
		t.Fatal(err)
	}
	fir, err := FIR([]Coeff{{1, 2}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	x := map[string][]float64{"x": {1, 0.5, 2, 0, 1}}
	a, err := ma.Run(x)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fir.Run(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a["y"] {
		if math.Abs(a["y"][i]-b["y"][i]) > 1e-12 {
			t.Fatalf("MA %v vs FIR %v", a["y"], b["y"])
		}
	}
}
