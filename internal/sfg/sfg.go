// Package sfg provides the signal-flow-graph intermediate representation
// for the DSP workloads of the DAC 2011 paper (moving-average filters and
// friends), together with an exact floating-point reference simulator. The
// molecular compiler in package synth consumes this IR; experiments compare
// the molecular trajectories against the reference outputs.
//
// A graph is a set of named nodes: inputs, outputs, unit delays, rational
// gains and adders. Fanout is implicit — any node may be referenced by any
// number of downstream nodes. Every feedback loop must pass through a delay
// (combinational cycles are rejected), exactly as in classical synchronous
// DSP.
package sfg

import (
	"fmt"
)

// Kind enumerates node types.
type Kind int

const (
	KindInput Kind = iota
	KindOutput
	KindDelay
	KindGain
	KindAdd
)

// String returns a short name for the kind.
func (k Kind) String() string {
	return [...]string{"input", "output", "delay", "gain", "add"}[k]
}

// Node is one signal-flow-graph node.
type Node struct {
	Name   string
	Kind   Kind
	Inputs []string // upstream node names (arity depends on Kind)
	P, Q   int      // gain = P/Q (KindGain only)
	Init   float64  // initial state (KindDelay only)
}

// Graph is a signal-flow graph under construction or validated.
type Graph struct {
	nodes  []*Node
	byName map[string]*Node
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{byName: make(map[string]*Node)}
}

func (g *Graph) add(n *Node) error {
	if n.Name == "" {
		return fmt.Errorf("sfg: empty node name")
	}
	if _, dup := g.byName[n.Name]; dup {
		return fmt.Errorf("sfg: duplicate node %q", n.Name)
	}
	g.nodes = append(g.nodes, n)
	g.byName[n.Name] = n
	return nil
}

// Input declares an external input.
func (g *Graph) Input(name string) error {
	return g.add(&Node{Name: name, Kind: KindInput})
}

// Output declares an external output fed by src.
func (g *Graph) Output(name, src string) error {
	return g.add(&Node{Name: name, Kind: KindOutput, Inputs: []string{src}})
}

// Delay declares a unit delay (register) fed by src with the given initial
// value.
func (g *Graph) Delay(name, src string, init float64) error {
	if init < 0 {
		return fmt.Errorf("sfg: delay %q: negative initial value %g", name, init)
	}
	return g.add(&Node{Name: name, Kind: KindDelay, Inputs: []string{src}, Init: init})
}

// Gain declares a rational gain p/q applied to src.
func (g *Graph) Gain(name, src string, p, q int) error {
	if p < 1 || q < 1 {
		return fmt.Errorf("sfg: gain %q: %d/%d must be positive", name, p, q)
	}
	return g.add(&Node{Name: name, Kind: KindGain, Inputs: []string{src}, P: p, Q: q})
}

// Add declares an adder over two or more sources.
func (g *Graph) Add(name string, srcs ...string) error {
	if len(srcs) < 2 {
		return fmt.Errorf("sfg: add %q needs at least two inputs", name)
	}
	return g.add(&Node{Name: name, Kind: KindAdd, Inputs: append([]string(nil), srcs...)})
}

// Nodes returns the nodes in declaration order.
func (g *Graph) Nodes() []*Node { return append([]*Node(nil), g.nodes...) }

// Node looks a node up by name.
func (g *Graph) Node(name string) (*Node, bool) {
	n, ok := g.byName[name]
	return n, ok
}

// Consumers returns, for every node, how many downstream references it has.
func (g *Graph) Consumers() map[string]int {
	out := make(map[string]int, len(g.nodes))
	for _, n := range g.nodes {
		for _, in := range n.Inputs {
			out[in]++
		}
	}
	return out
}

// Validate checks structural well-formedness: arities, reference integrity,
// and the synchronous-circuit rule that every cycle passes through a delay.
func (g *Graph) Validate() error {
	for _, n := range g.nodes {
		for _, in := range n.Inputs {
			src, ok := g.byName[in]
			if !ok {
				return fmt.Errorf("sfg: node %q references unknown node %q", n.Name, in)
			}
			if src.Kind == KindOutput {
				return fmt.Errorf("sfg: node %q consumes output node %q", n.Name, in)
			}
		}
		switch n.Kind {
		case KindInput:
			if len(n.Inputs) != 0 {
				return fmt.Errorf("sfg: input %q has inputs", n.Name)
			}
		case KindOutput, KindDelay, KindGain:
			if len(n.Inputs) != 1 {
				return fmt.Errorf("sfg: %s %q needs exactly one input", n.Kind, n.Name)
			}
		case KindAdd:
			if len(n.Inputs) < 2 {
				return fmt.Errorf("sfg: add %q needs at least two inputs", n.Name)
			}
		}
	}
	_, err := g.topoOrder()
	return err
}

// topoOrder returns the combinational evaluation order: all nodes sorted so
// that every node follows its combinational dependencies. Delay nodes depend
// on nothing combinationally (their output is state); their input edge is
// sequential. An error means a combinational cycle.
func (g *Graph) topoOrder() ([]*Node, error) {
	deg := make(map[string]int, len(g.nodes))
	dependents := make(map[string][]string)
	for _, n := range g.nodes {
		if n.Kind == KindDelay || n.Kind == KindInput {
			deg[n.Name] = 0
			continue
		}
		deg[n.Name] = len(n.Inputs)
		for _, in := range n.Inputs {
			dependents[in] = append(dependents[in], n.Name)
		}
	}
	var queue []*Node
	for _, n := range g.nodes {
		if deg[n.Name] == 0 {
			queue = append(queue, n)
		}
	}
	var order []*Node
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, d := range dependents[n.Name] {
			deg[d]--
			if deg[d] == 0 {
				queue = append(queue, g.byName[d])
			}
		}
	}
	if len(order) != len(g.nodes) {
		return nil, fmt.Errorf("sfg: combinational cycle (every feedback loop must pass through a delay)")
	}
	return order, nil
}

// Run is the golden reference simulator: it drives the graph with the given
// input sample streams (all the same length) and returns the sample streams
// observed at every output. This is the exact synchronous semantics the
// molecular compilation must reproduce.
func (g *Graph) Run(inputs map[string][]float64) (map[string][]float64, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	nSamples := -1
	for _, n := range g.nodes {
		if n.Kind != KindInput {
			continue
		}
		s, ok := inputs[n.Name]
		if !ok {
			return nil, fmt.Errorf("sfg: missing samples for input %q", n.Name)
		}
		if nSamples == -1 {
			nSamples = len(s)
		} else if len(s) != nSamples {
			return nil, fmt.Errorf("sfg: input %q has %d samples, want %d", n.Name, len(s), nSamples)
		}
	}
	if nSamples == -1 {
		return nil, fmt.Errorf("sfg: graph has no inputs")
	}
	order, err := g.topoOrder()
	if err != nil {
		return nil, err
	}
	state := make(map[string]float64)
	for _, n := range g.nodes {
		if n.Kind == KindDelay {
			state[n.Name] = n.Init
		}
	}
	outs := make(map[string][]float64)
	for _, n := range g.nodes {
		if n.Kind == KindOutput {
			outs[n.Name] = make([]float64, 0, nSamples)
		}
	}
	vals := make(map[string]float64, len(g.nodes))
	for k := 0; k < nSamples; k++ {
		for _, n := range order {
			switch n.Kind {
			case KindInput:
				vals[n.Name] = inputs[n.Name][k]
			case KindDelay:
				vals[n.Name] = state[n.Name]
			case KindGain:
				vals[n.Name] = vals[n.Inputs[0]] * float64(n.P) / float64(n.Q)
			case KindAdd:
				sum := 0.0
				for _, in := range n.Inputs {
					sum += vals[in]
				}
				vals[n.Name] = sum
			case KindOutput:
				v := vals[n.Inputs[0]]
				vals[n.Name] = v
				outs[n.Name] = append(outs[n.Name], v)
			}
		}
		for _, n := range g.nodes {
			if n.Kind == KindDelay {
				state[n.Name] = vals[n.Inputs[0]]
			}
		}
	}
	return outs, nil
}

// MovingAverage builds the paper's canonical DSP example: an n-tap moving
// average filter y[k] = (x[k] + x[k-1] + ... + x[k-n+1])/n with input node
// "x" and output node "y". For molecular compilation n should be a power of
// two so the 1/n gain decomposes into bimolecular halvings.
func MovingAverage(taps int) (*Graph, error) {
	if taps < 2 {
		return nil, fmt.Errorf("sfg: moving average needs >= 2 taps, got %d", taps)
	}
	g := New()
	if err := g.Input("x"); err != nil {
		return nil, err
	}
	terms := []string{"x"}
	prev := "x"
	for i := 1; i < taps; i++ {
		d := fmt.Sprintf("d%d", i)
		if err := g.Delay(d, prev, 0); err != nil {
			return nil, err
		}
		terms = append(terms, d)
		prev = d
	}
	if err := g.Add("sum", terms...); err != nil {
		return nil, err
	}
	if err := g.Gain("avg", "sum", 1, taps); err != nil {
		return nil, err
	}
	if err := g.Output("y", "avg"); err != nil {
		return nil, err
	}
	return g, nil
}

// Coeff is one FIR tap weight, the rational P/Q.
type Coeff struct {
	P, Q int
}

// FIR builds a general finite-impulse-response filter
// y[k] = Σ_i coeffs[i]·x[k-i] with input "x" and output "y". Tap weights are
// rationals; denominators should be powers of two so the molecular compiler
// can lower them to bimolecular halvings. A tap with P == 0 contributes
// nothing to the sum but still occupies its position in the delay chain.
func FIR(coeffs []Coeff) (*Graph, error) {
	if len(coeffs) < 1 {
		return nil, fmt.Errorf("sfg: FIR needs at least one tap")
	}
	g := New()
	if err := g.Input("x"); err != nil {
		return nil, err
	}
	prev := "x"
	var terms []string
	for i, c := range coeffs {
		node := prev
		if i > 0 {
			d := fmt.Sprintf("d%d", i)
			if err := g.Delay(d, prev, 0); err != nil {
				return nil, err
			}
			prev = d
			node = d
		}
		if c.P == 0 {
			continue
		}
		if c.P == 1 && c.Q == 1 {
			terms = append(terms, node)
			continue
		}
		gn := fmt.Sprintf("g%d", i)
		if err := g.Gain(gn, node, c.P, c.Q); err != nil {
			return nil, err
		}
		terms = append(terms, gn)
	}
	switch len(terms) {
	case 0:
		return nil, fmt.Errorf("sfg: FIR with all-zero taps")
	case 1:
		if err := g.Output("y", terms[0]); err != nil {
			return nil, err
		}
	default:
		if err := g.Add("sum", terms...); err != nil {
			return nil, err
		}
		if err := g.Output("y", "sum"); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// LeakyIntegrator builds the first-order IIR filter
// y[k] = x[k] + (p/q)·y[k-1] (p/q < 1 for stability), with input "x" and
// output "y" — a feedback workload complementing the feed-forward moving
// average.
func LeakyIntegrator(p, q int) (*Graph, error) {
	if p < 1 || q < 1 || p >= q {
		return nil, fmt.Errorf("sfg: leaky integrator gain %d/%d must be in (0,1)", p, q)
	}
	g := New()
	if err := g.Input("x"); err != nil {
		return nil, err
	}
	if err := g.Add("sum", "x", "fb"); err != nil {
		return nil, err
	}
	if err := g.Delay("d", "sum", 0); err != nil {
		return nil, err
	}
	if err := g.Gain("fb", "d", p, q); err != nil {
		return nil, err
	}
	if err := g.Output("y", "sum"); err != nil {
		return nil, err
	}
	return g, nil
}
