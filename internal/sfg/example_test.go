package sfg_test

import (
	"fmt"

	"repro/internal/sfg"
)

// Build and run the golden model of the paper's 2-tap moving average.
func ExampleMovingAverage() {
	g, err := sfg.MovingAverage(2)
	if err != nil {
		panic(err)
	}
	out, err := g.Run(map[string][]float64{"x": {1, 1, 0, 2}})
	if err != nil {
		panic(err)
	}
	fmt.Println(out["y"])
	// Output:
	// [0.5 1 0.5 1]
}

// A custom graph: y[k] = x[k] + x[k-1]/2 with explicit nodes.
func ExampleGraph_Run() {
	g := sfg.New()
	for _, err := range []error{
		g.Input("x"),
		g.Delay("d", "x", 0),
		g.Gain("h", "d", 1, 2),
		g.Add("s", "x", "h"),
		g.Output("y", "s"),
	} {
		if err != nil {
			panic(err)
		}
	}
	out, err := g.Run(map[string][]float64{"x": {2, 0, 4}})
	if err != nil {
		panic(err)
	}
	fmt.Println(out["y"])
	// Output:
	// [2 1 4]
}
