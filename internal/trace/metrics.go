package trace

import (
	"fmt"
	"math"
)

// RMSE returns the root-mean-square difference between two equal-length
// sample vectors.
func RMSE(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("trace: RMSE length mismatch %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, fmt.Errorf("trace: RMSE of empty vectors")
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a))), nil
}

// MaxAbsDiff returns the largest absolute difference between two
// equal-length sample vectors.
func MaxAbsDiff(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("trace: MaxAbsDiff length mismatch %d vs %d", len(a), len(b))
	}
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m, nil
}

// MeanAbsError returns the mean absolute difference between two equal-length
// sample vectors.
func MeanAbsError(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("trace: MeanAbsError length mismatch %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, fmt.Errorf("trace: MeanAbsError of empty vectors")
	}
	s := 0.0
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s / float64(len(a)), nil
}

// Max returns the maximum of a sample vector (and 0 for empty input).
func Max(a []float64) float64 {
	m := math.Inf(-1)
	if len(a) == 0 {
		return 0
	}
	for _, v := range a {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum of a sample vector (and 0 for empty input).
func Min(a []float64) float64 {
	m := math.Inf(1)
	if len(a) == 0 {
		return 0
	}
	for _, v := range a {
		if v < m {
			m = v
		}
	}
	return m
}

// Mean returns the arithmetic mean of a sample vector (0 for empty input).
func Mean(a []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range a {
		s += v
	}
	return s / float64(len(a))
}

// Overlap quantifies mutual exclusivity of phase signals: it returns the
// time-averaged value of min(a, b) normalized by the time-averaged value of
// max(a, b). Two perfectly exclusive square waves give 0; identical signals
// give 1. Used to verify the clock's three phases never coexist materially.
func Overlap(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("trace: Overlap length mismatch %d vs %d", len(a), len(b))
	}
	num, den := 0.0, 0.0
	for i := range a {
		num += math.Min(a[i], b[i])
		den += math.Max(a[i], b[i])
	}
	if den == 0 {
		return 0, fmt.Errorf("trace: Overlap of all-zero signals")
	}
	return num / den, nil
}
