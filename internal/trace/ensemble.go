package trace

import (
	"fmt"
	"math"
)

// Ensemble is the result of a multi-run simulation (sim.RunMany): one slot
// per run, in run order. Runs that produced full traces carry them in
// Traces; finals-only runs (sweep workloads that never read trajectories)
// carry only their final state. Either way Finals[i] holds run i's final
// concentrations, indexed consistently with Names, and Errs[i] its error
// (nil on success) — a failed run leaves a nil Traces/Finals slot rather
// than shifting later runs.
type Ensemble struct {
	Names  []string
	Traces []*Trace    // per-run trajectories; nil slices/slots in finals-only mode
	Finals [][]float64 // per-run final concentrations
	Errs   []error     // per-run errors, nil entries on success
}

// NewEnsemble returns an empty ensemble for n runs over the named species.
func NewEnsemble(names []string, n int) *Ensemble {
	return &Ensemble{
		Names:  names,
		Traces: make([]*Trace, n),
		Finals: make([][]float64, n),
		Errs:   make([]error, n),
	}
}

// Runs returns the number of run slots.
func (e *Ensemble) Runs() int { return len(e.Finals) }

// OK returns the number of runs that completed without error.
func (e *Ensemble) OK() int {
	n := 0
	for i := range e.Errs {
		if e.Errs[i] == nil && e.Finals[i] != nil {
			n++
		}
	}
	return n
}

// Err returns the first per-run error, or nil if every run succeeded.
func (e *Ensemble) Err() error {
	for i, err := range e.Errs {
		if err != nil {
			return fmt.Errorf("run %d: %w", i, err)
		}
	}
	return nil
}

// Index returns the column of the named species.
func (e *Ensemble) Index(name string) (int, bool) {
	for i, n := range e.Names {
		if n == name {
			return i, true
		}
	}
	return 0, false
}

// Mean returns the across-run mean of the final concentrations, one entry
// per species, over the runs that succeeded. Returns nil if no run did.
func (e *Ensemble) Mean() []float64 {
	var mean []float64
	n := 0.0
	for i, f := range e.Finals {
		if f == nil || e.Errs[i] != nil {
			continue
		}
		if mean == nil {
			mean = make([]float64, len(f))
		}
		for j, v := range f {
			mean[j] += v
		}
		n++
	}
	if mean == nil {
		return nil
	}
	for j := range mean {
		mean[j] /= n
	}
	return mean
}

// Stddev returns the across-run sample standard deviation of the final
// concentrations (zero with fewer than two successful runs), one entry per
// species. Returns nil if no run succeeded.
func (e *Ensemble) Stddev() []float64 {
	mean := e.Mean()
	if mean == nil {
		return nil
	}
	ss := make([]float64, len(mean))
	n := 0.0
	for i, f := range e.Finals {
		if f == nil || e.Errs[i] != nil {
			continue
		}
		for j, v := range f {
			d := v - mean[j]
			ss[j] += d * d
		}
		n++
	}
	if n < 2 {
		return ss // all zeros: no spread estimate from one run
	}
	for j := range ss {
		ss[j] = math.Sqrt(ss[j] / (n - 1))
	}
	return ss
}

// FinalMean returns the across-run mean final concentration of one species.
func (e *Ensemble) FinalMean(name string) (float64, error) {
	i, ok := e.Index(name)
	if !ok {
		return 0, fmt.Errorf("trace: unknown species %q", name)
	}
	mean := e.Mean()
	if mean == nil {
		return 0, fmt.Errorf("trace: ensemble has no successful runs")
	}
	return mean[i], nil
}
