package trace

import (
	"errors"
	"math"
	"testing"
)

// fillRun records a successful run with the given finals.
func fillRun(e *Ensemble, i int, finals []float64) {
	e.Finals[i] = finals
}

func TestEnsembleStats(t *testing.T) {
	e := NewEnsemble([]string{"A", "B"}, 3)
	fillRun(e, 0, []float64{1, 10})
	fillRun(e, 1, []float64{3, 30})
	e.Errs[2] = errors.New("boom")

	if got := e.Runs(); got != 3 {
		t.Fatalf("Runs = %d, want 3", got)
	}
	if got := e.OK(); got != 2 {
		t.Fatalf("OK = %d, want 2 (failed slot must not count)", got)
	}
	if err := e.Err(); err == nil || err.Error() != "run 2: boom" {
		t.Fatalf("Err = %v, want wrapped run 2 error", err)
	}

	mean := e.Mean()
	if mean[0] != 2 || mean[1] != 20 {
		t.Fatalf("Mean = %v, want [2 20]", mean)
	}
	// Sample stddev over {1,3} and {10,30}: sqrt(2) and 10*sqrt(2).
	sd := e.Stddev()
	if math.Abs(sd[0]-math.Sqrt2) > 1e-12 || math.Abs(sd[1]-10*math.Sqrt2) > 1e-12 {
		t.Fatalf("Stddev = %v, want [sqrt2 10*sqrt2]", sd)
	}

	if got, err := e.FinalMean("B"); err != nil || got != 20 {
		t.Fatalf("FinalMean(B) = %v, %v", got, err)
	}
	if _, err := e.FinalMean("nope"); err == nil {
		t.Fatal("FinalMean of unknown species accepted")
	}
	if i, ok := e.Index("B"); !ok || i != 1 {
		t.Fatalf("Index(B) = %d, %v", i, ok)
	}
}

func TestEnsembleDegenerate(t *testing.T) {
	// All runs failed: no mean, no stddev, FinalMean errors.
	e := NewEnsemble([]string{"A"}, 2)
	e.Errs[0] = errors.New("x")
	e.Errs[1] = errors.New("y")
	if e.Mean() != nil || e.Stddev() != nil {
		t.Fatal("statistics over zero successful runs must be nil")
	}
	if _, err := e.FinalMean("A"); err == nil {
		t.Fatal("FinalMean over zero successful runs accepted")
	}

	// A single successful run has a mean but no spread estimate.
	e = NewEnsemble([]string{"A"}, 1)
	fillRun(e, 0, []float64{5})
	if m := e.Mean(); m[0] != 5 {
		t.Fatalf("Mean = %v", m)
	}
	if sd := e.Stddev(); sd[0] != 0 {
		t.Fatalf("Stddev of one run = %v, want 0", sd)
	}
	if err := e.Err(); err != nil {
		t.Fatalf("Err = %v, want nil", err)
	}
}
