package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteCSV writes the trace as CSV with a header row ("t", species...),
// restricted to the named species (all species when names is empty).
func (tr *Trace) WriteCSV(w io.Writer, names ...string) error {
	if len(names) == 0 {
		names = tr.Names
	}
	cols := make([]int, len(names))
	for i, n := range names {
		c, ok := tr.Index(n)
		if !ok {
			return fmt.Errorf("trace: unknown species %q", n)
		}
		cols[i] = c
	}
	cw := csv.NewWriter(w)
	header := append([]string{"t"}, names...)
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(names)+1)
	for k, t := range tr.T {
		rec[0] = strconv.FormatFloat(t, 'g', -1, 64)
		for i, c := range cols {
			rec[i+1] = strconv.FormatFloat(tr.Rows[k][c], 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace previously written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: csv: %w", err)
	}
	if len(recs) == 0 || len(recs[0]) < 2 || recs[0][0] != "t" {
		return nil, fmt.Errorf("trace: csv: missing or malformed header")
	}
	tr := New(recs[0][1:])
	row := make([]float64, len(recs[0])-1)
	for _, rec := range recs[1:] {
		if len(rec) != len(recs[0]) {
			return nil, fmt.Errorf("trace: csv: ragged row")
		}
		t, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: csv: bad time %q", rec[0])
		}
		for i, s := range rec[1:] {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: csv: bad value %q", s)
			}
			row[i] = v
		}
		if err := tr.Append(t, row); err != nil {
			return nil, err
		}
	}
	return tr, nil
}

// ASCIIPlot renders the named series as a fixed-size character plot, one
// letter per series (a, b, c, ...), with '*' marking collisions. It is used
// by the command-line tools and EXPERIMENTS.md to reproduce the paper's
// figures in text form.
func (tr *Trace) ASCIIPlot(width, height int, names ...string) (string, error) {
	if width < 10 || height < 4 {
		return "", fmt.Errorf("trace: plot too small (%dx%d)", width, height)
	}
	if len(tr.T) < 2 {
		return "", fmt.Errorf("trace: need at least 2 samples to plot")
	}
	if len(names) == 0 {
		names = tr.Names
	}
	if len(names) > 26 {
		return "", fmt.Errorf("trace: at most 26 series per plot")
	}
	t0, t1 := tr.T[0], tr.T[len(tr.T)-1]
	ymax := math.Inf(-1)
	ymin := 0.0 // concentrations: anchor the floor at zero
	series := make([][]float64, len(names))
	for i, n := range names {
		s, err := tr.Resample(n, t0, t1, width)
		if err != nil {
			return "", err
		}
		series[i] = s
		if m := Max(s); m > ymax {
			ymax = m
		}
		if m := Min(s); m < ymin {
			ymin = m
		}
	}
	if ymax <= ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for i, s := range series {
		mark := byte('a' + i)
		for x, v := range s {
			f := (v - ymin) / (ymax - ymin)
			r := height - 1 - int(f*float64(height-1)+0.5)
			if r < 0 {
				r = 0
			}
			if r >= height {
				r = height - 1
			}
			switch grid[r][x] {
			case ' ':
				grid[r][x] = mark
			case mark:
			default:
				grid[r][x] = '*'
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%.4g\n", ymax)
	for _, row := range grid {
		sb.WriteByte('|')
		sb.Write(row)
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%.4g%st=%.4g..%.4g\n", ymin, strings.Repeat(" ", 3), t0, t1)
	for i, n := range names {
		fmt.Fprintf(&sb, "  %c = %s\n", 'a'+i, n)
	}
	return sb.String(), nil
}
