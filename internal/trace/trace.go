// Package trace holds simulated concentration time series and the analysis
// utilities the experiments are built on: interpolation, resampling, error
// metrics, threshold-crossing and oscillation-period extraction, CSV export
// and ASCII plotting.
package trace

import (
	"fmt"
	"math"
	"sort"
)

// Trace is a sampled multi-species time series. Rows[i] holds the
// concentrations of all species at time T[i], indexed consistently with
// Names. T is strictly increasing.
//
// Names is immutable after New: the name->column index is built once and
// Append validates row width against it, so mutating Names (or appending to
// it) desynchronizes lookups from the stored rows. New defensively copies
// the slice it is given, so callers may reuse theirs freely.
//
// Storage: appended rows are copied into a flat backing block and Rows[i]
// is a full-capacity sub-slice of it, so one sample costs one bulk copy and
// no per-row allocation. When a block fills, a fresh block is started and
// older rows keep the old one alive — values stay valid forever, the
// simulators just pre-size with Grow so the steady-state Append path never
// allocates at all.
type Trace struct {
	Names []string
	T     []float64
	Rows  [][]float64

	index map[string]int
	back  []float64 // current flat backing block; Rows entries alias blocks
}

// New creates an empty trace over the given species names. The slice is
// copied; later mutation of the caller's slice does not affect the trace.
func New(names []string) *Trace {
	tr := &Trace{Names: append([]string(nil), names...)}
	tr.buildIndex()
	return tr
}

func (tr *Trace) buildIndex() {
	tr.index = make(map[string]int, len(tr.Names))
	for i, n := range tr.Names {
		tr.index[n] = i
	}
}

// Grow pre-allocates capacity for n additional samples (time stamps, row
// headers and flat row storage), so the next n Append calls are guaranteed
// allocation-free. The simulators size it from TEnd/SampleEvery before
// entering their hot loops. Growing never disturbs existing samples.
func (tr *Trace) Grow(n int) {
	if n <= 0 {
		return
	}
	if free := cap(tr.T) - len(tr.T); free < n {
		t2 := make([]float64, len(tr.T), len(tr.T)+n)
		copy(t2, tr.T)
		tr.T = t2
	}
	if free := cap(tr.Rows) - len(tr.Rows); free < n {
		r2 := make([][]float64, len(tr.Rows), len(tr.Rows)+n)
		copy(r2, tr.Rows)
		tr.Rows = r2
	}
	w := len(tr.Names)
	if free := cap(tr.back) - len(tr.back); free < n*w {
		// Start a fresh block; rows already handed out keep the old block
		// alive, so no copying is needed.
		tr.back = make([]float64, 0, n*w)
	}
}

// Append adds a sample. The row is copied. Samples must arrive in strictly
// increasing time order; violations are rejected. When the trace has been
// pre-sized with Grow, Append performs no allocation.
func (tr *Trace) Append(t float64, row []float64) error {
	w := len(tr.Names)
	if len(row) != w {
		return fmt.Errorf("trace: row has %d values, want %d", len(row), w)
	}
	if n := len(tr.T); n > 0 && t <= tr.T[n-1] {
		return fmt.Errorf("trace: non-increasing time %g after %g", t, tr.T[n-1])
	}
	if cap(tr.back)-len(tr.back) < w {
		// Current block is full: start another, sized for the rows seen so
		// far (geometric growth, floor of 64 rows).
		rows := len(tr.Rows)
		if rows < 64 {
			rows = 64
		}
		tr.back = make([]float64, 0, rows*max(w, 1))
	}
	start := len(tr.back)
	tr.back = append(tr.back, row...)
	tr.T = append(tr.T, t)
	tr.Rows = append(tr.Rows, tr.back[start:start+w:start+w])
	return nil
}

// Len returns the number of samples.
func (tr *Trace) Len() int { return len(tr.T) }

// Index returns the column index of a species name.
func (tr *Trace) Index(name string) (int, bool) {
	if tr.index == nil {
		tr.buildIndex()
	}
	i, ok := tr.index[name]
	return i, ok
}

// Series returns the full time series of one species. The slice is freshly
// allocated.
func (tr *Trace) Series(name string) ([]float64, error) {
	i, ok := tr.Index(name)
	if !ok {
		return nil, fmt.Errorf("trace: unknown species %q", name)
	}
	out := make([]float64, len(tr.Rows))
	for k, row := range tr.Rows {
		out[k] = row[i]
	}
	return out, nil
}

// MustSeries is Series that panics on unknown names; for experiment code
// where the name set is static.
func (tr *Trace) MustSeries(name string) []float64 {
	s, err := tr.Series(name)
	if err != nil {
		panic(err)
	}
	return s
}

// At returns the linearly interpolated concentration of species name at time
// t. Times outside the sampled range clamp to the first/last sample.
func (tr *Trace) At(name string, t float64) (float64, error) {
	i, ok := tr.Index(name)
	if !ok {
		return 0, fmt.Errorf("trace: unknown species %q", name)
	}
	if len(tr.T) == 0 {
		return 0, fmt.Errorf("trace: empty")
	}
	k := sort.SearchFloat64s(tr.T, t)
	switch {
	case k == 0:
		return tr.Rows[0][i], nil
	case k >= len(tr.T):
		return tr.Rows[len(tr.T)-1][i], nil
	}
	t0, t1 := tr.T[k-1], tr.T[k]
	y0, y1 := tr.Rows[k-1][i], tr.Rows[k][i]
	f := (t - t0) / (t1 - t0)
	return y0 + f*(y1-y0), nil
}

// Final returns the last sampled value of species name (0 for unknown
// species, so callers can probe optional observables).
func (tr *Trace) Final(name string) float64 {
	i, ok := tr.Index(name)
	if !ok || len(tr.Rows) == 0 {
		return 0
	}
	return tr.Rows[len(tr.Rows)-1][i]
}

// End returns the last sampled time (0 if empty).
func (tr *Trace) End() float64 {
	if len(tr.T) == 0 {
		return 0
	}
	return tr.T[len(tr.T)-1]
}

// Resample returns the values of species name at n evenly spaced times from
// t0 to t1 inclusive.
func (tr *Trace) Resample(name string, t0, t1 float64, n int) ([]float64, error) {
	if n < 2 {
		return nil, fmt.Errorf("trace: resample needs n >= 2, got %d", n)
	}
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		t := t0 + (t1-t0)*float64(k)/float64(n-1)
		v, err := tr.At(name, t)
		if err != nil {
			return nil, err
		}
		out[k] = v
	}
	return out, nil
}

// Crossings returns the times at which the named species crosses the given
// level in the given direction (rising: from below to at-or-above), using
// linear interpolation between samples.
func (tr *Trace) Crossings(name string, level float64, rising bool) ([]float64, error) {
	s, err := tr.Series(name)
	if err != nil {
		return nil, err
	}
	var out []float64
	for k := 1; k < len(s); k++ {
		a, b := s[k-1], s[k]
		var hit bool
		if rising {
			hit = a < level && b >= level
		} else {
			hit = a > level && b <= level
		}
		if hit {
			f := (level - a) / (b - a)
			out = append(out, tr.T[k-1]+f*(tr.T[k]-tr.T[k-1]))
		}
	}
	return out, nil
}

// Period estimates the oscillation period of the named species as the mean
// interval between consecutive rising crossings of the given level. It
// requires at least three crossings and also returns the relative standard
// deviation of the intervals as a regularity measure.
func (tr *Trace) Period(name string, level float64) (period, relStdDev float64, err error) {
	cr, err := tr.Crossings(name, level, true)
	if err != nil {
		return 0, 0, err
	}
	if len(cr) < 3 {
		return 0, 0, fmt.Errorf("trace: only %d rising crossings of %s at %g; need >= 3", len(cr), name, level)
	}
	intervals := make([]float64, len(cr)-1)
	mean := 0.0
	for i := 1; i < len(cr); i++ {
		intervals[i-1] = cr[i] - cr[i-1]
		mean += intervals[i-1]
	}
	mean /= float64(len(intervals))
	varsum := 0.0
	for _, iv := range intervals {
		d := iv - mean
		varsum += d * d
	}
	sd := 0.0
	if len(intervals) > 1 {
		sd = varsum / float64(len(intervals)-1)
	}
	if mean <= 0 {
		return 0, 0, fmt.Errorf("trace: degenerate period estimate")
	}
	return mean, math.Sqrt(sd) / mean, nil
}
