package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func mkTrace(t *testing.T, names []string, pts ...[]float64) *Trace {
	t.Helper()
	tr := New(names)
	for _, p := range pts {
		if err := tr.Append(p[0], p[1:]); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func TestAppendValidation(t *testing.T) {
	tr := New([]string{"X"})
	if err := tr.Append(0, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Append(0, []float64{2}); err == nil {
		t.Fatal("non-increasing time accepted")
	}
	if err := tr.Append(1, []float64{1, 2}); err == nil {
		t.Fatal("wrong row width accepted")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestNewCopiesNames(t *testing.T) {
	names := []string{"X", "Y"}
	tr := New(names)
	names[0] = "mutated"
	if tr.Names[0] != "X" {
		t.Fatal("New aliased caller's names slice")
	}
	// The index built at New time must keep resolving the original name.
	if i, ok := tr.Index("X"); !ok || i != 0 {
		t.Fatalf("Index(X) = %d, %v after caller mutation", i, ok)
	}
	if _, ok := tr.Index("mutated"); ok {
		t.Fatal("caller mutation leaked into the name index")
	}
}

func TestAppendCopiesRow(t *testing.T) {
	tr := New([]string{"X"})
	row := []float64{1}
	if err := tr.Append(0, row); err != nil {
		t.Fatal(err)
	}
	row[0] = 99
	if tr.Rows[0][0] != 1 {
		t.Fatal("Append aliased caller's row")
	}
}

func TestSeriesAndAt(t *testing.T) {
	tr := mkTrace(t, []string{"X", "Y"},
		[]float64{0, 0, 10},
		[]float64{1, 1, 20},
		[]float64{2, 4, 30},
	)
	s := tr.MustSeries("X")
	if s[0] != 0 || s[1] != 1 || s[2] != 4 {
		t.Fatalf("Series X = %v", s)
	}
	v, err := tr.At("X", 0.5)
	if err != nil || math.Abs(v-0.5) > 1e-12 {
		t.Fatalf("At(X,0.5) = %g, %v", v, err)
	}
	v, _ = tr.At("Y", 1.5)
	if math.Abs(v-25) > 1e-12 {
		t.Fatalf("At(Y,1.5) = %g", v)
	}
	// Clamping outside the range.
	if v, _ := tr.At("X", -5); v != 0 {
		t.Fatalf("At before range = %g", v)
	}
	if v, _ := tr.At("X", 100); v != 4 {
		t.Fatalf("At after range = %g", v)
	}
	if _, err := tr.At("Z", 0); err == nil {
		t.Fatal("unknown species accepted")
	}
	if tr.Final("Y") != 30 || tr.Final("missing") != 0 {
		t.Fatal("Final wrong")
	}
	if tr.End() != 2 {
		t.Fatalf("End = %g", tr.End())
	}
}

func TestResample(t *testing.T) {
	tr := mkTrace(t, []string{"X"},
		[]float64{0, 0},
		[]float64{2, 2},
	)
	s, err := tr.Resample("X", 0, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0.5, 1, 1.5, 2}
	for i := range want {
		if math.Abs(s[i]-want[i]) > 1e-12 {
			t.Fatalf("Resample = %v", s)
		}
	}
	if _, err := tr.Resample("X", 0, 1, 1); err == nil {
		t.Fatal("n=1 accepted")
	}
}

func TestCrossingsAndPeriod(t *testing.T) {
	tr := New([]string{"osc"})
	// Sine with period 2π sampled densely.
	for i := 0; i <= 2000; i++ {
		tt := float64(i) * 0.01
		if err := tr.Append(tt, []float64{math.Sin(tt)}); err != nil {
			t.Fatal(err)
		}
	}
	cr, err := tr.Crossings("osc", 0.5, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(cr) != 4 { // asin(0.5) + 2πk within [0,20]
		t.Fatalf("rising crossings: %v", cr)
	}
	if math.Abs(cr[0]-math.Asin(0.5)) > 0.01 {
		t.Fatalf("first rising crossing at %g, want %g", cr[0], math.Asin(0.5))
	}
	p, rel, err := tr.Period("osc", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-2*math.Pi) > 0.01 {
		t.Fatalf("Period = %g, want 2π", p)
	}
	if rel > 0.01 {
		t.Fatalf("period regularity = %g", rel)
	}
	fall, _ := tr.Crossings("osc", 0.5, false)
	if len(fall) != 3 {
		t.Fatalf("falling crossings: %v", fall)
	}
	if _, _, err := tr.Period("osc", 2); err == nil {
		t.Fatal("Period with no crossings accepted")
	}
}

func TestMetrics(t *testing.T) {
	a := []float64{0, 1, 2}
	b := []float64{0, 1, 4}
	r, err := RMSE(a, b)
	if err != nil || math.Abs(r-math.Sqrt(4.0/3)) > 1e-12 {
		t.Fatalf("RMSE = %g, %v", r, err)
	}
	m, _ := MaxAbsDiff(a, b)
	if m != 2 {
		t.Fatalf("MaxAbsDiff = %g", m)
	}
	me, _ := MeanAbsError(a, b)
	if math.Abs(me-2.0/3) > 1e-12 {
		t.Fatalf("MeanAbsError = %g", me)
	}
	if _, err := RMSE(a, b[:2]); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := RMSE(nil, nil); err == nil {
		t.Fatal("empty RMSE accepted")
	}
	if Max(a) != 2 || Min(a) != 0 || Mean(a) != 1 {
		t.Fatal("Max/Min/Mean wrong")
	}
	if Max(nil) != 0 || Min(nil) != 0 || Mean(nil) != 0 {
		t.Fatal("empty Max/Min/Mean wrong")
	}
}

func TestOverlap(t *testing.T) {
	// Perfectly exclusive square waves.
	a := []float64{1, 1, 0, 0}
	b := []float64{0, 0, 1, 1}
	ov, err := Overlap(a, b)
	if err != nil || ov != 0 {
		t.Fatalf("Overlap exclusive = %g, %v", ov, err)
	}
	ov, _ = Overlap(a, a)
	if ov != 1 {
		t.Fatalf("Overlap identical = %g", ov)
	}
	if _, err := Overlap([]float64{0}, []float64{0}); err == nil {
		t.Fatal("all-zero overlap accepted")
	}
	if _, err := Overlap(a, b[:2]); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := mkTrace(t, []string{"X", "Y"},
		[]float64{0, 1.5, -0.25},
		[]float64{0.5, 2.5, 0},
		[]float64{1.25, 0, 7},
	)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() || len(got.Names) != 2 {
		t.Fatalf("round trip shape: %d samples, %d names", got.Len(), len(got.Names))
	}
	for k := range tr.T {
		if got.T[k] != tr.T[k] {
			t.Fatalf("time %d differs", k)
		}
		for i := range tr.Names {
			if got.Rows[k][i] != tr.Rows[k][i] {
				t.Fatalf("value (%d,%d) differs", k, i)
			}
		}
	}
}

func TestWriteCSVSubset(t *testing.T) {
	tr := mkTrace(t, []string{"X", "Y"}, []float64{0, 1, 2})
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf, "Y"); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "t,Y\n") {
		t.Fatalf("header: %q", buf.String())
	}
	if err := tr.WriteCSV(&buf, "nope"); err == nil {
		t.Fatal("unknown species accepted")
	}
}

func TestReadCSVErrors(t *testing.T) {
	bad := []string{
		"",
		"x,Y\n1,2\n",      // wrong first header
		"t,Y\nfoo,2\n",    // bad time
		"t,Y\n1,foo\n",    // bad value
		"t,Y\n1,2\n0,3\n", // non-increasing time
	}
	for _, s := range bad {
		if _, err := ReadCSV(strings.NewReader(s)); err == nil {
			t.Errorf("ReadCSV(%q) accepted invalid input", s)
		}
	}
}

func TestASCIIPlot(t *testing.T) {
	tr := New([]string{"up", "down"})
	for i := 0; i <= 10; i++ {
		if err := tr.Append(float64(i), []float64{float64(i), 10 - float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	plot, err := tr.ASCIIPlot(40, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plot, "a = up") || !strings.Contains(plot, "b = down") {
		t.Fatalf("legend missing:\n%s", plot)
	}
	if !strings.Contains(plot, "a") || !strings.Contains(plot, "b") {
		t.Fatalf("marks missing:\n%s", plot)
	}
	if _, err := tr.ASCIIPlot(5, 2); err == nil {
		t.Fatal("tiny plot accepted")
	}
	if _, err := tr.ASCIIPlot(40, 10, "missing"); err == nil {
		t.Fatal("unknown species accepted")
	}
	empty := New([]string{"X"})
	if _, err := empty.ASCIIPlot(40, 10); err == nil {
		t.Fatal("empty trace plot accepted")
	}
}

// Property: At() interpolation is always between the bracketing sample
// values for monotone queries inside the range.
func TestQuickAtBounded(t *testing.T) {
	prop := func(raw []uint8, q uint8) bool {
		if len(raw) < 2 {
			return true
		}
		tr := New([]string{"X"})
		for i, v := range raw {
			if err := tr.Append(float64(i), []float64{float64(v)}); err != nil {
				return false
			}
		}
		qt := float64(q) / 255 * float64(len(raw)-1)
		v, err := tr.At("X", qt)
		if err != nil {
			return false
		}
		lo, hi := Min(tr.MustSeries("X")), Max(tr.MustSeries("X"))
		return v >= lo-1e-9 && v <= hi+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: CSV round trip preserves every value exactly.
func TestQuickCSVRoundTrip(t *testing.T) {
	prop := func(vals []float64) bool {
		tr := New([]string{"A", "B"})
		tt := 0.0
		for i := 0; i+1 < len(vals); i += 2 {
			a, b := vals[i], vals[i+1]
			if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
				continue
			}
			if err := tr.Append(tt, []float64{a, b}); err != nil {
				return false
			}
			tt += 1
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		if got.Len() != tr.Len() {
			return false
		}
		for k := range tr.Rows {
			for i := range tr.Rows[k] {
				if got.Rows[k][i] != tr.Rows[k][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestGrowAppendAllocs asserts the steady-state allocation budget of a
// pre-sized trace: after Grow(n), the next n Appends copy into the flat
// backing block and allocate nothing.
func TestGrowAppendAllocs(t *testing.T) {
	tr := New([]string{"a", "b", "c"})
	tr.Grow(512)
	row := []float64{1, 2, 3}
	i := 0.0
	allocs := testing.AllocsPerRun(400, func() {
		i++
		if err := tr.Append(i, row); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("%.1f allocs per pre-sized Append, want 0", allocs)
	}
}

// TestGrowKeepsExistingRows pins the aliasing contract of Grow: rows
// appended before a Grow stay valid (they keep referencing the old backing
// block) and are unchanged by appends into the new block.
func TestGrowKeepsExistingRows(t *testing.T) {
	tr := New([]string{"x", "y"})
	if err := tr.Append(0, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	old := tr.Rows[0]
	tr.Grow(100)
	for k := 1; k <= 10; k++ {
		if err := tr.Append(float64(k), []float64{float64(k), float64(-k)}); err != nil {
			t.Fatal(err)
		}
	}
	if old[0] != 1 || old[1] != 2 || tr.Rows[0][0] != 1 || tr.Rows[0][1] != 2 {
		t.Fatalf("pre-Grow row corrupted: %v / %v", old, tr.Rows[0])
	}
	if tr.Rows[10][0] != 10 || tr.Rows[10][1] != -10 {
		t.Fatalf("post-Grow row wrong: %v", tr.Rows[10])
	}
}
