package cluster

import (
	"repro/internal/obs"
	"repro/internal/obs/tsdb"
)

// RefreshMembership forces a lazy-expiry pass over the worker set. The
// membership table only re-evaluates heartbeat ages when it is accessed,
// so a /metrics scrape or a tsdb sampling tick on an otherwise idle
// coordinator would report the last-computed cluster_workers{state=}
// gauges — a worker could be minutes past its deadline and still show as
// alive. Surfaces that present membership to the outside call this first.
func (c *Coordinator) RefreshMembership() {
	if c == nil {
		return
	}
	c.ms.mu.Lock()
	c.ms.expireLocked()
	c.ms.mu.Unlock()
}

// TSDBSource returns a sampling callback that emits per-worker series into
// a time-series store:
//
//	cluster_worker_up{worker=}                1 alive / 0 otherwise
//	cluster_worker_beat_age_seconds{worker=}  time since last heartbeat
//	cluster_worker_partitions_total{worker=}  lifetime completed partitions
//	cluster_worker_points_total{worker=}      lifetime simulated points
//	cluster_worker_failures_total{worker=}    lifetime failed attempts
//
// The registry's cluster_workers{state=} gauges aggregate the same facts,
// but aggregation destroys the per-worker axis: once a worker churns out
// of the membership table its history would be gone. Sampling each worker
// into its own labelled series keeps the history addressable after churn —
// the flight recorder captures a dead worker's final heartbeat trajectory
// from these series.
func (c *Coordinator) TSDBSource() tsdb.Source {
	return func(emit func(name string, kind tsdb.SeriesKind, value float64)) {
		if c == nil {
			return
		}
		for _, w := range c.Workers() { // snapshot() expires lazily first
			up := 0.0
			if w.State == stateAlive {
				up = 1
			}
			emit(obs.Label("cluster_worker_up", "worker", w.ID), tsdb.KindGauge, up)
			emit(obs.Label("cluster_worker_beat_age_seconds", "worker", w.ID), tsdb.KindGauge, w.AgeSeconds)
			emit(obs.Label("cluster_worker_partitions_total", "worker", w.ID), tsdb.KindCounter, float64(w.Partitions))
			emit(obs.Label("cluster_worker_points_total", "worker", w.ID), tsdb.KindCounter, float64(w.Points))
			emit(obs.Label("cluster_worker_failures_total", "worker", w.ID), tsdb.KindCounter, float64(w.Failures))
		}
	}
}
