package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/obs/tsdb"
)

func TestSweepGeometry(t *testing.T) {
	sw := &Sweep{Seed: 42, Runs: 3, Ratios: []float64{10, 100}}
	if got := sw.Points(); got != 6 {
		t.Fatalf("Points() = %d, want 6", got)
	}
	if got := sw.Ratio(2); got != 10 {
		t.Fatalf("Ratio(2) = %g, want 10", got)
	}
	if got := sw.Ratio(3); got != 100 {
		t.Fatalf("Ratio(3) = %g, want 100", got)
	}
	for i := 0; i < 6; i++ {
		if got, want := sw.PointSeed(i), batch.DeriveSeed(42, i); got != want {
			t.Fatalf("PointSeed(%d) = %d, want %d", i, got, want)
		}
	}
	// No ratio axis, single run.
	flat := &Sweep{}
	if flat.Points() != 1 || flat.Ratio(0) != 0 {
		t.Fatalf("flat sweep: points=%d ratio=%g", flat.Points(), flat.Ratio(0))
	}
}

func TestWithNodeLabel(t *testing.T) {
	cases := []struct{ name, node, want string }{
		{"sim_runs_total", "w1", `sim_runs_total{node="w1"}`},
		{`batch_jobs_total{worker="3"}`, "w1", `batch_jobs_total{worker="3",node="w1"}`},
		{"x_total", `a"b`, `x_total{node="a\"b"}`},
	}
	for _, c := range cases {
		if got := WithNodeLabel(c.name, c.node); got != c.want {
			t.Errorf("WithNodeLabel(%q, %q) = %q, want %q", c.name, c.node, got, c.want)
		}
	}
}

func TestPlanChunks(t *testing.T) {
	o := Options{}.normalize()
	cover := func(t *testing.T, chunks []*chunkState, points int) {
		t.Helper()
		at := 0
		for i, ch := range chunks {
			if ch.part != i || ch.lo != at || ch.hi <= ch.lo {
				t.Fatalf("chunk %d: part=%d [%d,%d), expected lo=%d", i, ch.part, ch.lo, ch.hi, at)
			}
			at = ch.hi
		}
		if at != points {
			t.Fatalf("chunks cover [0,%d), want [0,%d)", at, points)
		}
	}

	// 3 workers x ChunkTarget 4 -> 12 chunks over 100 points.
	chunks := planChunks(100, 3, o)
	cover(t, chunks, 100)
	if len(chunks) != 12 {
		t.Fatalf("got %d chunks, want 12", len(chunks))
	}

	// Zero alive workers still plans (local fallback executes it all).
	cover(t, planChunks(5, 0, o), 5)

	// MaxChunk caps the window no matter how few workers.
	big := planChunks(10_000, 1, o)
	cover(t, big, 10_000)
	for _, ch := range big {
		if ch.hi-ch.lo > o.MaxChunk {
			t.Fatalf("chunk [%d,%d) exceeds MaxChunk %d", ch.lo, ch.hi, o.MaxChunk)
		}
	}

	// Fewer points than chunk slots: one point per chunk, never empty ones.
	small := planChunks(3, 4, o)
	cover(t, small, 3)
	if len(small) != 3 {
		t.Fatalf("got %d chunks for 3 points, want 3", len(small))
	}
}

func TestMembershipLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	ms := newMembership(3*time.Second, reg)
	now := time.Unix(1000, 0)
	ms.now = func() time.Time { return now }

	gauge := func(state string) float64 {
		return reg.Snapshot()[obs.Label("cluster_workers", "state", state)]
	}

	ms.join("w2", "http://b")
	ms.join("w1", "http://a")
	if got := ms.aliveCount(); got != 2 {
		t.Fatalf("aliveCount = %d, want 2", got)
	}
	if snap := ms.snapshot(); len(snap) != 2 || snap[0].ID != "w1" || snap[1].ID != "w2" {
		t.Fatalf("snapshot not sorted by ID: %+v", snap)
	}
	if gauge(stateAlive) != 2 {
		t.Fatalf("alive gauge = %g, want 2", gauge(stateAlive))
	}

	// w1 beats, w2 stays silent past the timeout -> lost, down closed.
	var w2down chan struct{}
	for _, m := range ms.alive() {
		if m.id == "w2" {
			_, _, w2down = ms.view(m)
		}
	}
	now = now.Add(2 * time.Second)
	if !ms.heartbeat("w1") {
		t.Fatal("heartbeat(w1) = false, want true")
	}
	now = now.Add(2 * time.Second) // w2's beat is now 4s old
	alive := ms.alive()
	if len(alive) != 1 || alive[0].id != "w1" {
		t.Fatalf("alive after expiry: %+v", alive)
	}
	select {
	case <-w2down:
	default:
		t.Fatal("w2 down channel not closed on expiry")
	}
	if gauge(stateAlive) != 1 || gauge(stateLost) != 1 {
		t.Fatalf("gauges after expiry: alive=%g lost=%g", gauge(stateAlive), gauge(stateLost))
	}

	// A lost member's beat revives it with a fresh down channel.
	if !ms.heartbeat("w2") {
		t.Fatal("heartbeat(w2) should revive a lost member")
	}
	if got := ms.aliveCount(); got != 2 {
		t.Fatalf("aliveCount after revival = %d, want 2", got)
	}

	// Leave is terminal: beats are refused until a full re-join.
	ms.leave("w2")
	if ms.heartbeat("w2") {
		t.Fatal("heartbeat(w2) after leave should be false")
	}
	if gauge(stateLeft) != 1 {
		t.Fatalf("left gauge = %g, want 1", gauge(stateLeft))
	}
	ms.join("w2", "http://b2")
	if got := ms.aliveCount(); got != 2 {
		t.Fatalf("aliveCount after re-join = %d, want 2", got)
	}

	// Unknown workers must re-join.
	if ms.heartbeat("nope") {
		t.Fatal("heartbeat(unknown) should be false")
	}
}

// fakeWorker is an httptest worker node: it executes partitions with the
// canonical fake executor so remote and local results are comparable, with
// optional failure injection.
type fakeWorker struct {
	srv    *httptest.Server
	served atomic.Int64
	fail   atomic.Bool // respond 500 to every partition
	hang   chan struct{}
}

func newFakeWorker(t *testing.T) *fakeWorker {
	t.Helper()
	fw := &fakeWorker{}
	fw.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/cluster/v1/partition" {
			http.NotFound(w, r)
			return
		}
		// Consume the body before any stall: the server only watches for
		// client disconnects (canceling r.Context) once the body is read.
		var req PartitionRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if fw.hang != nil {
			select {
			case <-fw.hang:
			case <-r.Context().Done():
				return
			}
		}
		if fw.fail.Load() {
			http.Error(w, "injected failure", http.StatusInternalServerError)
			return
		}
		fw.served.Add(1)
		outs, _ := fakeExec(r.Context(), &req.Sweep, req.Lo, req.Hi)
		json.NewEncoder(w).Encode(PartitionResponse{
			Outcomes: outs,
			Metrics:  map[string]float64{"sim_runs_total": float64(req.Hi - req.Lo)},
		})
	}))
	t.Cleanup(fw.srv.Close)
	return fw
}

// fakeExec is the deterministic stand-in executor: point i's "final" encodes
// its index, seed and ratio, so any cross-topology comparison catches both
// placement and derivation mistakes.
func fakeExec(_ context.Context, sw *Sweep, lo, hi int) ([]Outcome, error) {
	outs := make([]Outcome, hi-lo)
	for j := range outs {
		i := lo + j
		outs[j] = Outcome{Index: i, Final: map[string]float64{
			"idx":   float64(i),
			"seed":  float64(sw.PointSeed(i) % 1e6),
			"ratio": sw.Ratio(i),
		}}
	}
	return outs, nil
}

type testHarness struct {
	c     *Coordinator
	reg   *obs.Registry
	local atomic.Int64 // local executions
}

func newHarness(t *testing.T, o Options) *testHarness {
	t.Helper()
	h := &testHarness{reg: obs.NewRegistry()}
	h.c = New(o, Deps{
		Local: func(ctx context.Context, sw *Sweep, lo, hi int) ([]Outcome, error) {
			h.local.Add(1)
			return fakeExec(ctx, sw, lo, hi)
		},
		Registry: h.reg,
		Spans:    span.NewTracer(0).Store(),
	})
	return h
}

// runAndCollect runs the sweep and asserts every index is delivered exactly
// once with the canonical fake payload.
func runAndCollect(t *testing.T, c *Coordinator, sw *Sweep) {
	t.Helper()
	points := sw.Points()
	seen := make(map[int]int)
	var mu sync.Mutex
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := c.Run(ctx, "job-test", sw, func(outs []Outcome) {
		mu.Lock()
		defer mu.Unlock()
		for _, o := range outs {
			seen[o.Index]++
			if o.Final["idx"] != float64(o.Index) || o.Final["seed"] != float64(sw.PointSeed(o.Index)%1e6) {
				t.Errorf("outcome %d has wrong payload: %+v", o.Index, o.Final)
			}
		}
	}, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < points; i++ {
		if seen[i] != 1 {
			t.Fatalf("index %d delivered %d times, want exactly 1 (map: %v)", i, seen[i], seen)
		}
	}
}

func TestRunDispatchesAcrossWorkers(t *testing.T) {
	h := newHarness(t, Options{ChunkTarget: 2, MaxChunk: 8})
	w1, w2 := newFakeWorker(t), newFakeWorker(t)
	h.c.Join(JoinRequest{ID: "w1", Addr: w1.srv.URL})
	h.c.Join(JoinRequest{ID: "w2", Addr: w2.srv.URL})

	sw := &Sweep{Seed: 7, Runs: 5, Ratios: []float64{2, 4, 8, 16}} // 20 points
	runAndCollect(t, h.c, sw)

	if w1.served.Load() == 0 || w2.served.Load() == 0 {
		t.Fatalf("work not spread: w1=%d w2=%d", w1.served.Load(), w2.served.Load())
	}
	if h.local.Load() != 0 {
		t.Fatalf("local fallback ran %d times with healthy workers", h.local.Load())
	}
	snap := h.reg.Snapshot()
	// Worker counter deltas land under a node label, summing to the sweep size.
	if got := snap[`sim_runs_total{node="w1"}`] + snap[`sim_runs_total{node="w2"}`]; got != 20 {
		t.Fatalf("merged node-labelled counters sum to %g, want 20", got)
	}
	if snap["cluster_partitions_dispatched_total"] == 0 {
		t.Fatal("cluster_partitions_dispatched_total not incremented")
	}
	// Per-worker credit shows up in the membership snapshot.
	var points int64
	for _, ws := range h.c.Workers() {
		points += ws.Points
		if ws.Partitions == 0 {
			t.Fatalf("worker %s credited no partitions", ws.ID)
		}
	}
	if points != 20 {
		t.Fatalf("credited points sum to %d, want 20", points)
	}
}

func TestRunRetriesWithExclusion(t *testing.T) {
	h := newHarness(t, Options{ChunkTarget: 1, MaxChunk: 64, MaxAttempts: 5})
	bad, good := newFakeWorker(t), newFakeWorker(t)
	bad.fail.Store(true)
	h.c.Join(JoinRequest{ID: "bad", Addr: bad.srv.URL})
	h.c.Join(JoinRequest{ID: "good", Addr: good.srv.URL})

	sw := &Sweep{Seed: 1, Runs: 8} // 8 points, 2 chunks (one per worker)
	runAndCollect(t, h.c, sw)

	snap := h.reg.Snapshot()
	if snap["cluster_partition_retries_total"] == 0 {
		t.Fatal("cluster_partition_retries_total not incremented")
	}
	if h.local.Load() != 0 {
		t.Fatalf("local fallback ran %d times; the good worker should absorb retries", h.local.Load())
	}
	for _, ws := range h.c.Workers() {
		if ws.ID == "bad" && ws.Failures == 0 {
			t.Fatal("failing worker has no failures credited")
		}
	}
}

func TestRunForcesLocalAfterMaxAttempts(t *testing.T) {
	h := newHarness(t, Options{ChunkTarget: 1, MaxChunk: 64, MaxAttempts: 2})
	bad := newFakeWorker(t)
	bad.fail.Store(true)
	h.c.Join(JoinRequest{ID: "bad", Addr: bad.srv.URL})

	sw := &Sweep{Seed: 3, Runs: 4}
	runAndCollect(t, h.c, sw)

	if h.local.Load() == 0 {
		t.Fatal("chunk never fell back to local execution")
	}
	if h.reg.Snapshot()["cluster_partitions_local_total"] == 0 {
		t.Fatal("cluster_partitions_local_total not incremented")
	}
}

func TestRunLocalWhenClusterEmpty(t *testing.T) {
	h := newHarness(t, Options{})
	sw := &Sweep{Seed: 9, Runs: 6}
	runAndCollect(t, h.c, sw)
	if h.local.Load() == 0 {
		t.Fatal("empty cluster must execute locally")
	}
}

func TestRunLocalFailureIsFatal(t *testing.T) {
	reg := obs.NewRegistry()
	boom := errors.New("no such species")
	c := New(Options{}, Deps{
		Local: func(context.Context, *Sweep, int, int) ([]Outcome, error) {
			return nil, boom
		},
		Registry: reg,
		Spans:    span.NewTracer(0).Store(),
	})
	err := c.Run(context.Background(), "j", &Sweep{Runs: 2}, func([]Outcome) {}, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("Run = %v, want wrapped %v", err, boom)
	}
}

func TestRunCancellation(t *testing.T) {
	h := newHarness(t, Options{HeartbeatEvery: 10 * time.Millisecond})
	hung := newFakeWorker(t)
	hung.hang = make(chan struct{}) // never closed: partitions stall forever
	h.c.Join(JoinRequest{ID: "hung", Addr: hung.srv.URL})

	cause := errors.New("client went away")
	ctx, cancel := context.WithCancelCause(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel(cause)
	}()
	// Keep the worker alive so the chunk stays in flight until cancellation.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
				h.c.Heartbeat("hung")
			}
		}
	}()
	err := h.c.Run(ctx, "j", &Sweep{Runs: 4}, func([]Outcome) {}, nil)
	if !errors.Is(err, cause) {
		t.Fatalf("Run = %v, want cancellation cause", err)
	}
}

// TestRunSurvivesWorkerDeath kills a worker mid-partition (its heartbeats
// stop and its server hangs); the chunk must be retried elsewhere and every
// index still delivered exactly once — the no-duplicate-execution guarantee
// under flapping.
func TestRunSurvivesWorkerDeath(t *testing.T) {
	h := newHarness(t, Options{
		HeartbeatEvery:   10 * time.Millisecond,
		HeartbeatTimeout: 30 * time.Millisecond,
		ChunkTarget:      2,
		MaxChunk:         4,
		MaxAttempts:      3,
	})
	dying, healthy := newFakeWorker(t), newFakeWorker(t)
	dying.hang = make(chan struct{}) // dying never answers a partition
	h.c.Join(JoinRequest{ID: "dying", Addr: dying.srv.URL})
	h.c.Join(JoinRequest{ID: "healthy", Addr: healthy.srv.URL})

	// healthy beats forever; dying never beats again -> lost after 30ms, its
	// in-flight request canceled via the down channel, chunk requeued.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
				h.c.Heartbeat("healthy")
			}
		}
	}()

	sw := &Sweep{Seed: 5, Runs: 16}
	runAndCollect(t, h.c, sw)

	if healthy.served.Load() == 0 {
		t.Fatal("healthy worker served nothing")
	}
	if dying.served.Load() != 0 {
		t.Fatalf("dying worker somehow served %d partitions", dying.served.Load())
	}
}

func TestRunOnStartFiresOnce(t *testing.T) {
	h := newHarness(t, Options{ChunkTarget: 4})
	var starts atomic.Int64
	err := h.c.Run(context.Background(), "j", &Sweep{Runs: 12}, func([]Outcome) {},
		func() { starts.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	if starts.Load() != 1 {
		t.Fatalf("onStart fired %d times, want 1", starts.Load())
	}
}

func TestPartitionsSnapshot(t *testing.T) {
	h := newHarness(t, Options{ChunkTarget: 2})
	w := newFakeWorker(t)
	release := make(chan struct{})
	w.hang = release
	h.c.Join(JoinRequest{ID: "w", Addr: w.srv.URL})

	done := make(chan error, 1)
	go func() {
		done <- h.c.Run(context.Background(), "job-snap", &Sweep{Runs: 4}, func([]Outcome) {}, nil)
	}()
	// Wait until a chunk is visibly running, then inspect the partition map.
	deadline := time.Now().Add(5 * time.Second)
	for {
		ps := h.c.Partitions()
		running := false
		for _, p := range ps {
			if p.Job == "job-snap" && p.State == "running" && p.Worker == "w" {
				running = true
			}
		}
		if running {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no running partition observed: %+v", ps)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := h.c.Partitions(); len(got) != 0 {
		t.Fatalf("partition map not cleared after Run: %+v", got)
	}
}

// TestWorkerJoinLoop drives the worker side against a scripted coordinator:
// join, beats, a 404 forcing a re-join, and a leave on shutdown.
func TestWorkerJoinLoop(t *testing.T) {
	var mu sync.Mutex
	joins, beats, leaves := 0, 0, 0
	reject404 := false
	coord := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		switch r.URL.Path {
		case "/cluster/v1/join":
			joins++
			json.NewEncoder(w).Encode(JoinResponse{ID: "w", HeartbeatSeconds: 0.005})
		case "/cluster/v1/heartbeat":
			if reject404 {
				reject404 = false
				http.Error(w, `{"error":"unknown worker"}`, http.StatusNotFound)
				return
			}
			beats++
			fmt.Fprint(w, `{"ok":true}`)
		case "/cluster/v1/leave":
			leaves++
			fmt.Fprint(w, `{"ok":true}`)
		default:
			http.NotFound(w, r)
		}
	}))
	defer coord.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- Join(ctx, JoinConfig{Coordinator: coord.URL, Advertise: "http://self", ID: "w"})
	}()

	wait := func(cond func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			mu.Lock()
			ok := cond()
			mu.Unlock()
			if ok {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s (joins=%d beats=%d leaves=%d)", what, joins, beats, leaves)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	wait(func() bool { return joins >= 1 && beats >= 2 }, "initial join and beats")
	mu.Lock()
	reject404 = true
	mu.Unlock()
	wait(func() bool { return joins >= 2 }, "re-join after 404")
	wait(func() bool { return beats >= 4 }, "beats after re-join")

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Join returned %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if leaves != 1 {
		t.Fatalf("leaves = %d, want 1", leaves)
	}
}

// TestAliveSortedDeterministic pins the scheduling-order contract: alive()
// must be sorted by ID regardless of join order.
func TestAliveSortedDeterministic(t *testing.T) {
	ms := newMembership(time.Hour, nil)
	for _, id := range []string{"w3", "w1", "w2"} {
		ms.join(id, "http://"+id)
	}
	var ids []string
	for _, m := range ms.alive() {
		ids = append(ids, m.id)
	}
	if !sort.StringsAreSorted(ids) {
		t.Fatalf("alive() not sorted: %v", ids)
	}
}

// TestWorkerFlapCounter pins the lost→alive revival accounting feeding the
// heartbeat-flap alert rule: revivals count, fresh joins and leaves don't.
func TestWorkerFlapCounter(t *testing.T) {
	reg := obs.NewRegistry()
	ms := newMembership(3*time.Second, reg)
	now := time.Unix(1000, 0)
	ms.now = func() time.Time { return now }
	flaps := func() float64 { return reg.Snapshot()["cluster_worker_flaps_total"] }

	ms.join("w1", "http://a")
	ms.join("w2", "http://b")
	if flaps() != 0 {
		t.Fatalf("flaps after fresh joins = %g, want 0", flaps())
	}

	// w1 expires, then revives by beat: one flap.
	now = now.Add(4 * time.Second)
	ms.heartbeat("w2")
	if got := ms.aliveCount(); got != 1 {
		t.Fatalf("alive after expiry = %d, want 1", got)
	}
	ms.heartbeat("w1")
	if flaps() != 1 {
		t.Fatalf("flaps after beat revival = %g, want 1", flaps())
	}

	// w1 expires again and revives by re-join: second flap.
	now = now.Add(4 * time.Second)
	ms.heartbeat("w2")
	ms.join("w1", "http://a")
	if flaps() != 2 {
		t.Fatalf("flaps after join revival = %g, want 2", flaps())
	}

	// A left worker re-joining is a restart, not a flap.
	ms.leave("w2")
	ms.join("w2", "http://b")
	if flaps() != 2 {
		t.Fatalf("flaps after leave/re-join = %g, want 2", flaps())
	}
}

// TestTSDBSourceEmitsPerWorkerSeries checks the coordinator's sampling
// callback: per-worker up/beat-age/lifetime series, expired lazily first.
func TestTSDBSourceEmitsPerWorkerSeries(t *testing.T) {
	c := New(Options{HeartbeatTimeout: 3 * time.Second}, Deps{Registry: obs.NewRegistry()})
	now := time.Unix(1000, 0)
	c.ms.now = func() time.Time { return now }
	c.ms.join("w1", "http://a")
	c.ms.join("w2", "http://b")
	c.ms.credit("w1", 40, false)
	c.ms.credit("w1", 2, true)

	collect := func() map[string]float64 {
		got := map[string]float64{}
		c.TSDBSource()(func(name string, _ tsdb.SeriesKind, v float64) { got[name] = v })
		return got
	}
	got := collect()
	if got[obs.Label("cluster_worker_up", "worker", "w1")] != 1 ||
		got[obs.Label("cluster_worker_partitions_total", "worker", "w1")] != 1 ||
		got[obs.Label("cluster_worker_points_total", "worker", "w1")] != 40 ||
		got[obs.Label("cluster_worker_failures_total", "worker", "w1")] != 1 {
		t.Fatalf("w1 series = %v", got)
	}

	// Expiry is observed by the source without any other membership access.
	now = now.Add(10 * time.Second)
	got = collect()
	if got[obs.Label("cluster_worker_up", "worker", "w1")] != 0 ||
		got[obs.Label("cluster_worker_up", "worker", "w2")] != 0 {
		t.Fatalf("series after expiry = %v", got)
	}
	if age := got[obs.Label("cluster_worker_beat_age_seconds", "worker", "w1")]; age != 10 {
		t.Fatalf("beat age = %g, want 10", age)
	}

	// RefreshMembership alone re-evaluates the state gauges.
	c2 := New(Options{HeartbeatTimeout: 3 * time.Second}, Deps{Registry: obs.NewRegistry()})
	now2 := time.Unix(1000, 0)
	c2.ms.now = func() time.Time { return now2 }
	c2.ms.join("w1", "http://a")
	now2 = now2.Add(10 * time.Second)
	c2.RefreshMembership()
	if lost := c2.ms.members["w1"].state; lost != stateLost {
		t.Fatalf("state after RefreshMembership = %s, want lost", lost)
	}
}
