package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"time"
)

// JoinConfig configures a worker's membership loop.
type JoinConfig struct {
	// Coordinator is the coordinator's base URL (e.g. http://10.0.0.1:8080).
	Coordinator string
	// Advertise is this worker's own base URL, dialed back by the coordinator
	// for partition dispatches.
	Advertise string
	// ID names the worker; it must be unique per cluster and stable across
	// restarts if the worker should keep its identity.
	ID string
	// Every overrides the coordinator-advertised heartbeat interval (0 keeps
	// the advertised one).
	Every time.Duration
	// Client performs the join/heartbeat calls; nil -> a dedicated client.
	Client *http.Client
	// Logger, when set, receives membership lifecycle records.
	Logger *slog.Logger
}

// Join runs a worker's membership loop until ctx is canceled: register with
// the coordinator (retrying with backoff until it is reachable), then
// heartbeat at the advertised interval, re-joining whenever the coordinator
// reports the registration gone (a coordinator restart, or this worker was
// lost long enough to be forgotten). On ctx cancellation the worker
// deregisters with a best-effort leave and Join returns nil.
func Join(ctx context.Context, jc JoinConfig) error {
	if jc.Coordinator == "" || jc.Advertise == "" || jc.ID == "" {
		return fmt.Errorf("cluster: join needs coordinator, advertise and id")
	}
	client := jc.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}

	every := jc.Every
	for {
		adv, err := join(ctx, client, jc)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			if jc.Logger != nil {
				jc.Logger.Warn("cluster join failed, retrying", "coordinator", jc.Coordinator, "err", err.Error())
			}
			select {
			case <-time.After(time.Second):
				continue
			case <-ctx.Done():
				return nil
			}
		}
		if every <= 0 {
			every = adv
		}
		if every <= 0 {
			every = time.Second
		}
		if jc.Logger != nil {
			jc.Logger.Info("cluster joined", "coordinator", jc.Coordinator, "id", jc.ID, "every", every.String())
		}

		if rejoin := beatLoop(ctx, client, jc, every); !rejoin {
			leave(client, jc)
			return nil
		}
	}
}

// join performs one registration attempt and returns the advertised interval.
func join(ctx context.Context, client *http.Client, jc JoinConfig) (time.Duration, error) {
	var jr JoinResponse
	if err := postJSON(ctx, client, jc.Coordinator+"/cluster/v1/join",
		JoinRequest{ID: jc.ID, Addr: jc.Advertise}, &jr); err != nil {
		return 0, err
	}
	return time.Duration(jr.HeartbeatSeconds * float64(time.Second)), nil
}

// beatLoop heartbeats until ctx ends (returns false) or the coordinator
// forgets the worker (returns true: caller re-joins). Transport errors are
// tolerated — the coordinator's timeout is the arbiter of lost-ness, and the
// next successful beat revives the membership.
func beatLoop(ctx context.Context, client *http.Client, jc JoinConfig, every time.Duration) (rejoin bool) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return false
		case <-t.C:
			err := postJSON(ctx, client, jc.Coordinator+"/cluster/v1/heartbeat", HeartbeatRequest{ID: jc.ID}, nil)
			if err == nil {
				continue
			}
			if ctx.Err() != nil {
				return false
			}
			var se *statusError
			if errors.As(err, &se) && se.code == http.StatusNotFound {
				if jc.Logger != nil {
					jc.Logger.Warn("cluster membership gone, re-joining", "id", jc.ID)
				}
				return true
			}
			if jc.Logger != nil {
				jc.Logger.Warn("cluster heartbeat failed", "id", jc.ID, "err", err.Error())
			}
		}
	}
}

// leave sends a best-effort deregistration, bounded so shutdown never hangs.
func leave(client *http.Client, jc JoinConfig) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = postJSON(ctx, client, jc.Coordinator+"/cluster/v1/leave", HeartbeatRequest{ID: jc.ID}, nil)
}

// statusError carries an HTTP failure status through the error chain.
type statusError struct {
	code int
	body string
}

func (e *statusError) Error() string { return fmt.Sprintf("status %d: %s", e.code, e.body) }

// postJSON posts a JSON body and decodes the response into out (out may be
// nil for fire-and-forget endpoints). Non-2xx responses become statusErrors.
func postJSON(ctx context.Context, client *http.Client, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("%s: %w", url, &statusError{code: resp.StatusCode, body: string(bytes.TrimSpace(msg))})
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	return nil
}
