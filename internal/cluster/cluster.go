// Package cluster turns a set of crnserved processes into one sweep-executing
// cluster: a coordinator that shards parameter sweeps into bounded partitions
// and dispatches them over HTTP, and a worker join/heartbeat loop that keeps
// membership current.
//
// The design contract is determinism first: a sweep point's identity is its
// global index, its RNG seed is batch.DeriveSeed(base, index) — the same
// SplitMix64 derivation the single-node engine uses — and a partition is
// nothing but a contiguous [lo, hi) index window of the very same sweep. A
// worker executing a partition therefore produces, point for point, the bits
// a single node would have produced, and the coordinator's merge is pure
// placement by index: results are byte-identical to single-node execution at
// any topology, any chunking and any retry history.
//
// Fault tolerance rides on that contract. Partitions are small bounded chunks
// drawn from a shared pool (stragglers are stolen chunk-wise, not rebalanced);
// a failed or heartbeat-lost worker gets its in-flight chunk requeued with
// the worker excluded from that chunk's next attempt; chunks that no worker
// can take fall back to local execution on the coordinator. Re-executing a
// chunk is always safe — same indexes, same seeds, same bits — and a chunk
// already completed is never dispatched again.
//
// The package deliberately depends only on internal/batch, internal/obs and
// internal/obs/span: the simulation executor is injected (Deps.Local), and
// internal/server provides the HTTP surface on both sides.
package cluster

import (
	"strings"

	"repro/internal/batch"
	"repro/internal/obs/span"
)

// Sweep is the wire form of one parameter sweep: the same fields as the
// server's job request, minus the watch/streaming options (watched jobs run
// locally — their observers hold per-process state that cannot ship).
type Sweep struct {
	CRN string `json:"crn"`

	Method      string  `json:"method,omitempty"`
	TEnd        float64 `json:"t_end"`
	SampleEvery float64 `json:"sample_every,omitempty"`
	Fast        float64 `json:"fast,omitempty"`
	Slow        float64 `json:"slow,omitempty"`
	Unit        float64 `json:"unit,omitempty"`
	Seed        int64   `json:"seed,omitempty"`

	Runs   int       `json:"runs,omitempty"`
	Ratios []float64 `json:"ratios,omitempty"`

	Record []string `json:"record,omitempty"`

	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
}

// RunsPerRatio returns the replicate count per ratio (at least 1).
func (s *Sweep) RunsPerRatio() int {
	if s.Runs > 1 {
		return s.Runs
	}
	return 1
}

// Points returns the total sweep size: replicates × ratios.
func (s *Sweep) Points() int {
	n := s.RunsPerRatio()
	if len(s.Ratios) > 0 {
		n *= len(s.Ratios)
	}
	return n
}

// Ratio returns the fast/slow ratio of global point i (0 when the sweep has
// no ratio axis).
func (s *Sweep) Ratio(i int) float64 {
	if len(s.Ratios) == 0 {
		return 0
	}
	return s.Ratios[i/s.RunsPerRatio()]
}

// PointSeed returns the RNG seed of global point i — the deterministic
// sharding contract in one line. Every node derives it identically, so a
// partition executed anywhere reproduces the single-node bits.
func (s *Sweep) PointSeed(i int) int64 {
	return batch.DeriveSeed(s.Seed, i)
}

// Outcome is one finished sweep point: its global index, the recorded final
// state, and the point's own error (a failed point is a result, not a failed
// partition).
type Outcome struct {
	Index int                `json:"index"`
	Final map[string]float64 `json:"final,omitempty"`
	Err   string             `json:"error,omitempty"`
}

// PartitionRequest is the body of POST /cluster/v1/partition: execute sweep
// points [Lo, Hi) of the job's sweep. Part numbers the chunk within the job
// (for spans and logs only — the index window alone defines the work).
type PartitionRequest struct {
	Job   string `json:"job"`
	Part  int    `json:"part"`
	Lo    int    `json:"lo"`
	Hi    int    `json:"hi"`
	Sweep Sweep  `json:"sweep"`
}

// PartitionResponse carries the partition's outcomes plus the worker's
// telemetry: the counter deltas its registry accumulated while executing
// (merged coordinator-side under a node label) and the span tree of the
// execution (ingested into the coordinator's trace store, parented under the
// dispatch span via the propagated traceparent).
type PartitionResponse struct {
	Outcomes []Outcome          `json:"outcomes"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
	Spans    []*span.Data       `json:"spans,omitempty"`
}

// JoinRequest is the body of POST /cluster/v1/join. ID names the worker
// (unique per cluster; re-joining under the same ID revives the member) and
// Addr is the base URL the coordinator dials back for partitions.
type JoinRequest struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// JoinResponse acknowledges a join and tells the worker how often to beat.
type JoinResponse struct {
	ID               string  `json:"id"`
	HeartbeatSeconds float64 `json:"heartbeat_seconds"`
}

// HeartbeatRequest is the body of POST /cluster/v1/heartbeat and
// /cluster/v1/leave.
type HeartbeatRequest struct {
	ID string `json:"id"`
}

// WorkerStatus is one member's externally visible state, served by
// GET /cluster/v1/workers and the statusz cluster panel.
type WorkerStatus struct {
	ID         string  `json:"id"`
	Addr       string  `json:"addr"`
	State      string  `json:"state"` // alive, lost, left
	AgeSeconds float64 `json:"last_heartbeat_age_seconds"`
	Partitions int64   `json:"partitions"` // chunks completed
	Points     int64   `json:"points"`     // sweep points completed
	Failures   int64   `json:"failures"`   // chunk attempts that failed
}

// PartitionStatus is one chunk's live state in the coordinator's partition
// map (statusz cluster panel).
type PartitionStatus struct {
	Job      string `json:"job"`
	Part     int    `json:"part"`
	Lo       int    `json:"lo"`
	Hi       int    `json:"hi"`
	State    string `json:"state"`  // pending, running, done, failed
	Worker   string `json:"worker"` // current or last assignee; "local" for fallback
	Attempts int    `json:"attempts"`
}

// WithNodeLabel re-renders a Prometheus-style metric name with an extra
// node="id" label, preserving any label block already present:
// `batch_jobs_total{worker="w3"}` becomes
// `batch_jobs_total{worker="w3",node="n1"}`. The label key is "node" — never
// "worker", which the batch pool already uses for its shard index.
func WithNodeLabel(name, node string) string {
	esc := `node="` + strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(node) + `"`
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:len(name)-1] + "," + esc + "}"
	}
	return name + "{" + esc + "}"
}
