package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/span"
)

// Options tunes the coordinator. Zero values select the documented defaults.
type Options struct {
	// HeartbeatEvery is the beat interval advertised to joining workers;
	// 0 -> 1s.
	HeartbeatEvery time.Duration
	// HeartbeatTimeout is the age past which a silent worker is lost;
	// 0 -> 3 × HeartbeatEvery.
	HeartbeatTimeout time.Duration
	// ChunkTarget is how many chunks per alive worker a sweep is split into —
	// the work-stealing granularity: more chunks, finer stealing, more HTTP
	// round trips; 0 -> 4.
	ChunkTarget int
	// MaxChunk caps one partition's point count regardless of worker count;
	// 0 -> 256.
	MaxChunk int
	// MaxAttempts is how many failed remote attempts a chunk tolerates before
	// it is forced onto local execution; 0 -> 3.
	MaxAttempts int
	// Client performs partition dispatches; nil -> a dedicated http.Client.
	Client *http.Client
}

func (o Options) normalize() Options {
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = time.Second
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 3 * o.HeartbeatEvery
	}
	if o.ChunkTarget <= 0 {
		o.ChunkTarget = 4
	}
	if o.MaxChunk <= 0 {
		o.MaxChunk = 256
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	return o
}

// Deps are the coordinator's injected collaborators. Local executes a
// partition in-process (the coordinator is itself a capable node); it is the
// fallback when no worker can take a chunk, and the whole execution path when
// the cluster is empty.
type Deps struct {
	Local    func(ctx context.Context, sw *Sweep, lo, hi int) ([]Outcome, error)
	Registry *obs.Registry
	Spans    *span.Store
	Logger   *slog.Logger
}

// Coordinator shards sweeps across the registered workers. One Coordinator
// serves many concurrent jobs; each Run call owns its job's chunk pool.
type Coordinator struct {
	opts Options
	deps Deps
	ms   *membership

	retries    *obs.Counter
	dispatched *obs.Counter
	localRuns  *obs.Counter

	mu   sync.Mutex
	jobs map[string]*jobChunks // live partition maps (statusz)
}

// jobChunks is one running job's chunk pool. Chunk state transitions happen
// only on the job's scheduling goroutine, under c.mu so the statusz panel can
// snapshot concurrently.
type jobChunks struct {
	job    string
	chunks []*chunkState
}

type chunkState struct {
	part, lo, hi int
	state        string // pending, running, done
	worker       string
	attempts     int
	excluded     map[string]bool
	forceLocal   bool
}

// New builds a Coordinator.
func New(opts Options, deps Deps) *Coordinator {
	opts = opts.normalize()
	if deps.Registry == nil {
		deps.Registry = obs.NewRegistry()
	}
	return &Coordinator{
		opts:       opts,
		deps:       deps,
		ms:         newMembership(opts.HeartbeatTimeout, deps.Registry),
		retries:    deps.Registry.Counter("cluster_partition_retries_total"),
		dispatched: deps.Registry.Counter("cluster_partitions_dispatched_total"),
		localRuns:  deps.Registry.Counter("cluster_partitions_local_total"),
		jobs:       make(map[string]*jobChunks),
	}
}

// HeartbeatEvery returns the advertised worker beat interval.
func (c *Coordinator) HeartbeatEvery() time.Duration { return c.opts.HeartbeatEvery }

// Join registers (or revives) a worker.
func (c *Coordinator) Join(req JoinRequest) JoinResponse {
	c.ms.join(req.ID, req.Addr)
	if c.deps.Logger != nil {
		c.deps.Logger.Info("cluster worker joined", "worker", req.ID, "addr", req.Addr)
	}
	return JoinResponse{ID: req.ID, HeartbeatSeconds: c.opts.HeartbeatEvery.Seconds()}
}

// Heartbeat refreshes a worker; false means the worker must re-join.
func (c *Coordinator) Heartbeat(id string) bool { return c.ms.heartbeat(id) }

// Leave removes a worker permanently.
func (c *Coordinator) Leave(id string) {
	c.ms.leave(id)
	if c.deps.Logger != nil {
		c.deps.Logger.Info("cluster worker left", "worker", id)
	}
}

// Workers snapshots the membership table.
func (c *Coordinator) Workers() []WorkerStatus { return c.ms.snapshot() }

// AliveCount returns the number of currently alive workers.
func (c *Coordinator) AliveCount() int { return c.ms.aliveCount() }

// Partitions snapshots every live job's chunk pool for the statusz panel.
func (c *Coordinator) Partitions() []PartitionStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []PartitionStatus
	for _, js := range c.jobs {
		for _, ch := range js.chunks {
			out = append(out, PartitionStatus{
				Job: js.job, Part: ch.part, Lo: ch.lo, Hi: ch.hi,
				State: ch.state, Worker: ch.worker, Attempts: ch.attempts,
			})
		}
	}
	return out
}

// planChunks splits points into contiguous windows: ChunkTarget chunks per
// alive worker (so stragglers are stolen at sub-partition granularity), each
// at most MaxChunk points.
func planChunks(points, alive int, o Options) []*chunkState {
	if alive < 1 {
		alive = 1
	}
	size := (points + alive*o.ChunkTarget - 1) / (alive * o.ChunkTarget)
	if size < 1 {
		size = 1
	}
	if size > o.MaxChunk {
		size = o.MaxChunk
	}
	var chunks []*chunkState
	for lo := 0; lo < points; lo += size {
		hi := lo + size
		if hi > points {
			hi = points
		}
		chunks = append(chunks, &chunkState{
			part: len(chunks), lo: lo, hi: hi,
			state: "pending", excluded: make(map[string]bool),
		})
	}
	return chunks
}

// attemptResult is one finished chunk attempt, remote or local.
type attemptResult struct {
	ci     int
	worker string // "" for local execution
	outs   []Outcome
	err    error
}

// Run executes the sweep across the cluster and delivers outcomes as chunks
// complete (deliver is called on the scheduling goroutine — never
// concurrently). onStart fires once, just before the first chunk begins
// executing anywhere. Run returns when every chunk has been delivered, or
// with the cancellation cause / first fatal local error.
//
// Scheduling is a single loop over a shared chunk pool: every alive,
// non-busy, non-excluded worker gets at most one in-flight chunk of this job,
// so a fast worker that drains its chunks naturally steals the remaining pool
// from stragglers. A failed attempt requeues the chunk with the failing
// worker excluded; heartbeat loss cancels the in-flight request immediately
// (the member's down channel). Chunks nobody can take — no alive workers, or
// every one excluded — run locally through Deps.Local. A chunk that reached
// MaxAttempts failed remote attempts is forced local. Completed chunks never
// re-enter the pool, so a flapping worker cannot cause duplicate execution,
// and re-execution after a worker death is bit-identical by the seed
// contract anyway.
func (c *Coordinator) Run(ctx context.Context, jobID string, sw *Sweep, deliver func([]Outcome), onStart func()) error {
	points := sw.Points()
	js := &jobChunks{job: jobID, chunks: planChunks(points, c.ms.aliveCount(), c.opts)}
	c.mu.Lock()
	c.jobs[jobID] = js
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.jobs, jobID)
		c.mu.Unlock()
	}()

	parent := span.FromContext(ctx)
	parent.SetAttr("cluster.chunks", len(js.chunks))

	results := make(chan attemptResult, len(js.chunks))
	busy := make(map[string]bool) // worker id -> chunk of this job in flight
	localBusy := false
	started := false
	completed := 0

	start := func() {
		if !started {
			started = true
			if onStart != nil {
				onStart()
			}
		}
	}
	setChunk := func(ch *chunkState, state, worker string) {
		c.mu.Lock()
		ch.state, ch.worker = state, worker
		c.mu.Unlock()
	}

	schedule := func() {
		alive := c.ms.alive()
		for ci, ch := range js.chunks {
			if ch.state != "pending" {
				continue
			}
			if !ch.forceLocal {
				var pick *member
				eligible := false
				for _, m := range alive {
					if ch.excluded[m.id] {
						continue
					}
					eligible = true
					if !busy[m.id] {
						pick = m
						break
					}
				}
				if pick != nil {
					id, addr, down := c.ms.view(pick)
					busy[id] = true
					setChunk(ch, "running", id)
					c.mu.Lock()
					ch.attempts++
					c.mu.Unlock()
					start()
					c.dispatched.Inc()
					go c.dispatch(ctx, parent, jobID, sw, ci, ch.part, ch.lo, ch.hi, id, addr, down, results)
					continue
				}
				if eligible {
					continue // every eligible worker busy: wait, don't go local
				}
			}
			// No worker can ever take this chunk: run it here.
			if localBusy {
				continue
			}
			localBusy = true
			setChunk(ch, "running", "local")
			c.mu.Lock()
			ch.attempts++
			c.mu.Unlock()
			start()
			c.localRuns.Inc()
			go func(ci, lo, hi int) {
				outs, err := c.deps.Local(ctx, sw, lo, hi)
				results <- attemptResult{ci: ci, worker: "", outs: outs, err: err}
			}(ci, ch.lo, ch.hi)
		}
	}

	// The ticker re-runs scheduling so membership changes (a worker joining
	// mid-job, heartbeats aging out) are picked up even when no attempt
	// finishes in the interval.
	tick := time.NewTicker(c.opts.HeartbeatEvery)
	defer tick.Stop()

	schedule()
	for completed < len(js.chunks) {
		select {
		case <-ctx.Done():
			return context.Cause(ctx)
		case <-tick.C:
			schedule()
		case r := <-results:
			ch := js.chunks[r.ci]
			if r.worker == "" {
				localBusy = false
			} else {
				delete(busy, r.worker)
			}
			if ch.state == "done" {
				continue // defensive: a completed chunk is never re-done
			}
			if r.err != nil {
				if ctx.Err() != nil {
					return context.Cause(ctx)
				}
				if r.worker == "" {
					// Local execution is authoritative: its failure means the
					// sweep itself cannot run, not that a node misbehaved.
					setChunk(ch, "failed", "local")
					return fmt.Errorf("partition [%d,%d): %w", ch.lo, ch.hi, r.err)
				}
				c.retries.Inc()
				c.ms.credit(r.worker, 0, true)
				c.mu.Lock()
				ch.excluded[r.worker] = true
				if ch.attempts >= c.opts.MaxAttempts {
					ch.forceLocal = true
				}
				c.mu.Unlock()
				setChunk(ch, "pending", "")
				if c.deps.Logger != nil {
					c.deps.Logger.Warn("cluster partition retry",
						"job", jobID, "part", ch.part, "worker", r.worker, "err", r.err.Error())
				}
			} else {
				setChunk(ch, "done", ch.worker)
				completed++
				if r.worker != "" {
					c.ms.credit(r.worker, int64(ch.hi-ch.lo), false)
				}
				deliver(r.outs)
			}
			schedule()
		}
	}
	return nil
}

// dispatch performs one remote partition attempt: a traced POST to the
// worker's /cluster/v1/partition, canceled the moment the worker's
// heartbeats age out, with the worker's counter deltas merged under a
// node="<id>" label and its span tree ingested into the local store.
func (c *Coordinator) dispatch(ctx context.Context, parent *span.Span, jobID string, sw *Sweep,
	ci, part, lo, hi int, id, addr string, down chan struct{}, results chan<- attemptResult) {

	sp := parent.Child(fmt.Sprintf("cluster.partition[%d]", part))
	sp.SetAttr("cluster.worker", id)
	sp.SetAttr("cluster.lo", lo)
	sp.SetAttr("cluster.hi", hi)
	defer sp.End()

	outs, err := c.post(ctx, sp, jobID, sw, part, lo, hi, id, addr, down)
	if err != nil {
		sp.SetError(err)
	}
	results <- attemptResult{ci: ci, worker: id, outs: outs, err: err}
}

func (c *Coordinator) post(ctx context.Context, sp *span.Span, jobID string, sw *Sweep,
	part, lo, hi int, id, addr string, down chan struct{}) ([]Outcome, error) {

	reqCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-down:
			cancel() // heartbeat loss: abandon the request immediately
		case <-watchDone:
		}
	}()

	body, err := json.Marshal(PartitionRequest{Job: jobID, Part: part, Lo: lo, Hi: hi, Sweep: *sw})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, addr+"/cluster/v1/partition", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", sp.Traceparent())

	resp, err := c.opts.Client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("worker %s: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("worker %s: partition [%d,%d): %s: %s",
			id, lo, hi, resp.Status, bytes.TrimSpace(msg))
	}
	var pr PartitionResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return nil, fmt.Errorf("worker %s: bad partition response: %w", id, err)
	}
	if len(pr.Outcomes) != hi-lo {
		return nil, fmt.Errorf("worker %s: partition [%d,%d): got %d outcomes, want %d",
			id, lo, hi, len(pr.Outcomes), hi-lo)
	}
	for _, o := range pr.Outcomes {
		if o.Index < lo || o.Index >= hi {
			return nil, fmt.Errorf("worker %s: outcome index %d outside [%d,%d)", id, o.Index, lo, hi)
		}
	}
	for name, v := range pr.Metrics {
		c.deps.Registry.Counter(WithNodeLabel(name, id)).Add(v)
	}
	for _, d := range pr.Spans {
		c.deps.Spans.Ingest(d)
	}
	return pr.Outcomes, nil
}
