package cluster

import (
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Member states. A member is alive while its heartbeats are fresh, lost once
// they age past the timeout (it may revive by beating or re-joining), and
// left after an explicit leave (revival requires a full re-join).
const (
	stateAlive = "alive"
	stateLost  = "lost"
	stateLeft  = "left"
)

// member is one registered worker. All fields are guarded by membership.mu.
type member struct {
	id       string
	addr     string
	state    string
	lastBeat time.Time

	// down is closed on every alive→lost/left transition and replaced on
	// revival; dispatchers watch it to abandon in-flight requests to a worker
	// whose heartbeats stopped mid-partition.
	down chan struct{}

	partitions int64
	points     int64
	failures   int64
}

// membership tracks the worker set with lazy expiry: every read re-evaluates
// heartbeat ages against the timeout, so staleness is detected on the next
// access (the coordinator's scheduling ticker guarantees an access cadence
// while a job runs).
type membership struct {
	mu      sync.Mutex
	members map[string]*member
	timeout time.Duration
	now     func() time.Time // injectable clock for tests

	gAlive *obs.Gauge
	gLost  *obs.Gauge
	gLeft  *obs.Gauge
	cFlaps *obs.Counter
}

func newMembership(timeout time.Duration, reg *obs.Registry) *membership {
	m := &membership{
		members: make(map[string]*member),
		timeout: timeout,
		now:     time.Now,
	}
	if reg != nil {
		m.gAlive = reg.Gauge(obs.Label("cluster_workers", "state", stateAlive))
		m.gLost = reg.Gauge(obs.Label("cluster_workers", "state", stateLost))
		m.gLeft = reg.Gauge(obs.Label("cluster_workers", "state", stateLeft))
		m.cFlaps = reg.Counter("cluster_worker_flaps_total")
	}
	return m
}

// expireLocked downgrades members whose heartbeat aged out. Callers hold mu.
func (ms *membership) expireLocked() {
	now := ms.now()
	for _, m := range ms.members {
		if m.state == stateAlive && now.Sub(m.lastBeat) > ms.timeout {
			m.state = stateLost
			close(m.down)
		}
	}
	ms.updateGaugesLocked()
}

func (ms *membership) updateGaugesLocked() {
	if ms.gAlive == nil {
		return
	}
	var alive, lost, left float64
	for _, m := range ms.members {
		switch m.state {
		case stateAlive:
			alive++
		case stateLost:
			lost++
		case stateLeft:
			left++
		}
	}
	ms.gAlive.Set(alive)
	ms.gLost.Set(lost)
	ms.gLeft.Set(left)
}

// flapLocked counts a lost→alive revival: a worker that came back after
// missing its heartbeat deadline, the signature of network or GC-pause
// trouble that the heartbeat-flap alert rule watches. Callers hold mu.
func (ms *membership) flapLocked() {
	if ms.cFlaps != nil {
		ms.cFlaps.Inc()
	}
}

// join registers a worker or revives an existing registration under the same
// ID (a worker restarting keeps its identity; its stats carry over).
func (ms *membership) join(id, addr string) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	m, ok := ms.members[id]
	if !ok {
		m = &member{id: id, down: make(chan struct{})}
		ms.members[id] = m
	} else if m.state != stateAlive {
		m.down = make(chan struct{}) // revival: arm a fresh down signal
		if m.state == stateLost {
			ms.flapLocked()
		}
	}
	m.addr = addr
	m.state = stateAlive
	m.lastBeat = ms.now()
	ms.expireLocked()
}

// heartbeat refreshes a member; it reports false for unknown or departed
// members, telling the worker to re-join. A lost member's beat revives it.
func (ms *membership) heartbeat(id string) bool {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	m, ok := ms.members[id]
	if !ok || m.state == stateLeft {
		return false
	}
	if m.state == stateLost {
		m.down = make(chan struct{})
		m.state = stateAlive
		ms.flapLocked()
	}
	m.lastBeat = ms.now()
	ms.expireLocked()
	return true
}

// leave marks a member as permanently departed.
func (ms *membership) leave(id string) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	m, ok := ms.members[id]
	if !ok {
		return
	}
	if m.state == stateAlive {
		close(m.down)
	}
	m.state = stateLeft
	ms.expireLocked()
}

// alive returns the alive members after expiry, sorted by ID so scheduling
// decisions are independent of map iteration order.
func (ms *membership) alive() []*member {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	ms.expireLocked()
	var out []*member
	for _, m := range ms.members {
		if m.state == stateAlive {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// aliveCount returns how many members are currently alive.
func (ms *membership) aliveCount() int {
	return len(ms.alive())
}

// snapshot returns every member's status, expired first, sorted by ID.
func (ms *membership) snapshot() []WorkerStatus {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	ms.expireLocked()
	now := ms.now()
	out := make([]WorkerStatus, 0, len(ms.members))
	for _, m := range ms.members {
		out = append(out, WorkerStatus{
			ID:         m.id,
			Addr:       m.addr,
			State:      m.state,
			AgeSeconds: now.Sub(m.lastBeat).Seconds(),
			Partitions: m.partitions,
			Points:     m.points,
			Failures:   m.failures,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// view copies a member's dial info under the lock; the down channel is the
// one armed at the member's latest alive transition.
func (ms *membership) view(m *member) (id, addr string, down chan struct{}) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return m.id, m.addr, m.down
}

// credit updates a member's per-chunk stats after an attempt finishes.
func (ms *membership) credit(id string, points int64, failed bool) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	m, ok := ms.members[id]
	if !ok {
		return
	}
	if failed {
		m.failures++
		return
	}
	m.partitions++
	m.points += points
}
