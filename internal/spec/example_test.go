package spec_test

import (
	"fmt"

	"repro/internal/spec"
)

// Parse an FSM specification and run its golden model for four steps.
func ExampleParse() {
	sp, err := spec.ParseString(`
kind fsm
bit b0 init 0 next !b0
bit b1 init 0 next b1 ^ b0
`)
	if err != nil {
		panic(err)
	}
	st := sp.FSM.InitState()
	for i := 0; i < 4; i++ {
		fmt.Println(sp.FSM.StateString(st))
		st = sp.FSM.Step(st)
	}
	// Output:
	// 00
	// 10
	// 01
	// 11
}

// Boolean next-state expressions follow the usual precedence.
func ExampleParseExpr() {
	e, err := spec.ParseExpr("a | b & !c")
	if err != nil {
		panic(err)
	}
	fmt.Println(e.Eval(map[string]bool{"a": false, "b": true, "c": false}))
	fmt.Println(e.Eval(map[string]bool{"a": false, "b": true, "c": true}))
	// Output:
	// true
	// false
}
