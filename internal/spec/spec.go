// Package spec parses the circuit specification format consumed by
// cmd/crncompile — a minimal hardware-description text format playing the
// role the cited synthesis-flow work (Jiang et al., ICCAD'10) gives its
// input language. A spec is either a DSP filter netlist lowered to a
// signal-flow graph, or a finite-state machine lowered to Boolean
// next-state logic:
//
//	# a filter
//	kind filter
//	input x
//	delay d1 x            # unit delay fed by x (optional trailing init)
//	gain  h  d1 3/4       # h = (3/4)·d1
//	add   s  x h          # s = x + h
//	output y s
//
//	# a state machine
//	kind fsm
//	bit b0 init 0 next !b0
//	bit b1 init 0 next b1 ^ b0
//
// Boolean next-state expressions support !, &, ^, |, parentheses and the
// constants 0 and 1, with the usual precedence (! > & > ^ > |).
package spec

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/logic"
	"repro/internal/sfg"
)

// Kind discriminates the two spec flavours.
type Kind int

const (
	KindFilter Kind = iota
	KindFSM
)

// Spec is a parsed circuit specification: exactly one of Graph or FSM is
// set, according to Kind.
type Spec struct {
	Kind  Kind
	Graph *sfg.Graph
	FSM   *logic.FSM
}

// Parse reads a spec. The first non-comment line must be "kind filter" or
// "kind fsm".
func Parse(r io.Reader) (*Spec, error) {
	sc := bufio.NewScanner(r)
	var lines []string
	var linenos []int
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		lines = append(lines, line)
		linenos = append(linenos, lineno)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("spec: read: %w", err)
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("spec: empty specification")
	}
	kindFields := strings.Fields(lines[0])
	if len(kindFields) != 2 || kindFields[0] != "kind" {
		return nil, fmt.Errorf("spec: line %d: first line must be 'kind filter' or 'kind fsm'", linenos[0])
	}
	switch kindFields[1] {
	case "filter":
		g, err := parseFilter(lines[1:], linenos[1:])
		if err != nil {
			return nil, err
		}
		return &Spec{Kind: KindFilter, Graph: g}, nil
	case "fsm":
		f, err := parseFSM(lines[1:], linenos[1:])
		if err != nil {
			return nil, err
		}
		return &Spec{Kind: KindFSM, FSM: f}, nil
	default:
		return nil, fmt.Errorf("spec: line %d: unknown kind %q", linenos[0], kindFields[1])
	}
}

// ParseString is Parse over a string.
func ParseString(s string) (*Spec, error) { return Parse(strings.NewReader(s)) }

func parseFilter(lines []string, linenos []int) (*sfg.Graph, error) {
	g := sfg.New()
	for i, line := range lines {
		f := strings.Fields(line)
		bad := func(msg string) error {
			return fmt.Errorf("spec: line %d: %s (in %q)", linenos[i], msg, line)
		}
		var err error
		switch f[0] {
		case "input":
			if len(f) != 2 {
				return nil, bad("input wants: input <name>")
			}
			err = g.Input(f[1])
		case "delay":
			switch len(f) {
			case 3:
				err = g.Delay(f[1], f[2], 0)
			case 4:
				init, perr := strconv.ParseFloat(f[3], 64)
				if perr != nil {
					return nil, bad("bad delay init value")
				}
				err = g.Delay(f[1], f[2], init)
			default:
				return nil, bad("delay wants: delay <name> <src> [init]")
			}
		case "gain":
			if len(f) != 4 {
				return nil, bad("gain wants: gain <name> <src> <p/q>")
			}
			p, q, perr := parseRatio(f[3])
			if perr != nil {
				return nil, bad(perr.Error())
			}
			err = g.Gain(f[1], f[2], p, q)
		case "add":
			if len(f) < 4 {
				return nil, bad("add wants: add <name> <src> <src> ...")
			}
			err = g.Add(f[1], f[2:]...)
		case "output":
			if len(f) != 3 {
				return nil, bad("output wants: output <name> <src>")
			}
			err = g.Output(f[1], f[2])
		default:
			return nil, bad("unknown filter statement " + f[0])
		}
		if err != nil {
			return nil, fmt.Errorf("spec: line %d: %w", linenos[i], err)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	return g, nil
}

func parseRatio(s string) (p, q int, err error) {
	num, den, ok := strings.Cut(s, "/")
	p, err = strconv.Atoi(num)
	if err != nil {
		return 0, 0, fmt.Errorf("bad gain ratio %q", s)
	}
	q = 1
	if ok {
		q, err = strconv.Atoi(den)
		if err != nil {
			return 0, 0, fmt.Errorf("bad gain ratio %q", s)
		}
	}
	return p, q, nil
}

func parseFSM(lines []string, linenos []int) (*logic.FSM, error) {
	f := logic.NewFSM()
	for i, line := range lines {
		fields := strings.Fields(line)
		bad := func(msg string) error {
			return fmt.Errorf("spec: line %d: %s (in %q)", linenos[i], msg, line)
		}
		if len(fields) < 6 || fields[0] != "bit" || fields[2] != "init" || fields[4] != "next" {
			return nil, bad("bit wants: bit <name> init <0|1> next <expr>")
		}
		var init bool
		switch fields[3] {
		case "0":
			init = false
		case "1":
			init = true
		default:
			return nil, bad("init must be 0 or 1")
		}
		exprSrc := strings.Join(fields[5:], " ")
		expr, err := ParseExpr(exprSrc)
		if err != nil {
			return nil, fmt.Errorf("spec: line %d: %w", linenos[i], err)
		}
		if err := f.AddBit(fields[1], init, expr); err != nil {
			return nil, fmt.Errorf("spec: line %d: %w", linenos[i], err)
		}
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	return f, nil
}

// ParseExpr parses a Boolean expression over state-bit names with operators
// ! (not), & (and), ^ (xor), | (or), parentheses, and constants 0/1.
// Precedence: ! > & > ^ > |, all binary operators left-associative.
func ParseExpr(src string) (logic.Expr, error) {
	p := &exprParser{src: src}
	p.next()
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok != tokEOF {
		return nil, fmt.Errorf("spec: trailing input %q in expression %q", p.lit, src)
	}
	return e, nil
}

type exprToken int

const (
	tokEOF exprToken = iota
	tokIdent
	tokConst
	tokNot
	tokAnd
	tokXor
	tokOr
	tokLParen
	tokRParen
	tokBad
)

type exprParser struct {
	src string
	pos int
	tok exprToken
	lit string
}

func (p *exprParser) next() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
	if p.pos >= len(p.src) {
		p.tok, p.lit = tokEOF, ""
		return
	}
	c := p.src[p.pos]
	switch c {
	case '!':
		p.tok, p.lit = tokNot, "!"
		p.pos++
	case '&':
		p.tok, p.lit = tokAnd, "&"
		p.pos++
	case '^':
		p.tok, p.lit = tokXor, "^"
		p.pos++
	case '|':
		p.tok, p.lit = tokOr, "|"
		p.pos++
	case '(':
		p.tok, p.lit = tokLParen, "("
		p.pos++
	case ')':
		p.tok, p.lit = tokRParen, ")"
		p.pos++
	case '0', '1':
		p.tok, p.lit = tokConst, string(c)
		p.pos++
	default:
		if isIdentByte(c) {
			start := p.pos
			for p.pos < len(p.src) && isIdentByte(p.src[p.pos]) {
				p.pos++
			}
			p.tok, p.lit = tokIdent, p.src[start:p.pos]
			return
		}
		p.tok, p.lit = tokBad, string(c)
		p.pos++
	}
}

func isIdentByte(c byte) bool {
	return c == '_' || c == '.' ||
		('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}

func (p *exprParser) parseOr() (logic.Expr, error) {
	e, err := p.parseXor()
	if err != nil {
		return nil, err
	}
	for p.tok == tokOr {
		p.next()
		rhs, err := p.parseXor()
		if err != nil {
			return nil, err
		}
		e = logic.Or(e, rhs)
	}
	return e, nil
}

func (p *exprParser) parseXor() (logic.Expr, error) {
	e, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok == tokXor {
		p.next()
		rhs, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		e = logic.Xor(e, rhs)
	}
	return e, nil
}

func (p *exprParser) parseAnd() (logic.Expr, error) {
	e, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok == tokAnd {
		p.next()
		rhs, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		e = logic.And(e, rhs)
	}
	return e, nil
}

func (p *exprParser) parseUnary() (logic.Expr, error) {
	switch p.tok {
	case tokNot:
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return logic.Not(e), nil
	case tokIdent:
		name := p.lit
		p.next()
		return logic.Var(name), nil
	case tokConst:
		lit := p.lit
		p.next()
		if lit == "1" {
			return logic.True, nil
		}
		return logic.False, nil
	case tokLParen:
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok != tokRParen {
			return nil, fmt.Errorf("spec: missing ')' in expression %q", p.src)
		}
		p.next()
		return e, nil
	default:
		return nil, fmt.Errorf("spec: unexpected %q in expression %q", p.lit, p.src)
	}
}
