package spec

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/logic"
)

func TestParseFilterSpec(t *testing.T) {
	src := `
# a 2-tap weighted filter
kind filter
input x
delay d1 x
gain  h  d1 3/4
add   s  x h
output y s
`
	sp, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Kind != KindFilter || sp.Graph == nil {
		t.Fatalf("spec = %+v", sp)
	}
	out, err := sp.Graph.Run(map[string][]float64{"x": {4, 0}})
	if err != nil {
		t.Fatal(err)
	}
	// y[0] = 4, y[1] = 0 + (3/4)·4 = 3.
	if out["y"][0] != 4 || out["y"][1] != 3 {
		t.Fatalf("y = %v", out["y"])
	}
}

func TestParseFilterDelayInit(t *testing.T) {
	src := `kind filter
input x
delay d1 x 0.5
output y d1
`
	sp, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sp.Graph.Run(map[string][]float64{"x": {1}})
	if err != nil {
		t.Fatal(err)
	}
	if out["y"][0] != 0.5 {
		t.Fatalf("y = %v", out["y"])
	}
}

func TestParseFilterIntegerGain(t *testing.T) {
	sp, err := ParseString("kind filter\ninput x\ngain g x 3\noutput y g\n")
	if err != nil {
		t.Fatal(err)
	}
	out, err := sp.Graph.Run(map[string][]float64{"x": {2}})
	if err != nil {
		t.Fatal(err)
	}
	if out["y"][0] != 6 {
		t.Fatalf("y = %v", out["y"])
	}
}

func TestParseFSMSpec(t *testing.T) {
	src := `
kind fsm
bit b0 init 0 next !b0
bit b1 init 0 next b1 ^ b0
bit b2 init 1 next b2 & (b0 | b1)
`
	sp, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Kind != KindFSM || sp.FSM == nil {
		t.Fatalf("spec = %+v", sp)
	}
	st := sp.FSM.InitState()
	if sp.FSM.StateString(st) != "001" {
		t.Fatalf("init = %s", sp.FSM.StateString(st))
	}
	st = sp.FSM.Step(st)
	// b0: !0=1; b1: 0^0=0; b2: 1&(0|0)=0.
	if sp.FSM.StateString(st) != "100" {
		t.Fatalf("step = %s", sp.FSM.StateString(st))
	}
}

func TestParseFSMMatchesCounterBuilder(t *testing.T) {
	src := `kind fsm
bit b0 init 0 next b0 ^ 1
bit b1 init 0 next b1 ^ b0
bit b2 init 0 next b2 ^ (b0 & b1)
`
	sp, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := logic.Counter(3)
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := sp.FSM.InitState(), golden.InitState()
	for k := 0; k < 20; k++ {
		if sp.FSM.StateUint(sa) != golden.StateUint(sb) {
			t.Fatalf("step %d: spec %d vs builder %d", k, sp.FSM.StateUint(sa), golden.StateUint(sb))
		}
		sa, sb = sp.FSM.Step(sa), golden.Step(sb)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                                       // empty
		"input x\n",                              // no kind line
		"kind widget\n",                          // unknown kind
		"kind filter\nbogus x\n",                 // unknown statement
		"kind filter\ninput\n",                   // arity
		"kind filter\ndelay d\n",                 // arity
		"kind filter\ndelay d x nope\n",          // bad init
		"kind filter\ngain g x three\n",          // bad ratio
		"kind filter\ngain g x 1/zero\n",         // bad ratio denominator
		"kind filter\nadd s x\n",                 // unary add
		"kind filter\noutput y\n",                // arity
		"kind filter\ninput x\noutput y ghost\n", // dangling ref
		"kind fsm\nbit b0 0 !b0\n",               // missing keywords
		"kind fsm\nbit b0 init 2 next b0\n",      // bad init
		"kind fsm\nbit b0 init 0 next b0 &&\n",   // bad expression
		"kind fsm\nbit b0 init 0 next (b0\n",     // missing paren
		"kind fsm\nbit b0 init 0 next ghost\n",   // undeclared bit
		"kind fsm\nbit b0 init 0 next b0 @\n",    // bad token
	}
	for _, src := range bad {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q) accepted invalid input", src)
		}
	}
}

func TestParseExprPrecedence(t *testing.T) {
	cases := []struct {
		src  string
		env  map[string]bool
		want bool
	}{
		{"a | b & c", map[string]bool{"a": false, "b": true, "c": false}, false}, // & binds tighter
		{"(a | b) & c", map[string]bool{"a": false, "b": true, "c": false}, false},
		{"a ^ b | c", map[string]bool{"a": true, "b": true, "c": true}, true}, // ^ before |
		{"!a & b", map[string]bool{"a": false, "b": true}, true},
		{"!(a & b)", map[string]bool{"a": true, "b": true}, false},
		{"!!a", map[string]bool{"a": true}, true},
		{"1 ^ a", map[string]bool{"a": true}, false},
		{"0 | a", map[string]bool{"a": true}, true},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.src)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		if got := e.Eval(c.env); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

// Property: rendering a parsed expression and re-parsing it preserves
// semantics (the String forms use the same operators).
func TestQuickExprRoundTrip(t *testing.T) {
	exprs := []string{
		"a", "!a", "a & b", "a | b", "a ^ b", "a & b | c", "a ^ (b | !c)",
		"!(a ^ b) & (c | a)", "1 & a", "b ^ 0",
	}
	prop := func(idx uint8, a, b, c bool) bool {
		src := exprs[int(idx)%len(exprs)]
		env := map[string]bool{"a": a, "b": b, "c": c}
		e1, err := ParseExpr(src)
		if err != nil {
			return false
		}
		e2, err := ParseExpr(strings.NewReplacer("(", " ( ", ")", " ) ").Replace(e1.String()))
		if err != nil {
			t.Logf("re-parse of %q failed: %v", e1.String(), err)
			return false
		}
		return e1.Eval(env) == e2.Eval(env)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
