package exper

import (
	"context"
	"math"

	"repro/internal/batch"
	"repro/internal/sfg"
	"repro/internal/sim"
	"repro/internal/synth"
)

func init() {
	register(Experiment{
		ID:    "E13",
		Title: "Frequency response of the molecular moving-average filter",
		Tags:  []string{TagGrid},
		Run:   runE13,
	})
}

// demodAmplitude extracts the amplitude of the component at normalized
// frequency f (cycles/sample) from a sample stream, ignoring the first skip
// samples (filter transient).
func demodAmplitude(y []float64, f float64, skip int) float64 {
	w := y[skip:]
	n := len(w)
	if n == 0 {
		return 0
	}
	mean := 0.0
	for _, v := range w {
		mean += v
	}
	mean /= float64(n)
	s, c := 0.0, 0.0
	for k, v := range w {
		ph := 2 * math.Pi * f * float64(k+skip)
		s += (v - mean) * math.Sin(ph)
		c += (v - mean) * math.Cos(ph)
	}
	s *= 2 / float64(n)
	c *= 2 / float64(n)
	return math.Hypot(s, c)
}

// movingAverageGain is the analytic magnitude response of an n-tap moving
// average at normalized frequency f.
func movingAverageGain(n int, f float64) float64 {
	if f == 0 {
		return 1
	}
	w := math.Pi * f
	return math.Abs(math.Sin(float64(n)*w) / (float64(n) * math.Sin(w)))
}

func runE13(ctx context.Context, cfg Config) (*Result, error) {
	res := &Result{
		ID:     "E13",
		Title:  "Molecular filter frequency response",
		Header: []string{"freq (cyc/sample)", "theory amp", "golden amp", "molecular amp", "molecular/theory"},
	}
	// Frequencies chosen so the demodulation window (nCycles − taps = 16
	// samples) holds an integer number of periods of each, sweeping the
	// 4-tap response from passband (f = 1/16, |H| ≈ 0.91) through the
	// rolloff to the transmission zeros at f = 1/4 and f = 1/2.
	taps := 4
	freqs := []float64{1.0 / 16, 1.0 / 8, 3.0 / 16, 1.0 / 4, 1.0 / 2}
	nCycles := 20
	tEnd := 1000.0
	ratio := 1000.0
	if cfg.Quick {
		taps = 2
		freqs = []float64{0.25}
		nCycles = 8
		tEnd = 400
		ratio = 500
	}
	const (
		dc  = 0.75
		amp = 0.5
	)
	// One job per probe frequency; each builds its own graph and compiled
	// circuit, because the golden-model evaluation and synthesis both walk
	// mutable structures that must stay private to the job.
	rows, _, err := batch.Map(ctx, len(freqs), func(ctx context.Context, p batch.Point) ([]string, error) {
		f := freqs[p.Index]
		g, err := sfg.MovingAverage(taps)
		if err != nil {
			return nil, err
		}
		x := make([]float64, nCycles)
		for k := range x {
			x[k] = dc + amp*math.Sin(2*math.Pi*f*float64(k))
		}
		golden, err := g.Run(map[string][]float64{"x": x})
		if err != nil {
			return nil, err
		}
		cp, err := synth.Compile(g, "f")
		if err != nil {
			return nil, err
		}
		cp.Obs = cfg.pointObs(p)
		_, outs, err := cp.RunContext(ctx, sim.Rates{Fast: ratio, Slow: 1}, tEnd, map[string][]float64{"x": x}, nCycles)
		if err != nil {
			return nil, err
		}
		skip := taps // drop the fill transient
		theory := amp * movingAverageGain(taps, f)
		ga := demodAmplitude(golden["y"], f, skip)
		ma := demodAmplitude(outs["y"], f, skip)
		rel := "-"
		if theory > 1e-9 {
			rel = f3(ma / theory)
		}
		return []string{f3(f), f4(theory), f4(ga), f4(ma), rel}, nil
	}, cfg.batchOpts())
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	res.Notes = append(res.Notes,
		"input: x[k] = 0.75 + 0.5·sin(2πfk) (concentrations must stay positive, hence the DC offset)",
		"shape criterion: the molecular filter's gains track the analytic moving-average response (theory amp = 0.5·|H(f)|); the 4-tap filter has transmission zeros at f = 1/4 and f = 1/2")
	return res, nil
}
