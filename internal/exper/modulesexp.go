package exper

import (
	"context"
	"fmt"
	"math"

	"repro/internal/batch"
	"repro/internal/crn"
	"repro/internal/modules"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "E14",
		Title: "Combinational module library: computed vs exact (prior-work substrate)",
		Tags:  []string{TagGrid},
		Run:   runE14,
	})
}

func runE14(ctx context.Context, cfg Config) (*Result, error) {
	res := &Result{
		ID:     "E14",
		Title:  "Rate-independent arithmetic modules",
		Header: []string{"module", "inputs", "exact", "computed", "abs err"},
	}
	ratio := 1000.0
	if cfg.Quick {
		ratio = 500
	}
	rates := sim.Rates{Fast: ratio, Slow: 1}

	type testCase struct {
		name   string
		inputs string
		exact  float64
		tEnd   float64
		build  func(n *crn.Network) (string, error)
	}
	cases := []testCase{
		{
			name: "add", inputs: "0.7+0.55+0.25", exact: 1.5, tEnd: 5,
			build: func(n *crn.Network) (string, error) {
				for sp, v := range map[string]float64{"A": 0.7, "B": 0.55, "C": 0.25} {
					if err := n.SetInit(sp, v); err != nil {
						return "", err
					}
				}
				return "S", modules.AddInto(n, "S", "A", "B", "C")
			},
		},
		{
			name: "scale 3/4", inputs: "1.2", exact: 0.9, tEnd: 120,
			build: func(n *crn.Network) (string, error) {
				if err := n.SetInit("X", 1.2); err != nil {
					return "", err
				}
				return "Y", modules.Scale(n, "X", "Y", 3, 4)
			},
		},
		{
			name: "subtract", inputs: "1.5-0.6", exact: 0.9, tEnd: 40,
			build: func(n *crn.Network) (string, error) {
				if err := n.SetInit("A", 1.5); err != nil {
					return "", err
				}
				if err := n.SetInit("B", 0.6); err != nil {
					return "", err
				}
				return "D", modules.Subtract(n, "sub", "A", "B", "D")
			},
		},
		{
			name: "min", inputs: "min(1.2,0.5)", exact: 0.5, tEnd: 40,
			build: func(n *crn.Network) (string, error) {
				if err := n.SetInit("A", 1.2); err != nil {
					return "", err
				}
				if err := n.SetInit("B", 0.5); err != nil {
					return "", err
				}
				return "M", modules.Min(n, "A", "B", "M")
			},
		},
		{
			name: "max", inputs: "max(1.2,0.5)", exact: 1.2, tEnd: 60,
			build: func(n *crn.Network) (string, error) {
				if err := n.SetInit("A", 1.2); err != nil {
					return "", err
				}
				if err := n.SetInit("B", 0.5); err != nil {
					return "", err
				}
				return "M", modules.Max(n, "mx", "A", "B", "M")
			},
		},
		{
			name: "compare (GT mass)", inputs: "1.5 vs 0.5", exact: 1, tEnd: 60,
			build: func(n *crn.Network) (string, error) {
				if err := n.SetInit("A", 1.5); err != nil {
					return "", err
				}
				if err := n.SetInit("B", 0.5); err != nil {
					return "", err
				}
				c, err := modules.Compare(n, "cmp", "A", "B")
				return c.GT, err
			},
		},
		{
			name: "multiply", inputs: "0.8×3", exact: 2.4, tEnd: 280,
			build: func(n *crn.Network) (string, error) {
				if err := n.SetInit("X", 0.8); err != nil {
					return "", err
				}
				if err := n.SetInit("Y", 3); err != nil {
					return "", err
				}
				_, err := modules.Multiply(n, "mul", "X", "Y", "Z")
				return "Z", err
			},
		},
	}
	if cfg.Quick {
		cases = cases[:4]
	}
	// One job per module test case; each builds its own network.
	rows, _, err := batch.Map(ctx, len(cases), func(ctx context.Context, p batch.Point) ([]string, error) {
		c := cases[p.Index]
		n := crn.NewNetwork()
		out, err := c.build(n)
		if err != nil {
			return nil, fmt.Errorf("exper: E14 %s: %w", c.name, err)
		}
		tr, err := sim.Run(ctx, n, sim.Config{Rates: rates, TEnd: c.tEnd, Obs: cfg.pointObs(p)})
		if err != nil {
			return nil, fmt.Errorf("exper: E14 %s: %w", c.name, err)
		}
		got := tr.Final(out)
		return []string{
			c.name, c.inputs, f4(c.exact), f4(got), f4(math.Abs(got - c.exact)),
		}, nil
	}, cfg.batchOpts())
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	res.Notes = append(res.Notes,
		"these are the memoryless constructs of the group's prior work (ICCAD'10, PSB'11) that the DAC paper's datapaths assume; each is exact on quantities given only fast >> slow",
		"the multiplier is the iterative token-loop construct: its completion time is proportional to the integer multiplier Y")
	return res, nil
}
