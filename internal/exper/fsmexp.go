package exper

import (
	"context"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/batch"
	"repro/internal/logic"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "E5",
		Title: "Three-bit binary counter (paper's sequential FSM figure)",
		Tags:  []string{TagScalar},
		Run:   runE5,
	})
}

func runE5(ctx context.Context, cfg Config) (*Result, error) {
	res := &Result{
		ID:     "E5",
		Title:  "Three-bit synchronous molecular counter",
		Header: []string{"cycle", "decoded", "expected", "ok"},
	}
	nbits := 3
	tEnd := 420.0
	ratio := 300.0
	if cfg.Quick {
		nbits = 2
		tEnd = 220
	}
	f, err := logic.Counter(nbits)
	if err != nil {
		return nil, err
	}
	m, err := logic.Compile(f, "cnt")
	if err != nil {
		return nil, err
	}
	m.Obs = cfg.Obs
	tr, err := m.RunContext(ctx, sim.Rates{Fast: ratio, Slow: 1}, tEnd)
	if err != nil {
		return nil, err
	}
	got, err := m.StateUints(tr)
	if err != nil {
		return nil, err
	}
	want := make([]uint64, len(got))
	st := f.InitState()
	for k := range want {
		want[k] = f.StateUint(st)
		st = f.Step(st)
	}
	for k := range got {
		ok := "yes"
		if got[k] != want[k] {
			ok = "NO"
		}
		res.Rows = append(res.Rows, []string{itoa(k), itoa(int(got[k])), itoa(int(want[k])), ok})
	}
	errs, n := analysis.BitErrors(got, want)
	margin, err := m.RailMargin(tr)
	if err != nil {
		return nil, err
	}
	cost := analysis.CostOf(m.Circuit.Net)
	res.Notes = append(res.Notes,
		fmt.Sprintf("%d/%d cycles wrong; worst rail margin %s; circuit: %d species, %d reactions",
			errs, n, f3(margin), cost.Species, cost.Reactions),
		"paper criterion: the molecular counter tracks the Boolean counter exactly, cycle for cycle")
	return res, nil
}

func init() {
	register(Experiment{
		ID:    "E12",
		Title: "Stochastic counter: does the FSM still count at finite molecule counts?",
		Tags:  []string{TagGrid, TagStoch},
		Run:   runE12,
	})
}

func runE12(ctx context.Context, cfg Config) (*Result, error) {
	res := &Result{
		ID:     "E12",
		Title:  "Stochastic (SSA) operation of the molecular counter",
		Header: []string{"molecules/unit", "seed", "cycles decoded", "wrong cycles", "worst rail margin"},
	}
	units := []float64{50, 200}
	seeds := []int64{1, 2}
	tEnd := 280.0
	ratio := 300.0
	if cfg.Quick {
		units = []float64{100}
		seeds = []int64{1}
		tEnd = 180
	}
	f, err := logic.Counter(2)
	if err != nil {
		return nil, err
	}
	// One SSA job per (unit, seed) grid point; each compiles its own machine
	// because the decode helpers hang off the Machine and the circuit must
	// not be shared across concurrent jobs.
	rows, _, err := batch.Map(ctx, len(units)*len(seeds), func(ctx context.Context, p batch.Point) ([]string, error) {
		unit := units[p.Index/len(seeds)]
		seed := seeds[p.Index%len(seeds)]
		m, err := logic.Compile(f, "cnt")
		if err != nil {
			return nil, err
		}
		tr, err := sim.Run(ctx, m.Circuit.Net, sim.Config{
			Method: sim.SSA, Rates: sim.Rates{Fast: ratio, Slow: 1}, TEnd: tEnd,
			Unit: unit, Seed: cfg.Seed + seed, Obs: cfg.pointObs(p),
		})
		if err != nil {
			return nil, err
		}
		got, err := m.StateUints(tr)
		if err != nil {
			return nil, err
		}
		want := make([]uint64, len(got))
		st := f.InitState()
		for k := range want {
			want[k] = f.StateUint(st)
			st = f.Step(st)
		}
		errs, ncy := analysis.BitErrors(got, want)
		margin, err := m.RailMargin(tr)
		if err != nil {
			return nil, err
		}
		return []string{
			fmt.Sprintf("%.0f", unit), itoa(int(seed)), itoa(ncy), itoa(errs), f3(margin),
		}, nil
	}, cfg.batchOpts())
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	res.Notes = append(res.Notes,
		"a question the deterministic paper leaves open: the synchronous machinery keeps counting even when each signal is only a few dozen molecules",
		"2-bit counter; decoding uses the same blue-stage peak readout as the deterministic runs")
	return res, nil
}
