package exper

import (
	"context"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 14 {
		t.Fatalf("registry has %d experiments, want 14", len(all))
	}
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14"}
	for i, id := range want {
		if all[i].ID != id {
			t.Fatalf("order: got %s at %d, want %s", all[i].ID, i, id)
		}
	}
	if _, ok := ByID("E3"); !ok {
		t.Fatal("ByID(E3) failed")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("ByID(E99) succeeded")
	}
}

func TestDescriptors(t *testing.T) {
	desc := Registry()
	all := All()
	if len(desc) != len(all) {
		t.Fatalf("Registry returned %d descriptors, want %d", len(desc), len(all))
	}
	grids, scalars := 0, 0
	for i, d := range desc {
		if d.ID != all[i].ID || d.Title != all[i].Title {
			t.Fatalf("descriptor %d = %+v, want %s", i, d, all[i].ID)
		}
		if len(d.Tags) == 0 {
			t.Fatalf("%s has no tags", d.ID)
		}
		for _, tag := range d.Tags {
			switch tag {
			case TagGrid:
				grids++
			case TagScalar:
				scalars++
			case TagStoch:
			default:
				t.Fatalf("%s carries unknown tag %q", d.ID, tag)
			}
		}
	}
	if grids == 0 || scalars == 0 {
		t.Fatalf("tag partition degenerate: %d grid, %d scalar", grids, scalars)
	}
	// Every experiment is exactly one of grid or scalar.
	for _, e := range All() {
		if e.HasTag(TagGrid) == e.HasTag(TagScalar) {
			t.Fatalf("%s must be exactly one of grid/scalar, tags %v", e.ID, e.Tags)
		}
	}
	// The stochastic ensembles are grid experiments.
	for _, id := range []string{"E8", "E12"} {
		e, _ := ByID(id)
		if !e.HasTag(TagGrid) || !e.HasTag(TagStoch) {
			t.Fatalf("%s tags = %v, want grid+stoch", id, e.Tags)
		}
	}
}

func TestResultFormat(t *testing.T) {
	r := &Result{
		ID:     "EX",
		Title:  "demo",
		Header: []string{"a", "long-column"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"a note"},
	}
	out := r.Format()
	for _, want := range []string{"=== EX: demo ===", "long-column", "333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
}

// Every experiment must run clean in quick mode and produce a non-empty
// table. This is the integration test for the whole stack.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every simulation in the suite")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			res, err := e.Run(context.Background(), Config{Quick: true, Seed: 1})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(res.Rows) == 0 {
				t.Fatalf("%s: empty result", e.ID)
			}
			if res.ID != e.ID {
				t.Fatalf("%s: result ID %s", e.ID, res.ID)
			}
		})
	}
}

// TestGridExperimentsParallelGolden is the determinism guarantee of the
// batch port: for deterministic-table grid experiments, a parallel pool must
// render byte-identical output to the sequential path. E10 is excluded — its
// wall-time column is legitimately non-deterministic.
func TestGridExperimentsParallelGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs grid experiments twice")
	}
	for _, id := range []string{"E6", "E8", "E12"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %s not registered", id)
			}
			seq, err := e.Run(context.Background(), Config{Quick: true, Seed: 7, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			par, err := e.Run(context.Background(), Config{Quick: true, Seed: 7, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := par.Format(), seq.Format(); got != want {
				t.Errorf("parallel table differs from sequential:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", want, got)
			}
		})
	}
}

// TestExperimentCancellation: a canceled context must abort an experiment
// promptly with a context error, not a mangled table.
func TestExperimentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, id := range []string{"E1", "E2", "E8"} {
		e, _ := ByID(id)
		if _, err := e.Run(ctx, Config{Quick: true, Seed: 1}); err == nil {
			t.Errorf("%s: pre-canceled context produced no error", id)
		}
	}
}
