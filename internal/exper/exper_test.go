package exper

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 14 {
		t.Fatalf("registry has %d experiments, want 14", len(all))
	}
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14"}
	for i, id := range want {
		if all[i].ID != id {
			t.Fatalf("order: got %s at %d, want %s", all[i].ID, i, id)
		}
	}
	if _, ok := ByID("E3"); !ok {
		t.Fatal("ByID(E3) failed")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("ByID(E99) succeeded")
	}
}

func TestResultFormat(t *testing.T) {
	r := &Result{
		ID:     "EX",
		Title:  "demo",
		Header: []string{"a", "long-column"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"a note"},
	}
	out := r.Format()
	for _, want := range []string{"=== EX: demo ===", "long-column", "333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
}

// Every experiment must run clean in quick mode and produce a non-empty
// table. This is the integration test for the whole stack.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every simulation in the suite")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			res, err := e.Run(Config{Quick: true, Seed: 1})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(res.Rows) == 0 {
				t.Fatalf("%s: empty result", e.ID)
			}
			if res.ID != e.ID {
				t.Fatalf("%s: result ID %s", e.ID, res.ID)
			}
		})
	}
}
