package exper

import (
	"context"
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/async"
	"repro/internal/batch"
	"repro/internal/crn"
	"repro/internal/sfg"
	"repro/internal/sim"
	"repro/internal/synth"
)

func init() {
	register(Experiment{
		ID:    "E7",
		Title: "Synchronous vs self-timed delay lines: structural cost and latency",
		Tags:  []string{TagGrid},
		Run:   runE7,
	})
	register(Experiment{
		ID:    "E10",
		Title: "Self-timed chain scaling: length vs latency, fidelity and cost",
		Tags:  []string{TagGrid},
		Run:   runE10,
	})
}

// delayLineGraph builds an n-delay identity pipeline SFG.
func delayLineGraph(n int) (*sfg.Graph, error) {
	g := sfg.New()
	if err := g.Input("x"); err != nil {
		return nil, err
	}
	prev := "x"
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("d%d", i)
		if err := g.Delay(name, prev, 0); err != nil {
			return nil, err
		}
		prev = name
	}
	if err := g.Output("y", prev); err != nil {
		return nil, err
	}
	return g, nil
}

func runE7(ctx context.Context, cfg Config) (*Result, error) {
	res := &Result{
		ID:     "E7",
		Title:  "Sync vs async delay lines",
		Header: []string{"scheme", "n", "species", "reactions", "latency", "output"},
	}
	lengths := []int{2, 4, 8}
	ratio := 500.0
	if cfg.Quick {
		lengths = []int{2, 4}
	}
	// One job per chain length; each job runs the self-timed chain and the
	// clocked pipeline back to back and returns both rows, so the table
	// keeps the historical async/sync interleaving.
	rowPairs, _, err := batch.Map(ctx, len(lengths), func(ctx context.Context, p batch.Point) ([][]string, error) {
		n := lengths[p.Index]
		jobObs := cfg.pointObs(p)
		// Self-timed chain: one-shot transfer of 1.0.
		net := crn.NewNetwork()
		ch, err := async.NewChain(net, "a", n)
		if err != nil {
			return nil, err
		}
		if err := net.SetInit(ch.Input, 1); err != nil {
			return nil, err
		}
		tEnd := 60.0 * float64(n)
		tr, err := sim.Run(ctx, net, sim.Config{Rates: sim.Rates{Fast: ratio, Slow: 1}, TEnd: tEnd, Obs: jobObs})
		if err != nil {
			return nil, err
		}
		lat, err := ch.Latency(tr, 1)
		if err != nil {
			return nil, err
		}
		cost := analysis.CostOf(net)
		asyncRow := []string{
			"async", itoa(n), itoa(cost.Species), itoa(cost.Reactions), f1(lat), f3(tr.Final(ch.Output)),
		}

		// Clocked pipeline: first sample 1.0 then zeros; latency is the
		// time the output sink has collected half the value.
		g, err := delayLineGraph(n)
		if err != nil {
			return nil, err
		}
		cp, err := synth.Compile(g, "s")
		if err != nil {
			return nil, err
		}
		x := make([]float64, n+2)
		x[0] = 1
		events, err := cp.StreamConfig(map[string][]float64{"x": x})
		if err != nil {
			return nil, err
		}
		trS, err := sim.Run(ctx, cp.Circuit.Net, sim.Config{
			Rates: sim.Rates{Fast: ratio, Slow: 1}, TEnd: 45 * float64(n+2), Events: events, Obs: jobObs,
		})
		if err != nil {
			return nil, err
		}
		sink := cp.OutSinks["y"]
		cr, err := trS.Crossings(sink, 0.5, true)
		if err != nil {
			return nil, err
		}
		latS := "never"
		if len(cr) > 0 {
			latS = f1(cr[0])
		}
		costS := analysis.CostOf(cp.Circuit.Net)
		syncRow := []string{
			"sync", itoa(n), itoa(costS.Species), itoa(costS.Reactions), latS, f3(trS.Final(sink)),
		}
		return [][]string{asyncRow, syncRow}, nil
	}, cfg.batchOpts())
	if err != nil {
		return nil, err
	}
	for _, pair := range rowPairs {
		res.Rows = append(res.Rows, pair...)
	}
	res.Notes = append(res.Notes,
		"async: 3 phase transfers per element, no clock species; sync: 4-stage registers plus the shared clock — higher structural cost, but streaming operation",
		"both schemes' latency grows linearly with n; the async chain is one-shot (see package async)")
	return res, nil
}

func runE10(ctx context.Context, cfg Config) (*Result, error) {
	res := &Result{
		ID:     "E10",
		Title:  "Self-timed chain scaling",
		Header: []string{"n", "species", "reactions", "latency", "|Y-1|", "sim wall time"},
	}
	lengths := []int{2, 4, 8, 16}
	ratio := 500.0
	if cfg.Quick {
		lengths = []int{2, 4}
	}
	// One job per chain length. The wall-time column measures each job's own
	// simulation, so under a parallel pool the values shift with machine
	// load while every other column stays bit-identical.
	rows, _, err := batch.Map(ctx, len(lengths), func(ctx context.Context, p batch.Point) ([]string, error) {
		n := lengths[p.Index]
		net := crn.NewNetwork()
		ch, err := async.NewChain(net, "a", n)
		if err != nil {
			return nil, err
		}
		if err := net.SetInit(ch.Input, 1); err != nil {
			return nil, err
		}
		start := time.Now()
		tr, err := sim.Run(ctx, net, sim.Config{Rates: sim.Rates{Fast: ratio, Slow: 1}, TEnd: 60 * float64(n), Obs: cfg.pointObs(p)})
		if err != nil {
			return nil, err
		}
		wall := time.Since(start)
		lat, err := ch.Latency(tr, 1)
		if err != nil {
			return nil, err
		}
		dev := tr.Final(ch.Output) - 1
		if dev < 0 {
			dev = -dev
		}
		cost := analysis.CostOf(net)
		return []string{
			itoa(n), itoa(cost.Species), itoa(cost.Reactions), f1(lat), f4(dev), wall.Round(time.Millisecond).String(),
		}, nil
	}, cfg.batchOpts())
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	res.Notes = append(res.Notes,
		"reaction count grows as O(n^2): the abstract's positive-feedback set couples every transfer to every same-colour element",
		"transfer fidelity holds as the chain grows because the three shared absence indicators sequence all elements together")
	return res, nil
}
