package exper

import (
	"context"
	"fmt"
	"math"

	"repro/internal/async"
	"repro/internal/crn"
	"repro/internal/dsd"
	"repro/internal/sfg"
	"repro/internal/sim"
	"repro/internal/synth"
)

func init() {
	register(Experiment{
		ID:    "E9",
		Title: "DNA strand-displacement mapping: blowup and fidelity vs fuel excess",
		Tags:  []string{TagScalar},
		Run:   runE9,
	})
}

func runE9(ctx context.Context, cfg Config) (*Result, error) {
	res := &Result{
		ID:     "E9",
		Title:  "DSD compilation of the sequential constructs",
		Header: []string{"network", "Cmax", "species", "reactions", "fuels", "|Y - Y_ideal|"},
	}
	// Moderate rates keep the compiled network integrable: the DSD
	// unbinding reactions run at qmaxFactor·fast·Cmax.
	rates := sim.Rates{Fast: 20, Slow: 1}
	qf := 5.0
	cmaxes := []float64{5, 25}
	tEnd := 250.0
	if cfg.Quick {
		cmaxes = []float64{10}
		tEnd = 200
	}

	// Fidelity study: a one-element self-timed delay chain, ideal vs DSD.
	ideal := crn.NewNetwork()
	ch, err := async.NewChain(ideal, "d", 1)
	if err != nil {
		return nil, err
	}
	if err := ideal.SetInit(ch.Input, 1); err != nil {
		return nil, err
	}
	trIdeal, err := sim.Run(ctx, ideal, sim.Config{Rates: rates, TEnd: tEnd, Obs: cfg.Obs})
	if err != nil {
		return nil, err
	}
	yIdeal := trIdeal.Final(ch.Output)
	for _, cmax := range cmaxes {
		impl, st, err := dsd.Compile(ideal, dsd.Options{Rates: rates, Cmax: cmax, QmaxFactor: qf})
		if err != nil {
			return nil, err
		}
		trImpl, err := sim.Run(ctx, impl, sim.Config{Rates: rates, TEnd: tEnd, Obs: cfg.Obs})
		if err != nil {
			return nil, err
		}
		dev := math.Abs(trImpl.Final(ch.Output) - yIdeal)
		res.Rows = append(res.Rows, []string{
			"delay-chain(1)", f1(cmax), itoa(st.SpeciesAfter), itoa(st.ReactionsAfter), itoa(st.Fuels), f4(dev),
		})
	}

	// Blowup study (compile only): the clocked 2-tap filter.
	g, err := sfg.MovingAverage(2)
	if err != nil {
		return nil, err
	}
	cp, err := synth.Compile(g, "f")
	if err != nil {
		return nil, err
	}
	_, st, err := dsd.Compile(cp.Circuit.Net, dsd.Options{Rates: rates, Cmax: 100, QmaxFactor: qf})
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, []string{
		"movavg2 (compile only)", f1(100),
		fmt.Sprintf("%d (from %d)", st.SpeciesAfter, st.SpeciesBefore),
		fmt.Sprintf("%d (from %d)", st.ReactionsAfter, st.ReactionsBefore),
		itoa(st.Fuels), "-",
	})
	res.Notes = append(res.Notes,
		fmt.Sprintf("ideal final output Y = %s (input 1.0)", f4(yIdeal)),
		"shape criterion: DSD deviation shrinks as fuel excess Cmax grows; blowup is a constant factor (<= 4 reactions, <= 2 fuels per formal reaction)")
	return res, nil
}
