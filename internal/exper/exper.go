// Package exper defines the reproduction experiments E1–E14: one runnable
// definition per table/figure of the evaluation (see DESIGN.md for the
// mapping back to the paper's artifacts). The same definitions back the
// cmd/molbench tool, the root-level Go benchmarks and EXPERIMENTS.md.
//
// Grid-shaped experiments (tag "grid") fan their parameter points across the
// internal/batch worker pool; their tables are bit-identical for any worker
// count because rows are collected in job order and stochastic seeds are
// functions of the grid point, never of scheduling.
package exper

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"

	"repro/internal/batch"
	"repro/internal/obs"
)

// Config tunes experiment execution.
type Config struct {
	// Quick shrinks parameter grids and horizons so an experiment
	// finishes in a few seconds (used by the Go benchmarks and CI). The
	// full configuration reproduces the EXPERIMENTS.md numbers.
	Quick bool
	// Seed feeds the stochastic and jitter sweeps.
	Seed int64
	// Workers bounds the pool used by grid experiments; 0 selects
	// runtime.NumCPU(), 1 forces sequential execution. The rendered tables
	// are identical either way.
	Workers int
	// Lanes is the SoA block width for experiments that route their runs
	// through sim.RunMany; 0 selects the engine default. Tables are
	// identical for any width — lanes are bit-identical to scalar runs.
	Lanes int
	// Obs, when non-nil, receives instrumentation events from the
	// simulations an experiment runs sequentially (references, scalar
	// experiments, and grid jobs when Workers == 1). It is per-run-stateful,
	// so parallel grid jobs never share it — they use Metrics instead.
	Obs obs.Observer
	// Metrics, when non-nil, receives engine metrics and per-job simulator
	// instrumentation from parallel grid runs, merged from per-worker
	// registry shards after each batch drains (cmd/molbench -metrics wires
	// its registry here and a RegistryObserver into Obs).
	Metrics *obs.Registry
}

// workers resolves Config.Workers with its NumCPU default.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.NumCPU()
}

// batchOpts is the batch configuration shared by every grid experiment.
func (c Config) batchOpts() batch.Options {
	return batch.Options{Workers: c.workers(), Seed: c.Seed, Metrics: c.Metrics}
}

// pointObs picks the observer for one grid job: the engine's per-job shard
// observer when Metrics is set, else — only when the pool is sequential —
// the experiment-wide Obs. A per-run-stateful observer must never be shared
// by concurrent simulations, so parallel pools without Metrics run bare.
func (c Config) pointObs(p batch.Point) obs.Observer {
	if p.Obs != nil {
		return p.Obs
	}
	if c.workers() == 1 {
		return c.Obs
	}
	return nil
}

// Result is a rendered experiment outcome: a table plus optional text
// figures and notes.
type Result struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Figure string
	Notes  []string
}

// Format renders the result as aligned text.
func (r *Result) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s: %s ===\n", r.ID, r.Title)
	if len(r.Header) > 0 {
		widths := make([]int, len(r.Header))
		for i, h := range r.Header {
			widths[i] = len(h)
		}
		for _, row := range r.Rows {
			for i, cell := range row {
				if i < len(widths) && len(cell) > widths[i] {
					widths[i] = len(cell)
				}
			}
		}
		writeRow := func(cells []string) {
			for i, cell := range cells {
				if i > 0 {
					sb.WriteString("  ")
				}
				fmt.Fprintf(&sb, "%-*s", widths[i], cell)
			}
			sb.WriteByte('\n')
		}
		writeRow(r.Header)
		for i, w := range widths {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(strings.Repeat("-", w))
		}
		sb.WriteByte('\n')
		for _, row := range r.Rows {
			writeRow(row)
		}
	}
	if r.Figure != "" {
		sb.WriteString("\n")
		sb.WriteString(r.Figure)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Tags classifying experiments for molbench-style filtering.
const (
	// TagGrid marks experiments that sweep a parameter grid and execute it
	// on the batch worker pool.
	TagGrid = "grid"
	// TagScalar marks single-configuration experiments that run one (or a
	// couple of) fixed simulations sequentially.
	TagScalar = "scalar"
	// TagStoch marks experiments whose tables depend on stochastic (SSA)
	// simulation and therefore on Config.Seed.
	TagStoch = "stoch"
)

// Experiment is one registered reproduction experiment. Run receives the
// context that bounds every simulation the experiment performs.
type Experiment struct {
	ID    string
	Title string
	Tags  []string
	Run   func(ctx context.Context, cfg Config) (*Result, error)
}

// HasTag reports whether the experiment carries the given tag.
func (e Experiment) HasTag(tag string) bool {
	for _, t := range e.Tags {
		if t == tag {
			return true
		}
	}
	return false
}

// Descriptor is the inspectable identity of a registered experiment,
// decoupled from its runnable definition.
type Descriptor struct {
	ID    string
	Title string
	Tags  []string
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("exper: duplicate experiment " + e.ID)
	}
	if len(e.Tags) == 0 {
		panic("exper: experiment " + e.ID + " registered without tags")
	}
	registry[e.ID] = e
}

// Registry returns descriptors for every registered experiment, ordered like
// All. It is what CLIs should present for -list style output.
func Registry() []Descriptor {
	all := All()
	out := make([]Descriptor, len(all))
	for i, e := range all {
		out[i] = Descriptor{ID: e.ID, Title: e.Title, Tags: append([]string(nil), e.Tags...)}
	}
	return out
}

// All returns the experiments sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		// Numeric-aware: E2 before E10.
		a, b := out[i].ID, out[j].ID
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return out
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string  { return fmt.Sprintf("%.4f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func itoa(v int) string    { return fmt.Sprintf("%d", v) }
func pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }
