// Package exper defines the reproduction experiments E1–E10: one runnable
// definition per table/figure of the evaluation (see DESIGN.md for the
// mapping back to the paper's artifacts). The same definitions back the
// cmd/molbench tool, the root-level Go benchmarks and EXPERIMENTS.md.
package exper

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
)

// Config tunes experiment execution.
type Config struct {
	// Quick shrinks parameter grids and horizons so an experiment
	// finishes in a few seconds (used by the Go benchmarks and CI). The
	// full configuration reproduces the EXPERIMENTS.md numbers.
	Quick bool
	// Seed feeds the stochastic and jitter sweeps.
	Seed int64
	// Obs, when non-nil, receives instrumentation events from every
	// simulation the experiment runs (cmd/molbench -metrics wires a
	// RegistryObserver here). Experiments run their simulations
	// sequentially, so a single per-run-stateful observer is safe.
	Obs obs.Observer
}

// Result is a rendered experiment outcome: a table plus optional text
// figures and notes.
type Result struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Figure string
	Notes  []string
}

// Format renders the result as aligned text.
func (r *Result) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s: %s ===\n", r.ID, r.Title)
	if len(r.Header) > 0 {
		widths := make([]int, len(r.Header))
		for i, h := range r.Header {
			widths[i] = len(h)
		}
		for _, row := range r.Rows {
			for i, cell := range row {
				if i < len(widths) && len(cell) > widths[i] {
					widths[i] = len(cell)
				}
			}
		}
		writeRow := func(cells []string) {
			for i, cell := range cells {
				if i > 0 {
					sb.WriteString("  ")
				}
				fmt.Fprintf(&sb, "%-*s", widths[i], cell)
			}
			sb.WriteByte('\n')
		}
		writeRow(r.Header)
		for i, w := range widths {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(strings.Repeat("-", w))
		}
		sb.WriteByte('\n')
		for _, row := range r.Rows {
			writeRow(row)
		}
	}
	if r.Figure != "" {
		sb.WriteString("\n")
		sb.WriteString(r.Figure)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Experiment is one registered reproduction experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) (*Result, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("exper: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// All returns the experiments sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		// Numeric-aware: E2 before E10.
		a, b := out[i].ID, out[j].ID
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return out
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string  { return fmt.Sprintf("%.4f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func itoa(v int) string    { return fmt.Sprintf("%d", v) }
func pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }
