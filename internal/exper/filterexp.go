package exper

import (
	"context"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/batch"
	"repro/internal/sfg"
	"repro/internal/sim"
	"repro/internal/synth"
)

func init() {
	register(Experiment{
		ID:    "E3",
		Title: "Two-tap moving-average filter, molecular vs golden (paper's DSP figure)",
		Tags:  []string{TagScalar},
		Run: func(ctx context.Context, cfg Config) (*Result, error) {
			return runFilterExp(ctx, cfg, "E3", 2)
		},
	})
	register(Experiment{
		ID:    "E4",
		Title: "Four-tap moving-average filter, molecular vs golden",
		Tags:  []string{TagScalar},
		Run: func(ctx context.Context, cfg Config) (*Result, error) {
			return runFilterExp(ctx, cfg, "E4", 4)
		},
	})
	register(Experiment{
		ID:    "E6",
		Title: "Rate-independence: filter error vs rate ratio, per-reaction jitter, amplitude",
		Tags:  []string{TagGrid},
		Run:   runE6,
	})
}

// filterStream is the shared input stream for the filter experiments: a
// step, a gap and an impulse, exercising transients in both directions.
func filterStream(n int) []float64 {
	base := []float64{1, 1, 0, 2, 1, 0.5, 1.5, 1}
	out := make([]float64, n)
	for i := range out {
		out[i] = base[i%len(base)]
	}
	return out
}

func runFilterExp(ctx context.Context, cfg Config, id string, taps int) (*Result, error) {
	res := &Result{
		ID:     id,
		Title:  fmt.Sprintf("%d-tap moving-average filter", taps),
		Header: []string{"cycle", "x[k]", "golden y[k]", "molecular y[k]", "abs err"},
	}
	nCycles := 8
	tEnd := 420.0
	ratio := 1000.0
	if cfg.Quick {
		nCycles = 4
		tEnd = 220
		ratio = 500
	}
	g, err := sfg.MovingAverage(taps)
	if err != nil {
		return nil, err
	}
	x := filterStream(nCycles)
	golden, err := g.Run(map[string][]float64{"x": x})
	if err != nil {
		return nil, err
	}
	cp, err := synth.Compile(g, "f")
	if err != nil {
		return nil, err
	}
	cp.Obs = cfg.Obs
	tr, outs, err := cp.RunContext(ctx, sim.Rates{Fast: ratio, Slow: 1}, tEnd, map[string][]float64{"x": x}, nCycles)
	if err != nil {
		return nil, err
	}
	se, err := analysis.CompareStreams(outs["y"], golden["y"])
	if err != nil {
		return nil, err
	}
	for k := 0; k < nCycles; k++ {
		diff := outs["y"][k] - golden["y"][k]
		if diff < 0 {
			diff = -diff
		}
		res.Rows = append(res.Rows, []string{
			itoa(k), f3(x[k]), f4(golden["y"][k]), f4(outs["y"][k]), f4(diff),
		})
	}
	fig, err := tr.ASCIIPlot(100, 12, cp.OutSinks["y"], cp.Circuit.Clock.R)
	if err != nil {
		return nil, err
	}
	res.Figure = fig
	cost := analysis.CostOf(cp.Circuit.Net)
	res.Notes = append(res.Notes,
		fmt.Sprintf("mean error %s, max error %s over %d cycles; circuit: %d species, %d reactions",
			f4(se.Mean), f4(se.Max), se.N, cost.Species, cost.Reactions))
	return res, nil
}

func runE6(ctx context.Context, cfg Config) (*Result, error) {
	res := &Result{
		ID:    "E6",
		Title: "Rate-independence of the 2-tap filter",
		Header: []string{
			"kfast/kslow", "jitter spread", "amplitude", "mean err", "max err",
		},
	}
	type point struct {
		ratio  float64
		spread float64
		amp    float64
	}
	points := []point{
		{10, 1, 1}, {30, 1, 1}, {100, 1, 1}, {300, 1, 1}, {1000, 1, 1},
		{100, 2, 1}, {1000, 2, 1}, {1000, 3, 1},
		{1000, 1, 0.25}, {1000, 1, 2},
	}
	nCycles := 4
	tEnd := 260.0
	if cfg.Quick {
		points = []point{{30, 1, 1}, {300, 1, 1}, {300, 2, 1}}
		tEnd = 200
	}
	// One job per sweep point. Each job compiles its own circuit: Compile is
	// cheap, and the compiled network is mutated by Jitter and the injection
	// events, so sharing it across workers is off the table. Jitter keeps
	// the historical cfg.Seed+ratio seed, so the table matches the
	// pre-parallel sequential sweep exactly.
	rows, _, err := batch.Map(ctx, len(points), func(ctx context.Context, bp batch.Point) ([]string, error) {
		p := points[bp.Index]
		// Low rate ratios stretch every phase (indicator thresholds are
		// relative to kslow/kfast), so give slow configurations more time.
		pointEnd := tEnd
		if p.ratio < 100 {
			pointEnd = tEnd * 2.5
		}
		g, err := sfg.MovingAverage(2)
		if err != nil {
			return nil, err
		}
		x := filterStream(nCycles)
		for i := range x {
			x[i] *= p.amp
		}
		golden, err := g.Run(map[string][]float64{"x": x})
		if err != nil {
			return nil, err
		}
		cp, err := synth.Compile(g, "f")
		if err != nil {
			return nil, err
		}
		events, err := cp.StreamConfig(map[string][]float64{"x": x})
		if err != nil {
			return nil, err
		}
		net, err := analysis.Jitter(cp.Circuit.Net, p.spread, cfg.Seed+int64(p.ratio))
		if err != nil {
			return nil, err
		}
		tr, err := sim.Run(ctx, net, sim.Config{
			Rates: sim.Rates{Fast: p.ratio, Slow: 1}, TEnd: pointEnd, Events: events, Obs: cfg.pointObs(bp),
		})
		if err != nil {
			return nil, err
		}
		vals, err := cp.Circuit.SinkPerCycle(tr, cp.OutSinks["y"])
		if err != nil {
			return nil, err
		}
		if len(vals) < nCycles {
			// Below a working rate ratio the clock phases smear into each
			// other and the oscillation collapses — itself a data point of
			// the robustness sweep.
			return []string{
				f1(p.ratio), f1(p.spread), f3(p.amp),
				fmt.Sprintf("clock collapsed after %d cycles", len(vals)), "-",
			}, nil
		}
		se, err := analysis.CompareStreams(vals[:nCycles], golden["y"])
		if err != nil {
			return nil, err
		}
		return []string{
			f1(p.ratio), f1(p.spread), f3(p.amp), f4(se.Mean), f4(se.Max),
		}, nil
	}, cfg.batchOpts())
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	res.Notes = append(res.Notes,
		"headline claim: error falls with kfast/kslow and is essentially unaffected by per-reaction jitter within a category; below ~30 the clock itself stops functioning",
		"the amplitude rows show the clocked scheme is insensitive to signal magnitude — the clock heartbeat keeps the absence-indicator gates sharp even for small signals, unlike the clockless chains (package async)")
	return res, nil
}
