package exper

import (
	"context"
	"fmt"

	"repro/internal/batch"
	"repro/internal/crn"
	"repro/internal/logic"
	"repro/internal/phases"
	"repro/internal/sim"
	"repro/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "E11",
		Title: "Ablations: what the positive-feedback sharpeners and signal restoration buy",
		Tags:  []string{TagGrid},
		Run:   runE11,
	})
}

func runE11(ctx context.Context, cfg Config) (*Result, error) {
	res := &Result{
		ID:     "E11",
		Title:  "Design-choice ablations",
		Header: []string{"variant", "metric", "value"},
	}
	ratio := 300.0
	tEnd := 420.0
	if cfg.Quick {
		tEnd = 260
	}

	// The four ablation variants are independent simulations, so they fan
	// out as one job each: jobs 0-1 are the clock-feedback study, jobs 2-3
	// the signal-restoration study. Each job returns its two table rows.
	variants := []struct {
		feedback bool // jobs 0-1: clock with/without feedback dimers
		restore  bool // jobs 2-3: FSM with/without dual-rail restoration
	}{
		{feedback: true}, {feedback: false},
		{restore: true}, {restore: false},
	}
	rowPairs, _, err := batch.Map(ctx, len(variants), func(ctx context.Context, p batch.Point) ([][]string, error) {
		if p.Index < 2 {
			// Ablation 1: the abstract's positive-feedback dimers. Build the
			// single-member clock loop with and without them and compare
			// phase crispness (peak concentration reached by each phase).
			feedback := variants[p.Index].feedback
			n := crn.NewNetwork()
			s := phases.NewScheme(n, "ph")
			if !feedback {
				s.DisableFeedback()
			}
			for c, sp := range map[phases.Color]string{phases.Red: "R", phases.Green: "G", phases.Blue: "B"} {
				if err := s.AddMember(c, sp); err != nil {
					return nil, err
				}
			}
			for _, tr := range []struct{ src, dst string }{{"R", "G"}, {"G", "B"}, {"B", "R"}} {
				if err := s.AddTransfer(tr.src+tr.dst, tr.src, map[string]int{tr.dst: 1}); err != nil {
					return nil, err
				}
			}
			if err := s.Build(); err != nil {
				return nil, err
			}
			if err := n.SetInit("R", 1); err != nil {
				return nil, err
			}
			tr, err := sim.Run(ctx, n, sim.Config{Rates: sim.Rates{Fast: 1000, Slow: 1}, TEnd: 150, Obs: cfg.pointObs(p)})
			if err != nil {
				return nil, err
			}
			peak := trace.Min([]float64{
				trace.Max(tr.MustSeries("R")),
				trace.Max(tr.MustSeries("G")),
				trace.Max(tr.MustSeries("B")),
			})
			name := "with feedback"
			if !feedback {
				name = "no feedback"
			}
			period := "no oscillation"
			if p, _, err := tr.Period("R", 0.5); err == nil {
				period = f3(p)
			}
			return [][]string{
				{name, "worst phase peak", f3(peak)},
				{name, "period", period},
			}, nil
		}

		// Ablation 2: dual-rail signal restoration in the FSM compiler. Run
		// the 3-bit counter both ways and compare the worst rail margin and
		// decode correctness over the horizon.
		restore := variants[p.Index].restore
		f, err := logic.Counter(3)
		if err != nil {
			return nil, err
		}
		m, err := logic.CompileOpt(f, "cnt", logic.Options{NoRestore: !restore})
		if err != nil {
			return nil, err
		}
		m.Obs = cfg.pointObs(p)
		tr, err := m.RunContext(ctx, sim.Rates{Fast: ratio, Slow: 1}, tEnd)
		if err != nil {
			return nil, err
		}
		margin, err := m.RailMargin(tr)
		if err != nil {
			return nil, err
		}
		got, err := m.StateUints(tr)
		if err != nil {
			return nil, err
		}
		wrong := 0
		st := f.InitState()
		for _, g := range got {
			if g != f.StateUint(st) {
				wrong++
			}
			st = f.Step(st)
		}
		name := "with restoration"
		if !restore {
			name = "no restoration"
		}
		return [][]string{
			{name, "worst rail margin", f3(margin)},
			{name, fmt.Sprintf("wrong cycles (of %d)", len(got)), itoa(wrong)},
		}, nil
	}, cfg.batchOpts())
	if err != nil {
		return nil, err
	}
	for _, pair := range rowPairs {
		res.Rows = append(res.Rows, pair...)
	}
	res.Notes = append(res.Notes,
		"feedback dimers sharpen hand-offs (higher plateau peaks); the scheme still cycles without them",
		"without restoration, dual-rail crosstalk accumulates every cycle and erodes the decoding margin")
	return res, nil
}
