package exper

import (
	"context"
	"fmt"

	"repro/internal/async"
	"repro/internal/clock"
	"repro/internal/crn"
	"repro/internal/phases"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "E1",
		Title: "Molecular clock: sustained tri-phase oscillation (paper's clock figure)",
		Tags:  []string{TagGrid},
		Run:   runE1,
	})
	register(Experiment{
		ID:    "E2",
		Title: "Two-delay-element transfer (companion abstract Fig. 1(c))",
		Tags:  []string{TagScalar},
		Run:   runE2,
	})
}

func runE1(ctx context.Context, cfg Config) (*Result, error) {
	res := &Result{
		ID:     "E1",
		Title:  "Molecular clock: sustained tri-phase oscillation",
		Header: []string{"kfast/kslow", "period", "jitter", "peakR", "peakG", "peakB", "overlapRG", "cycles"},
	}
	ratios := []float64{100, 1000}
	tEnd := 300.0
	if cfg.Quick {
		ratios = []float64{300}
		tEnd = 150
	}
	// The ratio sweep is one RunMany batch over a single clock network: the
	// dependency structure compiles once, each ratio binds its own rate
	// vector, and the pool fans the points out without changing the table.
	n := crn.NewNetwork()
	s := phases.NewScheme(n, "ph")
	ck, err := clock.Add(s, "clk", 1)
	if err != nil {
		return nil, err
	}
	if err := s.Build(); err != nil {
		return nil, err
	}
	ens, err := sim.RunMany(ctx, n, sim.BatchConfig{
		Base: sim.Config{TEnd: tEnd, Seed: cfg.Seed},
		Runs: len(ratios),
		Configure: func(i int, c *sim.Config) {
			c.Rates = sim.Rates{Fast: ratios[i], Slow: 1}
		},
		Lanes:   cfg.Lanes,
		Workers: cfg.workers(),
		Metrics: cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}
	if err := ens.Err(); err != nil {
		return nil, err
	}
	for i, ratio := range ratios {
		tr := ens.Traces[i]
		st, err := clock.Measure(tr, ck)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			f1(ratio), f3(st.Period), f4(st.Regularity),
			f3(st.PeakR), f3(st.PeakG), f3(st.PeakB), f3(st.OverlapRG), itoa(st.Cycles),
		})
		if i == len(ratios)-1 {
			fig, err := tr.ASCIIPlot(100, 12, ck.R, ck.G, ck.B)
			if err != nil {
				return nil, err
			}
			res.Figure = fig
		}
	}
	res.Notes = append(res.Notes,
		"paper reports sustained oscillation with mutually exclusive phases; shape criterion: >=10 regular cycles, peaks near the heartbeat, low pairwise overlap")
	return res, nil
}

func runE2(ctx context.Context, cfg Config) (*Result, error) {
	res := &Result{
		ID:     "E2",
		Title:  "Two-delay-element self-timed transfer",
		Header: []string{"species", "half-rise time", "peak"},
	}
	ratio := 1000.0
	tEnd := 150.0
	if cfg.Quick {
		ratio = 500
		tEnd = 120
	}
	net := crn.NewNetwork()
	ch, err := async.NewChain(net, "d", 2)
	if err != nil {
		return nil, err
	}
	if err := net.SetInit(ch.Input, 1); err != nil {
		return nil, err
	}
	tr, err := sim.Run(ctx, net, sim.Config{Rates: sim.Rates{Fast: ratio, Slow: 1}, TEnd: tEnd, Obs: cfg.Obs})
	if err != nil {
		return nil, err
	}
	stages := []string{ch.R(1), ch.G(1), ch.B(1), ch.R(2), ch.G(2), ch.B(2), ch.Output}
	for _, sp := range stages {
		cr, err := tr.Crossings(sp, 0.5, true)
		if err != nil {
			return nil, err
		}
		peak := 0.0
		for _, v := range tr.MustSeries(sp) {
			if v > peak {
				peak = v
			}
		}
		when := "never"
		if len(cr) > 0 {
			when = f3(cr[0])
		}
		res.Rows = append(res.Rows, []string{sp, when, f3(peak)})
	}
	fig, err := tr.ASCIIPlot(100, 12, ch.Input, ch.R(1), ch.B(1), ch.G(2), ch.Output)
	if err != nil {
		return nil, err
	}
	res.Figure = fig
	res.Notes = append(res.Notes,
		fmt.Sprintf("final Y = %s (input was 1.0); the abstract's figure shows the same crisp staircase hand-off", f4(tr.Final(ch.Output))))
	return res, nil
}
