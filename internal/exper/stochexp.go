package exper

import (
	"context"
	"fmt"
	"math"

	"repro/internal/async"
	"repro/internal/crn"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "E8",
		Title: "Stochastic validity: SSA vs ODE for the delay chain across molecule counts",
		Tags:  []string{TagGrid, TagStoch},
		Run:   runE8,
	})
}

func runE8(ctx context.Context, cfg Config) (*Result, error) {
	res := &Result{
		ID:     "E8",
		Title:  "SSA vs ODE across system sizes",
		Header: []string{"molecules/unit", "runs", "mean |Y-Yode|", "worst |Y-Yode|", "mean Y"},
	}
	units := []float64{20, 100, 500}
	runs := 3
	ratio := 500.0
	tEnd := 150.0
	if cfg.Quick {
		units = []float64{50}
		runs = 2
		tEnd = 120
	}
	// Deterministic reference: the ODE value is the large-count limit the
	// SSA trajectories must converge to (it carries the scheme's own small
	// residue, which is not SSA noise).
	refNet := crn.NewNetwork()
	refCh, err := async.NewChain(refNet, "d", 2)
	if err != nil {
		return nil, err
	}
	if err := refNet.SetInit(refCh.Input, 1); err != nil {
		return nil, err
	}
	refTr, err := sim.Run(ctx, refNet, sim.Config{Rates: sim.Rates{Fast: ratio, Slow: 1}, TEnd: tEnd, Obs: cfg.Obs})
	if err != nil {
		return nil, err
	}
	yODE := refTr.Final(refCh.Output)

	// The SSA ensemble is one RunMany batch over the whole (unit, run) grid:
	// explicit seeds keep the historical per-point RNG streams (so the table
	// matches the old hand-rolled sweep bit for bit), Configure sets each
	// point's molecule unit, and each unit's replicates advance through
	// shared SoA lane blocks in finals-only mode.
	net := crn.NewNetwork()
	ch, err := async.NewChain(net, "d", 2)
	if err != nil {
		return nil, err
	}
	if err := net.SetInit(ch.Input, 1); err != nil {
		return nil, err
	}
	total := len(units) * runs
	seeds := make([]int64, total)
	for i := range seeds {
		seeds[i] = cfg.Seed + int64(i%runs) + int64(units[i/runs]*1000)
	}
	ens, err := sim.RunMany(ctx, net, sim.BatchConfig{
		Base: sim.Config{
			Method: sim.SSA, Rates: sim.Rates{Fast: ratio, Slow: 1}, TEnd: tEnd,
		},
		Runs:  total,
		Seeds: seeds,
		Configure: func(i int, c *sim.Config) {
			c.Unit = units[i/runs]
		},
		Lanes:      cfg.Lanes,
		Workers:    cfg.workers(),
		FinalsOnly: true,
		Metrics:    cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}
	if err := ens.Err(); err != nil {
		return nil, err
	}
	yi, ok := ens.Index(ch.Output)
	if !ok {
		return nil, fmt.Errorf("exper: E8 output species %q missing", ch.Output)
	}

	for ui, unit := range units {
		meanErr, worst, meanY := 0.0, 0.0, 0.0
		for r := 0; r < runs; r++ {
			y := ens.Finals[ui*runs+r][yi]
			e := math.Abs(y - yODE)
			meanErr += e
			meanY += y
			if e > worst {
				worst = e
			}
		}
		meanErr /= float64(runs)
		meanY /= float64(runs)
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%.0f", unit), itoa(runs), f4(meanErr), f4(worst), f4(meanY),
		})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("deterministic reference Y_ode = %s (input 1.0)", f4(yODE)),
		"shape criterion: the SSA deviation from the ODE shrinks as molecule counts per concentration unit grow")
	return res, nil
}
