package verify

import (
	"strings"
	"testing"

	"repro/internal/crn"
	"repro/internal/dsd"
	"repro/internal/sim"
)

func decayNet(t *testing.T, rate float64) *crn.Network {
	t.Helper()
	n := crn.NewNetwork()
	n.MustAddReaction("decay", map[string]int{"A": 1}, map[string]int{"B": 1}, crn.Slow, rate)
	if err := n.SetInit("A", 1); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestEquivalentIdenticalNetworks(t *testing.T) {
	a, b := decayNet(t, 1), decayNet(t, 1)
	rep, err := Equivalent(a, b, Options{TEnd: 3, Probes: []string{"A", "B"}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Equivalent {
		t.Fatalf("identical networks judged different: %s", rep)
	}
	if rep.MaxDeviation > 1e-4 {
		t.Fatalf("deviation %g for identical networks", rep.MaxDeviation)
	}
}

func TestDetectsDifferentRates(t *testing.T) {
	a, b := decayNet(t, 1), decayNet(t, 2)
	rep, err := Equivalent(a, b, Options{TEnd: 3, Probes: []string{"A"}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Equivalent {
		t.Fatalf("2x rate difference not detected: %s", rep)
	}
	if rep.WorstSpecies != "A" {
		t.Fatalf("worst species %q", rep.WorstSpecies)
	}
	if !strings.Contains(rep.String(), "NOT equivalent") {
		t.Fatalf("String = %q", rep.String())
	}
}

func TestDetectsMissingReaction(t *testing.T) {
	a := decayNet(t, 1)
	b := a.Clone()
	b.R("extra", map[string]int{"B": 1}, nil, crn.Slow)
	rep, err := Equivalent(a, b, Options{TEnd: 3, Probes: []string{"B"}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Equivalent {
		t.Fatalf("extra degradation not detected: %s", rep)
	}
}

func TestPerturbedTrialsCatchInputDependence(t *testing.T) {
	// Two networks that agree at the nominal initial condition but not
	// elsewhere: A -> B at rate 1 vs 2A -> 2B at rate 1 coincide at
	// [A]=1 only instantaneously; a trial at perturbed [A] separates them
	// even more strongly. Verify the check rejects.
	a := decayNet(t, 1)
	b := crn.NewNetwork()
	b.R("pair", map[string]int{"A": 2}, map[string]int{"B": 2}, crn.Slow)
	if err := b.SetInit("A", 1); err != nil {
		t.Fatal(err)
	}
	rep, err := Equivalent(a, b, Options{TEnd: 3, Probes: []string{"A"}, Trials: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Equivalent {
		t.Fatalf("kinetic order difference not detected: %s", rep)
	}
}

func TestOptionsValidation(t *testing.T) {
	a, b := decayNet(t, 1), decayNet(t, 1)
	if _, err := Equivalent(a, b, Options{Probes: []string{"A"}}); err == nil {
		t.Fatal("TEnd=0 accepted")
	}
	if _, err := Equivalent(a, b, Options{TEnd: 1}); err == nil {
		t.Fatal("no probes accepted")
	}
	if _, err := Equivalent(a, b, Options{TEnd: 1, Probes: []string{"ghost"}}); err == nil {
		t.Fatal("unknown probe accepted")
	}
}

func TestDSDCompilationEquivalence(t *testing.T) {
	// The headline use: a DSD-compiled network must be behaviourally
	// equivalent to its ideal source over random initial conditions.
	rates := sim.Rates{Fast: 50, Slow: 1}
	ideal := crn.NewNetwork()
	ideal.R("r", map[string]int{"A": 1, "B": 1}, map[string]int{"C": 1}, crn.Slow)
	ideal.R("d", map[string]int{"C": 1}, nil, crn.Slow)
	if err := ideal.SetInit("A", 1); err != nil {
		t.Fatal(err)
	}
	if err := ideal.SetInit("B", 0.8); err != nil {
		t.Fatal(err)
	}
	impl, _, err := dsd.Compile(ideal, dsd.Options{Rates: rates, Cmax: 200})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Equivalent(ideal, impl, Options{
		Rates: rates, TEnd: 4, Probes: []string{"A", "B", "C"}, Trials: 3, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Equivalent {
		t.Fatalf("DSD compilation not equivalent at Cmax=200: %s", rep)
	}

	// And at starving fuel levels the check must notice the divergence.
	implLow, _, err := dsd.Compile(ideal, dsd.Options{Rates: rates, Cmax: 2})
	if err != nil {
		t.Fatal(err)
	}
	repLow, err := Equivalent(ideal, implLow, Options{
		Rates: rates, TEnd: 4, Probes: []string{"A", "B", "C"}, Trials: 3, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if repLow.Equivalent {
		t.Fatalf("starved DSD compilation passed: %s", repLow)
	}
}

func TestFinalOnlyIgnoresTimingShifts(t *testing.T) {
	// Two decays at different rates reach the same final state over a long
	// horizon: FinalOnly accepts, the trajectory comparison rejects.
	a, b := decayNet(t, 1), decayNet(t, 2)
	opts := Options{TEnd: 25, Probes: []string{"A", "B"}, Trials: 2, Seed: 3}
	traj, err := Equivalent(a, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if traj.Equivalent {
		t.Fatalf("trajectory comparison missed the rate difference: %s", traj)
	}
	opts.FinalOnly = true
	fin, err := Equivalent(a, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !fin.Equivalent {
		t.Fatalf("final-state comparison rejected equal endpoints: %s", fin)
	}
}
