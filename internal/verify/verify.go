// Package verify checks behavioural equivalence of two chemical reaction
// networks by trajectory comparison: the observable species must follow the
// same concentration trajectories (within tolerance) from a family of
// randomly perturbed initial conditions. Its purpose here is compilation
// checking — confirming that a DNA strand-displacement implementation
// (package dsd) behaves like the ideal network it was compiled from — the
// role Shin and Winfree's CRN equivalence work plays for their DNA compiler
// (presented alongside the target paper at DAC/IWBDA 2011).
//
// Trajectory comparison over sampled initial conditions is deliberately the
// weakest useful notion of equivalence: it is sound for rejecting (any
// witnessed divergence is real) and probabilistic for accepting, which
// matches its role as a compilation smoke test rather than a proof.
package verify

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/crn"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Options configures an equivalence check.
type Options struct {
	Rates sim.Rates // rate assignment shared by both networks; zero -> defaults
	TEnd  float64   // horizon per trial, required
	// Probes are the observable species compared; they must exist in both
	// networks. Required.
	Probes []string
	// Tol is the maximum allowed pointwise deviation of any probe.
	// 0 selects 0.05 (5 % of the unit signal scale).
	Tol float64
	// Trials is the number of perturbed-initial-condition runs (the first
	// trial always uses the unperturbed initial conditions). 0 selects 3.
	Trials int
	// Perturb scales the random multiplicative jitter applied to the
	// initial concentration of every probe species (same jitter in both
	// networks). 0 selects 0.5, i.e. factors in [0.5, 1.5].
	Perturb float64
	Seed    int64
	// Samples is the number of comparison points per trial; 0 selects 200.
	Samples int
	// FinalOnly compares only the states at TEnd instead of whole
	// trajectories. Phase-gated sequential networks (the paper's clocked
	// and self-timed circuits) amplify small kinetic deviations into
	// *timing* shifts — trajectories pointwise-diverge near every gate
	// opening even when every computed value is right — so for those the
	// final state (or per-cycle decode, as in experiment E9) is the
	// meaningful observable, while combinational networks support the
	// stricter whole-trajectory comparison.
	FinalOnly bool
}

// Report is the outcome of an equivalence check.
type Report struct {
	Equivalent   bool
	Trials       int
	MaxDeviation float64
	WorstSpecies string
	WorstTime    float64
	WorstTrial   int
}

// String renders a one-line summary.
func (r Report) String() string {
	if r.Equivalent {
		return fmt.Sprintf("equivalent over %d trials (max deviation %.4f on %s at t=%.2f)",
			r.Trials, r.MaxDeviation, r.WorstSpecies, r.WorstTime)
	}
	return fmt.Sprintf("NOT equivalent: trial %d diverges by %.4f on %s at t=%.2f",
		r.WorstTrial, r.MaxDeviation, r.WorstSpecies, r.WorstTime)
}

// Equivalent compares the two networks' probe trajectories across perturbed
// initial conditions. Neither input network is modified.
func Equivalent(a, b *crn.Network, opts Options) (Report, error) {
	var rep Report
	if opts.TEnd <= 0 {
		return rep, fmt.Errorf("verify: TEnd must be positive, got %g", opts.TEnd)
	}
	if len(opts.Probes) == 0 {
		return rep, fmt.Errorf("verify: at least one probe species is required")
	}
	if opts.Rates == (sim.Rates{}) {
		opts.Rates = sim.DefaultRates()
	}
	if opts.Tol <= 0 {
		opts.Tol = 0.05
	}
	if opts.Trials <= 0 {
		opts.Trials = 3
	}
	if opts.Perturb <= 0 {
		opts.Perturb = 0.5
	}
	if opts.Samples <= 0 {
		opts.Samples = 200
	}
	for _, p := range opts.Probes {
		if _, ok := a.SpeciesIndex(p); !ok {
			return rep, fmt.Errorf("verify: probe %q missing from first network", p)
		}
		if _, ok := b.SpeciesIndex(p); !ok {
			return rep, fmt.Errorf("verify: probe %q missing from second network", p)
		}
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	rep.Trials = opts.Trials
	rep.Equivalent = true
	for trial := 0; trial < opts.Trials; trial++ {
		ca, cb := a.Clone(), b.Clone()
		if trial > 0 {
			for _, p := range opts.Probes {
				f := 1 + opts.Perturb*(2*rng.Float64()-1)
				if err := ca.SetInit(p, a.InitOf(p)*f); err != nil {
					return rep, err
				}
				if err := cb.SetInit(p, b.InitOf(p)*f); err != nil {
					return rep, err
				}
			}
		}
		ta, err := sim.Run(context.Background(), ca, sim.Config{Rates: opts.Rates, TEnd: opts.TEnd})
		if err != nil {
			return rep, fmt.Errorf("verify: first network: %w", err)
		}
		tb, err := sim.Run(context.Background(), cb, sim.Config{Rates: opts.Rates, TEnd: opts.TEnd})
		if err != nil {
			return rep, fmt.Errorf("verify: second network: %w", err)
		}
		for _, p := range opts.Probes {
			var sa, sb []float64
			if opts.FinalOnly {
				sa, sb = []float64{ta.Final(p)}, []float64{tb.Final(p)}
			} else {
				var err error
				sa, err = ta.Resample(p, 0, opts.TEnd, opts.Samples)
				if err != nil {
					return rep, err
				}
				sb, err = tb.Resample(p, 0, opts.TEnd, opts.Samples)
				if err != nil {
					return rep, err
				}
			}
			dev, err := trace.MaxAbsDiff(sa, sb)
			if err != nil {
				return rep, err
			}
			if dev > rep.MaxDeviation {
				rep.MaxDeviation = dev
				rep.WorstSpecies = p
				rep.WorstTrial = trial
				rep.WorstTime = opts.TEnd
				// Locate the worst time for the report.
				for k := range sa {
					d := sa[k] - sb[k]
					if d < 0 {
						d = -d
					}
					if d == dev && len(sa) > 1 {
						rep.WorstTime = float64(k) / float64(len(sa)-1) * opts.TEnd
						break
					}
				}
			}
		}
	}
	rep.Equivalent = rep.MaxDeviation <= opts.Tol
	return rep, nil
}
