package crn

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
)

// ConservationLaw is a weighted sum of species that is invariant under every
// reaction of a network: Σ w_i·[S_i] = const along every trajectory. Weights
// are integers in lowest terms with the first nonzero weight positive.
type ConservationLaw struct {
	Weights map[string]int
}

// String renders the law as e.g. "R + G + B + 2 I_R = const".
func (l ConservationLaw) String() string {
	names := make([]string, 0, len(l.Weights))
	for n := range l.Weights {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	first := true
	for _, n := range names {
		w := l.Weights[n]
		if w == 0 {
			continue
		}
		if !first {
			if w > 0 {
				sb.WriteString(" + ")
			} else {
				sb.WriteString(" - ")
				w = -w
			}
		} else {
			if w < 0 {
				sb.WriteString("-")
				w = -w
			}
			first = false
		}
		if w != 1 {
			fmt.Fprintf(&sb, "%d ", w)
		}
		sb.WriteString(n)
	}
	sb.WriteString(" = const")
	return sb.String()
}

// ConservationLaws computes a basis of the network's conservation laws by
// exact rational Gaussian elimination on the stoichiometry matrix: the
// returned laws span every linear invariant of the mass-action dynamics.
// The tri-phase constructs of this repository conserve signal mass across
// colour stages (with feedback dimers counting double), and tests use this
// analysis to verify those invariants hold by construction rather than by
// hand-picked weights.
func (n *Network) ConservationLaws() []ConservationLaw {
	nsp := n.NumSpecies()
	nrx := n.NumReactions()
	if nsp == 0 {
		return nil
	}
	// Build the system Mᵀ·w = 0 where M[i][j] is the net change of species
	// i under reaction j: rows are reactions (equations), columns species
	// (unknown weights).
	rows := make([][]*big.Rat, nrx)
	for j := 0; j < nrx; j++ {
		rows[j] = make([]*big.Rat, nsp)
		for i := range rows[j] {
			rows[j][i] = new(big.Rat)
		}
		sv := n.StoichVector(j)
		for i, d := range sv {
			rows[j][i].SetInt64(int64(d))
		}
	}

	// Forward elimination with column pivoting.
	pivotCol := make([]int, 0, nsp) // pivot column per pivot row
	r := 0
	for c := 0; c < nsp && r < nrx; c++ {
		// Find a pivot in column c at or below row r.
		p := -1
		for k := r; k < nrx; k++ {
			if rows[k][c].Sign() != 0 {
				p = k
				break
			}
		}
		if p < 0 {
			continue
		}
		rows[r], rows[p] = rows[p], rows[r]
		inv := new(big.Rat).Inv(rows[r][c])
		for i := c; i < nsp; i++ {
			rows[r][i].Mul(rows[r][i], inv)
		}
		for k := 0; k < nrx; k++ {
			if k == r || rows[k][c].Sign() == 0 {
				continue
			}
			f := new(big.Rat).Set(rows[k][c])
			for i := c; i < nsp; i++ {
				term := new(big.Rat).Mul(f, rows[r][i])
				rows[k][i].Sub(rows[k][i], term)
			}
		}
		pivotCol = append(pivotCol, c)
		r++
	}

	isPivot := make([]bool, nsp)
	for _, c := range pivotCol {
		isPivot[c] = true
	}

	// Each free column yields one basis vector: set that weight to 1, all
	// other free weights to 0, and read the pivot weights off the reduced
	// rows.
	var laws []ConservationLaw
	for free := 0; free < nsp; free++ {
		if isPivot[free] {
			continue
		}
		w := make([]*big.Rat, nsp)
		for i := range w {
			w[i] = new(big.Rat)
		}
		w[free].SetInt64(1)
		for pr, pc := range pivotCol {
			// Row pr: w[pc] + Σ_{c free} rows[pr][c]·w[c] = 0.
			w[pc].Neg(rows[pr][free])
		}
		laws = append(laws, ratsToLaw(n, w))
	}
	return laws
}

// ratsToLaw scales a rational weight vector to smallest integers with a
// positive leading coefficient.
func ratsToLaw(n *Network, w []*big.Rat) ConservationLaw {
	lcm := big.NewInt(1)
	for _, r := range w {
		if r.Sign() == 0 {
			continue
		}
		d := r.Denom()
		g := new(big.Int).GCD(nil, nil, lcm, d)
		lcm.Div(lcm, g)
		lcm.Mul(lcm, d)
	}
	ints := make([]*big.Int, len(w))
	var gcd *big.Int
	for i, r := range w {
		v := new(big.Int).Mul(r.Num(), new(big.Int).Div(lcm, r.Denom()))
		ints[i] = v
		if v.Sign() != 0 {
			av := new(big.Int).Abs(v)
			if gcd == nil {
				gcd = av
			} else {
				gcd.GCD(nil, nil, gcd, av)
			}
		}
	}
	law := ConservationLaw{Weights: make(map[string]int)}
	sign := int64(1)
	for _, v := range ints {
		if v.Sign() != 0 {
			if v.Sign() < 0 {
				sign = -1
			}
			break
		}
	}
	for i, v := range ints {
		if v.Sign() == 0 {
			continue
		}
		q := new(big.Int).Div(v, gcd)
		law.Weights[n.SpeciesName(i)] = int(q.Int64() * sign)
	}
	return law
}

// CheckLaw verifies a law is actually conserved (a sanity hook for tests and
// the crnsim -conserved flag).
func (n *Network) CheckLaw(l ConservationLaw) bool {
	w := make(map[string]float64, len(l.Weights))
	for name, wt := range l.Weights {
		w[name] = float64(wt)
	}
	return n.ConservedSum(w)
}
