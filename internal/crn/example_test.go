package crn_test

import (
	"fmt"

	"repro/internal/crn"
)

// Parse the text format used throughout the repository and print the
// network back.
func ExampleParseString() {
	n, err := crn.ParseString(`
init X = 1
b + X -> G : slow    # gated transfer
2 G -> I : slow      # feedback dimer
I -> 2 G : fast
`)
	if err != nil {
		panic(err)
	}
	fmt.Print(n.String())
	// Reactant terms render sorted by species name (ASCII order, so
	// upper-case X precedes lower-case b).
	// Output:
	// init X = 1
	// X + b -> G : slow
	// 2 G -> I : slow
	// I -> 2 G : fast
}

// Discover a network's conservation laws automatically: the tri-phase
// constructs conserve signal mass with feedback dimers counting double.
func ExampleNetwork_ConservationLaws() {
	n := crn.NewNetwork()
	n.R("xfer", map[string]int{"b": 1, "R": 1}, map[string]int{"G": 1}, crn.Slow)
	n.R("dimerize", map[string]int{"G": 2}, map[string]int{"I": 1}, crn.Slow)
	n.R("undimerize", map[string]int{"I": 1}, map[string]int{"G": 2}, crn.Fast)
	n.R("gen", nil, map[string]int{"b": 1}, crn.Slow)
	for _, law := range n.ConservationLaws() {
		fmt.Println(law)
	}
	// Output:
	// G + 2 I + R = const
}
