// Package crn models chemical reaction networks (CRNs) with coarse rate
// categories, the substrate on which the molecular sequential-computation
// constructs of Jiang, Riedel and Parhi (DAC 2011) are built.
//
// A network is a set of named species and a set of reactions. Each reaction
// consumes integer multiples of reactant species and produces integer
// multiples of product species, and carries a rate *category* — Fast or Slow —
// rather than a precise rate constant. The whole point of the paper's design
// style is that computation is exact as long as every Fast reaction is much
// faster than every Slow one; the specific values do not matter. Concrete
// values are bound only at simulation time (see package sim).
//
// Concentrations are dimensionless float64 "units". A signal value of 1.0
// means one unit of concentration of the corresponding species.
package crn

import (
	"fmt"
	"sort"
	"strings"
)

// Category is a coarse rate category. The constructs in this repository use
// only Fast and Slow, per the papers' two-category discipline.
type Category int

const (
	// Slow marks a reaction in the slow category. Zero-order "generator"
	// reactions (no reactants) are always Slow in the paper's constructs.
	Slow Category = iota
	// Fast marks a reaction in the fast category. Correctness of the
	// constructs requires only that Fast rates dominate Slow rates.
	Fast
)

// String returns "slow" or "fast".
func (c Category) String() string {
	switch c {
	case Slow:
		return "slow"
	case Fast:
		return "fast"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Term is one species participating in a reaction with a stoichiometric
// coefficient. Coefficients are strictly positive; a species absent from a
// reaction simply has no Term.
type Term struct {
	Species int // index into Network's species table
	Coeff   int // stoichiometric coefficient, >= 1
}

// Reaction is a single chemical reaction. Reactants and Products hold
// distinct species with positive coefficients. An empty Reactants list is a
// zero-order source (the paper's absence-indicator generators); an empty
// Products list is a sink (degradation).
type Reaction struct {
	Name      string // optional label, used in diagnostics
	Reactants []Term
	Products  []Term
	Cat       Category
	// Mult scales the category's base rate constant for this reaction.
	// It is almost always 1; it exists so robustness experiments can
	// jitter individual reactions within their category.
	Mult float64
}

// Order returns the total molecularity of the reaction (sum of reactant
// coefficients). 0 means a zero-order source.
func (r Reaction) Order() int {
	n := 0
	for _, t := range r.Reactants {
		n += t.Coeff
	}
	return n
}

// Network is a chemical reaction network: species, reactions and initial
// concentrations. The zero value is an empty network ready for use.
type Network struct {
	species   []string
	index     map[string]int
	reactions []Reaction
	init      []float64
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{index: make(map[string]int)}
}

// AddSpecies registers a species by name and returns its index. Adding an
// existing name returns the existing index, so construction code can call it
// freely.
func (n *Network) AddSpecies(name string) int {
	if n.index == nil {
		n.index = make(map[string]int)
	}
	if i, ok := n.index[name]; ok {
		return i
	}
	i := len(n.species)
	n.species = append(n.species, name)
	n.init = append(n.init, 0)
	n.index[name] = i
	return i
}

// SpeciesIndex returns the index of a named species and whether it exists.
func (n *Network) SpeciesIndex(name string) (int, bool) {
	i, ok := n.index[name]
	return i, ok
}

// MustIndex returns the index of a named species, panicking if it is absent.
// It is intended for construction code where absence is a programming error.
func (n *Network) MustIndex(name string) int {
	i, ok := n.index[name]
	if !ok {
		panic(fmt.Sprintf("crn: unknown species %q", name))
	}
	return i
}

// SpeciesName returns the name of the species at index i.
func (n *Network) SpeciesName(i int) string { return n.species[i] }

// NumSpecies returns the number of registered species.
func (n *Network) NumSpecies() int { return len(n.species) }

// NumReactions returns the number of reactions.
func (n *Network) NumReactions() int { return len(n.reactions) }

// Reaction returns the i-th reaction.
func (n *Network) Reaction(i int) Reaction { return n.reactions[i] }

// Reactions returns the reaction slice. Callers must not modify it.
func (n *Network) Reactions() []Reaction { return n.reactions }

// SpeciesNames returns a copy of the species name table, in index order.
func (n *Network) SpeciesNames() []string {
	out := make([]string, len(n.species))
	copy(out, n.species)
	return out
}

// SetInit sets the initial concentration of a named species, registering the
// species if needed. Negative concentrations are rejected.
func (n *Network) SetInit(name string, conc float64) error {
	if conc < 0 {
		return fmt.Errorf("crn: negative initial concentration %g for %q", conc, name)
	}
	i := n.AddSpecies(name)
	n.init[i] = conc
	return nil
}

// Init returns a copy of the initial concentration vector, indexed by
// species index.
func (n *Network) Init() []float64 {
	out := make([]float64, len(n.init))
	copy(out, n.init)
	return out
}

// InitOf returns the initial concentration of the named species (0 if the
// species is unknown).
func (n *Network) InitOf(name string) float64 {
	if i, ok := n.index[name]; ok {
		return n.init[i]
	}
	return 0
}

// termList converts a name->coeff map into a normalized, sorted Term list.
func (n *Network) termList(m map[string]int) ([]Term, error) {
	terms := make([]Term, 0, len(m))
	for name, c := range m {
		if c <= 0 {
			return nil, fmt.Errorf("crn: non-positive coefficient %d for species %q", c, name)
		}
		terms = append(terms, Term{Species: n.AddSpecies(name), Coeff: c})
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i].Species < terms[j].Species })
	return terms, nil
}

// AddReaction adds a reaction described by reactant and product maps
// (species name -> coefficient) with the given category and rate multiplier.
// A nil or empty reactants map makes a zero-order source; a nil or empty
// products map makes a sink. mult must be positive.
func (n *Network) AddReaction(name string, reactants, products map[string]int, cat Category, mult float64) error {
	if mult <= 0 {
		return fmt.Errorf("crn: reaction %q: non-positive rate multiplier %g", name, mult)
	}
	if len(reactants) == 0 && len(products) == 0 {
		return fmt.Errorf("crn: reaction %q has neither reactants nor products", name)
	}
	rt, err := n.termList(reactants)
	if err != nil {
		return fmt.Errorf("crn: reaction %q: %w", name, err)
	}
	pt, err := n.termList(products)
	if err != nil {
		return fmt.Errorf("crn: reaction %q: %w", name, err)
	}
	n.reactions = append(n.reactions, Reaction{
		Name: name, Reactants: rt, Products: pt, Cat: cat, Mult: mult,
	})
	return nil
}

// MustAddReaction is AddReaction that panics on error; for use by
// programmatic construction code where malformed input is a bug.
func (n *Network) MustAddReaction(name string, reactants, products map[string]int, cat Category, mult float64) {
	if err := n.AddReaction(name, reactants, products, cat, mult); err != nil {
		panic(err)
	}
}

// R is shorthand for MustAddReaction with multiplier 1, the overwhelmingly
// common case in the paper's constructs.
func (n *Network) R(name string, reactants, products map[string]int, cat Category) {
	n.MustAddReaction(name, reactants, products, cat, 1)
}

// Validate checks structural well-formedness: positive coefficients, species
// indices in range and positive multipliers. Networks built through the
// public API are always valid; Validate is a guard for parsed or
// programmatically transformed networks.
func (n *Network) Validate() error {
	for i, r := range n.reactions {
		if r.Mult <= 0 {
			return fmt.Errorf("crn: reaction %d (%s): non-positive multiplier %g", i, r.Name, r.Mult)
		}
		if len(r.Reactants) == 0 && len(r.Products) == 0 {
			return fmt.Errorf("crn: reaction %d (%s): empty", i, r.Name)
		}
		for _, t := range append(append([]Term{}, r.Reactants...), r.Products...) {
			if t.Coeff <= 0 {
				return fmt.Errorf("crn: reaction %d (%s): non-positive coefficient", i, r.Name)
			}
			if t.Species < 0 || t.Species >= len(n.species) {
				return fmt.Errorf("crn: reaction %d (%s): species index %d out of range", i, r.Name, t.Species)
			}
		}
	}
	for name, i := range n.index {
		if i < 0 || i >= len(n.species) || n.species[i] != name {
			return fmt.Errorf("crn: corrupt species index for %q", name)
		}
	}
	return nil
}

// UnusedSpecies returns the names of species that appear in no reaction —
// neither as reactant nor as product — in index order. Such species are
// inert: their concentration can never change, so their presence in a
// parsed file almost always indicates a typo in a reaction line. cmd/crnsim
// rejects files that declare them.
func (n *Network) UnusedSpecies() []string {
	used := make([]bool, len(n.species))
	for _, r := range n.reactions {
		for _, t := range r.Reactants {
			used[t.Species] = true
		}
		for _, t := range r.Products {
			used[t.Species] = true
		}
	}
	var out []string
	for i, name := range n.species {
		if !used[i] {
			out = append(out, name)
		}
	}
	return out
}

// MaxOrder returns the largest reaction molecularity in the network. The
// constructs in this repository keep this at 2 except for explicit
// rational-gain stages, and DNA strand-displacement compilation (package dsd)
// requires <= 2.
func (n *Network) MaxOrder() int {
	m := 0
	for _, r := range n.reactions {
		if o := r.Order(); o > m {
			m = o
		}
	}
	return m
}

// StoichVector returns the net stoichiometry change vector (per species
// index) caused by one firing of reaction i.
func (n *Network) StoichVector(i int) []float64 {
	v := make([]float64, len(n.species))
	r := n.reactions[i]
	for _, t := range r.Reactants {
		v[t.Species] -= float64(t.Coeff)
	}
	for _, t := range r.Products {
		v[t.Species] += float64(t.Coeff)
	}
	return v
}

// ConservedSum reports whether the weighted sum of the given species
// (name -> weight) is invariant under every reaction in the network. The
// paper's transfer constructs conserve signal mass across colour stages;
// tests use this to check construction invariants statically.
func (n *Network) ConservedSum(weights map[string]float64) bool {
	w := make([]float64, len(n.species))
	for name, wt := range weights {
		if i, ok := n.index[name]; ok {
			w[i] = wt
		}
	}
	for i := range n.reactions {
		sv := n.StoichVector(i)
		sum := 0.0
		for j, d := range sv {
			sum += w[j] * d
		}
		if sum > 1e-12 || sum < -1e-12 {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the network.
func (n *Network) Clone() *Network {
	c := NewNetwork()
	c.species = append([]string(nil), n.species...)
	c.init = append([]float64(nil), n.init...)
	for name, i := range n.index {
		c.index[name] = i
	}
	c.reactions = make([]Reaction, len(n.reactions))
	for i, r := range n.reactions {
		rc := r
		rc.Reactants = append([]Term(nil), r.Reactants...)
		rc.Products = append([]Term(nil), r.Products...)
		c.reactions[i] = rc
	}
	return c
}

// ScaleMult multiplies the rate multiplier of reaction i by f. Used by
// robustness experiments to jitter individual reactions within their
// category.
func (n *Network) ScaleMult(i int, f float64) error {
	if f <= 0 {
		return fmt.Errorf("crn: non-positive scale factor %g", f)
	}
	n.reactions[i].Mult *= f
	return nil
}

// FormatReaction renders reaction i in the text format accepted by Parse,
// e.g. "b + R1 -> G1 : slow" or "2 G1 -> IG1 : slow".
func (n *Network) FormatReaction(i int) string {
	r := n.reactions[i]
	var sb strings.Builder
	writeSide := func(terms []Term) {
		if len(terms) == 0 {
			return
		}
		terms = append([]Term(nil), terms...)
		sort.Slice(terms, func(a, b int) bool {
			return n.species[terms[a].Species] < n.species[terms[b].Species]
		})
		for k, t := range terms {
			if k > 0 {
				sb.WriteString(" + ")
			}
			if t.Coeff != 1 {
				fmt.Fprintf(&sb, "%d ", t.Coeff)
			}
			sb.WriteString(n.species[t.Species])
		}
	}
	writeSide(r.Reactants)
	sb.WriteString(" -> ")
	writeSide(r.Products)
	fmt.Fprintf(&sb, " : %s", r.Cat)
	if r.Mult != 1 {
		fmt.Fprintf(&sb, " %g", r.Mult)
	}
	return sb.String()
}

// String renders the whole network in the text format accepted by Parse:
// init lines followed by reaction lines.
func (n *Network) String() string {
	var sb strings.Builder
	for i, name := range n.species {
		if n.init[i] != 0 {
			fmt.Fprintf(&sb, "init %s = %g\n", name, n.init[i])
		}
	}
	for i := range n.reactions {
		sb.WriteString(n.FormatReaction(i))
		sb.WriteByte('\n')
	}
	return sb.String()
}
