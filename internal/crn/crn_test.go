package crn

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddSpeciesIdempotent(t *testing.T) {
	n := NewNetwork()
	a := n.AddSpecies("X")
	b := n.AddSpecies("Y")
	if a == b {
		t.Fatalf("distinct species share index %d", a)
	}
	if again := n.AddSpecies("X"); again != a {
		t.Fatalf("re-adding X: got %d, want %d", again, a)
	}
	if n.NumSpecies() != 2 {
		t.Fatalf("NumSpecies = %d, want 2", n.NumSpecies())
	}
}

func TestSpeciesLookup(t *testing.T) {
	n := NewNetwork()
	n.AddSpecies("R1")
	if i, ok := n.SpeciesIndex("R1"); !ok || i != 0 {
		t.Fatalf("SpeciesIndex(R1) = %d,%v", i, ok)
	}
	if _, ok := n.SpeciesIndex("missing"); ok {
		t.Fatal("found species that was never added")
	}
	if got := n.SpeciesName(0); got != "R1" {
		t.Fatalf("SpeciesName(0) = %q", got)
	}
}

func TestMustIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustIndex on unknown species did not panic")
		}
	}()
	NewNetwork().MustIndex("nope")
}

func TestSetInit(t *testing.T) {
	n := NewNetwork()
	if err := n.SetInit("X", 2.5); err != nil {
		t.Fatal(err)
	}
	if got := n.InitOf("X"); got != 2.5 {
		t.Fatalf("InitOf(X) = %g", got)
	}
	if got := n.InitOf("unknown"); got != 0 {
		t.Fatalf("InitOf(unknown) = %g, want 0", got)
	}
	if err := n.SetInit("X", -1); err == nil {
		t.Fatal("negative init accepted")
	}
	init := n.Init()
	init[0] = 99 // must not alias internal state
	if n.InitOf("X") != 2.5 {
		t.Fatal("Init() aliases internal storage")
	}
}

func TestAddReactionValidation(t *testing.T) {
	n := NewNetwork()
	if err := n.AddReaction("r", nil, nil, Slow, 1); err == nil {
		t.Fatal("empty reaction accepted")
	}
	if err := n.AddReaction("r", map[string]int{"X": 1}, nil, Slow, 0); err == nil {
		t.Fatal("zero multiplier accepted")
	}
	if err := n.AddReaction("r", map[string]int{"X": 0}, map[string]int{"Y": 1}, Slow, 1); err == nil {
		t.Fatal("zero coefficient accepted")
	}
	if err := n.AddReaction("ok", map[string]int{"X": 1}, map[string]int{"Y": 2}, Fast, 1); err != nil {
		t.Fatal(err)
	}
	if n.NumReactions() != 1 {
		t.Fatalf("NumReactions = %d", n.NumReactions())
	}
}

func TestReactionOrderAndStoich(t *testing.T) {
	n := NewNetwork()
	n.R("gen", nil, map[string]int{"r": 1}, Slow)
	n.R("dimer", map[string]int{"G": 2}, map[string]int{"I": 1}, Slow)
	n.R("xfer", map[string]int{"b": 1, "R": 1}, map[string]int{"G": 1}, Slow)

	if got := n.Reaction(0).Order(); got != 0 {
		t.Fatalf("zero-order reaction order = %d", got)
	}
	if got := n.Reaction(1).Order(); got != 2 {
		t.Fatalf("dimer order = %d", got)
	}
	if got := n.MaxOrder(); got != 2 {
		t.Fatalf("MaxOrder = %d", got)
	}

	sv := n.StoichVector(1)
	gi := n.MustIndex("G")
	ii := n.MustIndex("I")
	if sv[gi] != -2 || sv[ii] != 1 {
		t.Fatalf("dimer stoich: G=%g I=%g", sv[gi], sv[ii])
	}
}

func TestConservedSum(t *testing.T) {
	n := NewNetwork()
	// The tri-phase transfer chain conserves signal mass across colours.
	n.R("rg", map[string]int{"b": 1, "R": 1}, map[string]int{"G": 1}, Slow)
	n.R("gb", map[string]int{"r": 1, "G": 1}, map[string]int{"B": 1}, Slow)
	n.R("br", map[string]int{"g": 1, "B": 1}, map[string]int{"R": 1}, Slow)
	n.R("genr", nil, map[string]int{"r": 1}, Slow)

	if !n.ConservedSum(map[string]float64{"R": 1, "G": 1, "B": 1}) {
		t.Fatal("R+G+B should be conserved")
	}
	if n.ConservedSum(map[string]float64{"R": 1, "G": 1}) {
		t.Fatal("R+G should not be conserved")
	}
	if n.ConservedSum(map[string]float64{"r": 1}) {
		t.Fatal("indicator r is generated; should not be conserved")
	}
}

func TestHalvingGainConservation(t *testing.T) {
	n := NewNetwork()
	n.R("halve", map[string]int{"X": 2}, map[string]int{"Y": 1}, Fast)
	// X + 2Y is conserved by 2X -> Y.
	if !n.ConservedSum(map[string]float64{"X": 1, "Y": 2}) {
		t.Fatal("X + 2Y should be conserved under 2X -> Y")
	}
}

func TestCloneIsDeep(t *testing.T) {
	n := NewNetwork()
	n.R("a", map[string]int{"X": 1}, map[string]int{"Y": 1}, Fast)
	if err := n.SetInit("X", 1); err != nil {
		t.Fatal(err)
	}
	c := n.Clone()
	if err := c.ScaleMult(0, 7); err != nil {
		t.Fatal(err)
	}
	if err := c.SetInit("X", 9); err != nil {
		t.Fatal(err)
	}
	c.AddSpecies("Z")
	if n.Reaction(0).Mult != 1 {
		t.Fatal("ScaleMult on clone changed original")
	}
	if n.InitOf("X") != 1 {
		t.Fatal("SetInit on clone changed original")
	}
	if n.NumSpecies() != 2 {
		t.Fatal("AddSpecies on clone changed original")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
}

func TestScaleMult(t *testing.T) {
	n := NewNetwork()
	n.R("a", map[string]int{"X": 1}, map[string]int{"Y": 1}, Fast)
	if err := n.ScaleMult(0, 2.5); err != nil {
		t.Fatal(err)
	}
	if got := n.Reaction(0).Mult; got != 2.5 {
		t.Fatalf("Mult = %g", got)
	}
	if err := n.ScaleMult(0, 0); err == nil {
		t.Fatal("zero scale accepted")
	}
}

func TestParseBasic(t *testing.T) {
	src := `
# the companion abstract's absence indicator generators
init X = 1.0
init B0 = 0.25
-> r : slow
r + X -> X : fast
b + R1 -> G1 : slow
2 G1 -> IG1 : slow
IG1 -> 2 G1 : fast
A + B -> : fast 2.5
`
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if n.InitOf("X") != 1.0 || n.InitOf("B0") != 0.25 {
		t.Fatal("init values not parsed")
	}
	if n.NumReactions() != 6 {
		t.Fatalf("NumReactions = %d, want 6", n.NumReactions())
	}
	r0 := n.Reaction(0)
	if len(r0.Reactants) != 0 || r0.Cat != Slow {
		t.Fatalf("zero-order source mis-parsed: %+v", r0)
	}
	r5 := n.Reaction(5)
	if len(r5.Products) != 0 || r5.Mult != 2.5 || r5.Cat != Fast {
		t.Fatalf("sink with multiplier mis-parsed: %+v", r5)
	}
	dimer := n.Reaction(3)
	if dimer.Reactants[0].Coeff != 2 {
		t.Fatalf("coefficient 2 not parsed: %+v", dimer)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"X -> Y",            // missing category
		"X -> Y : medium",   // unknown category
		"X -> Y : fast 0",   // zero multiplier
		"X -> Y : fast 1 2", // trailing token
		"X Y -> Z : fast",   // malformed term (no '+')
		"-1 X -> Y : fast",  // negative coefficient
		"init X 1.0",        // missing '='
		"init X = abc",      // bad number
		"init  = 1.0",       // missing name
		"X + -> Y : slow",   // empty term
		"-> : slow",         // empty reaction
		"species ",          // empty species decl
		"0 X -> Y : fast",   // zero coefficient
		"X -> Y : fast -2",  // negative multiplier
		"init X = -1",       // negative init
	}
	for _, src := range bad {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q) accepted invalid input", src)
		}
	}
}

func TestParseSpeciesDecl(t *testing.T) {
	n, err := ParseString("species Q\ninit Q = 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := n.SpeciesIndex("Q"); !ok {
		t.Fatal("species declaration ignored")
	}
}

func TestFormatRoundTrip(t *testing.T) {
	src := `init X = 1.25
-> r : slow
b + R1 -> G1 : slow
2 G1 -> IG1 : slow 0.5
IG1 + R1 -> 2 G1 + G1 : fast
X -> : fast
`
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := ParseString(n.String())
	if err != nil {
		t.Fatalf("re-parse of String() output failed: %v\n%s", err, n.String())
	}
	if n2.NumReactions() != n.NumReactions() || n2.NumSpecies() != n.NumSpecies() {
		t.Fatalf("round trip changed shape: %d/%d species, %d/%d reactions",
			n.NumSpecies(), n2.NumSpecies(), n.NumReactions(), n2.NumReactions())
	}
	for i := 0; i < n.NumReactions(); i++ {
		if n.FormatReaction(i) != n2.FormatReaction(i) {
			t.Fatalf("reaction %d differs after round trip: %q vs %q",
				i, n.FormatReaction(i), n2.FormatReaction(i))
		}
	}
}

// randomNetwork builds a structurally valid random network for property
// tests.
func randomNetwork(rng *rand.Rand) *Network {
	n := NewNetwork()
	nsp := 1 + rng.Intn(8)
	names := make([]string, nsp)
	for i := range names {
		names[i] = "S" + string(rune('A'+i))
		n.AddSpecies(names[i])
		if rng.Intn(2) == 0 {
			_ = n.SetInit(names[i], float64(rng.Intn(8))/2)
		}
	}
	nrx := 1 + rng.Intn(10)
	for i := 0; i < nrx; i++ {
		re := map[string]int{}
		pr := map[string]int{}
		for k := 0; k < rng.Intn(3); k++ {
			re[names[rng.Intn(nsp)]] += 1 + rng.Intn(2)
		}
		for k := 0; k < rng.Intn(3); k++ {
			pr[names[rng.Intn(nsp)]] += 1 + rng.Intn(2)
		}
		if len(re) == 0 && len(pr) == 0 {
			pr[names[0]] = 1
		}
		cat := Slow
		if rng.Intn(2) == 0 {
			cat = Fast
		}
		mult := 1.0
		if rng.Intn(3) == 0 {
			mult = float64(1+rng.Intn(40)) / 8
		}
		n.MustAddReaction("", re, pr, cat, mult)
	}
	return n
}

// Property: serializing any valid network and re-parsing it yields a network
// with identical species, inits and reactions.
func TestQuickRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomNetwork(rng)
		n2, err := ParseString(n.String())
		if err != nil {
			t.Logf("seed %d: re-parse error: %v", seed, err)
			return false
		}
		if n2.NumReactions() != n.NumReactions() {
			return false
		}
		for _, name := range n.SpeciesNames() {
			if n.InitOf(name) != n2.InitOf(name) {
				return false
			}
		}
		for i := 0; i < n.NumReactions(); i++ {
			a, b := n.Reaction(i), n2.Reaction(i)
			if a.Cat != b.Cat || a.Mult != b.Mult || a.Order() != b.Order() {
				return false
			}
			// Compare rendered forms (species indices may differ).
			if n.FormatReaction(i) != n2.FormatReaction(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: StoichVector of every reaction in a random network moves exactly
// the declared coefficients.
func TestQuickStoichConsistency(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomNetwork(rng)
		for i := 0; i < n.NumReactions(); i++ {
			sv := n.StoichVector(i)
			r := n.Reaction(i)
			want := make([]float64, n.NumSpecies())
			for _, tm := range r.Reactants {
				want[tm.Species] -= float64(tm.Coeff)
			}
			for _, tm := range r.Products {
				want[tm.Species] += float64(tm.Coeff)
			}
			for j := range sv {
				if sv[j] != want[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestParseTrailingComment(t *testing.T) {
	n, err := ParseString("X -> Y : fast # catalytic cleanup\n")
	if err != nil {
		t.Fatal(err)
	}
	if n.NumReactions() != 1 {
		t.Fatalf("NumReactions = %d", n.NumReactions())
	}
}

func TestFormatZeroOrder(t *testing.T) {
	n := NewNetwork()
	n.R("gen", nil, map[string]int{"r": 1}, Slow)
	got := n.FormatReaction(0)
	if !strings.Contains(got, "-> r") || !strings.Contains(got, "slow") {
		t.Fatalf("FormatReaction = %q", got)
	}
}
