package crn

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Parse reads a network from the plain-text format used throughout this
// repository. The format is line oriented:
//
//	# comment (also trailing comments after '#')
//	init X = 1.5
//	X + 2 G -> Z : fast
//	-> r : slow          # zero-order source
//	A + B -> : fast 2.5  # sink, with rate multiplier 2.5
//
// Species names are any run of non-whitespace characters excluding
// '+', '>', ':' and '#'. Coefficients are written as a separate integer token
// before the species name. The category token is "fast" or "slow", optionally
// followed by a positive rate multiplier.
func Parse(r io.Reader) (*Network, error) {
	n := NewNetwork()
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := parseLine(n, line); err != nil {
			return nil, fmt.Errorf("crn: line %d: %w", lineno, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("crn: read: %w", err)
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Network, error) {
	return Parse(strings.NewReader(s))
}

func parseLine(n *Network, line string) error {
	if rest, ok := strings.CutPrefix(line, "init "); ok {
		return parseInit(n, rest)
	}
	if rest, ok := strings.CutPrefix(line, "species "); ok {
		name := strings.TrimSpace(rest)
		if name == "" {
			return fmt.Errorf("empty species declaration")
		}
		n.AddSpecies(name)
		return nil
	}
	return parseReaction(n, line)
}

func parseInit(n *Network, rest string) error {
	name, val, ok := strings.Cut(rest, "=")
	if !ok {
		return fmt.Errorf("init line missing '='")
	}
	name = strings.TrimSpace(name)
	if name == "" {
		return fmt.Errorf("init line missing species name")
	}
	conc, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
	if err != nil {
		return fmt.Errorf("init %s: bad concentration: %w", name, err)
	}
	return n.SetInit(name, conc)
}

func parseReaction(n *Network, line string) error {
	body, rateSpec, ok := strings.Cut(line, ":")
	if !ok {
		return fmt.Errorf("reaction missing ': <category>' suffix")
	}
	lhs, rhs, ok := strings.Cut(body, "->")
	if !ok {
		return fmt.Errorf("reaction missing '->'")
	}
	reactants, err := parseSide(lhs)
	if err != nil {
		return fmt.Errorf("reactants: %w", err)
	}
	products, err := parseSide(rhs)
	if err != nil {
		return fmt.Errorf("products: %w", err)
	}
	cat, mult, err := parseRate(rateSpec)
	if err != nil {
		return err
	}
	return n.AddReaction("", reactants, products, cat, mult)
}

// parseSide parses "X + 2 G" into {"X":1, "G":2}. An empty side returns an
// empty map.
func parseSide(s string) (map[string]int, error) {
	out := make(map[string]int)
	s = strings.TrimSpace(s)
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, "+") {
		fields := strings.Fields(part)
		switch len(fields) {
		case 0:
			return nil, fmt.Errorf("empty term")
		case 1:
			out[fields[0]] += 1
		case 2:
			c, err := strconv.Atoi(fields[0])
			if err != nil || c <= 0 {
				return nil, fmt.Errorf("bad coefficient %q", fields[0])
			}
			out[fields[1]] += c
		default:
			return nil, fmt.Errorf("malformed term %q", strings.TrimSpace(part))
		}
	}
	return out, nil
}

func parseRate(s string) (Category, float64, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return 0, 0, fmt.Errorf("missing rate category")
	}
	var cat Category
	switch fields[0] {
	case "fast":
		cat = Fast
	case "slow":
		cat = Slow
	default:
		return 0, 0, fmt.Errorf("unknown rate category %q (want fast or slow)", fields[0])
	}
	mult := 1.0
	if len(fields) >= 2 {
		m, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || m <= 0 {
			return 0, 0, fmt.Errorf("bad rate multiplier %q", fields[1])
		}
		mult = m
	}
	if len(fields) > 2 {
		return 0, 0, fmt.Errorf("trailing tokens after rate: %q", s)
	}
	return cat, mult, nil
}
