package crn

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestConservationLawsSimpleLoop(t *testing.T) {
	n := NewNetwork()
	n.R("fwd", map[string]int{"A": 1}, map[string]int{"B": 1}, Fast)
	n.R("rev", map[string]int{"B": 1}, map[string]int{"A": 1}, Slow)
	laws := n.ConservationLaws()
	if len(laws) != 1 {
		t.Fatalf("got %d laws, want 1: %v", len(laws), laws)
	}
	l := laws[0]
	if l.Weights["A"] != 1 || l.Weights["B"] != 1 {
		t.Fatalf("law = %s", l)
	}
	if !n.CheckLaw(l) {
		t.Fatal("reported law is not conserved")
	}
}

func TestConservationLawsHalving(t *testing.T) {
	// 2X -> Y conserves X + 2Y.
	n := NewNetwork()
	n.R("halve", map[string]int{"X": 2}, map[string]int{"Y": 1}, Fast)
	laws := n.ConservationLaws()
	if len(laws) != 1 {
		t.Fatalf("got %d laws: %v", len(laws), laws)
	}
	if laws[0].Weights["X"] != 1 || laws[0].Weights["Y"] != 2 {
		t.Fatalf("law = %s", laws[0])
	}
}

func TestConservationLawsOpenSystem(t *testing.T) {
	// A zero-order source plus a sink leaves nothing conserved for the
	// species it touches, but an untouched species is trivially conserved.
	n := NewNetwork()
	n.R("gen", nil, map[string]int{"A": 1}, Slow)
	n.R("deg", map[string]int{"A": 1}, nil, Fast)
	n.AddSpecies("idle")
	laws := n.ConservationLaws()
	if len(laws) != 1 {
		t.Fatalf("got %d laws: %v", len(laws), laws)
	}
	if laws[0].Weights["idle"] != 1 || len(laws[0].Weights) != 1 {
		t.Fatalf("law = %s", laws[0])
	}
}

func TestConservationLawsTriPhaseLoop(t *testing.T) {
	// The full single-element tri-phase loop with feedback dimers: the
	// analysis must discover the signal-mass invariant R+G+B+2(IR+IG+IB)
	// automatically (indicators are generated, so they appear in no law).
	src := `
-> r : slow
-> g : slow
-> b : slow
r + R -> R : fast
g + G -> G : fast
b + B -> B : fast
2 R -> IR : slow
IR -> 2 R : fast
2 G -> IG : slow
IG -> 2 G : fast
2 B -> IB : slow
IB -> 2 B : fast
b + R -> G : slow
r + G -> B : slow
g + B -> R : slow
IG + R -> 2 G + G : fast
IB + G -> 2 B + B : fast
IR + B -> 2 R + R : fast
`
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	laws := n.ConservationLaws()
	if len(laws) != 1 {
		for _, l := range laws {
			t.Log(l)
		}
		t.Fatalf("got %d laws, want exactly the signal-mass invariant", len(laws))
	}
	l := laws[0]
	want := map[string]int{"R": 1, "G": 1, "B": 1, "IR": 2, "IG": 2, "IB": 2}
	for sp, w := range want {
		if l.Weights[sp] != w {
			t.Fatalf("law %s: weight of %s = %d, want %d", l, sp, l.Weights[sp], w)
		}
	}
	for sp := range l.Weights {
		if _, ok := want[sp]; !ok {
			t.Fatalf("law %s includes unexpected species %s", l, sp)
		}
	}
}

func TestConservationLawString(t *testing.T) {
	l := ConservationLaw{Weights: map[string]int{"A": 1, "B": 2, "C": -1}}
	s := l.String()
	if !strings.Contains(s, "A + 2 B - C") {
		t.Fatalf("String = %q", s)
	}
	neg := ConservationLaw{Weights: map[string]int{"Z": -3}}
	if got := neg.String(); !strings.HasPrefix(got, "-3 Z") {
		t.Fatalf("negative leading: %q", got)
	}
}

func TestConservationLawsEmptyNetwork(t *testing.T) {
	if laws := NewNetwork().ConservationLaws(); laws != nil {
		t.Fatalf("empty network: %v", laws)
	}
}

// Property: every law reported for a random network is in fact conserved,
// and every species untouched by reactions appears in some law.
func TestQuickConservationSound(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomNetwork(rng)
		for _, l := range n.ConservationLaws() {
			if !n.CheckLaw(l) {
				t.Logf("seed %d: unsound law %s for\n%s", seed, l, n)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: the number of laws equals species minus the rank of the
// stoichiometry matrix, so for a closed unimolecular ring it is exactly 1.
func TestQuickRingHasOneLaw(t *testing.T) {
	prop := func(szRaw uint8) bool {
		sz := 2 + int(szRaw)%6
		n := NewNetwork()
		for i := 0; i < sz; i++ {
			from := string(rune('A' + i))
			to := string(rune('A' + (i+1)%sz))
			n.R(from+to, map[string]int{from: 1}, map[string]int{to: 1}, Slow)
		}
		laws := n.ConservationLaws()
		if len(laws) != 1 {
			return false
		}
		for i := 0; i < sz; i++ {
			if laws[0].Weights[string(rune('A'+i))] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
