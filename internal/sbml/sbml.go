// Package sbml exports chemical reaction networks as SBML Level 3 Version 1
// documents with mass-action kinetic laws, so that circuits synthesized here
// can be loaded into the bio-design tools of the paper's community (iBioSim
// and the other SBML-speaking simulators of the same proceedings).
//
// Rate categories are bound to concrete constants at export time; each
// reaction gets its own SBML parameter so downstream tools can retune
// individual rates.
package sbml

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"repro/internal/crn"
	"repro/internal/sim"
)

// Write serializes the network as an SBML document. Species names are
// sanitized into SBML identifiers (SId does not allow dots); the original
// names are preserved in the name attribute.
func Write(w io.Writer, n *crn.Network, rates sim.Rates, modelID string) error {
	if err := rates.Validate(); err != nil {
		return err
	}
	if err := n.Validate(); err != nil {
		return err
	}
	if modelID == "" {
		modelID = "crn"
	}
	ids := makeIDs(n)

	var b bytes.Buffer
	b.WriteString(`<?xml version="1.0" encoding="UTF-8"?>` + "\n")
	b.WriteString(`<sbml xmlns="http://www.sbml.org/sbml/level3/version1/core" level="3" version="1">` + "\n")
	fmt.Fprintf(&b, `  <model id="%s" substanceUnits="item" timeUnits="second" extentUnits="item">`+"\n", sanitizeID(modelID))
	b.WriteString("    <listOfCompartments>\n")
	b.WriteString(`      <compartment id="main" spatialDimensions="3" size="1" constant="true"/>` + "\n")
	b.WriteString("    </listOfCompartments>\n")

	b.WriteString("    <listOfSpecies>\n")
	for i, name := range n.SpeciesNames() {
		fmt.Fprintf(&b,
			`      <species id="%s" name="%s" compartment="main" initialConcentration="%g" hasOnlySubstanceUnits="false" boundaryCondition="false" constant="false"/>`+"\n",
			ids[i], escape(name), n.InitOf(name))
	}
	b.WriteString("    </listOfSpecies>\n")

	b.WriteString("    <listOfParameters>\n")
	for i := 0; i < n.NumReactions(); i++ {
		fmt.Fprintf(&b, `      <parameter id="k_%d" value="%g" constant="true"/>`+"\n",
			i, rates.Of(n.Reaction(i)))
	}
	b.WriteString("    </listOfParameters>\n")

	b.WriteString("    <listOfReactions>\n")
	for i := 0; i < n.NumReactions(); i++ {
		r := n.Reaction(i)
		rid := fmt.Sprintf("r_%d", i)
		if r.Name != "" {
			fmt.Fprintf(&b, `      <reaction id="%s" name="%s" reversible="false">`+"\n", rid, escape(r.Name))
		} else {
			fmt.Fprintf(&b, `      <reaction id="%s" reversible="false">`+"\n", rid)
		}
		writeSide := func(tag string, terms []crn.Term) {
			if len(terms) == 0 {
				return
			}
			fmt.Fprintf(&b, "        <%s>\n", tag)
			for _, t := range terms {
				fmt.Fprintf(&b, `          <speciesReference species="%s" stoichiometry="%d" constant="true"/>`+"\n",
					ids[t.Species], t.Coeff)
			}
			fmt.Fprintf(&b, "        </%s>\n", tag)
		}
		writeSide("listOfReactants", r.Reactants)
		writeSide("listOfProducts", r.Products)

		b.WriteString("        <kineticLaw>\n")
		b.WriteString(`          <math xmlns="http://www.w3.org/1998/Math/MathML">` + "\n")
		factors := []string{fmt.Sprintf("k_%d", i)}
		for _, t := range r.Reactants {
			for c := 0; c < t.Coeff; c++ {
				factors = append(factors, ids[t.Species])
			}
		}
		if len(factors) == 1 {
			fmt.Fprintf(&b, "            <ci> %s </ci>\n", factors[0])
		} else {
			b.WriteString("            <apply>\n              <times/>\n")
			for _, f := range factors {
				fmt.Fprintf(&b, "              <ci> %s </ci>\n", f)
			}
			b.WriteString("            </apply>\n")
		}
		b.WriteString("          </math>\n")
		b.WriteString("        </kineticLaw>\n")
		b.WriteString("      </reaction>\n")
	}
	b.WriteString("    </listOfReactions>\n")
	b.WriteString("  </model>\n</sbml>\n")
	_, err := w.Write(b.Bytes())
	return err
}

// makeIDs builds unique SBML identifiers for every species.
func makeIDs(n *crn.Network) []string {
	used := make(map[string]bool)
	ids := make([]string, n.NumSpecies())
	for i, name := range n.SpeciesNames() {
		id := sanitizeID(name)
		for used[id] {
			id += "_x"
		}
		used[id] = true
		ids[i] = id
	}
	return ids
}

// sanitizeID maps an arbitrary name onto the SBML SId grammar
// [a-zA-Z_][a-zA-Z0-9_]*.
func sanitizeID(name string) string {
	var sb strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			sb.WriteByte(c)
		case c >= '0' && c <= '9':
			if sb.Len() == 0 {
				sb.WriteByte('s')
			}
			sb.WriteByte(c)
		default:
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "s"
	}
	return sb.String()
}

// escape renders a string safe for an XML attribute value.
func escape(s string) string {
	var b bytes.Buffer
	// xml.EscapeText escapes more than strictly required for attribute
	// values, but its output is always safe.
	if err := xml.EscapeText(&b, []byte(s)); err != nil {
		return "invalid"
	}
	return b.String()
}
