package sbml

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"

	"repro/internal/async"
	"repro/internal/crn"
	"repro/internal/sim"
)

func sampleNet(t *testing.T) *crn.Network {
	t.Helper()
	n := crn.NewNetwork()
	n.R("xfer", map[string]int{"b": 1, "d.R1": 1}, map[string]int{"d.G1": 1}, crn.Slow)
	n.R("dimer", map[string]int{"d.G1": 2}, map[string]int{"I_d.G1": 1}, crn.Slow)
	n.R("gen", nil, map[string]int{"b": 1}, crn.Slow)
	n.R("sink", map[string]int{"b": 1}, nil, crn.Fast)
	if err := n.SetInit("d.R1", 1.5); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestWriteWellFormedXML(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleNet(t), sim.DefaultRates(), "demo"); err != nil {
		t.Fatal(err)
	}
	dec := xml.NewDecoder(bytes.NewReader(buf.Bytes()))
	elements := 0
	for {
		tok, err := dec.Token()
		if tok == nil {
			break
		}
		if err != nil {
			t.Fatalf("output is not well-formed XML: %v", err)
		}
		if _, ok := tok.(xml.StartElement); ok {
			elements++
		}
	}
	if elements < 10 {
		t.Fatalf("suspiciously small document (%d elements)", elements)
	}
}

func TestWriteContent(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleNet(t), sim.Rates{Fast: 250, Slow: 2}, "demo"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`level="3" version="1"`,
		`id="d_R1"`,                       // sanitized species id
		`name="d.R1"`,                     // original name preserved
		`initialConcentration="1.5"`,      // init carried over
		`<parameter id="k_3" value="250"`, // fast reaction bound to 250
		`<parameter id="k_0" value="2"`,   // slow reaction bound to 2
		`stoichiometry="2"`,               // dimerization coefficient
		"<times/>",                        // mass-action MathML
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Zero-order source: kinetic law must be the bare parameter.
	if !strings.Contains(out, "<ci> k_2 </ci>") {
		t.Fatal("zero-order kinetic law missing")
	}
}

func TestSanitizeID(t *testing.T) {
	cases := map[string]string{
		"d.R1":    "d_R1",
		"ph.r":    "ph_r",
		"I_d.G1":  "I_d_G1",
		"0start":  "s0start",
		"":        "s",
		"ok_name": "ok_name",
	}
	for in, want := range cases {
		if got := sanitizeID(in); got != want {
			t.Errorf("sanitizeID(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestUniqueIDsUnderCollision(t *testing.T) {
	n := crn.NewNetwork()
	n.AddSpecies("a.b")
	n.AddSpecies("a_b") // sanitizes to the same id
	ids := makeIDs(n)
	if ids[0] == ids[1] {
		t.Fatalf("colliding ids: %v", ids)
	}
}

func TestWriteValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleNet(t), sim.Rates{Fast: 1, Slow: 2}, "x"); err == nil {
		t.Fatal("inverted rates accepted")
	}
}

func TestWriteFullChain(t *testing.T) {
	// A realistic export: the two-element delay chain round-trips through
	// the XML parser with every species present.
	net := crn.NewNetwork()
	ch, err := async.NewChain(net, "d", 2)
	if err != nil {
		t.Fatal(err)
	}
	_ = ch
	var buf bytes.Buffer
	if err := Write(&buf, net, sim.DefaultRates(), "chain"); err != nil {
		t.Fatal(err)
	}
	count := strings.Count(buf.String(), "<species ")
	if count != net.NumSpecies() {
		t.Fatalf("exported %d species, network has %d", count, net.NumSpecies())
	}
	rcount := strings.Count(buf.String(), "<reaction ")
	if rcount != net.NumReactions() {
		t.Fatalf("exported %d reactions, network has %d", rcount, net.NumReactions())
	}
}
