package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/crn"
)

func sampleNet(t *testing.T) *crn.Network {
	t.Helper()
	n := crn.NewNetwork()
	n.R("a", map[string]int{"X": 1}, map[string]int{"Y": 1}, crn.Fast)
	n.R("b", map[string]int{"Y": 2}, map[string]int{"Z": 1}, crn.Slow)
	n.R("c", nil, map[string]int{"W": 1}, crn.Slow)
	return n
}

func TestJitterBounds(t *testing.T) {
	n := sampleNet(t)
	j, err := Jitter(n, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < j.NumReactions(); i++ {
		f := j.Reaction(i).Mult / n.Reaction(i).Mult
		if f < 0.5-1e-12 || f > 2+1e-12 {
			t.Fatalf("reaction %d scaled by %g, outside [0.5, 2]", i, f)
		}
	}
	// Original untouched.
	for i := 0; i < n.NumReactions(); i++ {
		if n.Reaction(i).Mult != 1 {
			t.Fatal("Jitter modified the original network")
		}
	}
}

func TestJitterIdentity(t *testing.T) {
	n := sampleNet(t)
	j, err := Jitter(n, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < j.NumReactions(); i++ {
		if j.Reaction(i).Mult != n.Reaction(i).Mult {
			t.Fatal("spread=1 changed multipliers")
		}
	}
	if _, err := Jitter(n, 0.5, 7); err == nil {
		t.Fatal("spread < 1 accepted")
	}
}

func TestJitterDeterministicSeed(t *testing.T) {
	n := sampleNet(t)
	a, _ := Jitter(n, 3, 99)
	b, _ := Jitter(n, 3, 99)
	for i := 0; i < a.NumReactions(); i++ {
		if a.Reaction(i).Mult != b.Reaction(i).Mult {
			t.Fatal("same seed produced different jitter")
		}
	}
}

func TestCostOf(t *testing.T) {
	n := sampleNet(t)
	c := CostOf(n)
	if c.Species != 4 || c.Reactions != 3 || c.MaxOrder != 2 || c.FastCount != 1 || c.SlowCount != 2 {
		t.Fatalf("Cost = %+v", c)
	}
}

func TestCompareStreams(t *testing.T) {
	se, err := CompareStreams([]float64{1, 2, 3}, []float64{1, 2.5, 3, 99})
	if err != nil {
		t.Fatal(err)
	}
	if se.N != 3 || math.Abs(se.Mean-0.5/3) > 1e-12 || se.Max != 0.5 {
		t.Fatalf("StreamError = %+v", se)
	}
	if _, err := CompareStreams(nil, nil); err == nil {
		t.Fatal("empty comparison accepted")
	}
}

func TestBitErrors(t *testing.T) {
	e, n := BitErrors([]uint64{0, 1, 2, 3}, []uint64{0, 1, 9, 3, 4})
	if e != 1 || n != 4 {
		t.Fatalf("BitErrors = %d/%d", e, n)
	}
}

// Property: jitter factors are always inside the requested spread.
func TestQuickJitterInBounds(t *testing.T) {
	prop := func(seed int64, spreadRaw uint8) bool {
		spread := 1 + float64(spreadRaw)/32
		n := crn.NewNetwork()
		n.R("a", map[string]int{"X": 1}, map[string]int{"Y": 1}, crn.Fast)
		j, err := Jitter(n, spread, seed)
		if err != nil {
			return false
		}
		f := j.Reaction(0).Mult
		return f >= 1/spread-1e-9 && f <= spread+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
