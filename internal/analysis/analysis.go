// Package analysis provides the experiment-level utilities shared by the
// benchmark harness: rate-constant jittering for robustness sweeps, network
// cost accounting for the sync-vs-async comparison, and stream error
// summaries for filter experiments.
package analysis

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/crn"
)

// Jitter returns a copy of the network in which every reaction's rate
// multiplier has been scaled by an independent log-uniform factor in
// [1/spread, spread]. This models the paper's robustness claim directly:
// within a category, individual rate constants may vary arbitrarily (here by
// the given spread) without affecting the computed result. spread must be
// >= 1; spread == 1 returns an unmodified copy.
func Jitter(n *crn.Network, spread float64, seed int64) (*crn.Network, error) {
	if spread < 1 {
		return nil, fmt.Errorf("analysis: jitter spread %g must be >= 1", spread)
	}
	c := n.Clone()
	if spread == 1 {
		return c, nil
	}
	rng := rand.New(rand.NewSource(seed))
	logSpread := math.Log(spread)
	for i := 0; i < c.NumReactions(); i++ {
		f := math.Exp((2*rng.Float64() - 1) * logSpread)
		if err := c.ScaleMult(i, f); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Cost summarizes the structural cost of a network, the currency of the
// sync-vs-async comparison (every species is a distinct molecular type to
// synthesize; every reaction a displacement pathway to engineer).
type Cost struct {
	Species   int
	Reactions int
	MaxOrder  int
	FastCount int
	SlowCount int
}

// CostOf computes the cost of a network.
func CostOf(n *crn.Network) Cost {
	c := Cost{Species: n.NumSpecies(), Reactions: n.NumReactions(), MaxOrder: n.MaxOrder()}
	for _, r := range n.Reactions() {
		if r.Cat == crn.Fast {
			c.FastCount++
		} else {
			c.SlowCount++
		}
	}
	return c
}

// StreamError summarizes the deviation between a molecular output stream
// and its golden reference.
type StreamError struct {
	Mean float64
	Max  float64
	N    int
}

// CompareStreams computes the error summary over the common prefix of the
// two streams.
func CompareStreams(got, want []float64) (StreamError, error) {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	if n == 0 {
		return StreamError{}, fmt.Errorf("analysis: empty stream comparison")
	}
	var se StreamError
	se.N = n
	for i := 0; i < n; i++ {
		d := math.Abs(got[i] - want[i])
		se.Mean += d
		if d > se.Max {
			se.Max = d
		}
	}
	se.Mean /= float64(n)
	return se, nil
}

// BitErrors counts positions where two decoded state sequences differ, over
// their common prefix.
func BitErrors(got, want []uint64) (errors, n int) {
	n = len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			errors++
		}
	}
	return errors, n
}
