// Package phases implements the tri-phase colour discipline that all of the
// paper's sequential constructs share (and that the companion IWBDA abstract
// spells out reaction-by-reaction):
//
//   - every stateful species is colour-coded red, green or blue;
//   - all state transfers move quantities from one colour to the next
//     (red→green, green→blue, blue→red);
//   - three global *absence indicators* — written r, g, b in the paper — are
//     produced by slow zero-order reactions and consumed quickly by any
//     species of the matching colour, so an indicator accumulates only while
//     its colour class is completely empty;
//   - a transfer out of colour c is gated by the absence indicator of the
//     *previous* colour (red→green waits for blue to empty, and so on),
//     which forces the three phases to alternate strictly;
//   - a positive-feedback construct (2G ⇌ I_G, I_G + R → 2G + G) makes each
//     transfer accelerate once it has begun, producing the crisp hand-offs
//     of the paper's figures.
//
// A Scheme collects colour membership and transfer declarations and then
// Build()s all of the above reactions into a crn.Network. The clock
// (package clock), the synchronous registers (package core) and the
// self-timed delay elements (package async) are all thin layers over this
// package.
package phases

import (
	"fmt"

	"repro/internal/crn"
	"repro/internal/obs"
)

// Color is one of the three transfer phases.
type Color int

const (
	Red Color = iota
	Green
	Blue
)

// Next returns the colour that follows c in the transfer cycle
// (red→green→blue→red).
func (c Color) Next() Color { return (c + 1) % 3 }

// Prev returns the colour that precedes c in the transfer cycle.
func (c Color) Prev() Color { return (c + 2) % 3 }

// String returns "red", "green" or "blue".
func (c Color) String() string {
	switch c {
	case Red:
		return "red"
	case Green:
		return "green"
	case Blue:
		return "blue"
	default:
		return fmt.Sprintf("Color(%d)", int(c))
	}
}

// indicatorSuffix is the paper's lower-case name for each colour's absence
// indicator.
func (c Color) indicatorSuffix() string {
	return [...]string{"r", "g", "b"}[c]
}

// Scheme accumulates colour members and transfers for one network and emits
// the full reaction set on Build. A network normally carries exactly one
// Scheme; sharing one scheme between the clock and the datapath is what
// synchronizes them (the common absence indicators order the phases of
// *all* members, as the companion abstract emphasizes).
type Scheme struct {
	net *crn.Network
	ns  string

	members    map[Color][]string
	memberSet  map[string]Color
	transfers  []transfer
	noFeedback bool
	built      bool
}

type transfer struct {
	name     string
	from     Color
	src      string
	srcCoeff int
	products map[string]int
}

// NewScheme creates a scheme over the network with the given namespace for
// its indicator species (e.g. ns "ph" yields species ph.r, ph.g, ph.b).
func NewScheme(net *crn.Network, ns string) *Scheme {
	s := &Scheme{
		net:       net,
		ns:        ns,
		members:   make(map[Color][]string),
		memberSet: make(map[string]Color),
	}
	for c := Red; c <= Blue; c++ {
		net.AddSpecies(s.Indicator(c))
	}
	return s
}

// Net returns the underlying network.
func (s *Scheme) Net() *crn.Network { return s.net }

// DisableFeedback omits the positive-feedback dimer machinery from Build.
// Correctness is unaffected — transfers still complete and phases still
// alternate — but hand-offs lose their sharpening. It exists for the
// ablation experiment (E11) quantifying what the paper's feedback reactions
// buy.
func (s *Scheme) DisableFeedback() { s.noFeedback = true }

// Indicator returns the name of colour c's absence indicator species.
func (s *Scheme) Indicator(c Color) string {
	return s.ns + "." + c.indicatorSuffix()
}

// Dimer returns the name of the positive-feedback dimer species of a member.
func (s *Scheme) Dimer(member string) string { return "I_" + member }

// MemberColor reports the colour of a registered member.
func (s *Scheme) MemberColor(name string) (Color, bool) {
	c, ok := s.memberSet[name]
	return c, ok
}

// Members returns the members of colour c in registration order.
func (s *Scheme) Members(c Color) []string {
	return append([]string(nil), s.members[c]...)
}

// AddMember registers a species as a member of colour c. Members consume
// their colour's absence indicator (so the indicator can only accumulate
// when every member of the colour is empty) and receive a positive-feedback
// dimer. Registering the same name twice with the same colour is a no-op;
// with a different colour it is an error.
func (s *Scheme) AddMember(c Color, name string) error {
	if s.built {
		return fmt.Errorf("phases: scheme %q already built", s.ns)
	}
	if prev, ok := s.memberSet[name]; ok {
		if prev != c {
			return fmt.Errorf("phases: species %q already a %s member, cannot also be %s", name, prev, c)
		}
		return nil
	}
	s.net.AddSpecies(name)
	s.memberSet[name] = c
	s.members[c] = append(s.members[c], name)
	return nil
}

// MustAddMember is AddMember that panics on error.
func (s *Scheme) MustAddMember(c Color, name string) {
	if err := s.AddMember(c, name); err != nil {
		panic(err)
	}
}

// AddTransfer declares a gated transfer consuming one unit of src (a member
// of colour from) and producing the given products per firing. Products that
// are scheme members must belong to colour from.Next(); non-member products
// (observation sinks) are allowed. The transfer is gated on the absence
// indicator of from.Prev() and accelerated by the feedback dimers of all
// from.Next() members, exactly as in the companion abstract's reactions
// (4)–(6).
func (s *Scheme) AddTransfer(name, src string, products map[string]int) error {
	return s.AddTransferN(name, src, 1, products)
}

// AddTransferN is AddTransfer with a stoichiometric coefficient q on the
// source (q units of src consumed per firing), used by rational-gain stages
// such as 2X → Y. For q > 1 the positive-feedback accelerators are omitted —
// they would require termolecular reactions — so such transfers complete on
// the slow timescale alone; correctness is unaffected because the phase
// cannot end until the source is exhausted.
func (s *Scheme) AddTransferN(name, src string, q int, products map[string]int) error {
	if s.built {
		return fmt.Errorf("phases: scheme %q already built", s.ns)
	}
	if q < 1 {
		return fmt.Errorf("phases: transfer %q: source coefficient %d < 1", name, q)
	}
	from, ok := s.memberSet[src]
	if !ok {
		return fmt.Errorf("phases: transfer %q: source %q is not a scheme member", name, src)
	}
	for p := range products {
		if pc, ok := s.memberSet[p]; ok && pc != from.Next() {
			return fmt.Errorf("phases: transfer %q: product %q is %s, want %s", name, p, pc, from.Next())
		}
	}
	prods := make(map[string]int, len(products))
	for p, c := range products {
		if c < 1 {
			return fmt.Errorf("phases: transfer %q: product %q coefficient %d < 1", name, p, c)
		}
		s.net.AddSpecies(p)
		prods[p] = c
	}
	s.transfers = append(s.transfers, transfer{name: name, from: from, src: src, srcCoeff: q, products: prods})
	return nil
}

// MustAddTransfer is AddTransfer that panics on error.
func (s *Scheme) MustAddTransfer(name, src string, products map[string]int) {
	if err := s.AddTransfer(name, src, products); err != nil {
		panic(err)
	}
}

// Build emits every reaction of the scheme into the network:
//
//	generators    ∅ →slow ind(c)                      (one per colour)
//	consumption   ind(c) + m →fast m                  (per member)
//	dimers        2m ⇌ I_m  (slow forward, fast back) (per member)
//	transfers     ind(prev) + q·src →slow products    (per transfer)
//	feedback      I_m + src →fast 2m + products       (per transfer × target member, q = 1 only)
//
// Build may be called once.
func (s *Scheme) Build() error {
	if s.built {
		return fmt.Errorf("phases: scheme %q already built", s.ns)
	}
	s.built = true
	n := s.net
	for c := Red; c <= Blue; c++ {
		ind := s.Indicator(c)
		if err := n.AddReaction("gen."+ind, nil, map[string]int{ind: 1}, crn.Slow, 1); err != nil {
			return err
		}
		for _, m := range s.members[c] {
			if err := n.AddReaction("absorb."+m,
				map[string]int{ind: 1, m: 1}, map[string]int{m: 1}, crn.Fast, 1); err != nil {
				return err
			}
			if s.noFeedback {
				continue
			}
			dim := s.Dimer(m)
			if err := n.AddReaction("dimerize."+m,
				map[string]int{m: 2}, map[string]int{dim: 1}, crn.Slow, 1); err != nil {
				return err
			}
			if err := n.AddReaction("undimerize."+m,
				map[string]int{dim: 1}, map[string]int{m: 2}, crn.Fast, 1); err != nil {
				return err
			}
		}
	}
	for _, tr := range s.transfers {
		gate := s.Indicator(tr.from.Prev())
		reactants := map[string]int{gate: 1, tr.src: tr.srcCoeff}
		if err := n.AddReaction("xfer."+tr.name, reactants, tr.products, crn.Slow, 1); err != nil {
			return err
		}
		if tr.srcCoeff != 1 || s.noFeedback {
			continue
		}
		for _, m := range s.members[tr.from.Next()] {
			prods := map[string]int{}
			for p, c := range tr.products {
				prods[p] += c
			}
			prods[m] += 2
			if err := n.AddReaction("fb."+tr.name+"."+m,
				map[string]int{s.Dimer(m): 1, tr.src: 1}, prods, crn.Fast, 1); err != nil {
				return err
			}
		}
	}
	return nil
}

// MustBuild is Build that panics on error.
func (s *Scheme) MustBuild() {
	if err := s.Build(); err != nil {
		panic(err)
	}
}

// PhaseWatcher returns a watcher that emits an obs.PhaseChange whenever the
// colour class holding the largest total member concentration changes —
// i.e. live tracking of the scheme's red/green/blue phase as simulation
// proceeds. eps is the minimum dominant mass for a phase to count (use a
// fraction of the circulating signal quantity to suppress hand-off chatter).
// Call after every member has been registered.
func (s *Scheme) PhaseWatcher(eps float64) *obs.PhaseWatcher {
	groups := make([]obs.PhaseGroup, 0, 3)
	for c := Red; c <= Blue; c++ {
		groups = append(groups, obs.PhaseGroup{Name: c.String(), Species: s.Members(c)})
	}
	return &obs.PhaseWatcher{Groups: groups, Eps: eps}
}

// IndicatorDutyWatcher returns a watcher recording the duty cycle of each
// absence indicator — the fraction of simulated time it spends at or above
// threshold — into reg as gauges duty_cycle{species=...}. The paper's
// discipline requires indicators to be high only in the short window while
// their colour class is empty, so a large duty cycle flags a stalled phase
// or a mis-gated transfer.
func (s *Scheme) IndicatorDutyWatcher(threshold float64, reg *obs.Registry) *obs.DutyWatcher {
	return &obs.DutyWatcher{
		Species:   []string{s.Indicator(Red), s.Indicator(Green), s.Indicator(Blue)},
		Threshold: threshold,
		Registry:  reg,
	}
}
