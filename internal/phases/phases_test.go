package phases

import (
	"context"
	"math"
	"testing"

	"repro/internal/crn"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestColorArithmetic(t *testing.T) {
	if Red.Next() != Green || Green.Next() != Blue || Blue.Next() != Red {
		t.Fatal("Next wrong")
	}
	if Red.Prev() != Blue || Green.Prev() != Red || Blue.Prev() != Green {
		t.Fatal("Prev wrong")
	}
	if Red.String() != "red" || Green.String() != "green" || Blue.String() != "blue" {
		t.Fatal("String wrong")
	}
}

func TestIndicatorNames(t *testing.T) {
	n := crn.NewNetwork()
	s := NewScheme(n, "ph")
	if s.Indicator(Red) != "ph.r" || s.Indicator(Green) != "ph.g" || s.Indicator(Blue) != "ph.b" {
		t.Fatalf("indicator names: %s %s %s", s.Indicator(Red), s.Indicator(Green), s.Indicator(Blue))
	}
	for c := Red; c <= Blue; c++ {
		if _, ok := n.SpeciesIndex(s.Indicator(c)); !ok {
			t.Fatalf("indicator %s not registered", s.Indicator(c))
		}
	}
}

func TestMemberRegistration(t *testing.T) {
	n := crn.NewNetwork()
	s := NewScheme(n, "ph")
	if err := s.AddMember(Red, "R1"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddMember(Red, "R1"); err != nil {
		t.Fatal("idempotent re-registration rejected:", err)
	}
	if err := s.AddMember(Green, "R1"); err == nil {
		t.Fatal("colour change accepted")
	}
	c, ok := s.MemberColor("R1")
	if !ok || c != Red {
		t.Fatalf("MemberColor = %v,%v", c, ok)
	}
	if got := s.Members(Red); len(got) != 1 || got[0] != "R1" {
		t.Fatalf("Members(Red) = %v", got)
	}
	if got := s.Members(Green); len(got) != 0 {
		t.Fatalf("Members(Green) = %v", got)
	}
}

func TestTransferValidation(t *testing.T) {
	n := crn.NewNetwork()
	s := NewScheme(n, "ph")
	s.MustAddMember(Red, "R1")
	s.MustAddMember(Green, "G1")
	s.MustAddMember(Blue, "B1")
	if err := s.AddTransfer("t", "nobody", map[string]int{"G1": 1}); err == nil {
		t.Fatal("unknown source accepted")
	}
	if err := s.AddTransfer("t", "R1", map[string]int{"B1": 1}); err == nil {
		t.Fatal("wrong-colour product accepted")
	}
	if err := s.AddTransfer("t", "R1", map[string]int{"G1": 0}); err == nil {
		t.Fatal("zero product coefficient accepted")
	}
	if err := s.AddTransferN("t", "R1", 0, map[string]int{"G1": 1}); err == nil {
		t.Fatal("zero source coefficient accepted")
	}
	// Sinks (non-members) are allowed products.
	if err := s.AddTransfer("ok", "R1", map[string]int{"G1": 1, "sink": 1}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildOnce(t *testing.T) {
	n := crn.NewNetwork()
	s := NewScheme(n, "ph")
	s.MustAddMember(Red, "R1")
	if err := s.Build(); err != nil {
		t.Fatal(err)
	}
	if err := s.Build(); err == nil {
		t.Fatal("double Build accepted")
	}
	if err := s.AddMember(Green, "G1"); err == nil {
		t.Fatal("AddMember after Build accepted")
	}
	if err := s.AddTransfer("t", "R1", nil); err == nil {
		t.Fatal("AddTransfer after Build accepted")
	}
}

// buildLoop constructs the minimal one-member-per-colour transfer loop (a
// single-element molecular clock) and returns its network.
func buildLoop(t *testing.T) *crn.Network {
	t.Helper()
	n := crn.NewNetwork()
	s := NewScheme(n, "ph")
	s.MustAddMember(Red, "R1")
	s.MustAddMember(Green, "G1")
	s.MustAddMember(Blue, "B1")
	s.MustAddTransfer("rg", "R1", map[string]int{"G1": 1})
	s.MustAddTransfer("gb", "G1", map[string]int{"B1": 1})
	s.MustAddTransfer("br", "B1", map[string]int{"R1": 1})
	s.MustBuild()
	if err := n.SetInit("R1", 1); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestBuildReactionInventory(t *testing.T) {
	n := buildLoop(t)
	// 3 generators + 3 consumption + 3 dimerize + 3 undimerize
	// + 3 gated transfers + 3 feedback (one target member each) = 18.
	if got := n.NumReactions(); got != 18 {
		t.Fatalf("NumReactions = %d, want 18\n%s", got, n)
	}
	if n.MaxOrder() != 2 {
		t.Fatalf("MaxOrder = %d, want 2", n.MaxOrder())
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildConservesSignalMass(t *testing.T) {
	n := buildLoop(t)
	weights := map[string]float64{
		"R1": 1, "G1": 1, "B1": 1,
		"I_R1": 2, "I_G1": 2, "I_B1": 2,
	}
	if !n.ConservedSum(weights) {
		t.Fatal("signal mass not statically conserved by the loop reactions")
	}
}

func TestLoopOscillates(t *testing.T) {
	n := buildLoop(t)
	// The companion abstract's simulations use kfast/kslow = 1000; at that
	// ratio the phase hand-offs are crisp (peaks near 1).
	tr, err := sim.Run(context.Background(), n, sim.Config{Rates: sim.Rates{Fast: 1000, Slow: 1}, TEnd: 120})
	if err != nil {
		t.Fatal(err)
	}
	// Sustained oscillation: the red member must rise through 0.5
	// repeatedly and regularly.
	period, rel, err := tr.Period("R1", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if period <= 0 {
		t.Fatalf("period = %g", period)
	}
	if rel > 0.15 {
		t.Fatalf("period regularity %.3f, want < 0.15 (period %g)", rel, period)
	}
	// All three phases participate.
	for _, sp := range []string{"R1", "G1", "B1"} {
		s := tr.MustSeries(sp)
		if trace.Max(s) < 0.8 {
			t.Fatalf("%s peak %.3f, want > 0.8", sp, trace.Max(s))
		}
	}
	// Phase exclusivity: no two phase signals materially coexist.
	r, g := tr.MustSeries("R1"), tr.MustSeries("G1")
	ov, err := trace.Overlap(r, g)
	if err != nil {
		t.Fatal(err)
	}
	if ov > 0.15 {
		t.Fatalf("R/G overlap %.3f, want < 0.15", ov)
	}
	// Dynamic conservation of signal mass.
	for k := 0; k < tr.Len(); k += 50 {
		sum := 0.0
		for sp, w := range map[string]float64{"R1": 1, "G1": 1, "B1": 1, "I_R1": 2, "I_G1": 2, "I_B1": 2} {
			i, _ := tr.Index(sp)
			sum += w * tr.Rows[k][i]
		}
		if math.Abs(sum-1) > 0.01 {
			t.Fatalf("signal mass at sample %d: %g", k, sum)
		}
	}
}

func TestTransferMovesFullQuantity(t *testing.T) {
	// A single gated transfer with no return path: all of R1 must end in
	// G1 (to within the indicator residue set by the rate ratio).
	n := crn.NewNetwork()
	s := NewScheme(n, "ph")
	s.MustAddMember(Red, "R1")
	s.MustAddMember(Green, "G1")
	s.MustAddTransfer("rg", "R1", map[string]int{"G1": 1})
	s.MustBuild()
	if err := n.SetInit("R1", 0.75); err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(context.Background(), n, sim.Config{Rates: sim.Rates{Fast: 200, Slow: 1}, TEnd: 30})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Final("G1"); math.Abs(got-0.75) > 0.02 {
		t.Fatalf("G1 final = %g, want 0.75", got)
	}
	if got := tr.Final("R1"); got > 0.02 {
		t.Fatalf("R1 residue = %g", got)
	}
}

func TestTransferNHalving(t *testing.T) {
	// 2R1 -> G1 implements an exact divide-by-two of the transferred
	// quantity (rational gain 1/2).
	n := crn.NewNetwork()
	s := NewScheme(n, "ph")
	s.MustAddMember(Red, "R1")
	s.MustAddMember(Green, "G1")
	if err := s.AddTransferN("halve", "R1", 2, map[string]int{"G1": 1}); err != nil {
		t.Fatal(err)
	}
	s.MustBuild()
	if err := n.SetInit("R1", 1); err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(context.Background(), n, sim.Config{Rates: sim.Rates{Fast: 200, Slow: 1}, TEnd: 200})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Final("G1"); math.Abs(got-0.5) > 0.03 {
		t.Fatalf("G1 final = %g, want 0.5", got)
	}
}

func TestFanoutTransfer(t *testing.T) {
	// One unit of R1 fans out into one unit each of two green targets.
	n := crn.NewNetwork()
	s := NewScheme(n, "ph")
	s.MustAddMember(Red, "R1")
	s.MustAddMember(Green, "Ga")
	s.MustAddMember(Green, "Gb")
	s.MustAddTransfer("fan", "R1", map[string]int{"Ga": 1, "Gb": 1})
	s.MustBuild()
	if err := n.SetInit("R1", 1); err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(context.Background(), n, sim.Config{TEnd: 30})
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range []string{"Ga", "Gb"} {
		if got := tr.Final(sp); math.Abs(got-1) > 0.03 {
			t.Fatalf("%s final = %g, want 1", sp, got)
		}
	}
}

func TestAccessorsAndMustPanics(t *testing.T) {
	n := crn.NewNetwork()
	s := NewScheme(n, "ph")
	if s.Net() != n {
		t.Fatal("Net accessor wrong")
	}
	s.MustAddMember(Red, "R1")
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("MustAddMember conflict did not panic")
			}
		}()
		s.MustAddMember(Green, "R1")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("MustAddTransfer on unknown source did not panic")
			}
		}()
		s.MustAddTransfer("t", "nobody", nil)
	}()
	s.MustBuild()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("double MustBuild did not panic")
			}
		}()
		s.MustBuild()
	}()
}

func TestDisableFeedbackOmitsDimers(t *testing.T) {
	n := crn.NewNetwork()
	s := NewScheme(n, "ph")
	s.DisableFeedback()
	s.MustAddMember(Red, "R1")
	s.MustAddMember(Green, "G1")
	s.MustAddTransfer("rg", "R1", map[string]int{"G1": 1})
	s.MustBuild()
	// 3 generators + 2 consumption + 1 gated transfer = 6; no dimers, no
	// feedback accelerators.
	if got := n.NumReactions(); got != 6 {
		t.Fatalf("NumReactions = %d, want 6\n%s", got, n)
	}
	if _, ok := n.SpeciesIndex(s.Dimer("R1")); ok {
		t.Fatal("dimer species created despite DisableFeedback")
	}
}

// TestSchemeWatchers runs the three-member loop with the scheme's phase and
// indicator-duty watchers attached: the dominant colour class must hand off
// repeatedly, and each absence indicator must spend only a minority of the
// run above threshold (the discipline allows it high only while its colour
// class is empty).
func TestSchemeWatchers(t *testing.T) {
	n := crn.NewNetwork()
	s := NewScheme(n, "ph")
	s.MustAddMember(Red, "R1")
	s.MustAddMember(Green, "G1")
	s.MustAddMember(Blue, "B1")
	s.MustAddTransfer("rg", "R1", map[string]int{"G1": 1})
	s.MustAddTransfer("gb", "G1", map[string]int{"B1": 1})
	s.MustAddTransfer("br", "B1", map[string]int{"R1": 1})
	s.MustBuild()
	if err := n.SetInit("R1", 1); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	_, err := sim.Run(context.Background(), n, sim.Config{
		Rates: sim.Rates{Fast: 500, Slow: 1},
		TEnd:  150,
		Obs:   obs.NewRegistryObserver(reg),
		Watchers: []obs.Watcher{
			s.PhaseWatcher(0.25),
			s.IndicatorDutyWatcher(0.1, reg),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	total := 0.0
	for _, col := range []string{"red", "green", "blue"} {
		total += snap[obs.Label("phase_changes_total", "to", col)]
	}
	if total < 6 {
		t.Fatalf("only %g phase changes recorded", total)
	}
	for c := Red; c <= Blue; c++ {
		key := obs.Label("duty_cycle", "species", s.Indicator(c))
		duty, ok := snap[key]
		if !ok {
			t.Fatalf("missing %s", key)
		}
		if duty <= 0 || duty > 0.6 {
			t.Errorf("%s = %g, want in (0, 0.6]", key, duty)
		}
	}
}
