package dsd

import (
	"context"
	"math"
	"testing"

	"repro/internal/crn"
	"repro/internal/sim"
	"repro/internal/trace"
)

var rates = sim.Rates{Fast: 50, Slow: 1}

// compare simulates the ideal and compiled networks and returns the maximum
// trajectory deviation over the named species.
func compare(t *testing.T, ideal *crn.Network, cmax, tEnd float64, names ...string) float64 {
	t.Helper()
	impl, _, err := Compile(ideal, Options{Rates: rates, Cmax: cmax})
	if err != nil {
		t.Fatal(err)
	}
	trIdeal, err := sim.Run(context.Background(), ideal, sim.Config{Rates: rates, TEnd: tEnd})
	if err != nil {
		t.Fatal(err)
	}
	trImpl, err := sim.Run(context.Background(), impl, sim.Config{Rates: rates, TEnd: tEnd})
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for _, name := range names {
		a, err := trIdeal.Resample(name, 0, tEnd, 200)
		if err != nil {
			t.Fatal(err)
		}
		b, err := trImpl.Resample(name, 0, tEnd, 200)
		if err != nil {
			t.Fatal(err)
		}
		d, err := trace.MaxAbsDiff(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

func TestCompileValidation(t *testing.T) {
	n := crn.NewNetwork()
	n.R("d", map[string]int{"A": 1}, map[string]int{"B": 1}, crn.Slow)
	if _, _, err := Compile(n, Options{Rates: rates, Cmax: 0}); err == nil {
		t.Fatal("zero Cmax accepted")
	}
	if _, _, err := Compile(n, Options{Rates: rates, Cmax: 10, QmaxFactor: 0.5}); err == nil {
		t.Fatal("QmaxFactor <= 1 accepted")
	}
	if _, _, err := Compile(n, Options{Rates: sim.Rates{Fast: 1, Slow: 2}, Cmax: 10}); err == nil {
		t.Fatal("inverted rates accepted")
	}
	tri := crn.NewNetwork()
	tri.R("t", map[string]int{"A": 3}, map[string]int{"B": 1}, crn.Slow)
	if _, _, err := Compile(tri, Options{Rates: rates, Cmax: 10}); err == nil {
		t.Fatal("termolecular reaction accepted")
	}
}

func TestStatsAndStructure(t *testing.T) {
	n := crn.NewNetwork()
	n.R("u", map[string]int{"A": 1}, map[string]int{"B": 1}, crn.Slow)
	n.R("b", map[string]int{"B": 1, "C": 1}, map[string]int{"D": 1}, crn.Fast)
	n.R("z", nil, map[string]int{"E": 1}, crn.Slow)
	impl, st, err := Compile(n, Options{Rates: rates, Cmax: 100})
	if err != nil {
		t.Fatal(err)
	}
	if st.ReactionsBefore != 3 {
		t.Fatalf("ReactionsBefore = %d", st.ReactionsBefore)
	}
	// uni: 2 reactions, bi: 4, zero: 1.
	if st.ReactionsAfter != 7 {
		t.Fatalf("ReactionsAfter = %d, want 7", st.ReactionsAfter)
	}
	// uni: G,T; bi: L,T; zero: G.
	if st.Fuels != 5 {
		t.Fatalf("Fuels = %d, want 5", st.Fuels)
	}
	if impl.MaxOrder() > 2 {
		t.Fatalf("compiled MaxOrder = %d", impl.MaxOrder())
	}
	// Fuels start at Cmax.
	if got := impl.InitOf("dsd0.G"); got != 100 {
		t.Fatalf("fuel init = %g", got)
	}
}

func TestUnimolecularFidelity(t *testing.T) {
	n := crn.NewNetwork()
	n.R("d", map[string]int{"A": 1}, map[string]int{"B": 1}, crn.Slow)
	if err := n.SetInit("A", 1); err != nil {
		t.Fatal(err)
	}
	if dev := compare(t, n, 100, 3, "A", "B"); dev > 0.05 {
		t.Fatalf("deviation %g at Cmax=100", dev)
	}
}

func TestBimolecularFidelity(t *testing.T) {
	n := crn.NewNetwork()
	n.R("r", map[string]int{"A": 1, "B": 1}, map[string]int{"C": 1}, crn.Slow)
	if err := n.SetInit("A", 1); err != nil {
		t.Fatal(err)
	}
	if err := n.SetInit("B", 0.8); err != nil {
		t.Fatal(err)
	}
	if dev := compare(t, n, 100, 4, "A", "B", "C"); dev > 0.05 {
		t.Fatalf("deviation %g at Cmax=100", dev)
	}
}

func TestDimerizationFidelity(t *testing.T) {
	n := crn.NewNetwork()
	n.R("r", map[string]int{"A": 2}, map[string]int{"C": 1}, crn.Slow)
	if err := n.SetInit("A", 1); err != nil {
		t.Fatal(err)
	}
	if dev := compare(t, n, 100, 4, "A", "C"); dev > 0.05 {
		t.Fatalf("deviation %g at Cmax=100", dev)
	}
}

func TestZeroOrderFidelity(t *testing.T) {
	n := crn.NewNetwork()
	n.R("gen", nil, map[string]int{"P": 1}, crn.Slow)
	if dev := compare(t, n, 200, 3, "P"); dev > 0.05 {
		t.Fatalf("deviation %g at Cmax=200", dev)
	}
}

func TestFidelityImprovesWithCmax(t *testing.T) {
	n := crn.NewNetwork()
	n.R("r", map[string]int{"A": 1, "B": 1}, map[string]int{"C": 1}, crn.Slow)
	n.R("d", map[string]int{"C": 1}, nil, crn.Slow)
	if err := n.SetInit("A", 1.2); err != nil {
		t.Fatal(err)
	}
	if err := n.SetInit("B", 1.0); err != nil {
		t.Fatal(err)
	}
	devLo := compare(t, n, 5, 4, "A", "B", "C")
	devHi := compare(t, n, 200, 4, "A", "B", "C")
	if devHi >= devLo {
		t.Fatalf("deviation did not improve: Cmax=5 → %g, Cmax=200 → %g", devLo, devHi)
	}
	if devHi > 0.03 {
		t.Fatalf("deviation %g at Cmax=200", devHi)
	}
}

func TestCompiledNetworkCatalysis(t *testing.T) {
	// A catalytic formal reaction (C + X → C + Y) must preserve the
	// catalyst through the DSD cascade.
	n := crn.NewNetwork()
	n.R("cat", map[string]int{"C": 1, "X": 1}, map[string]int{"C": 1, "Y": 1}, crn.Fast)
	if err := n.SetInit("C", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := n.SetInit("X", 1); err != nil {
		t.Fatal(err)
	}
	impl, _, err := Compile(n, Options{Rates: rates, Cmax: 100})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(context.Background(), impl, sim.Config{Rates: rates, TEnd: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Final("Y"); math.Abs(got-1) > 0.05 {
		t.Fatalf("Y = %g, want 1", got)
	}
	if got := tr.Final("C"); math.Abs(got-0.5) > 0.05 {
		t.Fatalf("catalyst C = %g, want 0.5", got)
	}
}
