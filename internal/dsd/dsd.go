// Package dsd compiles an ideal chemical reaction network into a DNA
// strand-displacement (DSD) implementation network, following the kinetic
// structure of Soloveichik, Seelig and Winfree's universal DNA substrate
// (PNAS 2010) — the experimental chassis the DAC 2011 paper names for its
// constructs. Each formal reaction becomes a short cascade of at-most-
// bimolecular displacement steps driven by fuel complexes present in large
// excess (Cmax); as the fuel excess grows, the implementation's kinetics
// converge to the ideal network's.
//
// The translation (k is the formal reaction's concrete rate):
//
//	zero-order  ∅ →k P        G →(k/Cmax) P + G'          G at Cmax
//	unimolecular X →k P…      X + G →(k/Cmax) O
//	                          O + T →(qmax)  P… + W       G, T at Cmax
//	bimolecular X1 + X2 →k P… X1 + L →(k)    B
//	                          B →(qmax·Cmax) X1 + L       (unbinding)
//	                          B + X2 →(qmax) O
//	                          O + T →(qmax)  P… + W       L, T at Cmax
//
// with qmax the fastest displacement rate (QmaxFactor times the Fast
// category base). The bimolecular intermediate B is kinetically equivalent
// to the paper's buffered two-step exchange: its fast unbinding keeps it at
// quasi-steady state [B] ≈ (k/qmax)[X1], giving the effective rate
// k·[X1][X2]/(1 + [X2]/Cmax). Every deviation term scales as signal/Cmax
// (fuel depletion, intermediate sequestration, rate deficit), which
// experiment E9 measures.
package dsd

import (
	"fmt"

	"repro/internal/crn"
	"repro/internal/sim"
)

// Stats summarizes the compilation blowup.
type Stats struct {
	SpeciesBefore   int
	SpeciesAfter    int
	ReactionsBefore int
	ReactionsAfter  int
	Fuels           int // fuel complexes introduced (each at Cmax)
}

// Options configures the compilation.
type Options struct {
	// Rates binds the ideal network's fast/slow categories so concrete
	// rate constants can be computed.
	Rates sim.Rates
	// Cmax is the fuel complex concentration (excess over the unit signal
	// scale). Fidelity improves as O(signal/Cmax).
	Cmax float64
	// QmaxFactor sets the maximum displacement rate as a multiple of the
	// Fast base: qmax = QmaxFactor·Rates.Fast. It must exceed 1 — the
	// fraction of a bimolecular reactant sequestered in intermediates is
	// k/qmax, so displacement must outpace the fastest formal reaction.
	// 0 selects the default of 10.
	QmaxFactor float64
}

// Compile translates the ideal network into its DSD implementation.
// Reactions above molecularity 2 are rejected (decompose rational gains
// into powers of two first). The input network is not modified.
func Compile(n *crn.Network, opts Options) (*crn.Network, Stats, error) {
	var st Stats
	rates := opts.Rates
	cmax := opts.Cmax
	if opts.QmaxFactor == 0 {
		opts.QmaxFactor = 10
	}
	if opts.QmaxFactor <= 1 {
		return nil, st, fmt.Errorf("dsd: QmaxFactor must exceed 1, got %g", opts.QmaxFactor)
	}
	if err := rates.Validate(); err != nil {
		return nil, st, err
	}
	if cmax <= 0 {
		return nil, st, fmt.Errorf("dsd: fuel excess Cmax must be positive, got %g", cmax)
	}
	if err := n.Validate(); err != nil {
		return nil, st, err
	}
	st.SpeciesBefore = n.NumSpecies()
	st.ReactionsBefore = n.NumReactions()

	out := crn.NewNetwork()
	for _, name := range n.SpeciesNames() {
		out.AddSpecies(name)
		if v := n.InitOf(name); v != 0 {
			if err := out.SetInit(name, v); err != nil {
				return nil, st, err
			}
		}
	}

	qmax := opts.QmaxFactor * rates.Fast
	// asMult expresses a concrete rate constant as a Fast-category
	// multiplier in the output network.
	asMult := func(k float64) float64 { return k / rates.Fast }

	addFuel := func(name string) error {
		st.Fuels++
		return out.SetInit(name, cmax)
	}
	products := func(r crn.Reaction) map[string]int {
		m := make(map[string]int, len(r.Products))
		for _, t := range r.Products {
			m[n.SpeciesName(t.Species)] += t.Coeff
		}
		return m
	}

	for i := 0; i < n.NumReactions(); i++ {
		r := n.Reaction(i)
		k := rates.Of(r)
		ns := fmt.Sprintf("dsd%d", i)
		switch r.Order() {
		case 0:
			g := ns + ".G"
			if err := addFuel(g); err != nil {
				return nil, st, err
			}
			prods := products(r)
			prods[ns+".Gspent"]++
			if err := out.AddReaction(ns+".src", map[string]int{g: 1}, prods, crn.Fast, asMult(k/cmax)); err != nil {
				return nil, st, err
			}
		case 1:
			x := n.SpeciesName(r.Reactants[0].Species)
			g, o, t, w := ns+".G", ns+".O", ns+".T", ns+".W"
			if err := addFuel(g); err != nil {
				return nil, st, err
			}
			if err := addFuel(t); err != nil {
				return nil, st, err
			}
			if err := out.AddReaction(ns+".bind",
				map[string]int{x: 1, g: 1}, map[string]int{o: 1}, crn.Fast, asMult(k/cmax)); err != nil {
				return nil, st, err
			}
			prods := products(r)
			prods[w]++
			if err := out.AddReaction(ns+".fire",
				map[string]int{o: 1, t: 1}, prods, crn.Fast, asMult(qmax)); err != nil {
				return nil, st, err
			}
		case 2:
			var x1, x2 string
			if len(r.Reactants) == 1 { // 2X -> ...
				x1 = n.SpeciesName(r.Reactants[0].Species)
				x2 = x1
			} else {
				x1 = n.SpeciesName(r.Reactants[0].Species)
				x2 = n.SpeciesName(r.Reactants[1].Species)
			}
			l, b, o, t, w := ns+".L", ns+".B", ns+".O", ns+".T", ns+".W"
			if err := addFuel(l); err != nil {
				return nil, st, err
			}
			if err := addFuel(t); err != nil {
				return nil, st, err
			}
			// Quasi-steady analysis: with binding at k, unbinding at
			// qmax·Cmax and the productive step at qmax, the intermediate
			// sits at [B] ≈ (k/qmax)[X1] and the net rate is
			// k·[X1][X2]/(1 + [X2]/Cmax) — the ideal rate with an
			// O(signal/Cmax) deficit.
			if err := out.AddReaction(ns+".bind",
				map[string]int{x1: 1, l: 1}, map[string]int{b: 1}, crn.Fast, asMult(k)); err != nil {
				return nil, st, err
			}
			if err := out.AddReaction(ns+".unbind",
				map[string]int{b: 1}, map[string]int{x1: 1, l: 1}, crn.Fast, asMult(qmax*cmax)); err != nil {
				return nil, st, err
			}
			if err := out.AddReaction(ns+".react",
				map[string]int{b: 1, x2: 1}, map[string]int{o: 1}, crn.Fast, asMult(qmax)); err != nil {
				return nil, st, err
			}
			prods := products(r)
			prods[w]++
			if err := out.AddReaction(ns+".fire",
				map[string]int{o: 1, t: 1}, prods, crn.Fast, asMult(qmax)); err != nil {
				return nil, st, err
			}
		default:
			return nil, st, fmt.Errorf("dsd: reaction %d (%s) has molecularity %d; DSD supports <= 2",
				i, n.FormatReaction(i), r.Order())
		}
	}
	st.SpeciesAfter = out.NumSpecies()
	st.ReactionsAfter = out.NumReactions()
	return out, st, nil
}
