// Package ode provides explicit ordinary-differential-equation integrators:
// an adaptive Dormand–Prince 5(4) method (the workhorse for mass-action
// simulation in package sim) and a fixed-step classical RK4 used for
// cross-checks. The package is generic — it knows nothing about chemistry.
package ode

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/obs"
)

// Func evaluates the derivative dy/dt at time t into dydt. Implementations
// must not retain y or dydt.
type Func func(t float64, y []float64, dydt []float64)

// Observer is called after every accepted step with the current time and
// state. The observer may modify y in place (e.g. to inject an input bolus);
// it must then return modified=true so the integrator refreshes its cached
// derivative. Returning stop=true ends integration early without error.
type Observer func(t float64, y []float64) (modified, stop bool)

// Options configures the adaptive integrator. Zero values select the
// documented defaults.
type Options struct {
	RelTol   float64 // relative tolerance, default 1e-6
	AbsTol   float64 // absolute tolerance, default 1e-9
	InitStep float64 // initial step size, default (t1-t0)/1e4
	MinStep  float64 // below this the integration fails, default (t1-t0)*1e-14
	MaxStep  float64 // cap on step size, default t1-t0
	MaxSteps int     // cap on accepted+rejected steps, default 50 million
	// NonNegative projects the state onto the non-negative orthant after
	// each accepted step. Mass-action kinetics is mathematically
	// non-negative, but roundoff can produce tiny negative excursions
	// that would feed back as negative rates; projection removes them.
	NonNegative bool
	// Obs receives step-level telemetry (accepted steps and error-control
	// rejections, with step size and error norm). Nil — the default —
	// disables instrumentation at the cost of one predictable branch per
	// step. The integrator emits only obs.Step events; run-level events
	// (SimStart/SimEnd) are the caller's responsibility.
	Obs obs.Observer
	// StiffDetect makes Integrate abandon the run with ErrStiff when the
	// error controller shows the signature of stiffness — at least
	// stiffRejects rejections inside a stiffWindow-step window while the
	// step size sits below span·stiffHFrac. On that return y0 holds the
	// state at the detection point and Stats.T the time reached, so the
	// caller can resume seamlessly with the stiff integrator. Pure
	// detection: when the heuristic never fires the integration is
	// unchanged.
	StiffDetect bool
}

func (o Options) withDefaults(span float64) Options {
	if o.RelTol <= 0 {
		o.RelTol = 1e-6
	}
	if o.AbsTol <= 0 {
		o.AbsTol = 1e-9
	}
	if o.InitStep <= 0 {
		o.InitStep = span / 1e4
	}
	if o.MaxStep <= 0 {
		o.MaxStep = span
	}
	if o.MinStep <= 0 {
		o.MinStep = span * 1e-14
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 50_000_000
	}
	return o
}

// ErrMinStep reports that the controller pushed the step size below MinStep,
// which usually means the problem is too stiff for an explicit method at the
// requested tolerance.
var ErrMinStep = errors.New("ode: step size underflow")

// ErrMaxSteps reports that MaxSteps was exhausted before reaching t1.
var ErrMaxSteps = errors.New("ode: step budget exhausted")

// ErrStiff reports that Options.StiffDetect recognised the problem as stiff
// for the explicit method. It is a handoff signal, not a failure: y0 and
// Stats.T carry the integration front so a stiff method can take over.
var ErrStiff = errors.New("ode: stiffness detected")

// Stiffness-detection heuristic (Options.StiffDetect): within each window
// of stiffWindow attempted steps, stiffRejects error-control rejections
// while h < span·stiffHFrac trigger ErrStiff. An explicit method on a stiff
// problem settles into stability-limited stepping — h pinned far below the
// span with the controller bouncing off the boundary — which is exactly
// this signature; a merely hard (but non-stiff) stretch rejects a few times
// and moves on without accumulating rejections at small h.
const (
	stiffWindow  = 64
	stiffRejects = 8
	stiffHFrac   = 1e-3
)

// ctxCheckEvery is how often (in accepted-plus-rejected steps) Integrate
// polls its context. 256 keeps the poll off the per-step hot path while still
// bounding the cancellation latency to a fraction of a millisecond for the
// mass-action systems in this repository (a step costs seven derivative
// evaluations).
const ctxCheckEvery = 256

// Dormand–Prince 5(4) coefficients.
var (
	dpC = [7]float64{0, 1.0 / 5, 3.0 / 10, 4.0 / 5, 8.0 / 9, 1, 1}
	dpA = [7][6]float64{
		{},
		{1.0 / 5},
		{3.0 / 40, 9.0 / 40},
		{44.0 / 45, -56.0 / 15, 32.0 / 9},
		{19372.0 / 6561, -25360.0 / 2187, 64448.0 / 6561, -212.0 / 729},
		{9017.0 / 3168, -355.0 / 33, 46732.0 / 5247, 49.0 / 176, -5103.0 / 18656},
		{35.0 / 384, 0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784, 11.0 / 84},
	}
	// dpE = b5 - b4: error estimator weights.
	dpE = [7]float64{
		35.0/384 - 5179.0/57600,
		0,
		500.0/1113 - 7571.0/16695,
		125.0/192 - 393.0/640,
		-2187.0/6784 + 92097.0/339200,
		11.0/84 - 187.0/2100,
		-1.0 / 40,
	}
)

// Stats reports integration effort. The factorization counters stay zero on
// the explicit path; T is maintained by both integrators so error returns
// (ErrStiff, ErrMinStep, …) carry the integration front alongside the state
// left in y0.
type Stats struct {
	Accepted       int     // accepted steps
	Rejected       int     // rejected trial steps
	Evals          int     // derivative evaluations
	JacEvals       int     // analytic Jacobian refills (stiff path)
	Factorizations int     // LU factorizations of the shifted matrix (stiff path)
	Solves         int     // triangular backsolves (stiff path)
	T              float64 // time reached when the integrator returned
}

// Add accumulates other into st, keeping the larger T — the merge used when
// an auto-switching run hands off between integrators.
func (st *Stats) Add(other Stats) {
	st.Accepted += other.Accepted
	st.Rejected += other.Rejected
	st.Evals += other.Evals
	st.JacEvals += other.JacEvals
	st.Factorizations += other.Factorizations
	st.Solves += other.Solves
	if other.T > st.T {
		st.T = other.T
	}
}

// Integrate advances y0 from t0 to t1 with the adaptive Dormand–Prince 5(4)
// method, calling cb (if non-nil) after every accepted step. y0 is modified
// in place and holds the final state on return.
//
// The context is polled every ctxCheckEvery (256) steps; on cancellation the
// integration stops and returns ctx.Err() wrapped with the time reached, so
// long integrations can actually be interrupted by timeouts or Ctrl-C. A nil
// ctx behaves like context.Background().
func Integrate(ctx context.Context, f Func, y0 []float64, t0, t1 float64, opts Options, cb Observer) (Stats, error) {
	var st Stats
	st.T = t0
	if t1 < t0 {
		return st, fmt.Errorf("ode: t1 (%g) < t0 (%g)", t1, t0)
	}
	if t1 == t0 {
		return st, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	o := opts.withDefaults(t1 - t0)

	n := len(y0)
	var k [7][]float64
	for i := range k {
		k[i] = make([]float64, n)
	}
	ytmp := make([]float64, n)
	ynew := make([]float64, n)

	t := t0
	h := math.Min(o.InitStep, o.MaxStep)
	f(t, y0, k[0])
	st.Evals++
	fsalValid := true
	// Stiffness-detection window counters (Options.StiffDetect).
	winSteps, winRejects := 0, 0

	for t < t1 {
		st.T = t
		if (st.Accepted+st.Rejected)%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return st, fmt.Errorf("ode: interrupted at t=%g of [%g,%g]: %w", t, t0, t1, err)
			}
		}
		if st.Accepted+st.Rejected >= o.MaxSteps {
			return st, fmt.Errorf("%w at t=%g (%d steps)", ErrMaxSteps, t, o.MaxSteps)
		}
		if h < o.MinStep {
			return st, fmt.Errorf("%w at t=%g (h=%g)", ErrMinStep, t, h)
		}
		if t+h > t1 {
			h = t1 - t
		}
		if !fsalValid {
			f(t, y0, k[0])
			st.Evals++
			fsalValid = true
		}
		// Stages 2..7.
		for s := 1; s < 7; s++ {
			for i := 0; i < n; i++ {
				acc := 0.0
				for j := 0; j < s; j++ {
					acc += dpA[s][j] * k[j][i]
				}
				ytmp[i] = y0[i] + h*acc
			}
			f(t+dpC[s]*h, ytmp, k[s])
			st.Evals++
		}
		// 5th-order solution is stage 7's ytmp (a7 row == b row); but the
		// last loop iteration left ytmp holding exactly that combination.
		copy(ynew, ytmp)

		// Error norm.
		errNorm := 0.0
		for i := 0; i < n; i++ {
			e := 0.0
			for j := 0; j < 7; j++ {
				e += dpE[j] * k[j][i]
			}
			e *= h
			sc := o.AbsTol + o.RelTol*math.Max(math.Abs(y0[i]), math.Abs(ynew[i]))
			r := e / sc
			errNorm += r * r
		}
		errNorm = math.Sqrt(errNorm / float64(n))

		if errNorm <= 1 || h <= o.MinStep*1.01 {
			// Accept.
			st.Accepted++
			t += h
			if o.Obs != nil {
				o.Obs.OnStep(obs.Step{T: t, H: h, ErrNorm: errNorm, Accepted: true})
			}
			copy(y0, ynew)
			if o.NonNegative {
				for i := range y0 {
					if y0[i] < 0 {
						y0[i] = 0
					}
				}
			}
			// FSAL: k7 becomes next k1.
			k[0], k[6] = k[6], k[0]
			if cb != nil {
				modified, stop := cb(t, y0)
				if modified {
					fsalValid = false
				}
				if stop {
					st.T = t
					return st, nil
				}
			}
			if o.NonNegative {
				// Projection may have changed the state the cached
				// derivative was computed for; refresh lazily only when
				// a clamp actually occurred is not tracked, so keep the
				// FSAL derivative: projection moves y by amounts within
				// the error tolerance.
				_ = 0
			}
		} else {
			st.Rejected++
			if o.Obs != nil {
				o.Obs.OnStep(obs.Step{T: t, H: h, ErrNorm: errNorm, Accepted: false})
			}
			if o.StiffDetect && h < (t1-t0)*stiffHFrac {
				winRejects++
			}
		}
		if o.StiffDetect {
			winSteps++
			if winRejects >= stiffRejects {
				st.T = t
				return st, fmt.Errorf("%w at t=%g (h=%g, %d rejections in %d steps)",
					ErrStiff, t, h, winRejects, winSteps)
			}
			if winSteps >= stiffWindow {
				winSteps, winRejects = 0, 0
			}
		}
		// PI-free elementary controller.
		fac := 0.9 * math.Pow(errNorm, -0.2)
		if errNorm == 0 {
			fac = 5
		}
		fac = math.Max(0.2, math.Min(5, fac))
		h = math.Min(h*fac, o.MaxStep)
	}
	st.T = t
	return st, nil
}

// RK4 advances y0 from t0 to t1 with the classical fixed-step fourth-order
// Runge–Kutta method using nsteps equal steps, calling cb (if non-nil)
// after every step. It exists for convergence cross-checks against the
// adaptive integrator.
func RK4(f Func, y0 []float64, t0, t1 float64, nsteps int, cb Observer) error {
	if nsteps <= 0 {
		return fmt.Errorf("ode: RK4 needs positive step count, got %d", nsteps)
	}
	if t1 < t0 {
		return fmt.Errorf("ode: t1 (%g) < t0 (%g)", t1, t0)
	}
	n := len(y0)
	h := (t1 - t0) / float64(nsteps)
	k1 := make([]float64, n)
	k2 := make([]float64, n)
	k3 := make([]float64, n)
	k4 := make([]float64, n)
	ytmp := make([]float64, n)
	t := t0
	for s := 0; s < nsteps; s++ {
		f(t, y0, k1)
		for i := 0; i < n; i++ {
			ytmp[i] = y0[i] + 0.5*h*k1[i]
		}
		f(t+0.5*h, ytmp, k2)
		for i := 0; i < n; i++ {
			ytmp[i] = y0[i] + 0.5*h*k2[i]
		}
		f(t+0.5*h, ytmp, k3)
		for i := 0; i < n; i++ {
			ytmp[i] = y0[i] + h*k3[i]
		}
		f(t+h, ytmp, k4)
		for i := 0; i < n; i++ {
			y0[i] += h / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
		}
		t = t0 + float64(s+1)*h
		if cb != nil {
			if _, stop := cb(t, y0); stop {
				return nil
			}
		}
	}
	return nil
}
