package ode

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// denseJac adapts a dense matrix-valued Jacobian function to the sparse
// Jacobian interface with an all-nonzero pattern — fine for the small test
// systems here.
type denseJac struct {
	n    int
	eval func(t float64, y []float64, m []float64) // row-major n×n
	m    []float64
}

func newDenseJac(n int, eval func(t float64, y, m []float64)) *denseJac {
	return &denseJac{n: n, eval: eval, m: make([]float64, n*n)}
}

func (d *denseJac) Dim() int { return d.n }

func (d *denseJac) Pattern() (colPtr, rowIdx []int32) {
	colPtr = make([]int32, d.n+1)
	rowIdx = make([]int32, d.n*d.n)
	for p := 0; p <= d.n; p++ {
		colPtr[p] = int32(p * d.n)
	}
	for p := 0; p < d.n; p++ {
		for r := 0; r < d.n; r++ {
			rowIdx[p*d.n+r] = int32(r)
		}
	}
	return colPtr, rowIdx
}

func (d *denseJac) Fill(t float64, y, nz []float64) {
	d.eval(t, y, d.m)
	for p := 0; p < d.n; p++ {
		for r := 0; r < d.n; r++ {
			nz[p*d.n+r] = d.m[r*d.n+p]
		}
	}
}

func TestStiffExponentialDecay(t *testing.T) {
	f := func(_ float64, y, dydt []float64) { dydt[0] = -2 * y[0] }
	jac := newDenseJac(1, func(_ float64, _, m []float64) { m[0] = -2 })
	y := []float64{1}
	st, err := IntegrateStiff(context.Background(), f, jac, y, 0, 3, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-6)
	if math.Abs(y[0]-want) > 1e-5 {
		t.Fatalf("y(3) = %g, want %g (accepted %d)", y[0], want, st.Accepted)
	}
	if st.Factorizations == 0 || st.JacEvals == 0 || st.Solves == 0 {
		t.Fatalf("stiff counters not maintained: %+v", st)
	}
	if st.T != 3 {
		t.Fatalf("Stats.T = %g, want 3", st.T)
	}
}

// TestStiffFastSlowSystem is the regime the integrator exists for: a linear
// fast/slow system with a 1000x rate separation. The stiff method must hit
// the answer with far fewer derivative evaluations than the explicit one.
func TestStiffFastSlowSystem(t *testing.T) {
	// y0' = -1000·(y0 − y1), y1' = -y1: y1 drags y0 along a slow manifold.
	f := func(_ float64, y, dydt []float64) {
		dydt[0] = -1000 * (y[0] - y[1])
		dydt[1] = -y[1]
	}
	jac := newDenseJac(2, func(_ float64, _, m []float64) {
		m[0], m[1] = -1000, 1000
		m[2], m[3] = 0, -1
	})
	span := 10.0

	yStiff := []float64{0, 1}
	stStiff, err := IntegrateStiff(context.Background(), f, jac, yStiff, 0, span, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	yExp := []float64{0, 1}
	stExp, err := Integrate(context.Background(), f, yExp, 0, span, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Both must agree with the exact slow component e^{-t}.
	want := math.Exp(-span)
	for name, y := range map[string][]float64{"stiff": yStiff, "explicit": yExp} {
		if math.Abs(y[1]-want) > 1e-4*want+1e-6 {
			t.Fatalf("%s: y1(%g) = %g, want %g", name, span, y[1], want)
		}
	}
	if math.Abs(yStiff[0]-yExp[0]) > 1e-4 {
		t.Fatalf("solvers disagree on y0: stiff %g vs explicit %g", yStiff[0], yExp[0])
	}
	if stStiff.Evals*5 > stExp.Evals {
		t.Fatalf("stiff solver not ≥5x cheaper: %d vs %d derivative evals", stStiff.Evals, stExp.Evals)
	}
}

// TestStiffObserverContract checks the Observer semantics match Integrate:
// modification refreshes the cached derivative, stop ends without error.
func TestStiffObserverContract(t *testing.T) {
	f := func(_ float64, y, dydt []float64) { dydt[0] = -y[0] }
	jac := newDenseJac(1, func(_ float64, _, m []float64) { m[0] = -1 })

	// Inject a bolus at t ≥ 1: the state jump must be integrated, not
	// overwritten by stale FSAL data.
	y := []float64{1}
	injected := false
	_, err := IntegrateStiff(context.Background(), f, jac, y, 0, 2, Options{MaxStep: 0.05}, func(tt float64, yy []float64) (bool, bool) {
		if !injected && tt >= 1 {
			injected = true
			yy[0] += 10
			return true, false
		}
		return false, false
	})
	if err != nil {
		t.Fatal(err)
	}
	if !injected {
		t.Fatal("observer never fired")
	}
	// y(2) ≈ e^{-2} + 10·e^{-(2-t_inj)} with t_inj ∈ [1, 1.05].
	lo := math.Exp(-2) + 10*math.Exp(-1)
	hi := math.Exp(-2) + 10*math.Exp(-0.95)
	if y[0] < lo*0.99 || y[0] > hi*1.01 {
		t.Fatalf("y(2) = %g, want within [%g, %g]", y[0], lo, hi)
	}

	// Stop request ends early without error.
	y = []float64{1}
	st, err := IntegrateStiff(context.Background(), f, jac, y, 0, 100, Options{MaxStep: 0.1}, func(tt float64, _ []float64) (bool, bool) {
		return false, tt >= 1
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.T < 1 || st.T > 1.2 {
		t.Fatalf("stopped at T=%g, want ~1", st.T)
	}
}

// TestStiffDetectHandoff drives the explicit integrator into its stiffness
// detector on a fast/slow system, then resumes with the stiff method from
// the returned front and checks the composite trajectory is still right.
func TestStiffDetectHandoff(t *testing.T) {
	f := func(_ float64, y, dydt []float64) {
		dydt[0] = -1e5 * (y[0] - y[1])
		dydt[1] = -y[1]
	}
	jac := newDenseJac(2, func(_ float64, _, m []float64) {
		m[0], m[1] = -1e5, 1e5
		m[2], m[3] = 0, -1
	})
	span := 10.0
	y := []float64{0, 1}
	st, err := Integrate(context.Background(), f, y, 0, span, Options{StiffDetect: true}, nil)
	if !errors.Is(err, ErrStiff) {
		t.Fatalf("explicit integrator returned %v, want ErrStiff", err)
	}
	if st.T < 0 || st.T >= span {
		t.Fatalf("detection front T=%g outside (0, %g)", st.T, span)
	}
	st2, err := IntegrateStiff(context.Background(), f, jac, y, st.T, span, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st2.T != span {
		t.Fatalf("resume reached T=%g, want %g", st2.T, span)
	}
	want := math.Exp(-span)
	if math.Abs(y[1]-want) > 1e-4*want+1e-6 {
		t.Fatalf("y1(%g) = %g after handoff, want %g", span, y[1], want)
	}
}

// TestStiffInnerLoopAllocs pins the hot-path contract: once a Stiff is
// constructed, repeated integrations — factorizations, solves, steps —
// allocate nothing.
func TestStiffInnerLoopAllocs(t *testing.T) {
	f := func(_ float64, y, dydt []float64) {
		dydt[0] = -500 * (y[0] - y[1])
		dydt[1] = -y[1]
	}
	jac := newDenseJac(2, func(_ float64, _, m []float64) {
		m[0], m[1] = -500, 500
		m[2], m[3] = 0, -1
	})
	s := NewStiff(jac)
	y := make([]float64, 2)
	ctx := context.Background()
	if n := testing.AllocsPerRun(20, func() {
		y[0], y[1] = 0, 1
		if _, err := s.Integrate(ctx, f, y, 0, 5, Options{}, nil); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("stiff integration allocates %v per run, want 0", n)
	}
}

// TestSparseLUAgainstDense factors random sparse matrices and checks
// M·(M⁻¹b) = b, exercising fill-in and the no-pivot topological order.
func TestSparseLUAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(20)
		// Random CSC pattern for J with ~25% density.
		var colPtr []int32
		var rowIdx []int32
		colPtr = append(colPtr, 0)
		for p := 0; p < n; p++ {
			for r := 0; r < n; r++ {
				if rng.Float64() < 0.25 {
					rowIdx = append(rowIdx, int32(r))
				}
			}
			colPtr = append(colPtr, int32(len(rowIdx)))
		}
		jnz := make([]float64, len(rowIdx))
		for i := range jnz {
			jnz[i] = rng.NormFloat64()
		}
		hd := 0.05 + 0.5*rng.Float64()

		lu := newSparseLU(n, colPtr, rowIdx)
		lu.setShifted(hd, jnz)
		if err := lu.factor(); err != nil {
			// Random matrices can legitimately produce a zero pivot
			// without pivoting; skip those draws.
			continue
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := make([]float64, n)
		lu.solve(b, x)

		// Dense M = I − hd·J for the residual check.
		dense := make([]float64, n*n)
		for p := 0; p < n; p++ {
			dense[p*n+p] = 1
			for e := colPtr[p]; e < colPtr[p+1]; e++ {
				dense[int(rowIdx[e])*n+p] -= hd * jnz[e]
			}
		}
		for r := 0; r < n; r++ {
			acc := 0.0
			for c := 0; c < n; c++ {
				acc += dense[r*n+c] * x[c]
			}
			if math.Abs(acc-b[r]) > 1e-7*(1+math.Abs(b[r])) {
				t.Fatalf("trial %d: residual row %d: M·x = %g, b = %g", trial, r, acc, b[r])
			}
		}
	}
}

// TestSparseLUSolveAliasing checks the documented b/out aliasing contract.
func TestSparseLUSolveAliasing(t *testing.T) {
	colPtr := []int32{0, 1, 2}
	rowIdx := []int32{1, 0} // J = [[0, a], [b, 0]]
	lu := newSparseLU(2, colPtr, rowIdx)
	lu.setShifted(0.1, []float64{2, 3})
	if err := lu.factor(); err != nil {
		t.Fatal(err)
	}
	b1 := []float64{1, 2}
	x := make([]float64, 2)
	lu.solve(b1, x)
	b2 := []float64{1, 2}
	lu.solve(b2, b2)
	if b2[0] != x[0] || b2[1] != x[1] {
		t.Fatalf("aliased solve %v != separate solve %v", b2, x)
	}
}
