package ode

import (
	"context"
	"fmt"
	"math"

	"repro/internal/obs"
)

// Jacobian supplies the sparse ∂f/∂y of a Func to the stiff integrator. The
// sparsity pattern must be fixed for the lifetime of the integration; Fill
// rewrites the nonzero values in pattern order and must not allocate (it
// runs on every Jacobian refresh). The package stays chemistry-free: sim
// adapts the kernel's compiled Jacobian to this interface.
type Jacobian interface {
	// Dim returns the system dimension n.
	Dim() int
	// Pattern returns the CSC sparsity pattern: column p's ascending row
	// indices are rowIdx[colPtr[p]:colPtr[p+1]]. The integrator treats the
	// slices as immutable.
	Pattern() (colPtr, rowIdx []int32)
	// Fill writes the Jacobian values at (t, y) into nz, one value per
	// pattern entry in pattern order.
	Fill(t float64, y []float64, nz []float64)
}

// Rosenbrock ode23s coefficients (Shampine & Reichelt, "The MATLAB ODE
// Suite"): a 2nd-order Rosenbrock-W method with a 3rd-order error estimate.
// Being a W-method it stays consistent with an out-of-date Jacobian — the
// price is error-control efficiency, not correctness — which is what makes
// the Jacobian-reuse policy below safe.
var (
	rosD   = 1 / (2 + math.Sqrt2)
	rosE32 = 6 + math.Sqrt2
)

// maxJacAge is the Jacobian-staleness cap: after this many accepted steps on
// one factorization the integrator refreshes J and refactors even if the
// step size hasn't moved. Analytic refills are cheap (one sweep of the
// sparse pattern) — the cap mainly bounds how stale a W-method Jacobian can
// get before error control starts paying for it in rejections.
const maxJacAge = 25

// hGrowDeadband is the step-growth deadband: an accepted step only grows h
// when the controller asks for at least this factor. Growing h forces a
// refactorization, so tiny oscillating adjustments would turn every step
// into a factorization; holding h flat keeps the factorization warm.
const hGrowDeadband = 1.2

// Stiff is a reusable Rosenbrock-W (ode23s) integrator bound to one Jacobian
// sparsity pattern. The constructor performs every allocation — workspaces,
// symbolic factorization — so Integrate itself allocates nothing on the
// per-step path (pinned by TestStiffInnerLoopAllocs) and one Stiff can be
// reused across repeated integrations of the same system. A Stiff is not
// safe for concurrent use.
type Stiff struct {
	jac Jacobian
	lu  *sparseLU
	jnz []float64

	f0, f1, f2 []float64
	k1, k2, k3 []float64
	ytmp, ynew []float64
}

// NewStiff builds a stiff integrator for the given Jacobian, running the
// symbolic factorization of the shifted matrix I − h·d·J once.
func NewStiff(jac Jacobian) *Stiff {
	n := jac.Dim()
	colPtr, rowIdx := jac.Pattern()
	return &Stiff{
		jac:  jac,
		lu:   newSparseLU(n, colPtr, rowIdx),
		jnz:  make([]float64, len(rowIdx)),
		f0:   make([]float64, n),
		f1:   make([]float64, n),
		f2:   make([]float64, n),
		k1:   make([]float64, n),
		k2:   make([]float64, n),
		k3:   make([]float64, n),
		ytmp: make([]float64, n),
		ynew: make([]float64, n),
	}
}

// IntegrateStiff advances y0 from t0 to t1 with the Rosenbrock-W method,
// mirroring Integrate's contract (Options, Observer, context polling, y0
// modified in place). Callers integrating the same system repeatedly should
// allocate a Stiff once and call its Integrate method instead.
func IntegrateStiff(ctx context.Context, f Func, jac Jacobian, y0 []float64, t0, t1 float64, opts Options, cb Observer) (Stats, error) {
	return NewStiff(jac).Integrate(ctx, f, y0, t0, t1, opts, cb)
}

// Integrate advances y0 from t0 to t1, calling cb (if non-nil) after every
// accepted step. y0 is modified in place and holds the final state on
// return; Stats.T reports the time reached on both success and failure.
//
// Per attempted step the method costs three derivative evaluations and
// three triangular solves; a factorization of I − h·d·J is amortized across
// steps and only recomputed when h changes, the observer modifies the
// state, or the Jacobian ages past maxJacAge accepted steps.
func (s *Stiff) Integrate(ctx context.Context, f Func, y0 []float64, t0, t1 float64, opts Options, cb Observer) (Stats, error) {
	var st Stats
	st.T = t0
	if t1 < t0 {
		return st, fmt.Errorf("ode: t1 (%g) < t0 (%g)", t1, t0)
	}
	if t1 == t0 {
		return st, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if n := s.jac.Dim(); len(y0) != n {
		return st, fmt.Errorf("ode: state dimension %d != Jacobian dimension %d", len(y0), n)
	}
	o := opts.withDefaults(t1 - t0)
	n := len(y0)

	t := t0
	h := math.Min(o.InitStep, o.MaxStep)
	f(t, y0, s.f0)
	st.Evals++

	hFact := 0.0 // step size of the current factorization; 0 = none
	jacAge := 0

	for t < t1 {
		st.T = t
		if (st.Accepted+st.Rejected)%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return st, fmt.Errorf("ode: interrupted at t=%g of [%g,%g]: %w", t, t0, t1, err)
			}
		}
		if st.Accepted+st.Rejected >= o.MaxSteps {
			return st, fmt.Errorf("%w at t=%g (%d steps)", ErrMaxSteps, t, o.MaxSteps)
		}
		if h < o.MinStep {
			return st, fmt.Errorf("%w at t=%g (h=%g)", ErrMinStep, t, h)
		}
		if t+h > t1 {
			h = t1 - t
		}

		// (Re)factor the shifted matrix when the step size moved or the
		// Jacobian went stale. Every factorization refills J at the current
		// state — the analytic refill is far cheaper than the factorization
		// it feeds.
		if h != hFact || jacAge >= maxJacAge {
			s.jac.Fill(t, y0, s.jnz)
			st.JacEvals++
			s.lu.setShifted(h*rosD, s.jnz)
			if err := s.lu.factor(); err != nil {
				// Singular shifted matrix: treat as a rejection and shrink.
				st.Rejected++
				hFact = 0
				h *= 0.5
				continue
			}
			st.Factorizations++
			hFact = h
			jacAge = 0
		}

		// ode23s stages. k1 = W⁻¹·f0.
		s.lu.solve(s.f0, s.k1)
		// f1 = f(t + h/2, y + (h/2)·k1).
		for i := 0; i < n; i++ {
			s.ytmp[i] = y0[i] + 0.5*h*s.k1[i]
		}
		f(t+0.5*h, s.ytmp, s.f1)
		// k2 = W⁻¹·(f1 − k1) + k1.
		for i := 0; i < n; i++ {
			s.ytmp[i] = s.f1[i] - s.k1[i]
		}
		s.lu.solve(s.ytmp, s.k2)
		for i := 0; i < n; i++ {
			s.k2[i] += s.k1[i]
		}
		// ynew = y + h·k2; f2 = f(t+h, ynew).
		for i := 0; i < n; i++ {
			s.ynew[i] = y0[i] + h*s.k2[i]
		}
		f(t+h, s.ynew, s.f2)
		// k3 = W⁻¹·(f2 − e32·(k2 − f1) − 2·(k1 − f0)).
		for i := 0; i < n; i++ {
			s.ytmp[i] = s.f2[i] - rosE32*(s.k2[i]-s.f1[i]) - 2*(s.k1[i]-s.f0[i])
		}
		s.lu.solve(s.ytmp, s.k3)
		st.Evals += 2
		st.Solves += 3

		// Embedded error estimate: err = (h/6)·(k1 − 2k2 + k3).
		errNorm := 0.0
		for i := 0; i < n; i++ {
			e := h / 6 * (s.k1[i] - 2*s.k2[i] + s.k3[i])
			sc := o.AbsTol + o.RelTol*math.Max(math.Abs(y0[i]), math.Abs(s.ynew[i]))
			r := e / sc
			errNorm += r * r
		}
		errNorm = math.Sqrt(errNorm / float64(n))

		if errNorm <= 1 || h <= o.MinStep*1.01 {
			st.Accepted++
			t += h
			st.T = t
			jacAge++
			if o.Obs != nil {
				o.Obs.OnStep(obs.Step{T: t, H: h, ErrNorm: errNorm, Accepted: true})
			}
			copy(y0, s.ynew)
			if o.NonNegative {
				for i := range y0 {
					if y0[i] < 0 {
						y0[i] = 0
					}
				}
			}
			// FSAL: f2 at ynew is next step's f0. Projection perturbs the
			// state within tolerance, same reasoning as the explicit path.
			s.f0, s.f2 = s.f2, s.f0
			if cb != nil {
				modified, stop := cb(t, y0)
				if modified {
					// State jumped: recompute the cached derivative and
					// force a fresh Jacobian before the next step.
					f(t, y0, s.f0)
					st.Evals++
					hFact = 0
				}
				if stop {
					return st, nil
				}
			}
			// Step-growth deadband: growing h means refactoring, so only
			// grow when the controller is emphatic.
			fac := 0.9 * math.Pow(errNorm, -1.0/3)
			if errNorm == 0 {
				fac = 5
			}
			fac = math.Min(5, fac)
			if fac >= hGrowDeadband {
				h = math.Min(h*fac, o.MaxStep)
			}
		} else {
			st.Rejected++
			if o.Obs != nil {
				o.Obs.OnStep(obs.Step{T: t, H: h, ErrNorm: errNorm, Accepted: false})
			}
			fac := math.Max(0.2, 0.9*math.Pow(errNorm, -1.0/3))
			h *= fac
		}
	}
	st.T = t
	return st, nil
}
