package ode

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestExponentialDecay(t *testing.T) {
	f := func(_ float64, y, dydt []float64) { dydt[0] = -2 * y[0] }
	y := []float64{1}
	st, err := Integrate(context.Background(), f, y, 0, 3, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-6)
	if math.Abs(y[0]-want) > 1e-6 {
		t.Fatalf("y(3) = %g, want %g (accepted %d steps)", y[0], want, st.Accepted)
	}
}

func TestHarmonicOscillator(t *testing.T) {
	// y'' = -y, integrated as a system; energy must be conserved to tolerance.
	f := func(_ float64, y, dydt []float64) {
		dydt[0] = y[1]
		dydt[1] = -y[0]
	}
	y := []float64{1, 0}
	if _, err := Integrate(context.Background(), f, y, 0, 20*math.Pi, Options{RelTol: 1e-9, AbsTol: 1e-12}, nil); err != nil {
		t.Fatal(err)
	}
	if math.Abs(y[0]-1) > 1e-6 || math.Abs(y[1]) > 1e-6 {
		t.Fatalf("after 10 periods: y = %v, want [1 0]", y)
	}
}

func TestStiffLinearDecay(t *testing.T) {
	// Fast rate typical of the kfast=1000 regime used in the benchmarks.
	f := func(_ float64, y, dydt []float64) { dydt[0] = -1000 * y[0] }
	y := []float64{1}
	if _, err := Integrate(context.Background(), f, y, 0, 1, Options{}, nil); err != nil {
		t.Fatal(err)
	}
	if y[0] > 1e-8 {
		t.Fatalf("y(1) = %g, want ~0", y[0])
	}
}

func TestNonAutonomous(t *testing.T) {
	// y' = t  ->  y(t) = t^2/2.
	f := func(tt float64, _, dydt []float64) { dydt[0] = tt }
	y := []float64{0}
	if _, err := Integrate(context.Background(), f, y, 0, 4, Options{}, nil); err != nil {
		t.Fatal(err)
	}
	if math.Abs(y[0]-8) > 1e-6 {
		t.Fatalf("y(4) = %g, want 8", y[0])
	}
}

func TestObserverStop(t *testing.T) {
	f := func(_ float64, y, dydt []float64) { dydt[0] = 1 }
	y := []float64{0}
	var lastT float64
	obs := func(tt float64, y []float64) (bool, bool) {
		lastT = tt
		return false, y[0] >= 1
	}
	if _, err := Integrate(context.Background(), f, y, 0, 100, Options{MaxStep: 0.25}, obs); err != nil {
		t.Fatal(err)
	}
	if lastT >= 100 || y[0] < 1 {
		t.Fatalf("stop ignored: t=%g y=%g", lastT, y[0])
	}
}

func TestObserverModification(t *testing.T) {
	// Decay with a mid-flight bolus injected by the observer.
	f := func(_ float64, y, dydt []float64) { dydt[0] = -y[0] }
	y := []float64{1}
	injected := false
	obs := func(tt float64, y []float64) (bool, bool) {
		if tt >= 1 && !injected {
			injected = true
			y[0] += 5
			return true, false
		}
		return false, false
	}
	if _, err := Integrate(context.Background(), f, y, 0, 2, Options{MaxStep: 0.05}, obs); err != nil {
		t.Fatal(err)
	}
	if !injected {
		t.Fatal("observer never injected")
	}
	// Expected: exp(-2) + 5*exp(-(2-tinj)), tinj within one max step of 1.
	lo := math.Exp(-2) + 5*math.Exp(-1.0)
	hi := math.Exp(-2) + 5*math.Exp(-(2-1.05))
	if y[0] < lo*0.99 || y[0] > hi*1.01 {
		t.Fatalf("y(2) = %g, want in [%g, %g]", y[0], lo, hi)
	}
}

func TestNonNegativeProjection(t *testing.T) {
	// Strong linear decay overshoots slightly without projection at loose
	// tolerance; with projection the state stays >= 0 at every observed step.
	f := func(_ float64, y, dydt []float64) { dydt[0] = -50 * y[0] }
	y := []float64{1}
	minSeen := math.Inf(1)
	obs := func(_ float64, y []float64) (bool, bool) {
		if y[0] < minSeen {
			minSeen = y[0]
		}
		return false, false
	}
	if _, err := Integrate(context.Background(), f, y, 0, 2, Options{NonNegative: true, RelTol: 1e-3, AbsTol: 1e-6}, obs); err != nil {
		t.Fatal(err)
	}
	if minSeen < 0 {
		t.Fatalf("negative state observed: %g", minSeen)
	}
}

func TestMaxStepsError(t *testing.T) {
	f := func(_ float64, y, dydt []float64) { dydt[0] = 1 }
	y := []float64{0}
	_, err := Integrate(context.Background(), f, y, 0, 1, Options{MaxSteps: 3, MaxStep: 1e-6, InitStep: 1e-6}, nil)
	if !errors.Is(err, ErrMaxSteps) {
		t.Fatalf("err = %v, want ErrMaxSteps", err)
	}
}

func TestBackwardTimeRejected(t *testing.T) {
	f := func(_ float64, y, dydt []float64) { dydt[0] = 1 }
	if _, err := Integrate(context.Background(), f, []float64{0}, 1, 0, Options{}, nil); err == nil {
		t.Fatal("backward integration accepted")
	}
	if err := RK4(f, []float64{0}, 1, 0, 10, nil); err == nil {
		t.Fatal("RK4 backward integration accepted")
	}
}

func TestZeroSpan(t *testing.T) {
	f := func(_ float64, y, dydt []float64) { dydt[0] = 1 }
	y := []float64{7}
	st, err := Integrate(context.Background(), f, y, 2, 2, Options{}, nil)
	if err != nil || st.Accepted != 0 || y[0] != 7 {
		t.Fatalf("zero-span integrate: %v %+v %v", err, st, y)
	}
}

func TestRK4Accuracy(t *testing.T) {
	f := func(_ float64, y, dydt []float64) { dydt[0] = -y[0] }
	y := []float64{1}
	if err := RK4(f, y, 0, 1, 1000, nil); err != nil {
		t.Fatal(err)
	}
	if math.Abs(y[0]-math.Exp(-1)) > 1e-10 {
		t.Fatalf("RK4 y(1) = %g", y[0])
	}
	if err := RK4(f, y, 0, 1, 0, nil); err == nil {
		t.Fatal("RK4 with zero steps accepted")
	}
}

func TestRK4ConvergenceOrder(t *testing.T) {
	// Halving the step should cut the error by ~2^4.
	f := func(tt float64, y, dydt []float64) { dydt[0] = math.Cos(tt) * y[0] }
	exact := math.Exp(math.Sin(2))
	errAt := func(n int) float64 {
		y := []float64{1}
		if err := RK4(f, y, 0, 2, n, nil); err != nil {
			t.Fatal(err)
		}
		return math.Abs(y[0] - exact)
	}
	e1, e2 := errAt(50), errAt(100)
	ratio := e1 / e2
	if ratio < 10 || ratio > 26 {
		t.Fatalf("convergence ratio %g, want ~16 (e1=%g e2=%g)", ratio, e1, e2)
	}
}

// Property: for random decay rates and horizons the adaptive solution matches
// the closed form.
func TestQuickLinearDecay(t *testing.T) {
	prop := func(kRaw, tRaw uint8) bool {
		k := 0.1 + float64(kRaw)/16    // 0.1 .. ~16
		tEnd := 0.1 + float64(tRaw)/64 // 0.1 .. ~4.1
		f := func(_ float64, y, dydt []float64) { dydt[0] = -k * y[0] }
		y := []float64{1}
		if _, err := Integrate(context.Background(), f, y, 0, tEnd, Options{}, nil); err != nil {
			return false
		}
		want := math.Exp(-k * tEnd)
		return math.Abs(y[0]-want) < 1e-5*(1+want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the adaptive integrator and RK4 with many steps agree on a
// random two-species linear system.
func TestQuickAdaptiveVsRK4(t *testing.T) {
	prop := func(aRaw, bRaw uint8) bool {
		a := float64(aRaw)/64 + 0.1
		b := float64(bRaw)/64 + 0.1
		f := func(_ float64, y, dydt []float64) {
			dydt[0] = -a*y[0] + b*y[1]
			dydt[1] = a*y[0] - b*y[1]
		}
		y1 := []float64{1, 0}
		if _, err := Integrate(context.Background(), f, y1, 0, 2, Options{RelTol: 1e-8, AbsTol: 1e-11}, nil); err != nil {
			return false
		}
		y2 := []float64{1, 0}
		if err := RK4(f, y2, 0, 2, 4000, nil); err != nil {
			return false
		}
		return math.Abs(y1[0]-y2[0]) < 1e-6 && math.Abs(y1[1]-y2[1]) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestIntegrateCanceled checks the two cancellation paths: an already-dead
// context stops the integration at the first poll, and a deadline interrupts
// a long integration mid-flight. Both must surface the context error and the
// time reached.
func TestIntegrateCanceled(t *testing.T) {
	f := func(_ float64, y, dydt []float64) { dydt[0] = -y[0] }

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Integrate(ctx, f, []float64{1}, 0, 10, Options{}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled context: err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "t=") {
		t.Fatalf("cancellation error carries no time-reached context: %v", err)
	}

	// A step cap far below the horizon forces millions of steps; the
	// deadline must cut them short long before MaxSteps is reached.
	ctx, cancel = context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	y := []float64{1}
	_, err = Integrate(ctx, f, y, 0, 1e9, Options{MaxStep: 1e-3, InitStep: 1e-3}, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline: err = %v, want context.DeadlineExceeded", err)
	}
}
