package ode

import (
	"errors"
	"math"
)

// sparseLU is a pattern-reusing sparse LU factorization of the Rosenbrock
// shifted matrix M = I − h·d·J, where J is a Jacobian with a fixed CSC
// sparsity pattern. Because the pattern never changes across an integration,
// the symbolic analysis — the fill-in pattern of L and U under left-looking
// Gilbert–Peierls elimination without pivoting — runs once in newSparseLU;
// every later (h, J) combination reuses it, so setShifted+factor+solve
// allocate nothing (pinned by TestStiffInnerLoopAllocs).
//
// No pivoting is safe here in the same sense the W-method itself is: the
// shifted matrix is I − h·d·J with h·d small against the fast eigenvalues
// the factorization matters for, so it is strongly diagonally weighted; if a
// pivot still collapses, factor reports errSingular and the integrator
// rejects the step and shrinks h rather than patching the factorization.
type sparseLU struct {
	n int

	// M in CSC. Pattern = pattern(J) ∪ diagonal. vals is refilled by
	// setShifted; jmap[e] is the M slot of J's e-th nonzero and diagSlot[p]
	// the M slot of (p,p).
	mColPtr  []int32
	mRowIdx  []int32
	mVals    []float64
	jmap     []int32
	diagSlot []int32

	// L strictly lower and U upper (diagonal last in each column), both CSC
	// with ascending rows; the patterns come from the symbolic phase and the
	// values are rewritten by every factor call.
	lColPtr []int32
	lRowIdx []int32
	lVals   []float64
	uColPtr []int32
	uRowIdx []int32
	uVals   []float64

	// x is the dense accumulator column of the numeric phase; also the
	// scratch vector of solve.
	x []float64
}

// errSingular reports a collapsed pivot during numeric factorization. The
// integrator treats it like an error-control rejection: shrink h and retry.
var errSingular = errors.New("ode: singular shifted matrix (zero pivot)")

// minPivot is the absolute pivot magnitude below which factor gives up.
// The shifted matrix has unit diagonal weighting, so a pivot this small
// means genuine (near-)singularity, not scaling.
const minPivot = 1e-280

// newSparseLU builds the shifted-matrix pattern and the symbolic L/U fill
// pattern for a Jacobian with the given n-column CSC sparsity structure.
func newSparseLU(n int, jColPtr, jRowIdx []int32) *sparseLU {
	lu := &sparseLU{n: n}

	// Pattern of M = pattern(J) ∪ diagonal, rows ascending per column.
	lu.mColPtr = make([]int32, n+1)
	lu.jmap = make([]int32, len(jRowIdx))
	lu.diagSlot = make([]int32, n)
	mRows := make([]int32, 0, len(jRowIdx)+n)
	for p := 0; p < n; p++ {
		lu.mColPtr[p] = int32(len(mRows))
		lo, hi := jColPtr[p], jColPtr[p+1]
		diagDone := false
		for e := lo; e < hi; e++ {
			r := jRowIdx[e]
			if !diagDone && r >= int32(p) {
				if r != int32(p) {
					lu.diagSlot[p] = int32(len(mRows))
					mRows = append(mRows, int32(p))
				}
				diagDone = true
			}
			if r == int32(p) {
				lu.diagSlot[p] = int32(len(mRows))
			}
			lu.jmap[e] = int32(len(mRows))
			mRows = append(mRows, r)
		}
		if !diagDone {
			lu.diagSlot[p] = int32(len(mRows))
			mRows = append(mRows, int32(p))
		}
	}
	lu.mColPtr[n] = int32(len(mRows))
	lu.mRowIdx = mRows
	lu.mVals = make([]float64, len(mRows))

	// Symbolic elimination: with no pivoting the fill pattern of column j is
	// the rows of M(:,j) closed under "k in pattern, k < j ⇒ rows of L(:,k)
	// in pattern". Left-looking order makes each L column complete before it
	// is merged. The O(n) sweep per column is fine: this runs once per
	// integration, not per step.
	mark := make([]bool, n)
	lu.lColPtr = make([]int32, n+1)
	lu.uColPtr = make([]int32, n+1)
	var lRows, uRows []int32
	for j := 0; j < n; j++ {
		for e := lu.mColPtr[j]; e < lu.mColPtr[j+1]; e++ {
			mark[lu.mRowIdx[e]] = true
		}
		mark[j] = true // diagonal always structurally present
		for k := 0; k < j; k++ {
			if !mark[k] {
				continue
			}
			for e := lu.lColPtr[k]; e < lu.lColPtr[k+1]; e++ {
				mark[lu.lRowIdx[e]] = true
			}
		}
		for k := 0; k <= j; k++ { // ascending; diagonal lands last
			if mark[k] {
				uRows = append(uRows, int32(k))
			}
		}
		for i := j + 1; i < n; i++ {
			if mark[i] {
				lRows = append(lRows, int32(i))
			}
		}
		lu.uColPtr[j+1] = int32(len(uRows))
		lu.lColPtr[j+1] = int32(len(lRows))
		for i := range mark {
			mark[i] = false
		}
		// Reassign each column: append may have moved the backing array, and
		// the next column's merge reads lu.lRowIdx.
		lu.lRowIdx = lRows
		lu.uRowIdx = uRows
	}
	lu.lVals = make([]float64, len(lRows))
	lu.uVals = make([]float64, len(uRows))
	lu.x = make([]float64, n)
	return lu
}

// setShifted fills M = I − hd·J from the Jacobian nonzeros. jnz must be in
// the CSC order newSparseLU was built from.
func (lu *sparseLU) setShifted(hd float64, jnz []float64) {
	for i := range lu.mVals {
		lu.mVals[i] = 0
	}
	for e, slot := range lu.jmap {
		lu.mVals[slot] = -hd * jnz[e]
	}
	for p := 0; p < lu.n; p++ {
		lu.mVals[lu.diagSlot[p]] += 1
	}
}

// factor runs the numeric left-looking factorization M = L·U over the
// precomputed symbolic pattern. Without pivoting the ascending row order of
// each U column is a valid topological order: the update from pivot k only
// touches rows > k, so by the time row k is read it is final.
func (lu *sparseLU) factor() error {
	x := lu.x
	for j := 0; j < lu.n; j++ {
		// Zero the pattern positions, scatter M(:,j).
		for e := lu.uColPtr[j]; e < lu.uColPtr[j+1]; e++ {
			x[lu.uRowIdx[e]] = 0
		}
		for e := lu.lColPtr[j]; e < lu.lColPtr[j+1]; e++ {
			x[lu.lRowIdx[e]] = 0
		}
		for e := lu.mColPtr[j]; e < lu.mColPtr[j+1]; e++ {
			x[lu.mRowIdx[e]] = lu.mVals[e]
		}
		// Sparse triangular solve: eliminate with each pivot k < j present
		// in this column's U pattern, ascending.
		for e := lu.uColPtr[j]; e < lu.uColPtr[j+1]-1; e++ {
			k := lu.uRowIdx[e]
			xk := x[k]
			lu.uVals[e] = xk
			if xk == 0 {
				continue
			}
			for le := lu.lColPtr[k]; le < lu.lColPtr[k+1]; le++ {
				x[lu.lRowIdx[le]] -= lu.lVals[le] * xk
			}
		}
		ujj := x[j]
		if math.Abs(ujj) < minPivot {
			return errSingular
		}
		lu.uVals[lu.uColPtr[j+1]-1] = ujj // diagonal is last in the column
		inv := 1 / ujj
		for e := lu.lColPtr[j]; e < lu.lColPtr[j+1]; e++ {
			lu.lVals[e] = x[lu.lRowIdx[e]] * inv
		}
	}
	return nil
}

// solve computes out = M⁻¹·b using the current factorization. b and out may
// alias. It allocates nothing.
func (lu *sparseLU) solve(b, out []float64) {
	x := lu.x
	copy(x, b)
	// Forward: L·z = b, L unit lower triangular, column-oriented.
	for j := 0; j < lu.n; j++ {
		zj := x[j]
		if zj == 0 {
			continue
		}
		for e := lu.lColPtr[j]; e < lu.lColPtr[j+1]; e++ {
			x[lu.lRowIdx[e]] -= lu.lVals[e] * zj
		}
	}
	// Backward: U·out = z, diagonal stored last per column.
	for j := lu.n - 1; j >= 0; j-- {
		xj := x[j] / lu.uVals[lu.uColPtr[j+1]-1]
		x[j] = xj
		if xj == 0 {
			continue
		}
		for e := lu.uColPtr[j]; e < lu.uColPtr[j+1]-1; e++ {
			x[lu.uRowIdx[e]] -= lu.uVals[e] * xj
		}
	}
	copy(out, x)
}

// nnzLU reports the fill of the factorization (len L + len U values), for
// diagnostics and tests.
func (lu *sparseLU) nnzLU() int { return len(lu.lVals) + len(lu.uVals) }
