package logic

import (
	"testing"
	"testing/quick"
)

func TestExprEval(t *testing.T) {
	env := map[string]bool{"a": true, "b": false}
	cases := []struct {
		e    Expr
		want bool
	}{
		{Var("a"), true},
		{Var("b"), false},
		{Not(Var("a")), false},
		{And(Var("a"), Var("b")), false},
		{Or(Var("a"), Var("b")), true},
		{Xor(Var("a"), Var("b")), true},
		{Xor(Var("a"), Var("a")), false},
		{True, true},
		{False, false},
		{And(), true}, // empty conjunction
		{Or(), false}, // empty disjunction
		{Xor(Var("a")), true},
		{And(Var("a"), Var("a"), Var("a")), true},
		{Or(Var("b"), Var("b"), Var("a")), true},
	}
	for _, c := range cases {
		if got := c.e.Eval(env); got != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestSimplifyRemovesConstants(t *testing.T) {
	cases := []struct {
		in   Expr
		want string
	}{
		{And(Var("a"), True), "a"},
		{And(True, Var("a")), "a"},
		{And(Var("a"), False), "0"},
		{Or(Var("a"), False), "a"},
		{Or(Var("a"), True), "1"},
		{Xor(Var("a"), True), "!a"},
		{Xor(Var("a"), False), "a"},
		{Not(True), "0"},
		{Not(Not(Var("a"))), "a"},
		{Xor(True, True), "0"},
		{And(Or(False, Var("a")), Xor(Var("b"), False)), "(a&b)"},
	}
	for _, c := range cases {
		if got := Simplify(c.in).String(); got != c.want {
			t.Errorf("Simplify(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

// Property: simplification preserves semantics on random 3-variable
// expressions.
func TestQuickSimplifySemantics(t *testing.T) {
	build := func(bits []byte) Expr {
		// Deterministically build a small expression from the byte stream.
		var rec func(depth int) Expr
		i := 0
		nextByte := func() byte {
			if i >= len(bits) {
				return 0
			}
			b := bits[i]
			i++
			return b
		}
		rec = func(depth int) Expr {
			b := nextByte()
			if depth > 3 {
				return Var(string(rune('a' + b%3)))
			}
			switch b % 6 {
			case 0:
				return Var(string(rune('a' + b%3)))
			case 1:
				return constExpr(b%2 == 0)
			case 2:
				return Not(rec(depth + 1))
			case 3:
				return And(rec(depth+1), rec(depth+1))
			case 4:
				return Or(rec(depth+1), rec(depth+1))
			default:
				return Xor(rec(depth+1), rec(depth+1))
			}
		}
		return rec(0)
	}
	prop := func(bits []byte, a, b, c bool) bool {
		e := build(bits)
		env := map[string]bool{"a": a, "b": b, "c": c}
		return e.Eval(env) == Simplify(e).Eval(env)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestVarsCounts(t *testing.T) {
	e := And(Var("a"), Xor(Var("a"), Var("b")))
	v := Vars(e)
	if v["a"] != 2 || v["b"] != 1 {
		t.Fatalf("Vars = %v", v)
	}
}

func TestFSMValidation(t *testing.T) {
	f := NewFSM()
	if err := f.AddBit("a", false, Var("ghost")); err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err == nil {
		t.Fatal("undeclared reference accepted")
	}
	if err := f.AddBit("a", false, True); err == nil {
		t.Fatal("duplicate bit accepted")
	}
	if err := f.AddBit("b", false, nil); err == nil {
		t.Fatal("nil next accepted")
	}
}

func TestFSMStep(t *testing.T) {
	f := NewFSM()
	if err := f.AddBit("a", false, Not(Var("a"))); err != nil {
		t.Fatal(err)
	}
	if err := f.AddBit("b", true, Var("a")); err != nil {
		t.Fatal(err)
	}
	st := f.InitState()
	if f.StateString(st) != "01" {
		t.Fatalf("init = %s", f.StateString(st))
	}
	st = f.Step(st)
	if f.StateString(st) != "10" {
		t.Fatalf("step 1 = %s", f.StateString(st))
	}
	st = f.Step(st)
	if f.StateString(st) != "01" {
		t.Fatalf("step 2 = %s", f.StateString(st))
	}
}

func TestCounterGolden(t *testing.T) {
	f, err := Counter(3)
	if err != nil {
		t.Fatal(err)
	}
	st := f.InitState()
	for want := uint64(0); want < 18; want++ {
		if got := f.StateUint(st); got != want%8 {
			t.Fatalf("counter step %d = %d, want %d", want, got, want%8)
		}
		st = f.Step(st)
	}
	if _, err := Counter(0); err == nil {
		t.Fatal("zero-width counter accepted")
	}
}

func TestLFSRGoldenMaximalLength(t *testing.T) {
	f, err := LFSR(4, []int{4, 3})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	st := f.InitState()
	for i := 0; i < 15; i++ {
		v := f.StateUint(st)
		if v == 0 {
			t.Fatal("LFSR reached all-zero state")
		}
		if seen[v] {
			t.Fatalf("state %d repeated after %d steps (not maximal length)", v, i)
		}
		seen[v] = true
		st = f.Step(st)
	}
	if got := f.StateUint(st); !seen[got] {
		t.Fatal("LFSR did not return to a seen state after full period")
	}
	if _, err := LFSR(1, []int{1}); err == nil {
		t.Fatal("width 1 accepted")
	}
	if _, err := LFSR(4, nil); err == nil {
		t.Fatal("no taps accepted")
	}
	if _, err := LFSR(4, []int{9}); err == nil {
		t.Fatal("out-of-range tap accepted")
	}
}

func TestBitsOrder(t *testing.T) {
	f := NewFSM()
	if err := f.AddBit("z", false, True); err != nil {
		t.Fatal(err)
	}
	if err := f.AddBit("a", false, True); err != nil {
		t.Fatal(err)
	}
	bits := f.Bits()
	if len(bits) != 2 || bits[0] != "z" || bits[1] != "a" {
		t.Fatalf("Bits = %v (want declaration order)", bits)
	}
	bits[0] = "mutated"
	if f.Bits()[0] != "z" {
		t.Fatal("Bits aliases internal state")
	}
}
