package logic

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Machine is an FSM compiled to a synchronous molecular circuit: one
// dual-rail register pair per state bit, one compute cascade of gate
// pairings per next-state expression, all driven by one molecular clock.
type Machine struct {
	Circuit *core.Circuit
	FSM     *FSM

	// Obs, when non-nil, receives instrumentation events from Run.
	Obs obs.Observer

	regs map[string]railRegs
}

type railRegs struct {
	T *core.Register
	F *core.Register
}

// compiler carries the per-compilation allocation state.
type compiler struct {
	c      *core.Circuit
	copies map[string][]string // rail species queues, keyed "bit/T", "bit/F"
	oneQ   []string            // queue of copies of the constant-one register
	nsig   int
}

// Options tunes FSM compilation.
type Options struct {
	// NoRestore disables per-bit signal restoration, leaving the raw gate
	// outputs wired straight into the registers. The machine still
	// computes correctly at first, but dual-rail crosstalk then
	// accumulates cycle over cycle — the ablation experiment E11
	// quantifies the decay. Production use should leave this false.
	NoRestore bool
}

// Compile synthesizes the FSM into a molecular circuit under the namespace
// with signal restoration enabled. The returned machine's circuit is
// finalized and ready to simulate.
func Compile(f *FSM, ns string) (*Machine, error) {
	return CompileOpt(f, ns, Options{})
}

// CompileOpt is Compile with explicit options.
func CompileOpt(f *FSM, ns string, opts Options) (*Machine, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	c := core.New(ns)
	m := &Machine{Circuit: c, FSM: f, regs: make(map[string]railRegs)}

	// Registers, one pair per bit, initialized to the FSM's start state.
	for _, name := range f.names {
		tInit, fInit := 0.0, 1.0
		if f.init[name] {
			tInit, fInit = 1.0, 0.0
		}
		rt, err := c.NewRegister(name+"T", tInit)
		if err != nil {
			return nil, err
		}
		rf, err := c.NewRegister(name+"F", fInit)
		if err != nil {
			return nil, err
		}
		m.regs[name] = railRegs{T: rt, F: rf}
	}

	// Simplified next-state expressions and their operand demand.
	next := make(map[string]Expr, len(f.next))
	uses := make(map[string]int)
	constUses := 0
	for name, e := range f.next {
		se := Simplify(e)
		next[name] = se
		for v, k := range Vars(se) {
			uses[v] += k
		}
		constUses += countConsts(se)
	}

	comp := &compiler{c: c, copies: make(map[string][]string)}

	// Fan each register's rails out into one copy per use, plus one extra
	// "carrier" copy pair per bit: the carrier holds the bit's conserved
	// one-unit mass and is steered onto the next value's rail during
	// restoration (see writeRestored), so the register's unit circulates
	// forever while gate outputs are used only as catalysts and discarded.
	carriers := make(map[string]railBit, len(f.names))
	for _, name := range f.names {
		k := uses[name]
		if !opts.NoRestore {
			k++ // one extra copy pair per bit: the carrier
		}
		regs := m.regs[name]
		var carrier railBit
		for rail, reg := range map[string]*core.Register{"T": regs.T, "F": regs.F} {
			if k == 0 {
				continue // Finalize discards the unused rails
			}
			dsts := make([]string, k)
			for i := range dsts {
				sig, err := c.NewSignal(fmt.Sprintf("cp.%s%s.%d", name, rail, i))
				if err != nil {
					return nil, err
				}
				dsts[i] = sig
			}
			if err := c.Fanout(reg.Q, dsts...); err != nil {
				return nil, err
			}
			if opts.NoRestore {
				comp.copies[name+"/"+rail] = dsts
				continue
			}
			comp.copies[name+"/"+rail] = dsts[:k-1]
			if rail == "T" {
				carrier.t = dsts[k-1]
			} else {
				carrier.f = dsts[k-1]
			}
		}
		carriers[name] = carrier
	}

	// Constant-one register: recycles one unit forever and supplies a copy
	// per constant occurrence.
	if constUses > 0 {
		one, err := c.NewRegister("one", 1)
		if err != nil {
			return nil, err
		}
		dsts := make([]string, constUses, constUses+1)
		for i := range dsts {
			sig, err := c.NewSignal(fmt.Sprintf("cp.one.%d", i))
			if err != nil {
				return nil, err
			}
			dsts[i] = sig
		}
		comp.oneQ = dsts
		if err := c.Fanout(one.Q, append(dsts, one.NS)...); err != nil {
			return nil, err
		}
	}

	// Compile every next-state expression and write it back through
	// restoration.
	for _, name := range f.names {
		bit, err := comp.compile(next[name])
		if err != nil {
			return nil, fmt.Errorf("logic: bit %q: %w", name, err)
		}
		if opts.NoRestore {
			err = writeDirect(c, bit, m.regs[name])
		} else {
			err = writeRestored(c, bit, carriers[name], m.regs[name])
		}
		if err != nil {
			return nil, fmt.Errorf("logic: bit %q: %w", name, err)
		}
	}
	if err := c.Finalize(); err != nil {
		return nil, err
	}
	return m, nil
}

// MustCompile is Compile that panics on error.
func MustCompile(f *FSM, ns string) *Machine {
	m, err := Compile(f, ns)
	if err != nil {
		panic(err)
	}
	return m
}

// writeRestored writes a computed bit into a register pair with signal
// restoration. The raw gate output rails first annihilate each other
// (removing the crosstalk residue from both rails and leaving the winner);
// the surviving output then acts as a catalyst steering the bit's one-unit
// carrier onto the winning rail's NS port. The spent gate output is drained
// on the slow timescale — slow so that the (fast, catalytic) steering always
// completes first. Without restoration, per-cycle crosstalk of the dual-rail
// gates accumulates and flips bits after a few dozen cycles.
func writeRestored(c *core.Circuit, out, carrier railBit, regs railRegs) error {
	if out.t != "" && out.f != "" {
		if err := c.Pair(out.t, out.f, nil); err != nil {
			return err
		}
	}
	for _, cr := range []string{carrier.t, carrier.f} {
		if out.t != "" {
			if err := c.Pair(cr, out.t, map[string]int{regs.T.NS: 1, out.t: 1}); err != nil {
				return err
			}
		}
		if out.f != "" {
			if err := c.Pair(cr, out.f, map[string]int{regs.F.NS: 1, out.f: 1}); err != nil {
				return err
			}
		}
	}
	if out.t != "" {
		if err := c.DrainSlow(out.t); err != nil {
			return err
		}
	}
	if out.f != "" {
		if err := c.DrainSlow(out.f); err != nil {
			return err
		}
	}
	return nil
}

// writeDirect wires raw gate output rails straight into the register's NS
// ports — the unrestored baseline used only for the E11 ablation.
func writeDirect(c *core.Circuit, out railBit, regs railRegs) error {
	if out.t != "" {
		if err := c.Gain(out.t, regs.T.NS, 1, 1); err != nil {
			return err
		}
	}
	if out.f != "" {
		if err := c.Gain(out.f, regs.F.NS, 1, 1); err != nil {
			return err
		}
	}
	return nil
}

func countConsts(e Expr) int {
	switch t := e.(type) {
	case constExpr:
		return 1
	case notExpr:
		return countConsts(t.e)
	case binExpr:
		return countConsts(t.a) + countConsts(t.b)
	default:
		return 0
	}
}

// railBit is a compiled expression: species carrying the T and F rails. An
// empty name is a permanently-zero rail (constants only; Simplify guarantees
// gates never see one).
type railBit struct{ t, f string }

func (comp *compiler) takeCopy(key string) (string, error) {
	q := comp.copies[key]
	if len(q) == 0 {
		return "", fmt.Errorf("internal: copy queue %q exhausted", key)
	}
	comp.copies[key] = q[1:]
	return q[0], nil
}

func (comp *compiler) takeOne() (string, error) {
	if len(comp.oneQ) == 0 {
		return "", fmt.Errorf("internal: constant copy queue exhausted")
	}
	v := comp.oneQ[0]
	comp.oneQ = comp.oneQ[1:]
	return v, nil
}

func (comp *compiler) newOut(kind string) (string, error) {
	comp.nsig++
	return comp.c.NewSignal(fmt.Sprintf("g%d.%s", comp.nsig, kind))
}

func (comp *compiler) compile(e Expr) (railBit, error) {
	switch t := e.(type) {
	case varExpr:
		tc, err := comp.takeCopy(string(t) + "/T")
		if err != nil {
			return railBit{}, err
		}
		fc, err := comp.takeCopy(string(t) + "/F")
		if err != nil {
			return railBit{}, err
		}
		return railBit{t: tc, f: fc}, nil
	case constExpr:
		one, err := comp.takeOne()
		if err != nil {
			return railBit{}, err
		}
		if bool(t) {
			return railBit{t: one}, nil
		}
		return railBit{f: one}, nil
	case notExpr:
		b, err := comp.compile(t.e)
		return railBit{t: b.f, f: b.t}, err
	case binExpr:
		a, err := comp.compile(t.a)
		if err != nil {
			return railBit{}, err
		}
		b, err := comp.compile(t.b)
		if err != nil {
			return railBit{}, err
		}
		if a.t == "" || a.f == "" || b.t == "" || b.f == "" {
			return railBit{}, fmt.Errorf("internal: gate operand with constant rail (expression not simplified?)")
		}
		ot, err := comp.newOut("T")
		if err != nil {
			return railBit{}, err
		}
		of, err := comp.newOut("F")
		if err != nil {
			return railBit{}, err
		}
		// Truth table: destination rail for each input rail pairing
		// (tt: both true, tf: a true b false, ...).
		var tt, tf, ft, ff string
		switch t.op {
		case opAnd:
			tt, tf, ft, ff = ot, of, of, of
		case opOr:
			tt, tf, ft, ff = ot, ot, ot, of
		default: // xor
			tt, tf, ft, ff = of, ot, ot, of
		}
		pairs := []struct {
			x, y, dst string
		}{
			{a.t, b.t, tt},
			{a.t, b.f, tf},
			{a.f, b.t, ft},
			{a.f, b.f, ff},
		}
		for _, p := range pairs {
			if err := comp.c.Pair(p.x, p.y, map[string]int{p.dst: 1}); err != nil {
				return railBit{}, err
			}
		}
		return railBit{t: ot, f: of}, nil
	default:
		return railBit{}, fmt.Errorf("logic: unknown expression type %T", e)
	}
}

// Run simulates the machine deterministically for the given horizon.
func (m *Machine) Run(rates sim.Rates, tEnd float64) (*trace.Trace, error) {
	return m.RunContext(context.Background(), rates, tEnd)
}

// RunContext is Run with cancellation: the context is threaded into the
// integrator, so a deadline or cancellation stops the machine mid-horizon.
func (m *Machine) RunContext(ctx context.Context, rates sim.Rates, tEnd float64) (*trace.Trace, error) {
	return sim.Run(ctx, m.Circuit.Net, sim.Config{Rates: rates, TEnd: tEnd, Obs: m.Obs})
}

// StatesPerCycle decodes the machine's state trajectory: element k is the
// bit assignment delivered to compute cycle k (element 0 is the initial
// state). A bit reads true when its T rail outweighs its F rail.
func (m *Machine) StatesPerCycle(tr *trace.Trace) ([]map[string]bool, error) {
	var states []map[string]bool
	for _, name := range m.FSM.names {
		regs := m.regs[name]
		vT, err := m.Circuit.RegisterPerCycle(tr, regs.T)
		if err != nil {
			return nil, err
		}
		vF, err := m.Circuit.RegisterPerCycle(tr, regs.F)
		if err != nil {
			return nil, err
		}
		ncy := len(vT)
		if len(vF) < ncy {
			ncy = len(vF)
		}
		for len(states) < ncy {
			states = append(states, make(map[string]bool, len(m.FSM.names)))
		}
		for k := 0; k < ncy; k++ {
			states[k][name] = vT[k] > vF[k]
		}
	}
	return states, nil
}

// StateUints is StatesPerCycle packed into integers (first declared bit is
// bit 0).
func (m *Machine) StateUints(tr *trace.Trace) ([]uint64, error) {
	states, err := m.StatesPerCycle(tr)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, len(states))
	for i, st := range states {
		out[i] = m.FSM.StateUint(st)
	}
	return out, nil
}

// RailMargin reports the worst-case decoding margin across all bits and
// cycles: the smallest |T−F| rail difference observed. A healthy machine
// keeps this near 1; values near 0 mean a bit was undecidable.
func (m *Machine) RailMargin(tr *trace.Trace) (float64, error) {
	worst := 1e300
	for _, name := range m.FSM.names {
		regs := m.regs[name]
		vT, err := m.Circuit.RegisterPerCycle(tr, regs.T)
		if err != nil {
			return 0, err
		}
		vF, err := m.Circuit.RegisterPerCycle(tr, regs.F)
		if err != nil {
			return 0, err
		}
		n := len(vT)
		if len(vF) < n {
			n = len(vF)
		}
		for k := 0; k < n; k++ {
			d := vT[k] - vF[k]
			if d < 0 {
				d = -d
			}
			if d < worst {
				worst = d
			}
		}
	}
	return worst, nil
}
