package logic

import (
	"testing"

	"repro/internal/sim"
)

var fastRates = sim.Rates{Fast: 300, Slow: 1}

// runMachine compiles and simulates an FSM and returns decoded states.
func runMachine(t *testing.T, f *FSM, tEnd float64) (*Machine, []uint64) {
	t.Helper()
	m, err := Compile(f, "m")
	if err != nil {
		t.Fatal(err)
	}
	if disc := m.Circuit.Discarded(); len(disc) > len(f.names)*2 {
		t.Fatalf("suspicious discards: %v", disc)
	}
	tr, err := m.Run(fastRates, tEnd)
	if err != nil {
		t.Fatal(err)
	}
	states, err := m.StateUints(tr)
	if err != nil {
		t.Fatal(err)
	}
	margin, err := m.RailMargin(tr)
	if err != nil {
		t.Fatal(err)
	}
	if margin < 0.5 {
		t.Fatalf("rail margin %.3f, want > 0.5", margin)
	}
	return m, states
}

// checkAgainstGolden verifies the molecular trajectory equals the FSM's.
func checkAgainstGolden(t *testing.T, f *FSM, states []uint64, minCycles int) {
	t.Helper()
	if len(states) < minCycles {
		t.Fatalf("only %d cycles decoded, want >= %d", len(states), minCycles)
	}
	st := f.InitState()
	for k, got := range states {
		want := f.StateUint(st)
		if got != want {
			t.Fatalf("cycle %d: state %04b, want %04b (all: %v)", k, got, want, states)
		}
		st = f.Step(st)
	}
}

func TestToggleBit(t *testing.T) {
	// The smallest sequential machine: one bit alternating 0,1,0,1...
	f := NewFSM()
	if err := f.AddBit("a", false, Not(Var("a"))); err != nil {
		t.Fatal(err)
	}
	_, states := runMachine(t, f, 300)
	checkAgainstGolden(t, f, states, 5)
}

func TestShiftChain(t *testing.T) {
	// b follows a one cycle later; a toggles.
	f := NewFSM()
	if err := f.AddBit("a", true, Not(Var("a"))); err != nil {
		t.Fatal(err)
	}
	if err := f.AddBit("b", false, Var("a")); err != nil {
		t.Fatal(err)
	}
	_, states := runMachine(t, f, 300)
	checkAgainstGolden(t, f, states, 5)
}

func TestConstantNextState(t *testing.T) {
	// One bit latches to 1 and stays (next = true).
	f := NewFSM()
	if err := f.AddBit("a", false, True); err != nil {
		t.Fatal(err)
	}
	if err := f.AddBit("b", true, False); err != nil {
		t.Fatal(err)
	}
	_, states := runMachine(t, f, 300)
	checkAgainstGolden(t, f, states, 4)
}

func TestAndGateMachine(t *testing.T) {
	// o' = a AND b where a, b recirculate; exercises a two-input gate with
	// fanout (a and b each feed their own recycle plus the gate).
	for _, init := range []struct{ a, b bool }{{true, true}, {true, false}, {false, true}, {false, false}} {
		f := NewFSM()
		if err := f.AddBit("a", init.a, Var("a")); err != nil {
			t.Fatal(err)
		}
		if err := f.AddBit("b", init.b, Var("b")); err != nil {
			t.Fatal(err)
		}
		if err := f.AddBit("o", false, And(Var("a"), Var("b"))); err != nil {
			t.Fatal(err)
		}
		_, states := runMachine(t, f, 200)
		checkAgainstGolden(t, f, states, 3)
	}
}

func TestXorGateMachine(t *testing.T) {
	f := NewFSM()
	if err := f.AddBit("a", true, Var("a")); err != nil {
		t.Fatal(err)
	}
	if err := f.AddBit("b", false, Not(Var("b"))); err != nil {
		t.Fatal(err)
	}
	if err := f.AddBit("o", false, Xor(Var("a"), Var("b"))); err != nil {
		t.Fatal(err)
	}
	_, states := runMachine(t, f, 300)
	checkAgainstGolden(t, f, states, 5)
}

func TestThreeBitCounterMachine(t *testing.T) {
	// The DAC paper's sequential example class: a binary counter counting
	// 0..7 and wrapping, entirely in molecules.
	f, err := Counter(3)
	if err != nil {
		t.Fatal(err)
	}
	_, states := runMachine(t, f, 420)
	checkAgainstGolden(t, f, states, 10)
}

func TestFourBitLFSRMachine(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	f, err := LFSR(4, []int{4, 3})
	if err != nil {
		t.Fatal(err)
	}
	_, states := runMachine(t, f, 420)
	checkAgainstGolden(t, f, states, 10)
}

func TestCompileRejectsInvalidFSM(t *testing.T) {
	f := NewFSM()
	if err := f.AddBit("a", false, Var("ghost")); err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(f, "m"); err == nil {
		t.Fatal("invalid FSM compiled")
	}
}

func TestMustCompilePanics(t *testing.T) {
	f := NewFSM()
	if err := f.AddBit("a", false, Var("ghost")); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile on invalid FSM did not panic")
		}
	}()
	MustCompile(f, "m")
}

func TestNoRestoreStillComputesShortRuns(t *testing.T) {
	// The ablation backend: without restoration the machine is correct for
	// the first several cycles (errors accumulate only gradually).
	f := NewFSM()
	if err := f.AddBit("a", false, Not(Var("a"))); err != nil {
		t.Fatal(err)
	}
	m, err := CompileOpt(f, "m", Options{NoRestore: true})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := m.Run(fastRates, 200)
	if err != nil {
		t.Fatal(err)
	}
	states, err := m.StateUints(tr)
	if err != nil {
		t.Fatal(err)
	}
	checkStates := states
	if len(checkStates) > 4 {
		checkStates = checkStates[:4]
	}
	for k, got := range checkStates {
		if want := uint64(k % 2); got != want {
			t.Fatalf("cycle %d = %d, want %d", k, got, want)
		}
	}
}
