// Package logic provides dual-rail Boolean computation for synchronous
// molecular circuits and the finite-state-machine synthesis used by the
// paper's sequential examples (binary counters; we add LFSRs as the natural
// companion workload).
//
// A Boolean bit is carried by two species ("rails"): one unit of
// concentration on the T rail encodes true, one unit on the F rail encodes
// false (the rails always total one unit). Gates are bimolecular pairings
// that consume one unit from each input bit and deposit one unit on the
// correct output rail — rate-independent by construction, because exactly
// one of a gate's four pairings has both reactants present.
package logic

import (
	"fmt"
	"sort"
	"strings"
)

// Expr is a Boolean expression over named state bits.
type Expr interface {
	// Eval computes the expression under an assignment of the variables.
	Eval(env map[string]bool) bool
	// vars appends each variable occurrence (with multiplicity).
	vars(acc *[]string)
	String() string
}

type varExpr string

// Var references a state bit by name.
func Var(name string) Expr { return varExpr(name) }

func (v varExpr) Eval(env map[string]bool) bool { return env[string(v)] }
func (v varExpr) vars(acc *[]string)            { *acc = append(*acc, string(v)) }
func (v varExpr) String() string                { return string(v) }

type constExpr bool

// True and False are the constant expressions.
var (
	True  Expr = constExpr(true)
	False Expr = constExpr(false)
)

func (c constExpr) Eval(map[string]bool) bool { return bool(c) }
func (c constExpr) vars(*[]string)            {}
func (c constExpr) String() string {
	if bool(c) {
		return "1"
	}
	return "0"
}

type notExpr struct{ e Expr }

// Not negates an expression. On dual rails negation is free: the rails swap.
func Not(e Expr) Expr { return notExpr{e} }

func (n notExpr) Eval(env map[string]bool) bool { return !n.e.Eval(env) }
func (n notExpr) vars(acc *[]string)            { n.e.vars(acc) }
func (n notExpr) String() string                { return "!" + n.e.String() }

type binOp int

const (
	opAnd binOp = iota
	opOr
	opXor
)

type binExpr struct {
	op   binOp
	a, b Expr
}

// And is the conjunction of any number of terms (associated left).
func And(terms ...Expr) Expr { return fold(opAnd, terms) }

// Or is the disjunction of any number of terms (associated left).
func Or(terms ...Expr) Expr { return fold(opOr, terms) }

// Xor is the exclusive-or of any number of terms (associated left).
func Xor(terms ...Expr) Expr { return fold(opXor, terms) }

func fold(op binOp, terms []Expr) Expr {
	switch len(terms) {
	case 0:
		if op == opAnd {
			return True
		}
		return False
	case 1:
		return terms[0]
	}
	e := terms[0]
	for _, t := range terms[1:] {
		e = binExpr{op, e, t}
	}
	return e
}

func (b binExpr) Eval(env map[string]bool) bool {
	x, y := b.a.Eval(env), b.b.Eval(env)
	switch b.op {
	case opAnd:
		return x && y
	case opOr:
		return x || y
	default:
		return x != y
	}
}

func (b binExpr) vars(acc *[]string) {
	b.a.vars(acc)
	b.b.vars(acc)
}

func (b binExpr) String() string {
	op := map[binOp]string{opAnd: "&", opOr: "|", opXor: "^"}[b.op]
	return "(" + b.a.String() + op + b.b.String() + ")"
}

// Simplify constant-folds an expression so that no And/Or/Xor retains a
// constant operand (the compiler relies on this: gate pairings cannot take
// two permanently-empty rails).
func Simplify(e Expr) Expr {
	switch t := e.(type) {
	case varExpr, constExpr:
		return e
	case notExpr:
		inner := Simplify(t.e)
		if c, ok := inner.(constExpr); ok {
			return constExpr(!bool(c))
		}
		if n, ok := inner.(notExpr); ok {
			return n.e
		}
		return notExpr{inner}
	case binExpr:
		a, b := Simplify(t.a), Simplify(t.b)
		if ca, ok := a.(constExpr); ok {
			return foldConst(t.op, bool(ca), b)
		}
		if cb, ok := b.(constExpr); ok {
			return foldConst(t.op, bool(cb), a)
		}
		return binExpr{t.op, a, b}
	default:
		panic(fmt.Sprintf("logic: unknown expression type %T", e))
	}
}

func foldConst(op binOp, c bool, other Expr) Expr {
	switch op {
	case opAnd:
		if c {
			return other
		}
		return False
	case opOr:
		if c {
			return True
		}
		return other
	default: // xor
		if c {
			return Simplify(Not(other))
		}
		return other
	}
}

// Vars returns the variable occurrence counts of an expression.
func Vars(e Expr) map[string]int {
	var acc []string
	e.vars(&acc)
	out := make(map[string]int)
	for _, v := range acc {
		out[v]++
	}
	return out
}

// FSM is a synchronous finite-state machine over named Boolean bits, each
// with an initial value and a next-state expression over the current bits.
type FSM struct {
	names []string
	init  map[string]bool
	next  map[string]Expr
}

// NewFSM returns an empty machine.
func NewFSM() *FSM {
	return &FSM{init: make(map[string]bool), next: make(map[string]Expr)}
}

// AddBit declares a state bit with its initial value and next-state
// expression. Bits must have unique names.
func (f *FSM) AddBit(name string, init bool, next Expr) error {
	if _, dup := f.next[name]; dup {
		return fmt.Errorf("logic: duplicate bit %q", name)
	}
	if next == nil {
		return fmt.Errorf("logic: bit %q has no next-state expression", name)
	}
	f.names = append(f.names, name)
	f.init[name] = init
	f.next[name] = next
	return nil
}

// Bits returns the bit names in declaration order.
func (f *FSM) Bits() []string { return append([]string(nil), f.names...) }

// InitState returns the initial assignment.
func (f *FSM) InitState() map[string]bool {
	out := make(map[string]bool, len(f.init))
	for k, v := range f.init {
		out[k] = v
	}
	return out
}

// Step computes one synchronous transition (the golden reference the
// molecular machine is validated against).
func (f *FSM) Step(state map[string]bool) map[string]bool {
	out := make(map[string]bool, len(f.next))
	for name, e := range f.next {
		out[name] = e.Eval(state)
	}
	return out
}

// Validate checks that every referenced variable is a declared bit.
func (f *FSM) Validate() error {
	declared := make(map[string]bool, len(f.names))
	for _, n := range f.names {
		declared[n] = true
	}
	for name, e := range f.next {
		for v := range Vars(e) {
			if !declared[v] {
				return fmt.Errorf("logic: bit %q references undeclared bit %q", name, v)
			}
		}
	}
	return nil
}

// StateString renders an assignment as a bit string in declaration order
// (first declared bit leftmost).
func (f *FSM) StateString(state map[string]bool) string {
	var sb strings.Builder
	for _, n := range f.names {
		if state[n] {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// StateUint packs an assignment into an integer with the first declared bit
// as bit 0.
func (f *FSM) StateUint(state map[string]bool) uint64 {
	var v uint64
	for i, n := range f.names {
		if state[n] {
			v |= 1 << uint(i)
		}
	}
	return v
}

// Counter returns an n-bit synchronous binary up-counter starting at zero:
// bit 0 toggles every cycle; bit i toggles when all lower bits are set.
// This is the DAC paper's canonical sequential example class.
func Counter(nbits int) (*FSM, error) {
	if nbits < 1 || nbits > 16 {
		return nil, fmt.Errorf("logic: counter width %d out of range [1,16]", nbits)
	}
	f := NewFSM()
	for i := 0; i < nbits; i++ {
		name := fmt.Sprintf("b%d", i)
		var carry Expr = True
		if i > 0 {
			lower := make([]Expr, i)
			for j := 0; j < i; j++ {
				lower[j] = Var(fmt.Sprintf("b%d", j))
			}
			carry = And(lower...)
		}
		if err := f.AddBit(name, false, Simplify(Xor(Var(name), carry))); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// LFSR returns a Fibonacci linear-feedback shift register of the given width
// with feedback taps (1-based positions into the shift chain, as in the
// usual polynomial notation; e.g. width 4, taps [4,3] is maximal length).
// The register is seeded with bit 0 set.
func LFSR(width int, taps []int) (*FSM, error) {
	if width < 2 || width > 32 {
		return nil, fmt.Errorf("logic: LFSR width %d out of range [2,32]", width)
	}
	if len(taps) == 0 {
		return nil, fmt.Errorf("logic: LFSR needs at least one tap")
	}
	sorted := append([]int(nil), taps...)
	sort.Ints(sorted)
	for _, tp := range sorted {
		if tp < 1 || tp > width {
			return nil, fmt.Errorf("logic: tap %d out of range [1,%d]", tp, width)
		}
	}
	f := NewFSM()
	feedback := make([]Expr, len(sorted))
	for i, tp := range sorted {
		feedback[i] = Var(fmt.Sprintf("s%d", tp-1))
	}
	if err := f.AddBit("s0", true, Simplify(Xor(feedback...))); err != nil {
		return nil, err
	}
	for i := 1; i < width; i++ {
		if err := f.AddBit(fmt.Sprintf("s%d", i), false, Var(fmt.Sprintf("s%d", i-1))); err != nil {
			return nil, err
		}
	}
	return f, nil
}
