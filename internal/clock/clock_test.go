package clock

import (
	"context"
	"math"
	"testing"

	"repro/internal/crn"
	"repro/internal/obs"
	"repro/internal/phases"
	"repro/internal/sim"
)

func buildClock(t *testing.T, amount float64) (*crn.Network, Clock) {
	t.Helper()
	n := crn.NewNetwork()
	s := phases.NewScheme(n, "ph")
	c, err := Add(s, "clk", amount)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Build(); err != nil {
		t.Fatal(err)
	}
	return n, c
}

func TestAddValidation(t *testing.T) {
	n := crn.NewNetwork()
	s := phases.NewScheme(n, "ph")
	if _, err := Add(s, "clk", 0); err == nil {
		t.Fatal("zero amount accepted")
	}
	if _, err := Add(s, "clk", -1); err == nil {
		t.Fatal("negative amount accepted")
	}
}

func TestPhaseNames(t *testing.T) {
	_, c := buildClock(t, 1)
	if c.Phase(phases.Red) != "clk.CR" || c.Phase(phases.Green) != "clk.CG" || c.Phase(phases.Blue) != "clk.CB" {
		t.Fatalf("phase names: %+v", c)
	}
}

func TestPhasePanicsOnBadColour(t *testing.T) {
	_, c := buildClock(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("bad colour did not panic")
		}
	}()
	c.Phase(phases.Color(9))
}

func TestInitialStateInRed(t *testing.T) {
	n, c := buildClock(t, 2.5)
	if n.InitOf(c.R) != 2.5 || n.InitOf(c.G) != 0 || n.InitOf(c.B) != 0 {
		t.Fatalf("init: R=%g G=%g B=%g", n.InitOf(c.R), n.InitOf(c.G), n.InitOf(c.B))
	}
}

func TestSustainedOscillation(t *testing.T) {
	n, c := buildClock(t, 1)
	tr, err := sim.Run(context.Background(), n, sim.Config{Rates: sim.Rates{Fast: 1000, Slow: 1}, TEnd: 300})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Measure(tr, c)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles < 10 {
		t.Fatalf("only %d cycles in horizon (period %g)", st.Cycles, st.Period)
	}
	if st.Regularity > 0.02 {
		t.Fatalf("period jitter %.4f, want < 0.02", st.Regularity)
	}
	if st.PeakR < 0.9 || st.PeakG < 0.9 || st.PeakB < 0.9 {
		t.Fatalf("weak phases: %.3f %.3f %.3f", st.PeakR, st.PeakG, st.PeakB)
	}
	for name, ov := range map[string]float64{"RG": st.OverlapRG, "GB": st.OverlapGB, "BR": st.OverlapBR} {
		// Hand-off transients put ~10-15 % of the cycle in mixed states;
		// exclusivity beyond that indicates a broken gate.
		if ov > 0.2 {
			t.Fatalf("phase overlap %s = %.3f, want < 0.2", name, ov)
		}
	}
}

func TestHeartbeatAmountScales(t *testing.T) {
	n, c := buildClock(t, 3)
	tr, err := sim.Run(context.Background(), n, sim.Config{Rates: sim.Rates{Fast: 1000, Slow: 1}, TEnd: 200})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Measure(tr, c)
	if err != nil {
		t.Fatal(err)
	}
	if st.PeakR < 2.7 {
		t.Fatalf("heartbeat 3: peak R = %g", st.PeakR)
	}
}

func TestCycleStartsMonotone(t *testing.T) {
	n, c := buildClock(t, 1)
	tr, err := sim.Run(context.Background(), n, sim.Config{Rates: sim.Rates{Fast: 500, Slow: 1}, TEnd: 150})
	if err != nil {
		t.Fatal(err)
	}
	starts, err := CycleStarts(tr, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(starts) < 4 {
		t.Fatalf("only %d cycle starts", len(starts))
	}
	for i := 1; i < len(starts); i++ {
		if starts[i] <= starts[i-1] {
			t.Fatal("cycle starts not increasing")
		}
	}
}

func TestRateIndependenceOfClockPresence(t *testing.T) {
	// The paper's claim: the clock oscillates for any fast >> slow. Check
	// a spread of ratios all sustain oscillation (period changes, shape
	// remains).
	for _, ratio := range []float64{50, 200, 1000} {
		n, c := buildClock(t, 1)
		tr, err := sim.Run(context.Background(), n, sim.Config{Rates: sim.Rates{Fast: ratio, Slow: 1}, TEnd: 250})
		if err != nil {
			t.Fatalf("ratio %g: %v", ratio, err)
		}
		st, err := Measure(tr, c)
		if err != nil {
			t.Fatalf("ratio %g: %v", ratio, err)
		}
		if st.Cycles < 5 {
			t.Fatalf("ratio %g: only %d cycles", ratio, st.Cycles)
		}
		if st.Regularity > 0.05 {
			t.Fatalf("ratio %g: jitter %.4f", ratio, st.Regularity)
		}
	}
}

func TestMeasureNeedsOscillation(t *testing.T) {
	n, c := buildClock(t, 1)
	// Far too short a horizon for three crossings.
	tr, err := sim.Run(context.Background(), n, sim.Config{TEnd: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Measure(tr, c); err == nil {
		t.Fatal("Measure on non-oscillating trace accepted")
	}
	_ = n
	_ = math.Pi
}

// TestWatchLive runs the clock with its edge and phase watchers attached and
// checks the live event stream agrees with the oscillation: several rising
// edges per phase species and a strictly R -> G -> B phase sequence.
func TestWatchLive(t *testing.T) {
	n, c := buildClock(t, 1)
	reg := obs.NewRegistry()
	var seq []string
	rec := phaseRecorder{seq: &seq}
	_, err := sim.Run(context.Background(), n, sim.Config{
		Rates:    sim.Rates{Fast: 500, Slow: 1},
		TEnd:     150,
		Obs:      obs.Multi(obs.NewRegistryObserver(reg), rec),
		Watchers: []obs.Watcher{c.Watch(), c.WatchPhases()},
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for _, sp := range []string{c.R, c.G, c.B} {
		key := obs.Label("clock_edges_total", "species", sp, "dir", "rise")
		if snap[key] < 3 {
			t.Errorf("%s = %g, want >= 3 rising edges", key, snap[key])
		}
	}
	if len(seq) < 6 {
		t.Fatalf("only %d phase changes: %v", len(seq), seq)
	}
	// Clock starts in red, so the sequence must cycle R, G, B, R, ...
	want := []string{c.R, c.G, c.B}
	for i, p := range seq {
		if p != want[i%3] {
			t.Fatalf("phase sequence broken at %d: %v", i, seq)
		}
	}
}

// alertRecorder collects analyzer alerts.
type alertRecorder struct {
	obs.Base
	alerts *[]obs.Alert
}

func (r alertRecorder) OnAlert(e obs.Alert) { *r.alerts = append(*r.alerts, e) }

// TestHealthWatcherCleanRun: a healthy clock driven under its own
// HealthWatcher must raise zero alerts — phases stay exclusive, indicators
// stay in their legal windows, the period stays regular.
func TestHealthWatcherCleanRun(t *testing.T) {
	n := crn.NewNetwork()
	s := phases.NewScheme(n, "ph")
	c, err := Add(s, "clk", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Build(); err != nil {
		t.Fatal(err)
	}
	var alerts []obs.Alert
	_, err = sim.Run(context.Background(), n, sim.Config{
		Rates:    sim.Rates{Fast: 1000, Slow: 1},
		TEnd:     300,
		Obs:      alertRecorder{alerts: &alerts},
		Watchers: []obs.Watcher{c.HealthWatcher(s)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 0 {
		t.Fatalf("clean clock raised %d alerts: %+v", len(alerts), alerts)
	}
}

// TestHealthWatcherDetectsOverlapFault: injecting heartbeat mass into the red
// phase species while green is active breaks the mutual-exclusion invariant;
// the analyzer must flag it as phase_overlap and the registry observer must
// count it.
func TestHealthWatcherDetectsOverlapFault(t *testing.T) {
	n := crn.NewNetwork()
	s := phases.NewScheme(n, "ph")
	c, err := Add(s, "clk", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Build(); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	var alerts []obs.Alert
	fault := &sim.Event{
		Probe: c.G, High: 0.5, Low: 0.25,
		Fire: func(tm float64, st *sim.State) {
			if tm > 50 { // let a few clean cycles establish the rhythm first
				st.Set(c.R, st.Get(c.R)+1)
			}
		},
	}
	_, err = sim.Run(context.Background(), n, sim.Config{
		Rates:    sim.Rates{Fast: 1000, Slow: 1},
		TEnd:     150,
		Events:   []*sim.Event{fault},
		Obs:      obs.Multi(obs.NewRegistryObserver(reg), alertRecorder{alerts: &alerts}),
		Watchers: []obs.Watcher{c.HealthWatcher(s)},
	})
	if err != nil {
		t.Fatal(err)
	}
	var overlap *obs.Alert
	for i := range alerts {
		if alerts[i].Rule == "phase_overlap" {
			overlap = &alerts[i]
			break
		}
	}
	if overlap == nil {
		t.Fatalf("injected overlap not detected; alerts = %+v", alerts)
	}
	if overlap.T <= 50 {
		t.Fatalf("overlap alert at t=%g predates the injected fault", overlap.T)
	}
	key := obs.Label("clock_alerts_total", "rule", "phase_overlap")
	if got := reg.Snapshot()[key]; got < 1 {
		t.Fatalf("%s = %g, want >= 1", key, got)
	}
}

// phaseRecorder collects the To side of every phase change.
type phaseRecorder struct {
	obs.Base
	seq *[]string
}

func (r phaseRecorder) OnPhaseChange(e obs.PhaseChange) { *r.seq = append(*r.seq, e.To) }
