// Package clock constructs the paper's molecular clock: a chemical
// oscillator whose three phase species take turns holding a fixed quantity
// of "heartbeat" concentration, cycling red → green → blue → red forever.
// A high concentration of a phase species is the logical 1 of that clock
// phase; low is 0 — exactly the reading the DAC paper gives its clock
// waveforms.
//
// The oscillator is nothing but a one-element transfer loop in the tri-phase
// discipline of package phases: each hand-off is gated by the absence
// indicator of the previous phase, so the loop can never stall or collapse,
// and — crucially — when the clock shares its Scheme (and therefore its
// absence indicators) with a datapath, a phase cannot end until every
// datapath transfer assigned to it has completed. That shared-indicator
// coupling is what makes the paper's sequential circuits self-synchronizing
// without any rate tuning.
package clock

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/phases"
	"repro/internal/trace"
)

// Clock names the three phase species of one molecular clock.
type Clock struct {
	R, G, B string  // phase species, members of red/green/blue
	Amount  float64 // heartbeat quantity cycling through the phases
}

// Add registers a clock in the scheme under the given namespace (species
// ns.CR, ns.CG, ns.CB) with the given heartbeat amount, initially placed in
// the red phase. It must be called before the scheme is built.
func Add(s *phases.Scheme, ns string, amount float64) (Clock, error) {
	if amount <= 0 {
		return Clock{}, fmt.Errorf("clock: amount must be positive, got %g", amount)
	}
	c := Clock{R: ns + ".CR", G: ns + ".CG", B: ns + ".CB", Amount: amount}
	if err := s.AddMember(phases.Red, c.R); err != nil {
		return Clock{}, err
	}
	if err := s.AddMember(phases.Green, c.G); err != nil {
		return Clock{}, err
	}
	if err := s.AddMember(phases.Blue, c.B); err != nil {
		return Clock{}, err
	}
	if err := s.AddTransfer(ns+".rg", c.R, map[string]int{c.G: 1}); err != nil {
		return Clock{}, err
	}
	if err := s.AddTransfer(ns+".gb", c.G, map[string]int{c.B: 1}); err != nil {
		return Clock{}, err
	}
	if err := s.AddTransfer(ns+".br", c.B, map[string]int{c.R: 1}); err != nil {
		return Clock{}, err
	}
	if err := s.Net().SetInit(c.R, amount); err != nil {
		return Clock{}, err
	}
	return c, nil
}

// MustAdd is Add that panics on error.
func MustAdd(s *phases.Scheme, ns string, amount float64) Clock {
	c, err := Add(s, ns, amount)
	if err != nil {
		panic(err)
	}
	return c
}

// Phase returns the clock species of the given colour.
func (c Clock) Phase(col phases.Color) string {
	switch col {
	case phases.Red:
		return c.R
	case phases.Green:
		return c.G
	case phases.Blue:
		return c.B
	}
	panic(fmt.Sprintf("clock: bad colour %d", col))
}

// Watch returns an edge watcher that emits an obs.ClockEdge every time one
// of the clock's phase species rises through half the heartbeat amount (or
// falls back below a quarter — the Schmitt re-arm level). Wire it into a
// simulator's Watchers to observe clock ticks live instead of extracting
// them from the trace afterwards.
func (c Clock) Watch() *obs.EdgeWatcher {
	return &obs.EdgeWatcher{
		Species: []string{c.R, c.G, c.B},
		High:    c.Amount / 2,
		Low:     c.Amount / 4,
	}
}

// WatchPhases returns a phase watcher that emits an obs.PhaseChange as the
// heartbeat quantity moves R -> G -> B -> R. The dominant-phase threshold is
// a quarter of the heartbeat amount, so hand-off transients do not chatter.
func (c Clock) WatchPhases() *obs.PhaseWatcher {
	return &obs.PhaseWatcher{
		Groups: []obs.PhaseGroup{
			{Name: c.R, Species: []string{c.R}},
			{Name: c.G, Species: []string{c.G}},
			{Name: c.B, Species: []string{c.B}},
		},
		Eps: c.Amount / 4,
	}
}

// HealthWatcher returns the clock-health analyzer for this clock in scheme s:
// each phase species is one group (cycle order R, G, B) guarded by its
// colour's absence indicator, with the occupancy threshold at half the
// heartbeat amount. The analyzer raises structured alerts (phase overlap,
// indicator leakage, period jitter, duty drift) through Observer.OnAlert —
// reaching /metrics counters, span events and SSE streams when those sinks
// are wired — instead of reporting raw telemetry like Watch / WatchPhases.
func (c Clock) HealthWatcher(s *phases.Scheme) *obs.ClockHealth {
	return &obs.ClockHealth{
		Phases: []obs.PhaseGroup{
			{Name: c.R, Species: []string{c.R}},
			{Name: c.G, Species: []string{c.G}},
			{Name: c.B, Species: []string{c.B}},
		},
		Indicators: []string{
			s.Indicator(phases.Red), s.Indicator(phases.Green), s.Indicator(phases.Blue),
		},
		Threshold: c.Amount / 2,
	}
}

// Stats summarizes a simulated clock trace.
type Stats struct {
	Period     float64 // mean interval between red-phase onsets
	Regularity float64 // relative std dev of that interval (0 = perfect)
	PeakR      float64 // peak concentration reached by each phase species
	PeakG      float64
	PeakB      float64
	OverlapRG  float64 // trace.Overlap of phase pairs (0 = exclusive)
	OverlapGB  float64
	OverlapBR  float64
	Cycles     int // completed cycles observed
}

// Measure extracts oscillation statistics from a trace of a network
// containing the clock. The threshold for cycle detection is half the
// heartbeat amount.
func Measure(tr *trace.Trace, c Clock) (Stats, error) {
	var st Stats
	level := c.Amount / 2
	period, rel, err := tr.Period(c.R, level)
	if err != nil {
		return st, fmt.Errorf("clock: %w", err)
	}
	st.Period, st.Regularity = period, rel
	crossings, err := tr.Crossings(c.R, level, true)
	if err != nil {
		return st, err
	}
	st.Cycles = len(crossings) - 1
	r := tr.MustSeries(c.R)
	g := tr.MustSeries(c.G)
	b := tr.MustSeries(c.B)
	st.PeakR, st.PeakG, st.PeakB = trace.Max(r), trace.Max(g), trace.Max(b)
	if st.OverlapRG, err = trace.Overlap(r, g); err != nil {
		return st, err
	}
	if st.OverlapGB, err = trace.Overlap(g, b); err != nil {
		return st, err
	}
	if st.OverlapBR, err = trace.Overlap(b, r); err != nil {
		return st, err
	}
	return st, nil
}

// CycleStarts returns the times at which red phases begin (rising crossings
// of half the heartbeat), which experiment code uses to sample per-cycle
// register values.
func CycleStarts(tr *trace.Trace, c Clock) ([]float64, error) {
	return tr.Crossings(c.R, c.Amount/2, true)
}
