package synth

import (
	"context"
	"math"
	"testing"

	"repro/internal/crn"
	"repro/internal/sfg"
	"repro/internal/sim"
)

var fastRates = sim.Rates{Fast: 1000, Slow: 1}

// runFilter compiles a single-input single-output graph and compares its
// molecular output stream against the golden simulator.
func runFilter(t *testing.T, g *sfg.Graph, x []float64, tEnd, tol float64) {
	t.Helper()
	golden, err := g.Run(map[string][]float64{"x": x})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := Compile(g, "f")
	if err != nil {
		t.Fatal(err)
	}
	_, outs, err := cp.Run(fastRates, tEnd, map[string][]float64{"x": x}, len(x))
	if err != nil {
		t.Fatal(err)
	}
	for k := range x {
		if diff := math.Abs(outs["y"][k] - golden["y"][k]); diff > tol {
			t.Fatalf("cycle %d: molecular %g vs golden %g (diff %g)\nmolecular: %v\ngolden:    %v",
				k, outs["y"][k], golden["y"][k], diff, outs["y"], golden["y"])
		}
	}
}

func TestCompileValidatesGraph(t *testing.T) {
	g := sfg.New()
	if err := g.Input("x"); err != nil {
		t.Fatal(err)
	}
	if err := g.Output("y", "ghost"); err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(g, "f"); err == nil {
		t.Fatal("invalid graph compiled")
	}
}

func TestDelayLineMolecular(t *testing.T) {
	g := sfg.New()
	for _, err := range []error{
		g.Input("x"),
		g.Delay("d1", "x", 0),
		g.Output("y", "d1"),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	runFilter(t, g, []float64{1, 0.5, 1.5, 0}, 180, 0.06)
}

func TestMovingAverage2Molecular(t *testing.T) {
	g, err := sfg.MovingAverage(2)
	if err != nil {
		t.Fatal(err)
	}
	runFilter(t, g, []float64{1, 1, 0, 2, 1}, 220, 0.07)
}

func TestMovingAverage4Molecular(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	g, err := sfg.MovingAverage(4)
	if err != nil {
		t.Fatal(err)
	}
	// Step response: ramps 0.25, 0.5, 0.75 then holds at 1.
	runFilter(t, g, []float64{1, 1, 1, 1, 1, 1}, 280, 0.09)
}

func TestLeakyIntegratorMolecular(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	g, err := sfg.LeakyIntegrator(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Impulse: output decays 1, 0.5, 0.25, ... through the feedback loop.
	runFilter(t, g, []float64{1, 0, 0, 0, 0}, 240, 0.07)
}

func TestDelayInitialValueMolecular(t *testing.T) {
	g := sfg.New()
	for _, err := range []error{
		g.Input("x"),
		g.Delay("d1", "x", 0.75),
		g.Output("y", "d1"),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	runFilter(t, g, []float64{0.25, 0.5}, 140, 0.06)
}

func TestStreamConfigValidation(t *testing.T) {
	g, err := sfg.MovingAverage(2)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := Compile(g, "f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cp.StreamConfig(nil); err == nil {
		t.Fatal("missing input stream accepted")
	}
}

func TestRunDemandsEnoughCycles(t *testing.T) {
	g, err := sfg.MovingAverage(2)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := Compile(g, "f")
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = cp.Run(fastRates, 30, map[string][]float64{"x": {1, 1, 1, 1, 1, 1, 1, 1}}, 8)
	if err == nil {
		t.Fatal("impossible cycle demand accepted")
	}
}

func TestCompileAsyncDelayLine(t *testing.T) {
	g := sfg.New()
	for _, err := range []error{
		g.Input("x"),
		g.Delay("d1", "x", 0),
		g.Delay("d2", "d1", 0),
		g.Output("y", "d2"),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	net := crn.NewNetwork()
	ch, err := CompileAsync(g, net, "a")
	if err != nil {
		t.Fatal(err)
	}
	if ch.N != 2 {
		t.Fatalf("chain length %d, want 2", ch.N)
	}
	if err := net.SetInit(ch.Input, 1); err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(context.Background(), net, sim.Config{Rates: fastRates, TEnd: 150})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Final(ch.Output); math.Abs(got-1) > 0.04 {
		t.Fatalf("async output %g, want 1", got)
	}
}

func TestCompileAsyncRejectsNonChains(t *testing.T) {
	g, err := sfg.MovingAverage(2) // has add + gain
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompileAsync(g, crn.NewNetwork(), "a"); err == nil {
		t.Fatal("non-chain graph accepted by async backend")
	}

	g2 := sfg.New()
	if err := g2.Input("x"); err != nil {
		t.Fatal(err)
	}
	if err := g2.Output("y", "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := CompileAsync(g2, crn.NewNetwork(), "a"); err == nil {
		t.Fatal("chain without delays accepted")
	}
}

func TestFIRMolecular(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	// An asymmetric FIR: y[k] = x[k]/2 + x[k-1]/4.
	g, err := sfg.FIR([]sfg.Coeff{{P: 1, Q: 2}, {P: 1, Q: 4}})
	if err != nil {
		t.Fatal(err)
	}
	runFilter(t, g, []float64{2, 0, 1, 1}, 260, 0.06)
}
