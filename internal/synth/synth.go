// Package synth compiles signal-flow graphs (package sfg) into molecular
// circuits: the synchronous clocked scheme of the DAC 2011 paper (package
// core) or, for pure delay lines, the self-timed scheme of the companion
// abstract (package async). This is the "synthesis flow" role that the
// group's ICCAD'10 paper plays for the DAC'11 constructs.
package synth

import (
	"context"
	"fmt"

	"repro/internal/async"
	"repro/internal/core"
	"repro/internal/crn"
	"repro/internal/obs"
	"repro/internal/sfg"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Compiled is a signal-flow graph realized as a synchronous molecular
// circuit.
type Compiled struct {
	Graph   *sfg.Graph
	Circuit *core.Circuit

	// Obs, when non-nil, receives instrumentation events from Run.
	Obs obs.Observer

	InPorts   map[string]*core.Input    // input node -> port
	OutSinks  map[string]string         // output node -> sink species
	DelayRegs map[string]*core.Register // delay node -> register
}

// Compile synthesizes the graph under the namespace. Gains with
// power-of-two denominators decompose into chains of bimolecular halvings;
// other denominators q become single order-q reactions (rejected above
// molecularity 2 by the DSD compiler, so stick to powers of two when DNA
// realizability matters).
func Compile(g *sfg.Graph, ns string) (*Compiled, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	c := core.New(ns)
	cp := &Compiled{
		Graph:     g,
		Circuit:   c,
		InPorts:   make(map[string]*core.Input),
		OutSinks:  make(map[string]string),
		DelayRegs: make(map[string]*core.Register),
	}

	// Pass 1: allocate the species carrying each node's value during the
	// compute phase.
	operand := make(map[string]string, len(g.Nodes()))
	for _, n := range g.Nodes() {
		switch n.Kind {
		case sfg.KindInput:
			port, err := c.NewInput(n.Name)
			if err != nil {
				return nil, err
			}
			cp.InPorts[n.Name] = port
			operand[n.Name] = port.Q
		case sfg.KindDelay:
			reg, err := c.NewRegister(n.Name, n.Init)
			if err != nil {
				return nil, err
			}
			cp.DelayRegs[n.Name] = reg
			operand[n.Name] = reg.Q
		case sfg.KindGain, sfg.KindAdd:
			sig, err := c.NewSignal(n.Name)
			if err != nil {
				return nil, err
			}
			operand[n.Name] = sig
		case sfg.KindOutput:
			sink, err := c.NewSink(n.Name)
			if err != nil {
				return nil, err
			}
			cp.OutSinks[n.Name] = sink
		}
	}

	// Pass 2: fanout. Nodes with multiple consumers are copied once per
	// consumer; single-consumer nodes are used directly.
	consumers := g.Consumers()
	copies := make(map[string][]string)
	for _, n := range g.Nodes() {
		k := consumers[n.Name]
		if k <= 1 || n.Kind == sfg.KindOutput {
			continue
		}
		dsts := make([]string, k)
		for i := range dsts {
			sig, err := c.NewSignal(fmt.Sprintf("cp.%s.%d", n.Name, i))
			if err != nil {
				return nil, err
			}
			dsts[i] = sig
		}
		if err := c.Fanout(operand[n.Name], dsts...); err != nil {
			return nil, err
		}
		copies[n.Name] = dsts
	}
	take := func(src string) (string, error) {
		if q, ok := copies[src]; ok {
			if len(q) == 0 {
				return "", fmt.Errorf("synth: internal: copies of %q exhausted", src)
			}
			copies[src] = q[1:]
			return q[0], nil
		}
		return operand[src], nil
	}

	// Pass 3: wiring.
	for _, n := range g.Nodes() {
		switch n.Kind {
		case sfg.KindGain:
			src, err := take(n.Inputs[0])
			if err != nil {
				return nil, err
			}
			if err := emitGain(c, ns, n.Name, src, operand[n.Name], n.P, n.Q); err != nil {
				return nil, err
			}
		case sfg.KindAdd:
			for _, in := range n.Inputs {
				src, err := take(in)
				if err != nil {
					return nil, err
				}
				if err := c.Gain(src, operand[n.Name], 1, 1); err != nil {
					return nil, err
				}
			}
		case sfg.KindDelay:
			src, err := take(n.Inputs[0])
			if err != nil {
				return nil, err
			}
			if err := c.Gain(src, cp.DelayRegs[n.Name].NS, 1, 1); err != nil {
				return nil, err
			}
		case sfg.KindOutput:
			src, err := take(n.Inputs[0])
			if err != nil {
				return nil, err
			}
			if err := c.Gain(src, cp.OutSinks[n.Name], 1, 1); err != nil {
				return nil, err
			}
		}
	}
	if err := c.Finalize(); err != nil {
		return nil, err
	}
	return cp, nil
}

// emitGain lowers a p/q gain, peeling factors of two off q as bimolecular
// halvings so that power-of-two denominators never exceed molecularity 2.
func emitGain(c *core.Circuit, ns, name, src, dst string, p, q int) error {
	stage := 0
	for q%2 == 0 && q > 2 {
		mid, err := c.NewSignal(fmt.Sprintf("%s.h%d", name, stage))
		if err != nil {
			return err
		}
		if err := c.Gain(src, mid, 1, 2); err != nil {
			return err
		}
		src = mid
		q /= 2
		stage++
	}
	return c.Gain(src, dst, p, q)
}

// StreamConfig prepares the simulation inputs for a compiled circuit:
// first samples are loaded into the input ports and injection events are
// created for the rest.
func (cp *Compiled) StreamConfig(inputs map[string][]float64) ([]*sim.Event, error) {
	var events []*sim.Event
	for name, port := range cp.InPorts {
		samples, ok := inputs[name]
		if !ok || len(samples) == 0 {
			return nil, fmt.Errorf("synth: no samples for input %q", name)
		}
		if err := cp.Circuit.SetFirstSample(port, samples[0]); err != nil {
			return nil, err
		}
		s := samples
		events = append(events, cp.Circuit.InjectionEvent(port, func(k int) float64 {
			if k < len(s) {
				return s[k]
			}
			return 0
		}))
	}
	return events, nil
}

// Run simulates the compiled circuit with the given input streams and
// returns both the trace and the decoded per-cycle output streams, each
// truncated to the requested number of cycles.
func (cp *Compiled) Run(rates sim.Rates, tEnd float64, inputs map[string][]float64, nCycles int) (*trace.Trace, map[string][]float64, error) {
	return cp.RunContext(context.Background(), rates, tEnd, inputs, nCycles)
}

// RunContext is Run with cancellation: the context is threaded into the
// integrator, so a deadline or cancellation stops the circuit mid-horizon.
func (cp *Compiled) RunContext(ctx context.Context, rates sim.Rates, tEnd float64, inputs map[string][]float64, nCycles int) (*trace.Trace, map[string][]float64, error) {
	events, err := cp.StreamConfig(inputs)
	if err != nil {
		return nil, nil, err
	}
	tr, err := sim.Run(ctx, cp.Circuit.Net, sim.Config{Rates: rates, TEnd: tEnd, Events: events, Obs: cp.Obs})
	if err != nil {
		return nil, nil, err
	}
	outs := make(map[string][]float64, len(cp.OutSinks))
	for name, sink := range cp.OutSinks {
		vals, err := cp.Circuit.SinkPerCycle(tr, sink)
		if err != nil {
			return nil, nil, err
		}
		if len(vals) < nCycles {
			return nil, nil, fmt.Errorf("synth: only %d cycles completed, want %d (raise tEnd)", len(vals), nCycles)
		}
		outs[name] = vals[:nCycles]
	}
	return tr, outs, nil
}

// CompileAsync lowers a graph onto the self-timed scheme. Only pure delay
// lines (input → delay → ... → delay → output) are expressible there; other
// graphs are rejected. The returned chain's Input/Output species carry the
// one-shot quantity.
func CompileAsync(g *sfg.Graph, net *crn.Network, ns string) (*async.Chain, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	nDelays := 0
	var input *sfg.Node
	for _, n := range g.Nodes() {
		switch n.Kind {
		case sfg.KindInput:
			if input != nil {
				return nil, fmt.Errorf("synth: async backend supports exactly one input")
			}
			input = n
		case sfg.KindDelay:
			nDelays++
		case sfg.KindOutput:
		default:
			return nil, fmt.Errorf("synth: async backend cannot express %s node %q", n.Kind, n.Name)
		}
	}
	if input == nil || nDelays == 0 {
		return nil, fmt.Errorf("synth: async backend needs an input and at least one delay")
	}
	// Verify the chain shape: each delay feeds from the previous node.
	prev := input.Name
	for i := 1; i <= nDelays; i++ {
		found := false
		for _, n := range g.Nodes() {
			if n.Kind == sfg.KindDelay && n.Inputs[0] == prev {
				prev = n.Name
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("synth: delays do not form a single chain")
		}
	}
	return async.NewChain(net, ns, nDelays)
}
