package obs

import (
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"

	"repro/internal/obs/span"
)

// TestLoggerSpanCorrelation: records logged through a span-carrying context
// must gain trace_id/span_id; records without a span must not.
func TestLoggerSpanCorrelation(t *testing.T) {
	var buf strings.Builder
	log := NewLogger(&buf, nil)

	tracer := span.NewTracer(0)
	sp := tracer.Root("work")
	ctx := span.NewContext(context.Background(), sp)
	log.InfoContext(ctx, "with span", "k", "v")
	log.Info("without span")
	sp.End()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var withSpan, without map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &withSpan); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &without); err != nil {
		t.Fatal(err)
	}
	if withSpan["trace_id"] != sp.TraceID().String() || withSpan["span_id"] != sp.SpanID().String() {
		t.Fatalf("correlated record = %v, want trace %s span %s", withSpan, sp.TraceID(), sp.SpanID())
	}
	if withSpan["k"] != "v" || withSpan["msg"] != "with span" {
		t.Fatalf("record lost its own attrs: %v", withSpan)
	}
	if _, ok := without["trace_id"]; ok {
		t.Fatalf("span-free record gained a trace_id: %v", without)
	}
}

// TestLoggerLevel: the level gate must hold (debug suppressed at the
// default info level, passed at debug level).
func TestLoggerLevel(t *testing.T) {
	var buf strings.Builder
	NewLogger(&buf, nil).Debug("hidden")
	if buf.Len() != 0 {
		t.Fatalf("info-level logger emitted debug record: %q", buf.String())
	}
	NewLogger(&buf, slog.LevelDebug).Debug("shown")
	if !strings.Contains(buf.String(), "shown") {
		t.Fatalf("debug-level logger dropped debug record: %q", buf.String())
	}
}

// TestWithSpanContextPreservesHandlerChain: WithAttrs/WithGroup on the
// decorated handler must keep the span decoration (the wrapper re-wraps).
func TestWithSpanContextPreservesHandlerChain(t *testing.T) {
	var buf strings.Builder
	log := NewLogger(&buf, nil).With("svc", "crnserved").WithGroup("req")

	tracer := span.NewTracer(0)
	sp := tracer.Root("work")
	log.InfoContext(span.NewContext(context.Background(), sp), "m", "k", "v")
	sp.End()

	var rec map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(buf.String())), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["svc"] != "crnserved" {
		t.Fatalf("WithAttrs lost: %v", rec)
	}
	grp, ok := rec["req"].(map[string]any)
	if !ok {
		t.Fatalf("WithGroup lost: %v", rec)
	}
	// The correlation attrs are added at Handle time, so they land inside
	// the open group alongside the record's own attrs.
	if grp["trace_id"] != sp.TraceID().String() || grp["k"] != "v" {
		t.Fatalf("group record = %v, want trace %s", grp, sp.TraceID())
	}
}
