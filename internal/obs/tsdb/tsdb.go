// Package tsdb is an embedded, allocation-conscious time-series store for
// the observability stack: it periodically samples every family of an
// obs.Registry (plus any extra Sources) into fixed-size per-series ring
// buffers and answers small longitudinal queries — instant, range,
// rate-over-window — over the retained history.
//
// The serving and cluster layers expose instants (/metrics, statusz); this
// package is what turns them into history, so a worker that flapped five
// minutes ago, a cache whose hit rate collapsed, or a burst of clock-health
// alerts stays diagnosable after the fact. The alert rule engine
// (internal/obs/alert) evaluates against this store, and the flight
// recorder (internal/obs/flight) snapshots windows of it into capsules.
//
// Storage model: one global tick counter and timestamp ring shared by all
// series, plus per-series fixed-size value rings stamped with the tick that
// wrote each slot (so a series created mid-flight, or one whose source went
// quiet, simply has stale stamps — no tombstones, no per-sample allocation).
// Counters are stored as their raw cumulative values and rolled up
// delta-aware at query time (negative deltas — counter resets — contribute
// zero); histograms are rolled up at sample time into _count/_sum cumulative
// series plus interval-quantile gauge series (_p50/_p90/_p99) computed from
// consecutive cumulative-bucket deltas.
package tsdb

import (
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// SeriesKind discriminates how a series rolls up over windows.
type SeriesKind byte

const (
	// KindCounter marks cumulative, monotone series: windows roll up as
	// positive deltas (rate, delta).
	KindCounter SeriesKind = 'c'
	// KindGauge marks instantaneous series: windows roll up as avg/min/max.
	KindGauge SeriesKind = 'g'
)

// Source contributes extra series at every poll, beyond the registry's own
// families: emit is called once per series with its full (possibly
// labelled) name, kind and current value. Sources run under the DB lock and
// must be fast and non-blocking.
type Source func(emit func(name string, kind SeriesKind, value float64))

// Options tunes a DB. Zero values select the documented defaults.
type Options struct {
	// Step is the sampling cadence; 0 -> 5s.
	Step time.Duration
	// Retention is how much history each series keeps; 0 -> 1h. The ring
	// size is Retention/Step slots (at least 2).
	Retention time.Duration
	// MaxSeries bounds distinct series; new series beyond the cap are
	// dropped (counted in Stats). 0 -> 4096.
	MaxSeries int
	// Now is the injectable clock for tests; nil -> time.Now.
	Now func() time.Time
}

func (o Options) normalize() Options {
	if o.Step <= 0 {
		o.Step = 5 * time.Second
	}
	if o.Retention <= 0 {
		o.Retention = time.Hour
	}
	if o.MaxSeries <= 0 {
		o.MaxSeries = 4096
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// series is one metric's ring: vals[i] is valid iff ticks[i] stamps the
// global tick that wrote slot i.
type series struct {
	kind  SeriesKind
	vals  []float64
	ticks []int64
}

// DB is the embedded store. Create with New, feed it with Poll or Start a
// background ticker, query with Eval / Range / Instant. All methods are
// safe for concurrent use; a nil *DB is a no-op whose queries report no
// data, so optional wiring needs no branches.
type DB struct {
	opts  Options
	slots int

	mu      sync.Mutex
	reg     *obs.Registry
	sources []Source
	series  map[string]*series
	names   []string // registration order, for stable listings
	times   []int64  // unix nanos per slot, shared by all series
	tick    int64    // polls taken so far; slot = (tick-1) % slots wrote last
	prev    map[string]histPrev
	dropped uint64 // series lost to MaxSeries

	stopCh  chan struct{}
	started bool
	stopped bool
}

// histPrev remembers a histogram's previous cumulative buckets so interval
// quantiles cover only the observations of the last step.
type histPrev struct {
	bounds []float64
	cum    []uint64
}

// New builds a DB sampling reg (which may be nil when only Sources feed it).
func New(reg *obs.Registry, opts Options) *DB {
	opts = opts.normalize()
	slots := int(opts.Retention / opts.Step)
	if slots < 2 {
		slots = 2
	}
	return &DB{
		opts:   opts,
		slots:  slots,
		reg:    reg,
		series: make(map[string]*series),
		times:  make([]int64, slots),
		prev:   make(map[string]histPrev),
		stopCh: make(chan struct{}),
	}
}

// Step returns the sampling cadence.
func (db *DB) Step() time.Duration {
	if db == nil {
		return 0
	}
	return db.opts.Step
}

// Retention returns the configured history span.
func (db *DB) Retention() time.Duration {
	if db == nil {
		return 0
	}
	return db.opts.Retention
}

// AddSource registers an extra per-poll sample source.
func (db *DB) AddSource(s Source) {
	if db == nil || s == nil {
		return
	}
	db.mu.Lock()
	db.sources = append(db.sources, s)
	db.mu.Unlock()
}

// Poll takes one sample of every registry family and every source, stamped
// with the current clock. Safe to call concurrently with a running ticker
// (polls serialize on the DB lock).
func (db *DB) Poll() {
	if db == nil {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	now := db.opts.Now()
	slot := int(db.tick % int64(db.slots))
	db.tick++ // stamp slots with the new tick: valid slots carry db.tick
	db.times[slot] = now.UnixNano()

	if db.reg != nil {
		for _, f := range db.reg.Export() {
			switch f.Kind {
			case 'c':
				db.write(slot, f.Name, KindCounter, f.Value)
			case 'g':
				db.write(slot, f.Name, KindGauge, f.Value)
			case 'h':
				db.write(slot, suffixed(f.Name, "_count"), KindCounter, float64(f.Count))
				db.write(slot, suffixed(f.Name, "_sum"), KindCounter, f.Sum)
				d := db.bucketDelta(f)
				db.write(slot, suffixed(f.Name, "_p50"), KindGauge, bucketQuantile(f.Bounds, d, 0.50))
				db.write(slot, suffixed(f.Name, "_p90"), KindGauge, bucketQuantile(f.Bounds, d, 0.90))
				db.write(slot, suffixed(f.Name, "_p99"), KindGauge, bucketQuantile(f.Bounds, d, 0.99))
			}
		}
	}
	for _, src := range db.sources {
		src(func(name string, kind SeriesKind, v float64) {
			db.write(slot, name, kind, v)
		})
	}
}

// write records one value into a series' current slot, creating the series
// on first sight (subject to MaxSeries). Callers hold db.mu.
func (db *DB) write(slot int, name string, kind SeriesKind, v float64) {
	s, ok := db.series[name]
	if !ok {
		if len(db.series) >= db.opts.MaxSeries {
			db.dropped++
			return
		}
		s = &series{kind: kind, vals: make([]float64, db.slots), ticks: make([]int64, db.slots)}
		db.series[name] = s
		db.names = append(db.names, name)
	}
	s.vals[slot] = v
	s.ticks[slot] = db.tick
}

// bucketDelta returns the per-bucket (non-cumulative) counts a histogram
// accumulated since the previous poll. Callers hold db.mu.
func (db *DB) bucketDelta(f obs.Family) []uint64 {
	cum := f.Cum
	out := make([]uint64, len(cum))
	prev, ok := db.prev[f.Name]
	usePrev := ok && equalBounds(prev.bounds, f.Bounds) && len(prev.cum) == len(cum)
	last := uint64(0)
	for i, c := range cum {
		raw := c - last // de-cumulate current
		last = c
		if usePrev {
			praw := prev.cum[i]
			if i > 0 {
				praw -= prev.cum[i-1]
			}
			if raw >= praw {
				raw -= praw
			}
		}
		out[i] = raw
	}
	db.prev[f.Name] = histPrev{bounds: f.Bounds, cum: append([]uint64(nil), cum...)}
	return out
}

// Start launches the background sampling ticker (taking one sample
// immediately). Calling Start more than once, or after Stop, is a no-op.
func (db *DB) Start() {
	if db == nil {
		return
	}
	db.mu.Lock()
	if db.started || db.stopped {
		db.mu.Unlock()
		return
	}
	db.started = true
	db.mu.Unlock()
	db.Poll()
	go func() {
		t := time.NewTicker(db.opts.Step)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				db.Poll()
			case <-db.stopCh:
				return
			}
		}
	}()
}

// Stop ends the background ticker. Idempotent; Poll keeps working.
func (db *DB) Stop() {
	if db == nil {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.stopped {
		return
	}
	db.stopped = true
	close(db.stopCh)
}

// Point is one retained sample.
type Point struct {
	Time  time.Time `json:"time"`
	Value float64   `json:"value"`
}

// SeriesInfo summarizes one series for listings.
type SeriesInfo struct {
	Name   string     `json:"name"`
	Kind   SeriesKind `json:"-"`
	KindS  string     `json:"kind"`
	Points int        `json:"points"`
	Last   float64    `json:"last"`
}

// Stats reports the store's own shape.
type Stats struct {
	Series   int           `json:"series"`
	Slots    int           `json:"slots"`
	Ticks    int64         `json:"ticks"`
	Dropped  uint64        `json:"dropped_series"`
	Step     time.Duration `json:"-"`
	StepSecs float64       `json:"step_seconds"`
	RetSecs  float64       `json:"retention_seconds"`
}

// DBStats returns the store's shape counters.
func (db *DB) DBStats() Stats {
	if db == nil {
		return Stats{}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return Stats{
		Series: len(db.series), Slots: db.slots, Ticks: db.tick,
		Dropped: db.dropped, Step: db.opts.Step,
		StepSecs: db.opts.Step.Seconds(), RetSecs: db.opts.Retention.Seconds(),
	}
}

// List returns every retained series, sorted by name.
func (db *DB) List() []SeriesInfo {
	if db == nil {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]SeriesInfo, 0, len(db.series))
	for _, name := range db.names {
		s := db.series[name]
		info := SeriesInfo{Name: name, Kind: s.kind, KindS: kindString(s.kind)}
		if pts := db.collectLocked(s, 0); len(pts) > 0 {
			info.Points = len(pts)
			info.Last = pts[len(pts)-1].Value
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func kindString(k SeriesKind) string {
	if k == KindCounter {
		return "counter"
	}
	return "gauge"
}

// Match returns the names of retained series matching pattern (see Glob),
// sorted.
func (db *DB) Match(pattern string) []string {
	if db == nil {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	var out []string
	for name := range db.series {
		if Glob(pattern, name) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// collectLocked returns a series' valid samples oldest-first, restricted to
// the trailing window when window > 0. Callers hold db.mu.
func (db *DB) collectLocked(s *series, window time.Duration) []Point {
	if s == nil || db.tick == 0 {
		return nil
	}
	var cutoff int64
	if window > 0 {
		cutoff = db.opts.Now().Add(-window).UnixNano()
	}
	lo := db.tick - int64(db.slots)
	if lo < 0 {
		lo = 0
	}
	out := make([]Point, 0, db.slots)
	for t := lo; t < db.tick; t++ {
		slot := int(t % int64(db.slots))
		if s.ticks[slot] != t+1 { // slot stamped by a different (older) pass
			continue
		}
		ts := db.times[slot]
		if ts < cutoff {
			continue
		}
		out = append(out, Point{Time: time.Unix(0, ts), Value: s.vals[slot]})
	}
	return out
}

// Range returns the retained samples of one exactly-named series within the
// trailing window (the whole retention when window <= 0), oldest first.
func (db *DB) Range(name string, window time.Duration) []Point {
	if db == nil {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.collectLocked(db.series[name], window)
}

// Instant returns a series' most recent sample.
func (db *DB) Instant(name string) (Point, bool) {
	pts := db.Range(name, 0)
	if len(pts) == 0 {
		return Point{}, false
	}
	return pts[len(pts)-1], true
}

// Query funcs. "last" is the newest sample in the window; "rate" the
// positive-delta throughput per second (counters); "delta" the summed
// positive deltas over the window; "avg"/"min"/"max" the gauge rollups.
const (
	FuncLast  = "last"
	FuncRate  = "rate"
	FuncDelta = "delta"
	FuncAvg   = "avg"
	FuncMin   = "min"
	FuncMax   = "max"
)

// Query is one evaluation against the store. Metric may be a Glob pattern;
// matching series are each evaluated and folded with Agg ("max" by default,
// or "min"/"sum"/"avg"). Window bounds the samples considered; 0 selects
// the whole retention for range funcs and 3 steps of staleness for "last".
type Query struct {
	Metric string        `json:"metric"`
	Func   string        `json:"func,omitempty"` // default "last"
	Window time.Duration `json:"-"`
	Agg    string        `json:"agg,omitempty"`
}

// ValidFunc reports whether f names a query function.
func ValidFunc(f string) bool {
	switch f {
	case "", FuncLast, FuncRate, FuncDelta, FuncAvg, FuncMin, FuncMax:
		return true
	}
	return false
}

// Eval evaluates q. ok is false when no matching series has data in the
// window (absence — which the alert engine treats as its own condition).
func (db *DB) Eval(q Query) (value float64, ok bool) {
	if db == nil {
		return 0, false
	}
	names := []string{q.Metric}
	if strings.ContainsRune(q.Metric, '*') {
		names = db.Match(q.Metric)
	}
	agg, n := 0.0, 0
	for _, name := range names {
		v, has := db.evalOne(name, q.Func, q.Window)
		if !has {
			continue
		}
		n++
		switch q.Agg {
		case "sum", "avg":
			agg += v
		case "min":
			if n == 1 || v < agg {
				agg = v
			}
		default: // max
			if n == 1 || v > agg {
				agg = v
			}
		}
	}
	if n == 0 {
		return 0, false
	}
	if q.Agg == "avg" {
		agg /= float64(n)
	}
	return agg, true
}

// evalOne evaluates one function over one exactly-named series.
func (db *DB) evalOne(name, fn string, window time.Duration) (float64, bool) {
	switch fn {
	case "", FuncLast:
		stale := window
		if stale <= 0 {
			stale = 3 * db.opts.Step
		}
		pts := db.Range(name, stale)
		if len(pts) == 0 {
			return 0, false
		}
		return pts[len(pts)-1].Value, true
	case FuncRate, FuncDelta:
		pts := db.Range(name, window)
		if len(pts) < 2 {
			return 0, false
		}
		delta := 0.0
		for i := 1; i < len(pts); i++ {
			if d := pts[i].Value - pts[i-1].Value; d > 0 {
				delta += d // counter resets contribute zero, never negative
			}
		}
		if fn == FuncDelta {
			return delta, true
		}
		secs := pts[len(pts)-1].Time.Sub(pts[0].Time).Seconds()
		if secs <= 0 {
			return 0, false
		}
		return delta / secs, true
	case FuncAvg, FuncMin, FuncMax:
		pts := db.Range(name, window)
		if len(pts) == 0 {
			return 0, false
		}
		v := pts[0].Value
		for _, p := range pts[1:] {
			switch fn {
			case FuncAvg:
				v += p.Value
			case FuncMin:
				if p.Value < v {
					v = p.Value
				}
			case FuncMax:
				if p.Value > v {
					v = p.Value
				}
			}
		}
		if fn == FuncAvg {
			v /= float64(len(pts))
		}
		return v, true
	}
	return 0, false
}

// Glob matches name against a pattern where '*' matches any run of
// characters (including none). Segments between stars must appear in order;
// a pattern without '*' must match exactly.
func Glob(pattern, name string) bool {
	if !strings.ContainsRune(pattern, '*') {
		return pattern == name
	}
	segs := strings.Split(pattern, "*")
	if !strings.HasPrefix(name, segs[0]) {
		return false
	}
	name = name[len(segs[0]):]
	last := segs[len(segs)-1]
	for _, seg := range segs[1 : len(segs)-1] {
		i := strings.Index(name, seg)
		if i < 0 {
			return false
		}
		name = name[i+len(seg):]
	}
	return strings.HasSuffix(name, last)
}

// suffixed inserts a suffix before any inline label block, mirroring the
// registry's exposition naming: suffixed(`h{a="b"}`, "_p99") -> `h_p99{a="b"}`.
func suffixed(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}

// bucketQuantile returns the q-quantile of a bucketed distribution as the
// upper bound of the bucket where the cumulative count crosses q·total
// (+Inf falls back to the last finite bound). Empty distributions report 0.
func bucketQuantile(bounds []float64, counts []uint64, q float64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			if i < len(bounds) {
				return bounds[i]
			}
			if len(bounds) > 0 {
				return bounds[len(bounds)-1] // +Inf bucket: clamp to last bound
			}
			return 0
		}
	}
	return 0
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
