package tsdb

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// testClock is a manually advanced clock for deterministic polls.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTestClock() *testClock {
	return &testClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestDB(t *testing.T, reg *obs.Registry, step, retention time.Duration) (*DB, *testClock) {
	t.Helper()
	clk := newTestClock()
	return New(reg, Options{Step: step, Retention: retention, Now: clk.Now}), clk
}

func TestGaugeAndCounterSampling(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("g_depth")
	c := reg.Counter("c_total")
	db, clk := newTestDB(t, reg, time.Second, time.Minute)

	for i := 0; i < 5; i++ {
		g.Set(float64(10 + i))
		c.Add(3)
		db.Poll()
		clk.Advance(time.Second)
	}

	p, ok := db.Instant("g_depth")
	if !ok || p.Value != 14 {
		t.Fatalf("Instant(g_depth) = %v,%v want 14,true", p.Value, ok)
	}
	pts := db.Range("c_total", 0)
	if len(pts) != 5 {
		t.Fatalf("Range(c_total) = %d points, want 5", len(pts))
	}
	if pts[0].Value != 3 || pts[4].Value != 15 {
		t.Fatalf("counter endpoints = %v..%v, want 3..15", pts[0].Value, pts[4].Value)
	}

	// Rate over the full window: 12 units over 4s.
	v, ok := db.Eval(Query{Metric: "c_total", Func: FuncRate, Window: time.Minute})
	if !ok || v != 3 {
		t.Fatalf("rate(c_total) = %v,%v want 3,true", v, ok)
	}
	// Delta-aware: a counter reset must not produce a negative rollup.
	reg2 := obs.NewRegistry()
	db2, clk2 := newTestDB(t, reg2, time.Second, time.Minute)
	c2 := reg2.Counter("r_total")
	c2.Add(100)
	db2.Poll()
	clk2.Advance(time.Second)
	// Simulate a reset by sampling a fresh registry counter under one name.
	reg3 := obs.NewRegistry()
	db2.mu.Lock()
	db2.reg = reg3
	db2.mu.Unlock()
	reg3.Counter("r_total").Add(5)
	db2.Poll()
	clk2.Advance(time.Second)
	if v, ok := db2.Eval(Query{Metric: "r_total", Func: FuncDelta, Window: time.Minute}); !ok || v != 0 {
		t.Fatalf("delta across reset = %v,%v want 0,true", v, ok)
	}
}

func TestRingWrapKeepsOnlyRetention(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("w")
	db, clk := newTestDB(t, reg, time.Second, 4*time.Second) // 4 slots

	for i := 0; i < 10; i++ {
		g.Set(float64(i))
		db.Poll()
		clk.Advance(time.Second)
	}
	pts := db.Range("w", 0)
	if len(pts) != 4 {
		t.Fatalf("after wrap: %d points, want 4", len(pts))
	}
	if pts[0].Value != 6 || pts[3].Value != 9 {
		t.Fatalf("retained window = %v..%v, want 6..9", pts[0].Value, pts[3].Value)
	}
	for i := 1; i < len(pts); i++ {
		if !pts[i].Time.After(pts[i-1].Time) {
			t.Fatalf("points out of order at %d", i)
		}
	}
}

func TestWindowedRollups(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("v")
	db, clk := newTestDB(t, reg, time.Second, time.Minute)
	for _, v := range []float64{5, 1, 9, 3} {
		g.Set(v)
		db.Poll()
		clk.Advance(time.Second)
	}
	cases := []struct {
		fn   string
		want float64
	}{{FuncAvg, 4.5}, {FuncMin, 1}, {FuncMax, 9}, {FuncLast, 3}}
	for _, tc := range cases {
		v, ok := db.Eval(Query{Metric: "v", Func: tc.fn, Window: time.Minute})
		if !ok || v != tc.want {
			t.Errorf("%s(v) = %v,%v want %v,true", tc.fn, v, ok, tc.want)
		}
	}
}

func TestHistogramQuantileRollup(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("lat_seconds", []float64{0.01, 0.1, 1})
	db, clk := newTestDB(t, reg, time.Second, time.Minute)

	for i := 0; i < 100; i++ {
		h.Observe(0.005) // all in the first bucket
	}
	db.Poll()
	clk.Advance(time.Second)

	// Interval quantiles: second interval is dominated by slow observations,
	// even though cumulatively the fast ones outnumber them.
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	db.Poll()

	if v, ok := db.Eval(Query{Metric: "lat_seconds_p99"}); !ok || v != 1 {
		t.Fatalf("interval p99 = %v,%v want 1,true (slow interval)", v, ok)
	}
	if v, ok := db.Eval(Query{Metric: "lat_seconds_count", Func: FuncLast}); !ok || v != 110 {
		t.Fatalf("count series = %v,%v want 110,true", v, ok)
	}
	// Labelled histograms keep the label block after the rollup suffix.
	reg2 := obs.NewRegistry()
	db2, _ := newTestDB(t, reg2, time.Second, time.Minute)
	reg2.Histogram(obs.Label("req_seconds", "route", "GET /x"), []float64{0.1, 1}).Observe(0.05)
	db2.Poll()
	if _, ok := db2.Instant(`req_seconds_p50{route="GET /x"}`); !ok {
		t.Fatalf("labelled quantile series missing; have %v", db2.Match("req_seconds*"))
	}
}

func TestSourcesAndGlobAggregation(t *testing.T) {
	db, clk := newTestDB(t, nil, time.Second, time.Minute)
	vals := map[string]float64{"w1": 2, "w2": 7}
	db.AddSource(func(emit func(string, SeriesKind, float64)) {
		for w, v := range vals {
			emit(obs.Label("worker_points_total", "worker", w), KindCounter, v)
			emit(obs.Label("worker_up", "worker", w), KindGauge, 1)
		}
	})
	db.Poll()
	clk.Advance(time.Second)
	vals["w1"], vals["w2"] = 5, 11
	db.Poll()

	if v, ok := db.Eval(Query{Metric: "worker_points_total{*}", Func: FuncDelta, Window: time.Minute, Agg: "sum"}); !ok || v != 7 {
		t.Fatalf("summed worker delta = %v,%v want 7,true", v, ok)
	}
	if v, ok := db.Eval(Query{Metric: "worker_up{*}", Agg: "min"}); !ok || v != 1 {
		t.Fatalf("min worker_up = %v,%v want 1,true", v, ok)
	}
	if got := db.Match("worker_*"); len(got) != 4 {
		t.Fatalf("Match(worker_*) = %v, want 4 series", got)
	}
}

func TestAbsenceAndStaleness(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("s")
	db, clk := newTestDB(t, reg, time.Second, time.Minute)
	g.Set(1)
	db.Poll()

	if _, ok := db.Eval(Query{Metric: "missing"}); ok {
		t.Fatal("Eval of unknown series reported data")
	}
	// "last" with the default staleness bound (3 steps) stops reporting once
	// the clock moves past it without new polls.
	clk.Advance(10 * time.Second)
	if _, ok := db.Eval(Query{Metric: "s"}); ok {
		t.Fatal("stale sample still reported by last")
	}
	// An explicit window can reach further back.
	if v, ok := db.Eval(Query{Metric: "s", Window: time.Minute}); !ok || v != 1 {
		t.Fatalf("windowed last = %v,%v want 1,true", v, ok)
	}
}

func TestMaxSeriesBound(t *testing.T) {
	clk := newTestClock()
	db := New(nil, Options{Step: time.Second, Retention: time.Minute, MaxSeries: 3, Now: clk.Now})
	db.AddSource(func(emit func(string, SeriesKind, float64)) {
		for i := 0; i < 10; i++ {
			emit(fmt.Sprintf("s%d", i), KindGauge, 1)
		}
	})
	db.Poll()
	st := db.DBStats()
	if st.Series != 3 || st.Dropped != 7 {
		t.Fatalf("stats = %+v, want 3 series / 7 dropped", st)
	}
}

func TestGlob(t *testing.T) {
	cases := []struct {
		pat, name string
		want      bool
	}{
		{"a_total", "a_total", true},
		{"a_total", "a_total{x=\"1\"}", false},
		{"a_total{*}", "a_total{x=\"1\"}", true},
		{"a_total{*", "a_total{x=\"1\"}", true},
		{"http_requests_total{*code=\"5*", `http_requests_total{route="GET /x",code="500"}`, true},
		{"http_requests_total{*code=\"5*", `http_requests_total{route="GET /x",code="200"}`, false},
		{"*_p99*", `lat_p99{route="a"}`, true},
		{"x*y*z", "xAyBz", true},
		{"x*y*z", "xAzBy", false},
	}
	for _, tc := range cases {
		if got := Glob(tc.pat, tc.name); got != tc.want {
			t.Errorf("Glob(%q, %q) = %v, want %v", tc.pat, tc.name, got, tc.want)
		}
	}
}

// TestConcurrentPollAndQuery is the race-detector target: a background
// ticker-style poller racing queries and source registration.
func TestConcurrentPollAndQuery(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("busy_total")
	db := New(reg, Options{Step: time.Millisecond, Retention: 100 * time.Millisecond})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(3)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.Inc()
				db.Poll()
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				db.Eval(Query{Metric: "busy_total", Func: FuncRate, Window: time.Second})
				db.List()
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				db.Range("busy_total", 50*time.Millisecond)
			}
		}
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestNilDBIsNoOp(t *testing.T) {
	var db *DB
	db.Poll()
	db.Start()
	db.Stop()
	db.AddSource(nil)
	if _, ok := db.Eval(Query{Metric: "x"}); ok {
		t.Fatal("nil DB reported data")
	}
	if db.Range("x", 0) != nil || db.List() != nil || db.Match("*") != nil {
		t.Fatal("nil DB returned non-nil results")
	}
}
