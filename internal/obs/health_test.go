package obs

import (
	"strings"
	"testing"
)

// healthSpecies is the synthetic species table of the ClockHealth tests:
// three phase species and their absence indicators.
var healthSpecies = []string{"R", "G", "B", "iR", "iG", "iB"}

func newHealth(t *testing.T) *ClockHealth {
	t.Helper()
	w := &ClockHealth{
		Phases: []PhaseGroup{
			{Name: "red", Species: []string{"R"}},
			{Name: "green", Species: []string{"G"}},
			{Name: "blue", Species: []string{"B"}},
		},
		Indicators: []string{"iR", "iG", "iB"},
		Threshold:  0.5,
	}
	if err := w.Bind(healthSpecies); err != nil {
		t.Fatal(err)
	}
	return w
}

// y builds a state vector [R G B iR iG iB].
func y(r, g, b, ir, ig, ib float64) []float64 { return []float64{r, g, b, ir, ig, ib} }

// TestClockHealthCleanRun: a perfectly regular tri-phase cycle with silent
// indicators must raise zero alerts.
func TestClockHealthCleanRun(t *testing.T) {
	w := newHealth(t)
	rec := &recorder{}
	states := []([]float64){
		y(1, 0, 0, 0, 0, 0), y(0, 1, 0, 0, 0, 0), y(0, 0, 1, 0, 0, 0),
	}
	tt := 0.0
	for cycle := 0; cycle < 6; cycle++ {
		for _, s := range states {
			w.Observe(tt, s, rec)
			tt++
		}
	}
	w.Finish(tt, rec)
	if len(rec.alerts) != 0 {
		t.Fatalf("clean run raised %d alerts: %+v", len(rec.alerts), rec.alerts)
	}
}

// TestClockHealthPhaseOverlap: two phase groups simultaneously occupied must
// alert once per episode, not once per sample.
func TestClockHealthPhaseOverlap(t *testing.T) {
	w := newHealth(t)
	rec := &recorder{}
	w.Observe(0, y(1, 0, 0, 0, 0, 0), rec)
	w.Observe(1, y(1, 1, 0, 0, 0, 0), rec) // overlap begins
	w.Observe(2, y(1, 1, 0, 0, 0, 0), rec) // still the same episode
	w.Observe(3, y(0, 1, 0, 0, 0, 0), rec) // clears
	w.Observe(4, y(0, 1, 1, 0, 0, 0), rec) // second episode
	w.Finish(5, rec)

	var overlaps []Alert
	for _, a := range rec.alerts {
		if a.Rule == "phase_overlap" {
			overlaps = append(overlaps, a)
		}
	}
	if len(overlaps) != 2 {
		t.Fatalf("overlap alerts = %d, want 2: %+v", len(overlaps), rec.alerts)
	}
	if overlaps[0].T != 1 || !strings.Contains(overlaps[0].Subject, "red") ||
		!strings.Contains(overlaps[0].Subject, "green") {
		t.Errorf("first overlap = %+v", overlaps[0])
	}
	if overlaps[1].T != 4 || !strings.Contains(overlaps[1].Subject, "blue") {
		t.Errorf("second overlap = %+v", overlaps[1])
	}
}

// TestClockHealthIndicatorLeak: an absence indicator present while its own
// colour class is occupied must alert (once per episode), and an indicator
// present while its class is EMPTY must not — that is the legal window.
func TestClockHealthIndicatorLeak(t *testing.T) {
	w := newHealth(t)
	rec := &recorder{}
	w.Observe(0, y(0, 1, 0, 0.2, 0, 0), rec) // iR high but R empty: legal
	w.Observe(1, y(1, 0, 0, 0.2, 0, 0), rec) // iR high while R occupied: leak
	w.Observe(2, y(1, 0, 0, 0.2, 0, 0), rec) // same episode
	w.Observe(3, y(1, 0, 0, 0, 0, 0), rec)   // clears
	w.Finish(4, rec)

	var leaks []Alert
	for _, a := range rec.alerts {
		if a.Rule == "indicator_leak" {
			leaks = append(leaks, a)
		}
	}
	if len(leaks) != 1 {
		t.Fatalf("leak alerts = %d, want 1: %+v", len(leaks), rec.alerts)
	}
	if leaks[0].Subject != "iR" || leaks[0].T != 1 || leaks[0].Value != 0.2 {
		t.Errorf("leak = %+v", leaks[0])
	}
}

// TestClockHealthPeriodJitter: irregular red onsets past MinCycles must raise
// exactly one period_jitter alert per run.
func TestClockHealthPeriodJitter(t *testing.T) {
	w := newHealth(t)
	rec := &recorder{}
	// Onsets at 0, 1, 5, 6, 10: periods 1, 4, 1, 4 — rel std dev ≈ 0.6.
	onsets := []float64{0, 1, 5, 6, 10}
	tt, next := 0.0, 0
	for tt <= 11 {
		r := 0.0
		if next < len(onsets) && tt >= onsets[next] {
			r = 1.0
			if tt >= onsets[next]+0.5 { // pulse lasts half a unit
				r = 0
			}
		}
		// Drive with a fine sample grid: pulse high at the onset instant,
		// low in between so the Schmitt trigger re-arms.
		high := false
		for _, o := range onsets {
			if tt >= o && tt < o+0.25 {
				high = true
			}
		}
		if high {
			r = 1
		} else {
			r = 0
		}
		if next < len(onsets) && tt >= onsets[next]+0.25 {
			next++
		}
		w.Observe(tt, y(r, 0, 0, 0, 0, 0), rec)
		tt += 0.125
	}
	w.Finish(tt, rec)

	var jit []Alert
	for _, a := range rec.alerts {
		if a.Rule == "period_jitter" {
			jit = append(jit, a)
		}
	}
	if len(jit) != 1 {
		t.Fatalf("jitter alerts = %d, want 1: %+v", len(jit), rec.alerts)
	}
	if jit[0].Value <= w.maxJit {
		t.Errorf("jitter value %g not above limit %g", jit[0].Value, jit[0].Limit)
	}
}

// TestClockHealthDutyDrift: an indicator stuck high for the whole run must
// raise duty_drift at Finish; the others stay silent.
func TestClockHealthDutyDrift(t *testing.T) {
	w := newHealth(t)
	rec := &recorder{}
	for i := 0; i <= 10; i++ {
		w.Observe(float64(i), y(0, 0, 0, 1, 0, 0), rec)
	}
	w.Finish(10, rec)
	var duty []Alert
	for _, a := range rec.alerts {
		if a.Rule == "duty_drift" {
			duty = append(duty, a)
		}
	}
	if len(duty) != 1 {
		t.Fatalf("duty alerts = %d, want 1: %+v", len(duty), rec.alerts)
	}
	if duty[0].Subject != "iR" || duty[0].Value <= 0.99 {
		t.Errorf("duty = %+v", duty[0])
	}
	// Disabling the rule must silence it.
	w2 := newHealth(t)
	w2.MaxDuty = -1
	if err := w2.Bind(healthSpecies); err != nil {
		t.Fatal(err)
	}
	rec2 := &recorder{}
	for i := 0; i <= 10; i++ {
		w2.Observe(float64(i), y(0, 0, 0, 1, 0, 0), rec2)
	}
	w2.Finish(10, rec2)
	if len(rec2.alerts) != 0 {
		t.Fatalf("disabled duty rule still alerted: %+v", rec2.alerts)
	}
}

// TestClockHealthBindErrors: configuration mistakes must fail at Bind with
// telling messages, not at Observe.
func TestClockHealthBindErrors(t *testing.T) {
	cases := []struct {
		name string
		w    *ClockHealth
		want string
	}{
		{"one group", &ClockHealth{
			Phases:    []PhaseGroup{{Name: "r", Species: []string{"R"}}},
			Threshold: 0.5,
		}, "at least 2"},
		{"zero threshold", &ClockHealth{
			Phases: []PhaseGroup{
				{Name: "r", Species: []string{"R"}}, {Name: "g", Species: []string{"G"}},
			},
		}, "Threshold"},
		{"indicator mismatch", &ClockHealth{
			Phases: []PhaseGroup{
				{Name: "r", Species: []string{"R"}}, {Name: "g", Species: []string{"G"}},
			},
			Indicators: []string{"iR"},
			Threshold:  0.5,
		}, "must match"},
		{"unknown species", &ClockHealth{
			Phases: []PhaseGroup{
				{Name: "r", Species: []string{"R"}}, {Name: "g", Species: []string{"nope"}},
			},
			Threshold: 0.5,
		}, "unknown species"},
	}
	for _, c := range cases {
		err := c.w.Bind(healthSpecies)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

// TestClockHealthRebind: Bind must reset all episode and accumulator state so
// a watcher can be reused across sequential (never concurrent) runs.
func TestClockHealthRebind(t *testing.T) {
	w := newHealth(t)
	rec := &recorder{}
	w.Observe(0, y(1, 1, 0, 0, 0, 0), rec)
	if len(rec.alerts) != 1 {
		t.Fatalf("setup overlap not alerted: %+v", rec.alerts)
	}
	if err := w.Bind(healthSpecies); err != nil {
		t.Fatal(err)
	}
	rec2 := &recorder{}
	w.Observe(0, y(1, 1, 0, 0, 0, 0), rec2)
	if len(rec2.alerts) != 1 {
		t.Fatalf("episode state survived rebind: %+v", rec2.alerts)
	}
	w.Finish(1, rec2)
	if len(rec2.alerts) != 1 {
		t.Fatalf("stale duty state after rebind: %+v", rec2.alerts)
	}
}
