// Package obs is the runtime instrumentation layer: a zero-dependency
// (stdlib-only) set of event hooks, a concurrency-safe metrics registry and
// machine-readable telemetry sinks shared by every simulator in the
// repository.
//
// The DAC 2011 constructs make *dynamic* correctness claims — absence
// indicators may accumulate only while their colour class is empty, phase
// hand-offs must be sharpened by the positive-feedback dimer, the molecular
// clock must tick with a stable period — and this package is how those
// claims are watched while a simulation runs instead of reconstructed
// post-hoc from a dense trace.Trace:
//
//   - Observer is the hook interface the simulators (sim.Run across all
//     methods) and the ODE integrator (ode.Integrate) call into.
//   - Registry (registry.go) aggregates counters, gauges and histograms and
//     renders them as Prometheus text exposition or a human summary.
//   - JSONL (jsonl.go) streams events as JSON lines for offline analysis.
//   - Watchers (watch.go) derive semantic events — clock edges, phase
//     changes, absence-indicator duty cycles — from raw state samples.
//
// A nil Observer is the default everywhere and costs one predictable branch
// per hot-loop iteration; see BenchmarkODEClockCycle vs
// BenchmarkODEClockCycleInstrumented at the repository root.
package obs

import (
	"fmt"
	"io"
	"time"
)

// SimStart announces a simulation run. Species and Reactions are the
// network's display tables, indexed consistently with the integer fields of
// later events; sinks may retain them for the duration of the run.
type SimStart struct {
	Sim       string   // "ode", "ssa" or "tauleap"
	T0, T1    float64  // simulated time span
	Species   []string // species names by index
	Reactions []string // reaction display names by index
}

// SimEnd closes a simulation run.
type SimEnd struct {
	Sim         string
	T           float64 // simulated time reached
	Steps       int     // accepted ODE steps, SSA firings, or tau-leaps
	WallSeconds float64 // wall-clock duration of the run
	Err         string  // non-empty if the run failed
	// Kernel carries the run's kernel hot-path counters (all zero for ODE
	// runs, which have no selector or leap machinery).
	Kernel KernelStats
	// ODE carries the deterministic backend's solver decision and stiff
	// integrator effort (zero for stochastic runs).
	ODE ODEStats
}

// ODEStats reports the ODE backend's solver selection and integration
// effort, mirroring the sim layer's solver knob without importing it. An
// auto run that never trips the stiffness detector reports Solver "auto"
// with Switched false and zero stiff counters.
type ODEStats struct {
	Solver         string  // requested solver: "auto", "explicit" or "stiff"
	Switched       bool    // auto run handed off to the stiff integrator
	SwitchT        float64 // simulated time of the handoff (0 if none)
	StiffSteps     int     // accepted steps taken by the stiff integrator
	JacEvals       int     // analytic Jacobian refills
	Factorizations int     // LU factorizations of the shifted matrix
	Solves         int     // triangular backsolves
	Rejected       int     // error-control rejections (both integrators)
	Evals          int     // derivative evaluations (both integrators)
}

// IsZero reports whether the event carries no ODE solver information.
func (o ODEStats) IsZero() bool { return o == ODEStats{} }

// KernelStats mirrors kernel.Stats — the simulator's hot-path decision
// counters — without importing the sim layer (obs stays stdlib-only at the
// bottom of the dependency graph). The sim package converts at run end.
type KernelStats struct {
	FenwickSelects  uint64 // SSA firings selected via the Fenwick descent
	LinearSelects   uint64 // SSA firings selected via the linear scan
	ExactRecomputes uint64 // full propensity rebuilds
	TightLoops      uint64 // entries into the branch-free tight SSA loop
	FullLoops       uint64 // entries into the event/observer-aware SSA loop
	LeapRejections  uint64 // rolled-back tau-leap steps
	EnsembleBlocks  uint64 // SoA ensemble blocks executed
	EnsemblePasses  uint64 // macro passes over ensemble lanes
	LaneSteps       uint64 // ensemble lane advances (active lanes over passes)
	LaneSlots       uint64 // ensemble lane slots available (width over passes)
}

// IsZero reports whether no kernel counter fired.
func (k KernelStats) IsZero() bool { return k == KernelStats{} }

// Step reports one integrator step or stochastic sampling step.
type Step struct {
	T        float64
	H        float64 // step size (ODE/tau-leap) or waiting time (SSA)
	ErrNorm  float64 // ODE error-control norm of the trial step; 0 otherwise
	Accepted bool    // false for error-control rejections / rolled-back leaps
	// Propensity is the total reaction propensity at the step (stochastic
	// simulators only; 0 for the ODE).
	Propensity float64
}

// ReactionFiring reports reaction firings: one event per firing under the
// exact SSA, one event per Poisson batch under tau-leaping.
type ReactionFiring struct {
	T        float64
	Reaction int     // index into SimStart.Reactions
	Count    float64 // firings represented by this event (>= 1)
}

// ClockEdge reports a Schmitt-triggered threshold crossing of a watched
// species — the molecular clock's phase species rising into (Rising=true) or
// falling out of (Rising=false) its active phase.
type ClockEdge struct {
	T       float64
	Species string
	Rising  bool
	Level   float64 // threshold that was crossed
}

// PhaseChange reports that the dominant phase of a watched group changed,
// e.g. the tri-phase heartbeat moving red -> green. From is empty for the
// first determination of a run.
type PhaseChange struct {
	T        float64
	From, To string
}

// Alert is a structured health finding raised by an analyzer (ClockHealth):
// the tri-phase machinery violated one of the paper's dynamic invariants.
// Rule is the machine-readable discriminator clients branch on.
type Alert struct {
	T    float64
	Rule string // "phase_overlap", "indicator_leak", "period_jitter", "duty_drift"
	// Subject names the offending phase group, species or indicator.
	Subject string
	// Value is the measured quantity and Limit the threshold it violated.
	Value, Limit float64
	Detail       string // human-readable explanation
}

// Observer receives instrumentation events from the simulators. All methods
// are called from the simulation goroutine; implementations that are shared
// across concurrent simulations must synchronize internally (Registry does;
// RegistryObserver, JSONL and Progress keep per-run state and must not be
// shared by *concurrent* runs).
//
// Embed Base to implement only a subset of the interface.
type Observer interface {
	OnSimStart(SimStart)
	OnStep(Step)
	OnReactionFiring(ReactionFiring)
	OnClockEdge(ClockEdge)
	OnPhaseChange(PhaseChange)
	OnAlert(Alert)
	OnSimEnd(SimEnd)
}

// Base is a no-op Observer for embedding.
type Base struct{}

func (Base) OnSimStart(SimStart)             {}
func (Base) OnStep(Step)                     {}
func (Base) OnReactionFiring(ReactionFiring) {}
func (Base) OnClockEdge(ClockEdge)           {}
func (Base) OnPhaseChange(PhaseChange)       {}
func (Base) OnAlert(Alert)                   {}
func (Base) OnSimEnd(SimEnd)                 {}

// Nop is a ready-made no-op Observer, used by the simulators as the event
// sink for watchers when no real observer is configured.
var Nop Observer = Base{}

type multi []Observer

func (m multi) OnSimStart(e SimStart) {
	for _, o := range m {
		o.OnSimStart(e)
	}
}
func (m multi) OnStep(e Step) {
	for _, o := range m {
		o.OnStep(e)
	}
}
func (m multi) OnReactionFiring(e ReactionFiring) {
	for _, o := range m {
		o.OnReactionFiring(e)
	}
}
func (m multi) OnClockEdge(e ClockEdge) {
	for _, o := range m {
		o.OnClockEdge(e)
	}
}
func (m multi) OnPhaseChange(e PhaseChange) {
	for _, o := range m {
		o.OnPhaseChange(e)
	}
}
func (m multi) OnAlert(e Alert) {
	for _, o := range m {
		o.OnAlert(e)
	}
}
func (m multi) OnSimEnd(e SimEnd) {
	for _, o := range m {
		o.OnSimEnd(e)
	}
}

// Multi fans events out to every non-nil observer. It returns nil when all
// arguments are nil (preserving the simulators' fast path) and the observer
// itself when exactly one is non-nil.
func Multi(obs ...Observer) Observer {
	var live multi
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	default:
		return live
	}
}

// Progress is an Observer that prints coarse progress lines (every Every
// fraction of the simulated horizon, default 10%) to W — crnsim's -progress
// flag. It keeps per-run state and must not be shared by concurrent runs.
type Progress struct {
	Base
	W     io.Writer
	Every float64 // fraction of the horizon between lines; default 0.1

	t0, t1 float64
	next   float64
	steps  int
	start  time.Time
}

// OnSimStart resets the milestone tracker for a new run.
func (p *Progress) OnSimStart(e SimStart) {
	p.t0, p.t1 = e.T0, e.T1
	every := p.Every
	if every <= 0 {
		every = 0.1
	}
	p.next = every
	p.steps = 0
	p.start = time.Now()
	fmt.Fprintf(p.W, "progress: %s start t=%g..%g (%d species, %d reactions)\n",
		e.Sim, e.T0, e.T1, len(e.Species), len(e.Reactions))
}

// OnStep prints a line each time the run crosses a milestone fraction.
func (p *Progress) OnStep(e Step) {
	if !e.Accepted {
		return
	}
	p.steps++
	if p.t1 <= p.t0 {
		return
	}
	frac := (e.T - p.t0) / (p.t1 - p.t0)
	if frac < p.next {
		return
	}
	every := p.Every
	if every <= 0 {
		every = 0.1
	}
	for p.next <= frac {
		p.next += every
	}
	fmt.Fprintf(p.W, "progress: %3.0f%% t=%-10.4g steps=%-8d elapsed=%s\n",
		100*frac, e.T, p.steps, time.Since(p.start).Round(time.Millisecond))
}

// OnSimEnd prints the closing summary line.
func (p *Progress) OnSimEnd(e SimEnd) {
	status := "done"
	if e.Err != "" {
		status = "FAILED: " + e.Err
	}
	fmt.Fprintf(p.W, "progress: %s %s t=%g steps=%d wall=%.3fs\n",
		e.Sim, status, e.T, e.Steps, e.WallSeconds)
}
