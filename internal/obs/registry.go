package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing float64, safe for concurrent use.
type Counter struct {
	bits atomic.Uint64
}

// Add increases the counter by v (v < 0 is ignored: counters only go up).
func (c *Counter) Add(v float64) {
	if v < 0 || v != v {
		return
	}
	for {
		old := c.bits.Load()
		cur := math.Float64frombits(old)
		if c.bits.CompareAndSwap(old, math.Float64bits(cur+v)) {
			return
		}
	}
}

// Inc increases the counter by 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a float64 that may go up and down, safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set assigns the gauge.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by v (which may be negative).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		cur := math.Float64frombits(old)
		if g.bits.CompareAndSwap(old, math.Float64bits(cur+v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates observations into cumulative buckets, Prometheus
// style. Safe for concurrent use.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // strictly increasing upper bounds; +Inf implied
	counts []uint64  // len(bounds)+1, last bucket is +Inf
	sum    float64
	n      uint64
}

// DefaultStepBuckets spans the step sizes seen across the repository's
// simulations: decades from 1e-9 to 10 with a 1-2-5 subdivision.
func DefaultStepBuckets() []float64 {
	var b []float64
	for e := -9; e <= 1; e++ {
		p := math.Pow(10, float64(e))
		b = append(b, p, 2*p, 5*p)
	}
	return b
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]uint64, len(bs)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// snapshot returns cumulative bucket counts aligned with bounds plus +Inf.
func (h *Histogram) snapshot() (bounds []float64, cum []uint64, sum float64, n uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum = make([]uint64, len(h.counts))
	acc := uint64(0)
	for i, c := range h.counts {
		acc += c
		cum[i] = acc
	}
	return h.bounds, cum, h.sum, h.n
}

// Registry is a concurrency-safe collection of named metrics. Metric names
// follow the Prometheus convention and may carry labels rendered inline,
// e.g. `reaction_firings_total{reaction="xfer.rg"}` (see Label). All methods
// are safe for concurrent use; the metric handles they return are cheap to
// cache and themselves safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	order    []metricKey // registration order, for stable-but-grouped output
}

type metricKey struct {
	name string
	kind byte // 'c', 'g', 'h'
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Label renders a metric name with label pairs in Prometheus text syntax:
// Label("x_total", "sim", "ode") == `x_total{sim="ode"}`. kv must alternate
// keys and values; values are escaped per the exposition format (backslash,
// double quote and newline). An odd trailing key gets an empty value rather
// than being dropped.
func Label(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(kv[i])
		sb.WriteString(`="`)
		if i+1 < len(kv) {
			sb.WriteString(escapeLabel(kv[i+1]))
		}
		sb.WriteString(`"`)
	}
	sb.WriteByte('}')
	return sb.String()
}

// labelEscaper implements the text exposition format's label-value escaping
// (version 0.0.4: `\` -> `\\`, `"` -> `\"`, newline -> `\n`). Package-level
// so Label does not rebuild the replacer — and its internal trie — per call.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string {
	return labelEscaper.Replace(v)
}

// sanitizeName guards metric names registered directly (bypassing Label)
// against raw line breaks, which would split a sample line and corrupt the
// whole exposition: inside a quoted label value a newline becomes the `\n`
// escape, anywhere else line-break characters become '_'. Names built with
// Label are already clean and pass through untouched (no allocation).
func sanitizeName(name string) string {
	if !strings.ContainsAny(name, "\n\r") {
		return name
	}
	var sb strings.Builder
	sb.Grow(len(name) + 4)
	inQuotes, escaped := false, false
	for _, r := range name {
		switch {
		case escaped:
			escaped = false
			sb.WriteRune(r)
		case inQuotes && r == '\\':
			escaped = true
			sb.WriteRune(r)
		case r == '"':
			inQuotes = !inQuotes
			sb.WriteRune(r)
		case r == '\n':
			if inQuotes {
				sb.WriteString(`\n`)
			} else {
				sb.WriteByte('_')
			}
		case r == '\r':
			sb.WriteByte('_')
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// Counter returns the named counter, creating it on first use. Raw line
// breaks in name are sanitized (see sanitizeName) so a hostile or buggy
// name cannot corrupt the exposition.
func (r *Registry) Counter(name string) *Counter {
	name = sanitizeName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
		r.order = append(r.order, metricKey{name, 'c'})
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Names are
// sanitized like Counter's.
func (r *Registry) Gauge(name string) *Gauge {
	name = sanitizeName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
		r.order = append(r.order, metricKey{name, 'g'})
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (later calls ignore bounds). Names are
// sanitized like Counter's.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	name = sanitizeName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
		r.order = append(r.order, metricKey{name, 'h'})
	}
	return h
}

// baseName strips an inline label block: `a_total{x="y"}` -> `a_total`.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// suffixed inserts a name suffix before any inline label block:
// suffixed(`h{a="b"}`, "_bucket") -> `h_bucket{a="b"}`.
func suffixed(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}

// withLabel appends an extra label pair to a possibly-labelled name:
// withLabel(`h{a="b"}`, `le`, `0.5`) -> `h{a="b",le="0.5"}`.
func withLabel(name, key, val string) string {
	esc := key + `="` + escapeLabel(val) + `"`
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:len(name)-1] + "," + esc + "}"
	}
	return name + "{" + esc + "}"
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// sortKeys orders metrics in place, grouped by base name (so the # TYPE
// header precedes every series of that family) and alphabetically within the
// family.
func sortKeys(keys []metricKey) {
	sort.SliceStable(keys, func(i, j int) bool {
		bi, bj := baseName(keys[i].name), baseName(keys[j].name)
		if bi != bj {
			return bi < bj
		}
		return keys[i].name < keys[j].name
	})
}

// copyRefs snapshots the registration order and the metric pointers under the
// lock, so callers can read values without racing concurrent registrations.
// The metric structs themselves are safe to read concurrently.
func (r *Registry) copyRefs() ([]metricKey, map[string]*Counter, map[string]*Gauge, map[string]*Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	keys := append([]metricKey(nil), r.order...)
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	return keys, counters, gauges, hists
}

// WriteTo renders the registry in the Prometheus text exposition format
// (version 0.0.4): `# TYPE` headers followed by `name value` sample lines,
// histograms expanded into cumulative `_bucket{le=...}`, `_sum` and `_count`
// series.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	keys, counters, gauges, hists := r.copyRefs()
	sortKeys(keys)

	var total int64
	emit := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	lastTyped := ""
	header := func(name, kind string) error {
		base := baseName(name)
		if base == lastTyped {
			return nil
		}
		lastTyped = base
		return emit("# TYPE %s %s\n", base, kind)
	}
	for _, k := range keys {
		switch k.kind {
		case 'c':
			if err := header(k.name, "counter"); err != nil {
				return total, err
			}
			if err := emit("%s %s\n", k.name, formatValue(counters[k.name].Value())); err != nil {
				return total, err
			}
		case 'g':
			if err := header(k.name, "gauge"); err != nil {
				return total, err
			}
			if err := emit("%s %s\n", k.name, formatValue(gauges[k.name].Value())); err != nil {
				return total, err
			}
		case 'h':
			if err := header(k.name, "histogram"); err != nil {
				return total, err
			}
			bounds, cum, sum, n := hists[k.name].snapshot()
			bucket := suffixed(k.name, "_bucket")
			for i, b := range bounds {
				if err := emit("%s %d\n", withLabel(bucket, "le", formatValue(b)), cum[i]); err != nil {
					return total, err
				}
			}
			if err := emit("%s %d\n", withLabel(bucket, "le", "+Inf"), cum[len(cum)-1]); err != nil {
				return total, err
			}
			if err := emit("%s %s\n", suffixed(k.name, "_sum"), formatValue(sum)); err != nil {
				return total, err
			}
			if err := emit("%s %d\n", suffixed(k.name, "_count"), n); err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

// Snapshot returns every scalar metric by full name: counters and gauges at
// their current value, histograms as name_count / name_sum / name_mean.
func (r *Registry) Snapshot() map[string]float64 {
	keys, counters, gauges, hists := r.copyRefs()

	out := make(map[string]float64, len(keys))
	for _, k := range keys {
		switch k.kind {
		case 'c':
			out[k.name] = counters[k.name].Value()
		case 'g':
			out[k.name] = gauges[k.name].Value()
		case 'h':
			h := hists[k.name]
			out[k.name+"_count"] = float64(h.Count())
			out[k.name+"_sum"] = h.Sum()
			out[k.name+"_mean"] = h.Mean()
		}
	}
	return out
}

// Family is one metric's point-in-time export: counters and gauges carry
// Value; histograms carry the full cumulative bucket snapshot (Bounds with
// the implied +Inf last, Cum aligned one longer than Bounds) plus Sum and
// Count. Kind matches the registry's internal discriminator: 'c', 'g', 'h'.
type Family struct {
	Name   string
	Kind   byte
	Value  float64
	Bounds []float64
	Cum    []uint64
	Sum    float64
	Count  uint64
}

// Export snapshots every metric in registration order. It is the bulk-read
// companion of Snapshot for consumers that need histogram buckets — the
// time-series sampler derives interval quantiles from consecutive Export
// calls' cumulative bucket deltas.
func (r *Registry) Export() []Family {
	keys, counters, gauges, hists := r.copyRefs()
	out := make([]Family, 0, len(keys))
	for _, k := range keys {
		switch k.kind {
		case 'c':
			out = append(out, Family{Name: k.name, Kind: 'c', Value: counters[k.name].Value()})
		case 'g':
			out = append(out, Family{Name: k.name, Kind: 'g', Value: gauges[k.name].Value()})
		case 'h':
			bounds, cum, sum, n := hists[k.name].snapshot()
			out = append(out, Family{Name: k.name, Kind: 'h', Bounds: bounds, Cum: cum, Sum: sum, Count: n})
		}
	}
	return out
}

// Counters returns every counter's current value by full (possibly labelled)
// name. It is the wire-transport companion of Snapshot: counters are the only
// metric kind that merges losslessly by addition, so a cluster worker ships
// its per-partition counter deltas as this plain map and the coordinator
// folds them into its own registry (gauges and histograms stay node-local).
func (r *Registry) Counters() map[string]float64 {
	r.mu.Lock()
	out := make(map[string]float64, len(r.counters))
	for k, v := range r.counters {
		out[k] = v.Value()
	}
	r.mu.Unlock()
	return out
}

// Summary renders a short human-readable account of the registry, one metric
// per line, histograms as count/mean.
func (r *Registry) Summary() string {
	keys, counters, gauges, hists := r.copyRefs()
	sortKeys(keys)

	var sb strings.Builder
	for _, k := range keys {
		switch k.kind {
		case 'c':
			fmt.Fprintf(&sb, "%-50s %s\n", k.name, formatValue(counters[k.name].Value()))
		case 'g':
			fmt.Fprintf(&sb, "%-50s %s\n", k.name, formatValue(gauges[k.name].Value()))
		case 'h':
			h := hists[k.name]
			fmt.Fprintf(&sb, "%-50s n=%d mean=%.4g\n", k.name, h.Count(), h.Mean())
		}
	}
	return sb.String()
}

// Merge folds every metric of src into r: counters add their value, gauges
// adopt src's value (last merge wins), and histograms with identical bucket
// bounds add bucket-wise — mismatched bounds fold src's observations into
// r's overflow bucket, keeping _count and _sum exact while degrading the
// distribution. Metrics absent from r are created in src's registration
// order, so merging per-worker shard registries into one target after a
// parallel run produces stable output. Merge is safe for concurrent use, but
// src should be quiescent for the merge to be a consistent snapshot.
func (r *Registry) Merge(src *Registry) {
	if src == nil || src == r {
		return
	}
	src.mu.Lock()
	keys := append([]metricKey(nil), src.order...)
	counters := make(map[string]float64, len(src.counters))
	for k, v := range src.counters {
		counters[k] = v.Value()
	}
	gauges := make(map[string]float64, len(src.gauges))
	for k, v := range src.gauges {
		gauges[k] = v.Value()
	}
	hists := make(map[string]*Histogram, len(src.hists))
	for k, v := range src.hists {
		hists[k] = v
	}
	src.mu.Unlock()

	for _, k := range keys {
		switch k.kind {
		case 'c':
			r.Counter(k.name).Add(counters[k.name])
		case 'g':
			r.Gauge(k.name).Set(gauges[k.name])
		case 'h':
			bounds, raw, sum, n := hists[k.name].raw()
			r.Histogram(k.name, bounds).absorb(bounds, raw, sum, n)
		}
	}
}

// raw returns copies of the histogram's bounds and per-bucket
// (non-cumulative) counts together with the running sum and count.
func (h *Histogram) raw() (bounds []float64, counts []uint64, sum float64, n uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]float64(nil), h.bounds...), append([]uint64(nil), h.counts...), h.sum, h.n
}

// absorb adds raw (non-cumulative) buckets from another histogram into h.
func (h *Histogram) absorb(bounds []float64, counts []uint64, sum float64, n uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if equalBounds(h.bounds, bounds) && len(h.counts) == len(counts) {
		for i, c := range counts {
			h.counts[i] += c
		}
	} else {
		var total uint64
		for _, c := range counts {
			total += c
		}
		h.counts[len(h.counts)-1] += total
	}
	h.sum += sum
	h.n += n
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RegistryObserver adapts a Registry into an Observer: it translates the
// simulators' event stream into the standard metric families
//
//	sim_runs_total{sim=}            runs started
//	sim_steps_total{sim=}           accepted steps / firings / leaps
//	sim_errors_total{sim=}          failed runs
//	sim_wall_seconds{sim=}          wall-clock duration of the last run
//	ode_steps_accepted_total        accepted integrator steps
//	ode_steps_rejected_total        error-control rejections
//	ode_step_size                   histogram of accepted step sizes
//	ode_solver_runs_total{solver=}  ODE runs per requested solver
//	ode_stiff_switches_total        auto runs that handed off to stiff
//	ode_stiff_switch_t              simulated time of the last handoff
//	ode_stiff_steps_total           accepted Rosenbrock (stiff) steps
//	ode_stiff_jacobians_total       analytic Jacobian refills
//	ode_stiff_factorizations_total  LU factorizations of the shifted matrix
//	ode_stiff_solves_total          triangular backsolves
//	stoch_steps_rejected_total      rolled-back tau-leaps
//	stoch_propensity_total          histogram of total propensity per step
//	reaction_firings_total{reaction=}  per-reaction firing counts
//	clock_edges_total{species=,dir=}   Schmitt-trigger edge counts
//	phase_changes_total{to=}           dominant-phase transitions
//
// and, for stochastic runs, the kernel hot-path counter families
//
//	kernel_selects_total{mode=}        SSA selections, mode=fenwick|linear
//	kernel_exact_recomputes_total      full propensity rebuilds
//	kernel_ssa_loops_total{loop=}      loop entries, loop=tight|full
//	kernel_leap_rejections_total       rolled-back tau-leap steps
//	kernel_ensemble_blocks_total       SoA ensemble blocks executed
//	kernel_ensemble_passes_total       macro passes over ensemble lanes
//	kernel_ensemble_lane_steps_total   ensemble lane advances executed
//	kernel_ensemble_lane_slots_total   ensemble lane slots available
//
// It keeps per-run state (the reaction-name table) and must not be shared by
// concurrent simulations; the Registry it writes to may be.
type RegistryObserver struct {
	R *Registry

	sim       string
	start     time.Time
	reactions []string
	rxCounter []*Counter // lazily resolved per reaction index
	accepted  *Counter
	rejected  *Counter
	stepHist  *Histogram
	propHist  *Histogram
}

// NewRegistryObserver returns an observer recording into r.
func NewRegistryObserver(r *Registry) *RegistryObserver {
	return &RegistryObserver{R: r}
}

// OnSimStart caches the per-run metric handles.
func (o *RegistryObserver) OnSimStart(e SimStart) {
	o.sim = e.Sim
	o.start = time.Now()
	o.reactions = e.Reactions
	o.rxCounter = make([]*Counter, len(e.Reactions))
	o.R.Counter(Label("sim_runs_total", "sim", e.Sim)).Inc()
	if e.Sim == "ode" {
		o.accepted = o.R.Counter("ode_steps_accepted_total")
		o.rejected = o.R.Counter("ode_steps_rejected_total")
		o.stepHist = o.R.Histogram("ode_step_size", DefaultStepBuckets())
		o.propHist = nil
	} else {
		o.accepted = o.R.Counter(Label("stoch_steps_total", "sim", e.Sim))
		o.rejected = o.R.Counter("stoch_steps_rejected_total")
		o.stepHist = nil
		o.propHist = o.R.Histogram("stoch_propensity_total", DefaultStepBuckets())
	}
}

// OnStep accounts one accepted or rejected step.
func (o *RegistryObserver) OnStep(e Step) {
	if o.accepted == nil { // events outside a run; register lazily
		o.OnSimStart(SimStart{Sim: "ode"})
	}
	if e.Accepted {
		o.accepted.Inc()
		if o.stepHist != nil {
			o.stepHist.Observe(e.H)
		}
		if o.propHist != nil {
			o.propHist.Observe(e.Propensity)
		}
	} else {
		o.rejected.Inc()
	}
}

// OnReactionFiring accounts firings per reaction.
func (o *RegistryObserver) OnReactionFiring(e ReactionFiring) {
	var c *Counter
	if e.Reaction >= 0 && e.Reaction < len(o.rxCounter) {
		c = o.rxCounter[e.Reaction]
		if c == nil {
			c = o.R.Counter(Label("reaction_firings_total", "reaction", o.reactions[e.Reaction]))
			o.rxCounter[e.Reaction] = c
		}
	} else {
		c = o.R.Counter(Label("reaction_firings_total", "reaction", fmt.Sprintf("#%d", e.Reaction)))
	}
	c.Add(e.Count)
}

// OnClockEdge accounts threshold crossings per species and direction.
func (o *RegistryObserver) OnClockEdge(e ClockEdge) {
	dir := "fall"
	if e.Rising {
		dir = "rise"
	}
	o.R.Counter(Label("clock_edges_total", "species", e.Species, "dir", dir)).Inc()
}

// OnPhaseChange accounts dominant-phase transitions.
func (o *RegistryObserver) OnPhaseChange(e PhaseChange) {
	o.R.Counter(Label("phase_changes_total", "to", e.To)).Inc()
}

// OnAlert accounts analyzer alerts per rule.
func (o *RegistryObserver) OnAlert(e Alert) {
	o.R.Counter(Label("clock_alerts_total", "rule", e.Rule)).Inc()
}

// OnSimEnd records run totals, wall-clock duration and the kernel hot-path
// counters (zero counters register no series, keeping ODE output clean).
func (o *RegistryObserver) OnSimEnd(e SimEnd) {
	o.R.Counter(Label("sim_steps_total", "sim", e.Sim)).Add(float64(e.Steps))
	o.R.Gauge(Label("sim_wall_seconds", "sim", e.Sim)).Set(e.WallSeconds)
	if e.Err != "" {
		o.R.Counter(Label("sim_errors_total", "sim", e.Sim)).Inc()
	}
	if k := e.Kernel; !k.IsZero() {
		if k.FenwickSelects > 0 {
			o.R.Counter(Label("kernel_selects_total", "mode", "fenwick")).Add(float64(k.FenwickSelects))
		}
		if k.LinearSelects > 0 {
			o.R.Counter(Label("kernel_selects_total", "mode", "linear")).Add(float64(k.LinearSelects))
		}
		if k.ExactRecomputes > 0 {
			o.R.Counter("kernel_exact_recomputes_total").Add(float64(k.ExactRecomputes))
		}
		if k.TightLoops > 0 {
			o.R.Counter(Label("kernel_ssa_loops_total", "loop", "tight")).Add(float64(k.TightLoops))
		}
		if k.FullLoops > 0 {
			o.R.Counter(Label("kernel_ssa_loops_total", "loop", "full")).Add(float64(k.FullLoops))
		}
		if k.LeapRejections > 0 {
			o.R.Counter("kernel_leap_rejections_total").Add(float64(k.LeapRejections))
		}
		if k.EnsembleBlocks > 0 {
			o.R.Counter("kernel_ensemble_blocks_total").Add(float64(k.EnsembleBlocks))
			o.R.Counter("kernel_ensemble_passes_total").Add(float64(k.EnsemblePasses))
			o.R.Counter("kernel_ensemble_lane_steps_total").Add(float64(k.LaneSteps))
			o.R.Counter("kernel_ensemble_lane_slots_total").Add(float64(k.LaneSlots))
		}
	}
	if od := e.ODE; !od.IsZero() {
		o.R.Counter(Label("ode_solver_runs_total", "solver", od.Solver)).Inc()
		if od.Switched {
			o.R.Counter("ode_stiff_switches_total").Inc()
			o.R.Gauge("ode_stiff_switch_t").Set(od.SwitchT)
		}
		if od.StiffSteps > 0 {
			o.R.Counter("ode_stiff_steps_total").Add(float64(od.StiffSteps))
		}
		if od.JacEvals > 0 {
			o.R.Counter("ode_stiff_jacobians_total").Add(float64(od.JacEvals))
		}
		if od.Factorizations > 0 {
			o.R.Counter("ode_stiff_factorizations_total").Add(float64(od.Factorizations))
		}
		if od.Solves > 0 {
			o.R.Counter("ode_stiff_solves_total").Add(float64(od.Solves))
		}
	}
	o.accepted, o.rejected, o.stepHist, o.propHist = nil, nil, nil, nil
	o.reactions, o.rxCounter = nil, nil
}
