package obs

import (
	"bufio"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func decodeLines(t *testing.T, s string) []map[string]any {
	t.Helper()
	var out []map[string]any
	sc := bufio.NewScanner(strings.NewReader(s))
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", sc.Text(), err)
		}
		out = append(out, rec)
	}
	return out
}

func TestJSONLEvents(t *testing.T) {
	var sb strings.Builder
	j := NewJSONL(&sb)
	j.OnSimStart(SimStart{Sim: "ode", T0: 0, T1: 10,
		Species: []string{"R", "G"}, Reactions: []string{"r1"}})
	j.OnStep(Step{T: 1, H: 0.1, Accepted: true}) // suppressed: LogSteps off
	j.OnReactionFiring(ReactionFiring{T: 1, Reaction: 0, Count: 1})
	j.OnClockEdge(ClockEdge{T: 2, Species: "R", Rising: true, Level: 0.5})
	j.OnPhaseChange(PhaseChange{T: 3, From: "red", To: "green"})
	j.OnSimEnd(SimEnd{Sim: "ode", T: 10, Steps: 100, WallSeconds: 0.02})
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	recs := decodeLines(t, sb.String())
	var kinds []string
	for _, r := range recs {
		kinds = append(kinds, r["event"].(string))
	}
	want := []string{"sim_start", "clock_edge", "phase_change", "sim_end"}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("events = %v, want %v", kinds, want)
		}
	}
	edge := recs[1]
	if edge["species"] != "R" || edge["rising"] != true || edge["level"] != 0.5 {
		t.Fatalf("clock_edge = %v", edge)
	}
	end := recs[3]
	if end["steps"] != float64(100) || end["sim"] != "ode" {
		t.Fatalf("sim_end = %v", end)
	}
	if _, has := end["err"]; has {
		t.Fatalf("clean run carries err field: %v", end)
	}
}

func TestJSONLVerbose(t *testing.T) {
	var sb strings.Builder
	j := NewJSONL(&sb)
	j.LogSteps = true
	j.LogFirings = true
	j.OnSimStart(SimStart{Sim: "ssa", Reactions: []string{"decay"}})
	j.OnStep(Step{T: 1, H: 0.1, Accepted: true, Propensity: 3})
	j.OnReactionFiring(ReactionFiring{T: 1, Reaction: 0, Count: 2})
	j.OnReactionFiring(ReactionFiring{T: 2, Reaction: 7, Count: 1}) // unknown index
	recs := decodeLines(t, sb.String())
	if len(recs) != 4 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[1]["event"] != "step" || recs[1]["propensity"] != float64(3) {
		t.Fatalf("step = %v", recs[1])
	}
	if recs[2]["reaction"] != "decay" || recs[2]["count"] != float64(2) {
		t.Fatalf("firing = %v", recs[2])
	}
	if recs[3]["reaction"] != "" {
		t.Fatalf("out-of-range firing should have empty name: %v", recs[3])
	}
}

type failWriter struct{ calls int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.calls++
	return 0, errors.New("disk full")
}

func TestJSONLErr(t *testing.T) {
	fw := &failWriter{}
	j := NewJSONL(fw)
	j.OnClockEdge(ClockEdge{T: 1, Species: "R"})
	if err := j.Err(); err == nil {
		t.Fatal("write error not retained")
	}
	// Later events are dropped without further writes.
	calls := fw.calls
	j.OnClockEdge(ClockEdge{T: 2, Species: "G"})
	if fw.calls != calls {
		t.Fatal("events written after a retained error")
	}
}
