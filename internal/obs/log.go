package obs

import (
	"context"
	"io"
	"log/slog"

	"repro/internal/obs/span"
)

// NewLogger returns a structured logger writing one JSON object per record
// to w, with trace/span correlation: any record logged through a context
// carrying a span (span.NewContext / the InstrumentHTTP request context)
// gains trace_id and span_id attributes, so log lines join up with
// /debug/tracez traces and exported OTLP spans without any per-call-site
// plumbing. This is the access- and lifecycle-log used by crnserved.
func NewLogger(w io.Writer, level slog.Leveler) *slog.Logger {
	if level == nil {
		level = slog.LevelInfo
	}
	return slog.New(WithSpanContext(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level})))
}

// WithSpanContext decorates a slog.Handler so every record handled with a
// span-carrying context is stamped with that span's trace_id and span_id.
// Records without a span pass through untouched.
func WithSpanContext(h slog.Handler) slog.Handler {
	if _, ok := h.(spanHandler); ok {
		return h
	}
	return spanHandler{h}
}

type spanHandler struct {
	slog.Handler
}

func (h spanHandler) Handle(ctx context.Context, r slog.Record) error {
	if sp := span.FromContext(ctx); sp != nil {
		r.AddAttrs(
			slog.String("trace_id", sp.TraceID().String()),
			slog.String("span_id", sp.SpanID().String()),
		)
	}
	return h.Handler.Handle(ctx, r)
}

func (h spanHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return spanHandler{h.Handler.WithAttrs(attrs)}
}

func (h spanHandler) WithGroup(name string) slog.Handler {
	return spanHandler{h.Handler.WithGroup(name)}
}
