package obs

import (
	"testing"
)

func TestEdgeWatcher(t *testing.T) {
	w := &EdgeWatcher{Species: []string{"R"}, High: 0.5, Low: 0.25}
	if err := w.Bind([]string{"R", "G"}); err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	w.Observe(0, []float64{0.9, 0}, rec) // first sample: arms high, no edge
	if len(rec.edges) != 0 {
		t.Fatalf("first sample emitted %v", rec.edges)
	}
	w.Observe(1, []float64{0.3, 0}, rec) // in hysteresis band: nothing
	if len(rec.edges) != 0 {
		t.Fatalf("hysteresis band emitted %v", rec.edges)
	}
	w.Observe(2, []float64{0.1, 0}, rec) // below Low: falling edge
	w.Observe(3, []float64{0.4, 0}, rec) // below High: still low
	w.Observe(4, []float64{0.8, 0}, rec) // above High: rising edge
	if len(rec.edges) != 2 {
		t.Fatalf("edges = %v", rec.edges)
	}
	fall, rise := rec.edges[0], rec.edges[1]
	if fall.Rising || fall.Species != "R" || fall.T != 2 || fall.Level != 0.25 {
		t.Fatalf("falling edge = %+v", fall)
	}
	if !rise.Rising || rise.T != 4 || rise.Level != 0.5 {
		t.Fatalf("rising edge = %+v", rise)
	}
}

func TestEdgeWatcherAllSpecies(t *testing.T) {
	w := &EdgeWatcher{High: 1, Low: 0.5} // empty Species: watch everything
	if err := w.Bind([]string{"A", "B"}); err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	w.Observe(0, []float64{0, 0}, rec)
	w.Observe(1, []float64{2, 0}, rec)
	w.Observe(2, []float64{2, 3}, rec)
	if len(rec.edges) != 2 || rec.edges[0].Species != "A" || rec.edges[1].Species != "B" {
		t.Fatalf("edges = %v", rec.edges)
	}
}

func TestEdgeWatcherErrors(t *testing.T) {
	if err := (&EdgeWatcher{High: 1, Low: 1}).Bind([]string{"A"}); err == nil {
		t.Fatal("Low >= High accepted")
	}
	w := &EdgeWatcher{Species: []string{"ghost"}, High: 1, Low: 0.5}
	if err := w.Bind([]string{"A"}); err == nil {
		t.Fatal("unknown species accepted")
	}
}

func TestPhaseWatcher(t *testing.T) {
	w := &PhaseWatcher{
		Groups: []PhaseGroup{
			{Name: "red", Species: []string{"R", "Rp"}},
			{Name: "green", Species: []string{"G"}},
		},
		Eps: 0.1,
	}
	if err := w.Bind([]string{"R", "G", "Rp"}); err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	w.Observe(0, []float64{0.01, 0.02, 0.01}, rec) // all below Eps: undecided
	if len(rec.phases) != 0 {
		t.Fatalf("sub-Eps masses emitted %v", rec.phases)
	}
	w.Observe(1, []float64{0.4, 0.1, 0.3}, rec) // red (0.7) dominates: first determination
	w.Observe(2, []float64{0.4, 0.1, 0.3}, rec) // unchanged: silent
	w.Observe(3, []float64{0.1, 0.9, 0.0}, rec) // green takes over
	if len(rec.phases) != 2 {
		t.Fatalf("phases = %v", rec.phases)
	}
	if rec.phases[0].From != "" || rec.phases[0].To != "red" || rec.phases[0].T != 1 {
		t.Fatalf("first determination = %+v", rec.phases[0])
	}
	if rec.phases[1].From != "red" || rec.phases[1].To != "green" {
		t.Fatalf("transition = %+v", rec.phases[1])
	}
}

func TestPhaseWatcherErrors(t *testing.T) {
	w := &PhaseWatcher{Groups: []PhaseGroup{{Name: "only", Species: []string{"A"}}}}
	if err := w.Bind([]string{"A"}); err == nil {
		t.Fatal("single group accepted")
	}
	w = &PhaseWatcher{Groups: []PhaseGroup{
		{Name: "a", Species: []string{"A"}},
		{Name: "b", Species: []string{"ghost"}},
	}}
	if err := w.Bind([]string{"A"}); err == nil {
		t.Fatal("unknown species accepted")
	}
}

func TestDutyWatcher(t *testing.T) {
	reg := NewRegistry()
	w := &DutyWatcher{Species: []string{"I"}, Threshold: 0.5, Registry: reg}
	if err := w.Bind([]string{"I"}); err != nil {
		t.Fatal(err)
	}
	// Above threshold on [0,2) and [8,10): duty 4/10.
	w.Observe(0, []float64{1}, Nop)
	w.Observe(2, []float64{0}, Nop)
	w.Observe(8, []float64{1}, Nop)
	w.Finish(10, Nop)
	got := reg.Gauge(Label("duty_cycle", "species", "I")).Value()
	if got != 0.4 {
		t.Fatalf("duty cycle = %g, want 0.4", got)
	}
}

func TestDutyWatcherNeedsRegistry(t *testing.T) {
	w := &DutyWatcher{Species: []string{"I"}, Threshold: 0.5}
	if err := w.Bind([]string{"I"}); err == nil {
		t.Fatal("nil Registry accepted")
	}
}

func TestWatcherHelpers(t *testing.T) {
	reg := NewRegistry()
	watchers := []Watcher{
		&EdgeWatcher{High: 0.5, Low: 0.25},
		&DutyWatcher{Species: []string{"A"}, Threshold: 0.5, Registry: reg},
	}
	if err := BindAll(watchers, []string{"A"}); err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	ObserveAll(watchers, 0, []float64{0}, rec)
	ObserveAll(watchers, 1, []float64{1}, rec)
	FinishAll(watchers, 2, rec)
	if len(rec.edges) != 1 {
		t.Fatalf("edges = %v", rec.edges)
	}
	if got := reg.Gauge(Label("duty_cycle", "species", "A")).Value(); got != 0.5 {
		t.Fatalf("duty = %g, want 0.5", got)
	}
	// BindAll fails fast on the first bad watcher.
	bad := []Watcher{&EdgeWatcher{Species: []string{"ghost"}, High: 1, Low: 0}}
	if err := BindAll(bad, []string{"A"}); err == nil {
		t.Fatal("BindAll accepted unknown species")
	}
}
