package obs

import (
	"testing"
)

func TestEdgeWatcher(t *testing.T) {
	w := &EdgeWatcher{Species: []string{"R"}, High: 0.5, Low: 0.25}
	if err := w.Bind([]string{"R", "G"}); err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	w.Observe(0, []float64{0.9, 0}, rec) // first sample: arms high, no edge
	if len(rec.edges) != 0 {
		t.Fatalf("first sample emitted %v", rec.edges)
	}
	w.Observe(1, []float64{0.3, 0}, rec) // in hysteresis band: nothing
	if len(rec.edges) != 0 {
		t.Fatalf("hysteresis band emitted %v", rec.edges)
	}
	w.Observe(2, []float64{0.1, 0}, rec) // below Low: falling edge
	w.Observe(3, []float64{0.4, 0}, rec) // below High: still low
	w.Observe(4, []float64{0.8, 0}, rec) // above High: rising edge
	if len(rec.edges) != 2 {
		t.Fatalf("edges = %v", rec.edges)
	}
	fall, rise := rec.edges[0], rec.edges[1]
	if fall.Rising || fall.Species != "R" || fall.T != 2 || fall.Level != 0.25 {
		t.Fatalf("falling edge = %+v", fall)
	}
	if !rise.Rising || rise.T != 4 || rise.Level != 0.5 {
		t.Fatalf("rising edge = %+v", rise)
	}
}

func TestEdgeWatcherAllSpecies(t *testing.T) {
	w := &EdgeWatcher{High: 1, Low: 0.5} // empty Species: watch everything
	if err := w.Bind([]string{"A", "B"}); err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	w.Observe(0, []float64{0, 0}, rec)
	w.Observe(1, []float64{2, 0}, rec)
	w.Observe(2, []float64{2, 3}, rec)
	if len(rec.edges) != 2 || rec.edges[0].Species != "A" || rec.edges[1].Species != "B" {
		t.Fatalf("edges = %v", rec.edges)
	}
}

func TestEdgeWatcherErrors(t *testing.T) {
	if err := (&EdgeWatcher{High: 1, Low: 1}).Bind([]string{"A"}); err == nil {
		t.Fatal("Low >= High accepted")
	}
	w := &EdgeWatcher{Species: []string{"ghost"}, High: 1, Low: 0.5}
	if err := w.Bind([]string{"A"}); err == nil {
		t.Fatal("unknown species accepted")
	}
}

func TestPhaseWatcher(t *testing.T) {
	w := &PhaseWatcher{
		Groups: []PhaseGroup{
			{Name: "red", Species: []string{"R", "Rp"}},
			{Name: "green", Species: []string{"G"}},
		},
		Eps: 0.1,
	}
	if err := w.Bind([]string{"R", "G", "Rp"}); err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	w.Observe(0, []float64{0.01, 0.02, 0.01}, rec) // all below Eps: undecided
	if len(rec.phases) != 0 {
		t.Fatalf("sub-Eps masses emitted %v", rec.phases)
	}
	w.Observe(1, []float64{0.4, 0.1, 0.3}, rec) // red (0.7) dominates: first determination
	w.Observe(2, []float64{0.4, 0.1, 0.3}, rec) // unchanged: silent
	w.Observe(3, []float64{0.1, 0.9, 0.0}, rec) // green takes over
	if len(rec.phases) != 2 {
		t.Fatalf("phases = %v", rec.phases)
	}
	if rec.phases[0].From != "" || rec.phases[0].To != "red" || rec.phases[0].T != 1 {
		t.Fatalf("first determination = %+v", rec.phases[0])
	}
	if rec.phases[1].From != "red" || rec.phases[1].To != "green" {
		t.Fatalf("transition = %+v", rec.phases[1])
	}
}

func TestPhaseWatcherErrors(t *testing.T) {
	w := &PhaseWatcher{Groups: []PhaseGroup{{Name: "only", Species: []string{"A"}}}}
	if err := w.Bind([]string{"A"}); err == nil {
		t.Fatal("single group accepted")
	}
	w = &PhaseWatcher{Groups: []PhaseGroup{
		{Name: "a", Species: []string{"A"}},
		{Name: "b", Species: []string{"ghost"}},
	}}
	if err := w.Bind([]string{"A"}); err == nil {
		t.Fatal("unknown species accepted")
	}
}

func TestDutyWatcher(t *testing.T) {
	reg := NewRegistry()
	w := &DutyWatcher{Species: []string{"I"}, Threshold: 0.5, Registry: reg}
	if err := w.Bind([]string{"I"}); err != nil {
		t.Fatal(err)
	}
	// Above threshold on [0,2) and [8,10): duty 4/10.
	w.Observe(0, []float64{1}, Nop)
	w.Observe(2, []float64{0}, Nop)
	w.Observe(8, []float64{1}, Nop)
	w.Finish(10, Nop)
	got := reg.Gauge(Label("duty_cycle", "species", "I")).Value()
	if got != 0.4 {
		t.Fatalf("duty cycle = %g, want 0.4", got)
	}
}

// TestEdgeWatcherExactThresholds pins the comparison directions at the
// boundaries: v == High fires rising (>=), v == Low does NOT fire falling
// (falling needs strict <), and a first sample landing exactly on High arms
// the watcher high without emitting an edge.
func TestEdgeWatcherExactThresholds(t *testing.T) {
	w := &EdgeWatcher{Species: []string{"R"}, High: 0.5, Low: 0.25}
	if err := w.Bind([]string{"R"}); err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	w.Observe(0, []float64{0.5}, rec) // first sample exactly at High: arms, no edge
	if len(rec.edges) != 0 {
		t.Fatalf("first sample at High emitted %v", rec.edges)
	}
	w.Observe(1, []float64{0.25}, rec) // exactly at Low: still high (needs v < Low)
	if len(rec.edges) != 0 {
		t.Fatalf("v == Low emitted %v", rec.edges)
	}
	w.Observe(2, []float64{0.2499}, rec) // just under Low: falling
	if len(rec.edges) != 1 || rec.edges[0].Rising {
		t.Fatalf("edges after sub-Low = %v", rec.edges)
	}
	w.Observe(3, []float64{0.5}, rec) // exactly at High: rising (>=)
	if len(rec.edges) != 2 || !rec.edges[1].Rising || rec.edges[1].T != 3 {
		t.Fatalf("edges after re-High = %v", rec.edges)
	}
	// Oscillating between the exact thresholds keeps firing both directions.
	w.Observe(4, []float64{0.2}, rec)
	w.Observe(5, []float64{0.5}, rec)
	if len(rec.edges) != 4 {
		t.Fatalf("oscillation edges = %v", rec.edges)
	}
}

// TestDutyWatcherNeverCompletes covers trajectories with no complete duty
// period: a species pinned above threshold for the whole run reads duty 1.0,
// and a run whose samples all share one timestamp (zero span) reads 0 rather
// than NaN.
func TestDutyWatcherNeverCompletes(t *testing.T) {
	reg := NewRegistry()
	w := &DutyWatcher{Species: []string{"I"}, Threshold: 0.5, Registry: reg}
	if err := w.Bind([]string{"I"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= 5; i++ {
		w.Observe(float64(i), []float64{1}, Nop) // never dips below threshold
	}
	w.Finish(5, Nop)
	if got := reg.Gauge(Label("duty_cycle", "species", "I")).Value(); got != 1 {
		t.Fatalf("always-high duty = %g, want 1", got)
	}

	reg2 := NewRegistry()
	w2 := &DutyWatcher{Species: []string{"I"}, Threshold: 0.5, Registry: reg2}
	if err := w2.Bind([]string{"I"}); err != nil {
		t.Fatal(err)
	}
	w2.Observe(3, []float64{1}, Nop) // single instant: span is zero
	w2.Finish(3, Nop)
	got := reg2.Gauge(Label("duty_cycle", "species", "I")).Value()
	if got != 0 {
		t.Fatalf("zero-span duty = %g, want 0", got)
	}
}

func TestDutyWatcherNeedsRegistry(t *testing.T) {
	w := &DutyWatcher{Species: []string{"I"}, Threshold: 0.5}
	if err := w.Bind([]string{"I"}); err == nil {
		t.Fatal("nil Registry accepted")
	}
}

func TestWatcherHelpers(t *testing.T) {
	reg := NewRegistry()
	watchers := []Watcher{
		&EdgeWatcher{High: 0.5, Low: 0.25},
		&DutyWatcher{Species: []string{"A"}, Threshold: 0.5, Registry: reg},
	}
	if err := BindAll(watchers, []string{"A"}); err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	ObserveAll(watchers, 0, []float64{0}, rec)
	ObserveAll(watchers, 1, []float64{1}, rec)
	FinishAll(watchers, 2, rec)
	if len(rec.edges) != 1 {
		t.Fatalf("edges = %v", rec.edges)
	}
	if got := reg.Gauge(Label("duty_cycle", "species", "A")).Value(); got != 0.5 {
		t.Fatalf("duty = %g, want 0.5", got)
	}
	// BindAll fails fast on the first bad watcher.
	bad := []Watcher{&EdgeWatcher{Species: []string{"ghost"}, High: 1, Low: 0}}
	if err := BindAll(bad, []string{"A"}); err == nil {
		t.Fatal("BindAll accepted unknown species")
	}
}
