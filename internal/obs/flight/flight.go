// Package flight implements a flight recorder: when an alert rule fires,
// it atomically snapshots the recent past — the last N SSE events, the
// span ring, and the time-series windows feeding the rule — into a
// bounded capsule, so the diagnosis of a dead worker or a broken sweep
// does not depend on someone having been watching the dashboards.
//
// The recorder is deliberately decoupled from the alert engine: it
// defines its own Trigger type and the server glues the engine's
// OnTransition hook to Capture. Capsules are kept in a bounded in-memory
// ring and, when Dir is set, also persisted as one JSON file each — the
// on-disk copy survives the process, the in-memory copy serves
// GET /debug/flightz/{id} without touching the filesystem.
package flight

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/obs/tsdb"
)

// Trigger describes why a capsule was captured. It mirrors an alert
// transition without importing the alert package.
type Trigger struct {
	Rule      string  `json:"rule"`
	Severity  string  `json:"severity,omitempty"`
	State     string  `json:"state"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	Detail    string  `json:"detail,omitempty"`
	// Inputs are the metric globs the rule read; their tsdb windows are
	// snapshotted into the capsule.
	Inputs []string `json:"inputs,omitempty"`
}

// SpanData is the JSON-stable projection of one recorded span.
type SpanData struct {
	TraceID  string      `json:"trace_id"`
	SpanID   string      `json:"span_id"`
	ParentID string      `json:"parent_id,omitempty"`
	Name     string      `json:"name"`
	Start    time.Time   `json:"start"`
	End      time.Time   `json:"end"`
	Status   string      `json:"status,omitempty"`
	Attrs    []span.Attr `json:"attrs,omitempty"`
}

// Capsule is one frozen snapshot of the recent past.
type Capsule struct {
	ID      string                  `json:"id"`
	Time    time.Time               `json:"time"`
	Trigger Trigger                 `json:"trigger"`
	Events  []obs.StreamEvent       `json:"events,omitempty"`
	Spans   []SpanData              `json:"spans,omitempty"`
	Series  map[string][]tsdb.Point `json:"series,omitempty"`
}

// Info is the capsule directory listing entry.
type Info struct {
	ID     string    `json:"id"`
	Time   time.Time `json:"time"`
	Rule   string    `json:"rule"`
	State  string    `json:"state"`
	Events int       `json:"events"`
	Spans  int       `json:"spans"`
	Series int       `json:"series"`
}

// Options assembles a Recorder. All fields are optional; a zero Recorder
// still produces capsules, they are just emptier.
type Options struct {
	// Broker is the SSE broker whose events the recorder buffers.
	Broker *obs.Broker
	// Spans is the span ring snapshotted at capture time.
	Spans *span.Store
	// DB provides the time-series windows for the trigger's inputs.
	DB *tsdb.DB
	// Dir, when non-empty, persists each capsule as <dir>/<id>.json.
	Dir string
	// MaxCapsules bounds the in-memory capsule ring; 0 selects 16.
	MaxCapsules int
	// MaxEvents bounds the buffered SSE event ring; 0 selects 256.
	MaxEvents int
	// MaxSpans bounds the span snapshot per capsule; 0 selects 128.
	MaxSpans int
	// Window bounds the time-series history per capsule; 0 selects 15m.
	Window time.Duration
	// Extra metric globs captured into every capsule regardless of the
	// trigger's inputs (process health, per-worker cluster series).
	Extra []string
	// Now is the injectable clock for tests; nil selects time.Now.
	Now func() time.Time
}

// Recorder buffers recent SSE events and captures capsules on demand.
type Recorder struct {
	spans  *span.Store
	db     *tsdb.DB
	broker *obs.Broker
	dir    string
	maxCap int
	maxEv  int
	maxSp  int
	window time.Duration
	extra  []string
	now    func() time.Time

	mu       sync.Mutex
	events   []obs.StreamEvent // ring, oldest first after reorder
	evNext   int
	evFull   bool
	capsules []*Capsule // newest last
	seq      uint64
	sub      *obs.Sub
	stopCh   chan struct{}
	started  bool
}

// New builds a Recorder. Call Start to begin buffering events.
func New(o Options) *Recorder {
	if o.MaxCapsules <= 0 {
		o.MaxCapsules = 16
	}
	if o.MaxEvents <= 0 {
		o.MaxEvents = 256
	}
	if o.MaxSpans <= 0 {
		o.MaxSpans = 128
	}
	if o.Window <= 0 {
		o.Window = 15 * time.Minute
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return &Recorder{
		spans: o.Spans, db: o.DB, broker: o.Broker, dir: o.Dir,
		maxCap: o.MaxCapsules, maxEv: o.MaxEvents, maxSp: o.MaxSpans,
		window: o.Window, extra: o.Extra, now: o.Now,
		events: make([]obs.StreamEvent, o.MaxEvents),
		stopCh: make(chan struct{}),
	}
}

// Start subscribes to the broker and begins buffering events. Idempotent.
func (r *Recorder) Start() {
	if r == nil || r.broker == nil {
		return
	}
	r.mu.Lock()
	if r.started {
		r.mu.Unlock()
		return
	}
	r.started = true
	r.sub = r.broker.Subscribe(r.maxEv, nil)
	sub := r.sub
	r.mu.Unlock()
	go func() {
		for {
			select {
			case ev := <-sub.C:
				r.mu.Lock()
				r.events[r.evNext] = ev
				r.evNext = (r.evNext + 1) % len(r.events)
				if r.evNext == 0 {
					r.evFull = true
				}
				r.mu.Unlock()
			case <-r.stopCh:
				return
			}
		}
	}()
}

// Stop unsubscribes and ends the buffering goroutine. Idempotent.
func (r *Recorder) Stop() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.started {
		return
	}
	r.started = false
	close(r.stopCh)
	if r.sub != nil {
		r.sub.Close()
	}
}

// Capture freezes the recent past into a new capsule and returns it. The
// event ring, span ring and time-series windows are read under their own
// locks but assembled into one immutable snapshot.
func (r *Recorder) Capture(tr Trigger) *Capsule {
	if r == nil {
		return nil
	}
	now := r.now()

	r.mu.Lock()
	r.seq++
	id := fmt.Sprintf("f%06d-%s", r.seq, sanitizeID(tr.Rule))
	events := r.eventsLocked()
	r.mu.Unlock()

	c := &Capsule{ID: id, Time: now, Trigger: tr, Events: events}
	if r.spans != nil {
		for _, d := range r.spans.Recent(r.maxSp) {
			sd := SpanData{
				TraceID: d.TraceID.String(), SpanID: d.SpanID.String(),
				Name: d.Name, Start: d.Start, End: d.End,
				Status: d.Status, Attrs: d.Attrs,
			}
			if d.ParentID != (span.SpanID{}) {
				sd.ParentID = d.ParentID.String()
			}
			c.Spans = append(c.Spans, sd)
		}
	}
	if r.db != nil {
		c.Series = make(map[string][]tsdb.Point)
		pats := append(append([]string{}, tr.Inputs...), r.extra...)
		for _, pat := range pats {
			for _, name := range r.db.Match(pat) {
				if _, ok := c.Series[name]; ok {
					continue
				}
				if pts := r.db.Range(name, r.window); len(pts) > 0 {
					c.Series[name] = pts
				}
			}
		}
	}

	r.mu.Lock()
	r.capsules = append(r.capsules, c)
	if len(r.capsules) > r.maxCap {
		r.capsules = r.capsules[len(r.capsules)-r.maxCap:]
	}
	r.mu.Unlock()

	if r.dir != "" {
		r.persist(c)
	}
	return c
}

// eventsLocked flattens the event ring oldest-first. Caller holds r.mu.
func (r *Recorder) eventsLocked() []obs.StreamEvent {
	var out []obs.StreamEvent
	if r.evFull {
		out = append(out, r.events[r.evNext:]...)
	}
	out = append(out, r.events[:r.evNext]...)
	// Drop zero-value slots (ring not yet warm).
	keep := out[:0]
	for _, ev := range out {
		if ev.Seq != 0 {
			keep = append(keep, ev)
		}
	}
	return keep
}

func (r *Recorder) persist(c *Capsule) {
	b, err := json.MarshalIndent(c, "", " ")
	if err != nil {
		return
	}
	if err := os.MkdirAll(r.dir, 0o755); err != nil {
		return
	}
	tmp := filepath.Join(r.dir, c.ID+".json.tmp")
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, filepath.Join(r.dir, c.ID+".json"))
}

// List returns the retained capsules' directory entries, newest first.
func (r *Recorder) List() []Info {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Info, 0, len(r.capsules))
	for i := len(r.capsules) - 1; i >= 0; i-- {
		c := r.capsules[i]
		out = append(out, Info{
			ID: c.ID, Time: c.Time, Rule: c.Trigger.Rule, State: c.Trigger.State,
			Events: len(c.Events), Spans: len(c.Spans), Series: len(c.Series),
		})
	}
	return out
}

// Get returns a retained capsule by ID.
func (r *Recorder) Get(id string) (*Capsule, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.capsules {
		if c.ID == id {
			return c, true
		}
	}
	return nil, false
}

// SeriesNames returns a capsule's captured series names, sorted — a
// convenience for tests and the flightz HTML view.
func (c *Capsule) SeriesNames() []string {
	names := make([]string, 0, len(c.Series))
	for n := range c.Series {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func sanitizeID(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	if b.Len() == 0 {
		return "capsule"
	}
	return b.String()
}
