package flight

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/obs/tsdb"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestCaptureSnapshotsEventsSpansAndSeries(t *testing.T) {
	reg := obs.NewRegistry()
	broker := obs.NewBroker()
	tracer := span.NewTracer(64)
	store := tracer.Store()
	db := tsdb.New(reg, tsdb.Options{Step: time.Second, Retention: time.Minute})

	reg.Gauge(obs.Label("cluster_worker_up", "worker", "w1")).Set(1)
	reg.Counter("proc_gc_total").Add(2)
	db.Poll()

	sp := tracer.Root("sweep.retry")
	sp.SetAttr("partition", 3)
	sp.End()

	dir := t.TempDir()
	r := New(Options{
		Broker: broker, Spans: store, DB: db, Dir: dir,
		MaxCapsules: 2, MaxEvents: 8,
		Extra: []string{"proc_*"},
	})
	r.Start()
	defer r.Stop()

	broker.Publish(obs.StreamEvent{Kind: "job_progress", Job: "j1"})
	broker.Publish(obs.StreamEvent{Kind: "alert", Data: map[string]any{"rule": "worker-absent"}})
	waitFor(t, "events buffered", func() bool {
		r.mu.Lock()
		defer r.mu.Unlock()
		return r.evNext >= 2 || r.evFull
	})

	c := r.Capture(Trigger{
		Rule: "worker-absent", State: "firing", Severity: "page",
		Value: 1, Threshold: 1,
		Inputs: []string{"cluster_worker_up{*}"},
	})
	if c == nil {
		t.Fatal("Capture returned nil")
	}
	if len(c.Events) != 2 || c.Events[0].Kind != "job_progress" || c.Events[1].Kind != "alert" {
		t.Fatalf("capsule events = %+v", c.Events)
	}
	if len(c.Spans) != 1 || c.Spans[0].Name != "sweep.retry" {
		t.Fatalf("capsule spans = %+v", c.Spans)
	}
	names := c.SeriesNames()
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	if !found[`cluster_worker_up{worker="w1"}`] || !found["proc_gc_total"] {
		t.Fatalf("capsule series = %v, want worker series + proc extra", names)
	}

	// Persistence: one JSON file per capsule, loadable.
	b, err := os.ReadFile(filepath.Join(dir, c.ID+".json"))
	if err != nil {
		t.Fatalf("persisted capsule: %v", err)
	}
	var loaded Capsule
	if err := json.Unmarshal(b, &loaded); err != nil {
		t.Fatalf("persisted capsule decode: %v", err)
	}
	if loaded.ID != c.ID || loaded.Trigger.Rule != "worker-absent" {
		t.Fatalf("persisted capsule = %+v", loaded.Trigger)
	}

	// Retrieval API.
	got, ok := r.Get(c.ID)
	if !ok || got.ID != c.ID {
		t.Fatalf("Get(%s) = %v, %v", c.ID, got, ok)
	}
	if lst := r.List(); len(lst) != 1 || lst[0].Rule != "worker-absent" || lst[0].Events != 2 {
		t.Fatalf("List = %+v", lst)
	}
}

func TestCapsuleEviction(t *testing.T) {
	r := New(Options{MaxCapsules: 2})
	a := r.Capture(Trigger{Rule: "a", State: "firing"})
	r.Capture(Trigger{Rule: "b", State: "firing"})
	c := r.Capture(Trigger{Rule: "c", State: "firing"})
	if _, ok := r.Get(a.ID); ok {
		t.Fatal("oldest capsule not evicted")
	}
	lst := r.List()
	if len(lst) != 2 || lst[0].ID != c.ID {
		t.Fatalf("List after eviction = %+v", lst)
	}
}

func TestEventRingWraps(t *testing.T) {
	broker := obs.NewBroker()
	r := New(Options{Broker: broker, MaxEvents: 4})
	r.Start()
	defer r.Stop()
	// Publish one at a time so the broker's non-blocking drop policy can't
	// race the buffering goroutine.
	for i := 1; i <= 10; i++ {
		broker.Publish(obs.StreamEvent{Kind: "k"})
		seq := uint64(i)
		waitFor(t, "event buffered", func() bool {
			r.mu.Lock()
			defer r.mu.Unlock()
			for _, ev := range r.events {
				if ev.Seq == seq {
					return true
				}
			}
			return false
		})
	}
	c := r.Capture(Trigger{Rule: "r", State: "firing"})
	if len(c.Events) != 4 || c.Events[0].Seq != 7 || c.Events[3].Seq != 10 {
		seqs := make([]uint64, len(c.Events))
		for i, ev := range c.Events {
			seqs[i] = ev.Seq
		}
		t.Fatalf("wrapped ring seqs = %v, want [7 8 9 10]", seqs)
	}
}

func TestNilRecorderAndStopIdempotent(t *testing.T) {
	var r *Recorder
	if r.Capture(Trigger{}) != nil || r.List() != nil {
		t.Fatal("nil recorder produced results")
	}
	if _, ok := r.Get("x"); ok {
		t.Fatal("nil recorder Get ok")
	}
	r.Start()
	r.Stop()

	r2 := New(Options{Broker: obs.NewBroker()})
	r2.Start()
	r2.Start()
	r2.Stop()
	r2.Stop()
}
