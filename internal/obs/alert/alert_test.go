package alert

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/tsdb"
)

type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTestClock() *testClock {
	return &testClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// harness wires a registry, store, broker and engine onto one manual clock.
type harness struct {
	reg    *obs.Registry
	db     *tsdb.DB
	broker *obs.Broker
	eng    *Engine
	clk    *testClock
	trs    []Transition
	trMu   sync.Mutex
}

func newHarness(t *testing.T, rules []Rule) *harness {
	t.Helper()
	h := &harness{reg: obs.NewRegistry(), broker: obs.NewBroker(), clk: newTestClock()}
	h.db = tsdb.New(h.reg, tsdb.Options{Step: time.Second, Retention: time.Minute, Now: h.clk.Now})
	h.eng = New(Options{
		DB: h.db, Rules: rules, Registry: h.reg, Broker: h.broker, Now: h.clk.Now,
		OnTransition: func(tr Transition) {
			h.trMu.Lock()
			h.trs = append(h.trs, tr)
			h.trMu.Unlock()
		},
	})
	return h
}

// tick samples the store, evaluates rules once, and advances the clock.
func (h *harness) tick() []Transition {
	h.db.Poll()
	trs := h.eng.EvalOnce()
	h.clk.Advance(time.Second)
	return trs
}

func (h *harness) state(name string) RuleStatus {
	for _, st := range h.eng.Status() {
		if st.Rule.Name == name {
			return st
		}
	}
	return RuleStatus{}
}

func TestThresholdLifecycle(t *testing.T) {
	rule := Rule{
		Name: "depth", Kind: KindThreshold, Metric: "queue_depth",
		Func: "last", Op: ">=", Value: 5,
		ForSeconds: 2, KeepSeconds: 2, WindowSeconds: 30,
	}
	h := newHarness(t, []Rule{rule})
	sub := h.broker.Subscribe(64, nil)
	defer sub.Close()
	g := h.reg.Gauge("queue_depth")

	g.Set(1)
	h.tick()
	if st := h.state("depth"); st.State != StateInactive {
		t.Fatalf("healthy value: state=%s want inactive", st.State)
	}

	// Violation: pending for ForSeconds, then firing.
	g.Set(9)
	h.tick()
	if st := h.state("depth"); st.State != StatePending {
		t.Fatalf("first violating pass: state=%s want pending", st.State)
	}
	h.tick()
	h.tick()
	if st := h.state("depth"); st.State != StateFiring {
		t.Fatalf("after dwell: state=%s want firing", st.State)
	}
	if v := h.reg.Gauge(obs.Label("alerts_firing", "rule", "depth")).Value(); v != 1 {
		t.Fatalf("alerts_firing gauge = %v, want 1", v)
	}

	// One clear pass is not enough (Keep hysteresis), a relapse re-arms.
	g.Set(0)
	h.tick()
	g.Set(9)
	h.tick()
	if st := h.state("depth"); st.State != StateFiring {
		t.Fatalf("after relapse: state=%s want firing (hysteresis)", st.State)
	}

	// Sustained clear resolves.
	g.Set(0)
	h.tick()
	h.tick()
	h.tick()
	if st := h.state("depth"); st.State != StateInactive {
		t.Fatalf("after sustained clear: state=%s want inactive", st.State)
	}
	if v := h.reg.Gauge(obs.Label("alerts_firing", "rule", "depth")).Value(); v != 0 {
		t.Fatalf("alerts_firing gauge after resolve = %v, want 0", v)
	}

	// The lifecycle produced pending, firing, and resolve transitions on
	// the hook, the broker (kind "alert"), and the transition counter.
	h.trMu.Lock()
	var seq []string
	for _, tr := range h.trs {
		seq = append(seq, tr.To)
	}
	h.trMu.Unlock()
	want := []string{StatePending, StateFiring, StateResolved}
	if strings.Join(seq, ",") != strings.Join(want, ",") {
		t.Fatalf("transition sequence = %v, want %v", seq, want)
	}
	if n := len(sub.C); n != len(want) {
		t.Fatalf("broker delivered %d alert events, want %d", n, len(want))
	}
	ev := <-sub.C
	if ev.Kind != "alert" || ev.Data["rule"] != "depth" || ev.Data["state"] != StatePending {
		t.Fatalf("first stream event = %+v", ev)
	}
	if c := h.reg.Counter(obs.Label("alert_transitions_total", "rule", "depth", "to", StateFiring)).Value(); c != 1 {
		t.Fatalf("firing transition counter = %v, want 1", c)
	}
	if st := h.state("depth"); st.Fires != 1 || st.LastFire.IsZero() {
		t.Fatalf("fire bookkeeping = %+v", st)
	}
}

func TestZeroForFiresImmediately(t *testing.T) {
	rule := Rule{Name: "now", Kind: KindThreshold, Metric: "x", Op: ">", Value: 0, WindowSeconds: 30}
	h := newHarness(t, []Rule{rule})
	h.reg.Gauge("x").Set(1)
	trs := h.tick()
	if len(trs) != 2 || trs[0].To != StatePending || trs[1].To != StateFiring {
		t.Fatalf("transitions = %+v, want pending then firing in one pass", trs)
	}
}

func TestAbsenceRule(t *testing.T) {
	rule := Rule{Name: "gone", Kind: KindAbsence, Metric: `up{node="w1"}`, WindowSeconds: 3}
	h := newHarness(t, []Rule{rule})
	h.db.AddSource(func(emit func(string, tsdb.SeriesKind, float64)) {
		emit(`up{node="w1"}`, tsdb.KindGauge, 1)
	})
	h.tick()
	if st := h.state("gone"); st.State != StateInactive {
		t.Fatalf("present series: state=%s want inactive", st.State)
	}
	// Let the series go stale (no further polls); once the last sample ages
	// out of the window, the absence rule fires.
	for i := 0; i < 5; i++ {
		h.clk.Advance(time.Second)
		h.eng.EvalOnce()
	}
	if st := h.state("gone"); st.State != StateFiring {
		t.Fatalf("stale series: state=%s want firing", st.State)
	}
}

func TestRatioRuleAndMinDen(t *testing.T) {
	rule := Rule{
		Name: "errs", Kind: KindRatio,
		Num: []string{`req_total{*code="5*`}, Den: []string{"req_total{*}"},
		MinDen: 0.5, Op: ">", Value: 0.2, WindowSeconds: 30,
	}
	h := newHarness(t, []Rule{rule})
	ok := h.reg.Counter(obs.Label("req_total", "code", "200"))
	bad := h.reg.Counter(obs.Label("req_total", "code", "500"))

	// Tiny traffic below MinDen: suppressed even though the ratio is 100%.
	bad.Inc()
	h.tick()
	h.tick()
	if st := h.state("errs"); st.State != StateInactive || st.HasValue {
		t.Fatalf("below traffic floor: %+v, want inactive without value", st)
	}

	// Real traffic, 50% errors: fires.
	for i := 0; i < 10; i++ {
		ok.Add(3)
		bad.Add(3)
		h.tick()
	}
	if st := h.state("errs"); st.State != StateFiring {
		t.Fatalf("half errors: state=%s want firing (value %v)", st.State, st.Value)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []Rule{
		{},
		{Name: "x", Kind: "nope"},
		{Name: "x", Kind: KindThreshold},
		{Name: "x", Kind: KindThreshold, Metric: "m", Op: "=="},
		{Name: "x", Kind: KindThreshold, Metric: "m", Op: ">", Func: "median"},
		{Name: "x", Kind: KindRatio, Num: []string{"a"}},
		{Name: "x", Kind: KindThreshold, Metric: "m", Op: ">", Severity: "fatal"},
		{Name: "x", Kind: KindThreshold, Metric: "m", Op: ">", Agg: "p50"},
		{Name: "bad\nname", Kind: KindAbsence, Metric: "m"},
		{Name: "x", Kind: KindAbsence, Metric: "m", ForSeconds: -1},
	}
	for i, r := range cases {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d (%+v): Validate accepted a bad rule", i, r)
		}
	}
}

func TestParseAndLoad(t *testing.T) {
	body := `{"rules":[
	  {"name":"a","kind":"absence","metric":"up","window_seconds":30},
	  {"name":"b","kind":"ratio","num":["e_total"],"den":["r_total"],"op":">","value":0.1}
	]}`
	rules, err := Parse([]byte(body))
	if err != nil || len(rules) != 2 {
		t.Fatalf("Parse = %v, %v", rules, err)
	}
	if _, err := Parse([]byte(`{"rules":[{"name":"a","kind":"absence","metric":"m"},{"name":"a","kind":"absence","metric":"m"}]}`)); err == nil {
		t.Fatal("duplicate names accepted")
	}
	if _, err := Parse([]byte(`{"rules":[{"name":"a","kind":"absence","metric":"m","typo":1}]}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "rules.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if rules, err := Load(path); err != nil || len(rules) != 2 {
		t.Fatalf("Load = %v, %v", rules, err)
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("Load of missing file succeeded")
	}
}

func TestDefaultRulesValidAndQuiet(t *testing.T) {
	rules := DefaultRules()
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			t.Errorf("default rule invalid: %v", err)
		}
	}
	// On an empty store, no default rule may fire — absence of traffic is
	// not an outage.
	h := newHarness(t, rules)
	for i := 0; i < 5; i++ {
		h.tick()
	}
	for _, st := range h.eng.Status() {
		if st.State != StateInactive {
			t.Errorf("rule %q is %s on an idle server", st.Rule.Name, st.State)
		}
	}
}

func TestEngineStartStopAndNil(t *testing.T) {
	h := newHarness(t, DefaultRules())
	h.eng.Start()
	h.eng.Start() // idempotent
	h.eng.Stop()
	h.eng.Stop()

	var e *Engine
	if e.EvalOnce() != nil || e.Status() != nil || e.FiringCount() != 0 || e.Rules() != nil {
		t.Fatal("nil engine returned non-zero results")
	}
	e.Start()
	e.Stop()
}

func TestNewPanicsOnInvalidRule(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted an invalid rule")
		}
	}()
	h := newHarness(t, nil)
	New(Options{DB: h.db, Rules: []Rule{{Name: "bad"}}})
}
