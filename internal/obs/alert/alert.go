// Package alert is a declarative, continuously evaluated rule engine over
// the embedded time-series store (internal/obs/tsdb). Rules express the
// operational invariants of the serving and cluster layers — a worker went
// absent, partition retries burst, the response cache collapsed, p99
// latency blew its budget, clock-health alerts came in a burst — and the
// engine turns them into states with memory: inactive → pending (the
// condition holds but hasn't held For long enough) → firing → resolved
// (the condition stayed clear for the re-arm hysteresis KeepFor).
//
// Evaluation is ticker-driven, not sample-driven, on purpose: rules read
// windows of history (rates, quantile series, absence), so the natural
// evaluation cadence is the store's sampling step, and a ticker makes the
// engine's cost independent of event volume — a metrics hot path never
// pays for rule evaluation. Each transition emits an alerts_firing{rule=}
// gauge flip, an SSE "alert" StreamEvent over the broker, a structured
// slog record correlated to a per-evaluation span, and an optional
// OnTransition callback (the flight recorder's trigger).
package alert

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/obs/tsdb"
)

// Rule kinds.
const (
	// KindThreshold compares a windowed query of one metric (or glob)
	// against Value with Op.
	KindThreshold = "threshold"
	// KindAbsence fires when the metric has no sample within Window.
	KindAbsence = "absence"
	// KindRatio compares the ratio of two summed rates — Num over Den —
	// against Value with Op; the classic burn-rate shape. Den at or below
	// MinDen (per second) suppresses the rule: no traffic, no verdict.
	KindRatio = "ratio"
)

// Severity labels, loosest to strictest ordering only by convention.
const (
	SevInfo = "info"
	SevWarn = "warn"
	SevPage = "page"
)

// Rule is one declarative alert. The JSON shape doubles as the -rules file
// format (see File).
type Rule struct {
	Name     string `json:"name"`
	Severity string `json:"severity,omitempty"` // info|warn|page; default warn
	Kind     string `json:"kind"`               // threshold|absence|ratio

	// Threshold and absence rules name one metric (glob patterns allowed;
	// Agg folds multiple matches — max by default, or min|sum|avg).
	Metric string `json:"metric,omitempty"`
	Func   string `json:"func,omitempty"` // last|rate|delta|avg|min|max; default last
	Agg    string `json:"agg,omitempty"`

	// Ratio rules sum the windowed rates of the Num and Den series lists
	// (each entry may be a glob).
	Num    []string `json:"num,omitempty"`
	Den    []string `json:"den,omitempty"`
	MinDen float64  `json:"min_den,omitempty"` // denominator rate floor, per second

	Op    string  `json:"op,omitempty"` // > >= < <=
	Value float64 `json:"value,omitempty"`

	WindowSeconds float64 `json:"window_seconds,omitempty"` // query window; default 60
	ForSeconds    float64 `json:"for_seconds,omitempty"`    // pending dwell before firing
	KeepSeconds   float64 `json:"keep_seconds,omitempty"`   // re-arm hysteresis after clear

	Detail string `json:"detail,omitempty"` // human-readable context
}

// Window returns the rule's query window.
func (r Rule) Window() time.Duration {
	if r.WindowSeconds <= 0 {
		return time.Minute
	}
	return time.Duration(r.WindowSeconds * float64(time.Second))
}

// For returns the pending dwell before a violated rule fires.
func (r Rule) For() time.Duration {
	return time.Duration(r.ForSeconds * float64(time.Second))
}

// Keep returns the clear dwell before a firing rule resolves.
func (r Rule) Keep() time.Duration {
	return time.Duration(r.KeepSeconds * float64(time.Second))
}

// Inputs returns the metric patterns the rule reads — what the flight
// recorder snapshots when the rule fires.
func (r Rule) Inputs() []string {
	var in []string
	if r.Metric != "" {
		in = append(in, r.Metric)
	}
	in = append(in, r.Num...)
	in = append(in, r.Den...)
	return in
}

// Validate reports the first structural problem with the rule.
func (r Rule) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("rule missing name")
	}
	if strings.ContainsAny(r.Name, "\n\r\"{}") {
		return fmt.Errorf("rule %q: name contains exposition metacharacters", r.Name)
	}
	switch r.Severity {
	case "", SevInfo, SevWarn, SevPage:
	default:
		return fmt.Errorf("rule %q: unknown severity %q", r.Name, r.Severity)
	}
	switch r.Kind {
	case KindThreshold:
		if r.Metric == "" {
			return fmt.Errorf("rule %q: threshold needs a metric", r.Name)
		}
		if !tsdb.ValidFunc(r.Func) {
			return fmt.Errorf("rule %q: unknown func %q", r.Name, r.Func)
		}
		if !validOp(r.Op) {
			return fmt.Errorf("rule %q: bad op %q (want > >= < <=)", r.Name, r.Op)
		}
	case KindAbsence:
		if r.Metric == "" {
			return fmt.Errorf("rule %q: absence needs a metric", r.Name)
		}
	case KindRatio:
		if len(r.Num) == 0 || len(r.Den) == 0 {
			return fmt.Errorf("rule %q: ratio needs num and den series", r.Name)
		}
		if !validOp(r.Op) {
			return fmt.Errorf("rule %q: bad op %q (want > >= < <=)", r.Name, r.Op)
		}
	default:
		return fmt.Errorf("rule %q: unknown kind %q", r.Name, r.Kind)
	}
	switch r.Agg {
	case "", "max", "min", "sum", "avg":
	default:
		return fmt.Errorf("rule %q: unknown agg %q", r.Name, r.Agg)
	}
	if r.WindowSeconds < 0 || r.ForSeconds < 0 || r.KeepSeconds < 0 {
		return fmt.Errorf("rule %q: negative duration", r.Name)
	}
	return nil
}

func validOp(op string) bool {
	switch op {
	case ">", ">=", "<", "<=":
		return true
	}
	return false
}

func compare(v float64, op string, limit float64) bool {
	switch op {
	case ">":
		return v > limit
	case ">=":
		return v >= limit
	case "<":
		return v < limit
	case "<=":
		return v <= limit
	}
	return false
}

// File is the on-disk rules format: {"rules": [...]}.
type File struct {
	Rules []Rule `json:"rules"`
}

// Parse decodes and validates a rules file body.
func Parse(b []byte) ([]Rule, error) {
	var f File
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("rules file: %w", err)
	}
	seen := make(map[string]bool, len(f.Rules))
	for _, r := range f.Rules {
		if err := r.Validate(); err != nil {
			return nil, err
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
	}
	return f.Rules, nil
}

// Load reads and validates a rules file from disk.
func Load(path string) ([]Rule, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(b)
}

// Alert states.
const (
	StateInactive = "inactive"
	StatePending  = "pending"
	StateFiring   = "firing"
	// StateResolved only appears as a Transition.To (firing cleared after
	// the Keep dwell); the rule's stored state returns to inactive.
	StateResolved = "resolved"
)

// RuleStatus is one rule's externally visible state (statusz, flightz).
type RuleStatus struct {
	Rule     Rule      `json:"rule"`
	State    string    `json:"state"`
	Since    time.Time `json:"since"`               // entered the current state
	Value    float64   `json:"value"`               // last evaluated value
	HasValue bool      `json:"has_value"`           // false when the query had no data
	Fires    uint64    `json:"fires"`               // lifetime pending->firing transitions
	LastFire time.Time `json:"last_fire,omitempty"` // zero until the first fire
}

// Transition is one state change, delivered to OnTransition and the broker.
type Transition struct {
	Rule     Rule
	From, To string
	At       time.Time
	Value    float64
	HasValue bool
}

// Options assembles an Engine. DB is required; everything else optional.
type Options struct {
	DB    *tsdb.DB
	Rules []Rule
	// Every is the evaluation cadence; 0 -> the DB's sampling step.
	Every time.Duration
	// Registry receives alerts_firing{rule=} gauges and
	// alert_transitions_total{rule=,to=} counters.
	Registry *obs.Registry
	// Broker receives one "alert" StreamEvent per transition.
	Broker *obs.Broker
	// Logger receives one structured record per transition, correlated to
	// the evaluation span when Tracer is set.
	Logger *slog.Logger
	// Tracer, when set, wraps each evaluation pass that produced
	// transitions in an "alert.eval" span (trace correlation for logs).
	Tracer *span.Tracer
	// OnTransition observes every transition after metrics/stream/log
	// emission — the flight recorder's capture hook. Called on the
	// evaluation goroutine; must not block.
	OnTransition func(Transition)
	// Now is the injectable clock for tests; nil -> time.Now.
	Now func() time.Time
}

// ruleState is one rule's evaluation memory.
type ruleState struct {
	rule       Rule
	state      string
	since      time.Time
	clearSince time.Time // while firing: when the condition last went clear
	value      float64
	hasValue   bool
	fires      uint64
	lastFire   time.Time
	firing     *obs.Gauge
}

// Engine evaluates rules on a ticker. Create with New, Start/Stop, or call
// EvalOnce directly (tests, or a caller that owns the cadence).
type Engine struct {
	db     *tsdb.DB
	every  time.Duration
	now    func() time.Time
	reg    *obs.Registry
	broker *obs.Broker
	log    *slog.Logger
	tracer *span.Tracer
	onTr   func(Transition)

	mu     sync.Mutex
	states []*ruleState

	stopCh  chan struct{}
	started bool
	stopped bool
}

// New builds an Engine; rules must already be validated (New panics on an
// invalid rule, the same contract as template.Must — rule sets are static
// configuration).
func New(o Options) *Engine {
	if o.Every <= 0 {
		o.Every = o.DB.Step()
	}
	if o.Every <= 0 {
		o.Every = 5 * time.Second
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	e := &Engine{
		db: o.DB, every: o.Every, now: o.Now,
		reg: o.Registry, broker: o.Broker, log: o.Logger,
		tracer: o.Tracer, onTr: o.OnTransition,
		stopCh: make(chan struct{}),
	}
	for _, r := range o.Rules {
		if err := r.Validate(); err != nil {
			panic("alert.New: " + err.Error())
		}
		st := &ruleState{rule: r, state: StateInactive, since: o.Now()}
		if e.reg != nil {
			st.firing = e.reg.Gauge(obs.Label("alerts_firing", "rule", r.Name))
		}
		e.states = append(e.states, st)
	}
	return e
}

// Rules returns the engine's rule set.
func (e *Engine) Rules() []Rule {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Rule, len(e.states))
	for i, st := range e.states {
		out[i] = st.rule
	}
	return out
}

// Status snapshots every rule's state, sorted by name.
func (e *Engine) Status() []RuleStatus {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]RuleStatus, 0, len(e.states))
	for _, st := range e.states {
		out = append(out, RuleStatus{
			Rule: st.rule, State: st.state, Since: st.since,
			Value: st.value, HasValue: st.hasValue,
			Fires: st.fires, LastFire: st.lastFire,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rule.Name < out[j].Rule.Name })
	return out
}

// FiringCount returns how many rules are currently firing.
func (e *Engine) FiringCount() int {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, st := range e.states {
		if st.state == StateFiring {
			n++
		}
	}
	return n
}

// evalRule evaluates one rule's condition against the store.
func (e *Engine) evalRule(r Rule) (violating bool, value float64, hasValue bool) {
	switch r.Kind {
	case KindThreshold:
		v, ok := e.db.Eval(tsdb.Query{Metric: r.Metric, Func: r.Func, Window: r.Window(), Agg: r.Agg})
		if !ok {
			return false, 0, false // no data is absence's business, not ours
		}
		return compare(v, r.Op, r.Value), v, true
	case KindAbsence:
		_, ok := e.db.Eval(tsdb.Query{Metric: r.Metric, Func: tsdb.FuncLast, Window: r.Window(), Agg: r.Agg})
		return !ok, 0, ok
	case KindRatio:
		num := e.sumRates(r.Num, r.Window())
		den := e.sumRates(r.Den, r.Window())
		if den <= r.MinDen || den == 0 {
			return false, 0, false // too little traffic to judge
		}
		ratio := num / den
		return compare(ratio, r.Op, r.Value), ratio, true
	}
	return false, 0, false
}

func (e *Engine) sumRates(patterns []string, window time.Duration) float64 {
	total := 0.0
	for _, p := range patterns {
		if v, ok := e.db.Eval(tsdb.Query{Metric: p, Func: tsdb.FuncRate, Window: window, Agg: "sum"}); ok {
			total += v
		}
	}
	return total
}

// EvalOnce runs one evaluation pass at the engine clock's current time and
// returns the transitions it produced (already emitted to the registry,
// broker, log and OnTransition hook).
func (e *Engine) EvalOnce() []Transition {
	if e == nil {
		return nil
	}
	now := e.now()
	var trs []Transition

	e.mu.Lock()
	for _, st := range e.states {
		violating, value, hasValue := e.evalRule(st.rule)
		st.value, st.hasValue = value, hasValue
		switch st.state {
		case StateInactive:
			if violating {
				st.state, st.since = StatePending, now
				trs = append(trs, Transition{Rule: st.rule, From: StateInactive, To: StatePending, At: now, Value: value, HasValue: hasValue})
				// A rule with no dwell fires in the same pass it pends.
				if now.Sub(st.since) >= st.rule.For() {
					trs = append(trs, e.fireLocked(st, now, value, hasValue))
				}
			}
		case StatePending:
			if !violating {
				st.state, st.since = StateInactive, now
				trs = append(trs, Transition{Rule: st.rule, From: StatePending, To: StateInactive, At: now, Value: value, HasValue: hasValue})
			} else if now.Sub(st.since) >= st.rule.For() {
				trs = append(trs, e.fireLocked(st, now, value, hasValue))
			}
		case StateFiring:
			if violating {
				st.clearSince = time.Time{} // re-arm: the clear streak broke
			} else {
				if st.clearSince.IsZero() {
					st.clearSince = now
				}
				if now.Sub(st.clearSince) >= st.rule.Keep() {
					st.state, st.since, st.clearSince = StateInactive, now, time.Time{}
					if st.firing != nil {
						st.firing.Set(0)
					}
					trs = append(trs, Transition{Rule: st.rule, From: StateFiring, To: StateResolved, At: now, Value: value, HasValue: hasValue})
				}
			}
		}
	}
	e.mu.Unlock()

	if len(trs) > 0 {
		e.emit(trs)
	}
	return trs
}

// fireLocked moves a pending rule to firing. Callers hold e.mu.
func (e *Engine) fireLocked(st *ruleState, now time.Time, value float64, hasValue bool) Transition {
	st.state, st.since, st.clearSince = StateFiring, now, time.Time{}
	st.fires++
	st.lastFire = now
	if st.firing != nil {
		st.firing.Set(1)
	}
	return Transition{Rule: st.rule, From: StatePending, To: StateFiring, At: now, Value: value, HasValue: hasValue}
}

// emit publishes transitions to the metric registry, the SSE broker, the
// structured log (correlated to an alert.eval span) and the hook.
func (e *Engine) emit(trs []Transition) {
	var sp *span.Span
	if e.tracer != nil {
		sp = e.tracer.Root("alert.eval")
		sp.SetAttr("alert.transitions", len(trs))
		defer sp.End()
	}
	for _, tr := range trs {
		if e.reg != nil {
			e.reg.Counter(obs.Label("alert_transitions_total", "rule", tr.Rule.Name, "to", tr.To)).Inc()
		}
		e.broker.Publish(obs.StreamEvent{Kind: "alert", Data: map[string]any{
			"rule": tr.Rule.Name, "severity": severityOrDefault(tr.Rule.Severity),
			"from": tr.From, "state": tr.To,
			"value": tr.Value, "limit": tr.Rule.Value,
			"detail": tr.Rule.Detail,
		}})
		if e.log != nil {
			ctx := span.NewContext(context.Background(), sp)
			lvl := slog.LevelWarn
			if tr.To == StateInactive || tr.To == StateResolved {
				lvl = slog.LevelInfo
			}
			e.log.LogAttrs(ctx, lvl, "alert_transition",
				slog.String("rule", tr.Rule.Name),
				slog.String("severity", severityOrDefault(tr.Rule.Severity)),
				slog.String("from", tr.From),
				slog.String("to", tr.To),
				slog.Float64("value", tr.Value),
				slog.Float64("limit", tr.Rule.Value),
			)
		}
		sp.AddEvent("alert."+tr.To, span.Attr{Key: "rule", Value: tr.Rule.Name})
		if e.onTr != nil {
			e.onTr(tr)
		}
	}
}

func severityOrDefault(s string) string {
	if s == "" {
		return SevWarn
	}
	return s
}

// Start launches the evaluation ticker. Idempotent; no-op after Stop.
func (e *Engine) Start() {
	if e == nil {
		return
	}
	e.mu.Lock()
	if e.started || e.stopped {
		e.mu.Unlock()
		return
	}
	e.started = true
	e.mu.Unlock()
	go func() {
		t := time.NewTicker(e.every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				e.EvalOnce()
			case <-e.stopCh:
				return
			}
		}
	}()
}

// Stop ends the evaluation ticker. Idempotent.
func (e *Engine) Stop() {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stopped {
		return
	}
	e.stopped = true
	close(e.stopCh)
}
