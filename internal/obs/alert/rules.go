package alert

// DefaultRules is the built-in rule set covering the three layers the
// ISSUE calls out: cluster health, serving health, and clock health. The
// rules are written to stay silent on an idle server — threshold and
// ratio rules treat "no data" as healthy (absence is its own kind), and
// ratio rules carry a MinDen traffic floor so a single failed request on
// an otherwise idle instance doesn't page anyone.
func DefaultRules() []Rule {
	return []Rule{
		// --- cluster health ---
		{
			Name: "worker-absent", Severity: SevPage, Kind: KindThreshold,
			Metric: `cluster_workers{state="lost"}`, Func: "last", Op: ">=", Value: 1,
			WindowSeconds: 60, ForSeconds: 0, KeepSeconds: 15,
			Detail: "a cluster worker missed its heartbeat deadline and was marked lost",
		},
		{
			Name: "partition-retry-rate", Severity: SevWarn, Kind: KindThreshold,
			Metric: "cluster_partition_retries_total", Func: "rate", Op: ">", Value: 0.5,
			WindowSeconds: 120, ForSeconds: 10, KeepSeconds: 30,
			Detail: "sweep partitions are being re-dispatched faster than 1 per 2s",
		},
		{
			Name: "heartbeat-flap", Severity: SevWarn, Kind: KindThreshold,
			Metric: "cluster_worker_flaps_total", Func: "rate", Op: ">", Value: 0.1,
			WindowSeconds: 300, ForSeconds: 0, KeepSeconds: 60,
			Detail: "workers are oscillating between lost and alive (network or GC pauses)",
		},
		// --- serving health ---
		{
			Name: "p99-latency", Severity: SevWarn, Kind: KindThreshold,
			Metric: "http_request_seconds_p99{*}", Func: "max", Agg: "max", Op: ">", Value: 2,
			WindowSeconds: 120, ForSeconds: 15, KeepSeconds: 60,
			Detail: "worst per-route interval p99 exceeded 2s",
		},
		{
			Name: "error-rate", Severity: SevPage, Kind: KindRatio,
			Num: []string{`http_requests_total{*code="5*`}, Den: []string{"http_requests_total{*}"},
			MinDen: 0.5, Op: ">", Value: 0.05,
			WindowSeconds: 120, ForSeconds: 15, KeepSeconds: 60,
			Detail: "more than 5% of requests returned 5xx",
		},
		{
			Name: "cache-hit-collapse", Severity: SevInfo, Kind: KindRatio,
			Num: []string{"cache_hits_total{*}"}, Den: []string{"cache_hits_total{*}", "cache_misses_total{*}"},
			MinDen: 1, Op: "<", Value: 0.1,
			WindowSeconds: 300, ForSeconds: 30, KeepSeconds: 60,
			Detail: "response-cache hit rate fell below 10% under real traffic",
		},
		{
			Name: "job-queue-depth", Severity: SevWarn, Kind: KindThreshold,
			Metric: "jobs_queued", Func: "min", Op: ">=", Value: 8,
			WindowSeconds: 60, ForSeconds: 30, KeepSeconds: 30,
			Detail: "the async job queue stayed at least 8 deep for 30s",
		},
		// --- clock health ---
		{
			Name: "clock-alert-burst", Severity: SevWarn, Kind: KindThreshold,
			Metric: "clock_alerts_total{*}", Func: "rate", Agg: "sum", Op: ">", Value: 1,
			WindowSeconds: 60, ForSeconds: 0, KeepSeconds: 30,
			Detail: "simulation clock-health alerts (phase residency, separation) arriving >1/s",
		},
	}
}
