package obs

import "fmt"

// Watcher derives semantic events (clock edges, phase changes, duty cycles)
// from raw state samples. The simulators drive watchers at every accepted
// step (ODE) or recording sample (SSA, tau-leap):
//
//	Bind(species)          once, to resolve names to state indices
//	Observe(t, y, sink)    per sample, in increasing-time order
//	Finish(t, sink)        once, after the final sample
//
// Implementations keep per-run state and must not be shared by concurrent
// simulations.
type Watcher interface {
	Bind(species []string) error
	Observe(t float64, y []float64, sink Observer)
	Finish(t float64, sink Observer)
}

func resolve(species []string, want []string) ([]int, error) {
	index := make(map[string]int, len(species))
	for i, s := range species {
		index[s] = i
	}
	idx := make([]int, len(want))
	for i, w := range want {
		j, ok := index[w]
		if !ok {
			return nil, fmt.Errorf("obs: watcher references unknown species %q", w)
		}
		idx[i] = j
	}
	return idx, nil
}

// EdgeWatcher emits ClockEdge events when watched species cross a
// Schmitt-triggered threshold pair: a rising edge when a species reaches
// High from below Low, a falling edge when it drops back below Low. This is
// the paper's reading of the molecular clock — a phase species above half
// the heartbeat amount is that phase's logical 1.
type EdgeWatcher struct {
	Species []string // watched species; empty means every bound species
	High    float64  // rising threshold
	Low     float64  // falling / re-arm threshold, must be < High

	names []string
	idx   []int
	high  []bool
	init  bool
}

// Bind resolves the watched species against the simulation's species table.
func (w *EdgeWatcher) Bind(species []string) error {
	if w.Low >= w.High {
		return fmt.Errorf("obs: edge watcher: Low (%g) must be < High (%g)", w.Low, w.High)
	}
	if len(w.Species) == 0 {
		w.names = append([]string(nil), species...)
	} else {
		w.names = append([]string(nil), w.Species...)
	}
	idx, err := resolve(species, w.names)
	if err != nil {
		return err
	}
	w.idx = idx
	w.high = make([]bool, len(idx))
	w.init = false
	return nil
}

// Observe updates the trigger state machines, emitting edges into sink.
func (w *EdgeWatcher) Observe(t float64, y []float64, sink Observer) {
	if !w.init {
		// The first sample sets the initial state without emitting edges.
		for i, j := range w.idx {
			w.high[i] = y[j] >= w.High
		}
		w.init = true
		return
	}
	for i, j := range w.idx {
		v := y[j]
		switch {
		case !w.high[i] && v >= w.High:
			w.high[i] = true
			sink.OnClockEdge(ClockEdge{T: t, Species: w.names[i], Rising: true, Level: w.High})
		case w.high[i] && v < w.Low:
			w.high[i] = false
			sink.OnClockEdge(ClockEdge{T: t, Species: w.names[i], Rising: false, Level: w.Low})
		}
	}
}

// Finish is a no-op for edge watching.
func (w *EdgeWatcher) Finish(t float64, sink Observer) {}

// PhaseGroup names a set of species whose total concentration represents
// one phase of a PhaseWatcher.
type PhaseGroup struct {
	Name    string
	Species []string
}

// PhaseWatcher emits a PhaseChange event whenever the group holding the
// largest total concentration changes (and that maximum exceeds Eps). With
// one group per colour class this tracks the tri-phase heartbeat; with one
// group per species it tracks which species currently dominates.
type PhaseWatcher struct {
	Groups []PhaseGroup
	Eps    float64 // minimum dominant mass to count; default 0 (any positive)

	idx [][]int
	cur int
}

// Bind resolves every group against the simulation's species table.
func (w *PhaseWatcher) Bind(species []string) error {
	if len(w.Groups) < 2 {
		return fmt.Errorf("obs: phase watcher needs at least 2 groups, got %d", len(w.Groups))
	}
	w.idx = make([][]int, len(w.Groups))
	for i, g := range w.Groups {
		idx, err := resolve(species, g.Species)
		if err != nil {
			return fmt.Errorf("group %q: %w", g.Name, err)
		}
		w.idx[i] = idx
	}
	w.cur = -1
	return nil
}

// Observe re-evaluates the dominant group, emitting a PhaseChange on change.
// The first determination of a run emits with From set to "".
func (w *PhaseWatcher) Observe(t float64, y []float64, sink Observer) {
	best, bestMass := -1, w.Eps
	for i, idx := range w.idx {
		mass := 0.0
		for _, j := range idx {
			mass += y[j]
		}
		if mass > bestMass {
			best, bestMass = i, mass
		}
	}
	if best < 0 || best == w.cur {
		return
	}
	from := ""
	if w.cur >= 0 {
		from = w.Groups[w.cur].Name
	}
	w.cur = best
	sink.OnPhaseChange(PhaseChange{T: t, From: from, To: w.Groups[best].Name})
}

// Finish is a no-op for phase watching.
func (w *PhaseWatcher) Finish(t float64, sink Observer) {}

// DutyWatcher measures the duty cycle of watched species — the fraction of
// simulated time each spends at or above Threshold — and records it into
// Registry gauges `duty_cycle{species=...}` at Finish. Used on the tri-phase
// absence indicators: the paper's discipline requires an indicator to be
// high only during the short window when its colour class is empty, so a
// large duty cycle flags a stalled or mis-gated design.
type DutyWatcher struct {
	Species   []string
	Threshold float64
	Registry  *Registry

	idx    []int
	above  []bool
	tAbove []float64
	lastT  float64
	t0     float64
	init   bool
}

// Bind resolves the watched species against the simulation's species table.
func (w *DutyWatcher) Bind(species []string) error {
	if w.Registry == nil {
		return fmt.Errorf("obs: duty watcher needs a Registry")
	}
	idx, err := resolve(species, w.Species)
	if err != nil {
		return err
	}
	w.idx = idx
	w.above = make([]bool, len(idx))
	w.tAbove = make([]float64, len(idx))
	w.init = false
	return nil
}

// Observe accumulates time-above-threshold using the previous sample's state
// over the elapsed interval (left rectangle rule).
func (w *DutyWatcher) Observe(t float64, y []float64, sink Observer) {
	if !w.init {
		w.t0, w.lastT = t, t
		for i, j := range w.idx {
			w.above[i] = y[j] >= w.Threshold
		}
		w.init = true
		return
	}
	dt := t - w.lastT
	if dt > 0 {
		for i := range w.idx {
			if w.above[i] {
				w.tAbove[i] += dt
			}
		}
		w.lastT = t
	}
	for i, j := range w.idx {
		w.above[i] = y[j] >= w.Threshold
	}
}

// Finish closes the last interval and writes the duty-cycle gauges.
func (w *DutyWatcher) Finish(t float64, sink Observer) {
	if !w.init {
		return
	}
	if dt := t - w.lastT; dt > 0 {
		for i := range w.idx {
			if w.above[i] {
				w.tAbove[i] += dt
			}
		}
		w.lastT = t
	}
	span := w.lastT - w.t0
	for i, name := range w.Species {
		duty := 0.0
		if span > 0 {
			duty = w.tAbove[i] / span
		}
		w.Registry.Gauge(Label("duty_cycle", "species", name)).Set(duty)
	}
}

// BindAll binds every watcher against the species table, failing fast.
func BindAll(watchers []Watcher, species []string) error {
	for _, w := range watchers {
		if err := w.Bind(species); err != nil {
			return err
		}
	}
	return nil
}

// ObserveAll drives every watcher for one sample.
func ObserveAll(watchers []Watcher, t float64, y []float64, sink Observer) {
	for _, w := range watchers {
		w.Observe(t, y, sink)
	}
}

// FinishAll flushes every watcher.
func FinishAll(watchers []Watcher, t float64, sink Observer) {
	for _, w := range watchers {
		w.Finish(t, sink)
	}
}
