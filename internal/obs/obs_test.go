package obs

import (
	"strings"
	"testing"
)

// recorder captures every event for assertions.
type recorder struct {
	starts  []SimStart
	steps   []Step
	firings []ReactionFiring
	edges   []ClockEdge
	phases  []PhaseChange
	alerts  []Alert
	ends    []SimEnd
}

func (r *recorder) OnSimStart(e SimStart)             { r.starts = append(r.starts, e) }
func (r *recorder) OnStep(e Step)                     { r.steps = append(r.steps, e) }
func (r *recorder) OnReactionFiring(e ReactionFiring) { r.firings = append(r.firings, e) }
func (r *recorder) OnClockEdge(e ClockEdge)           { r.edges = append(r.edges, e) }
func (r *recorder) OnPhaseChange(e PhaseChange)       { r.phases = append(r.phases, e) }
func (r *recorder) OnAlert(e Alert)                   { r.alerts = append(r.alerts, e) }
func (r *recorder) OnSimEnd(e SimEnd)                 { r.ends = append(r.ends, e) }

func TestMulti(t *testing.T) {
	if Multi() != nil {
		t.Fatal("Multi() != nil")
	}
	if Multi(nil, nil) != nil {
		t.Fatal("Multi(nil, nil) != nil")
	}
	a := &recorder{}
	if got := Multi(nil, a, nil); got != Observer(a) {
		t.Fatal("Multi with one live observer should return it unwrapped")
	}
	b := &recorder{}
	m := Multi(a, nil, b)
	m.OnSimStart(SimStart{Sim: "ode"})
	m.OnStep(Step{T: 1, Accepted: true})
	m.OnReactionFiring(ReactionFiring{Reaction: 2, Count: 1})
	m.OnClockEdge(ClockEdge{Species: "R"})
	m.OnPhaseChange(PhaseChange{To: "green"})
	m.OnSimEnd(SimEnd{Sim: "ode"})
	for _, r := range []*recorder{a, b} {
		if len(r.starts) != 1 || len(r.steps) != 1 || len(r.firings) != 1 ||
			len(r.edges) != 1 || len(r.phases) != 1 || len(r.ends) != 1 {
			t.Fatalf("fan-out incomplete: %+v", r)
		}
	}
}

func TestBaseIsNop(t *testing.T) {
	// Compile-time interface check plus a smoke call of every method.
	var o Observer = Base{}
	o.OnSimStart(SimStart{})
	o.OnStep(Step{})
	o.OnReactionFiring(ReactionFiring{})
	o.OnClockEdge(ClockEdge{})
	o.OnPhaseChange(PhaseChange{})
	o.OnSimEnd(SimEnd{})
	if Nop == nil {
		t.Fatal("Nop is nil")
	}
}

func TestProgress(t *testing.T) {
	var sb strings.Builder
	p := &Progress{W: &sb, Every: 0.5}
	p.OnSimStart(SimStart{Sim: "ode", T0: 0, T1: 10, Species: []string{"X"}})
	for _, tm := range []float64{1, 2, 5, 6, 9, 10} {
		p.OnStep(Step{T: tm, Accepted: true})
	}
	p.OnStep(Step{T: 10, Accepted: false}) // rejections are not progress
	p.OnSimEnd(SimEnd{Sim: "ode", T: 10, Steps: 6, WallSeconds: 0.01})
	out := sb.String()
	if !strings.Contains(out, "ode start t=0..10") {
		t.Errorf("missing start line:\n%s", out)
	}
	if n := strings.Count(out, "%"); n < 2 {
		t.Errorf("expected at least two milestone lines, got %d:\n%s", n, out)
	}
	if !strings.Contains(out, "ode done t=10 steps=6") {
		t.Errorf("missing done line:\n%s", out)
	}
}
