package obs

import (
	"io"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("Value = %g, want 3.5", got)
	}
	c.Add(-1) // counters only go up
	c.Add(math.NaN())
	if got := c.Value(); got != 3.5 {
		t.Fatalf("Value after invalid adds = %g, want 3.5", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(2)
	g.Add(-3)
	if got := g.Value(); got != -1 {
		t.Fatalf("Value = %g, want -1", got)
	}
}

func TestHistogram(t *testing.T) {
	h := newHistogram([]float64{1, 10})
	for _, v := range []float64{0.5, 0.5, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Sum() != 106 {
		t.Fatalf("Sum = %g", h.Sum())
	}
	if h.Mean() != 26.5 {
		t.Fatalf("Mean = %g", h.Mean())
	}
	bounds, cum, _, n := h.snapshot()
	if len(bounds) != 2 || bounds[0] != 1 || bounds[1] != 10 {
		t.Fatalf("bounds = %v", bounds)
	}
	// Cumulative: <=1 holds two, <=10 holds three, +Inf holds all four.
	if cum[0] != 2 || cum[1] != 3 || cum[2] != 4 || n != 4 {
		t.Fatalf("cum = %v n = %d", cum, n)
	}
}

func TestLabel(t *testing.T) {
	if got := Label("x_total"); got != "x_total" {
		t.Fatalf("no-label = %q", got)
	}
	if got := Label("x_total", "sim", "ode"); got != `x_total{sim="ode"}` {
		t.Fatalf("one label = %q", got)
	}
	if got := Label("x", "a", "1", "b", "2"); got != `x{a="1",b="2"}` {
		t.Fatalf("two labels = %q", got)
	}
	if got := Label("x", "k", `a"b\c`); got != `x{k="a\"b\\c"}` {
		t.Fatalf("escaping = %q", got)
	}
}

func TestSuffixedAndWithLabel(t *testing.T) {
	if got := suffixed(`h{a="b"}`, "_bucket"); got != `h_bucket{a="b"}` {
		t.Fatalf("suffixed labelled = %q", got)
	}
	if got := suffixed("h", "_sum"); got != "h_sum" {
		t.Fatalf("suffixed bare = %q", got)
	}
	if got := withLabel(`h{a="b"}`, "le", "0.5"); got != `h{a="b",le="0.5"}` {
		t.Fatalf("withLabel labelled = %q", got)
	}
	if got := withLabel("h", "le", "+Inf"); got != `h{le="+Inf"}` {
		t.Fatalf("withLabel bare = %q", got)
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines — metric
// creation races, counter/gauge CAS loops, histogram observes — and is the
// package's main `go test -race` target.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("shared_total").Inc()
				r.Counter(Label("per_worker_total", "w", string(rune('a'+w)))).Inc()
				r.Gauge("level").Set(float64(i))
				r.Histogram("sizes", []float64{1, 10, 100}).Observe(float64(i % 7))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != workers*iters {
		t.Fatalf("shared_total = %g, want %d", got, workers*iters)
	}
	if got := r.Histogram("sizes", nil).Count(); got != workers*iters {
		t.Fatalf("sizes count = %d, want %d", got, workers*iters)
	}
	for w := 0; w < workers; w++ {
		name := Label("per_worker_total", "w", string(rune('a'+w)))
		if got := r.Counter(name).Value(); got != iters {
			t.Fatalf("%s = %g, want %d", name, got, iters)
		}
	}
	// Rendering while idle must include every family exactly once.
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(sb.String(), "# TYPE per_worker_total counter"); n != 1 {
		t.Fatalf("per_worker_total TYPE header appears %d times", n)
	}
}

// TestRegistryReadDuringRegistration pits Snapshot/Summary/WriteTo against
// concurrent first-use registrations — regression for the map race Snapshot
// had when it aliased the live maps instead of copying under the lock.
func TestRegistryReadDuringRegistration(t *testing.T) {
	r := NewRegistry()
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				r.Counter(Label("reg_total", "w", string(rune('a'+w)), "i", string(rune('A'+i%26)))).Inc()
				r.Gauge(Label("reg_level", "w", string(rune('a'+w)))).Set(float64(i))
			}
		}(w)
	}
	done := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			r.Snapshot()
			r.Summary()
			r.WriteTo(io.Discard)
		}
	}()
	writers.Wait()
	close(done)
	reader.Wait()
}

func TestRegistryWriteTo(t *testing.T) {
	r := NewRegistry()
	r.Counter(Label("runs_total", "sim", "ode")).Add(3)
	r.Gauge("wall_seconds").Set(0.25)
	h := r.Histogram("step", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	var sb strings.Builder
	n, err := r.WriteTo(&sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if int64(len(out)) != n {
		t.Fatalf("WriteTo returned %d, wrote %d bytes", n, len(out))
	}
	for _, want := range []string{
		"# TYPE runs_total counter",
		`runs_total{sim="ode"} 3`,
		"# TYPE wall_seconds gauge",
		"wall_seconds 0.25",
		"# TYPE step histogram",
		`step_bucket{le="0.1"} 1`,
		`step_bucket{le="1"} 2`,
		`step_bucket{le="+Inf"} 2`,
		"step_sum 0.55",
		"step_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistrySnapshotAndSummary(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Add(2)
	r.Gauge("g").Set(-1)
	h := r.Histogram("h", []float64{1})
	h.Observe(2)
	h.Observe(4)
	snap := r.Snapshot()
	want := map[string]float64{"c_total": 2, "g": -1, "h_count": 2, "h_sum": 6, "h_mean": 3}
	for k, v := range want {
		if snap[k] != v {
			t.Errorf("Snapshot[%q] = %g, want %g", k, snap[k], v)
		}
	}
	sum := r.Summary()
	for _, wantLine := range []string{"c_total", "g", "n=2"} {
		if !strings.Contains(sum, wantLine) {
			t.Errorf("Summary missing %q:\n%s", wantLine, sum)
		}
	}
}

// TestRegistryObserver feeds a full simulated run through the adapter and
// checks the standard metric families come out.
func TestRegistryObserver(t *testing.T) {
	r := NewRegistry()
	o := NewRegistryObserver(r)
	o.OnSimStart(SimStart{Sim: "ssa", T0: 0, T1: 10,
		Species: []string{"X"}, Reactions: []string{"decay", "grow"}})
	o.OnStep(Step{T: 1, H: 0.5, Accepted: true, Propensity: 2})
	o.OnStep(Step{T: 2, H: 0.5, Accepted: false})
	o.OnReactionFiring(ReactionFiring{T: 1, Reaction: 0, Count: 1})
	o.OnReactionFiring(ReactionFiring{T: 1.5, Reaction: 0, Count: 2})
	o.OnReactionFiring(ReactionFiring{T: 1.6, Reaction: 99, Count: 1}) // out of range
	o.OnClockEdge(ClockEdge{T: 3, Species: "X", Rising: true})
	o.OnClockEdge(ClockEdge{T: 4, Species: "X", Rising: false})
	o.OnPhaseChange(PhaseChange{T: 3, From: "", To: "red"})
	o.OnSimEnd(SimEnd{Sim: "ssa", T: 10, Steps: 42, WallSeconds: 0.5, Err: "boom"})

	snap := r.Snapshot()
	checks := map[string]float64{
		`sim_runs_total{sim="ssa"}`:                 1,
		`stoch_steps_total{sim="ssa"}`:              1,
		"stoch_steps_rejected_total":                1,
		"stoch_propensity_total_count":              1,
		`reaction_firings_total{reaction="decay"}`:  3,
		`reaction_firings_total{reaction="#99"}`:    1,
		`clock_edges_total{species="X",dir="rise"}`: 1,
		`clock_edges_total{species="X",dir="fall"}`: 1,
		`phase_changes_total{to="red"}`:             1,
		`sim_steps_total{sim="ssa"}`:                42,
		`sim_wall_seconds{sim="ssa"}`:               0.5,
		`sim_errors_total{sim="ssa"}`:               1,
	}
	for k, v := range checks {
		if snap[k] != v {
			t.Errorf("Snapshot[%q] = %g, want %g", k, snap[k], v)
		}
	}
}

// TestRegistryMerge covers the shard-merge path used by the batch engine:
// counters add, gauges adopt, matching histograms add bucket-wise.
func TestRegistryMerge(t *testing.T) {
	dst := NewRegistry()
	dst.Counter("jobs_total").Add(2)
	dst.Gauge("workers").Set(1)
	dst.Histogram("lat", []float64{1, 10}).Observe(0.5)

	src := NewRegistry()
	src.Counter("jobs_total").Add(3)
	src.Counter("fresh_total").Add(1)
	src.Gauge("workers").Set(4)
	src.Histogram("lat", []float64{1, 10}).Observe(5)
	src.Histogram("lat", nil).Observe(100)

	dst.Merge(src)
	snap := dst.Snapshot()
	checks := map[string]float64{
		"jobs_total":  5,
		"fresh_total": 1,
		"workers":     4,
		"lat_count":   3,
		"lat_sum":     105.5,
	}
	for k, v := range checks {
		if snap[k] != v {
			t.Errorf("after Merge, Snapshot[%q] = %g, want %g", k, snap[k], v)
		}
	}
	_, cum, _, _ := dst.hists["lat"].snapshot()
	if cum[0] != 1 || cum[1] != 2 || cum[2] != 3 {
		t.Errorf("merged lat cum buckets = %v, want [1 2 3]", cum)
	}

	// Self-merge and nil-merge are no-ops.
	dst.Merge(dst)
	dst.Merge(nil)
	if got := dst.Counter("jobs_total").Value(); got != 5 {
		t.Errorf("self/nil merge changed jobs_total to %g", got)
	}
}

// TestRegistryMergeMismatchedBuckets checks observations survive a bounds
// mismatch by landing in the overflow bucket.
func TestRegistryMergeMismatchedBuckets(t *testing.T) {
	dst := NewRegistry()
	dst.Histogram("lat", []float64{1, 10}).Observe(0.5)
	src := NewRegistry()
	src.Histogram("lat", []float64{2, 20}).Observe(0.5)
	src.Histogram("lat", nil).Observe(3)

	dst.Merge(src)
	h := dst.hists["lat"]
	if h.Count() != 3 || h.Sum() != 4 {
		t.Fatalf("count=%d sum=%g, want 3 and 4", h.Count(), h.Sum())
	}
	_, cum, _, _ := h.snapshot()
	// dst's own 0.5 stays in bucket <=1; both src samples fold into +Inf.
	if cum[0] != 1 || cum[1] != 1 || cum[2] != 3 {
		t.Fatalf("cum = %v, want [1 1 3]", cum)
	}
}

func TestDefaultStepBuckets(t *testing.T) {
	b := DefaultStepBuckets()
	if len(b) == 0 {
		t.Fatal("empty bucket set")
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("buckets not strictly increasing at %d: %g <= %g", i, b[i], b[i-1])
		}
	}
	if b[0] != 1e-9 || b[len(b)-1] != 50 {
		t.Fatalf("bucket span [%g, %g]", b[0], b[len(b)-1])
	}
}

// TestExpositionEscaping drives hostile label values and raw metric names
// through the full WriteTo path and checks the output stays one sample per
// line with exposition-format escapes, for every metric kind.
func TestExpositionEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter(Label("c_total", "rxn", "a\"b\\c\nd")).Inc()
	r.Gauge(Label("g", "k", "line1\nline2")).Set(2)
	r.Histogram(Label("h", "k", "q\"x"), []float64{1}).Observe(0.5)
	// A raw newline smuggled into a directly-registered name must not split
	// the sample line.
	r.Counter("bad\nname_total").Inc()
	r.Counter("worse{l=\"v\n2\"}").Inc()

	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if line == "" {
			t.Fatalf("empty line in exposition:\n%s", out)
		}
		if !strings.HasPrefix(line, "# ") && !strings.ContainsRune(line, ' ') {
			t.Fatalf("sample line without value separator (split by raw newline?): %q", line)
		}
	}
	for _, want := range []string{
		`c_total{rxn="a\"b\\c\nd"} 1`,
		`g{k="line1\nline2"} 2`,
		`h_count{k="q\"x"} 1`,
		"bad_name_total 1",
		`worse{l="v\n2"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestLabelOddPair: a trailing key without a value renders with an empty
// value instead of being silently dropped.
func TestLabelOddPair(t *testing.T) {
	if got, want := Label("m", "a", "1", "b"), `m{a="1",b=""}`; got != want {
		t.Errorf("Label odd kv = %q, want %q", got, want)
	}
}

// TestSanitizeName pins the repair rules for names registered outside Label.
func TestSanitizeName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"clean_total", "clean_total"},
		{`ok{a="b"}`, `ok{a="b"}`},
		{"a\nb", "a_b"},
		{"a\rb", "a_b"},
		{"m{l=\"x\ny\"}", `m{l="x\ny"}`},
		{"m{l=\"x\"}\ntail", `m{l="x"}_tail`},
	}
	for _, c := range cases {
		if got := sanitizeName(c.in); got != c.want {
			t.Errorf("sanitizeName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
