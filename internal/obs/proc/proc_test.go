package proc

import (
	"math"
	"runtime/metrics"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestSampleWritesRegistry: one on-demand sample populates every proc_*
// family with sane values.
func TestSampleWritesRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(reg, time.Hour) // ticker never fires; samples are manual
	s := c.Sample()

	if s.HeapBytes <= 0 || s.Goroutines < 1 || s.AllocBytes <= 0 {
		t.Fatalf("implausible sample: %+v", s)
	}
	snap := reg.Snapshot()
	if snap["proc_heap_bytes"] != s.HeapBytes {
		t.Errorf("proc_heap_bytes gauge %g != sample %g", snap["proc_heap_bytes"], s.HeapBytes)
	}
	if snap["proc_goroutines"] < 1 {
		t.Errorf("proc_goroutines = %g", snap["proc_goroutines"])
	}
	if snap["proc_gomaxprocs"] < 1 {
		t.Errorf("proc_gomaxprocs = %g", snap["proc_gomaxprocs"])
	}
	// First sample adopts process-lifetime totals: the process has certainly
	// allocated something by now.
	if snap["proc_alloc_bytes_total"] <= 0 {
		t.Errorf("proc_alloc_bytes_total = %g", snap["proc_alloc_bytes_total"])
	}
	if snap["proc_samples_total"] != 1 {
		t.Errorf("proc_samples_total = %g, want 1", snap["proc_samples_total"])
	}
}

// TestSampleCounterMonotonic: counters only move forward across samples and
// the alloc counter tracks real allocation volume.
func TestSampleCounterMonotonic(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(reg, time.Hour)
	c.Sample()
	before := reg.Snapshot()

	sink := make([][]byte, 256)
	for i := range sink {
		sink[i] = make([]byte, 4096)
	}
	_ = sink
	c.Sample()
	after := reg.Snapshot()

	for _, name := range []string{"proc_alloc_bytes_total", "proc_gc_cycles_total", "proc_cpu_seconds_total"} {
		if after[name] < before[name] {
			t.Errorf("%s went backwards: %g -> %g", name, before[name], after[name])
		}
	}
	// Size-class and flush granularity make the reading inexact; demand at
	// least half the ~1MiB burst rather than an exact byte count.
	if after["proc_alloc_bytes_total"]-before["proc_alloc_bytes_total"] < 256*4096/2 {
		t.Errorf("alloc counter advanced only %g bytes after allocating ~1MiB",
			after["proc_alloc_bytes_total"]-before["proc_alloc_bytes_total"])
	}
}

// TestStartStop: the ticker takes an immediate sample plus periodic ones,
// and Start/Stop are idempotent (including Start after Stop).
func TestStartStop(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(reg, 5*time.Millisecond)
	samples := func() float64 { return reg.Snapshot()["proc_samples_total"] }
	c.Start()
	c.Start() // no-op, must not double-tick or panic

	deadline := time.Now().Add(5 * time.Second)
	for samples() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("ticker produced %g samples in 5s", samples())
		}
		time.Sleep(time.Millisecond)
	}
	c.Stop()
	c.Stop() // idempotent
	n := samples()
	time.Sleep(30 * time.Millisecond)
	if got := samples(); got != n {
		t.Fatalf("sampling continued after Stop: %g -> %g", n, got)
	}
	c.Start() // after Stop: documented no-op
	time.Sleep(30 * time.Millisecond)
	if got := samples(); got != n {
		t.Fatalf("Start after Stop resumed sampling: %g -> %g", n, got)
	}
	// On-demand sampling still works after Stop.
	c.Sample()
	if got := samples(); got != n+1 {
		t.Fatalf("manual Sample after Stop: samples %g, want %g", got, n+1)
	}
}

// TestNilCollector: every method on a nil collector is a safe no-op.
func TestNilCollector(t *testing.T) {
	var c *Collector
	c.Start()
	c.Stop()
	if s := c.Sample(); s != (Sample{}) {
		t.Fatalf("nil Sample() = %+v", s)
	}
	if c.Interval() != 0 {
		t.Fatal("nil Interval() nonzero")
	}
}

// TestReadUsage: bracketing a known allocation burst yields a positive
// AllocBytes delta of at least the burst size, and Sub clamps negatives.
func TestReadUsage(t *testing.T) {
	u0 := ReadUsage()
	buf := make([][]byte, 128)
	for i := range buf {
		buf[i] = make([]byte, 8192)
	}
	_ = buf
	du := ReadUsage().Sub(u0)
	// The runtime's alloc accounting has size-class and flush granularity;
	// assert the bulk of the burst is visible, not the exact byte count.
	if du.AllocBytes < 128*8192/2 {
		t.Errorf("AllocBytes delta %g after allocating ~1MiB", du.AllocBytes)
	}
	if du.AllocObjects < 64 {
		t.Errorf("AllocObjects delta %g after 128 allocations", du.AllocObjects)
	}
	if du.CPUSeconds < 0 {
		t.Errorf("CPU delta negative: %g", du.CPUSeconds)
	}
	neg := Usage{}.Sub(Usage{CPUSeconds: 1, AllocBytes: 2, AllocObjects: 3})
	if neg != (Usage{}) {
		t.Errorf("Sub did not clamp negatives: %+v", neg)
	}
}

// TestProcessCPUSeconds: on unix the reading is positive after burning some
// cycles, and never decreases.
func TestProcessCPUSeconds(t *testing.T) {
	a := processCPUSeconds()
	x := 1.0
	for i := 0; i < 5_000_000; i++ {
		x = math.Sqrt(x + float64(i))
	}
	if x < 0 {
		t.Fatal("unreachable, defeats dead-code elimination")
	}
	b := processCPUSeconds()
	if b < a {
		t.Fatalf("process CPU went backwards: %g -> %g", a, b)
	}
}

// TestHistQuantile pins the bucketed-quantile rule on hand-built
// distributions, including the infinite-boundary fallbacks.
func TestHistQuantile(t *testing.T) {
	buckets := []float64{0, 1, 2, 4}
	counts := []uint64{2, 6, 2} // 10 events: 2 in (0,1], 6 in (1,2], 2 in (2,4]
	cases := []struct {
		q    float64
		want float64
	}{
		{0.10, 1}, // rank 1 lands in the first bucket -> upper bound 1
		{0.50, 2},
		{0.99, 4},
		{1.00, 4},
	}
	for _, c := range cases {
		if got := histQuantile(buckets, counts, c.q); got != c.want {
			t.Errorf("q=%g: got %g, want %g", c.q, got, c.want)
		}
	}
	if got := histQuantile(buckets, []uint64{0, 0, 0}, 0.5); got != 0 {
		t.Errorf("empty distribution quantile = %g, want 0", got)
	}
	// Runtime histograms end with an infinite bound: fall back to the finite
	// lower boundary of the final bucket.
	inf := []float64{0, 1, math.Inf(1)}
	if got := histQuantile(inf, []uint64{0, 3}, 1.0); got != 1 {
		t.Errorf("infinite-bound quantile = %g, want 1", got)
	}
	allInf := []float64{math.Inf(-1), math.Inf(1)}
	if got := histQuantile(allInf, []uint64{3}, 0.5); got != 0 {
		t.Errorf("all-infinite quantile = %g, want 0", got)
	}
}

// TestDiffHist: matching shapes subtract, mismatched shapes pass current
// counts through, and a shrunk bucket (reset) is left untouched rather than
// underflowing.
func TestDiffHist(t *testing.T) {
	cur := sampleHist([]float64{0, 1, 2}, []uint64{5, 7})
	prev := histSnapshot{buckets: cur.Buckets, counts: []uint64{2, 3}}
	if got := diffHist(prev, cur); got[0] != 3 || got[1] != 4 {
		t.Errorf("diff = %v, want [3 4]", got)
	}
	if got := diffHist(histSnapshot{}, cur); got[0] != 5 || got[1] != 7 {
		t.Errorf("first-sample diff = %v, want [5 7]", got)
	}
	shrunk := histSnapshot{buckets: cur.Buckets, counts: []uint64{9, 3}}
	if got := diffHist(shrunk, cur); got[0] != 5 || got[1] != 4 {
		t.Errorf("reset diff = %v, want [5 4]", got)
	}
}

// TestMetricNamesRegistered: the families documented on Collector all exist
// after one sample, in exposition form.
func TestMetricNamesRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	New(reg, time.Hour).Sample()
	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"proc_heap_bytes", "proc_goroutines", "proc_gomaxprocs",
		"proc_gc_cycles_total", `proc_gc_pause_seconds{q="p50"}`,
		`proc_gc_pause_seconds{q="max"}`, `proc_sched_latency_seconds{q="p50"}`,
		`proc_sched_latency_seconds{q="p99"}`, "proc_alloc_bytes_total",
		"proc_cpu_seconds_total", "proc_samples_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

// sampleHist builds a metrics.Float64Histogram literal for the diff tests.
func sampleHist(buckets []float64, counts []uint64) metrics.Float64Histogram {
	return metrics.Float64Histogram{Buckets: buckets, Counts: counts}
}
