//go:build unix

package proc

import (
	"syscall"
	"time"
)

// processCPUSeconds returns the process's cumulative CPU time (user plus
// system) from getrusage. Errors report 0 — attribution then degrades to
// allocation-only, which the deltas' non-negative clamp tolerates.
func processCPUSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return (time.Duration(ru.Utime.Nano()) + time.Duration(ru.Stime.Nano())).Seconds()
}
