//go:build !unix

package proc

// processCPUSeconds has no portable implementation off unix; CPU
// attribution degrades to zero there while allocation attribution (which
// comes from the Go runtime) keeps working.
func processCPUSeconds() float64 { return 0 }
