// Package proc samples the Go runtime's own health — heap size, GC pauses,
// goroutine count, scheduler latency, process CPU — into the obs metrics
// Registry, and provides the point-in-time Usage readings the batch engine
// and the HTTP server use to attribute CPU time and allocation volume to
// individual jobs and requests.
//
// The paper's fast ≫ slow rate separation makes every interesting clocked
// CRN stiff, so simulator cost is dominated by where the process actually
// spends cycles; this package is the in-process answer to "where did the
// time and memory go" that profiles answer only offline. Two consumers:
//
//   - Collector ticks runtime/metrics into gauges/counters; longitudinal
//     history lives in the tsdb store sampling the registry (statusz reads
//     its range queries for sparklines), so the collector itself is
//     stateless beyond the previous sample's cumulative readings;
//   - ReadUsage brackets a unit of work with cumulative process counters
//     (CPU seconds from getrusage, allocated bytes/objects from
//     runtime/metrics); the delta is that work's attributed cost. The
//     counters are process-global, so the attribution is approximate under
//     concurrency — see DESIGN.md for why the totals stay exact anyway.
package proc

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"

	"repro/internal/obs"
)

// runtime/metrics names the Collector samples. Kept as constants so the
// sample slice is built once and reused (metrics.Read allocates nothing
// into a prebuilt slice).
const (
	mHeapBytes  = "/memory/classes/heap/objects:bytes"
	mGoroutines = "/sched/goroutines:goroutines"
	mGCCycles   = "/gc/cycles/total:gc-cycles"
	mGCPauses   = "/gc/pauses:seconds"
	mSchedLat   = "/sched/latencies:seconds"
	mAllocBytes = "/gc/heap/allocs:bytes"
	mAllocObjs  = "/gc/heap/allocs:objects"
	mGomaxprocs = "/sched/gomaxprocs:threads"
)

// Sample is one point-in-time runtime reading. Cumulative quantities
// (GCCycles, AllocBytes, CPUSeconds) grow monotonically; the distribution
// summaries (GC pause, scheduler latency) are quantiles of the events that
// happened since the previous sample, so a quiet interval reports zeros.
type Sample struct {
	Time       time.Time
	HeapBytes  float64 // live heap object bytes
	Goroutines float64
	GCCycles   float64 // cumulative completed GC cycles
	AllocBytes float64 // cumulative allocated bytes
	CPUSeconds float64 // cumulative process CPU (user+system)

	GCPauseP50  float64 // stop-the-world pause quantiles over the interval
	GCPauseMax  float64
	SchedLatP50 float64 // goroutine scheduling latency quantiles
	SchedLatP99 float64
}

// Collector periodically samples the runtime into a Registry. Create with
// New, then either call Sample on demand or Start a background ticker
// (Stop is idempotent). All methods are safe for concurrent use; a nil
// *Collector is a no-op, so optional wiring needs no branches.
//
// Registry families written per sample:
//
//	proc_heap_bytes                  live heap (gauge)
//	proc_goroutines                  goroutine count (gauge)
//	proc_gomaxprocs                  scheduler width (gauge)
//	proc_gc_cycles_total             completed GC cycles (counter)
//	proc_gc_pause_seconds{q=}        interval pause quantiles (gauge)
//	proc_sched_latency_seconds{q=}   interval sched-latency quantiles (gauge)
//	proc_alloc_bytes_total           allocated bytes (counter)
//	proc_cpu_seconds_total           process CPU, user+system (counter)
//	proc_samples_total               samples taken (counter; liveness)
type Collector struct {
	interval time.Duration

	mu      sync.Mutex
	samples []metrics.Sample // reused read buffer
	prev    prevState
	stopCh  chan struct{}
	started bool
	stopped bool

	heap   *obs.Gauge
	gor    *obs.Gauge
	gmp    *obs.Gauge
	gcCyc  *obs.Counter
	pauseQ map[string]*obs.Gauge
	latQ   map[string]*obs.Gauge
	alloc  *obs.Counter
	cpu    *obs.Counter
	taken  *obs.Counter
}

// prevState holds the previous sample's cumulative readings, for deltas.
type prevState struct {
	valid      bool
	gcCycles   float64
	allocBytes float64
	cpuSeconds float64
	gcPauses   histSnapshot
	schedLat   histSnapshot
}

type histSnapshot struct {
	buckets []float64
	counts  []uint64
}

// DefaultInterval is the sampling cadence selected by New when interval is
// zero: frequent enough for useful sparklines, cheap enough to forget.
const DefaultInterval = 5 * time.Second

// New builds a collector writing into reg (which must be non-nil).
// interval <= 0 selects DefaultInterval. The collector takes no samples
// until Sample or Start is called.
func New(reg *obs.Registry, interval time.Duration) *Collector {
	if interval <= 0 {
		interval = DefaultInterval
	}
	names := []string{mHeapBytes, mGoroutines, mGCCycles, mGCPauses,
		mSchedLat, mAllocBytes, mAllocObjs, mGomaxprocs}
	samples := make([]metrics.Sample, len(names))
	for i, n := range names {
		samples[i].Name = n
	}
	return &Collector{
		interval: interval,
		samples:  samples,
		stopCh:   make(chan struct{}),
		heap:     reg.Gauge("proc_heap_bytes"),
		gor:      reg.Gauge("proc_goroutines"),
		gmp:      reg.Gauge("proc_gomaxprocs"),
		gcCyc:    reg.Counter("proc_gc_cycles_total"),
		pauseQ: map[string]*obs.Gauge{
			"p50": reg.Gauge(obs.Label("proc_gc_pause_seconds", "q", "p50")),
			"max": reg.Gauge(obs.Label("proc_gc_pause_seconds", "q", "max")),
		},
		latQ: map[string]*obs.Gauge{
			"p50": reg.Gauge(obs.Label("proc_sched_latency_seconds", "q", "p50")),
			"p99": reg.Gauge(obs.Label("proc_sched_latency_seconds", "q", "p99")),
		},
		alloc: reg.Counter("proc_alloc_bytes_total"),
		cpu:   reg.Counter("proc_cpu_seconds_total"),
		taken: reg.Counter("proc_samples_total"),
	}
}

// Interval returns the collector's sampling cadence.
func (c *Collector) Interval() time.Duration {
	if c == nil {
		return 0
	}
	return c.interval
}

// Sample takes one reading now: runtime/metrics plus process CPU, written
// into the registry. It returns the sample. Safe to call concurrently with
// a running ticker.
func (c *Collector) Sample() Sample {
	if c == nil {
		return Sample{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	metrics.Read(c.samples)

	s := Sample{Time: time.Now(), CPUSeconds: processCPUSeconds()}
	var pauses, lat metrics.Float64Histogram
	havePauses, haveLat := false, false
	for _, m := range c.samples {
		switch m.Name {
		case mHeapBytes:
			s.HeapBytes = float64(m.Value.Uint64())
		case mGoroutines:
			s.Goroutines = float64(m.Value.Uint64())
		case mGCCycles:
			s.GCCycles = float64(m.Value.Uint64())
		case mAllocBytes:
			s.AllocBytes = float64(m.Value.Uint64())
		case mGomaxprocs:
			c.gmp.Set(float64(m.Value.Uint64()))
		case mGCPauses:
			if m.Value.Kind() == metrics.KindFloat64Histogram {
				pauses, havePauses = *m.Value.Float64Histogram(), true
			}
		case mSchedLat:
			if m.Value.Kind() == metrics.KindFloat64Histogram {
				lat, haveLat = *m.Value.Float64Histogram(), true
			}
		}
	}

	if havePauses {
		d := diffHist(c.prev.gcPauses, pauses)
		s.GCPauseP50 = histQuantile(pauses.Buckets, d, 0.50)
		s.GCPauseMax = histQuantile(pauses.Buckets, d, 1.00)
		c.prev.gcPauses = snapshotHist(pauses)
	}
	if haveLat {
		d := diffHist(c.prev.schedLat, lat)
		s.SchedLatP50 = histQuantile(lat.Buckets, d, 0.50)
		s.SchedLatP99 = histQuantile(lat.Buckets, d, 0.99)
		c.prev.schedLat = snapshotHist(lat)
	}

	c.heap.Set(s.HeapBytes)
	c.gor.Set(s.Goroutines)
	c.pauseQ["p50"].Set(s.GCPauseP50)
	c.pauseQ["max"].Set(s.GCPauseMax)
	c.latQ["p50"].Set(s.SchedLatP50)
	c.latQ["p99"].Set(s.SchedLatP99)
	if c.prev.valid {
		// Counters advance by the interval delta so their _total semantics
		// hold; clamped at zero to survive counter resets (none expected).
		c.gcCyc.Add(math.Max(0, s.GCCycles-c.prev.gcCycles))
		c.alloc.Add(math.Max(0, s.AllocBytes-c.prev.allocBytes))
		c.cpu.Add(math.Max(0, s.CPUSeconds-c.prev.cpuSeconds))
	} else {
		// First sample: adopt the process-lifetime totals so the counters
		// agree with the runtime instead of starting at zero mid-flight.
		c.gcCyc.Add(s.GCCycles)
		c.alloc.Add(s.AllocBytes)
		c.cpu.Add(s.CPUSeconds)
	}
	c.prev.valid = true
	c.prev.gcCycles, c.prev.allocBytes, c.prev.cpuSeconds = s.GCCycles, s.AllocBytes, s.CPUSeconds
	c.taken.Inc() // sampling liveness: its tsdb rate is the actual cadence
	return s
}

// Start launches the background sampling ticker (taking one sample
// immediately). Calling Start more than once, or after Stop, is a no-op.
func (c *Collector) Start() {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.started || c.stopped {
		c.mu.Unlock()
		return
	}
	c.started = true
	c.mu.Unlock()
	c.Sample()
	go func() {
		t := time.NewTicker(c.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				c.Sample()
			case <-c.stopCh:
				return
			}
		}
	}()
}

// Stop ends the background ticker. Idempotent; Sample keeps working.
func (c *Collector) Stop() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return
	}
	c.stopped = true
	close(c.stopCh)
}

// snapshotHist copies a runtime histogram's counts (buckets are shared:
// runtime/metrics documents them as stable across reads).
func snapshotHist(h metrics.Float64Histogram) histSnapshot {
	return histSnapshot{buckets: h.Buckets, counts: append([]uint64(nil), h.Counts...)}
}

// diffHist returns current-minus-previous bucket counts; on any shape
// mismatch (first sample, runtime version change) the current counts stand
// alone.
func diffHist(prev histSnapshot, cur metrics.Float64Histogram) []uint64 {
	out := append([]uint64(nil), cur.Counts...)
	if len(prev.counts) != len(out) {
		return out
	}
	for i := range out {
		if prev.counts[i] <= out[i] {
			out[i] -= prev.counts[i]
		}
	}
	return out
}

// histQuantile returns the q-quantile (0 < q <= 1) of a bucketed
// distribution: the upper bound of the bucket where the cumulative count
// crosses q·total. Infinite bounds fall back to the nearest finite
// boundary; an empty distribution reports 0.
func histQuantile(buckets []float64, counts []uint64, q float64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			// counts[i] spans buckets[i] .. buckets[i+1].
			hi := buckets[i+1]
			if !math.IsInf(hi, 0) {
				return hi
			}
			lo := buckets[i]
			if !math.IsInf(lo, 0) {
				return lo
			}
			return 0
		}
	}
	return buckets[len(buckets)-1]
}
