package proc

import "runtime/metrics"

// Usage is a point-in-time reading of the process-global cumulative
// resource counters used for per-job attribution: CPU seconds (user plus
// system, from the OS) and heap allocation volume (bytes and object count,
// from the Go runtime). Bracket a unit of work with two ReadUsage calls and
// Sub the readings to get that work's attributed cost.
//
// Because every field is process-global, a delta taken while other
// goroutines run attributes their activity to the bracketed work too — the
// numbers are approximate under concurrency, exact when the bracketed work
// is the only load. Sums over all concurrent brackets still bound the true
// process totals; DESIGN.md discusses the model.
type Usage struct {
	CPUSeconds   float64 // process CPU, user+system
	AllocBytes   float64 // cumulative heap bytes allocated
	AllocObjects float64 // cumulative heap objects allocated
}

// ReadUsage samples the process counters now. It costs one getrusage call
// plus one two-key runtime/metrics read (~a microsecond), cheap enough to
// bracket every batch job and HTTP request.
func ReadUsage() Usage {
	samples := [2]metrics.Sample{{Name: mAllocBytes}, {Name: mAllocObjs}}
	metrics.Read(samples[:])
	u := Usage{CPUSeconds: processCPUSeconds()}
	if samples[0].Value.Kind() == metrics.KindUint64 {
		u.AllocBytes = float64(samples[0].Value.Uint64())
	}
	if samples[1].Value.Kind() == metrics.KindUint64 {
		u.AllocObjects = float64(samples[1].Value.Uint64())
	}
	return u
}

// Sub returns the non-negative component-wise difference u - prev: the
// resources consumed between the two readings.
func (u Usage) Sub(prev Usage) Usage {
	return Usage{
		CPUSeconds:   nonNeg(u.CPUSeconds - prev.CPUSeconds),
		AllocBytes:   nonNeg(u.AllocBytes - prev.AllocBytes),
		AllocObjects: nonNeg(u.AllocObjects - prev.AllocObjects),
	}
}

func nonNeg(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}
