package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// StreamEvent is one event pushed to live subscribers (SSE clients): job
// progress, clock edges, phase changes, watcher alerts. Seq is a
// broker-global sequence number suitable for SSE `id:` fields, so clients
// can detect gaps introduced by the slow-consumer policy.
type StreamEvent struct {
	Seq  uint64         `json:"seq"`
	Time time.Time      `json:"time"`
	Kind string         `json:"kind"`
	Job  string         `json:"job,omitempty"`
	Data map[string]any `json:"data,omitempty"`
}

// Broker fans StreamEvents out to any number of subscribers with a strict
// slow-consumer policy: Publish never blocks, and a subscriber whose buffer
// is full loses the event (counted per subscriber and broker-wide). That
// trade — drop rather than stall — is what lets one slow SSE client coexist
// with the simulation hot path.
//
// All methods are safe for concurrent use. A nil *Broker is a no-op
// publisher, so event sources never branch on "is streaming on".
type Broker struct {
	mu      sync.Mutex
	subs    map[*Sub]struct{}
	seq     uint64
	clients *Gauge   // optional metrics wiring
	events  *Counter // events published
	drops   *Counter // events dropped across all subscribers
}

// NewBroker returns an empty broker.
func NewBroker() *Broker {
	return &Broker{subs: make(map[*Sub]struct{})}
}

// Metrics wires the broker's accounting into reg:
//
//	sse_subscribers              currently connected subscribers
//	sse_events_published_total   events offered to subscribers
//	sse_events_dropped_total     events lost to full subscriber buffers
func (b *Broker) Metrics(reg *Registry) {
	if b == nil || reg == nil {
		return
	}
	b.mu.Lock()
	b.clients = reg.Gauge("sse_subscribers")
	b.events = reg.Counter("sse_events_published_total")
	b.drops = reg.Counter("sse_events_dropped_total")
	b.mu.Unlock()
}

// Publish stamps ev with the next sequence number and offers it to every
// subscriber whose filter accepts it. It never blocks: subscribers with a
// full buffer drop the event.
func (b *Broker) Publish(ev StreamEvent) {
	if b == nil {
		return
	}
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	b.mu.Lock()
	b.seq++
	ev.Seq = b.seq
	if b.events != nil {
		b.events.Inc()
	}
	for s := range b.subs {
		if s.filter != nil && !s.filter(ev) {
			continue
		}
		select {
		case s.ch <- ev:
		default:
			s.dropped.Add(1)
			if b.drops != nil {
				b.drops.Inc()
			}
		}
	}
	b.mu.Unlock()
}

// Subscribe registers a new subscriber with the given buffer capacity
// (0 selects 256). filter, when non-nil, selects which events are delivered;
// it runs under the broker lock and must be fast and non-blocking.
func (b *Broker) Subscribe(buf int, filter func(StreamEvent) bool) *Sub {
	if buf <= 0 {
		buf = 256
	}
	s := &Sub{b: b, ch: make(chan StreamEvent, buf), filter: filter}
	s.C = s.ch
	b.mu.Lock()
	b.subs[s] = struct{}{}
	if b.clients != nil {
		b.clients.Add(1)
	}
	b.mu.Unlock()
	return s
}

// Sub is one subscription. Receive from C; events arrive in publish order,
// with gaps (detectable via Seq) where the slow-consumer policy dropped.
type Sub struct {
	C <-chan StreamEvent

	b       *Broker
	ch      chan StreamEvent
	filter  func(StreamEvent) bool
	dropped atomic.Uint64
	closed  atomic.Bool
}

// Dropped returns how many events this subscriber has lost so far.
func (s *Sub) Dropped() uint64 { return s.dropped.Load() }

// Close unregisters the subscriber. C is not closed (events already buffered
// remain readable); Close is idempotent.
func (s *Sub) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	s.b.mu.Lock()
	delete(s.b.subs, s)
	if s.b.clients != nil {
		s.b.clients.Add(-1)
	}
	s.b.mu.Unlock()
}

// BrokerObserver adapts a Broker into an Observer: semantic simulation
// events (clock edges, phase changes, alerts) are published as StreamEvents
// tagged with Job, which is how a served sweep's per-point telemetry reaches
// SSE clients. High-frequency step/firing events are deliberately not
// forwarded. It is stateless and, unlike most observers, safe to share
// across concurrent simulations.
type BrokerObserver struct {
	Base
	B   *Broker
	Job string
}

// OnClockEdge publishes a clock_edge stream event.
func (o *BrokerObserver) OnClockEdge(e ClockEdge) {
	o.B.Publish(StreamEvent{Kind: "clock_edge", Job: o.Job, Data: map[string]any{
		"t": e.T, "species": e.Species, "rising": e.Rising, "level": e.Level,
	}})
}

// OnPhaseChange publishes a phase_change stream event.
func (o *BrokerObserver) OnPhaseChange(e PhaseChange) {
	o.B.Publish(StreamEvent{Kind: "phase_change", Job: o.Job, Data: map[string]any{
		"t": e.T, "from": e.From, "to": e.To,
	}})
}

// OnAlert publishes an alert stream event.
func (o *BrokerObserver) OnAlert(e Alert) {
	o.B.Publish(StreamEvent{Kind: "alert", Job: o.Job, Data: map[string]any{
		"t": e.T, "rule": e.Rule, "subject": e.Subject,
		"value": e.Value, "limit": e.Limit, "detail": e.Detail,
	}})
}
