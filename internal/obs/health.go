package obs

import (
	"fmt"
	"math"
	"strings"
)

// ClockHealth is a Watcher that layers semantic *health analysis* on top of
// the raw edge/phase/duty machinery: instead of merely reporting what the
// tri-phase clockwork does, it judges whether the paper's dynamic invariants
// hold and raises structured Alerts (through Observer.OnAlert) when they do
// not. Four rules are checked:
//
//   - phase_overlap: two phase groups simultaneously hold at least Threshold
//     mass. The tri-phase discipline guarantees mutual exclusion of phases —
//     overlap means a transfer fired before the previous colour drained.
//   - indicator_leak: an absence indicator is at or above LeakEps while its
//     own colour class holds at least Threshold mass. Indicators may only
//     accumulate while their colour class is empty; leakage means the fast
//     consumption reactions are mis-wired or overwhelmed.
//   - period_jitter: the relative standard deviation of the clock period
//     (intervals between onsets of the first phase group) exceeds MaxJitter.
//   - duty_drift: an indicator's duty cycle — fraction of simulated time at
//     or above LeakEps — exceeds MaxDuty at Finish, flagging a stalled phase.
//
// Episode semantics: the overlap and leak rules alert once when the
// violating condition begins and re-arm when it clears, so a long overlap
// window produces one alert, not one per sample. Jitter alerts at most once
// per run, as soon as enough cycles exist to judge; duty alerts at Finish.
//
// Like every Watcher, a ClockHealth keeps per-run state and must not be
// shared by concurrent simulations.
type ClockHealth struct {
	// Phases lists the colour classes in cycle order (e.g. the clock species
	// R, G, B, or the full member sets of a phases.Scheme). At least 2.
	Phases []PhaseGroup
	// Indicators optionally lists the absence-indicator species aligned with
	// Phases (Indicators[i] guards Phases[i]'s colour). Empty disables the
	// leak and duty rules.
	Indicators []string
	// Threshold is the mass at which a phase group counts as occupied —
	// typically half the circulating heartbeat amount. Required (> 0).
	Threshold float64
	// LeakEps is the indicator level counting as "present" for the leak and
	// duty rules; 0 selects Threshold/10.
	LeakEps float64
	// MaxJitter bounds the relative standard deviation of the clock period;
	// 0 selects 0.2, negative disables the rule.
	MaxJitter float64
	// MaxDuty bounds each indicator's duty cycle; 0 selects 0.5, negative
	// disables the rule.
	MaxDuty float64
	// MinCycles is how many completed periods must exist before jitter is
	// judged; 0 selects 3.
	MinCycles int

	phaseIdx [][]int
	indIdx   []int
	leakEps  float64
	maxJit   float64
	maxDuty  float64
	minCyc   int

	overlapOn bool
	leakOn    []bool
	jitterHit bool

	armed  bool // Schmitt state for period detection on Phases[0]
	onsets []float64

	dutyAbove []bool
	dutyTime  []float64
	lastT     float64
	t0        float64
	init      bool
}

// Bind resolves every phase group and indicator against the simulation's
// species table and validates the configuration.
func (w *ClockHealth) Bind(species []string) error {
	if len(w.Phases) < 2 {
		return fmt.Errorf("obs: clock health needs at least 2 phase groups, got %d", len(w.Phases))
	}
	if w.Threshold <= 0 {
		return fmt.Errorf("obs: clock health: Threshold must be positive, got %g", w.Threshold)
	}
	w.phaseIdx = make([][]int, len(w.Phases))
	for i, g := range w.Phases {
		idx, err := resolve(species, g.Species)
		if err != nil {
			return fmt.Errorf("obs: clock health group %q: %w", g.Name, err)
		}
		w.phaseIdx[i] = idx
	}
	if len(w.Indicators) > 0 && len(w.Indicators) != len(w.Phases) {
		return fmt.Errorf("obs: clock health: %d indicators for %d phase groups (must match)",
			len(w.Indicators), len(w.Phases))
	}
	idx, err := resolve(species, w.Indicators)
	if err != nil {
		return fmt.Errorf("obs: clock health: %w", err)
	}
	w.indIdx = idx

	w.leakEps = w.LeakEps
	if w.leakEps <= 0 {
		w.leakEps = w.Threshold / 10
	}
	w.maxJit = w.MaxJitter
	if w.maxJit == 0 {
		w.maxJit = 0.2
	}
	w.maxDuty = w.MaxDuty
	if w.maxDuty == 0 {
		w.maxDuty = 0.5
	}
	w.minCyc = w.MinCycles
	if w.minCyc <= 0 {
		w.minCyc = 3
	}

	w.overlapOn, w.jitterHit, w.armed, w.init = false, false, false, false
	w.leakOn = make([]bool, len(w.Indicators))
	w.onsets = w.onsets[:0]
	w.dutyAbove = make([]bool, len(w.Indicators))
	w.dutyTime = make([]float64, len(w.Indicators))
	return nil
}

func (w *ClockHealth) mass(i int, y []float64) float64 {
	m := 0.0
	for _, j := range w.phaseIdx[i] {
		m += y[j]
	}
	return m
}

// Observe evaluates the overlap, leak and jitter rules on one state sample
// and accumulates duty time. Alerts go to sink.OnAlert.
func (w *ClockHealth) Observe(t float64, y []float64, sink Observer) {
	masses := make([]float64, len(w.phaseIdx))
	for i := range w.phaseIdx {
		masses[i] = w.mass(i, y)
	}

	// phase_overlap: ≥ 2 groups occupied at once, alert once per episode.
	occupied := 0
	var names []string
	for i, m := range masses {
		if m >= w.Threshold {
			occupied++
			names = append(names, w.Phases[i].Name)
		}
	}
	if occupied >= 2 {
		if !w.overlapOn {
			w.overlapOn = true
			sink.OnAlert(Alert{
				T: t, Rule: "phase_overlap", Subject: strings.Join(names, "+"),
				Value: float64(occupied), Limit: 1,
				Detail: fmt.Sprintf("%d phase groups at or above %g simultaneously", occupied, w.Threshold),
			})
		}
	} else {
		w.overlapOn = false
	}

	// indicator_leak: indicator present while its colour class is occupied.
	for i, j := range w.indIdx {
		leak := y[j] >= w.leakEps && masses[i] >= w.Threshold
		if leak && !w.leakOn[i] {
			sink.OnAlert(Alert{
				T: t, Rule: "indicator_leak", Subject: w.Indicators[i],
				Value: y[j], Limit: w.leakEps,
				Detail: fmt.Sprintf("absence indicator %s at %g while phase %q holds %g",
					w.Indicators[i], y[j], w.Phases[i].Name, masses[i]),
			})
		}
		w.leakOn[i] = leak
	}

	// Period detection: Schmitt-triggered onsets of Phases[0] (rise through
	// Threshold, re-arm below Threshold/2).
	if !w.init {
		w.armed = masses[0] < w.Threshold/2
	} else {
		switch {
		case w.armed && masses[0] >= w.Threshold:
			w.armed = false
			w.onsets = append(w.onsets, t)
			w.checkJitter(sink)
		case !w.armed && masses[0] < w.Threshold/2:
			w.armed = true
		}
	}

	// Duty accumulation (left rectangle rule, like DutyWatcher).
	if !w.init {
		w.t0, w.lastT = t, t
		for i, j := range w.indIdx {
			w.dutyAbove[i] = y[j] >= w.leakEps
		}
		w.init = true
		return
	}
	if dt := t - w.lastT; dt > 0 {
		for i := range w.indIdx {
			if w.dutyAbove[i] {
				w.dutyTime[i] += dt
			}
		}
		w.lastT = t
	}
	for i, j := range w.indIdx {
		w.dutyAbove[i] = y[j] >= w.leakEps
	}
}

// checkJitter judges period regularity once enough cycles exist; it alerts
// at most once per run.
func (w *ClockHealth) checkJitter(sink Observer) {
	if w.jitterHit || w.maxJit < 0 || len(w.onsets) < w.minCyc+1 {
		return
	}
	n := len(w.onsets) - 1
	mean := 0.0
	for i := 1; i < len(w.onsets); i++ {
		mean += w.onsets[i] - w.onsets[i-1]
	}
	mean /= float64(n)
	if mean <= 0 {
		return
	}
	varsum := 0.0
	for i := 1; i < len(w.onsets); i++ {
		d := (w.onsets[i] - w.onsets[i-1]) - mean
		varsum += d * d
	}
	rel := math.Sqrt(varsum/float64(n)) / mean
	if rel > w.maxJit {
		w.jitterHit = true
		sink.OnAlert(Alert{
			T: w.onsets[len(w.onsets)-1], Rule: "period_jitter",
			Subject: w.Phases[0].Name, Value: rel, Limit: w.maxJit,
			Detail: fmt.Sprintf("period relative std dev %.3g over %d cycles (mean period %.4g)",
				rel, n, mean),
		})
	}
}

// Finish closes the duty intervals and judges the duty_drift rule. A run
// that never produced a sample (or no simulated time) raises nothing.
func (w *ClockHealth) Finish(t float64, sink Observer) {
	if !w.init || w.maxDuty < 0 {
		return
	}
	if dt := t - w.lastT; dt > 0 {
		for i := range w.indIdx {
			if w.dutyAbove[i] {
				w.dutyTime[i] += dt
			}
		}
		w.lastT = t
	}
	span := w.lastT - w.t0
	if span <= 0 {
		return
	}
	for i, name := range w.Indicators {
		duty := w.dutyTime[i] / span
		if duty > w.maxDuty {
			sink.OnAlert(Alert{
				T: t, Rule: "duty_drift", Subject: name,
				Value: duty, Limit: w.maxDuty,
				Detail: fmt.Sprintf("indicator %s at or above %g for %.1f%% of the run",
					name, w.leakEps, 100*duty),
			})
		}
	}
}
