// Package span is a lightweight, zero-dependency (stdlib-only) span tracer
// for the simulation service: W3C-compatible trace/span identifiers, a
// context-propagated Span type with attributes and bounded events, a bounded
// in-memory Store of finished spans, and OTLP-compatible JSON export.
//
// It exists because the repository's correctness story is per-request: a
// served simulation is only debuggable when the HTTP request, the queue wait,
// the per-job batch fan-out and the individual sim runs show up as one
// parented trace. The design goals mirror the rest of internal/obs:
//
//   - nil-safety: a nil *Tracer produces nil *Spans, and every *Span method
//     is a no-op on nil, so call sites never branch on "is tracing on";
//   - determinism where it matters: batch jobs derive their span IDs with
//     DeriveSpanID, the SplitMix64 finalizer also used for per-job RNG seeds,
//     so a trace's span IDs are reproducible from (parent span, job index)
//     independent of worker count and scheduling;
//   - bounded memory: the Store is a ring of the most recent finished spans
//     and each span caps its event list, so tracing cannot grow without
//     bound under sustained traffic.
package span

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"
)

// TraceID identifies one end-to-end trace (16 bytes, hex-encoded on the
// wire, as in W3C trace-context and OTLP).
type TraceID [16]byte

// SpanID identifies one span within a trace (8 bytes).
type SpanID [8]byte

// String returns the 32-char lower-hex encoding.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String returns the 16-char lower-hex encoding.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports whether the ID is all-zero (invalid per W3C trace-context).
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is all-zero.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// MarshalJSON encodes the ID as its hex string, so JSON views (the tracez
// summary) print the same form ParseTraceID and the traceparent header use.
func (t TraceID) MarshalJSON() ([]byte, error) { return []byte(`"` + t.String() + `"`), nil }

// UnmarshalJSON decodes a 32-char hex string.
func (t *TraceID) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	id, err := ParseTraceID(s)
	if err != nil {
		return err
	}
	*t = id
	return nil
}

// MarshalJSON encodes the ID as its hex string.
func (s SpanID) MarshalJSON() ([]byte, error) { return []byte(`"` + s.String() + `"`), nil }

// UnmarshalJSON decodes a 16-char hex string.
func (s *SpanID) UnmarshalJSON(b []byte) error {
	var str string
	if err := json.Unmarshal(b, &str); err != nil {
		return err
	}
	var id SpanID
	if len(str) != 2*len(id) {
		return fmt.Errorf("span: span id must be %d hex chars, got %d", 2*len(id), len(str))
	}
	if _, err := hex.Decode(id[:], []byte(str)); err != nil {
		return fmt.Errorf("span: bad span id: %w", err)
	}
	*s = id
	return nil
}

// ParseTraceID parses the 32-char lower-hex encoding of a trace ID, rejecting
// the all-zero (invalid) ID.
func ParseTraceID(s string) (TraceID, error) {
	var t TraceID
	if len(s) != 2*len(t) {
		return t, fmt.Errorf("span: trace id must be %d hex chars, got %d", 2*len(t), len(s))
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return TraceID{}, fmt.Errorf("span: bad trace id: %w", err)
	}
	if t.IsZero() {
		return t, fmt.Errorf("span: all-zero trace id is invalid")
	}
	return t, nil
}

// NewTraceID returns a random, non-zero trace ID.
func NewTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		if _, err := rand.Read(t[:]); err != nil {
			// crypto/rand failure is unrecoverable; fall back to a counter
			// so tracing degrades instead of panicking.
			binary.BigEndian.PutUint64(t[:8], fallbackID())
			binary.BigEndian.PutUint64(t[8:], fallbackID())
		}
	}
	return t
}

// NewSpanID returns a random, non-zero span ID.
func NewSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		if _, err := rand.Read(s[:]); err != nil {
			binary.BigEndian.PutUint64(s[:], fallbackID())
		}
	}
	return s
}

var (
	fallbackMu  sync.Mutex
	fallbackSeq uint64
)

func fallbackID() uint64 {
	fallbackMu.Lock()
	defer fallbackMu.Unlock()
	fallbackSeq++
	return splitmix64(0x9E3779B97F4A7C15 + fallbackSeq)
}

func splitmix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// DeriveSpanID maps (parent span, child index) to a span ID with the
// SplitMix64 finalizer — the same construction batch.DeriveSeed uses for
// per-job RNG seeds. It is a pure function, so the span IDs of a batch
// fan-out are reproducible from the parent span alone, independent of worker
// count, scheduling and wall clock, and index-adjacent children get
// well-spread IDs even though their inputs differ by one bit.
func DeriveSpanID(parent SpanID, index int) SpanID {
	z := binary.BigEndian.Uint64(parent[:]) + uint64(index+1)*0x9E3779B97F4A7C15
	z = splitmix64(z)
	if z == 0 {
		z = 1 // the all-zero span ID is invalid
	}
	var s SpanID
	binary.BigEndian.PutUint64(s[:], z)
	return s
}

// Attr is one key/value attribute. Values are restricted by the OTLP export
// to string, bool, integers and floats; everything else is stringified.
type Attr struct {
	Key   string
	Value any
}

// Event is a timestamped annotation inside a span (a clock edge, a phase
// change, a watcher alert).
type Event struct {
	Time  time.Time
	Name  string
	Attrs []Attr
}

// Data is the immutable record of a finished span, as held by the Store.
type Data struct {
	TraceID  TraceID
	SpanID   SpanID
	ParentID SpanID // zero for root spans
	Name     string
	Start    time.Time
	End      time.Time
	Attrs    []Attr
	Events   []Event
	// Status is empty for OK spans and carries the error text otherwise.
	Status string
	// DroppedEvents counts events discarded over the per-span cap.
	DroppedEvents int
}

// Duration returns the span's wall-clock duration.
func (d *Data) Duration() time.Duration { return d.End.Sub(d.Start) }

// maxEventsPerSpan caps the per-span event list; a long oscillator run emits
// thousands of clock edges and the trace only needs the shape, not the bulk
// (the JSONL sink is the lossless channel).
const maxEventsPerSpan = 256

// Span is one in-progress operation. All methods are safe for concurrent
// use and are no-ops on a nil receiver, so optional tracing never needs a
// branch at the call site. End must be called exactly once to publish the
// span to the tracer's Store; Child spans may outlive their parent.
type Span struct {
	tracer *Tracer

	mu   sync.Mutex
	data Data
	done bool
}

// Tracer mints spans and owns the Store their finished records land in.
// A nil *Tracer is a valid no-op tracer.
type Tracer struct {
	store *Store
}

// NewTracer returns a tracer keeping the most recent capacity finished spans
// (0 selects 2048).
func NewTracer(capacity int) *Tracer {
	return &Tracer{store: NewStore(capacity)}
}

// Store returns the tracer's span store (nil on a nil tracer).
func (t *Tracer) Store() *Store {
	if t == nil {
		return nil
	}
	return t.store
}

// Root starts a new trace with a fresh trace ID and returns its root span.
func (t *Tracer) Root(name string) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(name, NewTraceID(), SpanID{}, NewSpanID())
}

// Join starts a span that continues a trace begun elsewhere (typically
// extracted from an incoming traceparent header): the new span carries the
// given trace ID and is parented under the remote span.
func (t *Tracer) Join(trace TraceID, parent SpanID, name string) *Span {
	if t == nil {
		return nil
	}
	if trace.IsZero() {
		return t.Root(name)
	}
	return t.newSpan(name, trace, parent, NewSpanID())
}

func (t *Tracer) newSpan(name string, trace TraceID, parent, id SpanID) *Span {
	return &Span{
		tracer: t,
		data: Data{
			TraceID:  trace,
			SpanID:   id,
			ParentID: parent,
			Name:     name,
			Start:    time.Now(),
		},
	}
}

// Child starts a span parented under s with a random span ID.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	trace, parent := s.data.TraceID, s.data.SpanID
	s.mu.Unlock()
	return s.tracer.newSpan(name, trace, parent, NewSpanID())
}

// ChildAt starts a span parented under s whose span ID is derived
// deterministically from (s, index) via DeriveSpanID — the batch engine uses
// it so job spans are reproducible alongside the per-job RNG seeds.
func (s *Span) ChildAt(index int, name string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	trace, parent := s.data.TraceID, s.data.SpanID
	s.mu.Unlock()
	return s.tracer.newSpan(name, trace, parent, DeriveSpanID(parent, index))
}

// TraceID returns the span's trace ID (zero on nil).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.data.TraceID
}

// SpanID returns the span's ID (zero on nil).
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.data.SpanID
}

// SetAttr sets one attribute (last write per key wins at export time; keys
// are not deduplicated for speed).
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.done {
		s.data.Attrs = append(s.data.Attrs, Attr{Key: key, Value: value})
	}
	s.mu.Unlock()
}

// AddEvent appends a timestamped event, dropping (and counting) events over
// the per-span cap.
func (s *Span) AddEvent(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.done {
		if len(s.data.Events) >= maxEventsPerSpan {
			s.data.DroppedEvents++
		} else {
			s.data.Events = append(s.data.Events, Event{Time: time.Now(), Name: name, Attrs: attrs})
		}
	}
	s.mu.Unlock()
}

// SetError marks the span's status from err; a nil err leaves the status
// untouched (spans are OK by default).
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	if !s.done {
		s.data.Status = err.Error()
	}
	s.mu.Unlock()
}

// End finishes the span and publishes it to the tracer's Store. Calls after
// the first are no-ops, so defensive double-Ends are harmless.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	s.data.End = time.Now()
	d := s.data // snapshot: Data's slices are never mutated after done
	s.mu.Unlock()
	if s.tracer != nil && s.tracer.store != nil {
		s.tracer.store.add(&d)
	}
}

// Traceparent renders the span's context as a W3C traceparent header value
// ("" on nil), always with the sampled flag set — this tracer has no
// sampling, every span records.
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	return FormatTraceparent(s.data.TraceID, s.data.SpanID)
}

// FormatTraceparent renders a version-00 traceparent header value.
func FormatTraceparent(trace TraceID, span SpanID) string {
	return fmt.Sprintf("00-%s-%s-01", trace, span)
}

// ParseTraceparent parses a W3C traceparent header value (version 00;
// higher versions are accepted by reading their leading 00-compatible
// fields, per the spec's forward-compatibility rule). It rejects all-zero
// trace and span IDs.
func ParseTraceparent(tp string) (TraceID, SpanID, error) {
	var trace TraceID
	var span SpanID
	parts := strings.Split(strings.TrimSpace(tp), "-")
	if len(parts) < 4 {
		return trace, span, fmt.Errorf("span: traceparent %q: want 4 dash-separated fields, got %d", tp, len(parts))
	}
	if len(parts[0]) != 2 || parts[0] == "ff" {
		return trace, span, fmt.Errorf("span: traceparent %q: bad version %q", tp, parts[0])
	}
	if len(parts[0]) == 2 && parts[0] == "00" && len(parts) != 4 {
		return trace, span, fmt.Errorf("span: traceparent %q: version 00 wants exactly 4 fields", tp)
	}
	if _, err := hex.Decode(trace[:], []byte(parts[1])); err != nil || len(parts[1]) != 32 {
		return trace, span, fmt.Errorf("span: traceparent %q: bad trace id %q", tp, parts[1])
	}
	if _, err := hex.Decode(span[:], []byte(parts[2])); err != nil || len(parts[2]) != 16 {
		return TraceID{}, span, fmt.Errorf("span: traceparent %q: bad span id %q", tp, parts[2])
	}
	if trace.IsZero() || span.IsZero() {
		return TraceID{}, SpanID{}, fmt.Errorf("span: traceparent %q: all-zero id", tp)
	}
	return trace, span, nil
}
