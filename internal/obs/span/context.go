package span

import "context"

type ctxKey struct{}

// NewContext returns ctx carrying s. Storing a nil span is a no-op returning
// ctx unchanged, preserving any span already present.
func NewContext(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil. Combined with the
// nil-safety of every Span method, callers can use the result unconditionally.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
