package span

import (
	"sort"
	"sync"
	"time"
)

// Store is a bounded in-memory ring of finished spans: the newest capacity
// span records are retained, older ones are overwritten. It exists so
// /debug/tracez and offline export can inspect recent work without tracing
// ever growing without bound under sustained traffic.
//
// All methods are safe for concurrent use and no-ops (returning zero values)
// on a nil receiver.
type Store struct {
	mu    sync.Mutex
	ring  []*Data
	next  int
	full  bool
	total uint64
}

// NewStore returns a store retaining the most recent capacity spans
// (0 selects 2048, negative values select 1).
func NewStore(capacity int) *Store {
	if capacity == 0 {
		capacity = 2048
	}
	if capacity < 0 {
		capacity = 1
	}
	return &Store{ring: make([]*Data, capacity)}
}

func (st *Store) add(d *Data) {
	if st == nil {
		return
	}
	st.mu.Lock()
	st.ring[st.next] = d
	st.next++
	if st.next == len(st.ring) {
		st.next = 0
		st.full = true
	}
	st.total++
	st.mu.Unlock()
}

// Ingest records an externally finished span — one produced in another
// process, such as a cluster worker's partition executor, and shipped here
// over the wire — so merged traces show remote work alongside local spans.
// Nil spans are ignored; like add, Ingest is a no-op on a nil store.
func (st *Store) Ingest(d *Data) {
	if d == nil {
		return
	}
	st.add(d)
}

// Len returns the number of spans currently retained.
func (st *Store) Len() int {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.full {
		return len(st.ring)
	}
	return st.next
}

// Total returns the number of spans ever finished, including evicted ones.
func (st *Store) Total() uint64 {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.total
}

// snapshot returns the retained spans oldest-first.
func (st *Store) snapshot() []*Data {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*Data, 0, len(st.ring))
	if st.full {
		out = append(out, st.ring[st.next:]...)
	}
	out = append(out, st.ring[:st.next]...)
	return out
}

// Recent returns up to n finished spans, newest-first (all of them for
// n <= 0).
func (st *Store) Recent(n int) []*Data {
	spans := st.snapshot()
	for i, j := 0, len(spans)-1; i < j; i, j = i+1, j-1 {
		spans[i], spans[j] = spans[j], spans[i]
	}
	if n > 0 && len(spans) > n {
		spans = spans[:n]
	}
	return spans
}

// Trace returns every retained span of the given trace, in start order.
func (st *Store) Trace(id TraceID) []*Data {
	var out []*Data
	for _, d := range st.snapshot() {
		if d.TraceID == id {
			out = append(out, d)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// TraceSummary aggregates one trace's retained spans for the tracez view.
type TraceSummary struct {
	TraceID  TraceID
	Root     string // name of the root span, or of the earliest span when the root was evicted
	Start    time.Time
	Duration time.Duration // of the root span when present, else max over spans
	Spans    int
	Errors   int // spans with non-empty status
}

// Summaries groups the retained spans by trace and returns one summary per
// trace, newest-first. slow orders them by duration (longest first) instead.
func (st *Store) Summaries(n int, slow bool) []TraceSummary {
	byTrace := make(map[TraceID]*TraceSummary)
	hasRoot := make(map[TraceID]bool)
	var order []TraceID
	for _, d := range st.snapshot() {
		ts, ok := byTrace[d.TraceID]
		if !ok {
			ts = &TraceSummary{TraceID: d.TraceID, Root: d.Name, Start: d.Start}
			byTrace[d.TraceID] = ts
			order = append(order, d.TraceID)
		}
		ts.Spans++
		if d.Status != "" {
			ts.Errors++
		}
		if d.Start.Before(ts.Start) {
			ts.Start = d.Start
		}
		switch {
		case d.ParentID.IsZero():
			// The root span names and times the trace — even when async
			// children (job spans) outlive it.
			ts.Root = d.Name
			ts.Duration = d.Duration()
			hasRoot[d.TraceID] = true
		case !hasRoot[d.TraceID] && ts.Duration < d.Duration():
			// No root retained (evicted or still open): longest span stands in.
			ts.Duration = d.Duration()
		}
	}
	out := make([]TraceSummary, 0, len(order))
	for i := len(order) - 1; i >= 0; i-- { // newest-first
		out = append(out, *byTrace[order[i]])
	}
	if slow {
		sort.SliceStable(out, func(i, j int) bool { return out[i].Duration > out[j].Duration })
	}
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
