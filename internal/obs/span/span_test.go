package span

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestNilSafety: a nil tracer must produce nil spans and every span method
// must be a no-op on nil — the contract that keeps tracing branchless at
// call sites.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Store() != nil {
		t.Error("nil tracer Store() != nil")
	}
	sp := tr.Root("x")
	if sp != nil {
		t.Fatal("nil tracer minted a span")
	}
	// None of these may panic.
	sp.SetAttr("k", 1)
	sp.AddEvent("e")
	sp.SetError(errors.New("boom"))
	sp.End()
	if c := sp.Child("c"); c != nil {
		t.Error("nil span Child != nil")
	}
	if c := sp.ChildAt(3, "c"); c != nil {
		t.Error("nil span ChildAt != nil")
	}
	if got := sp.Traceparent(); got != "" {
		t.Errorf("nil span Traceparent = %q", got)
	}
	if !sp.TraceID().IsZero() || !sp.SpanID().IsZero() {
		t.Error("nil span has non-zero IDs")
	}
	var st *Store
	if st.Len() != 0 || st.Total() != 0 || st.Recent(5) != nil {
		t.Error("nil store is not empty")
	}
}

// TestSpanLifecycle: a root span with attributes, events and an error must
// land in the store exactly once with everything attached.
func TestSpanLifecycle(t *testing.T) {
	tr := NewTracer(16)
	sp := tr.Root("HTTP /x")
	sp.SetAttr("http.method", "GET")
	sp.AddEvent("clock_edge", Attr{Key: "t", Value: 1.5})
	sp.SetError(errors.New("boom"))
	sp.End()
	sp.End() // idempotent
	sp.SetAttr("late", true)

	if got := tr.Store().Len(); got != 1 {
		t.Fatalf("store len = %d, want 1", got)
	}
	d := tr.Store().Recent(1)[0]
	if d.Name != "HTTP /x" || d.Status != "boom" {
		t.Errorf("data = %+v", d)
	}
	if len(d.Attrs) != 1 || d.Attrs[0].Key != "http.method" {
		t.Errorf("attrs = %+v (late writes must not stick)", d.Attrs)
	}
	if len(d.Events) != 1 || d.Events[0].Name != "clock_edge" {
		t.Errorf("events = %+v", d.Events)
	}
	if d.End.Before(d.Start) {
		t.Error("End before Start")
	}
}

// TestChildParenting: children share the trace ID and carry the parent's
// span ID.
func TestChildParenting(t *testing.T) {
	tr := NewTracer(16)
	root := tr.Root("root")
	child := root.Child("child")
	grand := child.ChildAt(0, "grand")
	if child.TraceID() != root.TraceID() || grand.TraceID() != root.TraceID() {
		t.Fatal("trace ID not inherited")
	}
	grand.End()
	child.End()
	root.End()
	spans := tr.Store().Trace(root.TraceID())
	if len(spans) != 3 {
		t.Fatalf("trace has %d spans, want 3", len(spans))
	}
	byName := map[string]*Data{}
	for _, d := range spans {
		byName[d.Name] = d
	}
	if byName["child"].ParentID != root.SpanID() {
		t.Error("child not parented under root")
	}
	if byName["grand"].ParentID != child.SpanID() {
		t.Error("grandchild not parented under child")
	}
}

// TestDeriveSpanID: the derivation must be deterministic in (parent, index),
// collision-free over a realistic fan-out, and never zero.
func TestDeriveSpanID(t *testing.T) {
	var parent SpanID
	copy(parent[:], []byte{1, 2, 3, 4, 5, 6, 7, 8})
	seen := map[SpanID]int{}
	for i := 0; i < 4096; i++ {
		id := DeriveSpanID(parent, i)
		if id.IsZero() {
			t.Fatalf("index %d derived the zero span ID", i)
		}
		if j, dup := seen[id]; dup {
			t.Fatalf("indices %d and %d collide on %s", j, i, id)
		}
		seen[id] = i
		if id != DeriveSpanID(parent, i) {
			t.Fatalf("index %d not deterministic", i)
		}
	}
	// ChildAt must use exactly this derivation.
	tr := NewTracer(4)
	sp := tr.Root("r")
	if got, want := sp.ChildAt(7, "c").SpanID(), DeriveSpanID(sp.SpanID(), 7); got != want {
		t.Errorf("ChildAt ID = %s, want %s", got, want)
	}
}

// TestTraceparentRoundTrip: format -> parse must be the identity, and the
// spec's invalid cases must be rejected.
func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTracer(4)
	sp := tr.Root("x")
	tid, sid, err := ParseTraceparent(sp.Traceparent())
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", sp.Traceparent(), err)
	}
	if tid != sp.TraceID() || sid != sp.SpanID() {
		t.Fatal("round trip changed the IDs")
	}
	bad := []string{
		"",
		"00-abc-def-01",
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero span
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",    // missing flags
		"00-ZZf7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // non-hex
	}
	for _, tp := range bad {
		if _, _, err := ParseTraceparent(tp); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted", tp)
		}
	}
}

// TestParseTraceID mirrors the tracez lookup path.
func TestParseTraceID(t *testing.T) {
	id := NewTraceID()
	got, err := ParseTraceID(id.String())
	if err != nil || got != id {
		t.Fatalf("round trip: %v, %v", got, err)
	}
	for _, bad := range []string{"", "abc", strings.Repeat("0", 32), strings.Repeat("z", 32)} {
		if _, err := ParseTraceID(bad); err == nil {
			t.Errorf("ParseTraceID(%q) accepted", bad)
		}
	}
}

// TestStoreRing: the ring must retain exactly the newest capacity spans.
func TestStoreRing(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		sp := tr.Root(fmt.Sprintf("s%d", i))
		sp.End()
	}
	st := tr.Store()
	if st.Len() != 4 {
		t.Fatalf("len = %d, want 4", st.Len())
	}
	if st.Total() != 10 {
		t.Fatalf("total = %d, want 10", st.Total())
	}
	recent := st.Recent(0)
	if len(recent) != 4 || recent[0].Name != "s9" || recent[3].Name != "s6" {
		names := make([]string, len(recent))
		for i, d := range recent {
			names[i] = d.Name
		}
		t.Fatalf("recent = %v, want [s9 s8 s7 s6]", names)
	}
}

// TestStoreSummaries: the root span must name and time its trace even when a
// child outlives it (the async-job shape), and slow ordering must sort by
// duration.
func TestStoreSummaries(t *testing.T) {
	tr := NewTracer(16)
	root := tr.Root("HTTP POST /v1/jobs")
	child := root.Child("job job-000001")
	root.End() // HTTP returns 202 immediately...
	child.End()
	sums := tr.Store().Summaries(10, false)
	if len(sums) != 1 {
		t.Fatalf("summaries = %d, want 1", len(sums))
	}
	s := sums[0]
	if s.Root != "HTTP POST /v1/jobs" || s.Spans != 2 {
		t.Errorf("summary = %+v", s)
	}
	// Duration must be the root's, not the longer child's.
	var rootData *Data
	for _, d := range tr.Store().Recent(0) {
		if d.Name == s.Root {
			rootData = d
		}
	}
	if s.Duration != rootData.Duration() {
		t.Errorf("duration = %v, want root's %v", s.Duration, rootData.Duration())
	}
}

// TestEventCap: events beyond the per-span cap are dropped and counted.
func TestEventCap(t *testing.T) {
	tr := NewTracer(4)
	sp := tr.Root("x")
	for i := 0; i < maxEventsPerSpan+10; i++ {
		sp.AddEvent("e")
	}
	sp.End()
	d := tr.Store().Recent(1)[0]
	if len(d.Events) != maxEventsPerSpan {
		t.Errorf("events = %d, want %d", len(d.Events), maxEventsPerSpan)
	}
	if d.DroppedEvents != 10 {
		t.Errorf("dropped = %d, want 10", d.DroppedEvents)
	}
}

// TestMarshalOTLP: the export must be valid JSON in protojson shape — hex
// IDs, stringified int64s, error status code 2 — and parented spans must
// carry parentSpanId.
func TestMarshalOTLP(t *testing.T) {
	tr := NewTracer(8)
	root := tr.Root("root")
	root.SetAttr("job.points", 4)
	root.SetAttr("sim.t_reached", 10.5)
	root.SetAttr("ok", true)
	child := root.Child("child")
	child.SetError(errors.New("bad"))
	child.AddEvent("alert", Attr{Key: "rule", Value: "phase_overlap"})
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteOTLP(&buf, "testsvc", tr.Store().Trace(root.TraceID())); err != nil {
		t.Fatal(err)
	}
	var exp struct {
		ResourceSpans []struct {
			Resource struct {
				Attributes []struct {
					Key   string `json:"key"`
					Value struct {
						StringValue string `json:"stringValue"`
					} `json:"value"`
				} `json:"attributes"`
			} `json:"resource"`
			ScopeSpans []struct {
				Spans []struct {
					TraceID      string `json:"traceId"`
					SpanID       string `json:"spanId"`
					ParentSpanID string `json:"parentSpanId"`
					Name         string `json:"name"`
					Kind         int    `json:"kind"`
					Start        string `json:"startTimeUnixNano"`
					End          string `json:"endTimeUnixNano"`
					Attributes   []struct {
						Key   string          `json:"key"`
						Value json.RawMessage `json:"value"`
					} `json:"attributes"`
					Events []struct {
						Name string `json:"name"`
					} `json:"events"`
					Status struct {
						Code    int    `json:"code"`
						Message string `json:"message"`
					} `json:"status"`
				} `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &exp); err != nil {
		t.Fatalf("export is not JSON: %v", err)
	}
	rs := exp.ResourceSpans[0]
	if rs.Resource.Attributes[0].Key != "service.name" || rs.Resource.Attributes[0].Value.StringValue != "testsvc" {
		t.Errorf("resource attrs = %+v", rs.Resource.Attributes)
	}
	spans := rs.ScopeSpans[0].Spans
	if len(spans) != 2 {
		t.Fatalf("exported %d spans, want 2", len(spans))
	}
	for _, s := range spans {
		if len(s.TraceID) != 32 || len(s.SpanID) != 16 {
			t.Errorf("span %s: bad ID lengths %d/%d", s.Name, len(s.TraceID), len(s.SpanID))
		}
		if s.Kind != 1 {
			t.Errorf("span %s: kind = %d, want 1 (INTERNAL)", s.Name, s.Kind)
		}
		switch s.Name {
		case "root":
			if s.ParentSpanID != "" {
				t.Error("root has a parent")
			}
			// int attrs must be decimal strings, floats JSON numbers,
			// bools bools — the protojson mapping viewers expect.
			for _, a := range s.Attributes {
				var v struct {
					StringValue *string  `json:"stringValue"`
					BoolValue   *bool    `json:"boolValue"`
					IntValue    *string  `json:"intValue"`
					DoubleValue *float64 `json:"doubleValue"`
				}
				if err := json.Unmarshal(a.Value, &v); err != nil {
					t.Fatalf("attr %s: %v", a.Key, err)
				}
				switch a.Key {
				case "job.points":
					if v.IntValue == nil || *v.IntValue != "4" {
						t.Errorf("job.points = %s, want intValue \"4\"", a.Value)
					}
				case "sim.t_reached":
					if v.DoubleValue == nil || *v.DoubleValue != 10.5 {
						t.Errorf("sim.t_reached = %s, want doubleValue 10.5", a.Value)
					}
				case "ok":
					if v.BoolValue == nil || !*v.BoolValue {
						t.Errorf("ok = %s, want boolValue true", a.Value)
					}
				}
			}
		case "child":
			if s.ParentSpanID != root.SpanID().String() {
				t.Errorf("child parent = %q, want %s", s.ParentSpanID, root.SpanID())
			}
			if s.Status.Code != 2 || s.Status.Message != "bad" {
				t.Errorf("child status = %+v", s.Status)
			}
			if len(s.Events) != 1 || s.Events[0].Name != "alert" {
				t.Errorf("child events = %+v", s.Events)
			}
		}
	}
}

// TestConcurrentSpans: concurrent children, attribute writes and Ends must be
// race-clean (run under -race in scripts/check.sh).
func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer(64)
	root := tr.Root("root")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := root.ChildAt(i, fmt.Sprintf("c%d", i))
			for j := 0; j < 50; j++ {
				sp.SetAttr("j", j)
				sp.AddEvent("tick")
			}
			sp.End()
		}(i)
	}
	wg.Wait()
	root.End()
	if got := tr.Store().Len(); got != 17 {
		t.Fatalf("store len = %d, want 17", got)
	}
}
