package span

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// The types below mirror the OTLP/JSON trace encoding
// (opentelemetry-proto trace/v1, protojson mapping): resourceSpans →
// scopeSpans → spans, with 64-bit integers rendered as decimal strings and
// IDs as lower-hex, so the output loads directly into Jaeger, Tempo, or
// `otelcol` file receivers.

type otlpExport struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

type otlpResourceSpans struct {
	Resource   otlpResource     `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpResource struct {
	Attributes []otlpKeyValue `json:"attributes"`
}

type otlpScopeSpans struct {
	Scope otlpScope  `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpScope struct {
	Name string `json:"name"`
}

type otlpSpan struct {
	TraceID            string         `json:"traceId"`
	SpanID             string         `json:"spanId"`
	ParentSpanID       string         `json:"parentSpanId,omitempty"`
	Name               string         `json:"name"`
	Kind               int            `json:"kind"`
	StartTimeUnixNano  string         `json:"startTimeUnixNano"`
	EndTimeUnixNano    string         `json:"endTimeUnixNano"`
	Attributes         []otlpKeyValue `json:"attributes,omitempty"`
	Events             []otlpEvent    `json:"events,omitempty"`
	DroppedEventsCount int            `json:"droppedEventsCount,omitempty"`
	Status             otlpStatus     `json:"status"`
}

type otlpEvent struct {
	TimeUnixNano string         `json:"timeUnixNano"`
	Name         string         `json:"name"`
	Attributes   []otlpKeyValue `json:"attributes,omitempty"`
}

type otlpStatus struct {
	// Code 0 = unset/OK, 2 = error (trace/v1 STATUS_CODE_ERROR).
	Code    int    `json:"code,omitempty"`
	Message string `json:"message,omitempty"`
}

type otlpKeyValue struct {
	Key   string    `json:"key"`
	Value otlpValue `json:"value"`
}

type otlpValue struct {
	StringValue *string  `json:"stringValue,omitempty"`
	BoolValue   *bool    `json:"boolValue,omitempty"`
	IntValue    *string  `json:"intValue,omitempty"` // 64-bit ints are strings in protojson
	DoubleValue *float64 `json:"doubleValue,omitempty"`
}

func otlpVal(v any) otlpValue {
	switch x := v.(type) {
	case string:
		return otlpValue{StringValue: &x}
	case bool:
		return otlpValue{BoolValue: &x}
	case int:
		s := strconv.FormatInt(int64(x), 10)
		return otlpValue{IntValue: &s}
	case int64:
		s := strconv.FormatInt(x, 10)
		return otlpValue{IntValue: &s}
	case uint64:
		s := strconv.FormatUint(x, 10)
		return otlpValue{IntValue: &s}
	case float64:
		return otlpValue{DoubleValue: &x}
	case float32:
		f := float64(x)
		return otlpValue{DoubleValue: &f}
	default:
		s := fmt.Sprint(v)
		return otlpValue{StringValue: &s}
	}
}

func otlpAttrs(attrs []Attr) []otlpKeyValue {
	if len(attrs) == 0 {
		return nil
	}
	out := make([]otlpKeyValue, len(attrs))
	for i, a := range attrs {
		out[i] = otlpKeyValue{Key: a.Key, Value: otlpVal(a.Value)}
	}
	return out
}

func otlpFromData(d *Data) otlpSpan {
	s := otlpSpan{
		TraceID:            d.TraceID.String(),
		SpanID:             d.SpanID.String(),
		Name:               d.Name,
		Kind:               1, // SPAN_KIND_INTERNAL
		StartTimeUnixNano:  strconv.FormatInt(d.Start.UnixNano(), 10),
		EndTimeUnixNano:    strconv.FormatInt(d.End.UnixNano(), 10),
		Attributes:         otlpAttrs(d.Attrs),
		DroppedEventsCount: d.DroppedEvents,
	}
	if !d.ParentID.IsZero() {
		s.ParentSpanID = d.ParentID.String()
	}
	if d.Status != "" {
		s.Status = otlpStatus{Code: 2, Message: d.Status}
	}
	for _, e := range d.Events {
		s.Events = append(s.Events, otlpEvent{
			TimeUnixNano: strconv.FormatInt(e.Time.UnixNano(), 10),
			Name:         e.Name,
			Attributes:   otlpAttrs(e.Attrs),
		})
	}
	return s
}

// MarshalOTLP renders the spans as one OTLP/JSON export batch attributed to
// service (resource attribute service.name).
func MarshalOTLP(service string, spans []*Data) ([]byte, error) {
	out := make([]otlpSpan, len(spans))
	for i, d := range spans {
		out[i] = otlpFromData(d)
	}
	exp := otlpExport{ResourceSpans: []otlpResourceSpans{{
		Resource: otlpResource{Attributes: otlpAttrs([]Attr{{Key: "service.name", Value: service}})},
		ScopeSpans: []otlpScopeSpans{{
			Scope: otlpScope{Name: "repro/internal/obs/span"},
			Spans: out,
		}},
	}}}
	return json.MarshalIndent(exp, "", "  ")
}

// WriteOTLP writes MarshalOTLP output (plus a trailing newline) to w.
func WriteOTLP(w io.Writer, service string, spans []*Data) error {
	b, err := MarshalOTLP(service, spans)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
