package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// JSONL is an Observer that streams events to w as JSON Lines — one JSON
// object per line, each carrying an "event" discriminator:
//
//	{"event":"sim_start","sim":"ode","t0":0,"t1":120,"species":[...],"reactions":[...]}
//	{"event":"clock_edge","t":13.82,"species":"G","rising":true,"level":0.5}
//	{"event":"phase_change","t":13.9,"from":"R","to":"G"}
//	{"event":"sim_end","sim":"ode","t":120,"steps":48210,"wall_seconds":0.21}
//
// Step and reaction-firing events are high-frequency and are suppressed
// unless LogSteps / LogFirings is set. Writes are serialized internally; the
// first write error is retained and reported by Err (subsequent events are
// dropped).
type JSONL struct {
	LogSteps   bool
	LogFirings bool

	mu        sync.Mutex
	enc       *json.Encoder
	reactions []string
	err       error
}

// NewJSONL returns a sink writing to w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Err returns the first write/encoding error encountered, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

func (j *JSONL) emit(v any) {
	j.mu.Lock()
	if j.err == nil {
		j.err = j.enc.Encode(v)
	}
	j.mu.Unlock()
}

type jsonSimStart struct {
	Event     string   `json:"event"`
	Sim       string   `json:"sim"`
	T0        float64  `json:"t0"`
	T1        float64  `json:"t1"`
	Species   []string `json:"species"`
	Reactions []string `json:"reactions"`
}

type jsonSimEnd struct {
	Event       string  `json:"event"`
	Sim         string  `json:"sim"`
	T           float64 `json:"t"`
	Steps       int     `json:"steps"`
	WallSeconds float64 `json:"wall_seconds"`
	Err         string  `json:"err,omitempty"`
}

type jsonStep struct {
	Event      string  `json:"event"`
	T          float64 `json:"t"`
	H          float64 `json:"h"`
	ErrNorm    float64 `json:"err_norm,omitempty"`
	Accepted   bool    `json:"accepted"`
	Propensity float64 `json:"propensity,omitempty"`
}

type jsonFiring struct {
	Event    string  `json:"event"`
	T        float64 `json:"t"`
	Reaction string  `json:"reaction"`
	Count    float64 `json:"count"`
}

type jsonClockEdge struct {
	Event   string  `json:"event"`
	T       float64 `json:"t"`
	Species string  `json:"species"`
	Rising  bool    `json:"rising"`
	Level   float64 `json:"level"`
}

type jsonPhaseChange struct {
	Event string  `json:"event"`
	T     float64 `json:"t"`
	From  string  `json:"from,omitempty"`
	To    string  `json:"to"`
}

// OnSimStart writes a sim_start record and retains the reaction-name table
// for firing events.
func (j *JSONL) OnSimStart(e SimStart) {
	j.mu.Lock()
	j.reactions = e.Reactions
	j.mu.Unlock()
	j.emit(jsonSimStart{Event: "sim_start", Sim: e.Sim, T0: e.T0, T1: e.T1,
		Species: e.Species, Reactions: e.Reactions})
}

// OnStep writes a step record when LogSteps is set.
func (j *JSONL) OnStep(e Step) {
	if !j.LogSteps {
		return
	}
	j.emit(jsonStep{Event: "step", T: e.T, H: e.H, ErrNorm: e.ErrNorm,
		Accepted: e.Accepted, Propensity: e.Propensity})
}

// OnReactionFiring writes a reaction_firing record when LogFirings is set.
func (j *JSONL) OnReactionFiring(e ReactionFiring) {
	if !j.LogFirings {
		return
	}
	name := ""
	j.mu.Lock()
	if e.Reaction >= 0 && e.Reaction < len(j.reactions) {
		name = j.reactions[e.Reaction]
	}
	j.mu.Unlock()
	j.emit(jsonFiring{Event: "reaction_firing", T: e.T, Reaction: name, Count: e.Count})
}

// OnClockEdge writes a clock_edge record.
func (j *JSONL) OnClockEdge(e ClockEdge) {
	j.emit(jsonClockEdge{Event: "clock_edge", T: e.T, Species: e.Species,
		Rising: e.Rising, Level: e.Level})
}

// OnPhaseChange writes a phase_change record.
func (j *JSONL) OnPhaseChange(e PhaseChange) {
	j.emit(jsonPhaseChange{Event: "phase_change", T: e.T, From: e.From, To: e.To})
}

type jsonAlert struct {
	Event   string  `json:"event"`
	T       float64 `json:"t"`
	Rule    string  `json:"rule"`
	Subject string  `json:"subject,omitempty"`
	Value   float64 `json:"value"`
	Limit   float64 `json:"limit"`
	Detail  string  `json:"detail,omitempty"`
}

// OnAlert writes an alert record.
func (j *JSONL) OnAlert(e Alert) {
	j.emit(jsonAlert{Event: "alert", T: e.T, Rule: e.Rule, Subject: e.Subject,
		Value: e.Value, Limit: e.Limit, Detail: e.Detail})
}

// OnSimEnd writes a sim_end record.
func (j *JSONL) OnSimEnd(e SimEnd) {
	j.emit(jsonSimEnd{Event: "sim_end", Sim: e.Sim, T: e.T, Steps: e.Steps,
		WallSeconds: e.WallSeconds, Err: e.Err})
}
